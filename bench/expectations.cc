#include "expectations.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bench {

std::string detail(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(std::size_t(n) + 1);
    std::vsnprintf(out.data(), out.size(), format, args);
    out.resize(std::size_t(n));
  }
  va_end(args);
  return out;
}

bool expect_ge(Harness& h, const std::string& id, double value, double min,
               const std::string& what) {
  return h.expect(id, value >= min,
                  detail("%s = %.3f (want >= %.3f)", what.c_str(), value, min));
}

bool expect_band(Harness& h, const std::string& id, double value, double lo,
                 double hi, const std::string& what) {
  return h.expect(id, value >= lo && value <= hi,
                  detail("%s = %.3f (want %.3f..%.3f)", what.c_str(), value,
                         lo, hi));
}

const Row* find_row(const Harness& h, const std::string& dataset,
                    const std::string& kernel, int dim,
                    const std::string& config) {
  for (const Row& r : h.rows()) {
    if (!dataset.empty() && r.dataset != dataset) continue;
    if (!kernel.empty() && r.kernel != kernel) continue;
    if (dim >= 0 && r.dim != dim) continue;
    if (config != "*" && r.config != config) continue;
    return &r;
  }
  return nullptr;
}

namespace {

/// Collects baseline/our cycle ratios over every matching row pairing.
std::vector<double> speedup_pairs(const Harness& h,
                                  const std::string& baseline_kernel,
                                  const std::string& our_kernel, int dim) {
  std::vector<double> out;
  for (const Row& b : h.rows()) {
    if (b.kernel != baseline_kernel || b.status != "ok" || b.cycles == 0) {
      continue;
    }
    if (dim >= 0 && b.dim != dim) continue;
    for (const Row& o : h.rows()) {
      if (o.kernel != our_kernel || o.status != "ok" || o.cycles == 0) {
        continue;
      }
      if (o.dataset != b.dataset || o.dim != b.dim || o.config != b.config) {
        continue;
      }
      out.push_back(double(b.cycles) / double(o.cycles));
      break;
    }
  }
  return out;
}

}  // namespace

double speedup_geomean(const Harness& h, const std::string& baseline_kernel,
                       const std::string& our_kernel, int dim) {
  const auto pairs = speedup_pairs(h, baseline_kernel, our_kernel, dim);
  if (pairs.empty()) return 0.0;
  double s = 0.0;
  for (double x : pairs) s += std::log(x);
  return std::exp(s / double(pairs.size()));
}

double speedup_min(const Harness& h, const std::string& baseline_kernel,
                   const std::string& our_kernel, int dim) {
  const auto pairs = speedup_pairs(h, baseline_kernel, our_kernel, dim);
  if (pairs.empty()) return 0.0;
  double m = pairs.front();
  for (double x : pairs) m = std::min(m, x);
  return m;
}

std::string experiments_metrics_markdown(const Json& results) {
  std::string out;
  out += "Scale: `" + results["scale"].as_string() +
         "`. Expectations are the coded paper-shape claims of DESIGN.md §3 "
         "(see bench/ sources); `paper` is blank where the paper gives no "
         "scalar for the metric.\n\n";
  out += "| Bench | Metric | Paper | Measured |\n|---|---|---|---|\n";
  for (const Json& b : results["benches"].items()) {
    const std::string name = b["name"].as_string();
    for (const Json& m : b["metrics"].items()) {
      char paper[32] = "";
      if (m.contains("paper")) {
        std::snprintf(paper, sizeof paper, "%.2f", m["paper"].as_double());
      }
      out += detail("| `%s` | %s | %s | %.2f |\n", name.c_str(),
                    m["name"].as_string().c_str(), paper,
                    m["value"].as_double());
    }
  }
  out += "\nExpectation verdicts:\n\n";
  out += "| Bench | Expectation | Verdict | Detail |\n|---|---|---|---|\n";
  for (const Json& b : results["benches"].items()) {
    const std::string name = b["name"].as_string();
    for (const Json& e : b["expectations"].items()) {
      out += detail("| `%s` | `%s` | %s | %s |\n", name.c_str(),
                    e["id"].as_string().c_str(),
                    e["ok"].as_bool() ? "ok" : "**FAIL**",
                    e["detail"].as_string().c_str());
    }
  }
  return out;
}

bool rewrite_marker_block(const std::string& path, const std::string& body) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  in.close();

  const std::string begin = kExperimentsBeginMarker;
  const std::string end = kExperimentsEndMarker;
  const std::size_t b = text.find(begin);
  if (b == std::string::npos) return false;
  const std::size_t content_start = b + begin.size();
  const std::size_t e = text.find(end, content_start);
  if (e == std::string::npos) return false;

  text = text.substr(0, content_start) + "\n" + body + text.substr(e);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  return bool(out);
}

}  // namespace bench
