#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "gen/datasets.h"
#include "gpusim/report.h"
#include "gpusim/trace.h"
#include "util/stats.h"

namespace bench {

namespace {

// CI-scale dataset allowlist for the kernel suite (Figs. 3/4/8-12). One
// representative per graph class the §3 claims depend on:
//   G3  skewed power-law, <2M paper vertices (all baselines supported)
//   G4  skewed, >2M paper vertices (cuSPARSE/Sputnik SDDMM "n/s" rows)
//   G5  near-uniform road grid (the Fig. 9 cache-size inversion case)
//   G10 Kronecker (Fig. 12 Merge crash, dgNN error)
//   G13 >2M uniform k-mer graph
//   G14 extremely dense Reddit stand-in (GE-SpMM parity row)
const char* kCiKernelSuite[] = {"G3", "G4", "G5", "G10", "G13", "G14"};

bool in_ci_kernel_suite(const std::string& id) {
  for (const char* s : kCiKernelSuite) {
    if (id == s) return true;
  }
  return false;
}

Json counters_json(const gpusim::KernelStats& ks) {
  const gpusim::WarpStats& t = ks.totals;
  Json c = Json::object();
  c.set("ctas", ks.num_ctas);
  c.set("warps", ks.num_warps);
  c.set("ctas_per_sm", ks.resident_ctas_per_sm);
  c.set("warps_per_sm", ks.resident_warps_per_sm);
  c.set("dram_bw_bound", ks.dram_bandwidth_bound);
  c.set("issue_cycles", t.issue_cycles);
  c.set("stall_cycles", t.stall_cycles);
  c.set("load_issue_cycles", t.load_issue_cycles);
  c.set("load_stall_cycles", t.load_stall_cycles);
  c.set("store_issue_cycles", t.store_issue_cycles);
  c.set("atomic_issue_cycles", t.atomic_issue_cycles);
  c.set("global_load_instrs", t.global_load_instrs);
  c.set("global_store_instrs", t.global_store_instrs);
  c.set("load_transactions", t.load_transactions);
  c.set("store_transactions", t.store_transactions);
  c.set("bytes_loaded", t.bytes_loaded);
  c.set("bytes_stored", t.bytes_stored);
  c.set("shared_ops", t.shared_ops);
  c.set("shuffles", t.shuffles);
  c.set("barriers", t.barriers);
  c.set("atomic_instrs", t.atomic_instrs);
  c.set("atomic_serializations", t.atomic_serializations);
  c.set("alu_instrs", t.alu_instrs);
  c.set("data_load_fraction", ks.data_load_fraction());
  c.set("data_movement_fraction", ks.data_movement_fraction());
  return c;
}

}  // namespace

const char* scale_name(Scale s) { return s == Scale::kCi ? "ci" : "full"; }

Harness::Harness(std::string name, std::string title, std::string paper_ref,
                 Scale scale)
    : name_(std::move(name)),
      title_(std::move(title)),
      paper_ref_(std::move(paper_ref)),
      scale_(scale) {}

std::vector<std::string> Harness::reduce(std::vector<std::string> ids) const {
  if (scale_ == Scale::kFull) return ids;
  std::vector<std::string> out;
  for (auto& id : ids) {
    if (in_ci_kernel_suite(id)) out.push_back(std::move(id));
  }
  // A suite with no overlap (e.g. training-only ids) keeps its first entry
  // so every bench still produces rows at ci scale.
  if (out.empty() && !ids.empty()) out.push_back(ids.front());
  return out;
}

std::vector<std::string> Harness::kernel_suite() const {
  return reduce(gnnone::kernel_suite_ids());
}

std::vector<std::string> Harness::accuracy_suite() const {
  auto ids = gnnone::accuracy_suite_ids();
  if (ci() && !ids.empty()) ids.resize(1);
  return ids;
}

std::vector<int> Harness::dims() const {
  if (ci()) return {6, 32};
  return {6, 16, 32, 64};
}

Row& Harness::add(Row row) {
  rows_.push_back(std::move(row));
  return rows_.back();
}

Row& Harness::add(const std::string& dataset, const std::string& kernel,
                  int dim, const gpusim::KernelStats& ks,
                  const std::string& config) {
  Row r;
  r.dataset = dataset;
  r.kernel = kernel;
  r.dim = dim;
  r.config = config;
  r.cycles = ks.cycles;
  r.has_stats = true;
  r.stats = ks;
  return add(std::move(r));
}

Row& Harness::add_cycles(const std::string& dataset, const std::string& kernel,
                         int dim, std::uint64_t cycles,
                         const std::string& config) {
  Row r;
  r.dataset = dataset;
  r.kernel = kernel;
  r.dim = dim;
  r.config = config;
  r.cycles = cycles;
  return add(std::move(r));
}

Row& Harness::add_status(const std::string& dataset, const std::string& kernel,
                         int dim, const std::string& status,
                         const std::string& config) {
  Row r;
  r.dataset = dataset;
  r.kernel = kernel;
  r.dim = dim;
  r.config = config;
  r.status = status;
  return add(std::move(r));
}

void Harness::metric(const std::string& name, double value, double paper) {
  metrics_.push_back(Metric{name, value, paper});
}

bool Harness::expect(const std::string& id, bool ok,
                     const std::string& detail) {
  expectations_.push_back(Expectation{id, ok, detail});
  return ok;
}

int Harness::failed_expectations() const {
  int n = 0;
  for (const auto& e : expectations_) {
    if (!e.ok) ++n;
  }
  return n;
}

Json Harness::to_json() const {
  Json b = Json::object();
  b.set("name", name_);
  b.set("title", title_);
  b.set("paper_ref", paper_ref_);
  Json rows = Json::array();
  for (const Row& r : rows_) {
    Json row = Json::object();
    row.set("dataset", r.dataset);
    row.set("kernel", r.kernel);
    row.set("dim", r.dim);
    row.set("config", r.config);
    row.set("status", r.status);
    row.set("cycles", r.cycles);
    if (r.has_stats) row.set("counters", counters_json(r.stats));
    rows.push_back(std::move(row));
  }
  b.set("rows", std::move(rows));
  Json metrics = Json::array();
  for (const Metric& m : metrics_) {
    Json mj = Json::object();
    mj.set("name", m.name);
    mj.set("value", m.value);
    if (m.paper != 0.0) mj.set("paper", m.paper);
    metrics.push_back(std::move(mj));
  }
  b.set("metrics", std::move(metrics));
  Json exps = Json::array();
  for (const Expectation& e : expectations_) {
    Json ej = Json::object();
    ej.set("id", e.id);
    ej.set("ok", e.ok);
    ej.set("detail", e.detail);
    exps.push_back(std::move(ej));
  }
  b.set("expectations", std::move(exps));
  return b;
}

std::string Harness::to_csv() const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out =
      "bench,dataset,kernel,dim,config,status,cycles,"
      "issue_cycles,stall_cycles,load_issue_cycles,load_stall_cycles,"
      "store_issue_cycles,atomic_issue_cycles,load_tx,bytes_loaded,"
      "bytes_stored,warps_per_sm,load_fraction\n";
  char buf[256];
  for (const Row& r : rows_) {
    out += field(name_) + ',' + field(r.dataset) + ',' + field(r.kernel) + ',';
    std::snprintf(buf, sizeof buf, "%d,", r.dim);
    out += buf;
    out += field(r.config) + ',' + field(r.status) + ',';
    std::snprintf(buf, sizeof buf, "%llu,",
                  static_cast<unsigned long long>(r.cycles));
    out += buf;
    if (r.has_stats) {
      const gpusim::WarpStats& t = r.stats.totals;
      std::snprintf(buf, sizeof buf,
                    "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%d,%.4f",
                    static_cast<unsigned long long>(t.issue_cycles),
                    static_cast<unsigned long long>(t.stall_cycles),
                    static_cast<unsigned long long>(t.load_issue_cycles),
                    static_cast<unsigned long long>(t.load_stall_cycles),
                    static_cast<unsigned long long>(t.store_issue_cycles),
                    static_cast<unsigned long long>(t.atomic_issue_cycles),
                    static_cast<unsigned long long>(t.load_transactions),
                    static_cast<unsigned long long>(t.bytes_loaded),
                    static_cast<unsigned long long>(t.bytes_stored),
                    r.stats.resident_warps_per_sm,
                    r.stats.data_load_fraction());
      out += buf;
    } else {
      out += ",,,,,,,,,,";
    }
    out += '\n';
  }
  return out;
}

Json results_doc(const std::vector<const Harness*>& benches, Scale scale,
                 const gpusim::DeviceSpec& spec) {
  Json doc = Json::object();
  doc.set("schema", kResultSchemaName);
  doc.set("version", kResultSchemaVersion);
  doc.set("scale", scale_name(scale));
  Json dev = Json::object();
  dev.set("sm_clock_ghz", spec.sm_clock_ghz);
  dev.set("num_sms", spec.num_sms);
  dev.set("max_warps_per_sm", spec.max_warps_per_sm);
  dev.set("global_load_latency", spec.global_load_latency);
  dev.set("dram_bytes_per_cycle", spec.dram_bytes_per_cycle);
  doc.set("device", std::move(dev));
  Json arr = Json::array();
  for (const Harness* h : benches) arr.push_back(h->to_json());
  doc.set("benches", std::move(arr));
  return doc;
}

std::uint64_t percentile(std::vector<std::uint64_t> samples, double p) {
  return gnnone::util::percentile(std::move(samples), p);
}

double percentile(std::vector<double> samples, double p) {
  return gnnone::util::percentile(std::move(samples), p);
}

std::uint64_t p50(std::vector<std::uint64_t> samples) {
  return percentile(std::move(samples), 50.0);
}

std::uint64_t p99(std::vector<std::uint64_t> samples) {
  return percentile(std::move(samples), 99.0);
}

// --- registry -------------------------------------------------------------

namespace {
std::vector<BenchInfo>& registry() {
  static std::vector<BenchInfo> r;
  return r;
}
}  // namespace

void register_bench(const BenchInfo& info) { registry().push_back(info); }

std::vector<BenchInfo> registered_benches() {
  std::vector<BenchInfo> out = registry();
  std::sort(out.begin(), out.end(), [](const BenchInfo& a, const BenchInfo& b) {
    if (a.order != b.order) return a.order < b.order;
    return std::strcmp(a.name, b.name) < 0;
  });
  return out;
}

// --- standalone driver ----------------------------------------------------

namespace {

bool write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool parse_scale(const char* s, Scale* out) {
  if (std::strcmp(s, "full") == 0) {
    *out = Scale::kFull;
    return true;
  }
  if (std::strcmp(s, "ci") == 0) {
    *out = Scale::kCi;
    return true;
  }
  return false;
}

void print_expectations(const Harness& h) {
  if (h.expectations().empty()) return;
  std::printf("\npaper-shape expectations (%s):\n", h.name().c_str());
  for (const Expectation& e : h.expectations()) {
    std::printf("  [%s] %-40s %s\n", e.ok ? "ok" : "FAIL", e.id.c_str(),
                e.detail.c_str());
  }
}

int run_standalone(const BenchInfo& info, int argc, char** argv) {
  Scale scale = Scale::kFull;
  std::string out_dir = ".";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      if (!parse_scale(a + 8, &scale)) {
        std::fprintf(stderr, "error: bad --scale '%s' (full|ci)\n", a + 8);
        return 2;
      }
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out_dir = a + 6;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      trace_path = a + 8;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf(
          "usage: %s [--scale=full|ci] [--out=DIR|-] [--trace=PATH]\n"
          "  %s\n  reproduces: %s\n",
          info.name, info.title, info.paper_ref);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s' (see --help)\n", a);
      return 2;
    }
  }

  Harness h(info.name, info.title, info.paper_ref, scale);
  std::printf(
      "\n================================================================\n"
      "%s\nreproduces: %s\n"
      "================================================================\n",
      info.title, info.paper_ref);

  int rc;
  {
    gpusim::Trace trace;  // active for the whole bench body
    rc = info.fn(h);
    if (!trace_path.empty()) {
      const std::string json =
          gpusim::chrome_trace_json(trace, gpusim::default_device());
      if (write_file(trace_path, json)) {
        std::printf("\ntrace: %zu kernel launches -> %s\n",
                    trace.events().size(), trace_path.c_str());
      } else {
        rc = rc ? rc : 3;
      }
    }
  }

  print_expectations(h);
  const int failed = h.failed_expectations();
  if (failed > 0) {
    std::printf("\n%d paper-shape expectation(s) FAILED\n", failed);
  }

  if (out_dir != "-") {
    const std::string base = out_dir.empty() ? std::string(".") : out_dir;
    const Json doc =
        results_doc({&h}, scale, gpusim::default_device());
    if (!write_file(base + "/BENCH_RESULTS.json", doc.dump() + "\n")) {
      return 3;
    }
    if (!write_file(base + "/" + h.name() + ".csv", h.to_csv())) return 3;
    std::printf("results: %s/BENCH_RESULTS.json, %s/%s.csv\n", base.c_str(),
                base.c_str(), h.name().c_str());
  }

  if (rc != 0) return rc;
  return failed > 0 ? 1 : 0;
}

}  // namespace bench
