// Format trade-off ablation (paper §5.4.5): the GNNOne design over COO
// (row ids loaded: 4 extra bytes per NZE) vs over CSR (row ids derived:
// per-warp binary search on the offsets metadata + boundary walking).
// The SpMM analog of Fig. 12's SpMV comparison.
#include "common.h"

GNNONE_BENCH(ablation_format, 240,
             "Ablation: GNNOne SpMM on COO vs CSR input (format trade-off, "
             "§5.4.5)",
             "extends paper §5.4.5 / Fig. 12 to SpMM") {
  gnnone::Context ctx;

  double adv_f1 = 0.0, adv_f32 = 0.0;
  for (int dim : {1, 6, 32}) {
    std::printf("\n-- feature length %d --\n", dim);
    std::printf("%-22s %11s %11s | %8s | %s\n", "dataset", "COO(ms)",
                "CSR(ms)", "COO adv", "BW-bound?");
    std::vector<double> advantages;
    for (const auto& id : h.reduce({"G4", "G5", "G10", "G13", "G14"})) {
      const bench::KernelWorkload wl(id);
      const auto& coo = wl.ds.coo;
      const auto x = wl.features(dim, 101);
      std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
      const auto from_coo = ctx.spmm(coo, wl.edge_val, x, dim, y);
      const auto from_csr = gnnone::gnnone_spmm_csr(ctx.device(), wl.csr,
                                                    wl.edge_val, x, dim, y);
      h.add(id, "gnnone-coo", dim, from_coo);
      h.add(id, "gnnone-csr", dim, from_csr);
      const double adv = double(from_csr.cycles) / double(from_coo.cycles);
      advantages.push_back(adv);
      std::printf("%-22s %11.3f %11.3f | %8.2f | %s\n",
                  (wl.ds.id + "/" + wl.ds.name).c_str(),
                  gnnone::cycles_to_ms(from_coo.cycles),
                  gnnone::cycles_to_ms(from_csr.cycles), adv,
                  from_coo.dram_bandwidth_bound ? "yes" : "no");
    }
    const double avg = bench::geomean(advantages);
    std::printf("average COO advantage at f=%d: %.2fx\n", dim, avg);
    if (dim == 1) adv_f1 = avg;
    if (dim == 32) adv_f32 = avg;
  }
  std::printf(
      "\nFinding: at small feature lengths (the SpMV regime of Fig. 12) the "
      "derived-row-id\nmetadata search costs more than COO's 4-byte loads — "
      "the paper's §5.4.5 argument.\nOnce the kernel turns DRAM-bandwidth "
      "bound (f>=32), the two formats converge to parity\n(CSR's ~3%% byte "
      "saving offsets the probe cost) — a regime the paper does not "
      "measure.\n");

  // §5.4.5: COO wins the SpMV regime; the formats converge when
  // bandwidth-bound.
  h.metric("coo_advantage_f1", adv_f1);
  h.metric("coo_advantage_f32", adv_f32);
  bench::expect_ge(h, "format.coo_wins_small_f", adv_f1, 1.0,
                   "COO advantage at f=1");
  bench::expect_band(h, "format.parity_when_bw_bound", adv_f32, 0.9, 1.2,
                     "COO advantage at f=32");
  return 0;
}
