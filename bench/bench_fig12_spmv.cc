// Fig. 12: COO nonzero-split SpMV (GNNOne, §4.4) vs Merge-SpMV (custom
// merge-path format). The trade: 4 extra bytes of row id per NZE (COO)
// against binary-search + metadata broadcast (merge path). Merge-SpMV
// crashed on Kron-21 in the paper; we run it and annotate.
#include "common.h"

GNNONE_BENCH(fig12_spmv, 120,
             "Fig. 12: GNNOne COO SpMV vs Merge-SpMV",
             "paper Fig. 12; comparable or better everywhere, 1.74x/2.09x on "
             "Reddit/OGB stand-ins; Merge-SpMV crashed on K21") {
  gnnone::Context ctx;

  std::printf("%-22s %12s %12s | %9s\n", "dataset", "GNNOne(ms)",
              "Merge(ms)", "speedup");
  std::vector<double> speedups;
  bool merge_crash_on_kron = false;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(1, 81);
    std::vector<float> y1(std::size_t(coo.num_rows));
    std::vector<float> y2(std::size_t(coo.num_rows));

    const auto ours = ctx.spmv(coo, wl.edge_val, x, y1);
    h.add(id, "gnnone", 1, ours);
    if (wl.ds.family == gnnone::GraphFamily::kKronecker) {
      // Reproduces the paper's reported support matrix: the reference
      // Merge-SpMV crashed on Kron-21, so it is not plotted.
      h.add_status(id, "merge", 1, "crash");
      merge_crash_on_kron = true;
      std::printf("%-22s %12.3f %12s | %9s\n",
                  (wl.ds.id + "/" + wl.ds.name).c_str(),
                  gnnone::cycles_to_ms(ours.cycles), "crash*", "-");
      continue;
    }
    const auto merge = gnnone::baselines::merge_spmv(ctx.device(), wl.csr,
                                                     wl.edge_val, x, y2);
    h.add(id, "merge", 1, merge);
    const double s = double(merge.cycles) / double(ours.cycles);
    speedups.push_back(s);
    std::printf("%-22s %12.3f %12.3f | %9.2f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                gnnone::cycles_to_ms(ours.cycles),
                gnnone::cycles_to_ms(merge.cycles), s);
  }
  const double avg = bench::geomean(speedups);
  std::printf("\naverage: %.2fx (paper: comparable-or-better on every "
              "dataset)\n*Merge-SpMV's crash on the Kron-21 class is the "
              "paper's reported outcome, not simulated.\n",
              avg);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 12 row) ----------------
  h.metric("avg_speedup_over_merge", avg);
  bench::expect_ge(h, "fig12.comparable_or_better",
                   bench::speedup_min(h, "merge", "gnnone"), 0.95,
                   "min speedup over Merge-SpMV");
  bench::expect_band(h, "fig12.avg_band", avg, 1.0, 2.5,
                     "avg speedup over Merge-SpMV");
  h.expect("fig12.merge_crash_on_kron21", merge_crash_on_kron,
           "Merge-SpMV must be marked crash on the Kron-21 stand-in");
  return 0;
}
