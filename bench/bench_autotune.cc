// Autotuning extension (docs/AUTOTUNING.md): cost-guided kernel/config
// search vs every fixed default backend.
//
// For each (dataset, op, dim) point the tuner pretunes a cache in-process
// (the same search gnnone_tune runs), then the tuned candidate and every
// kernel family's default config are simulated on identical operands. The
// encoded claims:
//  * the tuned choice is never slower than the best fixed family default on
//    ANY point (the search always fully evaluates the defaults, so this
//    holds by construction — the expectation guards the machinery);
//  * it beats the GNNOne default config by >= 10% on at least 3 points;
//  * a warm Backend::kAuto engine dispatches exactly the cached decision.
#include "common.h"
#include "tune/tuner.h"

namespace {

using gnnone::tune::Candidate;
using gnnone::tune::KernelFamily;
using gnnone::tune::OpInputs;
using gnnone::tune::TuneOp;
using gnnone::tune::TuneReport;

struct Point {
  TuneOp op;
  int dim;
};

/// Simulates one candidate on the bench operands and returns modeled cycles
/// (values differ from the tuner's integer operands, cycles do not — the
/// cost model is address-driven).
std::uint64_t run_cycles(const gpusim::DeviceSpec& dev, const Candidate& cand,
                         TuneOp op, const bench::KernelWorkload& wl,
                         std::span<const float> x, std::span<const float> y,
                         int f) {
  const OpInputs in{&wl.ds.coo, &wl.csr, &wl.ng};
  std::size_t out_size = 0;
  switch (op) {
    case TuneOp::kSpmm:
      out_size = std::size_t(wl.ds.coo.num_rows) * std::size_t(f);
      break;
    case TuneOp::kSddmm:
      out_size = std::size_t(wl.ds.coo.nnz());
      break;
    case TuneOp::kSpmv:
      out_size = std::size_t(wl.ds.coo.num_rows);
      break;
  }
  std::vector<float> out(out_size);
  return gnnone::tune::run_candidate(dev, cand, op, in, wl.edge_val, x, y, f,
                                     out)
      .cycles;
}

}  // namespace

GNNONE_BENCH(autotune, 250,
             "Autotuning: cost-guided kernel/config search vs fixed defaults",
             "extension (docs/AUTOTUNING.md); tuned dispatch <= best fixed "
             "default everywhere, >= 10% over the GNNOne default on >= 3 "
             "points") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  gnnone::tune::TuningCache cache;

  std::printf("%-6s %-6s %4s  %-44s %11s %11s | %7s\n", "graph", "op", "dim",
              "tuned candidate", "tuned", "best-def", "vs-def");
  int never_worse_violations = 0;
  int big_wins = 0;  // points with >= 10% gain over the GNNOne default
  int dispatch_mismatches = 0;
  std::vector<double> vs_gnnone_default, vs_best_default;

  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const gnnone::Coo& coo = wl.ds.coo;

    std::vector<Point> points;
    for (int f : h.dims()) points.push_back({TuneOp::kSpmm, f});
    for (int f : h.dims()) points.push_back({TuneOp::kSddmm, f});
    points.push_back({TuneOp::kSpmv, 1});

    for (const Point& p : points) {
      const int f = p.dim;
      const char* opn = gnnone::tune::op_name(p.op);
      std::vector<float> x, y;
      switch (p.op) {
        case TuneOp::kSpmm:
          x = bench::random_features(
              std::size_t(coo.num_cols) * std::size_t(f), 31);
          break;
        case TuneOp::kSddmm:
          x = bench::random_features(
              std::size_t(coo.num_rows) * std::size_t(f), 32);
          y = bench::random_features(
              std::size_t(coo.num_cols) * std::size_t(f), 33);
          break;
        case TuneOp::kSpmv:
          x = bench::random_features(std::size_t(coo.num_cols), 34);
          break;
      }

      // The search (identical to gnnone_tune's) + the tuned launch.
      const TuneReport rep =
          gnnone::tune::tune_into(cache, dev, coo, p.op, f);
      const std::uint64_t tuned =
          run_cycles(dev, rep.best.candidate, p.op, wl, x, y, f);
      h.add_cycles(id, std::string("auto_") + opn, f, tuned,
                   rep.best.candidate.name(p.op));

      // Every family's no-tuner default on the same operands.
      std::uint64_t best_default = 0, gnnone_default = 0;
      for (KernelFamily fam : gnnone::tune::families(p.op)) {
        const Candidate def = gnnone::tune::family_default(p.op, fam);
        const std::uint64_t c = run_cycles(dev, def, p.op, wl, x, y, f);
        h.add_cycles(id, std::string(gnnone::tune::family_name(fam)) + "_" +
                             opn,
                     f, c, "default");
        if (best_default == 0 || c < best_default) best_default = c;
        if (fam == KernelFamily::kGnnOne) gnnone_default = c;
      }

      if (tuned > best_default) ++never_worse_violations;
      const double gain = double(gnnone_default) / double(tuned);
      if (gain >= 1.10) ++big_wins;
      vs_gnnone_default.push_back(gain);
      vs_best_default.push_back(double(best_default) / double(tuned));

      std::printf("%-6s %-6s %4d  %-44s %11llu %11llu | %6.2fx\n",
                  id.c_str(), opn, f, rep.best.candidate.name(p.op).c_str(),
                  static_cast<unsigned long long>(tuned),
                  static_cast<unsigned long long>(best_default), gain);
    }

    // Warm-cache dispatch: a kAuto engine over this graph must pick exactly
    // the cached decision for every tuned point.
    gnnone::SparseEngine engine(gnnone::Backend::kAuto, coo, dev);
    engine.set_tuning_cache(&cache);
    for (const Point& p : points) {
      if (p.op == TuneOp::kSpmv) continue;  // engines dispatch SpMM/SDDMM
      gnnone::tune::TuneKey key;
      key.signature = gnnone::tune::signature_of(coo);
      key.op = p.op;
      key.dim = p.dim;
      key.device = gnnone::tune::device_key(dev);
      const gnnone::tune::TuneDecision* d = cache.lookup(key);
      if (d == nullptr ||
          engine.auto_candidate(engine.coo(), p.op, p.dim).name(p.op) !=
              d->candidate.name(p.op)) {
        ++dispatch_mismatches;
      }
    }
  }

  const double geo_def = bench::geomean(vs_gnnone_default);
  const double geo_best = bench::geomean(vs_best_default);
  std::printf("\ngeomean vs GNNOne default: %.3fx   vs best fixed default: "
              "%.3fx   >=10%% wins: %d\n",
              geo_def, geo_best, big_wins);

  h.metric("geomean_vs_gnnone_default", geo_def);
  h.metric("geomean_vs_best_fixed_default", geo_best);
  h.metric("ge10pct_win_points", double(big_wins));

  h.expect("autotune.never_worse_than_best_default",
           never_worse_violations == 0,
           bench::detail("%d points where the tuned choice lost to a fixed "
                         "family default",
                         never_worse_violations));
  h.expect("autotune.ge10pct_on_3_points", big_wins >= 3,
           bench::detail("%d points with >= 10%% gain over the GNNOne "
                         "default (need >= 3)",
                         big_wins));
  h.expect("autotune.warm_dispatch_matches_tuned", dispatch_mismatches == 0,
           bench::detail("%d (graph, op, dim) points where Backend::kAuto "
                         "did not dispatch the cached decision",
                         dispatch_mismatches));
  bench::expect_ge(h, "autotune.geomean_improvement", geo_def, 1.0,
                   "geomean speedup over the GNNOne default config");
  return 0;
}
