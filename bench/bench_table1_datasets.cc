// Table 1: the dataset suite. Prints the scaled synthetic stand-ins next to
// the paper's original sizes and the structural property each generator
// preserves (degree distribution shape).
#include <algorithm>
#include <cmath>

#include "common.h"
#include "graph/convert.h"

namespace {

double degree_cv(const gnnone::Coo& coo) {
  const auto len = gnnone::row_lengths(coo);
  double mean = 0;
  for (auto d : len) mean += d;
  mean /= double(len.size());
  double var = 0;
  for (auto d : len) var += (d - mean) * (d - mean);
  return std::sqrt(var / double(len.size())) / std::max(mean, 1e-9);
}

}  // namespace

GNNONE_BENCH(table1_datasets, 10,
             "Table 1: graph datasets (scaled stand-ins)",
             "paper Table 1 (19 graphs, SNAP/UF/OGB/Graph500)") {
  std::printf("%-5s %-17s %11s %13s %9s %11s %5s %3s %8s %7s\n", "id",
              "dataset", "V (ours)", "E (ours)", "deg", "skew(cv)", "F", "C",
              "V(paper)", "scale");
  // The structural claim of the stand-in suite: skewed graph classes keep a
  // heavy-tailed degree distribution, uniform classes keep a flat one.
  bool skew_preserved = true;
  std::string skew_bad;
  for (const char* id :
       {"G0", "G1", "G2", "G3", "G4", "G5", "G6", "G7", "G8", "G9", "G10",
        "G11", "G12", "G13", "G14", "G15", "G16", "G17", "G18"}) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    const double scale = double(d.paper_edges) / double(d.coo.nnz());
    const double cv = degree_cv(d.coo);
    std::printf("%-5s %-17s %11d %13lld %9.1f %11.2f %5d %3d %8.2fM %6.0fx\n",
                d.id.c_str(), d.name.c_str(), d.coo.num_rows,
                (long long)d.coo.nnz(),
                double(d.coo.nnz()) / double(d.coo.num_rows), cv,
                d.input_feat_len, d.num_classes,
                double(d.paper_vertices) / 1e6, scale);
    h.metric(d.id + ".degree_cv", cv);
    const bool skewed_family = d.family == gnnone::GraphFamily::kPowerLaw ||
                               d.family == gnnone::GraphFamily::kKronecker;
    const bool uniform_family = d.family == gnnone::GraphFamily::kGrid ||
                                d.family == gnnone::GraphFamily::kUniform;
    if ((skewed_family && cv < 1.0) || (uniform_family && cv > 0.75)) {
      skew_preserved = false;
      skew_bad += (skew_bad.empty() ? "" : ",") + d.id;
    }
  }
  h.expect("table1.degree_shape_preserved", skew_preserved,
           skew_preserved ? "every stand-in matches its graph class"
                          : "mismatched: " + skew_bad);
  std::printf("\nAll graphs symmetrized (edges doubled) as the paper's GNN "
              "frameworks expect.\n");
  std::printf("skew(cv) = coefficient of variation of vertex degree: ~0 for "
              "road/k-mer stand-ins,\n  >1.5 for social/web/Kronecker "
              "stand-ins, matching the original graph classes.\n");
  return 0;
}
