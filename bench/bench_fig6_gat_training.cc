// Fig. 6: end-to-end GAT training time (200 epochs), GNNOne vs DGL and dgNN
// on the large-graph suite. dgNN errors on the Kron-21 stand-in (G10), as
// the paper reports.
#include "common.h"

int main() {
  bench::print_header(
      "Fig. 6: GAT training time, 200 epochs (5 layers, hidden 16)",
      "paper Fig. 6; paper averages: 3.68x over DGL, 2.01x over dgNN; dgNN "
      "errors on G10");
  const auto& dev = gpusim::default_device();

  gnnone::TrainOptions opts;
  opts.measured_epochs = 2;
  opts.epochs = 200;
  opts.eval_accuracy = false;
  opts.feature_dim_override = 64;  // keep the functional sim tractable

  std::printf("%-22s %12s %12s %12s | %8s %8s\n", "dataset", "GNNOne(ms)",
              "DGL(ms)", "dgNN(ms)", "vs DGL", "vs dgNN");
  std::vector<double> vs_dgl, vs_dgnn;
  for (const auto& id : {"G9", "G10", "G11", "G12", "G13", "G14", "G15"}) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    const auto ours =
        gnnone::train_model(gnnone::Backend::kGnnOne, d, "gat", dev, opts);
    const auto dgl =
        gnnone::train_model(gnnone::Backend::kDgl, d, "gat", dev, opts);
    const auto dgnn =
        gnnone::train_model(gnnone::Backend::kDgnn, d, "gat", dev, opts);
    char dgnn_ms[24] = "error", dgnn_s[16] = "-";
    if (dgnn.ran) {
      std::snprintf(dgnn_ms, sizeof dgnn_ms, "%12.1f",
                    gnnone::cycles_to_ms(dgnn.total_cycles));
      const double s = double(dgnn.total_cycles) / double(ours.total_cycles);
      std::snprintf(dgnn_s, sizeof dgnn_s, "%8.2f", s);
      vs_dgnn.push_back(s);
    }
    const double s_dgl = double(dgl.total_cycles) / double(ours.total_cycles);
    vs_dgl.push_back(s_dgl);
    std::printf("%-22s %12.1f %12.1f %12s | %8.2f %8s\n",
                (d.id + "/" + d.name).c_str(),
                gnnone::cycles_to_ms(ours.total_cycles),
                gnnone::cycles_to_ms(dgl.total_cycles), dgnn_ms, s_dgl,
                dgnn_s);
  }
  std::printf("\nAverage GNNOne speedup: %.2fx over DGL (paper 3.68x), "
              "%.2fx over dgNN (paper 2.01x)\n",
              bench::geomean(vs_dgl), bench::geomean(vs_dgnn));
  std::printf("Note: dgNN uses fused kernels (one launch per attention "
              "block); GNNOne wins with\nunfused individual kernels, as in "
              "the paper (§5.3.2).\n");
  return 0;
}
