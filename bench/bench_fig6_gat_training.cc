// Fig. 6: end-to-end GAT training time (200 epochs), GNNOne vs DGL and dgNN
// on the large-graph suite. dgNN errors on the Kron-21 stand-in (G10), as
// the paper reports.
#include "common.h"

GNNONE_BENCH(fig6_gat_training, 60,
             "Fig. 6: GAT training time, 200 epochs (5 layers, hidden 16)",
             "paper Fig. 6; paper averages: 3.68x over DGL, 2.01x over dgNN; "
             "dgNN errors on G10") {
  const auto& dev = gpusim::default_device();

  gnnone::TrainOptions opts;
  opts.measured_epochs = 2;
  opts.epochs = 200;
  opts.eval_accuracy = false;
  opts.feature_dim_override = 64;  // keep the functional sim tractable

  std::printf("%-22s %12s %12s %12s | %8s %8s\n", "dataset", "GNNOne(ms)",
              "DGL(ms)", "dgNN(ms)", "vs DGL", "vs dgNN");
  std::vector<double> vs_dgl, vs_dgnn;
  bool dgnn_errors_on_kron = false;
  for (const auto& id :
       h.reduce({"G9", "G10", "G11", "G12", "G13", "G14", "G15"})) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    const auto ours =
        gnnone::train_model(gnnone::Backend::kGnnOne, d, "gat", dev, opts);
    const auto dgl =
        gnnone::train_model(gnnone::Backend::kDgl, d, "gat", dev, opts);
    const auto dgnn =
        gnnone::train_model(gnnone::Backend::kDgnn, d, "gat", dev, opts);
    h.add_cycles(id, "gnnone", 64, ours.total_cycles, "gat");
    h.add_cycles(id, "dgl", 64, dgl.total_cycles, "gat");
    char dgnn_ms[24] = "error", dgnn_s[16] = "-";
    if (dgnn.ran) {
      h.add_cycles(id, "dgnn", 64, dgnn.total_cycles, "gat");
      std::snprintf(dgnn_ms, sizeof dgnn_ms, "%12.1f",
                    gnnone::cycles_to_ms(dgnn.total_cycles));
      const double s = double(dgnn.total_cycles) / double(ours.total_cycles);
      std::snprintf(dgnn_s, sizeof dgnn_s, "%8.2f", s);
      vs_dgnn.push_back(s);
    } else {
      h.add_status(id, "dgnn", 64, "crash", "gat");
      if (d.family == gnnone::GraphFamily::kKronecker) {
        dgnn_errors_on_kron = true;
      }
    }
    const double s_dgl = double(dgl.total_cycles) / double(ours.total_cycles);
    vs_dgl.push_back(s_dgl);
    std::printf("%-22s %12.1f %12.1f %12s | %8.2f %8s\n",
                (d.id + "/" + d.name).c_str(),
                gnnone::cycles_to_ms(ours.total_cycles),
                gnnone::cycles_to_ms(dgl.total_cycles), dgnn_ms, s_dgl,
                dgnn_s);
  }
  const double avg_dgl = bench::geomean(vs_dgl);
  const double avg_dgnn = bench::geomean(vs_dgnn);
  std::printf("\nAverage GNNOne speedup: %.2fx over DGL (paper 3.68x), "
              "%.2fx over dgNN (paper 2.01x)\n",
              avg_dgl, avg_dgnn);
  std::printf("Note: dgNN uses fused kernels (one launch per attention "
              "block); GNNOne wins with\nunfused individual kernels, as in "
              "the paper (§5.3.2).\n");

  // --- paper-shape expectations (DESIGN.md §3, Fig. 6 row) -----------------
  h.metric("avg_speedup_vs_dgl", avg_dgl, 3.68);
  h.metric("avg_speedup_vs_dgnn", avg_dgnn, 2.01);
  bench::expect_ge(h, "fig6.speedup_over_dgl", avg_dgl, 1.5,
                   "geomean speedup over DGL");
  bench::expect_ge(h, "fig6.speedup_over_dgnn", avg_dgnn, 1.3,
                   "geomean speedup over dgNN");
  h.expect("fig6.dgnn_errors_on_kron21", dgnn_errors_on_kron,
           "dgNN must fail on the Kron-21 stand-in (G10)");
  return 0;
}
