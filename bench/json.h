// bench JSON — aliases the shared deterministic JSON implementation
// (src/util/json.h) into the bench namespace. The implementation used to
// live here; it moved so that the autotuning cache (src/tune/) and the bench
// pipeline serialize with one writer instead of two copies.
#pragma once

#include "util/json.h"

namespace bench {

using Json = gnnone::util::Json;
using JsonError = gnnone::util::JsonError;
using JsonMembers = gnnone::util::JsonMembers;

}  // namespace bench
