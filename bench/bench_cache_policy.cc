// Cache-policy bake-off (docs/SERVING.md §9): pre-sampling frequency vs
// degree order vs CLOCK for the serving feature cache.
//
// Part A sweeps policy x alpha x {skewed G4/G10, uniform G5} x fanouts over
// the fixed uniform serving trace. Encoded claims:
//  * FGNN's headline: the pre-sampling frequency order's hit rate is >= the
//    degree order's on the skewed graphs at every interior alpha — observed
//    access frequency under fanout caps refines what degree only
//    approximates;
//  * all three policies coincide at the degenerate capacities: alpha = 0
//    (nothing cached anywhere) and alpha = 1 (everything cached; CLOCK
//    never misses so it never installs) produce identical gather cycles and
//    hit counts;
//  * predictions are bit-identical across policies at every point — the
//    cache only decides where bytes move, never what the model computes.
//
// Part B serves a drifting-hot-set trace whose phases walk through cold
// regions of the degree order: the static degree cache cannot follow, CLOCK
// adapts — its hit rate must exceed static degree's.
//
// Part C partitions the cache per tenant for scheduled serving: a small
// steady tenant sharing a CLOCK cache with a churning tenant gets evicted;
// with its own partition (same total capacity, largest-remainder split) its
// hit rate recovers. Capacities must conserve: partition rows sum exactly
// to the shared capacity.
//
// Part D runs the tuner's replay bake-off and pins the dispatch loop:
// tune_cache_policy records the winner in the TuningCache, and a
// cache_policy = kAuto server resolves to exactly that policy.
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "gen/requests.h"
#include "serve/cache_policy.h"
#include "serve/server.h"
#include "tune/cache.h"

namespace {

using gnnone::serve::CachePolicy;

const CachePolicy kPolicies[] = {CachePolicy::kDegree,
                                 CachePolicy::kPresampleFrequency,
                                 CachePolicy::kClock};

std::string policy_config(CachePolicy p, const char* fan, double alpha) {
  char buf[80];
  std::snprintf(buf, sizeof buf, "pol=%s;fan=%s;alpha=%.2f",
                gnnone::serve::cache_policy_name(p), fan, alpha);
  return buf;
}

gnnone::RequestTraceOptions serving_trace_options() {
  gnnone::RequestTraceOptions ro;
  ro.num_requests = 96;
  ro.min_seeds = 1;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.0;  // uniform traffic: hits come from topology alone
  ro.seed = 77;
  return ro;
}

}  // namespace

GNNONE_BENCH(cache_policy, 262,
             "Serving cache policies: pre-sampling frequency vs degree vs "
             "CLOCK",
             "extension (docs/SERVING.md §9); FGNN-style frequency caching "
             "beats degree order on skewed graphs, CLOCK follows a drifting "
             "hot set") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();

  gnnone::ServeOptions base;
  base.model_kind = "gcn";
  base.batch_size = 24;
  base.fanouts = {10, 5};
  base.feature_dim_override = 32;
  base.backend = gnnone::Backend::kAuto;
  base.seed = 9;
  base.presample_epochs = 3;

  // --- Part A: policy x alpha x graph x fanout sweep ----------------------
  struct SweepGraph {
    const char* id;
    bool skewed;
  };
  struct FanCfg {
    const char* name;
    std::vector<int> fanouts;
    std::vector<double> alphas;
  };
  std::vector<SweepGraph> suite = {{"G4", true},    // wiki-Talk, power-law
                                   {"G10", true},   // Kron-21, Kronecker
                                   {"G5", false}};  // roadNet-CA, grid
  std::vector<FanCfg> fans = {{"10-5", {10, 5}, {0.0, 0.1, 0.25, 0.5, 1.0}},
                              {"5", {5}, {0.0, 0.25, 1.0}}};
  if (h.ci()) {
    suite = {{"G4", true}, {"G5", false}};
    fans = {{"10-5", {10, 5}, {0.0, 0.25, 1.0}}};
  }

  std::printf("%-5s %-7s %6s  %-15s %9s %12s %10s\n", "graph", "fanout",
              "alpha", "policy", "hit-rate", "gather-cyc", "evictions");

  bool freq_beats_degree = true, degenerate_equal = true, preds_equal = true;
  std::vector<double> freq_over_degree;
  std::string worst_point;

  for (const SweepGraph& sg : suite) {
    const gnnone::Dataset ds = gnnone::make_dataset(sg.id);
    const auto trace = gnnone::make_request_trace(ds.coo,
                                                  serving_trace_options());

    for (const FanCfg& fc : fans) {
      for (const double alpha : fc.alphas) {
        gnnone::ServingReport reps[3];
        for (int p = 0; p < 3; ++p) {
          gnnone::ServeOptions o = base;
          o.fanouts = fc.fanouts;
          o.cache_alpha = alpha;
          o.cache_policy = kPolicies[p];
          // Warm the frequency policy up on the traffic it will serve — the
          // FGNN presampling regime (epoch 0 replays the serving draws,
          // later epochs add independent ones).
          o.presample_probe = trace;
          const gnnone::InferenceServer server(ds, dev, o);
          reps[p] = server.serve(trace);

          h.add_cycles(sg.id, "cache_gather", o.feature_dim_override,
                       reps[p].gather_cycles,
                       policy_config(kPolicies[p], fc.name, alpha));
          std::printf("%-5s %-7s %6.2f  %-15s %8.1f%% %12llu %10llu\n",
                      sg.id, fc.name, alpha,
                      gnnone::serve::cache_policy_name(kPolicies[p]),
                      100.0 * reps[p].cache_hit_rate(),
                      (unsigned long long)reps[p].gather_cycles,
                      (unsigned long long)reps[p].cache_evictions);
        }

        // The cache never changes the math: identical predictions and
        // outcome stream across all three policies at every point.
        preds_equal = preds_equal &&
                      reps[1].predictions == reps[0].predictions &&
                      reps[2].predictions == reps[0].predictions;

        if (alpha == 0.0 || alpha == 1.0) {
          for (int p = 1; p < 3; ++p) {
            degenerate_equal = degenerate_equal &&
                               reps[p].gather_cycles ==
                                   reps[0].gather_cycles &&
                               reps[p].cache_hits == reps[0].cache_hits &&
                               reps[p].cache_misses == reps[0].cache_misses;
          }
        } else if (sg.skewed) {
          // FGNN's claim, at every interior alpha on every skewed graph.
          const double dr = reps[0].cache_hit_rate();
          const double fr = reps[1].cache_hit_rate();
          if (fr < dr) {
            freq_beats_degree = false;
            char buf[96];
            std::snprintf(buf, sizeof buf, "%s fan=%s alpha=%.2f: %.4f < %.4f",
                          sg.id, fc.name, alpha, fr, dr);
            worst_point = buf;
          }
          if (dr > 0.0) freq_over_degree.push_back(fr / dr);
        }
      }
    }
  }

  h.expect("cache_policy.freq_ge_degree_on_skewed", freq_beats_degree,
           freq_beats_degree
               ? "frequency hit-rate >= degree at every interior alpha"
               : worst_point);
  h.expect("cache_policy.policies_equal_at_degenerate_alpha",
           degenerate_equal,
           "alpha in {0,1} must erase every policy difference");
  h.expect("cache_policy.predictions_policy_invariant", preds_equal,
           "predictions must be bit-identical across cache policies");
  if (!freq_over_degree.empty()) {
    h.metric("freq_over_degree_hit_rate_geomean",
             bench::geomean(freq_over_degree));
  }

  // --- Part B: CLOCK on a drifting hot set --------------------------------
  // Four phases, each re-requesting a fresh window of mid-rank vertices
  // (beyond the alpha = 0.05 static capacity) three times. Degree pinning
  // was decided before the drift; CLOCK installs a phase's working set on
  // first touch and serves the repeats from device.
  {
    const gnnone::Dataset ds = gnnone::make_dataset("G4");
    const auto order = gnnone::serve::degree_order(ds.coo);
    std::vector<gnnone::SeedRequest> drift;
    const int kPhases = 4, kDistinct = 8, kRepeats = 3;
    for (int phase = 0; phase < kPhases; ++phase) {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (int r = 0; r < kDistinct; ++r) {
          gnnone::SeedRequest req;
          const std::size_t rank = std::size_t(4000 + phase * 800 + 2 * r);
          req.seeds = {order[rank], order[rank + 1]};
          drift.push_back(std::move(req));
        }
      }
    }

    gnnone::ServingReport reps[2];
    const CachePolicy pols[2] = {CachePolicy::kDegree, CachePolicy::kClock};
    for (int p = 0; p < 2; ++p) {
      gnnone::ServeOptions o = base;
      o.batch_size = 8;
      o.cache_alpha = 0.05;
      o.cache_policy = pols[p];
      const gnnone::InferenceServer server(ds, dev, o);
      reps[p] = server.serve(drift);
      h.add_cycles("G4", "cache_drift", o.feature_dim_override,
                   reps[p].gather_cycles,
                   policy_config(pols[p], "10-5", o.cache_alpha));
    }
    std::printf("\ndrifting hot set (G4, alpha=0.05): degree %.1f%% vs "
                "clock %.1f%% hit-rate\n",
                100.0 * reps[0].cache_hit_rate(),
                100.0 * reps[1].cache_hit_rate());
    h.metric("drift_hit_rate_degree", reps[0].cache_hit_rate());
    h.metric("drift_hit_rate_clock", reps[1].cache_hit_rate());
    h.expect("cache_policy.clock_follows_drifting_hot_set",
             reps[1].cache_hit_rate() >= reps[0].cache_hit_rate(),
             "clock " + std::to_string(reps[1].cache_hit_rate()) +
                 " vs degree " + std::to_string(reps[0].cache_hit_rate()));
    h.expect("cache_policy.drift_predictions_match",
             reps[0].predictions == reps[1].predictions,
             "drift-trace predictions must be policy-invariant");
  }

  // --- Part C: per-tenant cache partitioning ------------------------------
  // Tenant A churns through a large window (working set >> the whole
  // cache); tenant B re-requests a tiny steady set with shallow fanouts.
  // Shared CLOCK: A installs more than twice the capacity between B's
  // visits, so the hand wraps twice — the first sweep clears B's reference
  // bits, the second evicts its rows. Partitioned (equal shares, same total
  // rows): B's working set fits its own partition and stays resident.
  {
    const gnnone::Dataset ds = gnnone::make_dataset("G4");
    const auto order = gnnone::serve::degree_order(ds.coo);
    std::vector<gnnone::SeedRequest> trace;
    int a_issued = 0;
    for (int i = 0; i < 120; ++i) {
      gnnone::SeedRequest req;
      req.arrival_cycle = std::uint64_t(i) * 1000;
      if (i % 10 == 9) {  // every tenth request belongs to the steady tenant
        req.tenant = 1;
        const std::size_t rank = std::size_t(12000 + 2 * ((i / 10) % 8));
        req.seeds = {order[rank], order[rank + 1]};
      } else {
        req.tenant = 0;
        const std::size_t rank = std::size_t(2000 + 3 * a_issued++);
        req.seeds = {order[rank], order[rank + 1], order[rank + 2]};
      }
      trace.push_back(std::move(req));
    }

    gnnone::ServeOptions o = base;
    o.batch_size = 8;
    o.cache_alpha = 0.02;
    o.cache_policy = CachePolicy::kClock;
    gnnone::serve::TenantSpec churn, steady;
    churn.name = "churn";
    churn.fanouts = {10, 5};
    churn.slo_cycles = 1'000'000'000;
    churn.cache_share = 0.5;
    steady.name = "steady";
    steady.fanouts = {2};  // tiny neighborhoods: the set a partition shields
    steady.slo_cycles = 1'000'000'000;
    steady.cache_share = 0.5;
    o.tenants = {churn, steady};

    auto tenant_hit_rate = [](const gnnone::ServingReport& rep, int tenant) {
      std::uint64_t hits = 0, misses = 0;
      for (const gnnone::BatchStats& bs : rep.batches) {
        if (bs.tenant != tenant) continue;
        hits += bs.gather.hits;
        misses += bs.gather.misses;
      }
      const double total = double(hits + misses);
      return total > 0.0 ? double(hits) / total : 0.0;
    };

    const gnnone::InferenceServer shared(ds, dev, o);
    o.partition_cache = true;
    const gnnone::InferenceServer parted(ds, dev, o);
    const gnnone::ServingReport rs = shared.serve(trace);
    const gnnone::ServingReport rp = parted.serve(trace);

    h.add_cycles("G4", "cache_part_gather", o.feature_dim_override,
                 rs.gather_cycles, "pol=clock;mode=shared");
    h.add_cycles("G4", "cache_part_gather", o.feature_dim_override,
                 rp.gather_cycles, "pol=clock;mode=partitioned");
    h.add_cycles("G4", "cache_part_total", o.feature_dim_override,
                 rs.total_cycles, "pol=clock;mode=shared");
    h.add_cycles("G4", "cache_part_total", o.feature_dim_override,
                 rp.total_cycles, "pol=clock;mode=partitioned");

    const double b_shared = tenant_hit_rate(rs, 1);
    const double b_parted = tenant_hit_rate(rp, 1);
    std::printf("\npartitioning (G4, clock, alpha=%.2f): steady tenant "
                "%.1f%% shared vs %.1f%% partitioned\n", o.cache_alpha,
                100.0 * b_shared, 100.0 * b_parted);
    h.metric("steady_tenant_hit_rate_shared", b_shared);
    h.metric("steady_tenant_hit_rate_partitioned", b_parted);
    h.expect("cache_policy.partition_shields_steady_tenant",
             b_parted >= b_shared,
             "partitioned " + std::to_string(b_parted) + " vs shared " +
                 std::to_string(b_shared));

    const gnnone::vid_t shared_rows = shared.cache().num_cached();
    gnnone::vid_t part_rows = 0;
    for (int t = 0; t < 2; ++t) part_rows += parted.tenant_cache(t).num_cached();
    h.expect("cache_policy.partition_capacity_conserved",
             parted.partitioned() && part_rows == shared_rows,
             "partition rows " + std::to_string(part_rows) + " vs shared " +
                 std::to_string(shared_rows));
    h.expect("cache_policy.partition_predictions_match",
             rs.predictions == rp.predictions,
             "partitioning must not change predictions");
  }

  // --- Part D: tuner replay + kAuto dispatch ------------------------------
  {
    const gnnone::Dataset ds = gnnone::make_dataset("G4");
    const auto trace = gnnone::make_request_trace(ds.coo,
                                                  serving_trace_options());
    gnnone::serve::PolicyTuneConfig cfg;
    cfg.cache_alpha = 0.1;
    cfg.fanouts = {10, 5};
    cfg.batch_size = 24;
    cfg.feat_len = 32;
    cfg.seed = base.seed;
    cfg.presample_epochs = 3;
    cfg.presample_probe = trace;

    gnnone::tune::TuningCache tc;
    const gnnone::serve::CachePolicyBakeoff bake =
        gnnone::serve::tune_cache_policy(ds.coo, dev, cfg, trace, &tc);
    std::printf("\nbake-off (G4): ");
    for (const gnnone::serve::PolicyOutcome& oc : bake.outcomes) {
      h.add_cycles("G4", "cache_replay", cfg.feat_len, oc.gather_cycles,
                   std::string("pol=") +
                       gnnone::serve::cache_policy_name(oc.policy));
      std::printf("%s=%llu ", gnnone::serve::cache_policy_name(oc.policy),
                  (unsigned long long)oc.gather_cycles);
    }
    std::printf("-> winner %s\n",
                gnnone::serve::cache_policy_name(bake.winner));

    gnnone::ServeOptions o = base;
    o.cache_alpha = cfg.cache_alpha;
    o.cache_policy = CachePolicy::kAuto;
    o.tuning_cache = &tc;
    o.presample_probe = trace;
    const gnnone::InferenceServer server(ds, dev, o);
    h.expect("cache_policy.auto_dispatches_tuned_winner",
             server.cache_policy() == bake.winner,
             std::string("kAuto resolved to ") +
                 gnnone::serve::cache_policy_name(server.cache_policy()) +
                 ", bake-off winner " +
                 gnnone::serve::cache_policy_name(bake.winner));
    h.expect("cache_policy.tuner_recorded_one_entry",
             tc.serve_entries().size() == 1,
             std::to_string(tc.serve_entries().size()) + " serve entries");
  }
  return 0;
}
