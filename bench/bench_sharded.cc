// Sharded multi-device serving (docs/SERVING.md §10): the graph and feature
// table partitioned across N simulated devices, requests routed to the owner
// of their first seed, with either symmetric devices (every device samples
// AND forwards its own batches, paying the gSuite colocation dilation on
// both stages) or factored FGNN-style roles (dedicated samplers hand off to
// dedicated forward devices over NVLink, no dilation on either side).
//
// Encoded claims:
//  * predictions are bit-identical to the unsharded server at every shard
//    count and role assignment (gcn — row/component-local compute);
//  * one symmetric shard with dilation 1.0 IS the unsharded serial driver:
//    identical makespan, identical ledger total;
//  * the per-device timelines tile exactly — Σ exposed + idle == makespan on
//    every device — and gather bytes are conserved: local hit + local miss +
//    remote hit + remote miss bytes == Σ unique gathered vertices x row
//    bytes;
//  * factoring roles beats N symmetric devices on the sampling-heavy end of
//    the sweep (deep fanouts, narrow features — strictly, on >= 3 points),
//    for two compounding reasons: dedicated devices dodge the colocation
//    dilation entirely, and the sampler->forward round-robin rebalances
//    work that seed-ownership routing distributes unevenly across
//    symmetric devices;
//  * overload + admission control (SchedulerOptions::max_queue_depth) on the
//    scheduled path: the backlog stays at or under the bound, sheds are > 0,
//    and rejected + served + degraded + failed tiles the trace exactly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "gen/requests.h"
#include "serve/server.h"

namespace {

constexpr int kNumDevices = 4;

struct MixPoint {
  const char* id;        // sweep label ("fan15x10_d16")
  std::vector<int> fanouts;
  int dim;
  bool sampling_heavy;   // the factored-roles win band
};

std::string shard_config(const char* mix, const char* layout) {
  return std::string("mix=") + mix + ";layout=" + layout;
}

/// Per-device tiling: Σ exposed + idle == makespan, exactly, per device.
bool devices_tile(const gnnone::ServingReport& rep) {
  for (const gnnone::serve::DeviceShardReport& d : rep.devices) {
    if (d.exposed_cycles + d.idle_cycles != d.makespan) return false;
  }
  return true;
}

/// Gather byte conservation over the whole run (header comment).
bool bytes_conserved(const gnnone::ServingReport& rep, std::size_t row_bytes) {
  std::size_t expect = 0;
  for (const gnnone::BatchStats& b : rep.batches) {
    expect += std::size_t(b.num_unique_vertices) * row_bytes;
  }
  const std::size_t got = rep.cache_hit_bytes + rep.cache_miss_bytes +
                          rep.remote_hit_bytes + rep.remote_miss_bytes;
  return got == expect;
}

/// The factored role assignment for a given sampler count: the first
/// `samplers` devices sample, the rest forward.
gnnone::serve::ShardOptions factored(int samplers) {
  gnnone::serve::ShardOptions s;
  s.num_devices = kNumDevices;
  for (int d = 0; d < kNumDevices; ++d) {
    s.roles.push_back(d < samplers ? gnnone::serve::ShardRole::kSampler
                                   : gnnone::serve::ShardRole::kForward);
  }
  return s;
}

}  // namespace

GNNONE_BENCH(sharded, 263,
             "Sharded serving: symmetric vs factored sampler/forward roles "
             "across simulated devices",
             "extension (docs/SERVING.md §10); factored roles dodge the "
             "colocation dilation and win sampling-heavy mixes; admission "
             "control bounds the overload backlog") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const gnnone::Dataset ds = gnnone::make_dataset("G4");

  // Uniform traffic: routed load balances across the contiguous degree-order
  // shards (hot traffic would pile onto the top-degree shard — a layout
  // question, not a role question).
  gnnone::RequestTraceOptions ro;
  ro.num_requests = 96;
  ro.min_seeds = 1;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.0;
  ro.seed = 77;
  const auto trace = gnnone::make_request_trace(ds.coo, ro);

  // The fanout/dim sweep walks the sample-to-forward cost ratio: deep
  // fanouts + narrow features are the sampling-heavy end (where the win
  // expectation is pinned), shallow fanouts + wide features the
  // forward-heavy end (reported for the record — the best split shifts
  // toward fewer samplers). ci keeps one point from each end.
  std::vector<MixPoint> mixes = {
      {"fan15x10_d16", {15, 10}, 16, true},
      {"fan12x8_d16", {12, 8}, 16, true},
      {"fan10x10_d32", {10, 10}, 32, true},
      {"fan10x5_d32", {10, 5}, 32, false},
      {"fan4x2_d96", {4, 2}, 96, false}};
  if (h.ci()) {
    mixes = {{"fan15x10_d16", {15, 10}, 16, true},
             {"fan4x2_d96", {4, 2}, 96, false}};
  }

  std::printf("%-14s %10s %12s %12s %12s %12s  %s\n", "mix", "unsharded",
              "sym x4", "3s+1f", "2s+2f", "1s+3f", "best");

  bool preds_invariant = true;
  bool identity_exact = true;
  bool tiles = true;
  bool conserved = true;
  int factored_wins = 0, heavy_points = 0;
  std::vector<double> win_ratios;

  for (const MixPoint& mix : mixes) {
    gnnone::ServeOptions base;
    base.model_kind = "gcn";
    base.batch_size = 8;
    base.fanouts = mix.fanouts;
    base.cache_alpha = 0.1;
    base.feature_dim_override = mix.dim;
    base.backend = gnnone::Backend::kGnnOne;
    base.seed = 9;

    const gnnone::InferenceServer flat(ds, dev, base);
    const gnnone::ServingReport flat_rep = flat.serve(trace);
    const std::size_t row_bytes = std::size_t(mix.dim) * 4;

    // One symmetric shard with no dilation IS the unsharded serial driver.
    {
      gnnone::ServeOptions o = base;
      o.shard.num_devices = 1;
      o.shard.colocation_dilation = 1.0;
      const gnnone::InferenceServer one(ds, dev, o);
      const gnnone::ServingReport rep = one.serve(trace);
      identity_exact = identity_exact &&
                       rep.total_cycles == flat_rep.total_cycles &&
                       rep.ledger.total() == flat_rep.ledger.total() &&
                       rep.predictions == flat_rep.predictions;
    }

    // Symmetric N devices vs every factored split.
    std::uint64_t sym_cycles = 0, best_factored = 0;
    std::vector<std::uint64_t> cycles_by_layout;
    const std::vector<std::pair<const char*, gnnone::serve::ShardOptions>>
        layouts = {{"sym", [] {
                      gnnone::serve::ShardOptions s;
                      s.num_devices = kNumDevices;
                      return s;
                    }()},
                   {"3s1f", factored(3)},
                   {"2s2f", factored(2)},
                   {"1s3f", factored(1)}};
    for (const auto& [name, shard] : layouts) {
      gnnone::ServeOptions o = base;
      o.shard = shard;
      const gnnone::InferenceServer server(ds, dev, o);
      const gnnone::ServingReport rep = server.serve(trace);

      preds_invariant = preds_invariant &&
                        rep.predictions == flat_rep.predictions;
      tiles = tiles && devices_tile(rep);
      conserved = conserved && bytes_conserved(rep, row_bytes);

      h.add_cycles("G4", "shard_makespan", mix.dim, rep.total_cycles,
                   shard_config(mix.id, name));
      cycles_by_layout.push_back(rep.total_cycles);
      if (std::string(name) == "sym") {
        sym_cycles = rep.total_cycles;
      } else {
        best_factored = best_factored == 0
                            ? rep.total_cycles
                            : std::min(best_factored, rep.total_cycles);
      }
    }

    const char* best = best_factored < sym_cycles ? "factored" : "symmetric";
    std::printf("%-14s %10llu %12llu %12llu %12llu %12llu  %s\n", mix.id,
                (unsigned long long)flat_rep.total_cycles,
                (unsigned long long)cycles_by_layout[0],
                (unsigned long long)cycles_by_layout[1],
                (unsigned long long)cycles_by_layout[2],
                (unsigned long long)cycles_by_layout[3], best);

    if (mix.sampling_heavy) {
      ++heavy_points;
      if (best_factored < sym_cycles) ++factored_wins;
      win_ratios.push_back(double(sym_cycles) / double(best_factored));
    }
  }

  h.expect("sharded.predictions_invariant", preds_invariant,
           "sharded predictions differ from the unsharded server");
  h.expect("sharded.one_shard_is_unsharded", identity_exact,
           "1 symmetric shard at dilation 1.0 != the unsharded serial run");
  h.expect("sharded.devices_tile_exactly", tiles,
           "some device's exposed + idle != makespan");
  h.expect("sharded.gather_bytes_conserved", conserved,
           "hit+miss+remote bytes != unique vertices x row bytes");
  h.expect("sharded.factored_wins_sampling_heavy",
           factored_wins == heavy_points && heavy_points >= (h.ci() ? 1 : 3),
           "factored roles lost a sampling-heavy point to symmetric");
  if (!win_ratios.empty()) {
    double prod = 1.0;
    for (double r : win_ratios) prod *= r;
    h.metric("factored_speedup_geomean_sampling_heavy",
             std::pow(prod, 1.0 / double(win_ratios.size())));
  }

  // --- overload + admission control on the scheduled path ----------------
  // One tenant, Poisson arrivals far above service capacity: unbounded, the
  // backlog grows with the trace; with max_queue_depth the peak stays at the
  // bound and the overflow is shed at admission as kRejected.
  {
    gnnone::TenantWorkload w;
    w.requests.num_requests = h.ci() ? 48 : 96;
    w.requests.min_seeds = 1;
    w.requests.max_seeds = 2;
    w.requests.seed = 31;
    w.arrivals.process = gnnone::ArrivalProcess::kPoisson;
    // A batch of 8 services in ~25k cycles; arrivals every ~100 cycles
    // offer ~30x capacity, so the whole trace lands during the first few
    // batches and the backlog is the trace minus what got served.
    w.arrivals.mean_interarrival_cycles = 100.0;
    w.arrivals.seed = 31;
    const auto open_trace = gnnone::make_open_loop_trace(ds.coo, {w});

    gnnone::ServeOptions o;
    o.model_kind = "gcn";
    o.batch_size = 8;
    o.fanouts = {10, 5};
    o.cache_alpha = 0.1;
    o.feature_dim_override = 32;
    o.backend = gnnone::Backend::kGnnOne;
    o.seed = 9;
    o.tenants = {{"overloaded", "gcn", {10, 5}, 40'000'000, 0.0}};

    const std::size_t kDepth = 12;
    std::vector<std::pair<const char*, std::size_t>> runs = {
        {"unbounded", 0}, {"bounded", kDepth}};
    std::size_t unbounded_peak = 0, bounded_peak = 0;
    int shed = 0;
    bool tiling = true;
    for (const auto& [name, depth] : runs) {
      gnnone::ServeOptions oo = o;
      oo.scheduler.max_queue_depth = depth;
      const gnnone::InferenceServer server(ds, dev, oo);
      const gnnone::ServingReport rep = server.serve(open_trace);
      h.add_cycles("G4", "shard_admission_makespan", 32, rep.total_cycles,
                   std::string("queue=") + name);
      tiling = tiling &&
               rep.served_requests() + rep.rejected_requests() +
                       rep.failed_requests() ==
                   rep.num_requests;
      if (depth == 0) {
        unbounded_peak = rep.peak_queue_depth;
      } else {
        bounded_peak = rep.peak_queue_depth;
        shed = rep.rejected_requests();
      }
    }
    std::printf("admission: unbounded peak %zu, bounded peak %zu (cap %zu), "
                "shed %d\n",
                unbounded_peak, bounded_peak, kDepth, shed);
    h.metric("admission_unbounded_peak_depth", double(unbounded_peak));
    h.metric("admission_shed_requests", double(shed));
    h.expect("sharded.admission_bounds_backlog",
             bounded_peak <= kDepth && unbounded_peak > kDepth,
             "max_queue_depth failed to bound the overload backlog");
    h.expect("sharded.admission_sheds_overflow", shed > 0,
             "overload with a bounded queue shed nothing");
    h.expect("sharded.admission_accounting_tiles", tiling,
             "served + rejected + failed != trace size under admission");
  }
  return 0;
}
