// Micro-benchmarks (google-benchmark) of the simulator substrate itself:
// host-side throughput of the functional SIMT execution. These are wall-
// clock numbers about the *simulator*, not modeled GPU time — useful to
// size experiments and catch performance regressions in gpusim.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/gnnone.h"
#include "gen/rmat.h"
#include "gpusim/warp.h"

namespace {

const gnnone::Coo& graph() {
  static const gnnone::Coo g = [] {
    gnnone::RmatParams p;
    p.scale = 12;
    p.edge_factor = 8;
    return gnnone::rmat_graph(p);
  }();
  return g;
}

void BM_SimulatedSpmm(benchmark::State& state) {
  const int f = int(state.range(0));
  const auto& g = graph();
  std::vector<float> ev(std::size_t(g.nnz()), 1.0f);
  std::vector<float> x(std::size_t(g.num_rows) * std::size_t(f), 0.5f);
  std::vector<float> y(x.size());
  gnnone::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.spmm(g, ev, x, f, y).cycles);
  }
  state.SetItemsProcessed(state.iterations() * g.nnz() * f);
}
BENCHMARK(BM_SimulatedSpmm)->Arg(16)->Arg(32)->Arg(64);

void BM_SimulatedSddmm(benchmark::State& state) {
  const int f = int(state.range(0));
  const auto& g = graph();
  std::vector<float> x(std::size_t(g.num_rows) * std::size_t(f), 0.5f);
  std::vector<float> w(std::size_t(g.nnz()));
  gnnone::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sddmm(g, x, x, f, w).cycles);
  }
  state.SetItemsProcessed(state.iterations() * g.nnz() * f);
}
BENCHMARK(BM_SimulatedSddmm)->Arg(16)->Arg(32)->Arg(64);

void BM_CoalescingAnalysis(benchmark::State& state) {
  gpusim::LaneArray<std::uint64_t> addr{};
  for (int l = 0; l < gpusim::kWarpSize; ++l) {
    addr[std::size_t(l)] = std::uint64_t(l) * 64;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpusim::detail::count_transactions(addr, gpusim::kFullMask));
  }
}
BENCHMARK(BM_CoalescingAnalysis);

}  // namespace

BENCHMARK_MAIN();
