// Micro-benchmarks of the simulator substrate itself.
//
// Standalone (default): google-benchmark wall-clock numbers for host-side
// throughput of the functional SIMT execution — useful to size experiments
// and catch performance regressions in gpusim. Wall time is machine-
// dependent, so this mode stays out of the machine-readable results.
//
// Under -DGNNONE_BENCH_RUNNER the same workloads run once each and register
// their *modeled* cycles with the harness instead: deterministic, baseline-
// gateable coverage of the simulator substrate in BENCH_RESULTS.json.
#ifdef GNNONE_BENCH_RUNNER

#include "common.h"
#include "gen/rmat.h"

GNNONE_BENCH(gpusim_micro, 300,
             "Micro: modeled cycles of the simulator substrate workloads",
             "not a paper figure; deterministic variant of the wall-clock "
             "micro-benchmarks") {
  gnnone::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const gnnone::Coo g = gnnone::rmat_graph(p);
  std::vector<float> ev(std::size_t(g.nnz()), 1.0f);
  gnnone::Context ctx;

  std::printf("RMAT scale=12 ef=8: V=%d E=%lld\n", g.num_rows,
              (long long)g.nnz());
  std::printf("%-8s %6s | %14s\n", "kernel", "f", "modeled cycles");
  std::uint64_t prev_spmm = 0, prev_sddmm = 0;
  bool monotonic = true;
  for (int f : {16, 32, 64}) {
    std::vector<float> x(std::size_t(g.num_rows) * std::size_t(f), 0.5f);
    std::vector<float> y(x.size());
    std::vector<float> w(std::size_t(g.nnz()));
    const auto spmm = ctx.spmm(g, ev, x, f, y);
    const auto sddmm = ctx.sddmm(g, x, x, f, w);
    h.add("rmat12", "spmm", f, spmm);
    h.add("rmat12", "sddmm", f, sddmm);
    std::printf("%-8s %6d | %14llu\n", "spmm", f,
                static_cast<unsigned long long>(spmm.cycles));
    std::printf("%-8s %6d | %14llu\n", "sddmm", f,
                static_cast<unsigned long long>(sddmm.cycles));
    monotonic = monotonic && spmm.cycles > prev_spmm &&
                sddmm.cycles > prev_sddmm;
    prev_spmm = spmm.cycles;
    prev_sddmm = sddmm.cycles;
  }
  // More features = more data moved = more modeled cycles; a substrate
  // change that breaks this broke the cost model, not a kernel.
  h.expect("micro.cycles_grow_with_f", monotonic,
           "modeled cycles strictly increase with feature length");
  return 0;
}

#else  // standalone: google-benchmark wall-clock mode

#include <benchmark/benchmark.h>

#include <vector>

#include "core/gnnone.h"
#include "gen/rmat.h"
#include "gpusim/warp.h"

namespace {

const gnnone::Coo& graph() {
  static const gnnone::Coo g = [] {
    gnnone::RmatParams p;
    p.scale = 12;
    p.edge_factor = 8;
    return gnnone::rmat_graph(p);
  }();
  return g;
}

void BM_SimulatedSpmm(benchmark::State& state) {
  const int f = int(state.range(0));
  const auto& g = graph();
  std::vector<float> ev(std::size_t(g.nnz()), 1.0f);
  std::vector<float> x(std::size_t(g.num_rows) * std::size_t(f), 0.5f);
  std::vector<float> y(x.size());
  gnnone::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.spmm(g, ev, x, f, y).cycles);
  }
  state.SetItemsProcessed(state.iterations() * g.nnz() * f);
}
BENCHMARK(BM_SimulatedSpmm)->Arg(16)->Arg(32)->Arg(64);

void BM_SimulatedSddmm(benchmark::State& state) {
  const int f = int(state.range(0));
  const auto& g = graph();
  std::vector<float> x(std::size_t(g.num_rows) * std::size_t(f), 0.5f);
  std::vector<float> w(std::size_t(g.nnz()));
  gnnone::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sddmm(g, x, x, f, w).cycles);
  }
  state.SetItemsProcessed(state.iterations() * g.nnz() * f);
}
BENCHMARK(BM_SimulatedSddmm)->Arg(16)->Arg(32)->Arg(64);

void BM_CoalescingAnalysis(benchmark::State& state) {
  gpusim::LaneArray<std::uint64_t> addr{};
  for (int l = 0; l < gpusim::kWarpSize; ++l) {
    addr[std::size_t(l)] = std::uint64_t(l) * 64;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpusim::detail::count_transactions(addr, gpusim::kFullMask));
  }
}
BENCHMARK(BM_CoalescingAnalysis);

}  // namespace

BENCHMARK_MAIN();

#endif  // GNNONE_BENCH_RUNNER
