// Fig. 5: GNN training accuracy — GNNOne's kernels integrated into the
// training stack reach the same accuracy as the DGL-style stack on all three
// models, demonstrating kernel correctness end-to-end.
#include "common.h"

int main() {
  bench::print_header(
      "Fig. 5: GNN training accuracy, GNNOne vs DGL backends",
      "paper Fig. 5 (identical accuracy bars across systems)");
  const auto& dev = gpusim::default_device();

  std::printf("%-10s %-6s | %8s %8s | %s\n", "dataset", "model", "GNNOne",
              "DGL", "match");
  bool all_match = true;
  for (const auto& id : gnnone::accuracy_suite_ids()) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    for (const std::string kind : {"gcn", "gin", "gat"}) {
      gnnone::TrainOptions opts;
      opts.measured_epochs = 40;
      opts.epochs = 40;
      opts.feature_dim_override = 32;
      opts.lr = 0.02f;
      const auto a =
          gnnone::train_model(gnnone::Backend::kGnnOne, d, kind, dev, opts);
      const auto b =
          gnnone::train_model(gnnone::Backend::kDgl, d, kind, dev, opts);
      const bool match =
          a.ran && b.ran && std::abs(a.final_accuracy - b.final_accuracy) < 0.02;
      all_match = all_match && match;
      std::printf("%-10s %-6s | %8.3f %8.3f | %s\n",
                  (d.id + "/" + d.name).c_str(), kind.c_str(),
                  a.final_accuracy, b.final_accuracy,
                  match ? "yes" : "NO");
    }
  }
  std::printf("\n%s: both backends compute identical math; accuracy parity "
              "shows the kernel\nintegration works correctly (the paper's "
              "point for this figure).\n",
              all_match ? "PASS" : "FAIL");
  return all_match ? 0 : 1;
}
