// Fig. 5: GNN training accuracy — GNNOne's kernels integrated into the
// training stack reach the same accuracy as the DGL-style stack on all three
// models, demonstrating kernel correctness end-to-end.
#include "common.h"

GNNONE_BENCH(fig5_accuracy, 50,
             "Fig. 5: GNN training accuracy, GNNOne vs DGL backends",
             "paper Fig. 5 (identical accuracy bars across systems)") {
  const auto& dev = gpusim::default_device();

  // Parity is a property of the math, not of convergence, so the ci scale
  // trains fewer epochs (the absolute bars differ; the gap does not).
  const int epochs = h.ci() ? 12 : 40;

  std::printf("%-10s %-6s | %8s %8s | %s\n", "dataset", "model", "GNNOne",
              "DGL", "match");
  bool all_match = true;
  double worst_gap = 0.0;
  for (const auto& id : h.accuracy_suite()) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    for (const std::string kind : {"gcn", "gin", "gat"}) {
      gnnone::TrainOptions opts;
      opts.measured_epochs = epochs;
      opts.epochs = epochs;
      opts.feature_dim_override = 32;
      opts.lr = 0.02f;
      const auto a =
          gnnone::train_model(gnnone::Backend::kGnnOne, d, kind, dev, opts);
      const auto b =
          gnnone::train_model(gnnone::Backend::kDgl, d, kind, dev, opts);
      const double gap = std::abs(a.final_accuracy - b.final_accuracy);
      const bool match = a.ran && b.ran && gap < 0.02;
      all_match = all_match && match;
      worst_gap = std::max(worst_gap, gap);
      h.add_cycles(id, "gnnone", 32, a.total_cycles, kind);
      h.add_cycles(id, "dgl", 32, b.total_cycles, kind);
      h.metric(id + "." + kind + ".accuracy_gnnone", a.final_accuracy);
      h.metric(id + "." + kind + ".accuracy_dgl", b.final_accuracy);
      std::printf("%-10s %-6s | %8.3f %8.3f | %s\n",
                  (d.id + "/" + d.name).c_str(), kind.c_str(),
                  a.final_accuracy, b.final_accuracy,
                  match ? "yes" : "NO");
    }
  }
  std::printf("\n%s: both backends compute identical math; accuracy parity "
              "shows the kernel\nintegration works correctly (the paper's "
              "point for this figure).\n",
              all_match ? "PASS" : "FAIL");
  // DESIGN.md §3, Fig. 5 row: identical accuracy across systems.
  h.expect("fig5.accuracy_parity", all_match,
           bench::detail("worst |GNNOne - DGL| accuracy gap = %.4f "
                         "(want < 0.02 everywhere)",
                         worst_gap));
  return 0;
}
