// Extension ablation: kernel fusion on top of GNNOne (the paper's §5.3.2
// future work: "We believe kernel fusion would provide even better
// performance to GNNOne"). Compares unfused GNNOne, fused GNNOne, DGL and
// dgNN on end-to-end GAT training.
#include "common.h"

GNNONE_BENCH(ablation_fusion, 200,
             "Ablation: GNNOne + fused GAT attention (paper future work, "
             "§5.3.2)",
             "extension beyond the paper; paper predicts fusion adds "
             "speedup") {
  const auto& dev = gpusim::default_device();

  gnnone::TrainOptions opts;
  opts.measured_epochs = 2;
  opts.epochs = 200;
  opts.eval_accuracy = false;
  opts.feature_dim_override = 64;

  std::printf("%-22s %12s %12s %12s %12s | %9s\n", "dataset", "GnnOne(ms)",
              "+fusion(ms)", "DGL(ms)", "dgNN(ms)", "fusion x");
  std::vector<double> gains;
  for (const auto& id : h.reduce({"G9", "G11", "G12", "G14", "G15"})) {
    const gnnone::Dataset d = gnnone::make_dataset(id);
    const auto base =
        gnnone::train_model(gnnone::Backend::kGnnOne, d, "gat", dev, opts);
    const auto fused = gnnone::train_model(gnnone::Backend::kGnnOneFused, d,
                                           "gat", dev, opts);
    const auto dgl =
        gnnone::train_model(gnnone::Backend::kDgl, d, "gat", dev, opts);
    const auto dgnn =
        gnnone::train_model(gnnone::Backend::kDgnn, d, "gat", dev, opts);
    h.add_cycles(id, "gnnone", 64, base.total_cycles, "gat");
    h.add_cycles(id, "gnnone-fused", 64, fused.total_cycles, "gat");
    h.add_cycles(id, "dgl", 64, dgl.total_cycles, "gat");
    if (dgnn.ran) h.add_cycles(id, "dgnn", 64, dgnn.total_cycles, "gat");
    const double gain = double(base.total_cycles) / double(fused.total_cycles);
    gains.push_back(gain);
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f | %9.2f\n",
                (d.id + "/" + d.name).c_str(),
                gnnone::cycles_to_ms(base.total_cycles),
                gnnone::cycles_to_ms(fused.total_cycles),
                gnnone::cycles_to_ms(dgl.total_cycles),
                dgnn.ran ? gnnone::cycles_to_ms(dgnn.total_cycles) : -1.0,
                gain);
  }
  const double avg = bench::geomean(gains);
  std::printf(
      "\naverage fusion gain over unfused GNNOne: %.2fx end-to-end training.\n"
      "Only the forward pass is fused (backward reuses individual kernels), "
      "and training is\nbackward-dominated, so the end-to-end gain is modest; "
      "the forward/inference-only gain\nis larger (examples/fused_inference). "
      "A fused backward — the remaining future work —\nwould move the "
      "training number toward the inference one.\n",
      avg);

  // Extension claim (DESIGN.md E-series): forward-only fusion must never
  // slow training down end-to-end.
  h.metric("avg_fusion_gain_training", avg);
  bench::expect_ge(h, "fusion.never_slower_end_to_end", avg, 0.97,
                   "geomean fused/unfused training gain");
  return 0;
}
