// Serving extension (docs/SERVING.md): request-batched GNN inference with
// k-hop sampling and an FGNN-style degree-ordered static feature cache.
//
// For each dataset a fixed request trace is served under a sweep of the
// cache fraction alpha; sampling and forward cycles are alpha-independent,
// so the sweep isolates the feature-gather stage the cache accelerates. The
// encoded claims:
//  * alpha = 0 serves every feature over PCIe (zero hits) and alpha = 1
//    serves everything from device memory (zero misses);
//  * cached vertex sets are nested in alpha, so gather cycles fall
//    monotonically as alpha grows — on every graph class;
//  * on skewed graphs (power-law, Kronecker) sampled neighborhoods
//    concentrate on high-degree vertices, so a small cache already serves
//    most of the traffic: the hit rate at fixed alpha clearly exceeds the
//    uniform road-grid's, where the hit rate roughly tracks alpha itself.
//
// A second sweep pins the three-slot serving pipeline (ServeOptions::
// pipeline): across fanout/alpha points the pipelined makespan never exceeds
// the serial total, the saving never exceeds the sample+gather cycles it can
// hide, predictions stay bit-identical, and a single-batch control (nothing
// to overlap with) lands exactly on the serial total.
#include <cstdio>

#include "common.h"
#include "gen/requests.h"
#include "serve/server.h"

namespace {

struct ServeDataset {
  const char* id;
  bool skewed;  // power-law / Kronecker vs near-uniform degree distribution
};

std::string alpha_config(double alpha) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "alpha=%.2f", alpha);
  return buf;
}

std::string pipe_config(const char* fan, double alpha) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "fan=%s;alpha=%.2f", fan, alpha);
  return buf;
}

/// Every stage's exposed cycles must tile the timeline exactly.
bool exposed_sums_to_makespan(const gnnone::ServingReport& r) {
  return r.sample_split.exposed + r.gather_split.exposed +
             r.forward_split.exposed ==
         r.total_cycles;
}

}  // namespace

GNNONE_BENCH(serving, 260,
             "Serving: sampled inference with a degree-ordered feature cache",
             "extension (docs/SERVING.md); gather cycles monotone in alpha, "
             "skewed graphs hit the static cache far above uniform ones") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();

  // Full scale: two skewed graph classes + the uniform control; ci keeps one
  // of each (rows are an exact subset — same trace, same server, so a ci
  // row's cycles equal the full run's).
  std::vector<ServeDataset> suite = {{"G4", true},    // wiki-Talk, power-law
                                     {"G10", true},   // Kron-21, Kronecker
                                     {"G5", false}};  // roadNet-CA, grid
  std::vector<double> alphas = {0.0, 0.05, 0.1, 0.25, 0.5, 1.0};
  if (h.ci()) {
    suite = {{"G4", true}, {"G5", false}};
    alphas = {0.0, 0.1, 1.0};
  }
  const double kFixedAlpha = 0.1;  // the skew-gap comparison point

  gnnone::ServeOptions opts;
  opts.model_kind = "gcn";
  opts.batch_size = 24;
  opts.fanouts = {10, 5};
  opts.feature_dim_override = 32;
  opts.backend = gnnone::Backend::kAuto;
  opts.seed = 9;

  std::printf("%-5s %-10s %6s  %9s %9s %12s %12s\n", "graph", "class",
              "alpha", "hit-rate", "hits", "gather-cyc", "total-cyc");

  double skewed_min_rate = 1.0, uniform_max_rate = 0.0;
  std::vector<double> skewed_cold_over_warm;

  for (const ServeDataset& sd : suite) {
    const gnnone::Dataset ds = gnnone::make_dataset(sd.id);

    gnnone::RequestTraceOptions ro;
    ro.num_requests = 96;
    ro.min_seeds = 1;
    ro.max_seeds = 3;
    ro.hot_fraction = 0.0;  // uniform traffic: hits come from topology alone
    ro.seed = 77;
    const auto trace = gnnone::make_request_trace(ds.coo, ro);

    std::uint64_t prev_gather = 0;
    std::uint64_t first_gather = 0, last_gather = 0;
    std::uint64_t base_sample = 0, base_forward = 0;
    bool monotone = true, stages_stable = true;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      const double alpha = alphas[i];
      gnnone::ServeOptions o = opts;
      o.cache_alpha = alpha;
      const gnnone::InferenceServer server(ds, dev, o);
      const gnnone::ServingReport rep = server.serve(trace);

      const std::string cfg = alpha_config(alpha);
      h.add_cycles(sd.id, "serve_gather", o.feature_dim_override,
                   rep.gather_cycles, cfg);
      h.add_cycles(sd.id, "serve_total", o.feature_dim_override,
                   rep.total_cycles, cfg);
      std::printf("%-5s %-10s %6.2f  %8.1f%% %9llu %12llu %12llu\n", sd.id,
                  sd.skewed ? "skewed" : "uniform", alpha,
                  100.0 * rep.cache_hit_rate(),
                  (unsigned long long)rep.cache_hits,
                  (unsigned long long)rep.gather_cycles,
                  (unsigned long long)rep.total_cycles);

      if (i == 0) {
        base_sample = rep.sample_cycles;
        base_forward = rep.forward_cycles;
        h.add_cycles(sd.id, "serve_sample", o.feature_dim_override,
                     rep.sample_cycles, "");
        h.add_cycles(sd.id, "serve_forward", o.feature_dim_override,
                     rep.forward_cycles, "");
        first_gather = rep.gather_cycles;
      } else {
        monotone = monotone && rep.gather_cycles <= prev_gather;
        stages_stable = stages_stable && rep.sample_cycles == base_sample &&
                        rep.forward_cycles == base_forward;
      }
      prev_gather = rep.gather_cycles;
      last_gather = rep.gather_cycles;

      if (alpha == 0.0) {
        h.expect("serving.alpha0_all_miss." + std::string(sd.id),
                 rep.cache_hits == 0,
                 "hits=" + std::to_string(rep.cache_hits));
      }
      if (alpha == 1.0) {
        h.expect("serving.alpha1_all_hit." + std::string(sd.id),
                 rep.cache_misses == 0,
                 "misses=" + std::to_string(rep.cache_misses));
      }
      if (alpha == kFixedAlpha) {
        if (sd.skewed) {
          skewed_min_rate = std::min(skewed_min_rate, rep.cache_hit_rate());
        } else {
          uniform_max_rate = std::max(uniform_max_rate, rep.cache_hit_rate());
        }
        h.metric("hit_rate_alpha0.1_" + std::string(sd.id),
                 rep.cache_hit_rate());
      }
    }

    h.expect("serving.gather_monotone_in_alpha." + std::string(sd.id),
             monotone, "gather cycles must not grow with alpha");
    h.expect("serving.alpha_touches_only_gather." + std::string(sd.id),
             stages_stable, "sample/forward cycles must be alpha-independent");
    if (sd.skewed && last_gather > 0) {
      skewed_cold_over_warm.push_back(double(first_gather) /
                                      double(last_gather));
    }
  }

  // The skew gap: every skewed graph's hit rate at alpha = 0.1 beats the
  // uniform control's by a clear margin.
  char detail[128];
  std::snprintf(detail, sizeof detail,
                "skewed min %.3f vs uniform max %.3f (margin 0.15)",
                skewed_min_rate, uniform_max_rate);
  h.expect("serving.skewed_hit_rate_gap",
           skewed_min_rate >= uniform_max_rate + 0.15, detail);

  const double cold_over_warm = bench::geomean(skewed_cold_over_warm);
  h.metric("skewed_gather_cold_over_full_cache", cold_over_warm);
  h.expect("serving.cache_pays_on_skewed", cold_over_warm > 2.0,
           "alpha=0 gather must cost >2x the all-cached gather on skewed "
           "graphs (PCIe vs DRAM bandwidth)");

  std::printf("\nskewed hit-rate @ alpha=0.1 >= %.3f; uniform <= %.3f; "
              "cold/warm gather = %.2fx\n",
              skewed_min_rate, uniform_max_rate, cold_over_warm);

  // --- Pipelined serving sweep ------------------------------------------
  // Serial vs three-slot pipeline over fanout x alpha points. Fanout scales
  // the sample stage, alpha scales the gather stage, so the sweep varies
  // exactly the work the pipeline can hide behind the forward pass. ci rows
  // are an exact subset of the full sweep (same trace, same options).
  struct FanCfg {
    const char* name;
    std::vector<int> fanouts;
  };
  std::vector<const char*> pipe_graphs = {"G4", "G10"};
  std::vector<FanCfg> fans = {
      {"5", {5}}, {"10-5", {10, 5}}, {"15-10-5", {15, 10, 5}}};
  std::vector<double> pipe_alphas = {0.0, 0.1, 1.0};
  if (h.ci()) {
    pipe_graphs = {"G4"};
    fans = {{"10-5", {10, 5}}};
    pipe_alphas = {0.0, 1.0};
  }

  std::printf("\n%-5s %-9s %6s  %12s %12s %8s %10s\n", "graph", "fanout",
              "alpha", "serial-cyc", "pipe-cyc", "speedup", "hidden-cyc");

  bool never_slower = true, saving_bounded = true, preds_match = true;
  bool exposed_sums = true;
  int strictly_faster = 0;
  std::vector<double> speedups;
  for (const char* gid : pipe_graphs) {
    const gnnone::Dataset ds = gnnone::make_dataset(gid);
    gnnone::RequestTraceOptions ro;
    ro.num_requests = 96;
    ro.min_seeds = 1;
    ro.max_seeds = 3;
    ro.hot_fraction = 0.0;
    ro.seed = 77;
    const auto trace = gnnone::make_request_trace(ds.coo, ro);

    for (const FanCfg& fc : fans) {
      for (const double alpha : pipe_alphas) {
        gnnone::ServeOptions o = opts;
        o.fanouts = fc.fanouts;
        o.cache_alpha = alpha;
        const gnnone::InferenceServer serial_server(ds, dev, o);
        o.pipeline = true;
        const gnnone::InferenceServer pipe_server(ds, dev, o);
        const gnnone::ServingReport rs = serial_server.serve(trace);
        const gnnone::ServingReport rp = pipe_server.serve(trace);

        const std::string cfg = pipe_config(fc.name, alpha);
        h.add_cycles(gid, "serve_serial", o.feature_dim_override,
                     rs.total_cycles, cfg);
        h.add_cycles(gid, "serve_pipelined", o.feature_dim_override,
                     rp.total_cycles, cfg);

        never_slower = never_slower && rp.total_cycles <= rs.total_cycles;
        const std::uint64_t saving = rs.total_cycles - rp.total_cycles;
        // Overlap can only hide sample+gather work; forward is never hidden,
        // so zero sample+gather cycles would force saving == 0.
        saving_bounded =
            saving_bounded && saving <= rp.sample_cycles + rp.gather_cycles;
        preds_match = preds_match && rp.predictions == rs.predictions;
        exposed_sums = exposed_sums && exposed_sums_to_makespan(rs) &&
                       exposed_sums_to_makespan(rp);
        if (rp.total_cycles < rs.total_cycles) ++strictly_faster;
        speedups.push_back(double(rs.total_cycles) /
                           double(rp.total_cycles));

        std::printf("%-5s %-9s %6.2f  %12llu %12llu %7.3fx %10llu\n", gid,
                    fc.name, alpha, (unsigned long long)rs.total_cycles,
                    (unsigned long long)rp.total_cycles,
                    double(rs.total_cycles) / double(rp.total_cycles),
                    (unsigned long long)saving);
      }
    }

    // Single-batch control: with one minibatch there is no batch b+1 to
    // prepare during the forward, so the pipelined makespan must land
    // exactly on the serial total — overlap only ever helps when another
    // batch's sample+gather cycles exist to hide.
    if (std::string(gid) == "G4") {
      gnnone::ServeOptions o = opts;
      o.batch_size = int(trace.size());
      const gnnone::InferenceServer serial_server(ds, dev, o);
      o.pipeline = true;
      const gnnone::InferenceServer pipe_server(ds, dev, o);
      const gnnone::ServingReport rs = serial_server.serve(trace);
      const gnnone::ServingReport rp = pipe_server.serve(trace);
      h.add_cycles(gid, "serve_serial", o.feature_dim_override,
                   rs.total_cycles, "fan=10-5;alpha=0.10;bs=96");
      h.add_cycles(gid, "serve_pipelined", o.feature_dim_override,
                   rp.total_cycles, "fan=10-5;alpha=0.10;bs=96");
      h.expect("serving.pipeline_single_batch_no_overlap",
               rp.total_cycles == rs.total_cycles &&
                   rp.predictions == rs.predictions,
               "one batch leaves nothing to overlap: pipelined total " +
                   std::to_string(rp.total_cycles) + " vs serial " +
                   std::to_string(rs.total_cycles));
    }
  }

  h.expect("serving.pipeline_never_slower", never_slower,
           "pipelined makespan must be <= the serial total on every point");
  h.expect("serving.pipeline_saving_bounded", saving_bounded,
           "overlap can hide at most the sample+gather cycles");
  h.expect("serving.pipeline_predictions_match", preds_match,
           "pipelined predictions must be bit-identical to serial");
  h.expect("serving.pipeline_exposed_sums_to_makespan", exposed_sums,
           "per-stage exposed cycles must sum to total_cycles");
  const int need_faster = h.ci() ? 1 : 3;
  h.expect("serving.pipeline_strictly_faster",
           strictly_faster >= need_faster,
           std::to_string(strictly_faster) + " of " +
               std::to_string(speedups.size()) +
               " points strictly faster (need >= " +
               std::to_string(need_faster) + ")");
  const double speedup = bench::geomean(speedups);
  h.metric("pipeline_speedup_geomean", speedup);
  std::printf("\npipeline speedup geomean %.3fx over %zu points; %d strictly "
              "faster\n",
              speedup, speedups.size(), strictly_faster);
  return 0;
}
