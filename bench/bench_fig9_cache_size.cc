// Fig. 9: Stage-1 cache size — caching 128 NZEs per warp vs 32 in SpMM
// (feature length 16). Larger caches amortize the memory barrier that guards
// shared-memory reads (§4.1.1).
#include "common.h"

GNNONE_BENCH(fig9_cache_size, 90,
             "Fig. 9: SpMM Stage-1 CACHE_SIZE, 128 vs 32 NZEs per warp "
             "(f=16)",
             "paper Fig. 9; paper average: 1.31x for 128") {
  gnnone::Context ctx;
  const int dim = 16;

  gnnone::GnnOneConfig c32, c128;
  c32.cache_size = 32;
  c128.cache_size = 128;

  std::printf("%-22s %12s %12s | %9s\n", "dataset", "cache=32(ms)",
              "cache=128(ms)", "speedup");
  std::vector<double> speedups;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 51);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
    const auto a = ctx.spmm(coo, wl.edge_val, x, dim, y, c32);
    const auto b = ctx.spmm(coo, wl.edge_val, x, dim, y, c128);
    h.add(id, "gnnone", dim, a, "cache=32");
    h.add(id, "gnnone", dim, b, "cache=128");
    const double s = double(a.cycles) / double(b.cycles);
    speedups.push_back(s);
    std::printf("%-22s %12.3f %12.3f | %9.2f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                gnnone::cycles_to_ms(a.cycles), gnnone::cycles_to_ms(b.cycles),
                s);
  }
  const double avg = bench::geomean(speedups);
  std::printf("\naverage: %.2fx for CACHE_SIZE=128 (paper: 1.31x)\n", avg);

  // DESIGN.md §3, Fig. 9 row: ≈1.3x on average. The roadNet stand-in (G5)
  // inverts at our reduced scale (small-graph wave tail, EXPERIMENTS.md), so
  // the claim is about the average, not every dataset.
  h.metric("avg_speedup_cache128", avg, 1.31);
  bench::expect_ge(h, "fig9.cache128_faster_on_average", avg, 1.05,
                   "geomean speedup of cache=128 over cache=32");
  return 0;
}
