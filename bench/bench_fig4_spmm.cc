// Fig. 4: SpMM — GNNOne speedup over GE-SpMM, cuSPARSE, Huang et al.,
// FeatGraph and GNNAdvisor for feature lengths {6, 16, 32, 64}.
#include <vector>

#include "common.h"

int main() {
  bench::print_header(
      "Fig. 4: SpMM speedup of GNNOne over prior works",
      "paper Fig. 4; paper averages at f=32: GE-SpMM 3.84x, cuSPARSE 2.65x, "
      "GNNAdvisor 2.90x, Huang 1.34x; overall 6.25x");
  gnnone::Context ctx;
  const auto& dev = ctx.device();

  struct Avg {
    std::vector<double> ge, cu, advisor, huang, fg;
    std::vector<double> min_ge;
  };
  std::vector<std::pair<int, Avg>> byjdim;
  for (int dim : bench::paper_dims()) byjdim.emplace_back(dim, Avg{});

  for (const auto& id : gnnone::kernel_suite_ids()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    std::printf("\n%s (%s)  V=%d E=%lld\n", wl.ds.id.c_str(),
                wl.ds.name.c_str(), coo.num_rows, (long long)coo.nnz());
    std::printf("  %-4s %10s | %9s %9s %9s %9s %9s\n", "dim", "GNNOne(ms)",
                "GE-SpMM", "cuSPARSE", "Advisor", "Huang", "FeatGraph");
    for (std::size_t di = 0; di < bench::paper_dims().size(); ++di) {
      const int dim = bench::paper_dims()[di];
      const auto x = wl.features(dim, 31);
      std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));

      const auto ours = ctx.spmm(coo, wl.edge_val, x, dim, y);
      const auto ge =
          gnnone::baselines::gespmm_spmm(dev, wl.csr, wl.edge_val, x, dim, y);
      const auto cu = gnnone::baselines::cusparse_spmm(dev, wl.csr,
                                                       wl.edge_val, x, dim, y);
      const auto adv = gnnone::baselines::gnnadvisor_spmm(
          dev, wl.csr, wl.ng, wl.edge_val, x, dim, y);
      const auto hu = gnnone::baselines::huang_spmm(dev, wl.csr, wl.ng,
                                                    wl.edge_val, x, dim, y);
      const auto fg = gnnone::baselines::featgraph_spmm(dev, wl.csr,
                                                        wl.edge_val, x, dim, y);
      const double base = double(ours.cycles);
      auto& avg = byjdim[di].second;
      avg.ge.push_back(double(ge.cycles) / base);
      avg.cu.push_back(double(cu.cycles) / base);
      avg.advisor.push_back(double(adv.cycles) / base);
      avg.huang.push_back(double(hu.cycles) / base);
      avg.fg.push_back(double(fg.cycles) / base);
      std::printf("  %-4d %10.3f | %9.2f %9.2f %9.2f %9.2f %9.2f\n", dim,
                  gnnone::cycles_to_ms(ours.cycles), double(ge.cycles) / base,
                  double(cu.cycles) / base, double(adv.cycles) / base,
                  double(hu.cycles) / base, double(fg.cycles) / base);
    }
  }

  std::printf("\nGeometric-mean speedup by feature length (paper values in "
              "parentheses):\n");
  std::printf("  %-4s %9s %9s %9s %9s %9s\n", "dim", "GE-SpMM", "cuSPARSE",
              "Advisor", "Huang", "FeatGraph");
  struct PaperRef { int dim; double ge, cu, adv, hu; };
  const PaperRef refs[] = {{6, 15.16, 4.20, 7.52, 2.08},
                           {16, 13.90, 3.57, 6.25, 1.71},
                           {32, 3.84, 2.65, 2.90, 1.34},
                           {64, 0, 0, 0, 0}};
  std::vector<double> all;
  for (std::size_t di = 0; di < byjdim.size(); ++di) {
    const auto& [dim, avg] = byjdim[di];
    std::printf("  %-4d %9.2f %9.2f %9.2f %9.2f %9.2f", dim,
                bench::geomean(avg.ge), bench::geomean(avg.cu),
                bench::geomean(avg.advisor), bench::geomean(avg.huang),
                bench::geomean(avg.fg));
    if (refs[di].ge > 0) {
      std::printf("   (paper: GE %.2f, cu %.2f, Adv %.2f, Huang %.2f)",
                  refs[di].ge, refs[di].cu, refs[di].adv, refs[di].hu);
    }
    std::printf("\n");
    for (double v : avg.ge) all.push_back(v);
    for (double v : avg.cu) all.push_back(v);
    for (double v : avg.advisor) all.push_back(v);
    for (double v : avg.huang) all.push_back(v);
    for (double v : avg.fg) all.push_back(v);
  }
  // The paper highlights the f=32 minimum over GE-SpMM (1.06x): GNNOne is
  // never slower than the vanilla vertex-parallel kernel.
  double min_ge32 = 1e9;
  for (double v : byjdim[2].second.ge) min_ge32 = std::min(min_ge32, v);
  std::printf("\nOverall average: %.2fx (paper: 6.25x)\n",
              bench::geomean(all));
  std::printf("Minimum speedup over GE-SpMM at f=32: %.2fx (paper: 1.06x)\n",
              min_ge32);
  return 0;
}
