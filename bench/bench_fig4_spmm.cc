// Fig. 4: SpMM — GNNOne speedup over GE-SpMM, cuSPARSE, Huang et al.,
// FeatGraph and GNNAdvisor for feature lengths {6, 16, 32, 64}.
#include <map>
#include <vector>

#include "common.h"

GNNONE_BENCH(fig4_spmm, 40,
             "Fig. 4: SpMM speedup of GNNOne over prior works",
             "paper Fig. 4; paper averages at f=32: GE-SpMM 3.84x, cuSPARSE "
             "2.65x, GNNAdvisor 2.90x, Huang 1.34x; overall 6.25x") {
  gnnone::Context ctx;
  const auto& dev = ctx.device();
  const auto dims = h.dims();

  struct Avg {
    std::vector<double> ge, cu, advisor, huang, fg;
  };
  std::map<int, Avg> by_dim;

  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    std::printf("\n%s (%s)  V=%d E=%lld\n", wl.ds.id.c_str(),
                wl.ds.name.c_str(), coo.num_rows, (long long)coo.nnz());
    std::printf("  %-4s %10s | %9s %9s %9s %9s %9s\n", "dim", "GNNOne(ms)",
                "GE-SpMM", "cuSPARSE", "Advisor", "Huang", "FeatGraph");
    for (int dim : dims) {
      const auto x = wl.features(dim, 31);
      std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));

      const auto ours = ctx.spmm(coo, wl.edge_val, x, dim, y);
      const auto ge =
          gnnone::baselines::gespmm_spmm(dev, wl.csr, wl.edge_val, x, dim, y);
      const auto cu = gnnone::baselines::cusparse_spmm(dev, wl.csr,
                                                       wl.edge_val, x, dim, y);
      const auto adv = gnnone::baselines::gnnadvisor_spmm(
          dev, wl.csr, wl.ng, wl.edge_val, x, dim, y);
      const auto hu = gnnone::baselines::huang_spmm(dev, wl.csr, wl.ng,
                                                    wl.edge_val, x, dim, y);
      const auto fg = gnnone::baselines::featgraph_spmm(dev, wl.csr,
                                                        wl.edge_val, x, dim, y);
      h.add(id, "gnnone", dim, ours);
      h.add(id, "gespmm", dim, ge);
      h.add(id, "cusparse", dim, cu);
      h.add(id, "gnnadvisor", dim, adv);
      h.add(id, "huang", dim, hu);
      h.add(id, "featgraph", dim, fg);
      const double base = double(ours.cycles);
      auto& avg = by_dim[dim];
      avg.ge.push_back(double(ge.cycles) / base);
      avg.cu.push_back(double(cu.cycles) / base);
      avg.advisor.push_back(double(adv.cycles) / base);
      avg.huang.push_back(double(hu.cycles) / base);
      avg.fg.push_back(double(fg.cycles) / base);
      std::printf("  %-4d %10.3f | %9.2f %9.2f %9.2f %9.2f %9.2f\n", dim,
                  gnnone::cycles_to_ms(ours.cycles), double(ge.cycles) / base,
                  double(cu.cycles) / base, double(adv.cycles) / base,
                  double(hu.cycles) / base, double(fg.cycles) / base);
    }
  }

  std::printf("\nGeometric-mean speedup by feature length (paper values in "
              "parentheses):\n");
  std::printf("  %-4s %9s %9s %9s %9s %9s\n", "dim", "GE-SpMM", "cuSPARSE",
              "Advisor", "Huang", "FeatGraph");
  struct PaperRef { int dim; double ge, cu, adv, hu; };
  const PaperRef refs[] = {{6, 15.16, 4.20, 7.52, 2.08},
                           {16, 13.90, 3.57, 6.25, 1.71},
                           {32, 3.84, 2.65, 2.90, 1.34},
                           {64, 0, 0, 0, 0}};
  std::vector<double> all;
  for (int dim : dims) {
    const Avg& avg = by_dim[dim];
    std::printf("  %-4d %9.2f %9.2f %9.2f %9.2f %9.2f", dim,
                bench::geomean(avg.ge), bench::geomean(avg.cu),
                bench::geomean(avg.advisor), bench::geomean(avg.huang),
                bench::geomean(avg.fg));
    for (const PaperRef& r : refs) {
      if (r.dim == dim && r.ge > 0) {
        std::printf("   (paper: GE %.2f, cu %.2f, Adv %.2f, Huang %.2f)",
                    r.ge, r.cu, r.adv, r.hu);
      }
    }
    std::printf("\n");
    for (double v : avg.ge) all.push_back(v);
    for (double v : avg.cu) all.push_back(v);
    for (double v : avg.advisor) all.push_back(v);
    for (double v : avg.huang) all.push_back(v);
    for (double v : avg.fg) all.push_back(v);
  }
  // The paper highlights the f=32 minimum over GE-SpMM (1.06x): GNNOne is
  // never slower than the vanilla vertex-parallel kernel.
  const double min_ge32 = bench::speedup_min(h, "gespmm", "gnnone", 32);
  const double overall = bench::geomean(all);
  std::printf("\nOverall average: %.2fx (paper: 6.25x)\n", overall);
  std::printf("Minimum speedup over GE-SpMM at f=32: %.2fx (paper: 1.06x)\n",
              min_ge32);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 4 row) -----------------
  h.metric("avg_speedup_all_baselines", overall, 6.25);
  h.metric("min_speedup_over_gespmm_f32", min_ge32, 1.06);
  h.metric("geomean_huang_f32", bench::geomean(by_dim[32].huang), 1.34);
  // Huang is the closest competitor at every feature length.
  bool huang_closest = true;
  for (int dim : dims) {
    const Avg& avg = by_dim[dim];
    const double hu = bench::geomean(avg.huang);
    huang_closest = huang_closest && hu <= bench::geomean(avg.ge) &&
                    hu <= bench::geomean(avg.cu) &&
                    hu <= bench::geomean(avg.advisor) &&
                    hu <= bench::geomean(avg.fg);
  }
  h.expect("fig4.huang_closest_competitor", huang_closest,
           "Huang geomean <= every other baseline at every dim");
  // Never loses to GE-SpMM at f=32 (parity on the dense Reddit stand-in is
  // the measured minimum, hence >= 0.99 rather than > 1).
  bench::expect_ge(h, "fig4.never_loses_to_gespmm_f32", min_ge32, 0.99,
                   "min speedup over GE-SpMM at f=32");
  // Gaps grow at small feature lengths (idle lanes + dropped caching).
  bench::expect_ge(h, "fig4.gaps_grow_small_dims",
                   bench::geomean(by_dim[6].ge) - bench::geomean(by_dim[32].ge),
                   0.0, "GE-SpMM geomean(f=6) - geomean(f=32)");
  bench::expect_band(h, "fig4.overall_avg_band", overall, 1.5, 15.0,
                     "overall avg speedup");
  return 0;
}
