// Fig. 11: data-load vs total time breakdown — the paper's Observation #2
// (data load >> actual compute) verified on the optimized kernels two ways:
//   proto  load time from a partial prototype with reduction and write-back
//          elided (KernelMode::kLoadOnly), the paper's methodology;
//   ctr    the simulator's cycle attribution counters
//          (KernelStats::data_load_fraction()), which — after the
//          store/atomic attribution split — count *only* load issue and
//          exposed load latency, not write-back traffic.
#include "common.h"

GNNONE_BENCH(fig11_breakdown, 110,
             "Fig. 11: data-load share of kernel time (f=32)",
             "paper Fig. 11 (load dominates even after optimization)") {
  gnnone::Context ctx;
  const int dim = 32;

  gnnone::GnnOneConfig full, load_only;
  load_only.mode = gnnone::KernelMode::kLoadOnly;

  std::printf("%-22s | %11s %11s %6s %5s | %11s %11s %6s %5s\n", "dataset",
              "SpMM total", "SpMM load", "proto", "ctr", "SDDMM total",
              "SDDMM load", "proto", "ctr");
  std::vector<double> spmm_share, sddmm_share, spmm_ctr, sddmm_ctr;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 71);
    const auto y2 = wl.features(dim, 72);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
    std::vector<float> w(std::size_t(coo.nnz()));

    const auto st = ctx.spmm(coo, wl.edge_val, x, dim, y, full);
    const auto sl = ctx.spmm(coo, wl.edge_val, x, dim, y, load_only);
    const auto dt = ctx.sddmm(coo, x, y2, dim, w, full);
    const auto dl = ctx.sddmm(coo, x, y2, dim, w, load_only);
    h.add(id, "spmm", dim, st);
    h.add(id, "spmm", dim, sl, "load-only");
    h.add(id, "sddmm", dim, dt);
    h.add(id, "sddmm", dim, dl, "load-only");
    const double a = double(sl.cycles) / double(st.cycles);
    const double b = double(dl.cycles) / double(dt.cycles);
    spmm_share.push_back(a);
    sddmm_share.push_back(b);
    spmm_ctr.push_back(st.data_load_fraction());
    sddmm_ctr.push_back(dt.data_load_fraction());
    std::printf(
        "%-22s | %9.3fms %9.3fms %5.0f%% %4.0f%% | %9.3fms %9.3fms %5.0f%% "
        "%4.0f%%\n",
        (wl.ds.id + "/" + wl.ds.name).c_str(),
        gnnone::cycles_to_ms(st.cycles), gnnone::cycles_to_ms(sl.cycles),
        100 * a, 100 * st.data_load_fraction(),
        gnnone::cycles_to_ms(dt.cycles), gnnone::cycles_to_ms(dl.cycles),
        100 * b, 100 * dt.data_load_fraction());
  }
  const double g_spmm = bench::geomean(spmm_share);
  const double g_sddmm = bench::geomean(sddmm_share);
  const double g_spmm_ctr = bench::geomean(spmm_ctr);
  const double g_sddmm_ctr = bench::geomean(sddmm_ctr);
  std::printf("\naverage data-load share: SpMM %.0f%% (counters %.0f%%), "
              "SDDMM %.0f%% (counters %.0f%%) —\nthe data-load-centric "
              "design premise holds. Counter shares exclude store/atomic\n"
              "write-back, which is attributed separately "
              "(stats.h).\n",
              100 * g_spmm, 100 * g_spmm_ctr, 100 * g_sddmm,
              100 * g_sddmm_ctr);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 11 row) ----------------
  h.metric("spmm_load_share_prototype", g_spmm);
  h.metric("sddmm_load_share_prototype", g_sddmm);
  h.metric("spmm_load_share_counters", g_spmm_ctr);
  h.metric("sddmm_load_share_counters", g_sddmm_ctr);
  bench::expect_ge(h, "fig11.spmm_load_dominates", g_spmm, 0.5,
                   "SpMM load share (prototype method)");
  bench::expect_ge(h, "fig11.sddmm_load_dominates", g_sddmm, 0.5,
                   "SDDMM load share (prototype method)");
  // The counter-based fraction must agree with the premise while counting
  // loads only (the attribution split keeps it below 1 even with store
  // traffic present).
  bench::expect_band(h, "fig11.spmm_counter_share", g_spmm_ctr, 0.5, 1.0,
                     "SpMM load share (counters)");
  bench::expect_band(h, "fig11.sddmm_counter_share", g_sddmm_ctr, 0.5, 1.0,
                     "SDDMM load share (counters)");
  return 0;
}
