// Fig. 11: data-load vs total time breakdown — the paper's Observation #2
// (data load >> actual compute) verified on the optimized kernels. As in the
// paper, load time comes from a partial prototype (reduction and write-back
// elided: KernelMode::kLoadOnly).
#include "common.h"

int main() {
  bench::print_header(
      "Fig. 11: data-load share of kernel time (f=32)",
      "paper Fig. 11 (load dominates even after optimization)");
  gnnone::Context ctx;
  const int dim = 32;

  gnnone::GnnOneConfig full, load_only;
  load_only.mode = gnnone::KernelMode::kLoadOnly;

  std::printf("%-22s | %12s %12s %7s | %12s %12s %7s\n", "dataset",
              "SpMM total", "SpMM load", "share", "SDDMM total", "SDDMM load",
              "share");
  std::vector<double> spmm_share, sddmm_share;
  for (const auto& id : gnnone::kernel_suite_ids()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 71);
    const auto y2 = wl.features(dim, 72);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
    std::vector<float> w(std::size_t(coo.nnz()));

    const auto st = ctx.spmm(coo, wl.edge_val, x, dim, y, full);
    const auto sl = ctx.spmm(coo, wl.edge_val, x, dim, y, load_only);
    const auto dt = ctx.sddmm(coo, x, y2, dim, w, full);
    const auto dl = ctx.sddmm(coo, x, y2, dim, w, load_only);
    const double a = double(sl.cycles) / double(st.cycles);
    const double b = double(dl.cycles) / double(dt.cycles);
    spmm_share.push_back(a);
    sddmm_share.push_back(b);
    std::printf("%-22s | %9.3fms %9.3fms %6.0f%% | %9.3fms %9.3fms %6.0f%%\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                gnnone::cycles_to_ms(st.cycles),
                gnnone::cycles_to_ms(sl.cycles), 100 * a,
                gnnone::cycles_to_ms(dt.cycles),
                gnnone::cycles_to_ms(dl.cycles), 100 * b);
  }
  std::printf("\naverage data-load share: SpMM %.0f%%, SDDMM %.0f%% — the "
              "data-load-centric design premise holds.\n",
              100 * bench::geomean(spmm_share),
              100 * bench::geomean(sddmm_share));
  return 0;
}
