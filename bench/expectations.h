// Paper-shape expectations: DESIGN.md §3's per-figure claims, encoded as
// checks over harness rows so every bench binary (and bench_runner / CI)
// fails loudly when a change breaks the shape of a result the paper reports.
//
// Bands are calibrated against the committed full-scale run documented in
// EXPERIMENTS.md and are deliberately loose: they must hold at full AND ci
// scale, and they assert *shape* (who wins, roughly by how much), not exact
// cycle counts — exact cycles are the baseline gate's job (bench_runner
// --baseline).
#pragma once

#include <string>
#include <vector>

#include "harness.h"

namespace bench {

/// printf-style formatting for expectation detail strings.
std::string detail(const char* format, ...);

/// value >= min.
bool expect_ge(Harness& h, const std::string& id, double value, double min,
               const std::string& what);
/// lo <= value <= hi.
bool expect_band(Harness& h, const std::string& id, double value, double lo,
                 double hi, const std::string& what);

/// First row matching the key (dim < 0 or empty strings act as wildcards);
/// nullptr when absent.
const Row* find_row(const Harness& h, const std::string& dataset,
                    const std::string& kernel, int dim = -1,
                    const std::string& config = "*");

/// Geomean over datasets/configs of baseline_cycles / our_cycles for every
/// (dataset, dim, config) where both kernels have an "ok" row. dim < 0
/// pools all dims. Returns 0 when no pair matches.
double speedup_geomean(const Harness& h, const std::string& baseline_kernel,
                       const std::string& our_kernel, int dim = -1);

/// Minimum per-pair speedup over the same pairing as speedup_geomean.
double speedup_min(const Harness& h, const std::string& baseline_kernel,
                   const std::string& our_kernel, int dim = -1);

// --- EXPERIMENTS.md regeneration ------------------------------------------

inline constexpr const char* kExperimentsBeginMarker =
    "<!-- BEGIN GENERATED METRICS (bench_runner --emit-experiments) -->";
inline constexpr const char* kExperimentsEndMarker =
    "<!-- END GENERATED METRICS -->";

/// Renders the measured-vs-paper metrics table (plus the expectation
/// verdict column) from a results document (results_doc() schema).
std::string experiments_metrics_markdown(const Json& results);

/// Replaces the text between the markers in `path` with `body` (markers
/// stay). Returns false if the file or the marker pair is missing.
bool rewrite_marker_block(const std::string& path, const std::string& body);

}  // namespace bench
