// bench_runner — runs the registered figure benches (all bench_*.cc sources
// compiled with -DGNNONE_BENCH_RUNNER) as one suite and emits the combined
// machine-readable results:
//
//   BENCH_RESULTS.json   versioned document over all benches (harness.h)
//   <bench>.csv          per-figure row dump with full counters
//
// and gates on them:
//
//   * any failed paper-shape expectation  -> exit 1
//   * --baseline=FILE: modeled cycles drifting beyond --tolerance from the
//     committed baseline (or rows appearing/disappearing) -> exit 4;
//     refresh the file with --update-baseline after an intended change.
//
// The simulator is deterministic, so at equal scale every cycle count must
// reproduce exactly; the tolerance only exists to let intentional small
// model recalibrations land without regenerating the baseline in the same
// commit.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expectations.h"
#include "gpusim/report.h"
#include "gpusim/trace.h"
#include "harness.h"

namespace {

constexpr const char* kBaselineSchemaName = "gnnone-bench-baseline";
constexpr int kBaselineSchemaVersion = 1;

struct Options {
  bench::Scale scale = bench::Scale::kFull;
  std::string out_dir = ".";
  std::string baseline_path;
  double tolerance = 0.02;  // fractional cycle drift allowed vs baseline
  bool update_baseline = false;
  bool list = false;
  std::string only;  // substring filter on bench names
  std::string trace_path;
  std::string emit_experiments;  // EXPERIMENTS.md path to rewrite
};

int usage(const char* argv0, int rc) {
  std::fprintf(
      rc ? stderr : stdout,
      "usage: %s [flags]\n"
      "  --scale=full|ci          suite scale (default full)\n"
      "  --out=DIR|-              result directory, '-' disables (default .)\n"
      "  --only=SUBSTR            run benches whose name contains SUBSTR\n"
      "  --list                   list registered benches and exit\n"
      "  --baseline=FILE          gate modeled cycles against FILE\n"
      "  --tolerance=FRAC         allowed fractional drift (default 0.02)\n"
      "  --update-baseline        rewrite FILE from this run instead\n"
      "  --trace=PATH             chrome://tracing timeline of all launches\n"
      "  --emit-experiments=FILE  regenerate EXPERIMENTS.md metrics block\n",
      argv0);
  return rc;
}

bool parse_args(int argc, char** argv, Options* o, int* rc) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      if (!bench::parse_scale(a + 8, &o->scale)) {
        std::fprintf(stderr, "error: bad --scale '%s' (full|ci)\n", a + 8);
        *rc = 2;
        return false;
      }
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      o->out_dir = a + 6;
    } else if (std::strncmp(a, "--only=", 7) == 0) {
      o->only = a + 7;
    } else if (std::strcmp(a, "--list") == 0) {
      o->list = true;
    } else if (std::strncmp(a, "--baseline=", 11) == 0) {
      o->baseline_path = a + 11;
    } else if (std::strncmp(a, "--tolerance=", 12) == 0) {
      o->tolerance = std::strtod(a + 12, nullptr);
    } else if (std::strcmp(a, "--update-baseline") == 0) {
      o->update_baseline = true;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      o->trace_path = a + 8;
    } else if (std::strncmp(a, "--emit-experiments=", 19) == 0) {
      o->emit_experiments = a + 19;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      *rc = usage(argv[0], 0);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a);
      *rc = usage(argv[0], 2);
      return false;
    }
  }
  if (o->update_baseline && o->baseline_path.empty()) {
    std::fprintf(stderr, "error: --update-baseline requires --baseline=\n");
    *rc = 2;
    return false;
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string row_key(const std::string& bench, const bench::Json& r) {
  return bench + '|' + r["dataset"].as_string() + '|' +
         r["kernel"].as_string() + '|' + std::to_string(r["dim"].as_int()) +
         '|' + r["config"].as_string();
}

/// Flattens a results document into baseline rows ("ok" rows only — "n/s"/
/// "oom"/"crash" rows carry no cycles to gate on).
bench::Json baseline_from_results(const bench::Json& results) {
  bench::Json doc = bench::Json::object();
  doc.set("schema", kBaselineSchemaName);
  doc.set("version", kBaselineSchemaVersion);
  doc.set("scale", results["scale"]);
  bench::Json rows = bench::Json::array();
  for (const bench::Json& b : results["benches"].items()) {
    for (const bench::Json& r : b["rows"].items()) {
      if (r["status"].as_string() != "ok") continue;
      bench::Json row = bench::Json::object();
      row.set("bench", b["name"]);
      row.set("dataset", r["dataset"]);
      row.set("kernel", r["kernel"]);
      row.set("dim", r["dim"]);
      row.set("config", r["config"]);
      row.set("cycles", r["cycles"]);
      rows.push_back(std::move(row));
    }
  }
  doc.set("rows", std::move(rows));
  return doc;
}

/// Compares this run against the committed baseline. Returns the number of
/// problems (drifted, missing, or unexpected-new rows), printing each.
/// Baseline rows of benches absent from this run (an --only subset) are
/// skipped, so a filtered run gates exactly its own benches' rows.
int diff_against_baseline(const bench::Json& results,
                          const bench::Json& baseline, double tolerance) {
  if (baseline["schema"].as_string() != kBaselineSchemaName ||
      baseline["version"].as_int() != kBaselineSchemaVersion) {
    std::fprintf(stderr, "baseline: unrecognized schema/version\n");
    return 1;
  }
  if (baseline["scale"].as_string() !=
      results["scale"].as_string()) {
    std::fprintf(stderr, "baseline: scale mismatch (baseline '%s', run '%s')\n",
                 baseline["scale"].as_string().c_str(),
                 results["scale"].as_string().c_str());
    return 1;
  }

  // Measured ok-rows by key, and the set of benches this run executed.
  std::vector<std::pair<std::string, std::uint64_t>> measured;
  std::vector<std::string> run_benches;
  for (const bench::Json& b : results["benches"].items()) {
    run_benches.push_back(b["name"].as_string());
    for (const bench::Json& r : b["rows"].items()) {
      if (r["status"].as_string() != "ok") continue;
      measured.emplace_back(row_key(b["name"].as_string(), r),
                            r["cycles"].as_uint());
    }
  }
  auto bench_in_run = [&](const std::string& name) {
    for (const auto& n : run_benches) {
      if (n == name) return true;
    }
    return false;
  };
  auto find_measured = [&](const std::string& key) -> const std::uint64_t* {
    for (const auto& [k, v] : measured) {
      if (k == key) return &v;
    }
    return nullptr;
  };

  int problems = 0;
  std::size_t skipped = 0;
  std::vector<std::string> baseline_keys;
  for (const bench::Json& r : baseline["rows"].items()) {
    if (!bench_in_run(r["bench"].as_string())) {
      ++skipped;
      continue;
    }
    const std::string key = row_key(r["bench"].as_string(), r);
    baseline_keys.push_back(key);
    const std::uint64_t* got = find_measured(key);
    if (got == nullptr) {
      std::printf("baseline: MISSING row %s\n", key.c_str());
      ++problems;
      continue;
    }
    const double want = double(r["cycles"].as_uint());
    const double drift = want > 0 ? std::abs(double(*got) - want) / want : 0.0;
    if (drift > tolerance) {
      std::printf("baseline: DRIFT %s: %llu -> %llu (%.2f%% > %.2f%%)\n",
                  key.c_str(),
                  static_cast<unsigned long long>(r["cycles"].as_uint()),
                  static_cast<unsigned long long>(*got), 100.0 * drift,
                  100.0 * tolerance);
      ++problems;
    }
  }
  for (const auto& [key, cycles] : measured) {
    bool known = false;
    for (const auto& bk : baseline_keys) {
      if (bk == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::printf("baseline: NEW row %s (not in baseline)\n", key.c_str());
      ++problems;
    }
  }
  if (skipped > 0) {
    std::printf("baseline: skipped %zu row(s) of benches not in this run\n",
                skipped);
  }
  if (problems > 0) {
    std::printf(
        "baseline: %d problem(s); if the change is intended, refresh with "
        "--update-baseline\n",
        problems);
  } else {
    std::printf("baseline: %zu rows match within %.2f%%\n",
                baseline_keys.size(), 100.0 * tolerance);
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int rc = 0;
  if (!parse_args(argc, argv, &opt, &rc)) return rc;

  const auto benches = bench::registered_benches();
  if (opt.list) {
    for (const auto& info : benches) {
      std::printf("%-28s %s\n", info.name, info.title);
    }
    return 0;
  }

  std::vector<bench::Harness> harnesses;
  harnesses.reserve(benches.size());
  int hard_failures = 0;
  int expectation_failures = 0;
  {
    gpusim::Trace trace;  // records every launch across all benches
    for (const auto& info : benches) {
      if (!opt.only.empty() &&
          std::string(info.name).find(opt.only) == std::string::npos) {
        continue;
      }
      harnesses.emplace_back(info.name, info.title, info.paper_ref, opt.scale);
      bench::Harness& h = harnesses.back();
      std::printf(
          "\n================================================================\n"
          "%s\nreproduces: %s\n"
          "================================================================\n",
          info.title, info.paper_ref);
      const int bench_rc = info.fn(h);
      if (bench_rc != 0) {
        std::printf("bench %s: hard failure (rc=%d)\n", info.name, bench_rc);
        ++hard_failures;
      }
      bench::print_expectations(h);
      expectation_failures += h.failed_expectations();
    }
    if (!opt.trace_path.empty()) {
      const std::string json =
          gpusim::chrome_trace_json(trace, gpusim::default_device());
      if (!write_file(opt.trace_path, json)) return 3;
      std::printf("\ntrace: %zu kernel launches -> %s\n",
                  trace.events().size(), opt.trace_path.c_str());
    }
  }
  if (harnesses.empty()) {
    std::fprintf(stderr, "error: no bench matches --only=%s\n",
                 opt.only.c_str());
    return 2;
  }

  std::vector<const bench::Harness*> ptrs;
  for (const auto& h : harnesses) ptrs.push_back(&h);
  const bench::Json results =
      bench::results_doc(ptrs, opt.scale, gpusim::default_device());

  if (opt.out_dir != "-") {
    const std::string base = opt.out_dir.empty() ? "." : opt.out_dir;
    if (!write_file(base + "/BENCH_RESULTS.json", results.dump() + "\n")) {
      return 3;
    }
    for (const auto& h : harnesses) {
      if (!write_file(base + "/" + h.name() + ".csv", h.to_csv())) return 3;
    }
    std::printf("\nresults: %s/BENCH_RESULTS.json + %zu per-bench CSVs\n",
                base.c_str(), harnesses.size());
  }

  if (!opt.emit_experiments.empty()) {
    const std::string body = bench::experiments_metrics_markdown(results);
    if (!bench::rewrite_marker_block(opt.emit_experiments, body)) {
      std::fprintf(stderr, "error: marker block not found in %s\n",
                   opt.emit_experiments.c_str());
      return 3;
    }
    std::printf("experiments: rewrote metrics block in %s\n",
                opt.emit_experiments.c_str());
  }

  int baseline_problems = 0;
  if (!opt.baseline_path.empty()) {
    if (opt.update_baseline) {
      const bench::Json doc = baseline_from_results(results);
      if (!write_file(opt.baseline_path, doc.dump() + "\n")) return 3;
      std::printf("baseline: wrote %zu rows to %s\n",
                  doc["rows"].items().size(), opt.baseline_path.c_str());
    } else {
      std::ifstream in(opt.baseline_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     opt.baseline_path.c_str());
        return 3;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        const bench::Json baseline = bench::Json::parse(ss.str());
        std::printf("\n");
        baseline_problems =
            diff_against_baseline(results, baseline, opt.tolerance);
      } catch (const bench::JsonError& e) {
        std::fprintf(stderr, "error: baseline parse: %s\n", e.what());
        return 3;
      }
    }
  }

  std::printf("\nsuite: %zu benches, %d hard failure(s), %d expectation "
              "failure(s), %d baseline problem(s)\n",
              harnesses.size(), hard_failures, expectation_failures,
              baseline_problems);
  if (hard_failures > 0) return 1;
  if (expectation_failures > 0) return 1;
  if (baseline_problems > 0) return 4;
  return 0;
}
