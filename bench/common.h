// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of the paper: same rows, same
// series, with speedups computed from modeled kernel cycles. Absolute times
// are simulator cycles converted at the A100 clock and are only meaningful
// relatively (DESIGN.md §1).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/gnnone.h"
#include "expectations.h"
#include "gen/datasets.h"
#include "gen/rng.h"
#include "graph/neighbor_group.h"
#include "graph/row_swizzle.h"
#include "harness.h"

namespace bench {

/// Feature lengths the paper sweeps in Figs. 3 and 4.
inline const std::vector<int>& paper_dims() {
  static const std::vector<int> dims = {6, 16, 32, 64};
  return dims;
}

/// Geometric mean of positive ratios (how the paper reports averages).
inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += std::log(x);
  return std::exp(s / double(v.size()));
}

inline std::vector<float> random_features(std::size_t n, std::uint64_t seed) {
  gnnone::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal()) * 0.5f;
  return v;
}

/// All formats + tensors one dataset needs across the kernel benches.
struct KernelWorkload {
  gnnone::Dataset ds;
  gnnone::Csr csr;
  gnnone::NeighborGroups ng;
  gnnone::RowSwizzle swizzle;
  std::vector<float> edge_val;

  explicit KernelWorkload(const std::string& id)
      : ds(gnnone::make_dataset(id)),
        csr(gnnone::coo_to_csr(ds.coo)),
        ng(gnnone::build_neighbor_groups(csr)),
        swizzle(gnnone::build_row_swizzle(csr)),
        edge_val(random_features(std::size_t(ds.coo.nnz()), 11)) {}

  std::vector<float> features(int f, std::uint64_t seed) const {
    return random_features(std::size_t(ds.coo.num_rows) * std::size_t(f),
                           seed);
  }
};

}  // namespace bench
