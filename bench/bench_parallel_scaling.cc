// Parallel functional-pass scaling: the host thread pool behind
// gpusim::launch() (gpusim/launch.cc, GNNONE_HOST_THREADS) must change
// wall-clock time only — modeled cycles and every KernelStats counter are
// bit-identical at every thread count. This bench pins both halves of that
// contract on the largest gen graphs:
//  * a modeled-cycles row per thread count (gated by bench/baseline.json
//    like every other row — any drift across thread counts fails here);
//  * a wall-clock speedup metric for the functional pass at 8 threads vs
//    serial, with a >= 4x expectation at full scale on hosts with >= 8
//    hardware threads (reported ungated elsewhere: the speedup is real but
//    unmeasurable on small CI runners).
#include <chrono>
#include <thread>

#include "common.h"
#include "gpusim/launch.h"

namespace {

double min_wall_seconds(int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

}  // namespace

GNNONE_BENCH(parallel_scaling, 300,
             "Parallel CTA execution: bit-identical cycles per thread count "
             "+ functional-pass wall-clock speedup (SpMM, f=32)",
             "simulator substrate (gpusim/launch.cc); not a paper figure") {
  const int dim = 32;
  const std::vector<std::string> ids =
      h.ci() ? std::vector<std::string>{"G10"}
             : std::vector<std::string>{"G10", "G13", "G15"};
  const int kSweep[] = {1, 2, 4, 8};

  std::printf("%-22s | %14s %14s %14s %14s\n", "dataset", "threads=1",
              "threads=2", "threads=4", "threads=8");
  bool all_identical = true;
  double speedup_worst = 1e300;
  for (const std::string& id : ids) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 61);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
    gnnone::Context ctx;

    std::uint64_t cycles[4] = {};
    for (int i = 0; i < 4; ++i) {
      gpusim::set_host_threads(kSweep[i]);
      const auto ks = ctx.spmm(coo, wl.edge_val, x, dim, y);
      cycles[i] = ks.cycles;
      h.add(id, "gnnone", dim, ks,
            "threads=" + std::to_string(kSweep[i]));
      all_identical = all_identical && cycles[i] == cycles[0];
    }
    std::printf("%-22s | %14llu %14llu %14llu %14llu\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                (unsigned long long)cycles[0], (unsigned long long)cycles[1],
                (unsigned long long)cycles[2], (unsigned long long)cycles[3]);

    // Wall-clock: the functional pass dominates launch() end to end, so
    // timing the whole call measures what the thread pool buys.
    gpusim::set_host_threads(1);
    const double t1 = min_wall_seconds(h.ci() ? 2 : 3, [&] {
      (void)ctx.spmm(coo, wl.edge_val, x, dim, y);
    });
    gpusim::set_host_threads(8);
    const double t8 = min_wall_seconds(h.ci() ? 2 : 3, [&] {
      (void)ctx.spmm(coo, wl.edge_val, x, dim, y);
    });
    gpusim::set_host_threads(0);
    const double sp = t1 / t8;
    speedup_worst = std::min(speedup_worst, sp);
    h.metric("wall_speedup_8t_" + id, sp);
    std::printf("%-22s | serial %.3fs, 8 threads %.3fs -> %.2fx\n", "",
                t1, t8, sp);
  }
  gpusim::set_host_threads(0);

  h.expect("parallel.cycles_thread_invariant", all_identical,
           "modeled cycles must be bit-identical at 1/2/4/8 host threads");
  const unsigned hw = std::thread::hardware_concurrency();
  if (!h.ci() && hw >= 8) {
    bench::expect_band(h, "parallel.wall_speedup_8t", speedup_worst, 4.0,
                       1e9,
                       "functional-pass speedup at 8 threads on the largest "
                       "gen graphs");
  } else {
    std::printf("\n(speedup gate skipped: %s)\n",
                h.ci() ? "ci scale" : "host has < 8 hardware threads");
  }
  return 0;
}
