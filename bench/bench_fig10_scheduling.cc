// Fig. 10: Consecutive vs Round-robin NZE assignment across thread-groups
// (SpMM). The paper measures the data-load-only difference (~10%, from DRAM
// locality of consecutive column ids) and argues the reduction-side
// advantage is larger still; our memory model has no DRAM row-buffer
// locality, so we report both the load-only and the full-kernel comparison
// (the latter includes the reduction advantage the paper describes in
// §4.2.2).
#include "common.h"

GNNONE_BENCH(fig10_scheduling, 100,
             "Fig. 10: Consecutive vs Round-robin thread-group scheduling "
             "(SpMM, f=32)",
             "paper Fig. 10; paper: Consecutive ~1.1x on data-load alone, "
             "larger with reduction included") {
  gnnone::Context ctx;
  const int dim = 32;

  gnnone::GnnOneConfig cons_load, rr_load, cons_full, rr_full;
  cons_load.mode = gnnone::KernelMode::kLoadOnly;
  rr_load.mode = gnnone::KernelMode::kLoadOnly;
  rr_load.policy = gnnone::SchedulePolicy::kRoundRobin;
  rr_full.policy = gnnone::SchedulePolicy::kRoundRobin;

  std::printf("%-22s | %16s %16s\n", "dataset", "load-only RR/Cons",
              "full RR/Cons");
  std::vector<double> s_load, s_full;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 61);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
    const auto cl = ctx.spmm(coo, wl.edge_val, x, dim, y, cons_load);
    const auto rl = ctx.spmm(coo, wl.edge_val, x, dim, y, rr_load);
    const auto cf = ctx.spmm(coo, wl.edge_val, x, dim, y, cons_full);
    const auto rf = ctx.spmm(coo, wl.edge_val, x, dim, y, rr_full);
    h.add(id, "gnnone", dim, cl, "consecutive,load-only");
    h.add(id, "gnnone", dim, rl, "round-robin,load-only");
    h.add(id, "gnnone", dim, cf, "consecutive");
    h.add(id, "gnnone", dim, rf, "round-robin");
    const double a = double(rl.cycles) / double(cl.cycles);
    const double b = double(rf.cycles) / double(cf.cycles);
    s_load.push_back(a);
    s_full.push_back(b);
    std::printf("%-22s | %16.3f %16.3f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(), a, b);
  }
  const double g_load = bench::geomean(s_load);
  const double g_full = bench::geomean(s_full);
  std::printf("\naverages: load-only %.3fx (paper ~1.1x; our model has no "
              "DRAM row-buffer locality),\n          full kernel %.3fx "
              "(Consecutive's thread-local reduction advantage, §4.2.2)\n",
              g_load, g_full);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 10 row) ----------------
  h.metric("avg_roundrobin_over_consecutive_load_only", g_load, 1.1);
  h.metric("avg_roundrobin_over_consecutive_full", g_full);
  // The load-only comparison is parity by construction here (no DRAM
  // locality in the model) — pin it so a model change that silently adds a
  // load-path difference is flagged.
  bench::expect_band(h, "fig10.load_only_parity", g_load, 0.95, 1.15,
                     "load-only RR/Consecutive ratio");
  // The reduction-side advantage the paper argues for must show up in the
  // full kernel: Consecutive never loses on average.
  bench::expect_ge(h, "fig10.consecutive_wins_full_kernel", g_full, 1.0,
                   "full-kernel RR/Consecutive ratio");
  return 0;
}
