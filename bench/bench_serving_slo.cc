// Multi-tenant SLO study (docs/SERVING.md §8): open-loop traces served
// through the tenant scheduler under a sweep of tenant mixes x offered
// loads x scheduling policies.
//
// Each mix is first calibrated closed-loop: every tenant's requests are
// served untenanted once to measure its mean per-request service cycles.
// Deadlines and interarrival means are then expressed as multiples of that
// measurement, so the sweep's operating points (utilization ~ 1/load) track
// the simulator's cost model instead of hard-coded cycle counts. The same
// probe runs double as the bit-identity reference: scheduled predictions
// must equal the untenanted ones request by request.
//
// Encoded claims:
//  * on every mixed-tenant point the better of the deadline-aware policies
//    (EDF, slack) holds worst-tenant p99 at or below FIFO-aggregate's —
//    deadline awareness never loses the tail;
//  * for the deadline-aware policies aggregate SLO attainment is monotone
//    in offered load (lighter traffic never hurts). FIFO-aggregate is
//    exempt by design: its fixed batching timeout dominates latency at
//    light load, the classic dynamic-batching pathology this subsystem
//    exists to fix;
//  * deadline-aware scheduling strictly beats FIFO's attainment on >= 3
//    full-scale points (>= 1 at ci) — the win is real, not a tie;
//  * queue-wait accounting tiles the timeline: per-stream exposed cycles
//    plus scheduler-induced idle equal the makespan exactly, and every
//    request's arrival + queue + service lands inside it.
//
// ci rows are an exact subset of the full sweep (same traces, same
// calibration, same options), so the baseline gate sees identical cycles.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "gen/requests.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace {

struct MixTenant {
  const char* name;
  const char* model_kind;  // gcn / gat only: GIN's vcolnorm couples batches
  std::vector<int> fanouts;
  double slo_mult;  // deadline = slo_mult x calibrated per-request service
  gnnone::ArrivalProcess process;
};

struct Mix {
  const char* id;
  const char* graph;
  int requests_per_tenant;
  std::vector<MixTenant> tenants;
};

struct CalibratedMix {
  std::vector<gnnone::TenantWorkload> workloads;  // arrivals filled per load
  std::vector<gnnone::serve::TenantSpec> specs;
  /// Batch-amortized per-request service cycles (batch_size = kBatchSize):
  /// the steady-state throughput capacity the load knob is scaled by.
  std::vector<double> service_per_request;
  /// Closed-loop reference predictions per tenant, request-issue order
  /// (one prediction per seed within a request).
  std::vector<std::vector<std::vector<int>>> probe_predictions;
};

constexpr int kBatchSize = 6;
constexpr int kFeatureDim = 16;

gnnone::ServeOptions flat_opts(const MixTenant& t) {
  gnnone::ServeOptions o;
  o.model_kind = t.model_kind;
  o.fanouts = t.fanouts;
  o.batch_size = kBatchSize;
  o.cache_alpha = 0.25;
  o.feature_dim_override = kFeatureDim;
  o.seed = 7;
  return o;
}

gnnone::RequestTraceOptions request_opts(const Mix& mix, std::size_t t) {
  gnnone::RequestTraceOptions ro;
  ro.num_requests = mix.requests_per_tenant;
  ro.min_seeds = 1;
  ro.max_seeds = 2;
  ro.seed = 101 + std::uint64_t(t);
  return ro;
}

/// Serves every tenant twice, closed-loop and untenanted: once at the
/// sweep's batch size to measure its amortized per-request service cycles
/// (and record the reference predictions), once at batch size 1 to measure
/// the singleton service a lone request pays. Deadlines scale from the
/// singleton cost — that is the best latency any policy can offer, so a
/// slo_mult of 2 is comfortably attainable at light load and genuinely at
/// risk under congestion.
CalibratedMix calibrate(const gnnone::Dataset& ds, const Mix& mix,
                        const gpusim::DeviceSpec& dev) {
  CalibratedMix cal;
  for (std::size_t t = 0; t < mix.tenants.size(); ++t) {
    const MixTenant& mt = mix.tenants[t];
    gnnone::TenantWorkload w;
    w.requests = request_opts(mix, t);
    const auto probe_trace = gnnone::make_request_trace(ds.coo, w.requests);
    const gnnone::InferenceServer probe(ds, dev, flat_opts(mt));
    const gnnone::ServingReport rep = probe.serve(probe_trace);
    const double per_request =
        double(rep.total_cycles) / double(probe_trace.size());

    gnnone::ServeOptions solo_opts = flat_opts(mt);
    solo_opts.batch_size = 1;
    const gnnone::InferenceServer solo(ds, dev, solo_opts);
    const double singleton =
        double(solo.serve(probe_trace).total_cycles) /
        double(probe_trace.size());

    gnnone::serve::TenantSpec spec;
    spec.name = mt.name;
    spec.model_kind = mt.model_kind;
    spec.fanouts = mt.fanouts;
    spec.slo_cycles = std::uint64_t(mt.slo_mult * singleton);

    cal.workloads.push_back(std::move(w));
    cal.specs.push_back(std::move(spec));
    cal.service_per_request.push_back(per_request);
    cal.probe_predictions.push_back(rep.predictions);
  }
  return cal;
}

/// Offered-load knob: per-tenant mean interarrival = load x num_tenants x
/// that tenant's calibrated service, so aggregate utilization ~ 1/load.
std::vector<gnnone::SeedRequest> make_trace(const gnnone::Dataset& ds,
                                            const Mix& mix, CalibratedMix& cal,
                                            double load) {
  for (std::size_t t = 0; t < cal.workloads.size(); ++t) {
    gnnone::ArrivalOptions& a = cal.workloads[t].arrivals;
    a.process = mix.tenants[t].process;
    a.mean_interarrival_cycles =
        load * double(mix.tenants.size()) * cal.service_per_request[t];
    a.seed = 31 + std::uint64_t(t);
    if (a.process == gnnone::ArrivalProcess::kBursty) {
      a.burst_multiplier = 4.0;
      a.burst_fraction = 0.2;
      a.period_cycles = std::uint64_t(8.0 * a.mean_interarrival_cycles) + 1;
    }
  }
  return gnnone::make_open_loop_trace(ds.coo, cal.workloads);
}

gnnone::ServeOptions scheduled_opts(const CalibratedMix& cal,
                                    gnnone::serve::SchedulerPolicy policy,
                                    std::uint64_t max_wait) {
  gnnone::ServeOptions o;
  o.batch_size = kBatchSize;
  o.cache_alpha = 0.25;
  o.feature_dim_override = kFeatureDim;
  o.seed = 7;
  o.tenants = cal.specs;
  o.scheduler.policy = policy;
  o.scheduler.max_wait_cycles = max_wait;
  return o;
}

/// Worst per-tenant p99 across tenants that served anything.
std::uint64_t worst_p99(const gnnone::ServingReport& rep) {
  std::uint64_t worst = 0;
  for (const gnnone::serve::TenantReport& t : rep.tenants) {
    if (t.served > 0) worst = std::max(worst, t.p99_latency_cycles);
  }
  return worst;
}

/// Aggregate attainment: in-SLO share over all admitted requests of the run.
double aggregate_attainment(const gnnone::ServingReport& rep) {
  double in_slo = 0.0;
  int admitted = 0;
  for (const gnnone::serve::TenantReport& t : rep.tenants) {
    const int adm = t.requests - t.rejected;
    in_slo += t.attainment * double(adm);
    admitted += adm;
  }
  return admitted > 0 ? in_slo / double(admitted) : 1.0;
}

/// Per-stream exposed + scheduler idle must tile the makespan, and every
/// request's arrival + queue + service must land inside it.
bool attribution_tiles(const std::vector<gnnone::SeedRequest>& trace,
                       const gnnone::ServingReport& rep) {
  if (rep.sample_split.exposed + rep.gather_split.exposed +
          rep.forward_split.exposed + rep.idle_cycles !=
      rep.total_cycles) {
    return false;
  }
  for (std::size_t r = 0; r < trace.size(); ++r) {
    const gnnone::serve::RequestOutcome& o = rep.outcomes[r];
    if (o.status == gnnone::serve::Status::kRejected) continue;
    if (trace[r].arrival_cycle + o.queue_cycles + o.service_cycles >
        rep.total_cycles) {
      return false;
    }
  }
  return true;
}

std::string point_config(const Mix& mix, double load, const char* policy) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "mix=%s;load=%.2f;policy=%s", mix.id, load,
                policy);
  return buf;
}

}  // namespace

GNNONE_BENCH(serving_slo, 261,
             "Multi-tenant SLO serving: per-tenant queues under FIFO / EDF / "
             "slack scheduling",
             "extension (docs/SERVING.md §8); deadline-aware policies hold "
             "the worst-tenant tail at or below FIFO and win attainment "
             "outright on congested points") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();

  // Two-tenant interactive/batch mix on a power-law graph, plus a
  // three-tenant mix with a bursty diurnal tenant on the Kronecker graph.
  // ci keeps the first mix — its points are an exact subset of the full
  // sweep (identical traces and calibration).
  std::vector<Mix> mixes = {
      {"duo", "G4", 36,
       {{"interactive", "gcn", {4, 3}, 2.0, gnnone::ArrivalProcess::kPoisson},
        {"batchy", "gat", {6, 4}, 6.0, gnnone::ArrivalProcess::kPoisson}}},
      {"trio", "G10", 24,
       {{"interactive", "gcn", {4, 3}, 2.0, gnnone::ArrivalProcess::kPoisson},
        {"analytics", "gat", {6, 4}, 8.0, gnnone::ArrivalProcess::kPoisson},
        {"diurnal", "gcn", {6, 4}, 3.0, gnnone::ArrivalProcess::kBursty}}}};
  // Offered load: batch-amortized utilization ~ 1/load. 1.25 is the
  // congested point where scheduling has to choose well; 16.0 is light
  // enough that even unbatched singleton service (~kBatchSize x the
  // amortized cost) leaves slack on every deadline.
  std::vector<double> loads = {1.25, 4.0, 16.0};
  if (h.ci()) {
    mixes.resize(1);
    loads = {1.25, 16.0};
  }

  const std::vector<gnnone::serve::SchedulerPolicy> policies = {
      gnnone::serve::SchedulerPolicy::kFifoAggregate,
      gnnone::serve::SchedulerPolicy::kEdf,
      gnnone::serve::SchedulerPolicy::kSlack};

  std::printf("%-5s %-5s %5s  %-6s %12s %12s %10s %6s\n", "mix", "graph",
              "load", "policy", "makespan", "worst-p99", "attain", "batches");

  bool tail_never_worse = true;
  bool attainment_monotone = true;
  bool tiles = true;
  bool preds_match = true;
  int strictly_better = 0, mixed_points = 0;
  std::vector<double> fifo_over_edf_p99;

  for (const Mix& mix : mixes) {
    const gnnone::Dataset ds = gnnone::make_dataset(mix.graph);
    CalibratedMix cal = calibrate(ds, mix, dev);
    // FIFO's dynamic-batching timeout, common to all policies that use it:
    // one mean batch-fill time of the slowest tenant.
    double max_service = 0.0;
    for (double s : cal.service_per_request) {
      max_service = std::max(max_service, s);
    }
    const std::uint64_t max_wait = std::uint64_t(
        double(kBatchSize) * double(mix.tenants.size()) * max_service);

    // attainment per policy index, in sweep (descending-congestion) order.
    std::vector<std::vector<double>> attain_by_policy(policies.size());

    for (const double load : loads) {
      const auto trace = make_trace(ds, mix, cal, load);

      std::vector<std::uint64_t> p99s;
      std::vector<double> attains;
      for (std::size_t p = 0; p < policies.size(); ++p) {
        const gnnone::InferenceServer server(
            ds, dev, scheduled_opts(cal, policies[p], max_wait));
        const gnnone::ServingReport rep = server.serve(trace);
        const char* pname = gnnone::serve::policy_name(policies[p]);

        const std::uint64_t p99 = worst_p99(rep);
        const double attain = aggregate_attainment(rep);
        p99s.push_back(p99);
        attains.push_back(attain);
        attain_by_policy[p].push_back(attain);
        tiles = tiles && attribution_tiles(trace, rep);

        const std::string cfg = point_config(mix, load, pname);
        h.add_cycles(mix.graph, "slo_makespan", kFeatureDim, rep.total_cycles,
                     cfg);
        h.add_cycles(mix.graph, "slo_worst_p99", kFeatureDim, p99, cfg);
        std::printf("%-5s %-5s %5.2f  %-6s %12llu %12llu %9.1f%% %6d\n",
                    mix.id, mix.graph, load, pname,
                    (unsigned long long)rep.total_cycles,
                    (unsigned long long)p99, 100.0 * attain, rep.num_batches);

        // Bit-identity vs the untenanted probes: the i-th scheduled request
        // of tenant t is the i-th probe request (same generator seed, and
        // the merged trace preserves per-tenant issue order).
        if (policies[p] == gnnone::serve::SchedulerPolicy::kEdf) {
          std::vector<std::size_t> next(mix.tenants.size(), 0);
          for (std::size_t r = 0; r < trace.size(); ++r) {
            const std::size_t t = std::size_t(trace[r].tenant);
            const std::size_t i = next[t]++;
            preds_match = preds_match &&
                          rep.predictions[r] == cal.probe_predictions[t][i];
          }
        }
      }

      // FIFO is policies[0]; deadline-aware tails must not lose to it.
      const std::uint64_t best_aware = std::min(p99s[1], p99s[2]);
      tail_never_worse = tail_never_worse && best_aware <= p99s[0];
      if (best_aware > 0) {
        fifo_over_edf_p99.push_back(double(p99s[0]) / double(best_aware));
      }
      ++mixed_points;
      if (std::max(attains[1], attains[2]) > attains[0]) ++strictly_better;
    }

    // Lighter traffic never hurts the deadline-aware policies: attainment
    // is non-decreasing as the load factor grows (exact — the sweep is
    // deterministic). FIFO (p = 0) is exempt: its latency floor is the
    // batching timeout, which load does not shrink.
    for (std::size_t p = 1; p < policies.size(); ++p) {
      for (std::size_t i = 1; i < attain_by_policy[p].size(); ++i) {
        attainment_monotone = attainment_monotone &&
                              attain_by_policy[p][i] >=
                                  attain_by_policy[p][i - 1] - 1e-12;
      }
    }
  }

  h.expect("serving_slo.tail_never_worse_than_fifo", tail_never_worse,
           "min(EDF, slack) worst-tenant p99 must be <= FIFO's on every "
           "mixed-tenant point");
  h.expect("serving_slo.attainment_monotone_in_load", attainment_monotone,
           "EDF/slack aggregate attainment must not fall as offered load "
           "lightens");
  const int need_better = h.ci() ? 1 : 3;
  h.expect("serving_slo.deadline_aware_wins_attainment",
           strictly_better >= need_better,
           std::to_string(strictly_better) + " of " +
               std::to_string(mixed_points) +
               " points strictly above FIFO attainment (need >= " +
               std::to_string(need_better) + ")");
  h.expect("serving_slo.attribution_tiles_makespan", tiles,
           "exposed + idle must equal the makespan and every request's "
           "arrival + queue + service must land inside it");
  h.expect("serving_slo.predictions_match_untenanted", preds_match,
           "scheduled predictions must be bit-identical to the closed-loop "
           "untenanted probes");

  const double tail_gain = bench::geomean(fifo_over_edf_p99);
  h.metric("fifo_over_deadline_aware_worst_p99", tail_gain);
  std::printf("\nFIFO worst-p99 / best deadline-aware worst-p99: geomean "
              "%.3fx over %zu points; %d of %d points win attainment\n",
              tail_gain, fifo_over_edf_p99.size(), strictly_better,
              mixed_points);
  return 0;
}
