// Design-choice ablation: symbiotic-scheduler geometry. Sweeps the vector
// width (1/2/4 features per thread — the thread-group size lever of §4.2.1)
// and the Stage-2 pipelining depth (unroll), complementing Figs. 8-10 with
// the full design surface DESIGN.md calls out.
#include "common.h"

GNNONE_BENCH(ablation_geometry, 220,
             "Ablation: thread-group vector width and pipelining depth",
             "extends paper §4.2/§4.4 (float4 vs float2 vs scalar; ILP "
             "window)") {
  gnnone::Context ctx;

  std::printf("SDDMM, f=32 — time normalized to vec=4 (the paper's choice):\n");
  std::printf("%-22s | %8s %8s %8s\n", "dataset", "vec=1", "vec=2", "vec=4");
  std::vector<double> v1s, v2s;
  for (const auto& id : h.reduce({"G4", "G7", "G10", "G13", "G14"})) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(32, 95);
    const auto y = wl.features(32, 96);
    std::vector<float> w(std::size_t(coo.nnz()));
    double t[3];
    int i = 0;
    for (int vec : {1, 2, 4}) {
      gnnone::GnnOneConfig cfg;
      cfg.vec_width = vec;
      const auto ks = ctx.sddmm(coo, x, y, 32, w, cfg);
      h.add(id, "sddmm", 32, ks, "vec=" + std::to_string(vec));
      t[i++] = double(ks.cycles);
    }
    v1s.push_back(t[0] / t[2]);
    v2s.push_back(t[1] / t[2]);
    std::printf("%-22s | %8.2f %8.2f %8.2f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(), t[0] / t[2],
                t[1] / t[2], 1.0);
  }
  const double g_v1 = bench::geomean(v1s);
  const double g_v2 = bench::geomean(v2s);
  std::printf("averages: vec=1 %.2fx slower, vec=2 %.2fx slower than float4\n",
              g_v1, g_v2);

  std::printf("\nSpMM, f=32 — Stage-2 pipelining depth (unroll):\n");
  std::printf("%-22s | %8s %8s %8s %8s\n", "dataset", "U=1", "U=2", "U=4",
              "U=8");
  for (const auto& id : h.reduce({"G4", "G10", "G14"})) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(32, 97);
    std::vector<float> y(std::size_t(coo.num_rows) * 32);
    double base = 0;
    std::printf("%-22s |", (wl.ds.id + "/" + wl.ds.name).c_str());
    for (int u : {1, 2, 4, 8}) {
      gnnone::GnnOneConfig cfg;
      cfg.unroll = u;
      const auto ks = ctx.spmm(coo, wl.edge_val, x, 32, y, cfg);
      h.add(id, "spmm", 32, ks, "unroll=" + std::to_string(u));
      const double t = double(ks.cycles);
      if (u == 4) base = t;
      std::printf(" %8.0f", t / 1000.0);
    }
    std::printf("   (kilocycles; default U=4 = %.0f)\n", base / 1000.0);
  }
  std::printf("\nDeeper pipelining amortizes the exposed DRAM latency per "
              "block; returns diminish once\nthe wave becomes issue-bound — "
              "the same mechanism as the paper's CACHE_SIZE story.\n");

  // §4.2.1's choice: float4 thread-groups are the right default.
  h.metric("vec1_slowdown_vs_vec4", g_v1);
  h.metric("vec2_slowdown_vs_vec4", g_v2);
  bench::expect_ge(h, "geometry.vec4_beats_vec1", g_v1, 1.0,
                   "vec=1 / vec=4 time ratio");
  bench::expect_ge(h, "geometry.vec4_beats_vec2", g_v2, 1.0,
                   "vec=2 / vec=4 time ratio");
  return 0;
}
