// Fig. 7: GCN and GIN training speedup of GNNOne over DGL (200 epochs),
// including the memory-saving OOM asymmetry: GNNOne trains GCN on the
// uk-2002 stand-in (G17) where DGL's dual-format storage exceeds the 40 GB
// card; both OOM on kmer_P1a (G16) and uk-2005 (G18).
#include "common.h"

int main() {
  bench::print_header(
      "Fig. 7: GCN / GIN training speedup over DGL, 200 epochs",
      "paper Fig. 7; paper averages: GCN 1.89x, GIN 1.27x; DGL OOM on "
      "G17-GCN, both OOM on G16/G18");
  const auto& dev = gpusim::default_device();

  for (const std::string kind : {"gcn", "gin"}) {
    gnnone::TrainOptions opts;
    opts.measured_epochs = 2;
    opts.epochs = 200;
    opts.eval_accuracy = false;
    opts.feature_dim_override = kind == "gin" ? 64 : 64;

    std::printf("\n--- %s (%s) ---\n", kind == "gcn" ? "GCN" : "GIN",
                kind == "gcn" ? "2 layers, hidden 16" : "5 layers, hidden 64");
    std::printf("%-22s %14s %14s | %8s   %s\n", "dataset", "GNNOne(ms)",
                "DGL(ms)", "speedup", "footprint@paper-scale (GnnOne/DGL GB)");
    std::vector<double> speedups;
    for (const auto& id : gnnone::training_suite_ids()) {
      const gnnone::Dataset d = gnnone::make_dataset(id);
      const auto ours =
          gnnone::train_model(gnnone::Backend::kGnnOne, d, kind, dev, opts);
      const auto dgl =
          gnnone::train_model(gnnone::Backend::kDgl, d, kind, dev, opts);
      const double gb = 1024.0 * 1024 * 1024;
      char ours_ms[24], dgl_ms[24], sp[16];
      if (ours.ran) {
        std::snprintf(ours_ms, sizeof ours_ms, "%14.1f",
                      gnnone::cycles_to_ms(ours.total_cycles));
      } else {
        std::snprintf(ours_ms, sizeof ours_ms, "%14s", "OOM");
      }
      if (dgl.ran) {
        std::snprintf(dgl_ms, sizeof dgl_ms, "%14.1f",
                      gnnone::cycles_to_ms(dgl.total_cycles));
      } else {
        std::snprintf(dgl_ms, sizeof dgl_ms, "%14s", "OOM");
      }
      if (ours.ran && dgl.ran) {
        const double s = double(dgl.total_cycles) / double(ours.total_cycles);
        speedups.push_back(s);
        std::snprintf(sp, sizeof sp, "%8.2f", s);
      } else {
        std::snprintf(sp, sizeof sp, "%8s", "-");
      }
      std::printf("%-22s %s %s | %s   %.1f / %.1f\n",
                  (d.id + "/" + d.name).c_str(), ours_ms, dgl_ms, sp,
                  double(ours.paper_footprint_bytes) / gb,
                  double(dgl.paper_footprint_bytes) / gb);
    }
    std::printf("average speedup: %.2fx (paper: %s)\n",
                bench::geomean(speedups), kind == "gcn" ? "1.89x" : "1.27x");
  }
  std::printf("\nOOM entries are real allocation failures of the simulated "
              "40 GB device at the\npaper's dataset scale (DESIGN.md lists "
              "the footprint components).\n");
  return 0;
}
