// Fig. 7: GCN and GIN training speedup of GNNOne over DGL (200 epochs),
// including the memory-saving OOM asymmetry: GNNOne trains GCN on the
// uk-2002 stand-in (G17) where DGL's dual-format storage exceeds the 40 GB
// card; both OOM on kmer_P1a (G16) and uk-2005 (G18).
#include "common.h"

GNNONE_BENCH(fig7_gcn_gin, 70,
             "Fig. 7: GCN / GIN training speedup over DGL, 200 epochs",
             "paper Fig. 7; paper averages: GCN 1.89x, GIN 1.27x; DGL OOM on "
             "G17-GCN, both OOM on G16/G18") {
  const auto& dev = gpusim::default_device();

  // The ci subset keeps the three OOM datasets: the Fig. 7 OOM-asymmetry
  // claims live on G16/G17/G18 (which cost little — they fail footprint
  // checks before training).
  const std::vector<std::string> ids =
      h.ci() ? std::vector<std::string>{"G10", "G13", "G14", "G16", "G17",
                                        "G18"}
             : gnnone::training_suite_ids();

  double avg_gcn = 0, avg_gin = 0;
  bool dgl_oom_g17_gcn = false, gnnone_ran_g17_gcn = false;
  bool both_oom_g16_g18 = true;
  for (const std::string kind : {"gcn", "gin"}) {
    gnnone::TrainOptions opts;
    opts.measured_epochs = 2;
    opts.epochs = 200;
    opts.eval_accuracy = false;
    opts.feature_dim_override = 64;

    std::printf("\n--- %s (%s) ---\n", kind == "gcn" ? "GCN" : "GIN",
                kind == "gcn" ? "2 layers, hidden 16" : "5 layers, hidden 64");
    std::printf("%-22s %14s %14s | %8s   %s\n", "dataset", "GNNOne(ms)",
                "DGL(ms)", "speedup", "footprint@paper-scale (GnnOne/DGL GB)");
    std::vector<double> speedups;
    for (const auto& id : ids) {
      const gnnone::Dataset d = gnnone::make_dataset(id);
      const auto ours =
          gnnone::train_model(gnnone::Backend::kGnnOne, d, kind, dev, opts);
      const auto dgl =
          gnnone::train_model(gnnone::Backend::kDgl, d, kind, dev, opts);
      if (ours.ran) {
        h.add_cycles(id, "gnnone", 64, ours.total_cycles, kind);
      } else {
        h.add_status(id, "gnnone", 64, "oom", kind);
      }
      if (dgl.ran) {
        h.add_cycles(id, "dgl", 64, dgl.total_cycles, kind);
      } else {
        h.add_status(id, "dgl", 64, "oom", kind);
      }
      if (kind == "gcn" && id == "G17") {
        dgl_oom_g17_gcn = !dgl.ran;
        gnnone_ran_g17_gcn = ours.ran;
      }
      if (id == "G16" || id == "G18") {
        both_oom_g16_g18 = both_oom_g16_g18 && !ours.ran && !dgl.ran;
      }
      const double gb = 1024.0 * 1024 * 1024;
      char ours_ms[24], dgl_ms[24], sp[16];
      if (ours.ran) {
        std::snprintf(ours_ms, sizeof ours_ms, "%14.1f",
                      gnnone::cycles_to_ms(ours.total_cycles));
      } else {
        std::snprintf(ours_ms, sizeof ours_ms, "%14s", "OOM");
      }
      if (dgl.ran) {
        std::snprintf(dgl_ms, sizeof dgl_ms, "%14.1f",
                      gnnone::cycles_to_ms(dgl.total_cycles));
      } else {
        std::snprintf(dgl_ms, sizeof dgl_ms, "%14s", "OOM");
      }
      if (ours.ran && dgl.ran) {
        const double s = double(dgl.total_cycles) / double(ours.total_cycles);
        speedups.push_back(s);
        std::snprintf(sp, sizeof sp, "%8.2f", s);
      } else {
        std::snprintf(sp, sizeof sp, "%8s", "-");
      }
      std::printf("%-22s %s %s | %s   %.1f / %.1f\n",
                  (d.id + "/" + d.name).c_str(), ours_ms, dgl_ms, sp,
                  double(ours.paper_footprint_bytes) / gb,
                  double(dgl.paper_footprint_bytes) / gb);
    }
    const double avg = bench::geomean(speedups);
    std::printf("average speedup: %.2fx (paper: %s)\n", avg,
                kind == "gcn" ? "1.89x" : "1.27x");
    (kind == "gcn" ? avg_gcn : avg_gin) = avg;
  }
  std::printf("\nOOM entries are real allocation failures of the simulated "
              "40 GB device at the\npaper's dataset scale (DESIGN.md lists "
              "the footprint components).\n");

  // --- paper-shape expectations (DESIGN.md §3, Fig. 7 row) -----------------
  h.metric("avg_speedup_gcn", avg_gcn, 1.89);
  h.metric("avg_speedup_gin", avg_gin, 1.27);
  bench::expect_ge(h, "fig7.gcn_speedup", avg_gcn, 1.2,
                   "GCN geomean speedup over DGL");
  bench::expect_ge(h, "fig7.gin_speedup", avg_gin, 1.0,
                   "GIN geomean speedup over DGL");
  bench::expect_ge(h, "fig7.gcn_gains_exceed_gin", avg_gcn - avg_gin, 0.0,
                   "GCN avg - GIN avg");
  h.expect("fig7.oom_asymmetry_g17_gcn",
           dgl_oom_g17_gcn && gnnone_ran_g17_gcn,
           "DGL OOMs on G17-GCN while GNNOne trains it");
  h.expect("fig7.both_oom_g16_g18", both_oom_g16_g18,
           "both backends OOM on G16 and G18");
  return 0;
}
