// bench::Harness — the machine-readable result sink behind every bench
// binary.
//
// Each bench registers itself with GNNONE_BENCH(...) and receives a Harness.
// While the bench keeps printing its human-readable stdout tables, every
// measured point is ALSO registered as a Row (dataset, kernel/system, feature
// dim, config, modeled cycles, full KernelStats counter block), every
// headline average as a Metric (with the paper's value when the paper states
// one), and every paper-shape claim from DESIGN.md §3 as an Expectation.
//
// The harness then emits:
//  * a versioned BENCH_RESULTS.json (schema below) — one document whether a
//    single binary ran standalone or bench_runner ran the whole suite;
//  * one per-figure CSV next to it (all rows + counters, joinable on
//    bench/dataset/kernel/dim/config);
//  * a nonzero exit code when any expectation fails, so CI catches a run
//    that no longer matches the paper's shapes.
//
// JSON schema (version 1):
//   { "schema": "gnnone-bench-results", "version": 1, "scale": "full"|"ci",
//     "device": { "sm_clock_ghz": .., "num_sms": .., ... },
//     "benches": [ { "name", "title", "paper_ref",
//                    "rows": [ { "dataset", "kernel", "dim", "config",
//                                "status", "cycles", "counters"? : {...} } ],
//                    "metrics": [ { "name", "value", "paper"? } ],
//                    "expectations": [ { "id", "ok", "detail" } ] } ] }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "json.h"

namespace bench {

inline constexpr const char* kResultSchemaName = "gnnone-bench-results";
inline constexpr int kResultSchemaVersion = 1;

/// Suite scale: kFull reproduces every figure over the full dataset suite;
/// kCi runs a reduced subset (same simulation parameters — a ci row's cycles
/// are identical to the same row in a full run) sized for a CI job.
enum class Scale { kFull, kCi };
const char* scale_name(Scale s);

/// One measured point of one figure.
struct Row {
  std::string dataset;        // dataset id ("G4"); "" when not per-dataset
  std::string kernel;         // kernel/system/series name ("gnnone", "dgl")
  int dim = 0;                // feature length; 0 = not applicable
  std::string config;         // extra config discriminator ("cache=32")
  std::string status = "ok";  // "ok" | "n/s" | "oom" | "crash"
  std::uint64_t cycles = 0;   // modeled cycles (0 when status != "ok")
  bool has_stats = false;     // full counter block present?
  gpusim::KernelStats stats;
};

/// A headline scalar of the figure (geomean speedup, share, ...). `paper`
/// carries the paper's reported value when it states one (0 = none); the
/// EXPERIMENTS.md measured-vs-paper table is regenerated from these.
struct Metric {
  std::string name;
  double value = 0.0;
  double paper = 0.0;
};

/// One encoded paper-shape claim and its verdict for this run.
struct Expectation {
  std::string id;      // "fig3.gnnone_fastest"
  bool ok = false;
  std::string detail;  // what was measured / why it failed
};

class Harness {
 public:
  Harness(std::string name, std::string title, std::string paper_ref,
          Scale scale);

  const std::string& name() const { return name_; }
  const std::string& title() const { return title_; }
  const std::string& paper_ref() const { return paper_ref_; }
  Scale scale() const { return scale_; }
  bool ci() const { return scale_ == Scale::kCi; }

  // --- suite reduction ---------------------------------------------------
  // Full scale passes ids through; ci scale keeps only the ci allowlist
  // (chosen to preserve every graph class the §3 claims depend on: skewed,
  // uniform/road, Kronecker, dense, >2M-vertex, OOM-at-paper-scale).
  std::vector<std::string> reduce(std::vector<std::string> ids) const;
  std::vector<std::string> kernel_suite() const;
  std::vector<std::string> accuracy_suite() const;
  /// Feature-length sweep of Figs. 3/4: full {6,16,32,64}, ci {6,32} (keeps
  /// the small-dim-vs-32 crossover claims evaluable).
  std::vector<int> dims() const;

  // --- result sink -------------------------------------------------------
  Row& add(Row row);
  /// Full-stats row from a simulated launch.
  Row& add(const std::string& dataset, const std::string& kernel, int dim,
           const gpusim::KernelStats& ks, const std::string& config = "");
  /// Cycles-only row (training totals, aggregated pipelines).
  Row& add_cycles(const std::string& dataset, const std::string& kernel,
                  int dim, std::uint64_t cycles,
                  const std::string& config = "");
  /// Non-measured row ("n/s", "oom", "crash").
  Row& add_status(const std::string& dataset, const std::string& kernel,
                  int dim, const std::string& status,
                  const std::string& config = "");

  void metric(const std::string& name, double value, double paper = 0.0);

  /// Records one paper-shape claim verdict; returns `ok` so call sites can
  /// chain. A failed expectation makes the binary (and bench_runner) exit
  /// nonzero.
  bool expect(const std::string& id, bool ok, const std::string& detail = "");

  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<Metric>& metrics() const { return metrics_; }
  const std::vector<Expectation>& expectations() const {
    return expectations_;
  }
  int failed_expectations() const;

  // --- exporters ---------------------------------------------------------
  Json to_json() const;      // one entry of the "benches" array
  std::string to_csv() const;  // per-figure CSV (header + all rows)

 private:
  std::string name_, title_, paper_ref_;
  Scale scale_;
  std::vector<Row> rows_;
  std::vector<Metric> metrics_;
  std::vector<Expectation> expectations_;
};

/// Whole-suite result document (schema above) from one or more benches.
Json results_doc(const std::vector<const Harness*>& benches, Scale scale,
                 const gpusim::DeviceSpec& spec);

// --- order statistics -----------------------------------------------------
// Exact nearest-rank percentiles (util/stats.h — the same selection the
// serving TenantReport uses, so a bench expectation on a p99 compares the
// identical number the report quotes). Throws std::invalid_argument on an
// empty sample set or p outside [0, 100].

std::uint64_t percentile(std::vector<std::uint64_t> samples, double p);
double percentile(std::vector<double> samples, double p);
/// p50 / p99 shorthands for latency-tail reporting.
std::uint64_t p50(std::vector<std::uint64_t> samples);
std::uint64_t p99(std::vector<std::uint64_t> samples);

// --- bench registry ------------------------------------------------------

struct BenchInfo {
  const char* name;       // "fig3_sddmm" — also the JSON/CSV identity
  int order;              // paper order for suite runs / reports
  const char* title;      // stdout header line
  const char* paper_ref;  // "reproduces:" line
  int (*fn)(Harness&);    // bench body; nonzero = hard failure
};

void register_bench(const BenchInfo& info);
/// All registered benches, sorted by (order, name).
std::vector<BenchInfo> registered_benches();

/// Parses "full"/"ci" into a Scale; returns false on anything else.
bool parse_scale(const char* s, Scale* out);
/// Prints the per-expectation ok/FAIL table of one bench to stdout.
void print_expectations(const Harness& h);

/// Standalone entry point (the per-figure binaries' main). Flags:
///   --scale=full|ci   suite scale (default full)
///   --out=DIR         where BENCH_RESULTS.json + <name>.csv go (default
///                     "."; "-" disables file output)
///   --trace=PATH      record every kernel launch and write a
///                     chrome://tracing JSON timeline to PATH
/// Exit code: nonzero when the bench body fails, a paper-shape expectation
/// fails, or a result file cannot be written.
int run_standalone(const BenchInfo& info, int argc, char** argv);

}  // namespace bench

// Declares + registers a bench body. Standalone binaries get a main();
// bench_runner (compiled with -DGNNONE_BENCH_RUNNER) links many benches and
// provides its own main over the registry.
#ifdef GNNONE_BENCH_RUNNER
#define GNNONE_BENCH_MAIN()
#else
#define GNNONE_BENCH_MAIN()                                         \
  int main(int argc, char** argv) {                                 \
    return bench::run_standalone(gnnone_bench_info, argc, argv);    \
  }
#endif

#define GNNONE_BENCH(name_, order_, title_, ref_)                   \
  static int gnnone_bench_body(bench::Harness&);                    \
  static const bench::BenchInfo gnnone_bench_info{                  \
      #name_, order_, title_, ref_, &gnnone_bench_body};            \
  [[maybe_unused]] static const bool gnnone_bench_registered =      \
      (bench::register_bench(gnnone_bench_info), true);             \
  GNNONE_BENCH_MAIN()                                               \
  static int gnnone_bench_body([[maybe_unused]] bench::Harness& h)
