// Chaos harness (docs/ROBUSTNESS.md): fault-tolerant serving under seeded
// fault schedules.
//
// The serving trace of bench_serving is replayed while a deterministic
// ChaosOptions schedule injects faults — OOM at each of the three stage
// allocation sites, transient PCIe-fetch faults in the feature gather, and
// forward-pass kernel faults — across a sweep of fault rates and both
// serving drivers (serial and pipelined). The encoded claims:
//  * no fault crashes serve() and no run leaks device allocations: between
//    serves exactly the pinned feature cache is resident;
//  * containment is per-request: every request served at full fidelity is
//    bit-identical to the fault-free run, and only requests whose injected
//    fault is incurable report an error;
//  * availability holds a floor at every fault site (>= 95% of admitted
//    requests served at the 10% rate), with every degraded/failed request
//    carrying a complete DegradationTrace;
//  * recovery stays on the books: backoff cycles appear in the ledger under
//    "backoff" and ride the timeline, so Sigma exposed == makespan and
//    Sigma batch cycles == ledger total keep holding under recovery;
//  * the schedule keys on trace position alone, so serial and pipelined
//    runs produce identical predictions and outcomes;
//  * a zero-rate schedule is byte-identical to the fault-free server (the
//    chaos machinery costs nothing when off).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "gen/requests.h"
#include "serve/server.h"

namespace {

struct FaultSite {
  const char* name;
  void (*arm)(gnnone::serve::ChaosOptions&, double rate);
};

const FaultSite kSites[] = {
    {"oom_sample",
     [](gnnone::serve::ChaosOptions& c, double r) {
       c.oom_rate = r;
       c.oom_site = gnnone::serve::ChaosSite::kSample;
     }},
    {"oom_gather",
     [](gnnone::serve::ChaosOptions& c, double r) {
       c.oom_rate = r;
       c.oom_site = gnnone::serve::ChaosSite::kGather;
     }},
    {"oom_forward",
     [](gnnone::serve::ChaosOptions& c, double r) {
       c.oom_rate = r;
       c.oom_site = gnnone::serve::ChaosSite::kForward;
     }},
    {"fetch", [](gnnone::serve::ChaosOptions& c, double r) { c.fetch_rate = r; }},
    {"kernel",
     [](gnnone::serve::ChaosOptions& c, double r) { c.kernel_rate = r; }},
};

std::string chaos_config(const char* site, double rate, bool pipelined) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "site=%s;rate=%.2f;mode=%s", site, rate,
                pipelined ? "pipelined" : "serial");
  return buf;
}

bool exposed_sums_to_makespan(const gnnone::ServingReport& r) {
  return r.sample_split.exposed + r.gather_split.exposed +
             r.forward_split.exposed ==
         r.total_cycles;
}

bool batches_sum_to_ledger(const gnnone::ServingReport& r) {
  std::uint64_t sum = 0;
  for (const gnnone::BatchStats& b : r.batches) sum += b.cycles;
  return sum == r.ledger.total() &&
         r.ledger.by_tag("backoff") == r.backoff_cycles;
}

/// Full-fidelity requests must match the fault-free predictions bit for
/// bit; degraded/failed ones must carry their trace. Returns false on any
/// violation.
bool outcomes_contained(const gnnone::ServingReport& rep,
                        const gnnone::ServingReport& clean) {
  for (std::size_t r = 0; r < rep.outcomes.size(); ++r) {
    const gnnone::serve::RequestOutcome& o = rep.outcomes[r];
    switch (o.status) {
      case gnnone::serve::Status::kOk:
        if (!o.truncated_fanouts && rep.predictions[r] != clean.predictions[r])
          return false;
        break;
      case gnnone::serve::Status::kDegraded:
        if (o.trace.empty() || !o.truncated_fanouts) return false;
        if (rep.predictions[r].empty()) return false;
        break;
      case gnnone::serve::Status::kRejected:
        return false;  // the bench trace is fully valid
      default:  // an incurable fault: walked the whole ladder, no output
        if (o.trace.empty() || o.error.empty()) return false;
        if (o.trace.back().action != gnnone::serve::ServeAction::kSafeMode)
          return false;
        if (!rep.predictions[r].empty()) return false;
        break;
    }
  }
  return true;
}

}  // namespace

GNNONE_BENCH(chaos, 270,
             "Chaos: serving under seeded OOM/fetch/kernel fault schedules",
             "robustness extension (docs/ROBUSTNESS.md); availability floor, "
             "per-request containment, leak-free recovery") {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const gnnone::Dataset ds = gnnone::make_dataset("G4");

  // The bench_serving trace: 96 requests, 1-3 seeds, uniform traffic.
  gnnone::RequestTraceOptions ro;
  ro.num_requests = 96;
  ro.min_seeds = 1;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.0;
  ro.seed = 77;
  const auto trace = gnnone::make_request_trace(ds.coo, ro);

  gnnone::ServeOptions base;
  base.model_kind = "gcn";  // batch-invariant predictions (server.h)
  base.batch_size = 24;
  base.fanouts = {10, 5};
  base.cache_alpha = 0.1;
  base.feature_dim_override = 32;
  base.backend = gnnone::Backend::kAuto;
  base.seed = 9;
  base.chaos.seed = 5;

  // Full scale sweeps three rates per site; ci keeps the 10% point (rows
  // are an exact subset: same trace, same schedule seed).
  std::vector<double> rates = {0.05, 0.10, 0.25};
  if (h.ci()) rates = {0.10};
  const double kFloorRate = 0.10;

  // Fault-free references, one per driver. The zero-rate schedule must be
  // indistinguishable from a server with no chaos machinery armed.
  gnnone::ServingReport clean[2];
  bool fault_free_clean = true;
  for (int p = 0; p < 2; ++p) {
    gnnone::ServeOptions o = base;
    o.pipeline = p == 1;
    const gnnone::InferenceServer server(ds, dev, o);
    clean[p] = server.serve(trace);
    fault_free_clean =
        fault_free_clean && clean[p].fault_events == 0 &&
        clean[p].backoff_cycles == 0 &&
        clean[p].served_requests() == clean[p].num_requests &&
        server.device_memory().in_use() == server.cache().device_bytes();
    for (const auto& o2 : clean[p].outcomes) {
      fault_free_clean = fault_free_clean &&
                         o2.status == gnnone::serve::Status::kOk &&
                         o2.trace.empty();
    }
  }
  fault_free_clean =
      fault_free_clean && clean[0].predictions == clean[1].predictions;
  h.expect("chaos.fault_free_clean", fault_free_clean,
           "zero-rate schedules must serve every request with clean "
           "outcomes, no backoff, and no resident bytes beyond the cache");

  std::printf("%-12s %5s %-9s  %6s %5s %5s %6s %12s\n", "site", "rate",
              "mode", "avail", "degr", "fail", "faults", "total-cyc");

  bool no_leaks = true, contained = true, books_balance = true;
  bool backoff_attributed = true, mode_invariant = true;
  bool floor_ok = true;
  double worst_avail_floor_rate = 1.0;

  for (const FaultSite& site : kSites) {
    for (const double rate : rates) {
      gnnone::ServingReport by_mode[2];
      for (int p = 0; p < 2; ++p) {
        gnnone::ServeOptions o = base;
        o.pipeline = p == 1;
        site.arm(o.chaos, rate);
        const gnnone::InferenceServer server(ds, dev, o);
        const gnnone::ServingReport rep = server.serve(trace);
        by_mode[p] = rep;

        no_leaks = no_leaks && server.device_memory().in_use() ==
                                   server.cache().device_bytes();
        contained = contained && outcomes_contained(rep, clean[p]);
        books_balance = books_balance && exposed_sums_to_makespan(rep) &&
                        batches_sum_to_ledger(rep);
        // Any contained fault walks the retry rung first, so recovery
        // always leaves a backoff trail in the ledger.
        backoff_attributed = backoff_attributed &&
                             (rep.fault_events == 0) ==
                                 (rep.backoff_cycles == 0);
        if (rate == kFloorRate) {
          worst_avail_floor_rate =
              std::min(worst_avail_floor_rate, rep.availability());
          floor_ok = floor_ok && rep.availability() >= 0.95;
        }

        const std::string cfg = chaos_config(site.name, rate, o.pipeline);
        h.add_cycles("G4", "chaos_total", base.feature_dim_override,
                     rep.total_cycles, cfg);
        h.add_cycles("G4", "chaos_backoff", base.feature_dim_override,
                     rep.backoff_cycles, cfg);

        std::printf("%-12s %5.2f %-9s  %5.1f%% %5d %5d %6d %12llu\n",
                    site.name, rate, o.pipeline ? "pipelined" : "serial",
                    100.0 * rep.availability(), rep.degraded_requests(),
                    rep.failed_requests(), rep.fault_events,
                    (unsigned long long)rep.total_cycles);
      }

      // The schedule keys on trace position, never on the driver: both
      // modes must agree on every prediction, outcome, and charge.
      mode_invariant = mode_invariant &&
                       by_mode[0].predictions == by_mode[1].predictions &&
                       by_mode[0].ledger.total() == by_mode[1].ledger.total() &&
                       by_mode[0].backoff_cycles == by_mode[1].backoff_cycles;
      for (std::size_t r = 0; r < by_mode[0].outcomes.size(); ++r) {
        mode_invariant = mode_invariant && by_mode[0].outcomes[r].status ==
                                               by_mode[1].outcomes[r].status;
      }
    }
  }

  h.expect("chaos.no_leaked_allocations", no_leaks,
           "after every chaotic serve exactly the pinned cache bytes remain "
           "in use");
  h.expect("chaos.unaffected_bit_identity", contained,
           "every full-fidelity request bit-identical to the fault-free "
           "run; every degraded/failed request carries its full trace");
  h.expect("chaos.backoff_attributed", backoff_attributed,
           "faulted runs (and only those) charge backoff to the ledger");
  h.expect("chaos.books_balance_under_recovery", books_balance,
           "Sigma exposed == makespan and Sigma batch cycles == ledger "
           "total on every chaotic run");
  h.expect("chaos.serial_pipelined_invariant", mode_invariant,
           "fault fates key on trace position: both drivers agree on every "
           "outcome, prediction, and charge");
  char detail[96];
  std::snprintf(detail, sizeof detail,
                "worst availability at rate %.2f = %.3f (floor 0.95)",
                kFloorRate, worst_avail_floor_rate);
  h.expect("chaos.availability_floor", floor_ok, detail);
  h.metric("chaos_worst_availability_rate0.1", worst_avail_floor_rate);

  std::printf("\nworst availability @ rate %.2f across sites/modes: %.3f\n",
              kFloorRate, worst_avail_floor_rate);
  return 0;
}
