// Fig. 3: SDDMM — GNNOne speedup over dgSparse, cuSPARSE, Sputnik, FeatGraph
// and DGL for feature lengths {6, 16, 32, 64} across the dataset suite.
// "n/s" marks baselines that error out at the paper's dataset scale
// (Sputnik/cuSPARSE beyond ~2M vertices, §5.1).
#include <map>
#include <vector>

#include "common.h"

GNNONE_BENCH(fig3_sddmm, 30,
             "Fig. 3: SDDMM speedup of GNNOne over prior works",
             "paper Fig. 3; paper averages: 6.54x dgSparse-class, 4.17x DGL, "
             "6.38x dgSparse, 1-2 orders over cuSPARSE/Sputnik") {
  gnnone::Context ctx;
  const auto& dev = ctx.device();
  const auto dims = h.dims();

  struct Avg {
    std::vector<double> dgsparse, cusparse, sputnik, featgraph, dgl;
  };
  std::map<int, Avg> by_dim;

  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    std::printf("\n%s (%s)  V=%d E=%lld\n", wl.ds.id.c_str(),
                wl.ds.name.c_str(), coo.num_rows, (long long)coo.nnz());
    std::printf("  %-4s %10s | %9s %9s %9s %9s %9s\n", "dim", "GNNOne(ms)",
                "dgSparse", "cuSPARSE", "Sputnik", "FeatGraph", "DGL");
    for (int dim : dims) {
      const auto x = wl.features(dim, 21);
      const auto y = wl.features(dim, 22);
      std::vector<float> w(std::size_t(coo.nnz()));

      const auto ours = ctx.sddmm(coo, x, y, dim, w);
      const auto dgsp =
          gnnone::baselines::dgsparse_sddmm(dev, wl.csr, x, y, dim, w);
      const auto fg =
          gnnone::baselines::featgraph_sddmm(dev, wl.csr, x, y, dim, w);
      const auto dgl = gnnone::baselines::dgl_sddmm(dev, coo, x, y, dim, w);
      h.add(id, "gnnone", dim, ours);
      h.add(id, "dgsparse", dim, dgsp);
      h.add(id, "featgraph", dim, fg);
      h.add(id, "dgl", dim, dgl);

      auto& avg = by_dim[dim];
      const double base = double(ours.cycles);
      avg.dgsparse.push_back(double(dgsp.cycles) / base);
      avg.featgraph.push_back(double(fg.cycles) / base);
      avg.dgl.push_back(double(dgl.cycles) / base);

      char cu[16] = "n/s", sp[16] = "n/s";
      if (gnnone::baselines::cusparse_sddmm_supports(wl.ds.paper_vertices)) {
        const auto r =
            gnnone::baselines::cusparse_sddmm(dev, wl.csr, x, y, dim, w);
        h.add(id, "cusparse", dim, r);
        avg.cusparse.push_back(double(r.cycles) / base);
        std::snprintf(cu, sizeof cu, "%.2f", double(r.cycles) / base);
      } else {
        h.add_status(id, "cusparse", dim, "n/s");
      }
      if (gnnone::baselines::sputnik_sddmm_supports(wl.ds.paper_vertices)) {
        const auto r =
            gnnone::baselines::sputnik_sddmm(dev, wl.csr, x, y, dim, w);
        h.add(id, "sputnik", dim, r);
        avg.sputnik.push_back(double(r.cycles) / base);
        std::snprintf(sp, sizeof sp, "%.2f", double(r.cycles) / base);
      } else {
        h.add_status(id, "sputnik", dim, "n/s");
      }
      std::printf("  %-4d %10.3f | %9.2f %9s %9s %9.2f %9.2f\n", dim,
                  gnnone::cycles_to_ms(ours.cycles),
                  double(dgsp.cycles) / base, cu, sp,
                  double(fg.cycles) / base, double(dgl.cycles) / base);
    }
  }

  std::printf("\nGeometric-mean speedup by feature length (paper values in "
              "parentheses):\n");
  std::printf("  %-4s %9s %9s %9s %9s %9s\n", "dim", "dgSparse", "cuSPARSE",
              "Sputnik", "FeatGraph", "DGL");
  struct PaperRef { int dim; double fg, dgl, dgsp; };
  const PaperRef refs[] = {{6, 0, 0, 0},
                           {16, 7.49, 4.70, 5.04},
                           {32, 3.00, 5.53, 4.07},
                           {64, 0, 0, 0}};
  std::vector<double> all;
  for (int dim : dims) {
    const Avg& avg = by_dim[dim];
    std::printf("  %-4d %9.2f %9.2f %9.2f %9.2f %9.2f", dim,
                bench::geomean(avg.dgsparse), bench::geomean(avg.cusparse),
                bench::geomean(avg.sputnik), bench::geomean(avg.featgraph),
                bench::geomean(avg.dgl));
    for (const PaperRef& r : refs) {
      if (r.dim == dim && r.fg > 0) {
        std::printf("   (paper: FeatGraph %.2f, DGL %.2f, dgSparse %.2f)",
                    r.fg, r.dgl, r.dgsp);
      }
    }
    std::printf("\n");
    for (double v : avg.dgsparse) all.push_back(v);
    for (double v : avg.featgraph) all.push_back(v);
    for (double v : avg.dgl) all.push_back(v);
  }
  const double overall = bench::geomean(all);
  std::printf("\nOverall average over dgSparse/FeatGraph/DGL: %.2fx "
              "(paper reports 6.02x across feature lengths excluding "
              "Sputnik/cuSPARSE)\n",
              overall);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 3 row) -----------------
  h.metric("avg_speedup_dgsparse_fg_dgl", overall, 6.02);
  h.metric("geomean_cusparse", bench::geomean(by_dim[32].cusparse));
  h.metric("geomean_sputnik", bench::geomean(by_dim[32].sputnik));
  // GNNOne fastest everywhere: no baseline row ever beats it.
  double worst = 1e30;
  for (const char* k :
       {"dgsparse", "cusparse", "sputnik", "featgraph", "dgl"}) {
    const double m = bench::speedup_min(h, k, "gnnone");
    if (m > 0) worst = std::min(worst, m);
  }
  bench::expect_ge(h, "fig3.gnnone_fastest_everywhere", worst, 1.0,
                   "min speedup over any baseline");
  // About an order of magnitude over cuSPARSE/Sputnik (paper: 1-2 orders;
  // our scaled stand-ins under-reproduce the quadratic-|V| overheads, see
  // EXPERIMENTS.md).
  bench::expect_ge(h, "fig3.cusparse_order_worse",
                   bench::speedup_geomean(h, "cusparse", "gnnone"), 4.0,
                   "geomean over cuSPARSE");
  bench::expect_ge(h, "fig3.sputnik_order_worse",
                   bench::speedup_geomean(h, "sputnik", "gnnone"), 8.0,
                   "geomean over Sputnik");
  // Support matrix: cuSPARSE/Sputnik absent above ~2M paper vertices (G4 is
  // in both the full and ci suites).
  const bench::Row* cu_g4 = bench::find_row(h, "G4", "cusparse");
  const bench::Row* sp_g4 = bench::find_row(h, "G4", "sputnik");
  h.expect("fig3.support_matrix_2m_vertices",
           cu_g4 && cu_g4->status == "n/s" && sp_g4 && sp_g4->status == "n/s",
           "cuSPARSE/Sputnik must be n/s on G4 (2.39M paper vertices)");
  // Bigger gaps at small feature lengths: FeatGraph's idle-lane penalty
  // shrinks from f=6 to f=32 (the paper's crossover argument).
  bench::expect_ge(h, "fig3.featgraph_gap_shrinks_with_dim",
                   bench::geomean(by_dim[6].featgraph) -
                       bench::geomean(by_dim[32].featgraph),
                   0.0, "FeatGraph geomean(f=6) - geomean(f=32)");
  bench::expect_band(h, "fig3.overall_avg_band", overall, 3.0, 30.0,
                     "avg over dgSparse/FeatGraph/DGL");
  return 0;
}
