// Fig. 3: SDDMM — GNNOne speedup over dgSparse, cuSPARSE, Sputnik, FeatGraph
// and DGL for feature lengths {6, 16, 32, 64} across the dataset suite.
// "n/s" marks baselines that error out at the paper's dataset scale
// (Sputnik/cuSPARSE beyond ~2M vertices, §5.1).
#include <vector>

#include "common.h"

int main() {
  bench::print_header(
      "Fig. 3: SDDMM speedup of GNNOne over prior works",
      "paper Fig. 3; paper averages: 6.54x dgSparse-class, 4.17x DGL, "
      "6.38x dgSparse, 1-2 orders over cuSPARSE/Sputnik");
  gnnone::Context ctx;
  const auto& dev = ctx.device();

  struct Avg {
    std::vector<double> dgsparse, cusparse, sputnik, featgraph, dgl;
  };
  std::vector<std::pair<int, Avg>> byjdim;
  for (int dim : bench::paper_dims()) byjdim.emplace_back(dim, Avg{});

  for (const auto& id : gnnone::kernel_suite_ids()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    std::printf("\n%s (%s)  V=%d E=%lld\n", wl.ds.id.c_str(),
                wl.ds.name.c_str(), coo.num_rows, (long long)coo.nnz());
    std::printf("  %-4s %10s | %9s %9s %9s %9s %9s\n", "dim", "GNNOne(ms)",
                "dgSparse", "cuSPARSE", "Sputnik", "FeatGraph", "DGL");
    for (std::size_t di = 0; di < bench::paper_dims().size(); ++di) {
      const int dim = bench::paper_dims()[di];
      const auto x = wl.features(dim, 21);
      const auto y = wl.features(dim, 22);
      std::vector<float> w(std::size_t(coo.nnz()));

      const auto ours = ctx.sddmm(coo, x, y, dim, w);
      const auto dgsp =
          gnnone::baselines::dgsparse_sddmm(dev, wl.csr, x, y, dim, w);
      const auto fg =
          gnnone::baselines::featgraph_sddmm(dev, wl.csr, x, y, dim, w);
      const auto dgl = gnnone::baselines::dgl_sddmm(dev, coo, x, y, dim, w);

      auto& avg = byjdim[di].second;
      const double base = double(ours.cycles);
      avg.dgsparse.push_back(double(dgsp.cycles) / base);
      avg.featgraph.push_back(double(fg.cycles) / base);
      avg.dgl.push_back(double(dgl.cycles) / base);

      char cu[16] = "n/s", sp[16] = "n/s";
      if (gnnone::baselines::cusparse_sddmm_supports(wl.ds.paper_vertices)) {
        const auto r =
            gnnone::baselines::cusparse_sddmm(dev, wl.csr, x, y, dim, w);
        avg.cusparse.push_back(double(r.cycles) / base);
        std::snprintf(cu, sizeof cu, "%.2f", double(r.cycles) / base);
      }
      if (gnnone::baselines::sputnik_sddmm_supports(wl.ds.paper_vertices)) {
        const auto r =
            gnnone::baselines::sputnik_sddmm(dev, wl.csr, x, y, dim, w);
        avg.sputnik.push_back(double(r.cycles) / base);
        std::snprintf(sp, sizeof sp, "%.2f", double(r.cycles) / base);
      }
      std::printf("  %-4d %10.3f | %9.2f %9s %9s %9.2f %9.2f\n", dim,
                  gnnone::cycles_to_ms(ours.cycles),
                  double(dgsp.cycles) / base, cu, sp,
                  double(fg.cycles) / base, double(dgl.cycles) / base);
    }
  }

  std::printf("\nGeometric-mean speedup by feature length (paper values in "
              "parentheses):\n");
  std::printf("  %-4s %9s %9s %9s %9s %9s\n", "dim", "dgSparse", "cuSPARSE",
              "Sputnik", "FeatGraph", "DGL");
  struct PaperRef { int dim; double fg, dgl, dgsp; };
  const PaperRef refs[] = {{6, 0, 0, 0},
                           {16, 7.49, 4.70, 5.04},
                           {32, 3.00, 5.53, 4.07},
                           {64, 0, 0, 0}};
  std::vector<double> all;
  for (std::size_t di = 0; di < byjdim.size(); ++di) {
    const auto& [dim, avg] = byjdim[di];
    std::printf("  %-4d %9.2f %9.2f %9.2f %9.2f %9.2f", dim,
                bench::geomean(avg.dgsparse), bench::geomean(avg.cusparse),
                bench::geomean(avg.sputnik), bench::geomean(avg.featgraph),
                bench::geomean(avg.dgl));
    if (refs[di].fg > 0) {
      std::printf("   (paper: FeatGraph %.2f, DGL %.2f, dgSparse %.2f)",
                  refs[di].fg, refs[di].dgl, refs[di].dgsp);
    }
    std::printf("\n");
    for (double v : avg.dgsparse) all.push_back(v);
    for (double v : avg.featgraph) all.push_back(v);
    for (double v : avg.dgl) all.push_back(v);
  }
  std::printf("\nOverall average over dgSparse/FeatGraph/DGL: %.2fx "
              "(paper reports 6.02x across feature lengths excluding "
              "Sputnik/cuSPARSE)\n",
              bench::geomean(all));
  return 0;
}
