// Design-choice ablation: SpMV nonzero-split granularity. §4.4 argues the
// two classes of nonzero-split SpMV (coalesced fetch + inter-thread
// reduction vs per-thread consecutive NZEs + thread-local reduction) are
// special cases of the GNNOne design; N (NZEs per thread) is the knob that
// interpolates between them.
#include <map>

#include "common.h"

GNNONE_BENCH(ablation_spmv_split, 230,
             "Ablation: SpMV NZEs-per-thread (nonzero-split granularity, "
             "§4.4)",
             "extends paper Fig. 12 / §4.4 trade-off discussion") {
  gnnone::Context ctx;

  std::printf("%-22s | %8s %8s %8s %8s  (kilocycles, lower is better)\n",
              "dataset", "N=1", "N=2", "N=4", "N=8");
  std::vector<double> default_vs_best;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(1, 99);
    std::vector<float> y(std::size_t(coo.num_rows));
    std::printf("%-22s |", (wl.ds.id + "/" + wl.ds.name).c_str());
    std::map<int, double> t;
    for (int n : {1, 2, 4, 8}) {
      const auto ks = ctx.spmv(coo, wl.edge_val, x, y, n);
      h.add(id, "spmv", 1, ks, "n=" + std::to_string(n));
      t[n] = double(ks.cycles);
      std::printf(" %8.1f", double(ks.cycles) / 1000.0);
    }
    std::printf("\n");
    double best = t[1];
    for (const auto& [n, cycles] : t) best = std::min(best, cycles);
    default_vs_best.push_back(t[4] / best);
  }
  std::printf("\nN=1 is the Dalton-style fully coalesced fetch (no "
              "thread-local reduction);\nlarger N trades NZE-fetch "
              "coalescing for thread-local reduction, Merrill-style.\n");

  // §4.4: the default granularity (N=4, what Fig. 12 runs) must sit near
  // the per-dataset optimum across the whole interpolation range.
  const double g = bench::geomean(default_vs_best);
  h.metric("default_n4_over_best", g);
  bench::expect_band(h, "spmv_split.default_n4_competitive", g, 1.0, 1.25,
                     "N=4 time / best-N time (geomean)");
  return 0;
}
