// Design-choice ablation: SpMV nonzero-split granularity. §4.4 argues the
// two classes of nonzero-split SpMV (coalesced fetch + inter-thread
// reduction vs per-thread consecutive NZEs + thread-local reduction) are
// special cases of the GNNOne design; N (NZEs per thread) is the knob that
// interpolates between them.
#include "common.h"

int main() {
  bench::print_header(
      "Ablation: SpMV NZEs-per-thread (nonzero-split granularity, §4.4)",
      "extends paper Fig. 12 / §4.4 trade-off discussion");
  gnnone::Context ctx;

  std::printf("%-22s | %8s %8s %8s %8s  (kilocycles, lower is better)\n",
              "dataset", "N=1", "N=2", "N=4", "N=8");
  for (const auto& id : gnnone::kernel_suite_ids()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(1, 99);
    std::vector<float> y(std::size_t(coo.num_rows));
    std::printf("%-22s |", (wl.ds.id + "/" + wl.ds.name).c_str());
    for (int n : {1, 2, 4, 8}) {
      const auto ks = ctx.spmv(coo, wl.edge_val, x, y, n);
      std::printf(" %8.1f", double(ks.cycles) / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("\nN=1 is the Dalton-style fully coalesced fetch (no "
              "thread-local reduction);\nlarger N trades NZE-fetch "
              "coalescing for thread-local reduction, Merrill-style.\n");
  return 0;
}
