// Fig. 8: SDDMM design-choice ablation at feature length 32 —
//   Baseline      edge-parallel COO, no caching, no reuse, 1 feature/thread
//                 (mimics DGL's design, as the paper states);
//   +Data-reuse   Stage-1 NZE caching + row-feature register reuse;
//   +Float4       the thread-group vector-load path (full GNNOne).
#include "common.h"

int main() {
  bench::print_header(
      "Fig. 8: SDDMM optimization breakdown (f=32)",
      "paper Fig. 8; paper averages: +reuse 2.78x, +float4 further 1.80x, "
      "total 4.59x");
  gnnone::Context ctx;
  const int dim = 32;

  gnnone::GnnOneConfig base;
  base.stage1_caching = false;
  base.row_reuse = false;
  base.vec_width = 1;
  gnnone::GnnOneConfig reuse = base;
  reuse.stage1_caching = true;
  reuse.row_reuse = true;
  const gnnone::GnnOneConfig full;  // defaults: everything on

  std::printf("%-22s %12s | %9s %9s %9s\n", "dataset", "baseline(ms)",
              "+reuse", "+float4", "total");
  std::vector<double> r_reuse, r_float4, r_total;
  for (const auto& id : gnnone::kernel_suite_ids()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 41);
    const auto y = wl.features(dim, 42);
    std::vector<float> w(std::size_t(coo.nnz()));

    const auto b = ctx.sddmm(coo, x, y, dim, w, base);
    const auto r = ctx.sddmm(coo, x, y, dim, w, reuse);
    const auto f = ctx.sddmm(coo, x, y, dim, w, full);
    const double s_reuse = double(b.cycles) / double(r.cycles);
    const double s_float4 = double(r.cycles) / double(f.cycles);
    const double s_total = double(b.cycles) / double(f.cycles);
    r_reuse.push_back(s_reuse);
    r_float4.push_back(s_float4);
    r_total.push_back(s_total);
    std::printf("%-22s %12.3f | %9.2f %9.2f %9.2f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                gnnone::cycles_to_ms(b.cycles), s_reuse, s_float4, s_total);
  }
  std::printf("\naverages: +data-reuse %.2fx (paper 2.78x), +float4 %.2fx "
              "(paper 1.80x), total %.2fx (paper 4.59x)\n",
              bench::geomean(r_reuse), bench::geomean(r_float4),
              bench::geomean(r_total));
  return 0;
}
