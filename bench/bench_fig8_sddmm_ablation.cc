// Fig. 8: SDDMM design-choice ablation at feature length 32 —
//   Baseline      edge-parallel COO, no caching, no reuse, 1 feature/thread
//                 (mimics DGL's design, as the paper states);
//   +Data-reuse   Stage-1 NZE caching + row-feature register reuse;
//   +Float4       the thread-group vector-load path (full GNNOne).
#include "common.h"

GNNONE_BENCH(fig8_sddmm_ablation, 80,
             "Fig. 8: SDDMM optimization breakdown (f=32)",
             "paper Fig. 8; paper averages: +reuse 2.78x, +float4 further "
             "1.80x, total 4.59x") {
  gnnone::Context ctx;
  const int dim = 32;

  gnnone::GnnOneConfig base;
  base.stage1_caching = false;
  base.row_reuse = false;
  base.vec_width = 1;
  gnnone::GnnOneConfig reuse = base;
  reuse.stage1_caching = true;
  reuse.row_reuse = true;
  const gnnone::GnnOneConfig full;  // defaults: everything on

  std::printf("%-22s %12s | %9s %9s %9s\n", "dataset", "baseline(ms)",
              "+reuse", "+float4", "total");
  std::vector<double> r_reuse, r_float4, r_total;
  for (const auto& id : h.kernel_suite()) {
    const bench::KernelWorkload wl(id);
    const auto& coo = wl.ds.coo;
    const auto x = wl.features(dim, 41);
    const auto y = wl.features(dim, 42);
    std::vector<float> w(std::size_t(coo.nnz()));

    const auto b = ctx.sddmm(coo, x, y, dim, w, base);
    const auto r = ctx.sddmm(coo, x, y, dim, w, reuse);
    const auto f = ctx.sddmm(coo, x, y, dim, w, full);
    h.add(id, "gnnone", dim, b, "baseline");
    h.add(id, "gnnone", dim, r, "+reuse");
    h.add(id, "gnnone", dim, f, "+float4");
    const double s_reuse = double(b.cycles) / double(r.cycles);
    const double s_float4 = double(r.cycles) / double(f.cycles);
    const double s_total = double(b.cycles) / double(f.cycles);
    r_reuse.push_back(s_reuse);
    r_float4.push_back(s_float4);
    r_total.push_back(s_total);
    std::printf("%-22s %12.3f | %9.2f %9.2f %9.2f\n",
                (wl.ds.id + "/" + wl.ds.name).c_str(),
                gnnone::cycles_to_ms(b.cycles), s_reuse, s_float4, s_total);
  }
  const double g_reuse = bench::geomean(r_reuse);
  const double g_float4 = bench::geomean(r_float4);
  const double g_total = bench::geomean(r_total);
  std::printf("\naverages: +data-reuse %.2fx (paper 2.78x), +float4 %.2fx "
              "(paper 1.80x), total %.2fx (paper 4.59x)\n",
              g_reuse, g_float4, g_total);

  // --- paper-shape expectations (DESIGN.md §3, Fig. 8 row) -----------------
  h.metric("avg_speedup_reuse", g_reuse, 2.78);
  h.metric("avg_speedup_float4", g_float4, 1.80);
  h.metric("avg_speedup_total", g_total, 4.59);
  bench::expect_ge(h, "fig8.reuse_helps", g_reuse, 1.3,
                   "geomean gain from data reuse");
  bench::expect_ge(h, "fig8.float4_helps", g_float4, 1.3,
                   "geomean gain from float4 groups");
  bench::expect_band(h, "fig8.total_band", g_total, 2.5, 8.0,
                     "total ablation gain (paper 4.59x)");
  return 0;
}
