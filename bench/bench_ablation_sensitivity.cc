// Cost-model sensitivity ablation (reproduction hygiene, DESIGN.md §6): the
// paper's qualitative conclusions must not hinge on one calibration point.
// Sweeps the simulator's main latitude parameters — DRAM latency, MLP
// hiding cap, DRAM bandwidth — and checks that the headline orderings
// (GNNOne fastest; Huang closest; nonzero-split register collapse) survive.
#include "common.h"

namespace {

struct Outcome {
  std::uint64_t ours_cycles;
  double vs_ge, vs_huang, vs_dgl_sddmm, vs_nzsplit;
};

Outcome run(const gpusim::DeviceSpec& dev, const bench::KernelWorkload& wl,
            int dim) {
  gnnone::Context ctx(dev);
  const auto& coo = wl.ds.coo;
  const auto x = wl.features(dim, 91);
  const auto y2 = wl.features(dim, 92);
  std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(dim));
  std::vector<float> w(std::size_t(coo.nnz()));

  const auto ours = ctx.spmm(coo, wl.edge_val, x, dim, y);
  const auto ge =
      gnnone::baselines::gespmm_spmm(dev, wl.csr, wl.edge_val, x, dim, y);
  const auto hu = gnnone::baselines::huang_spmm(dev, wl.csr, wl.ng,
                                                wl.edge_val, x, dim, y);
  const auto nz = gnnone::baselines::nonzero_split_spmm(dev, coo, wl.edge_val,
                                                        x, dim, y);
  const auto ours_sd = ctx.sddmm(coo, x, y2, dim, w);
  const auto dgl = gnnone::baselines::dgl_sddmm(dev, coo, x, y2, dim, w);
  return {ours.cycles,
          double(ge.cycles) / double(ours.cycles),
          double(hu.cycles) / double(ours.cycles),
          double(dgl.cycles) / double(ours_sd.cycles),
          double(nz.cycles) / double(ours.cycles)};
}

}  // namespace

GNNONE_BENCH(ablation_sensitivity, 210,
             "Ablation: cost-model sensitivity of the headline conclusions",
             "reproduction-methodology check, not a paper figure") {
  const bench::KernelWorkload wl("G4");  // skewed social-graph stand-in
  const int dim = 32;

  struct Variant {
    const char* name;
    gpusim::DeviceSpec dev;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (A100-like)", gpusim::default_device()});
  {
    auto d = gpusim::default_device();
    d.global_load_latency = 200;
    variants.push_back({"DRAM latency 200", d});
  }
  {
    auto d = gpusim::default_device();
    d.global_load_latency = 800;
    variants.push_back({"DRAM latency 800", d});
  }
  {
    auto d = gpusim::default_device();
    d.latency_hiding_warps = 4;
    variants.push_back({"MLP hiding cap 4", d});
  }
  {
    auto d = gpusim::default_device();
    d.latency_hiding_warps = 32;
    variants.push_back({"MLP hiding cap 32", d});
  }
  {
    auto d = gpusim::default_device();
    d.dram_bytes_per_cycle = 256;
    variants.push_back({"DRAM bandwidth /4", d});
  }
  {
    auto d = gpusim::default_device();
    d.num_sms = 40;
    variants.push_back({"40 SMs (V100-ish)", d});
  }
  {
    // Slow-clock variant: cycle counts barely move, but reported wall time
    // must scale with the variant's own clock, not the A100 default — the
    // E2 consistency check behind DeviceSpec::sm_clock_ghz.
    auto d = gpusim::default_device();
    d.sm_clock_ghz = 0.705;
    variants.push_back({"SM clock /2", d});
  }

  std::printf("%-22s | %11s %9s %9s %11s %10s\n", "model variant",
              "GnnOne(ms)", "vs GE", "vs Huang", "vs DGL-SDDMM", "vs nzsplit");
  bool stable = true;
  for (const auto& v : variants) {
    const Outcome o = run(v.dev, wl, dim);
    const bool ok = o.vs_ge > 1.0 && o.vs_dgl_sddmm > 1.0 && o.vs_nzsplit > 1.0;
    stable = stable && ok;
    h.add_cycles("G4", "gnnone", dim, o.ours_cycles, v.name);
    h.metric(std::string(v.name) + ".vs_ge", o.vs_ge);
    // Wall time at the *variant's* clock (cycles_to_ms spec overload).
    std::printf("%-22s | %11.3f %9.2f %9.2f %11.2f %10.2f %s\n", v.name,
                gnnone::cycles_to_ms(o.ours_cycles, v.dev), o.vs_ge,
                o.vs_huang, o.vs_dgl_sddmm, o.vs_nzsplit, ok ? "" : "  <-- !");
  }
  std::printf("\n%s: GNNOne beats GE-SpMM, DGL SDDMM and nonzero-split under "
              "every model variant;\nHuang remains the closest competitor — "
              "the paper's orderings are not calibration artifacts.\n",
              stable ? "STABLE" : "UNSTABLE");
  h.expect("sensitivity.orderings_stable", stable,
           "GNNOne > GE/DGL-SDDMM/nzsplit under every cost-model variant");
  return 0;
}
