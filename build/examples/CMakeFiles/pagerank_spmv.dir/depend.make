# Empty dependencies file for pagerank_spmv.
# This may be replaced when dependencies are built.
