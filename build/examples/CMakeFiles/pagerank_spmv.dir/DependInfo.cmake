
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pagerank_spmv.cpp" "examples/CMakeFiles/pagerank_spmv.dir/pagerank_spmv.cpp.o" "gcc" "examples/CMakeFiles/pagerank_spmv.dir/pagerank_spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
