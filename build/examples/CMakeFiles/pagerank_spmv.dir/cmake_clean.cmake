file(REMOVE_RECURSE
  "CMakeFiles/pagerank_spmv.dir/pagerank_spmv.cpp.o"
  "CMakeFiles/pagerank_spmv.dir/pagerank_spmv.cpp.o.d"
  "pagerank_spmv"
  "pagerank_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
