# Empty compiler generated dependencies file for fused_inference.
# This may be replaced when dependencies are built.
