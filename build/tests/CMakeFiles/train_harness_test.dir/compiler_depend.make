# Empty compiler generated dependencies file for train_harness_test.
# This may be replaced when dependencies are built.
