file(REMOVE_RECURSE
  "CMakeFiles/train_harness_test.dir/train_harness_test.cc.o"
  "CMakeFiles/train_harness_test.dir/train_harness_test.cc.o.d"
  "train_harness_test"
  "train_harness_test.pdb"
  "train_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
