file(REMOVE_RECURSE
  "CMakeFiles/kernels_fused_test.dir/kernels_fused_test.cc.o"
  "CMakeFiles/kernels_fused_test.dir/kernels_fused_test.cc.o.d"
  "kernels_fused_test"
  "kernels_fused_test.pdb"
  "kernels_fused_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_fused_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
