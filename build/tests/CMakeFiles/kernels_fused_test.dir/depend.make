# Empty dependencies file for kernels_fused_test.
# This may be replaced when dependencies are built.
