# Empty dependencies file for gnn_fused_test.
# This may be replaced when dependencies are built.
