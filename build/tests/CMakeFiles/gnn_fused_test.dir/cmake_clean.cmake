file(REMOVE_RECURSE
  "CMakeFiles/gnn_fused_test.dir/gnn_fused_test.cc.o"
  "CMakeFiles/gnn_fused_test.dir/gnn_fused_test.cc.o.d"
  "gnn_fused_test"
  "gnn_fused_test.pdb"
  "gnn_fused_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_fused_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
