file(REMOVE_RECURSE
  "CMakeFiles/kernels_baselines_test.dir/kernels_baselines_test.cc.o"
  "CMakeFiles/kernels_baselines_test.dir/kernels_baselines_test.cc.o.d"
  "kernels_baselines_test"
  "kernels_baselines_test.pdb"
  "kernels_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
