# Empty compiler generated dependencies file for kernels_baselines_test.
# This may be replaced when dependencies are built.
