file(REMOVE_RECURSE
  "CMakeFiles/gnn_layers_test.dir/gnn_layers_test.cc.o"
  "CMakeFiles/gnn_layers_test.dir/gnn_layers_test.cc.o.d"
  "gnn_layers_test"
  "gnn_layers_test.pdb"
  "gnn_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
