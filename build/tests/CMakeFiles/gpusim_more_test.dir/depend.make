# Empty dependencies file for gpusim_more_test.
# This may be replaced when dependencies are built.
