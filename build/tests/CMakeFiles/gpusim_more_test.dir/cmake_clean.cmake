file(REMOVE_RECURSE
  "CMakeFiles/gpusim_more_test.dir/gpusim_more_test.cc.o"
  "CMakeFiles/gpusim_more_test.dir/gpusim_more_test.cc.o.d"
  "gpusim_more_test"
  "gpusim_more_test.pdb"
  "gpusim_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
