# Empty dependencies file for kernels_gnnone_test.
# This may be replaced when dependencies are built.
