file(REMOVE_RECURSE
  "CMakeFiles/kernels_gnnone_test.dir/kernels_gnnone_test.cc.o"
  "CMakeFiles/kernels_gnnone_test.dir/kernels_gnnone_test.cc.o.d"
  "kernels_gnnone_test"
  "kernels_gnnone_test.pdb"
  "kernels_gnnone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_gnnone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
