# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_gnnone_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_fused_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_more_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_property_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_fused_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/train_harness_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_property_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_layers_test[1]_include.cmake")
