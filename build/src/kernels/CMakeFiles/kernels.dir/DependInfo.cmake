
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/baselines/cusparse_sddmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/cusparse_sddmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/cusparse_sddmm.cc.o.d"
  "/root/repo/src/kernels/baselines/dgl_sddmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/dgl_sddmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/dgl_sddmm.cc.o.d"
  "/root/repo/src/kernels/baselines/merge_spmv.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/merge_spmv.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/merge_spmv.cc.o.d"
  "/root/repo/src/kernels/baselines/neighbor_group_spmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/neighbor_group_spmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/neighbor_group_spmm.cc.o.d"
  "/root/repo/src/kernels/baselines/nonzero_split_spmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/nonzero_split_spmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/nonzero_split_spmm.cc.o.d"
  "/root/repo/src/kernels/baselines/vertex_parallel_sddmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/vertex_parallel_sddmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/vertex_parallel_sddmm.cc.o.d"
  "/root/repo/src/kernels/baselines/vertex_parallel_spmm.cc" "src/kernels/CMakeFiles/kernels.dir/baselines/vertex_parallel_spmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/baselines/vertex_parallel_spmm.cc.o.d"
  "/root/repo/src/kernels/gnnone_fused.cc" "src/kernels/CMakeFiles/kernels.dir/gnnone_fused.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/gnnone_fused.cc.o.d"
  "/root/repo/src/kernels/gnnone_sddmm.cc" "src/kernels/CMakeFiles/kernels.dir/gnnone_sddmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/gnnone_sddmm.cc.o.d"
  "/root/repo/src/kernels/gnnone_spmm.cc" "src/kernels/CMakeFiles/kernels.dir/gnnone_spmm.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/gnnone_spmm.cc.o.d"
  "/root/repo/src/kernels/gnnone_spmv.cc" "src/kernels/CMakeFiles/kernels.dir/gnnone_spmv.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/gnnone_spmv.cc.o.d"
  "/root/repo/src/kernels/reference.cc" "src/kernels/CMakeFiles/kernels.dir/reference.cc.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
