file(REMOVE_RECURSE
  "CMakeFiles/kernels.dir/baselines/cusparse_sddmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/cusparse_sddmm.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/dgl_sddmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/dgl_sddmm.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/merge_spmv.cc.o"
  "CMakeFiles/kernels.dir/baselines/merge_spmv.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/neighbor_group_spmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/neighbor_group_spmm.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/nonzero_split_spmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/nonzero_split_spmm.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/vertex_parallel_sddmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/vertex_parallel_sddmm.cc.o.d"
  "CMakeFiles/kernels.dir/baselines/vertex_parallel_spmm.cc.o"
  "CMakeFiles/kernels.dir/baselines/vertex_parallel_spmm.cc.o.d"
  "CMakeFiles/kernels.dir/gnnone_fused.cc.o"
  "CMakeFiles/kernels.dir/gnnone_fused.cc.o.d"
  "CMakeFiles/kernels.dir/gnnone_sddmm.cc.o"
  "CMakeFiles/kernels.dir/gnnone_sddmm.cc.o.d"
  "CMakeFiles/kernels.dir/gnnone_spmm.cc.o"
  "CMakeFiles/kernels.dir/gnnone_spmm.cc.o.d"
  "CMakeFiles/kernels.dir/gnnone_spmv.cc.o"
  "CMakeFiles/kernels.dir/gnnone_spmv.cc.o.d"
  "CMakeFiles/kernels.dir/reference.cc.o"
  "CMakeFiles/kernels.dir/reference.cc.o.d"
  "libkernels.a"
  "libkernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
