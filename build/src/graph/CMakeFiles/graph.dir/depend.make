# Empty dependencies file for graph.
# This may be replaced when dependencies are built.
