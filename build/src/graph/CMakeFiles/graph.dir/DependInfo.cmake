
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/convert.cc" "src/graph/CMakeFiles/graph.dir/convert.cc.o" "gcc" "src/graph/CMakeFiles/graph.dir/convert.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/graph.dir/io.cc.o.d"
  "/root/repo/src/graph/merge_path.cc" "src/graph/CMakeFiles/graph.dir/merge_path.cc.o" "gcc" "src/graph/CMakeFiles/graph.dir/merge_path.cc.o.d"
  "/root/repo/src/graph/neighbor_group.cc" "src/graph/CMakeFiles/graph.dir/neighbor_group.cc.o" "gcc" "src/graph/CMakeFiles/graph.dir/neighbor_group.cc.o.d"
  "/root/repo/src/graph/row_swizzle.cc" "src/graph/CMakeFiles/graph.dir/row_swizzle.cc.o" "gcc" "src/graph/CMakeFiles/graph.dir/row_swizzle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
