file(REMOVE_RECURSE
  "libgraph.a"
)
