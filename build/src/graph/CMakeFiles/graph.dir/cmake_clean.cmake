file(REMOVE_RECURSE
  "CMakeFiles/graph.dir/convert.cc.o"
  "CMakeFiles/graph.dir/convert.cc.o.d"
  "CMakeFiles/graph.dir/io.cc.o"
  "CMakeFiles/graph.dir/io.cc.o.d"
  "CMakeFiles/graph.dir/merge_path.cc.o"
  "CMakeFiles/graph.dir/merge_path.cc.o.d"
  "CMakeFiles/graph.dir/neighbor_group.cc.o"
  "CMakeFiles/graph.dir/neighbor_group.cc.o.d"
  "CMakeFiles/graph.dir/row_swizzle.cc.o"
  "CMakeFiles/graph.dir/row_swizzle.cc.o.d"
  "libgraph.a"
  "libgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
