file(REMOVE_RECURSE
  "libtensor.a"
)
