# Empty dependencies file for tensor.
# This may be replaced when dependencies are built.
