file(REMOVE_RECURSE
  "CMakeFiles/tensor.dir/autograd.cc.o"
  "CMakeFiles/tensor.dir/autograd.cc.o.d"
  "CMakeFiles/tensor.dir/ops.cc.o"
  "CMakeFiles/tensor.dir/ops.cc.o.d"
  "CMakeFiles/tensor.dir/optim.cc.o"
  "CMakeFiles/tensor.dir/optim.cc.o.d"
  "CMakeFiles/tensor.dir/tensor.cc.o"
  "CMakeFiles/tensor.dir/tensor.cc.o.d"
  "libtensor.a"
  "libtensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
