file(REMOVE_RECURSE
  "CMakeFiles/gpusim.dir/launch.cc.o"
  "CMakeFiles/gpusim.dir/launch.cc.o.d"
  "CMakeFiles/gpusim.dir/report.cc.o"
  "CMakeFiles/gpusim.dir/report.cc.o.d"
  "CMakeFiles/gpusim.dir/warp.cc.o"
  "CMakeFiles/gpusim.dir/warp.cc.o.d"
  "libgpusim.a"
  "libgpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
