
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/launch.cc" "src/gpusim/CMakeFiles/gpusim.dir/launch.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/launch.cc.o.d"
  "/root/repo/src/gpusim/report.cc" "src/gpusim/CMakeFiles/gpusim.dir/report.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/report.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "src/gpusim/CMakeFiles/gpusim.dir/warp.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
