file(REMOVE_RECURSE
  "CMakeFiles/gnn.dir/backends.cc.o"
  "CMakeFiles/gnn.dir/backends.cc.o.d"
  "CMakeFiles/gnn.dir/layers.cc.o"
  "CMakeFiles/gnn.dir/layers.cc.o.d"
  "CMakeFiles/gnn.dir/models.cc.o"
  "CMakeFiles/gnn.dir/models.cc.o.d"
  "CMakeFiles/gnn.dir/train.cc.o"
  "CMakeFiles/gnn.dir/train.cc.o.d"
  "libgnn.a"
  "libgnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
