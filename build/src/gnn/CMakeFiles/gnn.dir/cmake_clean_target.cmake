file(REMOVE_RECURSE
  "libgnn.a"
)
