
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/backends.cc" "src/gnn/CMakeFiles/gnn.dir/backends.cc.o" "gcc" "src/gnn/CMakeFiles/gnn.dir/backends.cc.o.d"
  "/root/repo/src/gnn/layers.cc" "src/gnn/CMakeFiles/gnn.dir/layers.cc.o" "gcc" "src/gnn/CMakeFiles/gnn.dir/layers.cc.o.d"
  "/root/repo/src/gnn/models.cc" "src/gnn/CMakeFiles/gnn.dir/models.cc.o" "gcc" "src/gnn/CMakeFiles/gnn.dir/models.cc.o.d"
  "/root/repo/src/gnn/train.cc" "src/gnn/CMakeFiles/gnn.dir/train.cc.o" "gcc" "src/gnn/CMakeFiles/gnn.dir/train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
