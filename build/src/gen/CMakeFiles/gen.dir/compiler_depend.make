# Empty compiler generated dependencies file for gen.
# This may be replaced when dependencies are built.
