file(REMOVE_RECURSE
  "libgen.a"
)
