file(REMOVE_RECURSE
  "CMakeFiles/gen.dir/datasets.cc.o"
  "CMakeFiles/gen.dir/datasets.cc.o.d"
  "CMakeFiles/gen.dir/grid.cc.o"
  "CMakeFiles/gen.dir/grid.cc.o.d"
  "CMakeFiles/gen.dir/random.cc.o"
  "CMakeFiles/gen.dir/random.cc.o.d"
  "CMakeFiles/gen.dir/rmat.cc.o"
  "CMakeFiles/gen.dir/rmat.cc.o.d"
  "libgen.a"
  "libgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
