# Empty compiler generated dependencies file for bench_fig12_spmv.
# This may be replaced when dependencies are built.
