# Empty dependencies file for bench_gpusim_micro.
# This may be replaced when dependencies are built.
