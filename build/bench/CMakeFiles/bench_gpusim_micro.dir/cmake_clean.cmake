file(REMOVE_RECURSE
  "CMakeFiles/bench_gpusim_micro.dir/bench_gpusim_micro.cc.o"
  "CMakeFiles/bench_gpusim_micro.dir/bench_gpusim_micro.cc.o.d"
  "bench_gpusim_micro"
  "bench_gpusim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpusim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
