file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sddmm.dir/bench_fig3_sddmm.cc.o"
  "CMakeFiles/bench_fig3_sddmm.dir/bench_fig3_sddmm.cc.o.d"
  "bench_fig3_sddmm"
  "bench_fig3_sddmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sddmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
