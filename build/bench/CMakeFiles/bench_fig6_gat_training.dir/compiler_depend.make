# Empty compiler generated dependencies file for bench_fig6_gat_training.
# This may be replaced when dependencies are built.
