file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_spmm.dir/bench_fig4_spmm.cc.o"
  "CMakeFiles/bench_fig4_spmm.dir/bench_fig4_spmm.cc.o.d"
  "bench_fig4_spmm"
  "bench_fig4_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
