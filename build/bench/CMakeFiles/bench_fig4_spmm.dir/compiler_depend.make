# Empty compiler generated dependencies file for bench_fig4_spmm.
# This may be replaced when dependencies are built.
