# Empty compiler generated dependencies file for bench_fig7_gcn_gin.
# This may be replaced when dependencies are built.
