file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gcn_gin.dir/bench_fig7_gcn_gin.cc.o"
  "CMakeFiles/bench_fig7_gcn_gin.dir/bench_fig7_gcn_gin.cc.o.d"
  "bench_fig7_gcn_gin"
  "bench_fig7_gcn_gin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gcn_gin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
