# Empty dependencies file for bench_ablation_format.
# This may be replaced when dependencies are built.
