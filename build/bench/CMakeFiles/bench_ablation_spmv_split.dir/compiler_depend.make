# Empty compiler generated dependencies file for bench_ablation_spmv_split.
# This may be replaced when dependencies are built.
