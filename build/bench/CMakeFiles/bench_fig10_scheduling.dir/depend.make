# Empty dependencies file for bench_fig10_scheduling.
# This may be replaced when dependencies are built.
