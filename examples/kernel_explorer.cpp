// Kernel explorer: run any kernel on any dataset from the command line and
// print a profiler-style report — the tool you reach for when exploring the
// design space beyond the canned benchmarks.
//
//   ./build/examples/kernel_explorer                       # defaults
//   ./build/examples/kernel_explorer G14 sddmm 32
//   ./build/examples/kernel_explorer G4 spmm 16 --cache 32 --vec 1 --rr
//   ./build/examples/kernel_explorer G10 spmv
//   ./build/examples/kernel_explorer path/to/graph.mtx spmm 64
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/gnnone.h"
#include "gpusim/report.h"
#include "graph/io.h"

namespace {

void usage() {
  std::printf(
      "usage: kernel_explorer [dataset|file.mtx] [spmm|sddmm|spmv] [dim]\n"
      "                       [--cache N] [--vec N] [--rr] [--no-cache]\n"
      "                       [--no-reuse] [--load-only]\n"
      "  dataset: G0..G18 (Table-1 stand-ins) or a MatrixMarket file\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "G10";
  std::string kernel = "spmm";
  int dim = 32;
  gnnone::GnnOneConfig cfg;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t positional = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--cache" && i + 1 < args.size()) {
      cfg.cache_size = std::atoi(args[++i].c_str());
    } else if (a == "--vec" && i + 1 < args.size()) {
      cfg.vec_width = std::atoi(args[++i].c_str());
    } else if (a == "--rr") {
      cfg.policy = gnnone::SchedulePolicy::kRoundRobin;
    } else if (a == "--no-cache") {
      cfg.stage1_caching = false;
    } else if (a == "--no-reuse") {
      cfg.row_reuse = false;
    } else if (a == "--load-only") {
      cfg.mode = gnnone::KernelMode::kLoadOnly;
    } else if (positional == 0) {
      dataset = a;
      ++positional;
    } else if (positional == 1) {
      kernel = a;
      ++positional;
    } else if (positional == 2) {
      dim = std::atoi(a.c_str());
      ++positional;
    } else {
      usage();
      return 1;
    }
  }

  gnnone::Coo graph;
  std::string name = dataset;
  if (dataset.size() >= 4 &&
      dataset.compare(dataset.size() - 4, 4, ".mtx") == 0) {
    graph = gnnone::read_mtx_file(dataset);
  } else {
    const gnnone::Dataset d = gnnone::make_dataset(dataset);
    graph = d.coo;
    name = d.id + " (" + d.name + " stand-in)";
  }
  std::printf("graph   : %s — %d vertices, %lld NZEs\n", name.c_str(),
              graph.num_rows, (long long)graph.nnz());
  std::printf("kernel  : GNNOne %s, feature length %d, cache %d, vec %d, "
              "%s%s\n\n",
              kernel.c_str(), dim, cfg.cache_size, cfg.vec_width,
              cfg.policy == gnnone::SchedulePolicy::kConsecutive
                  ? "consecutive"
                  : "round-robin",
              cfg.mode == gnnone::KernelMode::kLoadOnly ? ", load-only" : "");

  const auto nv = std::size_t(graph.num_rows);
  std::vector<float> ev(std::size_t(graph.nnz()), 1.0f);
  gnnone::Context ctx;
  gpusim::KernelStats ks;
  if (kernel == "spmm") {
    std::vector<float> x(nv * std::size_t(dim), 0.5f), y(x.size());
    ks = ctx.spmm(graph, ev, x, dim, y, cfg);
  } else if (kernel == "sddmm") {
    std::vector<float> x(nv * std::size_t(dim), 0.5f);
    std::vector<float> w(std::size_t(graph.nnz()));
    ks = ctx.sddmm(graph, x, x, dim, w, cfg);
  } else if (kernel == "spmv") {
    std::vector<float> x(nv, 0.5f), y(nv);
    ks = ctx.spmv(graph, ev, x, y);
  } else {
    usage();
    return 1;
  }
  std::fputs(gpusim::describe(ks, ctx.device()).c_str(), stdout);
  return 0;
}
