// Node classification: train a 2-layer GCN end-to-end on the Cora stand-in
// with the GNNOne backend, printing the accuracy curve — the workflow behind
// the paper's Fig. 5.
//
//   ./build/examples/node_classification
#include <cstdio>

#include "core/gnnone.h"

int main() {
  const gnnone::Dataset cora = gnnone::make_dataset("G0");
  std::printf("dataset: %s (%s), %d vertices, %lld edges, %d classes\n",
              cora.id.c_str(), cora.name.c_str(), cora.coo.num_rows,
              (long long)cora.coo.nnz(), cora.num_classes);

  gnnone::TrainOptions opts;
  opts.measured_epochs = 60;
  opts.epochs = 60;
  opts.feature_dim_override = 32;  // synthetic features carry label signal
  opts.lr = 0.02f;

  const auto result = gnnone::train_model(gnnone::Backend::kGnnOne, cora,
                                          "gcn", gpusim::default_device(),
                                          opts);
  if (!result.ran) {
    std::printf("training failed: %s\n", result.fail_reason.c_str());
    return 1;
  }
  for (std::size_t e = 0; e < result.accuracy_curve.size(); e += 10) {
    std::printf("epoch %3zu  test accuracy %.3f\n", e,
                result.accuracy_curve[e]);
  }
  std::printf("final accuracy: %.3f\n", result.final_accuracy);
  std::printf("modeled time per epoch: %.3f ms (SpMM %.0f%%, dense %.0f%%)\n",
              gnnone::cycles_to_ms(result.cycles_per_epoch),
              100.0 * double(result.spmm_cycles) /
                  double(result.spmm_cycles + result.dense_cycles + 1),
              100.0 * double(result.dense_cycles) /
                  double(result.spmm_cycles + result.dense_cycles + 1));
  return result.final_accuracy > 0.7 ? 0 : 1;
}
