// Scientific-computing workflow: PageRank by repeated SpMV on the standard
// COO format, using GNNOne's nonzero-split COO SpMV (paper §4.4 / Fig. 12)
// and comparing against the Merge-SpMV custom-format baseline.
//
//   ./build/examples/pagerank_spmv
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gnnone.h"
#include "gen/datasets.h"

int main() {
  const gnnone::Dataset data = gnnone::make_dataset("G6");  // web graph
  const gnnone::Coo& g = data.coo;
  const auto n = std::size_t(g.num_rows);
  std::printf("dataset: %s (%s stand-in), %zu vertices, %lld edges\n",
              data.id.c_str(), data.name.c_str(), n, (long long)g.nnz());

  // Column-stochastic edge weights: 1 / out-degree of the source column.
  std::vector<int> out_deg(n, 0);
  for (gnnone::vid_t c : g.col) out_deg[std::size_t(c)] += 1;
  std::vector<float> ev(std::size_t(g.nnz()));
  for (std::size_t e = 0; e < ev.size(); ++e) {
    ev[e] = 1.0f / float(std::max(out_deg[std::size_t(g.col[e])], 1));
  }

  gnnone::Context ctx;
  const float d = 0.85f;
  std::vector<float> rank(n, 1.0f / float(n)), next(n, 0.0f);
  std::uint64_t total_cycles = 0;
  int iter = 0;
  for (; iter < 50; ++iter) {
    const auto ks = ctx.spmv(g, ev, rank, next);
    total_cycles += ks.cycles;
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const float nv = (1.0f - d) / float(n) + d * next[v];
      delta += std::fabs(nv - rank[v]);
      rank[v] = nv;
    }
    if (delta < 1e-6) break;
  }
  std::printf("PageRank converged in %d iterations, %.3f ms modeled SpMV\n",
              iter + 1, gnnone::cycles_to_ms(total_cycles));

  // Top-5 pages.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + 5, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return rank[a] > rank[b];
                    });
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d vertex %zu  rank %.6f\n", i + 1, idx[std::size_t(i)],
                rank[idx[std::size_t(i)]]);
  }

  // One COO SpMV vs the custom-format Merge-SpMV baseline (Fig. 12).
  const gnnone::Csr csr = gnnone::coo_to_csr(g);
  std::vector<float> y1(n), y2(n);
  const auto ours = ctx.spmv(g, ev, rank, y1);
  const auto merge = gnnone::baselines::merge_spmv(ctx.device(), csr, ev,
                                                   rank, y2);
  std::printf("COO SpMV %.3f ms vs Merge-SpMV %.3f ms (%.2fx)\n",
              gnnone::cycles_to_ms(ours.cycles),
              gnnone::cycles_to_ms(merge.cycles),
              double(merge.cycles) / double(ours.cycles));
  return 0;
}
