// Fused attention inference: serve one GAT attention layer with the fused
// GNNOne kernels (the paper's §5.3.2 future work, implemented here) and
// compare modeled latency against the unfused kernel sequence — the
// inference-serving scenario where launch overheads and edge-tensor round
// trips matter most.
//
//   ./build/examples/fused_inference
#include <cstdio>
#include <vector>

#include "core/gnnone.h"
#include "tensor/dense_cost.h"
#include "gpusim/report.h"
#include "kernels/gnnone_fused.h"

int main() {
  const gnnone::Dataset data = gnnone::make_dataset("G13");  // LiveJournal
  const gnnone::Coo& g = data.coo;
  const int f = 32;
  const auto nv = std::size_t(g.num_rows);
  std::printf("dataset: %s (%s stand-in), %zu vertices, %lld edges, f=%d\n\n",
              data.id.c_str(), data.name.c_str(), nv, (long long)g.nnz(), f);

  std::vector<float> s_src(nv, 0.3f), s_dst(nv, -0.1f);
  std::vector<float> h(nv * std::size_t(f), 0.5f);
  std::vector<float> alpha(std::size_t(g.nnz()));
  std::vector<float> out(nv * std::size_t(f));

  gnnone::Context ctx;

  // Fused: three passes, alpha normalized in-register.
  const auto fused = gnnone::gnnone_fused_attention(
      ctx.device(), g, s_src, s_dst, h, f, 0.2f, alpha, out);
  std::printf("fused attention (3 launches): %.3f ms\n",
              gnnone::cycles_to_ms(fused.total_cycles()));
  std::printf("  max pass      : %.3f ms\n",
              gnnone::cycles_to_ms(fused.max_pass.cycles));
  std::printf("  logit pass    : %.3f ms\n",
              gnnone::cycles_to_ms(fused.logit_pass.cycles));
  std::printf("  aggregate pass: %.3f ms\n\n",
              gnnone::cycles_to_ms(fused.aggregate_pass.cycles));

  // Unfused equivalent: SDDMM(f=2) + two f=1 segment passes + the weighted
  // SpMM, plus three elementwise edge passes for LeakyReLU/exp/normalize.
  std::vector<float> x2(nv * 2), y2(nv * 2), e(std::size_t(g.nnz()));
  std::vector<float> ones(nv, 1.0f), seg(nv);
  const auto k1 = ctx.sddmm(g, x2, y2, 2, e);
  const auto k2 = ctx.spmm(g, e, ones, 1, seg);
  const auto k3 = ctx.spmm(g, e, ones, 1, seg);
  const auto k4 = ctx.spmm(g, alpha, h, f, out);
  const auto elem = 3 * gnnone::elementwise_cycles(ctx.device(), g.nnz());
  const auto unfused =
      k1.cycles + k2.cycles + k3.cycles + k4.cycles + elem;
  std::printf("unfused pipeline (7 launches): %.3f ms\n",
              gnnone::cycles_to_ms(unfused));
  std::printf("\nfusion speedup: %.2fx (forward only; both pipelines are "
              "DRAM-bandwidth bound on\nthis graph, so the launch/elementwise "
              "savings are the whole gain — fusing the\nbackward as well is "
              "the remaining future work).\n",
              double(unfused) / double(fused.total_cycles()));

  std::printf("\naggregate-pass profile:\n%s",
              gpusim::describe(fused.aggregate_pass, ctx.device()).c_str());
  return 0;
}
