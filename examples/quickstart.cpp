// Quickstart: run GNNOne's unified SpMM and SDDMM kernels on a small graph
// and inspect the cost-model statistics.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/gnnone.h"
#include "gen/rmat.h"

int main() {
  // A skewed Kronecker graph, symmetrized and CSR-arranged — the standard
  // COO format both kernels share.
  gnnone::RmatParams params;
  params.scale = 12;        // 4096 vertices
  params.edge_factor = 16;  // ~64k directed edges before symmetrization
  const gnnone::Coo graph = gnnone::rmat_graph(params);
  std::printf("graph: %d vertices, %lld NZEs\n", graph.num_rows,
              (long long)graph.nnz());

  const int f = 32;  // vertex feature length
  const auto nv = std::size_t(graph.num_rows);
  std::vector<float> edge_val(std::size_t(graph.nnz()), 1.0f);
  std::vector<float> x(nv * f, 0.5f), y(nv * f, 0.0f);
  std::vector<float> w(std::size_t(graph.nnz()), 0.0f);

  gnnone::Context ctx;  // simulated A100-class device

  // SpMM: y = A * x  (vertex-level output).
  const auto spmm = ctx.spmm(graph, edge_val, x, f, y);
  std::printf("SpMM : %8.3f ms modeled  (%llu cycles, %.0f%% data-load, "
              "occupancy %d warps/SM)\n",
              gnnone::cycles_to_ms(spmm.cycles),
              (unsigned long long)spmm.cycles,
              100.0 * spmm.data_load_fraction(),
              spmm.resident_warps_per_sm);

  // SDDMM: w[e] = dot(x[row e], x[col e])  (edge-level output).
  const auto sddmm = ctx.sddmm(graph, x, x, f, w);
  std::printf("SDDMM: %8.3f ms modeled  (%llu cycles, %.0f%% data-load)\n",
              gnnone::cycles_to_ms(sddmm.cycles),
              (unsigned long long)sddmm.cycles,
              100.0 * sddmm.data_load_fraction());

  // The design knobs from the paper are one struct away:
  gnnone::GnnOneConfig small_cache;
  small_cache.cache_size = 32;  // Fig. 9 ablates 32 vs 128
  const auto spmm32 = ctx.spmm(graph, edge_val, x, f, y, small_cache);
  std::printf("SpMM with CACHE_SIZE=32: %.3f ms (%.2fx slower — Stage-1 "
              "barrier amortization, paper Fig. 9)\n",
              gnnone::cycles_to_ms(spmm32.cycles),
              double(spmm32.cycles) / double(spmm.cycles));
  return 0;
}
