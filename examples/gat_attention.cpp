// Attention GNN: train a GAT (SDDMM + edge softmax + SpMM per layer) on a
// social-network stand-in and compare the GNNOne backend against DGL-style
// and dgNN-style kernel stacks — the paper's Fig. 6 workflow in miniature.
//
//   ./build/examples/gat_attention
#include <cstdio>

#include "core/gnnone.h"

int main() {
  const gnnone::Dataset data = gnnone::make_dataset("G11");  // hollywood09
  std::printf("dataset: %s (%s stand-in), %d vertices, %lld edges\n",
              data.id.c_str(), data.name.c_str(), data.coo.num_rows,
              (long long)data.coo.nnz());

  gnnone::TrainOptions opts;
  opts.measured_epochs = 2;
  opts.epochs = 200;  // reported horizon, as in the paper
  opts.feature_dim_override = 32;
  opts.eval_accuracy = false;

  std::uint64_t gnnone_cycles = 0;
  for (const auto backend : {gnnone::Backend::kGnnOne, gnnone::Backend::kDgl,
                             gnnone::Backend::kDgnn}) {
    if (!gnnone::SparseEngine::supports(backend, data)) {
      std::printf("%-7s: unsupported on this graph class\n",
                  gnnone::backend_name(backend).c_str());
      continue;
    }
    const auto r = gnnone::train_model(backend, data, "gat",
                                       gpusim::default_device(), opts);
    if (!r.ran) {
      std::printf("%-7s: %s\n", gnnone::backend_name(backend).c_str(),
                  r.fail_reason.c_str());
      continue;
    }
    if (backend == gnnone::Backend::kGnnOne) gnnone_cycles = r.total_cycles;
    std::printf("%-7s: %8.1f ms / 200 epochs modeled  (SDDMM %5.1f ms, "
                "SpMM %5.1f ms)%s\n",
                gnnone::backend_name(backend).c_str(),
                gnnone::cycles_to_ms(r.total_cycles),
                gnnone::cycles_to_ms(r.sddmm_cycles * 200 /
                                     std::uint64_t(opts.measured_epochs)),
                gnnone::cycles_to_ms(r.spmm_cycles * 200 /
                                     std::uint64_t(opts.measured_epochs)),
                backend == gnnone::Backend::kGnnOne
                    ? ""
                    : "  <- baseline");
    if (backend != gnnone::Backend::kGnnOne && gnnone_cycles > 0) {
      std::printf("         GNNOne speedup: %.2fx\n",
                  double(r.total_cycles) / double(gnnone_cycles));
    }
  }
  return 0;
}
