// Unit tests for the dense tensor library, autograd (finite-difference
// gradient checks on every op), and the optimizers.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gen/rng.h"
#include "gpusim/device.h"
#include "tensor/autograd.h"
#include "tensor/dense_cost.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace gnnone {
namespace {

OpContext ctx_no_ledger() {
  OpContext ctx;
  ctx.dev = &gpusim::default_device();
  ctx.training = true;
  return ctx;
}

Tensor random_tensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  for (std::size_t i = 0; i < std::size_t(t.numel()); ++i) {
    t[i] = float(rng.normal());
  }
  return t;
}

TEST(Tensor, MatmulAgainstHand) {
  Tensor a = Tensor::from(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Tensor, TransposedMatmulsAgree) {
  const Tensor a = random_tensor(4, 5, 1);
  const Tensor b = random_tensor(5, 3, 2);
  const Tensor ab = matmul(a, b);
  // matmul_bt(a, b^T as rows) == a*b
  Tensor bt(3, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Tensor ab2 = matmul_bt(a, bt);
  for (std::size_t i = 0; i < std::size_t(ab.numel()); ++i) {
    EXPECT_NEAR(ab[i], ab2[i], 1e-4f);
  }
  // matmul_at(a^T as rows, b) == a*b
  Tensor at(5, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  }
  const Tensor ab3 = matmul_at(at, b);
  for (std::size_t i = 0; i < std::size_t(ab.numel()); ++i) {
    EXPECT_NEAR(ab[i], ab3[i], 1e-4f);
  }
}

/// Finite-difference gradient check of a scalar-valued graph builder.
void gradcheck(const std::function<VarPtr(const std::vector<VarPtr>&)>& fn,
               std::vector<VarPtr> inputs, float eps = 1e-2f,
               float tol = 2e-2f) {
  const VarPtr out = fn(inputs);
  ASSERT_EQ(out->value.numel(), 1);
  backward(out);
  for (const auto& in : inputs) {
    for (std::size_t i = 0; i < std::size_t(in->value.numel()); ++i) {
      const float orig = in->value[i];
      in->value[i] = orig + eps;
      const float up = fn(inputs)->value[0];
      in->value[i] = orig - eps;
      const float dn = fn(inputs)->value[0];
      in->value[i] = orig;
      const float fd = (up - dn) / (2 * eps);
      EXPECT_NEAR(in->grad[i], fd, tol + 0.05f * std::abs(fd))
          << "input " << in->name << " element " << i;
    }
  }
}

/// Sums a variable into a scalar (test reduction head).
VarPtr reduce_sum(const OpContext& ctx, const VarPtr& v) {
  auto ones = make_var(Tensor(v->value.cols(), 1, 1.0f));
  auto col = vmatmul(ctx, v, ones);          // rows x 1
  auto ones2 = make_var(Tensor(1, v->value.rows(), 1.0f));
  return vmatmul(ctx, ones2, col);           // 1 x 1
}

TEST(Autograd, MatmulGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(3, 4, 1), true, "a");
  auto b = make_var(random_tensor(4, 2, 2), true, "b");
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx, vmatmul(ctx, in[0], in[1]));
      },
      {a, b});
}

TEST(Autograd, BiasAndAddGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(3, 4, 3), true, "a");
  auto b = make_var(random_tensor(1, 4, 4), true, "bias");
  auto c = make_var(random_tensor(3, 4, 5), true, "c");
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx,
                          vadd(ctx, vbias(ctx, in[0], in[1]), in[2]));
      },
      {a, b, c});
}

TEST(Autograd, ActivationsGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(4, 3, 6), true, "a");
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx, vleaky_relu(ctx, in[0], 0.2f));
      },
      {a});
  auto b = make_var(random_tensor(4, 3, 7), true, "b");
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx, vrelu(ctx, in[0]));
      },
      {b});
}

TEST(Autograd, ScaleGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(2, 5, 8), true, "a");
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx, vscale(ctx, in[0], 1.5f));
      },
      {a});
}

TEST(Autograd, ColnormGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(6, 3, 13), true, "a");
  // The plain sum of a standardized column is ~0 with ~0 gradient, so weight
  // the output elementwise (relu keeps roughly half the entries) to make the
  // check non-vacuous.
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return reduce_sum(ctx, vrelu(ctx, vcolnorm(ctx, in[0])));
      },
      {a}, 1e-2f, 5e-2f);
}

TEST(Autograd, ColnormStandardizes) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(64, 4, 15), true, "a");
  const VarPtr out = vcolnorm(ctx, a);
  for (std::int64_t j = 0; j < 4; ++j) {
    double mu = 0, var = 0;
    for (std::int64_t i = 0; i < 64; ++i) mu += out->value.at(i, j);
    mu /= 64;
    for (std::int64_t i = 0; i < 64; ++i) {
      var += (out->value.at(i, j) - mu) * (out->value.at(i, j) - mu);
    }
    var /= 64;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Autograd, LogSoftmaxNllGradcheck) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(5, 4, 9), true, "a");
  const std::vector<int> labels = {0, 2, -1, 3, 1};
  gradcheck(
      [&](const std::vector<VarPtr>& in) {
        return vnll_loss(ctx, vlog_softmax(ctx, in[0]), labels);
      },
      {a});
}

TEST(Autograd, DropoutIsMaskedIdentityInGradient) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(8, 8, 10), true, "a");
  const VarPtr out = vdropout(ctx, a, 0.5f, 42);
  const VarPtr s = reduce_sum(ctx, out);
  backward(s);
  // Gradient equals the mask scale where kept, 0 where dropped.
  int kept = 0, dropped = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (out->value[i] == 0.0f && a->value[i] != 0.0f) {
      EXPECT_FLOAT_EQ(a->grad[i], 0.0f);
      ++dropped;
    } else if (a->value[i] != 0.0f) {
      EXPECT_NEAR(a->grad[i], 2.0f, 1e-5f);
      ++kept;
    }
  }
  EXPECT_GT(kept, 10);
  EXPECT_GT(dropped, 10);
}

TEST(Autograd, EvalModeDisablesDropout) {
  auto ctx = ctx_no_ledger();
  ctx.training = false;
  auto a = make_var(random_tensor(4, 4, 11), true, "a");
  const VarPtr out = vdropout(ctx, a, 0.9f, 1);
  EXPECT_EQ(out.get(), a.get());
}

TEST(Autograd, AccuracyComputation) {
  Tensor logits = Tensor::from(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {-1, 1, -1}), 1.0);
}

TEST(Autograd, GradAccumulatesAcrossUses) {
  auto ctx = ctx_no_ledger();
  auto a = make_var(random_tensor(2, 2, 12), true, "a");
  const VarPtr s = reduce_sum(ctx, vadd(ctx, a, a));
  backward(s);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(a->grad[i], 2.0f, 1e-5f);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  // minimize ||x - t||^2 via autograd-free manual grads.
  auto x = make_var(Tensor(1, 4), true, "x");
  const float target[4] = {1.0f, -2.0f, 3.0f, 0.5f};
  Adam opt({x}, 0.1f);
  for (int it = 0; it < 300; ++it) {
    opt.zero_grad();
    for (int i = 0; i < 4; ++i) {
      x->grad[std::size_t(i)] = 2.0f * (x->value[std::size_t(i)] - target[i]);
    }
    opt.step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value[std::size_t(i)], target[i], 1e-2f);
  }
}

TEST(Optim, SgdStepsDownhill) {
  auto x = make_var(Tensor(1, 1), true, "x");
  x->value[0] = 4.0f;
  Sgd opt({x}, 0.25f);
  for (int it = 0; it < 60; ++it) {
    opt.zero_grad();
    x->grad[0] = 2.0f * x->value[0];
    opt.step();
  }
  EXPECT_NEAR(x->value[0], 0.0f, 1e-3f);
}

TEST(Ledger, EntriesKeepFirstInsertionOrder) {
  // Regression: lookups moved to an index map; entries() must still report
  // tags in first-insertion order (reports and figure breakdowns rely on it).
  CycleLedger ledger;
  ledger.add("spmm", 10);
  ledger.add("dense", 5);
  ledger.add("sddmm", 2);
  ledger.add("spmm", 30);
  ledger.add("dense", 1);
  ASSERT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].first, "spmm");
  EXPECT_EQ(ledger.entries()[0].second, 40u);
  EXPECT_EQ(ledger.entries()[1].first, "dense");
  EXPECT_EQ(ledger.entries()[1].second, 6u);
  EXPECT_EQ(ledger.entries()[2].first, "sddmm");
  EXPECT_EQ(ledger.entries()[2].second, 2u);
  EXPECT_EQ(ledger.total(), 48u);
  EXPECT_EQ(ledger.by_tag("spmm"), 40u);
  EXPECT_EQ(ledger.by_tag("absent"), 0u);
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_TRUE(ledger.entries().empty());
  // After reset the index must be rebuilt, not stale.
  ledger.add("dense", 7);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].first, "dense");
  EXPECT_EQ(ledger.by_tag("dense"), 7u);
}

TEST(Ledger, ManyTagsStayConsistent) {
  CycleLedger ledger;
  for (int round = 0; round < 3; ++round) {
    for (int t = 0; t < 200; ++t) {
      ledger.add("tag" + std::to_string(t), std::uint64_t(t) + 1);
    }
  }
  ASSERT_EQ(ledger.entries().size(), 200u);
  for (int t = 0; t < 200; ++t) {
    EXPECT_EQ(ledger.entries()[std::size_t(t)].first,
              "tag" + std::to_string(t));
    EXPECT_EQ(ledger.by_tag("tag" + std::to_string(t)),
              3u * (std::uint64_t(t) + 1));
  }
}

TEST(MemoryLedger, TracksBytesByTag) {
  MemoryLedger bytes;
  bytes.add("feature_cache_hit", 4096);
  bytes.add("feature_cache_miss", 128);
  bytes.add("feature_cache_hit", 4096);
  EXPECT_EQ(bytes.total(), 8320u);
  EXPECT_EQ(bytes.by_tag("feature_cache_hit"), 8192u);
  EXPECT_EQ(bytes.entries()[0].first, "feature_cache_hit");
}

TEST(DenseCost, RoundsPartialCyclesUp) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  // A tiny op whose roofline bound is < 1 cycle must still cost at least one
  // cycle beyond the launch overhead — truncation made it exactly
  // launch_overhead.
  const std::uint64_t tiny = dense_op_cycles(dev, 1.0, 8.0);
  EXPECT_EQ(tiny, 2001u);
  // 1e-9 flops/bytes is still "some work": never free.
  EXPECT_GT(dense_op_cycles(dev, 1e-9, 0.0), 2000u);
  // Zero work costs exactly the launch overhead.
  EXPECT_EQ(dense_op_cycles(dev, 0.0, 0.0), 2000u);
  // An exact integer bound is not inflated: bytes = 2048 at 1024 B/cycle is
  // exactly 2 cycles.
  EXPECT_EQ(dense_op_cycles(dev, 0.0, 2048.0), 2002u);
  // A fractional bound rounds up, not down: 2049 bytes -> 3 cycles.
  EXPECT_EQ(dense_op_cycles(dev, 0.0, 2049.0), 2003u);
}

TEST(Ledger, ChargesAccumulateByTag) {
  CycleLedger ledger;
  OpContext ctx;
  ctx.dev = &gpusim::default_device();
  ctx.ledger = &ledger;
  auto a = make_var(random_tensor(8, 8, 1), true);
  auto b = make_var(random_tensor(8, 8, 2), true);
  (void)vmatmul(ctx, a, b);
  EXPECT_GT(ledger.by_tag("dense"), 0u);
  EXPECT_EQ(ledger.by_tag("spmm"), 0u);
  EXPECT_EQ(ledger.total(), ledger.by_tag("dense"));
}

}  // namespace
}  // namespace gnnone
