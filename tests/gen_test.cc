// Unit and property tests for workload generators and the dataset suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>

#include "gen/datasets.h"
#include "gen/grid.h"
#include "gen/random.h"
#include "gen/requests.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "graph/convert.h"
#include "util/json.h"

namespace gnnone {
namespace {

double degree_cv(const Coo& coo) {
  const auto len = row_lengths(coo);
  double mean = 0;
  for (vid_t d : len) mean += d;
  mean /= double(len.size());
  double var = 0;
  for (vid_t d : len) var += (d - mean) * (d - mean);
  var /= double(len.size());
  return std::sqrt(var) / mean;
}

bool is_symmetric(const Coo& coo) {
  std::vector<std::pair<vid_t, vid_t>> entries;
  entries.reserve(coo.row.size());
  for (std::size_t i = 0; i < coo.row.size(); ++i) {
    entries.emplace_back(coo.row[i], coo.col[i]);
  }
  for (const auto& [r, c] : entries) {
    if (!std::binary_search(entries.begin(), entries.end(),
                            std::make_pair(c, r))) {
      return false;
    }
  }
  return true;
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  double mean = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += r.uniform_real();
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, UniformIsUnbiasedForNonPowerOfTwoN) {
  // Regression for the `next_u64() % n` draw: modulo leaves the first
  // 2^64 mod n values over-represented. Lemire's multiply-shift rejection is
  // exactly uniform; check each bucket of a non-power-of-two n against the
  // expected count (the old draw fails far looser bounds only at
  // astronomical sample counts, so additionally pin bit-exact golden draws
  // below).
  Rng r(11);
  const std::uint64_t n = 48611;  // prime, far from a power of two
  const int draws = 200000;
  std::vector<int> low_bucket(16, 0);
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = r.uniform(n);
    ASSERT_LT(v, n);
    // Bucket the low range where modulo bias concentrates.
    low_bucket[std::size_t(v % 16)]++;
  }
  const double expect = draws / 16.0;
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(low_bucket[std::size_t(b)], expect, 5.0 * std::sqrt(expect))
        << "bucket " << b;
  }
}

TEST(Rng, UniformGoldenDraws) {
  // The sampler's cross-platform determinism guarantee ("same seed =>
  // byte-identical subgraphs") rests on uniform() being a fixed integer
  // function of the splitmix64 stream. Pin the first draws for a few n.
  Rng r(42);
  const std::uint64_t got[6] = {r.uniform(10), r.uniform(10), r.uniform(7),
                                r.uniform(1000000007), r.uniform(3),
                                r.uniform(1)};
  const std::uint64_t want[6] = {1, 2, 2, 38030168, 2, 0};
  for (int i = 0; i < 6; ++i) EXPECT_EQ(got[i], want[i]) << "draw " << i;
  // n == 1 and n == 0 never consume entropy beyond the single draw and
  // always return 0.
  EXPECT_EQ(Rng(7).uniform(1), 0u);
  EXPECT_EQ(Rng(7).uniform(0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(3);
  double mean = 0, var = 0;
  const int n = 20000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = r.normal();
  for (double x : xs) mean += x;
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rmat, DeterministicSkewedAndSymmetric) {
  RmatParams p;
  p.scale = 10;
  const Coo a = rmat_graph(p);
  const Coo b = rmat_graph(p);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
  validate(a);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_GT(degree_cv(a), 1.0);  // Kronecker graphs are heavily skewed
}

TEST(ErdosRenyi, NearUniformDegrees) {
  const Coo g = erdos_renyi(4096, 4096 * 8, 5);
  validate(g);
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_LT(degree_cv(g), 0.5);
}

TEST(PowerLaw, HeavyTail) {
  PowerLawParams p;
  p.n = 8192;
  p.avg_degree = 12;
  p.exponent = 2.0;
  const Coo g = power_law(p);
  validate(g);
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_GT(degree_cv(g), 1.5);
  // Hubs reach the realistic cap region (~3% of n), far above the mean.
  const auto len = row_lengths(g);
  EXPECT_GT(*std::max_element(len.begin(), len.end()), 15 * 12);
}

TEST(Grid, UniformDegreeFour) {
  const Coo g = grid_graph(32);
  validate(g);
  EXPECT_EQ(g.num_rows, 1024);
  const auto len = row_lengths(g);
  // Interior vertices have degree 4; borders 2-3.
  EXPECT_EQ(len[std::size_t(17 * 32 + 17)], 4);
  EXPECT_EQ(len[0], 2);
  EXPECT_LT(degree_cv(g), 0.2);
}

TEST(PlantedPartition, LabelsMatchCommunitiesAndEdgesMostlyIntra) {
  const auto pp = planted_partition(3000, 6, 10.0, 0.8, 9);
  validate(pp.graph);
  ASSERT_EQ(pp.labels.size(), 3000u);
  eid_t intra = 0;
  for (std::size_t i = 0; i < pp.graph.row.size(); ++i) {
    if (pp.labels[std::size_t(pp.graph.row[i])] ==
        pp.labels[std::size_t(pp.graph.col[i])]) {
      ++intra;
    }
  }
  EXPECT_GT(double(intra) / double(pp.graph.nnz()), 0.6);
}

TEST(Datasets, SuiteGeneratesWithTableProperties) {
  for (const auto& id : {"G0", "G5", "G10", "G14"}) {
    const Dataset d = make_dataset(id);
    validate(d.coo);
    EXPECT_GT(d.coo.nnz(), 0);
    EXPECT_GT(d.paper_edges, d.coo.nnz());  // everything is scaled down
    if (d.labeled) {
      EXPECT_EQ(d.labels.size(), std::size_t(d.coo.num_rows));
      for (int l : d.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, d.num_classes);
      }
    }
  }
}

TEST(Datasets, UnknownIdThrows) {
  EXPECT_THROW(make_dataset("G99"), std::invalid_argument);
}

TEST(Datasets, SkewOrdering) {
  // The road-network stand-in must be far more uniform than the social ones.
  const Dataset road = make_dataset("G5");
  const Dataset talk = make_dataset("G4");
  EXPECT_LT(degree_cv(road.coo), 0.3);
  EXPECT_GT(degree_cv(talk.coo), 1.5);
}

TEST(Datasets, FeaturesCarryLabelSignal) {
  const Dataset d = make_dataset("G0");
  const auto x = make_features(d.coo.num_rows, 64, d.labels, 1);
  ASSERT_EQ(x.size(), std::size_t(d.coo.num_rows) * 64);
  // Mean feature vector of class 0 differs from class 1 on class-0's block.
  std::vector<double> m0(64, 0), m1(64, 0);
  int n0 = 0, n1 = 0;
  for (vid_t v = 0; v < d.coo.num_rows; ++v) {
    auto* m = d.labels[std::size_t(v)] == 0 ? &m0 :
              d.labels[std::size_t(v)] == 1 ? &m1 : nullptr;
    if (m == nullptr) continue;
    (d.labels[std::size_t(v)] == 0 ? n0 : n1)++;
    for (int j = 0; j < 64; ++j) (*m)[std::size_t(j)] += x[std::size_t(v) * 64 + std::size_t(j)];
  }
  double max_gap = 0;
  for (int j = 0; j < 64; ++j) {
    max_gap = std::max(max_gap, std::abs(m0[std::size_t(j)] / n0 - m1[std::size_t(j)] / n1));
  }
  EXPECT_GT(max_gap, 0.5);
}

TEST(Datasets, KernelSuiteScalesAreTractable) {
  for (const auto& id : kernel_suite_ids()) {
    const Dataset d = make_dataset(id);
    EXPECT_LE(d.coo.nnz(), 600000) << id;
    EXPECT_GE(d.coo.nnz(), 5000) << id;
  }
}

// --- request traces: validation boundaries ----------------------------------

TEST(RequestTrace, ValidationRejectsOutOfRangeOptions) {
  const Dataset ds = make_dataset("G0");
  RequestTraceOptions o;
  o.num_requests = -1;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.min_seeds = 0;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.min_seeds = 5;
  o.max_seeds = 2;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.hot_fraction = 1.0001;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.hot_fraction = -0.1;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.hot_set_fraction = 0.0;  // a hot set must contain something
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);
  o = {};
  o.hot_set_fraction = 1.5;
  EXPECT_THROW(make_request_trace(ds.coo, o), std::invalid_argument);

  // Valid boundary values go through: hot_fraction at both ends, the whole
  // graph as hot set, zero requests.
  o = {};
  o.num_requests = 0;
  EXPECT_TRUE(make_request_trace(ds.coo, o).empty());
  o = {};
  o.num_requests = 4;
  o.hot_fraction = 1.0;
  o.hot_set_fraction = 1.0;
  EXPECT_EQ(make_request_trace(ds.coo, o).size(), 4u);
}

// --- open-loop arrivals -----------------------------------------------------

TEST(Arrivals, DeterministicMonotoneAndStreamIndependent) {
  ArrivalOptions o;
  o.mean_interarrival_cycles = 1000.0;
  o.seed = 7;
  const auto a = make_arrivals(256, o, 0);
  const auto b = make_arrivals(256, o, 0);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 256u);
  EXPECT_GT(a.front(), 0u);  // arrivals start after cycle 0
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]) << i;  // whole-cycle interarrivals >= 1
  }
  // Derived streams are independent sequences, and a prefix of a longer
  // draw equals the shorter draw (one-pass generation).
  const auto c = make_arrivals(256, o, 1);
  EXPECT_NE(a, c);
  const auto longer = make_arrivals(300, o, 0);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), longer.begin()));
  EXPECT_TRUE(make_arrivals(0, o).empty());
}

TEST(Arrivals, PoissonMeanRoughlyMatches) {
  ArrivalOptions o;
  o.mean_interarrival_cycles = 1000.0;
  o.seed = 3;
  const int n = 4000;
  const auto a = make_arrivals(n, o);
  const double mean = double(a.back()) / double(n);
  EXPECT_NEAR(mean, 1000.0, 100.0);
}

TEST(Arrivals, BurstyPreservesTheMeanAndActuallyBursts) {
  ArrivalOptions o;
  o.process = ArrivalProcess::kBursty;
  o.mean_interarrival_cycles = 1000.0;
  o.burst_multiplier = 4.0;
  o.burst_fraction = 0.2;
  o.period_cycles = 100000;
  o.seed = 3;
  const int n = 8000;
  const auto a = make_arrivals(n, o);
  const double mean = double(a.back()) / double(n);
  EXPECT_NEAR(mean, 1000.0, 150.0);  // long-run rate preserved

  // Burst phases are denser than floor phases: count arrivals by phase.
  std::uint64_t in_burst = 0, in_floor = 0;
  const auto burst_cycles = std::uint64_t(o.burst_fraction * 100000);
  for (std::uint64_t t : a) {
    (t % o.period_cycles < burst_cycles ? in_burst : in_floor) += 1;
  }
  // 20% of the time carries ~4x the rate => ~80% of the mass would be 4:1
  // per unit time; require at least 2x density to keep the bound robust.
  const double burst_density = double(in_burst) / (0.2 * double(a.back()));
  const double floor_density = double(in_floor) / (0.8 * double(a.back()));
  EXPECT_GT(burst_density, 2.0 * floor_density);
}

TEST(Arrivals, ValidationRejectsDegenerateProcesses) {
  ArrivalOptions o;
  o.mean_interarrival_cycles = 0.0;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
  o = {};
  EXPECT_THROW(make_arrivals(-1, o), std::invalid_argument);
  o = {};
  o.process = ArrivalProcess::kBursty;
  o.burst_multiplier = 0.5;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
  o = {};
  o.process = ArrivalProcess::kBursty;
  o.burst_fraction = 0.0;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
  o = {};
  o.process = ArrivalProcess::kBursty;
  o.burst_fraction = 1.0;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
  o = {};
  o.process = ArrivalProcess::kBursty;
  o.period_cycles = 0;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
  // The floor phase would need a negative rate to preserve the mean.
  o = {};
  o.process = ArrivalProcess::kBursty;
  o.burst_multiplier = 4.0;
  o.burst_fraction = 0.3;
  EXPECT_THROW(make_arrivals(4, o), std::invalid_argument);
}

TEST(OpenLoopTrace, MergesTenantsInArrivalOrder) {
  const Dataset ds = make_dataset("G0");
  TenantWorkload w0;
  w0.requests.num_requests = 20;
  w0.requests.seed = 4;
  w0.arrivals.mean_interarrival_cycles = 500.0;
  w0.arrivals.seed = 9;
  TenantWorkload w1 = w0;
  w1.requests.num_requests = 15;
  w1.requests.seed = 5;
  w1.arrivals.process = ArrivalProcess::kBursty;
  w1.arrivals.burst_fraction = 0.2;
  w1.arrivals.period_cycles = 20000;
  const auto trace = make_open_loop_trace(ds.coo, {w0, w1});
  ASSERT_EQ(trace.size(), 35u);
  int counts[2] = {0, 0};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(trace[i].tenant == 0 || trace[i].tenant == 1);
    counts[trace[i].tenant]++;
    if (i > 0) {
      EXPECT_GE(trace[i].arrival_cycle, trace[i - 1].arrival_cycle) << i;
    }
    EXPECT_FALSE(trace[i].seeds.empty());
  }
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 15);
  // Deterministic end to end.
  const auto again = make_open_loop_trace(ds.coo, {w0, w1});
  ASSERT_EQ(again.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seeds, again[i].seeds);
    EXPECT_EQ(trace[i].tenant, again[i].tenant);
    EXPECT_EQ(trace[i].arrival_cycle, again[i].arrival_cycle);
  }
  EXPECT_THROW(make_open_loop_trace(ds.coo, {}), std::invalid_argument);
}

// --- trace persistence ------------------------------------------------------

namespace {
void spit(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
}
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

TEST(TraceJson, RoundTripsByteIdentically) {
  const Dataset ds = make_dataset("G0");
  TenantWorkload w;
  w.requests.num_requests = 12;
  w.requests.seed = 8;
  w.arrivals.mean_interarrival_cycles = 2000.0;
  const auto trace = make_open_loop_trace(ds.coo, {w, w});

  const std::string dumped = trace_to_json(trace).dump();
  const auto back = trace_from_json(util::Json::parse(dumped));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].seeds, trace[i].seeds);
    EXPECT_EQ(back[i].tenant, trace[i].tenant);
    EXPECT_EQ(back[i].arrival_cycle, trace[i].arrival_cycle);
  }
  // save -> load -> save produces identical bytes (versioned,
  // insertion-ordered document).
  EXPECT_EQ(trace_to_json(back).dump(), dumped);
}

TEST(TraceJson, SaveLoadRoundTripAndFailSoft) {
  const Dataset ds = make_dataset("G0");
  TenantWorkload w;
  w.requests.num_requests = 6;
  w.requests.seed = 2;
  const auto trace = make_open_loop_trace(ds.coo, {w});
  const std::string path = ::testing::TempDir() + "/request_trace_ok.json";
  ASSERT_TRUE(save_trace(path, trace));

  std::string warning = "stale";
  const auto loaded = load_trace_or_empty(path, &warning);
  EXPECT_TRUE(warning.empty()) << warning;
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].seeds, trace[i].seeds);
  }

  // Missing file: silent cold start.
  warning = "stale";
  EXPECT_TRUE(
      load_trace_or_empty(::testing::TempDir() + "/no_such_trace.json",
                          &warning)
          .empty());
  EXPECT_TRUE(warning.empty());

  // Truncation and garbage degrade to empty with a warning.
  const std::string good = slurp(path);
  const std::string bad = ::testing::TempDir() + "/request_trace_bad.json";
  spit(bad, good.substr(0, good.size() / 2));
  EXPECT_TRUE(load_trace_or_empty(bad, &warning).empty());
  EXPECT_NE(warning.find("ignored"), std::string::npos) << warning;
  spit(bad, "\xff\xfe not json");
  EXPECT_TRUE(load_trace_or_empty(bad, &warning).empty());
  EXPECT_FALSE(warning.empty());

  // Version and schema mismatches fail soft the same way.
  util::Json future = trace_to_json(trace);
  future.set("version", kTraceSchemaVersion + 1);
  spit(bad, future.dump());
  EXPECT_TRUE(load_trace_or_empty(bad, &warning).empty());
  EXPECT_NE(warning.find("version"), std::string::npos) << warning;
  util::Json alien = trace_to_json(trace);
  alien.set("schema", "something-else");
  spit(bad, alien.dump());
  EXPECT_TRUE(load_trace_or_empty(bad, &warning).empty());
  EXPECT_FALSE(warning.empty());

  // The strict parser throws where the loader degrades.
  EXPECT_THROW(trace_from_json(future), std::invalid_argument);
}

}  // namespace
}  // namespace gnnone
