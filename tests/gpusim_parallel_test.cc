// Parallel-vs-serial bit identity for the gpusim functional pass.
//
// launch() may execute independent CTAs on a host thread pool
// (gpusim::set_host_threads / GNNONE_HOST_THREADS / LaunchConfig::
// host_threads); the contract is that every observable output — kernel
// results, KernelStats, sanitizer reports, serving ledgers, fault-injection
// ordering — is bit-identical to serial execution at every thread count.
// These tests sweep 1/2/4/8 host threads over every layer of the stack that
// launches kernels and compare against the serial run bit for bit.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gnn/train.h"
#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/memory.h"
#include "gpusim/sanitizer.h"
#include "graph/convert.h"
#include "graph/neighbor_group.h"
#include "serve/server.h"
#include "tune/search_space.h"

namespace gnnone {
namespace {

using gpusim::CommitLog;
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::LaunchConfig;
using gpusim::Sanitizer;
using gpusim::SanitizerOptions;
using gpusim::ViolationKind;
using gpusim::WarpCtx;

const int kThreadSweep[] = {1, 2, 4, 8};

/// Runs `body` with the process-wide thread default forced to `t`, restoring
/// the env/hardware default afterwards even on assertion failure.
template <typename Fn>
auto at_threads(int t, Fn&& body) {
  gpusim::set_host_threads(t);
  struct Restore {
    ~Restore() { gpusim::set_host_threads(0); }
  } restore;
  return body();
}

void expect_stats_equal(const gpusim::KernelStats& a,
                        const gpusim::KernelStats& b, const char* what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.dram_bandwidth_bound, b.dram_bandwidth_bound) << what;
  EXPECT_EQ(a.num_ctas, b.num_ctas) << what;
  EXPECT_EQ(a.num_warps, b.num_warps) << what;
  EXPECT_EQ(a.resident_ctas_per_sm, b.resident_ctas_per_sm) << what;
  const gpusim::WarpStats& x = a.totals;
  const gpusim::WarpStats& y = b.totals;
  EXPECT_EQ(x.issue_cycles, y.issue_cycles) << what;
  EXPECT_EQ(x.stall_cycles, y.stall_cycles) << what;
  EXPECT_EQ(x.global_load_instrs, y.global_load_instrs) << what;
  EXPECT_EQ(x.global_store_instrs, y.global_store_instrs) << what;
  EXPECT_EQ(x.load_transactions, y.load_transactions) << what;
  EXPECT_EQ(x.store_transactions, y.store_transactions) << what;
  EXPECT_EQ(x.bytes_loaded, y.bytes_loaded) << what;
  EXPECT_EQ(x.bytes_stored, y.bytes_stored) << what;
  EXPECT_EQ(x.shared_ops, y.shared_ops) << what;
  EXPECT_EQ(x.shuffles, y.shuffles) << what;
  EXPECT_EQ(x.barriers, y.barriers) << what;
  EXPECT_EQ(x.atomic_instrs, y.atomic_instrs) << what;
  EXPECT_EQ(x.atomic_serializations, y.atomic_serializations) << what;
  EXPECT_EQ(x.alu_instrs, y.alu_instrs) << what;
  EXPECT_EQ(x.load_issue_cycles, y.load_issue_cycles) << what;
  EXPECT_EQ(x.load_stall_cycles, y.load_stall_cycles) << what;
  EXPECT_EQ(x.store_issue_cycles, y.store_issue_cycles) << what;
  EXPECT_EQ(x.atomic_issue_cycles, y.atomic_issue_cycles) << what;
}

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Arbitrary (non-integer) floats: float accumulation is order-sensitive, so
/// bitwise equality across thread counts proves the commit order itself is
/// preserved, not merely the set of contributions.
std::vector<float> noisy_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.uniform_real()) * 2.0f - 1.0f;
  return v;
}

// --- every kernel family in the tune search space ---------------------------

struct FamilyRun {
  std::vector<float> out;
  gpusim::KernelStats ks;
};

FamilyRun run_family(const Coo& coo, const Csr& csr, const NeighborGroups& ng,
                     tune::TuneOp op, tune::KernelFamily fam, int f) {
  const std::size_t rows = std::size_t(coo.num_rows);
  const std::size_t cols = std::size_t(coo.num_cols);
  const std::vector<float> edge_val = noisy_vec(std::size_t(coo.nnz()), 11);
  const std::vector<float> x = noisy_vec(std::max(rows, cols) * std::size_t(f), 12);
  const std::vector<float> y = noisy_vec(cols * std::size_t(f), 13);
  FamilyRun r;
  const std::size_t out_elems = op == tune::TuneOp::kSpmm ? rows * std::size_t(f)
                                : op == tune::TuneOp::kSddmm
                                    ? std::size_t(coo.nnz())
                                    : rows;
  r.out.assign(out_elems, 0.0f);
  r.ks = tune::run_candidate(gpusim::default_device(),
                             tune::family_default(op, fam), op,
                             tune::OpInputs{&coo, &csr, &ng}, edge_val, x, y, f,
                             r.out);
  return r;
}

TEST(ParallelBitIdentity, EveryKernelFamilyAtEveryThreadCount) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  const Coo coo = rmat_graph(p);
  const Csr csr = coo_to_csr(coo);
  const NeighborGroups ng = build_neighbor_groups(csr);
  for (tune::TuneOp op :
       {tune::TuneOp::kSpmm, tune::TuneOp::kSddmm, tune::TuneOp::kSpmv}) {
    for (tune::KernelFamily fam : tune::families(op)) {
      const std::string what = std::string(tune::op_name(op)) + "/" +
                               tune::family_name(fam);
      const FamilyRun serial = at_threads(
          1, [&] { return run_family(coo, csr, ng, op, fam, 32); });
      for (int t : kThreadSweep) {
        const FamilyRun par = at_threads(
            t, [&] { return run_family(coo, csr, ng, op, fam, 32); });
        EXPECT_TRUE(bits_equal(par.out, serial.out))
            << what << " at " << t << " threads";
        expect_stats_equal(par.ks, serial.ks, what.c_str());
      }
    }
  }
}

TEST(ParallelBitIdentity, LaunchLevelOverrideBeatsProcessDefault) {
  // cfg.host_threads takes precedence over set_host_threads(); both paths
  // must agree bit for bit.
  std::vector<float> acc_serial(64, 0.0f), acc_override(64, 0.0f);
  auto body = [](std::vector<float>& acc) {
    return [&acc](WarpCtx& w) {
      LaneArray<std::int64_t> idx{};
      LaneArray<float> val{};
      for (int l = 0; l < kWarpSize; ++l) {
        idx[l] = (w.cta_id() + l) % 64;
        val[l] = float(l) * 0.1f + float(w.cta_id()) * 0.01f;
      }
      w.atomic_add(acc.data(), idx, val);
    };
  };
  LaunchConfig lc;
  lc.num_ctas = 96;
  lc.warps_per_cta = 2;
  at_threads(1, [&] {
    return gpusim::launch(gpusim::default_device(), lc, body(acc_serial));
  });
  lc.host_threads = 8;
  at_threads(1, [&] {
    return gpusim::launch(gpusim::default_device(), lc, body(acc_override));
  });
  EXPECT_TRUE(bits_equal(acc_override, acc_serial));
}

// --- training ---------------------------------------------------------------

TEST(ParallelBitIdentity, TrainingRunsAreIdentical) {
  const Dataset ds = make_dataset("G0");
  TrainOptions opts;
  opts.epochs = 2;
  opts.measured_epochs = 1;
  opts.feature_dim_override = 8;
  auto run = [&] { return train_model(Backend::kGnnOne, ds, "gcn",
                                      gpusim::default_device(), opts); };
  const TrainResult serial = at_threads(1, run);
  ASSERT_TRUE(serial.ran) << serial.fail_reason;
  for (int t : kThreadSweep) {
    const TrainResult par = at_threads(t, run);
    EXPECT_EQ(par.ran, serial.ran) << t;
    EXPECT_EQ(par.fail_reason, serial.fail_reason) << t;
    EXPECT_EQ(par.total_cycles, serial.total_cycles) << t;
    ASSERT_EQ(par.accuracy_curve.size(), serial.accuracy_curve.size()) << t;
    for (std::size_t i = 0; i < serial.accuracy_curve.size(); ++i) {
      EXPECT_EQ(par.accuracy_curve[i], serial.accuracy_curve[i])
          << t << " epoch " << i;
    }
  }
}

// --- serving: serial, pipelined, and the chaos ladder ------------------------

ServeOptions serve_opts(bool pipeline, bool chaos) {
  ServeOptions o;
  o.model_kind = "gcn";
  o.batch_size = 4;
  o.fanouts = {6, 3};
  o.cache_alpha = 0.1;
  o.feature_dim_override = 16;
  o.backend = Backend::kAuto;
  o.seed = 3;
  o.pipeline = pipeline;
  if (chaos) {
    o.chaos.oom_rate = 0.2;
    o.chaos.fetch_rate = 0.15;
    o.chaos.kernel_rate = 0.1;
    o.chaos.seed = 5;
  }
  return o;
}

void expect_reports_equal(const ServingReport& a, const ServingReport& b,
                          const char* what) {
  EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
  EXPECT_EQ(a.serial_cycles, b.serial_cycles) << what;
  EXPECT_EQ(a.ledger.total(), b.ledger.total()) << what;
  ASSERT_EQ(a.predictions.size(), b.predictions.size()) << what;
  for (std::size_t r = 0; r < a.predictions.size(); ++r) {
    EXPECT_EQ(a.predictions[r], b.predictions[r]) << what << " request " << r;
  }
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (std::size_t r = 0; r < a.outcomes.size(); ++r) {
    EXPECT_EQ(a.outcomes[r].status, b.outcomes[r].status)
        << what << " request " << r;
    EXPECT_EQ(a.outcomes[r].error, b.outcomes[r].error)
        << what << " request " << r;
  }
}

TEST(ParallelBitIdentity, ServingModesAreIdentical) {
  const Dataset ds = make_dataset("G4");
  RequestTraceOptions ro;
  ro.num_requests = 12;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.5;
  ro.seed = 21;
  const std::vector<SeedRequest> reqs = make_request_trace(ds.coo, ro);
  struct Mode {
    const char* name;
    bool pipeline;
    bool chaos;
  };
  for (const Mode m : {Mode{"serial", false, false},
                       Mode{"pipelined", true, false},
                       Mode{"chaos", false, true}}) {
    auto run = [&] {
      return InferenceServer(ds, gpusim::default_device(),
                             serve_opts(m.pipeline, m.chaos))
          .serve(reqs);
    };
    const ServingReport serial = at_threads(1, run);
    for (int t : kThreadSweep) {
      const ServingReport par = at_threads(t, run);
      expect_reports_equal(par, serial, m.name);
    }
  }
}

// --- sanitizer reports -------------------------------------------------------

/// Cross-warp race kernel at many CTAs. Worker-thread-local span: warps of
/// one CTA always run on the same host thread, so the span warp 0 allocates
/// is the one warp 1 of the *same* CTA reads.
gpusim::KernelFn racy_kernel() {
  static thread_local std::span<float> stage;
  return [](WarpCtx& w) {
    LaneArray<int> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
    if (w.warp_in_cta() == 0) {
      stage = w.shared().alloc<float>(kWarpSize);
      LaneArray<float> vals{};
      w.sh_write(stage, idx, vals);
    } else {
      (void)w.sh_read(std::span<const float>(stage), idx);  // no barrier
    }
  };
}

TEST(ParallelBitIdentity, SanitizerReportsAreIdentical) {
  LaunchConfig lc;
  lc.num_ctas = 8;  // 8 * 32 races = 256 pending, 4x the 64-record cap
  lc.warps_per_cta = 2;
  lc.shared_bytes_per_cta = 4096;
  lc.label = "racy";
  auto run = [&] {
    Sanitizer san;
    const auto ks = gpusim::launch(gpusim::default_device(), lc, racy_kernel());
    struct Out {
      std::vector<gpusim::SanitizerViolation> violations;
      std::uint64_t races;
      gpusim::SanitizerCounters launch_counters;
    };
    return Out{san.report().violations(),
               san.report().count(ViolationKind::kSharedRace), ks.sanitizer};
  };
  const auto serial = at_threads(1, run);
  EXPECT_EQ(serial.races, 256u);
  EXPECT_EQ(serial.violations.size(), 64u);  // record cap
  for (int t : kThreadSweep) {
    const auto par = at_threads(t, run);
    EXPECT_EQ(par.races, serial.races) << t;
    EXPECT_EQ(par.launch_counters.shared_races,
              serial.launch_counters.shared_races) << t;
    ASSERT_EQ(par.violations.size(), serial.violations.size()) << t;
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      EXPECT_EQ(par.violations[i].kind, serial.violations[i].kind) << i;
      EXPECT_EQ(par.violations[i].cta, serial.violations[i].cta) << i;
      EXPECT_EQ(par.violations[i].warp, serial.violations[i].warp) << i;
      EXPECT_EQ(par.violations[i].lane, serial.violations[i].lane) << i;
      EXPECT_EQ(par.violations[i].detail, serial.violations[i].detail) << i;
    }
  }
}

TEST(ParallelBitIdentity, FatalSanitizerThrowsLowestCtaAtEveryThreadCount) {
  // Only CTA 5 violates; fatal mode must rethrow exactly that CTA's error
  // regardless of which worker hit it (or whether later chunks were
  // cancelled before running).
  LaunchConfig lc;
  lc.num_ctas = 32;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = 4096;
  lc.label = "one_bad_cta";
  auto kernel = [](WarpCtx& w) {
    auto stage = w.shared().alloc<float>(kWarpSize);
    LaneArray<int> idx{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = w.cta_id() == 5 ? l + 17 : l;  // CTA 5 runs off the end
    }
    LaneArray<float> vals{};
    w.sh_write(stage, idx, vals);
  };
  auto run = [&] {
    Sanitizer san({.max_recorded = 64, .fatal = true});
    std::string message;
    try {
      gpusim::launch(gpusim::default_device(), lc, kernel);
    } catch (const gpusim::SanitizerError& e) {
      message = e.what();
    }
    return message;
  };
  const std::string serial = at_threads(1, run);
  ASSERT_NE(serial.find("cta 5"), std::string::npos) << serial;
  for (int t : kThreadSweep) {
    EXPECT_EQ(at_threads(t, run), serial) << t << " threads";
  }
}

// --- the shared-uninit-read detector and arena poisoning --------------------

TEST(SimsanUninit, ReadBeforeAnyWriteIsReported) {
  LaunchConfig lc;
  lc.num_ctas = 1;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = 4096;
  lc.label = "uninit_reader";
  Sanitizer san;
  gpusim::launch(gpusim::default_device(), lc, [](WarpCtx& w) {
    auto stage = w.shared().alloc<float>(kWarpSize);
    LaneArray<int> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
    (void)w.sh_read(std::span<const float>(stage), idx);
  });
  EXPECT_EQ(san.report().count(ViolationKind::kSharedUninitRead),
            std::uint64_t(kWarpSize));
  ASSERT_FALSE(san.report().violations().empty());
  EXPECT_EQ(san.report().violations()[0].kind,
            ViolationKind::kSharedUninitRead);
}

TEST(SimsanUninit, WriteThenReadIsClean) {
  LaunchConfig lc;
  lc.num_ctas = 4;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = 4096;
  Sanitizer san;
  gpusim::launch(gpusim::default_device(), lc, [](WarpCtx& w) {
    auto stage = w.shared().alloc<float>(kWarpSize);
    LaneArray<int> idx{};
    LaneArray<float> vals{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
    w.sh_write(stage, idx, vals);
    (void)w.sh_read(std::span<const float>(stage), idx);
  });
  EXPECT_TRUE(san.report().clean());
}

TEST(SimsanUninit, PoisonHidesPreviousCtaBytes) {
  // CTA 0 fills shared with 7.0f; CTA 1 reads without writing. Before the
  // poison fill, serial execution leaked CTA 0's bytes into CTA 1 —
  // plausible-looking data that parallel execution would turn
  // nondeterministic. Under an active sanitizer CTA 1 must see the poison
  // pattern, never 7.0f.
  LaunchConfig lc;
  lc.num_ctas = 2;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = 4096;
  std::vector<float> seen(kWarpSize, 0.0f);
  Sanitizer san;
  at_threads(1, [&] {
    return gpusim::launch(gpusim::default_device(), lc, [&](WarpCtx& w) {
      auto stage = w.shared().alloc<float>(kWarpSize);
      LaneArray<int> idx{};
      for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
      if (w.cta_id() == 0) {
        LaneArray<float> vals{};
        for (int l = 0; l < kWarpSize; ++l) vals[l] = 7.0f;
        w.sh_write(stage, idx, vals);
      } else {
        const auto got = w.sh_read(std::span<const float>(stage), idx);
        for (int l = 0; l < kWarpSize; ++l) seen[std::size_t(l)] = got[l];
      }
    });
  });
  EXPECT_EQ(san.report().count(ViolationKind::kSharedUninitRead),
            std::uint64_t(kWarpSize));
  for (float v : seen) EXPECT_NE(v, 7.0f);
}

// --- fault injection ordering ------------------------------------------------

TEST(ParallelBitIdentity, AllocationOrderIsThreadCountInvariant) {
  // Device allocations happen on the launch-driving thread, never inside
  // the parallel region, so the n-th-allocation fault must hit the same
  // site — same fail_reason, same allocation count — at every thread count.
  const Dataset ds = make_dataset("G0");
  TrainOptions opts;
  opts.epochs = 1;
  opts.measured_epochs = 1;
  opts.feature_dim_override = 8;
  opts.eval_accuracy = false;
  auto run_with_fault = [&](std::uint64_t n) {
    gpusim::DeviceMemory mem(gpusim::default_device().device_memory_bytes);
    mem.fail_at_allocation(n);
    opts.device_memory = &mem;
    const TrainResult r = train_model(Backend::kGnnOne, ds, "gcn",
                                      gpusim::default_device(), opts);
    opts.device_memory = nullptr;
    struct Out {
      bool ran;
      std::string fail_reason;
      std::uint64_t allocations;
    };
    return Out{r.ran, r.fail_reason, mem.allocation_count()};
  };
  const auto serial = at_threads(1, [&] { return run_with_fault(3); });
  EXPECT_FALSE(serial.ran);
  EXPECT_EQ(serial.fail_reason, "OOM");
  for (int t : kThreadSweep) {
    const auto par = at_threads(t, [&] { return run_with_fault(3); });
    EXPECT_EQ(par.ran, serial.ran) << t;
    EXPECT_EQ(par.fail_reason, serial.fail_reason) << t;
    EXPECT_EQ(par.allocations, serial.allocations) << t;
  }
}

}  // namespace
}  // namespace gnnone
