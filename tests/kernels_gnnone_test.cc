// Correctness of the GNNOne kernels against the CPU reference, across a
// parameterized sweep of graph families, feature lengths, and config knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/grid.h"
#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "kernels/gnnone.h"
#include "kernels/reference.h"

namespace gnnone {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

Coo make_graph(const std::string& family, int size_scale) {
  if (family == "rmat") {
    RmatParams p;
    p.scale = size_scale;
    p.edge_factor = 8;
    return rmat_graph(p);
  }
  if (family == "grid") return grid_graph(vid_t(1) << (size_scale / 2));
  if (family == "er") {
    return erdos_renyi(vid_t(1) << size_scale,
                       eid_t(4) << size_scale, /*seed=*/7);
  }
  PowerLawParams p;
  p.n = vid_t(1) << size_scale;
  p.avg_degree = 8;
  p.seed = 11;
  return power_law(p);
}

void expect_close(std::span<const float> got, std::span<const float> want,
                  float tol = 1e-3f) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol + 1e-4f * std::abs(want[i]))
        << "at index " << i;
  }
}

struct Case {
  std::string family;
  int scale;
  int f;
  GnnOneConfig cfg;
  std::string tag;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.family + "_s" + std::to_string(info.param.scale) + "_f" +
         std::to_string(info.param.f) + "_" + info.param.tag;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const std::string& fam : {"rmat", "grid", "er", "powerlaw"}) {
    for (int f : {1, 3, 6, 16, 32, 64, 128, 200}) {
      Case c;
      c.family = fam;
      c.scale = 8;
      c.f = f;
      c.tag = "default";
      cases.push_back(c);
    }
  }
  // Config sweeps on one graph family.
  for (int cache : {32, 64, 128, 256}) {
    Case c;
    c.family = "rmat";
    c.scale = 8;
    c.f = 32;
    c.cfg.cache_size = cache;
    c.tag = "cache" + std::to_string(cache);
    cases.push_back(c);
  }
  for (int vec : {1, 2, 4}) {
    Case c;
    c.family = "powerlaw";
    c.scale = 8;
    c.f = 32;
    c.cfg.vec_width = vec;
    c.tag = "vec" + std::to_string(vec);
    cases.push_back(c);
  }
  {
    Case c;
    c.family = "rmat";
    c.scale = 8;
    c.f = 32;
    c.cfg.policy = SchedulePolicy::kRoundRobin;
    c.tag = "roundrobin";
    cases.push_back(c);
  }
  {
    Case c;
    c.family = "rmat";
    c.scale = 8;
    c.f = 32;
    c.cfg.stage1_caching = false;
    c.tag = "nocache";
    cases.push_back(c);
  }
  {
    Case c;
    c.family = "rmat";
    c.scale = 8;
    c.f = 32;
    c.cfg.row_reuse = false;
    c.tag = "noreuse";
    cases.push_back(c);
  }
  {
    Case c;
    c.family = "grid";
    c.scale = 8;
    c.f = 16;
    c.cfg.unroll = 1;
    c.tag = "unroll1";
    cases.push_back(c);
  }
  return cases;
}

class GnnOneKernels : public testing::TestWithParam<Case> {};

TEST_P(GnnOneKernels, SpmmMatchesReference) {
  const Case& c = GetParam();
  const Coo coo = make_graph(c.family, c.scale);
  const auto ev = random_vec(std::size_t(coo.nnz()), 1);
  const auto x =
      random_vec(std::size_t(coo.num_cols) * std::size_t(c.f), 2);
  std::vector<float> want(std::size_t(coo.num_rows) * std::size_t(c.f));
  ref::spmm(coo, ev, x, c.f, want);

  std::vector<float> got(want.size());
  const auto stats = gnnone_spmm(gpusim::default_device(), coo, ev, x, c.f,
                                 got, c.cfg);
  expect_close(got, want);
  EXPECT_GT(stats.cycles, 0u);
}

TEST_P(GnnOneKernels, SddmmMatchesReference) {
  const Case& c = GetParam();
  const Coo coo = make_graph(c.family, c.scale);
  const auto x =
      random_vec(std::size_t(coo.num_rows) * std::size_t(c.f), 3);
  const auto y =
      random_vec(std::size_t(coo.num_cols) * std::size_t(c.f), 4);
  std::vector<float> want(std::size_t(coo.nnz()));
  ref::sddmm(coo, x, y, c.f, want);

  std::vector<float> got(want.size());
  const auto stats = gnnone_sddmm(gpusim::default_device(), coo, x, y, c.f,
                                  got, c.cfg);
  expect_close(got, want);
  EXPECT_GT(stats.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GnnOneKernels, testing::ValuesIn(make_cases()),
                         case_name);

TEST(GnnOneSpmv, MatchesReference) {
  for (const std::string& fam : {"rmat", "grid", "powerlaw"}) {
    const Coo coo = make_graph(fam, 9);
    const auto ev = random_vec(std::size_t(coo.nnz()), 5);
    const auto x = random_vec(std::size_t(coo.num_cols), 6);
    std::vector<float> want(std::size_t(coo.num_rows));
    ref::spmv(coo, ev, x, want);
    for (int n : {1, 2, 4, 8}) {
      std::vector<float> got(want.size());
      gnnone_spmv(gpusim::default_device(), coo, ev, x, got, n);
      expect_close(got, want);
    }
  }
}

TEST(GnnOneKernelsEdge, EmptyGraph) {
  Coo coo;
  coo.num_rows = 4;
  coo.num_cols = 4;
  std::vector<float> x(16, 1.0f), y(16, 0.0f);
  const auto stats = gnnone_spmm(gpusim::default_device(), coo, {}, x, 4, y);
  for (float v : y) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(stats.totals.bytes_loaded, 0u);
}

TEST(GnnOneKernelsEdge, SingleEdge) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 2;
  coo.row = {0};
  coo.col = {1};
  std::vector<float> ev = {2.0f};
  std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};  // f = 2
  std::vector<float> y(4, -1.0f);
  gnnone_spmm(gpusim::default_device(), coo, ev, x, 2, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(GnnOneKernels, ReferenceMatchesDense) {
  const Coo coo = make_graph("rmat", 6);
  const int f = 8;
  const auto ev = random_vec(std::size_t(coo.nnz()), 1);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 2);
  const auto y = random_vec(std::size_t(coo.num_rows) * f, 3);

  std::vector<float> spmm_out(std::size_t(coo.num_rows) * f);
  ref::spmm(coo, ev, x, f, spmm_out);
  expect_close(spmm_out, ref::dense_spmm(coo, ev, x, f), 1e-2f);

  std::vector<float> sddmm_out(std::size_t(coo.nnz()));
  ref::sddmm(coo, x, y, f, sddmm_out);
  expect_close(sddmm_out, ref::dense_sddmm(coo, x, y, f), 1e-2f);
}

TEST(GnnOneKernels, LoadOnlyModeCostsLess) {
  const Coo coo = make_graph("powerlaw", 10);
  const int f = 32;
  const auto ev = random_vec(std::size_t(coo.nnz()), 1);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 2);
  std::vector<float> out(std::size_t(coo.num_rows) * f);

  GnnOneConfig full;
  GnnOneConfig load_only;
  load_only.mode = KernelMode::kLoadOnly;
  const auto a = gnnone_spmm(gpusim::default_device(), coo, ev, x, f, out, full);
  const auto b =
      gnnone_spmm(gpusim::default_device(), coo, ev, x, f, out, load_only);
  EXPECT_LT(b.cycles, a.cycles);
  // Data load must dominate: the paper's Observation #2 (Fig. 11).
  EXPECT_GT(double(b.cycles) / double(a.cycles), 0.5);
}

}  // namespace
}  // namespace gnnone
