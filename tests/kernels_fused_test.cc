// Tests for the fused GAT attention extension (the paper's future work):
// functional equivalence with the unfused computation and the expected
// launch/traffic savings.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "kernels/gnnone.h"
#include "kernels/gnnone_fused.h"
#include "tensor/dense_cost.h"

namespace gnnone {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

/// CPU reference of the whole attention block.
void reference_attention(const Coo& coo, std::span<const float> s_src,
                         std::span<const float> s_dst,
                         std::span<const float> h, int f, float slope,
                         std::span<float> alpha, std::span<float> out) {
  const auto nnz = std::size_t(coo.nnz());
  std::vector<float> logit(nnz);
  std::vector<float> mx(std::size_t(coo.num_rows), -1e30f);
  for (std::size_t e = 0; e < nnz; ++e) {
    const float v = s_src[std::size_t(coo.col[e])] +
                    s_dst[std::size_t(coo.row[e])];
    logit[e] = v >= 0.0f ? v : slope * v;
    mx[std::size_t(coo.row[e])] =
        std::max(mx[std::size_t(coo.row[e])], logit[e]);
  }
  std::vector<float> norm(std::size_t(coo.num_rows), 0.0f);
  for (std::size_t e = 0; e < nnz; ++e) {
    alpha[e] = std::exp(logit[e] - mx[std::size_t(coo.row[e])]);
    norm[std::size_t(coo.row[e])] += alpha[e];
  }
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t e = 0; e < nnz; ++e) {
    alpha[e] = norm[std::size_t(coo.row[e])] > 0
                   ? alpha[e] / norm[std::size_t(coo.row[e])]
                   : 0.0f;
    for (int j = 0; j < f; ++j) {
      out[std::size_t(coo.row[e]) * std::size_t(f) + std::size_t(j)] +=
          alpha[e] * h[std::size_t(coo.col[e]) * std::size_t(f) + std::size_t(j)];
    }
  }
}

struct Case {
  int scale;
  int f;
};

class FusedAttention : public testing::TestWithParam<Case> {};

TEST_P(FusedAttention, MatchesUnfusedReference) {
  RmatParams p;
  p.scale = GetParam().scale;
  p.edge_factor = 6;
  const Coo coo = rmat_graph(p);
  const int f = GetParam().f;
  const auto nv = std::size_t(coo.num_rows);

  const auto s_src = random_vec(nv, 1);
  const auto s_dst = random_vec(nv, 2);
  const auto h = random_vec(nv * std::size_t(f), 3);
  std::vector<float> alpha(std::size_t(coo.nnz())), out(nv * std::size_t(f));
  std::vector<float> alpha_ref(alpha.size()), out_ref(out.size());

  reference_attention(coo, s_src, s_dst, h, f, 0.2f, alpha_ref, out_ref);
  const auto stats = gnnone_fused_attention(gpusim::default_device(), coo,
                                            s_src, s_dst, h, f, 0.2f, alpha,
                                            out);
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    ASSERT_NEAR(alpha[i], alpha_ref[i], 1e-4f) << "alpha at " << i;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], out_ref[i], 1e-3f + 1e-3f * std::abs(out_ref[i]))
        << "out at " << i;
  }
  EXPECT_GT(stats.total_cycles(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedAttention,
                         testing::Values(Case{7, 4}, Case{8, 16}, Case{8, 32},
                                         Case{9, 6}, Case{9, 64}),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.scale) +
                                  "_f" + std::to_string(info.param.f);
                         });

TEST(FusedAttention, FasterThanUnfusedKernelSequence) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 12;
  const Coo coo = rmat_graph(p);
  const int f = 32;
  const auto nv = std::size_t(coo.num_rows);
  const auto& dev = gpusim::default_device();

  const auto s_src = random_vec(nv, 4);
  const auto s_dst = random_vec(nv, 5);
  const auto h = random_vec(nv * std::size_t(f), 6);
  std::vector<float> alpha(std::size_t(coo.nnz())), out(nv * std::size_t(f));

  const auto fused = gnnone_fused_attention(dev, coo, s_src, s_dst, h, f,
                                            0.2f, alpha, out);

  // Honest unfused sequence on the same kernels: f=2 SDDMM (u_add_v), a
  // segment-max pass and a segment-sum pass (each an f=1 SpMM shape), the
  // final weighted SpMM, and three elementwise edge passes (LeakyReLU, exp,
  // normalize) that each re-stream the edge tensor.
  std::vector<float> x2(nv * 2), y2(nv * 2), e(std::size_t(coo.nnz()));
  const auto k1 = gnnone_sddmm(dev, coo, x2, y2, 2, e);
  std::vector<float> ones(nv, 1.0f), sums(nv);
  const auto kmax = gnnone_spmm(dev, coo, e, ones, 1, sums);
  const auto ksum = gnnone_spmm(dev, coo, e, ones, 1, sums);
  const auto k3 = gnnone_spmm(dev, coo, alpha, h, f, out);
  const std::uint64_t elementwise =
      3 * elementwise_cycles(dev, coo.nnz());
  const std::uint64_t unfused =
      k1.cycles + kmax.cycles + ksum.cycles + k3.cycles + elementwise;

  EXPECT_LT(fused.total_cycles(), unfused)
      << "fusion should beat the full unfused pipeline";
  // And the fused path moves fewer edge-tensor bytes.
  const auto fused_bytes = fused.max_pass.totals.bytes_loaded +
                           fused.logit_pass.totals.bytes_loaded +
                           fused.aggregate_pass.totals.bytes_loaded;
  const auto unfused_bytes = k1.totals.bytes_loaded + kmax.totals.bytes_loaded +
                             ksum.totals.bytes_loaded + k3.totals.bytes_loaded;
  EXPECT_LT(fused_bytes, unfused_bytes * 2);
}

TEST(FusedAttention, HandlesIsolatedVertices) {
  // Zero-in-degree vertices (plentiful in Kronecker graphs) must not divide
  // by zero — this is exactly where the paper reports dgNN crashing.
  Coo coo;
  coo.num_rows = 8;
  coo.num_cols = 8;
  coo.row = {0, 0, 3};
  coo.col = {1, 2, 4};
  std::vector<float> s(8, 0.5f), h(8 * 4, 1.0f);
  std::vector<float> alpha(3), out(8 * 4, -1.0f);
  gnnone_fused_attention(gpusim::default_device(), coo, s, s, h, 4, 0.2f,
                         alpha, out);
  EXPECT_NEAR(alpha[0] + alpha[1], 1.0f, 1e-5f);
  EXPECT_NEAR(alpha[2], 1.0f, 1e-5f);
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out[std::size_t(7 * 4 + j)], 0.0f);  // isolated vertex
  }
}

}  // namespace
}  // namespace gnnone
