// Tests for sharded multi-device serving (serve/shard.h, docs/SERVING.md
// §10): the edge-cut ShardMap, role validation, shard-count/role invariance
// of predictions, cross-device byte conservation, the per-device timeline
// tiling, chaos outcome invariance across role assignments, and the
// per-device memory-leak check.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "serve/server.h"

namespace gnnone {
namespace {

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

ServeOptions base_opts(const std::string& kind = "gcn") {
  ServeOptions o;
  o.model_kind = kind;
  o.batch_size = 4;
  o.fanouts = {6, 3};
  o.cache_alpha = 0.1;
  o.feature_dim_override = 16;
  o.backend = Backend::kGnnOne;
  o.seed = 3;
  return o;
}

std::vector<SeedRequest> uniform_trace(const Dataset& ds, int n = 24) {
  RequestTraceOptions ro;
  ro.num_requests = n;
  ro.max_seeds = 3;
  // Uniform traffic spreads the seeds across the contiguous degree-order
  // shards; hot traffic piles onto the top-degree shard.
  ro.hot_fraction = 0.0;
  ro.seed = 21;
  return make_request_trace(ds.coo, ro);
}

serve::ShardOptions symmetric(int n, double dilation = 1.2) {
  serve::ShardOptions s;
  s.num_devices = n;
  s.colocation_dilation = dilation;
  return s;
}

/// The first `samplers` devices dedicated to sampling, the rest to forward.
serve::ShardOptions factored(int n, int samplers) {
  serve::ShardOptions s = symmetric(n);
  for (int d = 0; d < n; ++d) {
    s.roles.push_back(d < samplers ? serve::ShardRole::kSampler
                                   : serve::ShardRole::kForward);
  }
  return s;
}

std::size_t total_unique_bytes(const ServingReport& rep,
                               std::size_t row_bytes) {
  std::size_t n = 0;
  for (const BatchStats& b : rep.batches) {
    n += std::size_t(b.num_unique_vertices) * row_bytes;
  }
  return n;
}

// --- ShardMap ------------------------------------------------------------

TEST(ShardMap, SplitsOrderIntoNearEqualContiguousRanges) {
  // An identity "degree order" over 11 vertices across 3 owners: slices of
  // 4/4/3 (earlier owners absorb the remainder), contiguous in the order.
  std::vector<vid_t> order(11);
  std::iota(order.begin(), order.end(), vid_t(0));
  const std::vector<int> owners = {0, 2, 5};
  const serve::ShardMap map(order, owners);

  EXPECT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.num_vertices(), vid_t(11));
  EXPECT_EQ(map.owner_devices(), owners);
  EXPECT_EQ(map.owned_count(0), vid_t(4));
  EXPECT_EQ(map.owned_count(2), vid_t(4));
  EXPECT_EQ(map.owned_count(5), vid_t(3));
  EXPECT_EQ(map.owned_count(1), vid_t(0));  // owns no shard

  // Contiguity in the order: owner ids change at most num_shards - 1 times.
  int changes = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    changes += map.owner(order[i]) != map.owner(order[i - 1]) ? 1 : 0;
  }
  EXPECT_EQ(changes, map.num_shards() - 1);

  vid_t total = 0;
  for (int d : owners) total += map.owned_count(d);
  EXPECT_EQ(total, map.num_vertices());
}

TEST(ShardMap, RejectsEmptyAndMalformedInput) {
  std::vector<vid_t> order = {0, 1, 2};
  const std::vector<int> owners = {0};
  EXPECT_THROW(serve::ShardMap(std::vector<vid_t>{}, owners),
               std::invalid_argument);
  EXPECT_THROW(serve::ShardMap(order, std::vector<int>{}),
               std::invalid_argument);
  const std::vector<vid_t> dup = {0, 1, 1};  // ranks vertex 1 twice, 2 never
  EXPECT_THROW(serve::ShardMap(dup, owners), std::invalid_argument);
}

// --- validation ----------------------------------------------------------

TEST(ShardValidation, RejectsMalformedShardOptions) {
  serve::ShardOptions s;
  s.num_devices = -1;
  EXPECT_THROW(s.Validate(), std::invalid_argument);

  s = symmetric(2);
  s.roles = {serve::ShardRole::kSampler};  // size disagrees with num_devices
  EXPECT_THROW(s.Validate(), std::invalid_argument);

  s = symmetric(2);
  s.roles = {serve::ShardRole::kForward, serve::ShardRole::kForward};
  EXPECT_THROW(s.Validate(), std::invalid_argument);  // nobody samples

  s = symmetric(2);
  s.roles = {serve::ShardRole::kSampler, serve::ShardRole::kSampler};
  EXPECT_THROW(s.Validate(), std::invalid_argument);  // nobody forwards

  s = symmetric(2, 0.5);
  EXPECT_THROW(s.Validate(), std::invalid_argument);  // dilation < 1

  s = symmetric(0);  // disabled: roles/dilation unchecked beyond basics
  EXPECT_NO_THROW(s.Validate());
  s = factored(4, 2);
  EXPECT_NO_THROW(s.Validate());
}

TEST(ShardValidation, RejectsExclusiveServeOptionCombos) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();

  ServeOptions o = base_opts();
  o.shard = symmetric(2);
  o.tenants.push_back(serve::TenantSpec{});
  o.tenants.back().slo_cycles = 1'000'000;
  EXPECT_THROW(InferenceServer(ds, dev, o), std::invalid_argument);

  o = base_opts();
  o.shard = symmetric(2);
  o.pipeline = true;
  EXPECT_THROW(InferenceServer(ds, dev, o), std::invalid_argument);

  o = base_opts();
  o.shard = symmetric(2);
  gpusim::DeviceMemory mem(dev.device_memory_bytes);
  o.device_memory = &mem;
  EXPECT_THROW(InferenceServer(ds, dev, o), std::invalid_argument);
}

// --- prediction invariance -----------------------------------------------

TEST(ShardInvariance, PredictionsBitIdenticalAcrossCountsAndRoles) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds);

  for (const std::string kind : {"gcn", "gat"}) {
    const ServeOptions flat = base_opts(kind);
    const ServingReport ref = InferenceServer(ds, dev, flat).serve(reqs);

    const std::vector<serve::ShardOptions> layouts = {
        symmetric(1), symmetric(2), symmetric(4),
        factored(2, 1), factored(4, 2), factored(4, 1)};
    for (const serve::ShardOptions& shard : layouts) {
      ServeOptions o = flat;
      o.shard = shard;
      const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);
      EXPECT_EQ(rep.predictions, ref.predictions)
          << kind << " devices=" << shard.num_devices
          << " roles=" << shard.roles.size();
      EXPECT_EQ(rep.num_requests, ref.num_requests);
      EXPECT_EQ(rep.served_requests(), ref.served_requests());
    }
  }
}

TEST(ShardInvariance, OneSymmetricShardAtDilationOneIsUnsharded) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds);

  const ServeOptions flat = base_opts();
  const ServingReport ref = InferenceServer(ds, dev, flat).serve(reqs);

  ServeOptions o = flat;
  o.shard = symmetric(1, 1.0);
  const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);

  // The single-shard run is the unsharded serial chain, bit for bit: no
  // remote traffic, no handoff, identical cycle totals and attribution.
  EXPECT_EQ(rep.total_cycles, ref.total_cycles);
  EXPECT_EQ(rep.serial_cycles, ref.serial_cycles);
  EXPECT_EQ(rep.ledger.total(), ref.ledger.total());
  EXPECT_EQ(rep.predictions, ref.predictions);
  EXPECT_EQ(rep.cache_hits, ref.cache_hits);
  EXPECT_EQ(rep.cache_misses, ref.cache_misses);
  EXPECT_EQ(rep.remote_hits, 0u);
  EXPECT_EQ(rep.remote_misses, 0u);
  EXPECT_EQ(rep.handoff_bytes, 0u);
  ASSERT_EQ(rep.timeline.size(), ref.timeline.size());
  for (std::size_t i = 0; i < rep.timeline.size(); ++i) {
    EXPECT_EQ(rep.timeline[i].start, ref.timeline[i].start) << "span " << i;
    EXPECT_EQ(rep.timeline[i].end, ref.timeline[i].end) << "span " << i;
  }
  ASSERT_EQ(rep.devices.size(), 1u);
  EXPECT_EQ(rep.devices[0].makespan, rep.total_cycles);
  EXPECT_EQ(rep.devices[0].colocation_cycles, 0u);
}

// --- accounting ----------------------------------------------------------

TEST(ShardAccounting, DevicesTileExactlyAndBatchCountsAddUp) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds);

  for (const serve::ShardOptions& shard :
       {symmetric(4), factored(4, 2), factored(4, 1)}) {
    ServeOptions o = base_opts();
    o.shard = shard;
    const InferenceServer server(ds, dev, o);
    const ServingReport rep = server.serve(reqs);

    ASSERT_EQ(rep.devices.size(), 4u);
    int sampled = 0, forwarded = 0;
    std::uint64_t max_makespan = 0, idle = 0;
    std::size_t handoff = 0;
    for (const serve::DeviceShardReport& d : rep.devices) {
      // The tentpole invariant: exposed + idle == makespan, exactly.
      EXPECT_EQ(d.exposed_cycles + d.idle_cycles, d.makespan)
          << "device " << d.device;
      EXPECT_GE(d.peak_bytes, d.cache_bytes);
      sampled += d.sampled_batches;
      forwarded += d.forward_batches;
      max_makespan = std::max(max_makespan, d.makespan);
      idle += d.idle_cycles;
      handoff += d.handoff_bytes;
      if (d.role == serve::ShardRole::kSampler) {
        EXPECT_EQ(d.forward_batches, 0);
        EXPECT_EQ(d.forward_cycles, 0u);
      }
      if (d.role == serve::ShardRole::kForward) {
        EXPECT_EQ(d.sampled_batches, 0);
        EXPECT_EQ(d.cache_bytes, 0u);  // owns no shard, pins nothing
        EXPECT_EQ(server.shard_map().owned_count(d.device), vid_t(0));
      }
      // Dedicated devices never pay the colocation dilation.
      if (d.role != serve::ShardRole::kSymmetric) {
        EXPECT_EQ(d.colocation_cycles, 0u);
      }
    }
    EXPECT_EQ(sampled, rep.num_batches);
    EXPECT_EQ(forwarded, rep.num_batches);
    EXPECT_EQ(rep.total_cycles, max_makespan);
    EXPECT_EQ(rep.idle_cycles, idle);
    EXPECT_EQ(rep.handoff_bytes, handoff);
    // Factored layouts hand every batch off; symmetric hands off nothing.
    if (!shard.roles.empty()) {
      EXPECT_GT(rep.handoff_bytes, 0u);
    } else {
      EXPECT_EQ(rep.handoff_bytes, 0u);
    }
  }
}

TEST(ShardAccounting, GatherBytesConserved) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds);
  const std::size_t row_bytes = 16 * 4;

  for (const serve::ShardOptions& shard :
       {symmetric(2), symmetric(4), factored(4, 2)}) {
    ServeOptions o = base_opts();
    o.shard = shard;
    const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);

    // Every unique gathered vertex lands on exactly one of the four paths:
    // local hit (DRAM), local miss (PCIe), remote hit (NVLink), remote miss
    // (PCIe).
    EXPECT_EQ(rep.cache_hit_bytes + rep.cache_miss_bytes +
                  rep.remote_hit_bytes + rep.remote_miss_bytes,
              total_unique_bytes(rep, row_bytes))
        << "devices=" << shard.num_devices;
    EXPECT_EQ(rep.bytes.by_tag("feature_remote_hit"), rep.remote_hit_bytes);
    EXPECT_EQ(rep.bytes.by_tag("feature_remote_miss"), rep.remote_miss_bytes);
    if (shard.num_devices > 1 && shard.roles.empty()) {
      // More than one owner and uniform traffic: some gathers cross devices.
      EXPECT_GT(rep.remote_hits + rep.remote_misses, 0u);
    }
  }
}

TEST(ShardAccounting, StaticPolicyHitsConservedAtBatchSizeOne) {
  // With batch_size 1 the sharded run's batch composition matches the
  // unsharded run's exactly (routing cannot regroup singleton batches), so
  // under the static degree policy every vertex pinned anywhere is pinned
  // identically and local + remote hits must equal the unsharded hits.
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds, 12);

  ServeOptions flat = base_opts();
  flat.batch_size = 1;
  const ServingReport ref = InferenceServer(ds, dev, flat).serve(reqs);

  for (int devices : {2, 4}) {
    ServeOptions o = flat;
    o.shard = symmetric(devices);
    const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);
    EXPECT_EQ(rep.cache_hits + rep.remote_hits, ref.cache_hits)
        << "devices=" << devices;
    EXPECT_EQ(rep.cache_misses + rep.remote_misses, ref.cache_misses)
        << "devices=" << devices;
  }
}

// --- chaos ---------------------------------------------------------------

TEST(ShardChaos, OutcomesInvariantAcrossRoleAssignments) {
  // Fault fates key on the request's trace position alone (serve/chaos.h),
  // never on batch composition or device placement — so a request's final
  // status, truncation flag and served predictions are identical across
  // the unsharded driver and every shard layout / role assignment.
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds, 32);

  ServeOptions flat = base_opts();
  flat.chaos.oom_rate = 0.1;
  flat.chaos.fetch_rate = 0.15;
  flat.chaos.kernel_rate = 0.1;
  flat.chaos.seed = 5;
  const ServingReport ref = InferenceServer(ds, dev, flat).serve(reqs);

  int faulted = 0;
  for (const serve::RequestOutcome& oc : ref.outcomes) {
    faulted += oc.status == serve::Status::kOk ? 0 : 1;
  }
  EXPECT_GT(faulted, 0);  // the schedule actually injected something

  for (const serve::ShardOptions& shard :
       {symmetric(2), symmetric(4), factored(4, 2), factored(4, 1)}) {
    ServeOptions o = flat;
    o.shard = shard;
    const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);
    ASSERT_EQ(rep.outcomes.size(), ref.outcomes.size());
    for (std::size_t r = 0; r < reqs.size(); ++r) {
      EXPECT_EQ(rep.outcomes[r].status, ref.outcomes[r].status)
          << "request " << r << " devices=" << shard.num_devices
          << " roles=" << shard.roles.size();
      EXPECT_EQ(rep.outcomes[r].truncated_fanouts,
                ref.outcomes[r].truncated_fanouts)
          << "request " << r;
      EXPECT_EQ(rep.predictions[r], ref.predictions[r]) << "request " << r;
    }
  }
}

/// Regression for the ctor-captures-temporary pattern: the sharded server
/// copies the device spec and the options by value (only the dataset must
/// outlive it — server.h), so a server whose spec/options died right after
/// construction must serve identically to one built from live arguments.
TEST(ShardLifetime, ServerSurvivesTemporarySpecAndOptions) {
  const Dataset ds = make_dataset("G4");
  const auto reqs = uniform_trace(ds, 12);

  ServeOptions live_opts = base_opts();
  live_opts.shard = factored(2, 1);
  const ServingReport ref =
      InferenceServer(ds, test_device(), live_opts).serve(reqs);

  std::unique_ptr<InferenceServer> server;
  {
    const gpusim::DeviceSpec dev{};   // both destroyed before serve() runs
    ServeOptions o = base_opts();
    o.shard = factored(2, 1);
    server = std::make_unique<InferenceServer>(ds, dev, o);
  }
  const ServingReport rep = server->serve(reqs);
  EXPECT_EQ(rep.predictions, ref.predictions);
  EXPECT_EQ(rep.total_cycles, ref.total_cycles);
  EXPECT_EQ(rep.handoff_bytes, ref.handoff_bytes);
}

// --- memory --------------------------------------------------------------

TEST(ShardMemory, PerDeviceTrackersLeakNothingAcrossServes) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = uniform_trace(ds);

  ServeOptions o = base_opts();
  o.shard = factored(4, 2);
  const InferenceServer server(ds, dev, o);

  const ServingReport first = server.serve(reqs);
  for (int d = 0; d < server.shard_devices(); ++d) {
    // Between serves only the pinned cache rows stay resident per device.
    EXPECT_EQ(server.shard_memory(d).in_use(),
              server.shard_cache(d).device_bytes())
        << "device " << d;
  }
  const ServingReport second = server.serve(reqs);
  EXPECT_EQ(second.total_cycles, first.total_cycles);
  EXPECT_EQ(second.predictions, first.predictions);
  for (int d = 0; d < server.shard_devices(); ++d) {
    EXPECT_EQ(server.shard_memory(d).in_use(),
              server.shard_cache(d).device_bytes())
        << "device " << d;
    EXPECT_EQ(first.devices[std::size_t(d)].peak_bytes,
              second.devices[std::size_t(d)].peak_bytes);
  }
}

}  // namespace
}  // namespace gnnone
