// Tests for the training harness itself: options handling, unlabeled
// datasets, ledger composition, and determinism.
#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gnn/train.h"

namespace gnnone {
namespace {

const gpusim::DeviceSpec& dev() { return gpusim::default_device(); }

TEST(TrainHarness, UnlabeledDatasetsTrainOnGeneratedLabels) {
  // Performance-suite graphs have no labels; the harness generates them
  // (GNNBench's approach, §5.3) so timing runs work.
  const Dataset d = make_dataset("G11");
  ASSERT_FALSE(d.labeled);
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.epochs = 1;
  opts.feature_dim_override = 8;
  opts.eval_accuracy = false;
  const auto r = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  ASSERT_TRUE(r.ran);
  EXPECT_GT(r.cycles_per_epoch, 0u);
  EXPECT_EQ(r.accuracy_curve.size(), 0u);
}

TEST(TrainHarness, TotalCyclesScalesWithEpochHorizon) {
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.feature_dim_override = 8;
  opts.eval_accuracy = false;
  opts.epochs = 10;
  const auto a = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  opts.epochs = 200;
  const auto b = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  EXPECT_EQ(a.cycles_per_epoch, b.cycles_per_epoch);
  EXPECT_EQ(b.total_cycles, a.cycles_per_epoch * 200u);
}

TEST(TrainHarness, DeterministicAcrossRuns) {
  const Dataset d = make_dataset("G0");
  TrainOptions opts;
  opts.measured_epochs = 5;
  opts.epochs = 5;
  opts.feature_dim_override = 16;
  const auto a = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  const auto b = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  EXPECT_EQ(a.cycles_per_epoch, b.cycles_per_epoch);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  ASSERT_EQ(a.accuracy_curve.size(), b.accuracy_curve.size());
  for (std::size_t i = 0; i < a.accuracy_curve.size(); ++i) {
    EXPECT_EQ(a.accuracy_curve[i], b.accuracy_curve[i]);
  }
}

TEST(TrainHarness, LedgerSplitsSumToTotal) {
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.epochs = 1;
  opts.feature_dim_override = 16;
  opts.eval_accuracy = false;
  const auto r = train_model(Backend::kGnnOne, d, "gat", dev(), opts);
  ASSERT_TRUE(r.ran);
  EXPECT_GT(r.spmm_cycles, 0u);
  EXPECT_GT(r.sddmm_cycles, 0u);
  EXPECT_GT(r.dense_cycles, 0u);
  EXPECT_EQ(r.spmm_cycles + r.sddmm_cycles + r.dense_cycles,
            r.cycles_per_epoch);
}

TEST(TrainHarness, UnknownModelThrows) {
  const Dataset d = make_dataset("G0");
  EXPECT_THROW(train_model(Backend::kGnnOne, d, "transformer", dev()),
               std::invalid_argument);
}

TEST(TrainHarness, UnsupportedBackendReportsWithoutRunning) {
  const Dataset kron = make_dataset("G10");
  const auto r = train_model(Backend::kDgnn, kron, "gat", dev());
  EXPECT_FALSE(r.ran);
  EXPECT_EQ(r.fail_reason, "unsupported");
  EXPECT_EQ(r.cycles_per_epoch, 0u);
}

TEST(TrainHarness, GatCostsMoreThanGcnPerEpoch) {
  // GAT adds SDDMM + edge softmax + more layers: must cost more.
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.epochs = 1;
  opts.feature_dim_override = 16;
  opts.eval_accuracy = false;
  const auto gcn = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  const auto gat = train_model(Backend::kGnnOne, d, "gat", dev(), opts);
  EXPECT_GT(gat.cycles_per_epoch, gcn.cycles_per_epoch);
  EXPECT_EQ(gcn.sddmm_cycles, 0u);  // GCN's backward needs no SDDMM (§2):
                                    // its edge weights are static
}

TEST(TrainHarness, FootprintGrowsWithModelDepthAndEdges) {
  const Dataset small = make_dataset("G9");
  const Dataset big = make_dataset("G15");  // more paper-scale edges
  EXPECT_GT(paper_scale_footprint(Backend::kDgl, big, "gcn"),
            paper_scale_footprint(Backend::kDgl, small, "gcn"));
  EXPECT_GT(paper_scale_footprint(Backend::kGnnOne, small, "gat"),
            paper_scale_footprint(Backend::kGnnOne, small, "gcn"));
  // DGL always needs more device memory than GNNOne on the same job.
  for (const char* id : {"G9", "G14", "G17"}) {
    const Dataset d = make_dataset(id);
    EXPECT_GT(paper_scale_footprint(Backend::kDgl, d, "gcn"),
              paper_scale_footprint(Backend::kGnnOne, d, "gcn"))
        << id;
  }
}

}  // namespace
}  // namespace gnnone
