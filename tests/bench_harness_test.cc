// Golden-file and determinism tests for the bench observability pipeline:
// the BENCH_RESULTS.json schema is versioned and byte-stable (goldens below
// pin the exact serialization), two identical runs produce byte-identical
// documents, and the expectations/markdown helpers behave as the bench
// sources assume.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expectations.h"
#include "gpusim/launch.h"
#include "gpusim/warp.h"
#include "harness.h"

namespace bench {
namespace {

// ---------------------------------------------------------------------------
// Json

TEST(Json, ObjectKeysKeepInsertionOrder) {
  Json o = Json::object();
  o.set("zulu", 1);
  o.set("alpha", 2);
  o.set("mike", 3);
  EXPECT_EQ(o.dump(), "{\n  \"zulu\": 1,\n  \"alpha\": 2,\n  \"mike\": 3\n}");
  o.set("alpha", 9);  // overwrite keeps the original position
  EXPECT_EQ(o.dump(), "{\n  \"zulu\": 1,\n  \"alpha\": 9,\n  \"mike\": 3\n}");
}

TEST(Json, DoublesPrintShortestRoundTrip) {
  EXPECT_EQ(Json(1.41).dump(), "1.41");
  EXPECT_EQ(Json(1024.0).dump(), "1024.0");  // stays a double on re-parse
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(1.0 / 3.0).dump(), "0.3333333333333333");
}

TEST(Json, IntVsDoubleSurvivesRoundTrip) {
  const Json parsed = Json::parse("{\"a\": 1024, \"b\": 1024.0}");
  EXPECT_EQ(parsed["a"].kind(), Json::Kind::kInt);
  EXPECT_EQ(parsed["b"].kind(), Json::Kind::kDouble);
  EXPECT_EQ(parsed["a"].as_uint(), 1024u);
  EXPECT_DOUBLE_EQ(parsed["b"].as_double(), 1024.0);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "quote\" back\\slash\nnew\ttab\rret\x01ctl";
  Json o = Json::object();
  o.set("s", nasty);
  const std::string text = o.dump();
  EXPECT_EQ(text.find('\n', text.find("\"s\"")),
            text.size() - 2);  // no raw newline inside the string literal
  EXPECT_EQ(Json::parse(text)["s"].as_string(), nasty);
}

TEST(Json, DumpParsesBackByteIdentical) {
  Json doc = Json::object();
  doc.set("name", "x");
  doc.set("f", 2.5);
  doc.set("n", std::int64_t(-7));
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc.set("arr", std::move(arr));
  const std::string text = doc.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ParseErrorsThrowWithOffset) {
  EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
}

// ---------------------------------------------------------------------------
// Harness + results_doc golden

Harness demo_harness() {
  Harness h("demo", "Demo bench", "none", Scale::kCi);
  h.add_cycles("G1", "gnnone", 32, 1234, "cfg");
  h.add_status("G2", "merge", 1, "crash");
  h.metric("speedup", 1.5, 6.02);
  h.expect("demo.ok", true, "detail");
  return h;
}

// The schema golden: field names, nesting, ordering, number formatting and
// the schema/version header are all load-bearing — bench/baseline.json, the
// CI drift gate and --emit-experiments parse this format.
constexpr const char* kGolden = R"json({
  "schema": "gnnone-bench-results",
  "version": 1,
  "scale": "ci",
  "device": {
    "sm_clock_ghz": 1.41,
    "num_sms": 108,
    "max_warps_per_sm": 64,
    "global_load_latency": 400,
    "dram_bytes_per_cycle": 1024.0
  },
  "benches": [
    {
      "name": "demo",
      "title": "Demo bench",
      "paper_ref": "none",
      "rows": [
        {
          "dataset": "G1",
          "kernel": "gnnone",
          "dim": 32,
          "config": "cfg",
          "status": "ok",
          "cycles": 1234
        },
        {
          "dataset": "G2",
          "kernel": "merge",
          "dim": 1,
          "config": "",
          "status": "crash",
          "cycles": 0
        }
      ],
      "metrics": [
        {
          "name": "speedup",
          "value": 1.5,
          "paper": 6.02
        }
      ],
      "expectations": [
        {
          "id": "demo.ok",
          "ok": true,
          "detail": "detail"
        }
      ]
    }
  ]
})json";

TEST(ResultsDoc, MatchesSchemaGolden) {
  const Harness h = demo_harness();
  const Json doc =
      results_doc({&h}, Scale::kCi, gpusim::default_device());
  EXPECT_EQ(doc.dump(), kGolden);
  // The header is versioned so downstream readers can reject drift.
  EXPECT_EQ(doc["schema"].as_string(), kResultSchemaName);
  EXPECT_EQ(doc["version"].as_int(), kResultSchemaVersion);
}

TEST(ResultsDoc, GoldenRoundTripsThroughParser) {
  EXPECT_EQ(Json::parse(kGolden).dump(), kGolden);
}

TEST(ResultsDoc, TwoIdenticalRunsAreByteIdentical) {
  // Satellite: determinism gate. Re-running the same bench must produce a
  // byte-identical BENCH_RESULTS.json, including the full simulator counter
  // block, or baseline diffing is meaningless.
  auto run_once = [] {
    std::vector<float> in(4096, 1.0f), out_v(4096, 0.0f);
    gpusim::LaunchConfig lc;
    lc.num_ctas = 8;
    lc.warps_per_cta = 4;
    lc.label = "determinism-probe";
    const auto ks = gpusim::launch(
        gpusim::default_device(), lc, [&](gpusim::WarpCtx& w) {
          gpusim::LaneArray<std::int64_t> idx{};
          for (int l = 0; l < gpusim::kWarpSize; ++l) {
            idx[l] = (w.global_warp_id() * gpusim::kWarpSize + l) % 4096;
          }
          const auto v = w.ld_global(in.data(), idx);
          w.st_global(out_v.data(), idx, v);
          w.sync();
        });
    Harness h("determinism", "t", "r", Scale::kCi);
    h.add("G1", "gnnone", 32, ks);
    return results_doc({&h}, Scale::kCi, gpusim::default_device()).dump();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  // And the counter block actually made it into the document.
  const Json doc = Json::parse(first);
  const Json& counters = doc["benches"].items()[0]["rows"].items()[0]["counters"];
  EXPECT_TRUE(counters.is_object());
  EXPECT_GT(counters["issue_cycles"].as_uint(), 0u);
  EXPECT_GT(counters["store_issue_cycles"].as_uint(), 0u);
  EXPECT_TRUE(counters.contains("atomic_issue_cycles"));
  EXPECT_TRUE(counters.contains("data_movement_fraction"));
}

TEST(Harness, CsvHeaderAndRowsHaveSameFieldCount) {
  Harness h = demo_harness();
  const std::string csv = h.to_csv();
  std::stringstream ss(csv);
  std::string line;
  std::getline(ss, line);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  const auto n = commas(line);
  EXPECT_EQ(line.substr(0, 6), "bench,");
  int rows = 0;
  while (std::getline(ss, line)) {
    EXPECT_EQ(commas(line), n) << line;
    EXPECT_EQ(line.substr(0, 5), "demo,");
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(Harness, FailedExpectationsCount) {
  Harness h("x", "t", "r", Scale::kFull);
  EXPECT_TRUE(h.expect("a", true));
  EXPECT_FALSE(h.expect("b", false, "nope"));
  h.expect("c", false);
  EXPECT_EQ(h.failed_expectations(), 2);
}

TEST(Harness, CiScaleReducesSuites) {
  Harness ci("x", "t", "r", Scale::kCi);
  Harness full("x", "t", "r", Scale::kFull);
  // ci keeps only the allowlist intersection, in caller order.
  EXPECT_EQ(ci.reduce({"G1", "G4", "G7", "G10"}),
            (std::vector<std::string>{"G4", "G10"}));
  // No overlap: keep the first id so the bench still emits rows.
  EXPECT_EQ(ci.reduce({"G9", "G11"}), (std::vector<std::string>{"G9"}));
  EXPECT_EQ(full.reduce({"G1", "G4", "G7"}),
            (std::vector<std::string>{"G1", "G4", "G7"}));
  EXPECT_EQ(ci.dims(), (std::vector<int>{6, 32}));
  EXPECT_EQ(full.dims(), (std::vector<int>{6, 16, 32, 64}));
  EXPECT_LT(ci.kernel_suite().size(), full.kernel_suite().size());
}

TEST(Registry, SortsByOrderThenName) {
  const auto count_before = registered_benches().size();
  const BenchInfo b{"bbb", 20, "t", "r", nullptr};
  const BenchInfo a{"aaa", 20, "t", "r", nullptr};
  const BenchInfo z{"zzz", 10, "t", "r", nullptr};
  register_bench(b);
  register_bench(a);
  register_bench(z);
  const auto all = registered_benches();
  ASSERT_EQ(all.size(), count_before + 3);
  std::vector<std::string> names;
  for (const auto& info : all) names.emplace_back(info.name);
  EXPECT_EQ(names, (std::vector<std::string>{"zzz", "aaa", "bbb"}));
}

TEST(Scale, ParseAndName) {
  Scale s = Scale::kFull;
  EXPECT_TRUE(parse_scale("ci", &s));
  EXPECT_EQ(s, Scale::kCi);
  EXPECT_TRUE(parse_scale("full", &s));
  EXPECT_EQ(s, Scale::kFull);
  EXPECT_FALSE(parse_scale("medium", &s));
  EXPECT_STREQ(scale_name(Scale::kCi), "ci");
  EXPECT_STREQ(scale_name(Scale::kFull), "full");
}

// ---------------------------------------------------------------------------
// expectations helpers

Harness speedup_harness() {
  Harness h("s", "t", "r", Scale::kFull);
  h.add_cycles("G1", "base", 32, 2000);
  h.add_cycles("G1", "ours", 32, 1000);  // 2.0x
  h.add_cycles("G2", "base", 32, 1000);
  h.add_cycles("G2", "ours", 32, 2000);  // 0.5x
  h.add_cycles("G3", "base", 16, 3000);
  h.add_cycles("G3", "ours", 16, 1000);  // 3.0x, different dim
  h.add_status("G4", "base", 32, "oom");  // unpaired, ignored
  h.add_cycles("G4", "ours", 32, 1000);
  return h;
}

TEST(Expectations, SpeedupPairsMatchOnDatasetDimConfig) {
  const Harness h = speedup_harness();
  EXPECT_DOUBLE_EQ(speedup_geomean(h, "base", "ours", 32), 1.0);  // √(2·0.5)
  EXPECT_DOUBLE_EQ(speedup_min(h, "base", "ours", 32), 0.5);
  EXPECT_DOUBLE_EQ(speedup_min(h, "base", "ours", 16), 3.0);
  // dim < 0 pools every dim.
  EXPECT_NEAR(speedup_geomean(h, "base", "ours", -1), std::cbrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(speedup_geomean(h, "base", "missing", -1), 0.0);
}

TEST(Expectations, FindRowWildcards) {
  const Harness h = speedup_harness();
  const Row* r = find_row(h, "G3", "ours");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->dim, 16);
  EXPECT_EQ(find_row(h, "G9", "ours"), nullptr);
  const Row* any = find_row(h, "", "base", 32, "*");
  ASSERT_NE(any, nullptr);
  EXPECT_EQ(any->dataset, "G1");
}

TEST(Expectations, GeAndBandRecordVerdicts) {
  Harness h("x", "t", "r", Scale::kFull);
  EXPECT_TRUE(expect_ge(h, "a", 2.0, 1.5, "speedup"));
  EXPECT_FALSE(expect_ge(h, "b", 1.0, 1.5, "speedup"));
  EXPECT_TRUE(expect_band(h, "c", 1.0, 0.9, 1.1, "share"));
  EXPECT_FALSE(expect_band(h, "d", 1.2, 0.9, 1.1, "share"));
  ASSERT_EQ(h.expectations().size(), 4u);
  EXPECT_EQ(h.expectations()[0].detail,
            "speedup = 2.000 (want >= 1.500)");
  EXPECT_EQ(h.expectations()[3].detail,
            "share = 1.200 (want 0.900..1.100)");
  EXPECT_EQ(h.failed_expectations(), 2);
}

// ---------------------------------------------------------------------------
// EXPERIMENTS.md regeneration

TEST(Experiments, MarkdownTablesFromResultsDoc) {
  Harness h = demo_harness();
  h.expect("demo.bad", false, "broke");
  const Json doc = results_doc({&h}, Scale::kCi, gpusim::default_device());
  const std::string md = experiments_metrics_markdown(doc);
  EXPECT_NE(md.find("| Bench | Metric | Paper | Measured |"),
            std::string::npos);
  EXPECT_NE(md.find("| `demo` | speedup | 6.02 | 1.50 |"), std::string::npos);
  EXPECT_NE(md.find("| `demo` | `demo.ok` | ok | detail |"),
            std::string::npos);
  EXPECT_NE(md.find("| `demo` | `demo.bad` | **FAIL** | broke |"),
            std::string::npos);
}

TEST(Experiments, RewriteMarkerBlockReplacesOnlyTheBlock) {
  const std::string path = ::testing::TempDir() + "/exp_markers.md";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# Title\nkeep above\n\n" << kExperimentsBeginMarker
        << "\nold content\n" << kExperimentsEndMarker << "\nkeep below\n";
  }
  ASSERT_TRUE(rewrite_marker_block(path, "new content\n"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("keep above"), std::string::npos);
  EXPECT_NE(text.find("keep below"), std::string::npos);
  EXPECT_NE(text.find("new content"), std::string::npos);
  EXPECT_EQ(text.find("old content"), std::string::npos);
  // Markers survive, so the rewrite is idempotent.
  ASSERT_TRUE(rewrite_marker_block(path, "third pass\n"));

  // Missing marker pair or missing file → false, file untouched.
  const std::string bare = ::testing::TempDir() + "/no_markers.md";
  {
    std::ofstream out(bare, std::ios::trunc);
    out << "no markers here\n";
  }
  EXPECT_FALSE(rewrite_marker_block(bare, "x"));
  EXPECT_FALSE(rewrite_marker_block(::testing::TempDir() + "/absent.md", "x"));
}

// ---------------------------------------------------------------------------
// percentile (exact nearest-rank; shared with serve::TenantReport)

TEST(Percentile, NearestRankIsExactOnSmallSets) {
  const std::vector<std::uint64_t> xs = {40, 10, 30, 20};  // unsorted input
  // n = 4: rank(p) = ceil(p/100 * 4) -> p50 = rank 2 = 20, p90/p99 = 40.
  EXPECT_EQ(percentile(xs, 50.0), 20u);
  EXPECT_EQ(percentile(xs, 90.0), 40u);
  EXPECT_EQ(percentile(xs, 99.0), 40u);
  EXPECT_EQ(percentile(xs, 100.0), 40u);
  // p -> 0 clamps to the minimum (rank floor 1).
  EXPECT_EQ(percentile(xs, 0.0), 10u);
  EXPECT_EQ(p50(xs), 20u);
  EXPECT_EQ(p99(xs), 40u);

  // Single sample: every percentile is that sample.
  EXPECT_EQ(percentile(std::vector<std::uint64_t>{7}, 99.0), 7u);
  EXPECT_EQ(percentile(std::vector<double>{2.5}, 50.0), 2.5);
}

TEST(Percentile, RankBoundariesAvoidFloatDrift) {
  // n = 100, values 1..100: nearest-rank p99 must be exactly the 99th
  // element, not the 100th — the case a naive ceil(0.99 * 100) gets wrong
  // when the product rounds to 99.00000000000001.
  std::vector<std::uint64_t> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = std::uint64_t(i + 1);
  EXPECT_EQ(percentile(xs, 99.0), 99u);
  EXPECT_EQ(percentile(xs, 50.0), 50u);
  EXPECT_EQ(percentile(xs, 1.0), 1u);
  EXPECT_EQ(percentile(xs, 90.0), 90u);
  // n = 200: p99 -> rank ceil(198) = 198.
  std::vector<std::uint64_t> ys(200);
  for (std::size_t i = 0; i < ys.size(); ++i) ys[i] = std::uint64_t(i + 1);
  EXPECT_EQ(percentile(ys, 99.0), 198u);
  EXPECT_EQ(percentile(ys, 99.5), 199u);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(percentile(std::vector<std::uint64_t>{}, 50.0),
               std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<std::uint64_t>{1}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<std::uint64_t>{1}, 100.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace bench
