// Property tests on the baseline kernels: determinism, occupancy
// declarations, imbalance characterization, and cost sanity across the
// whole dataset suite.
#include <gtest/gtest.h>

#include <vector>

#include "gen/datasets.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "graph/convert.h"
#include "graph/neighbor_group.h"
#include "graph/row_swizzle.h"
#include "kernels/baselines.h"
#include "kernels/gnnone.h"
#include "kernels/reference.h"

namespace gnnone {
namespace {

using namespace baselines;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

TEST(BaselineProps, AllSpmmDeterministic) {
  const Dataset d = make_dataset("G11");
  const Csr csr = coo_to_csr(d.coo);
  const auto ng = build_neighbor_groups(csr);
  const int f = 16;
  const auto ev = random_vec(std::size_t(d.coo.nnz()), 1);
  const auto x = random_vec(std::size_t(d.coo.num_rows) * f, 2);
  std::vector<float> y(x.size());
  const auto& dev = gpusim::default_device();
  EXPECT_EQ(gespmm_spmm(dev, csr, ev, x, f, y).cycles,
            gespmm_spmm(dev, csr, ev, x, f, y).cycles);
  EXPECT_EQ(gnnadvisor_spmm(dev, csr, ng, ev, x, f, y).cycles,
            gnnadvisor_spmm(dev, csr, ng, ev, x, f, y).cycles);
  EXPECT_EQ(nonzero_split_spmm(dev, d.coo, ev, x, f, y).cycles,
            nonzero_split_spmm(dev, d.coo, ev, x, f, y).cycles);
}

TEST(BaselineProps, NonzeroSplitDeclaresRegisterBlowup) {
  // The Yang et al. pathology must show up as declared register pressure:
  // occupancy falls as f grows.
  const Dataset d = make_dataset("G9");
  const auto ev = random_vec(std::size_t(d.coo.nnz()), 3);
  const auto& dev = gpusim::default_device();
  int prev_occupancy = 1 << 20;
  for (int f : {16, 64, 128}) {
    const auto x = random_vec(std::size_t(d.coo.num_rows) * std::size_t(f), 4);
    std::vector<float> y(x.size());
    const auto ks = nonzero_split_spmm(dev, d.coo, ev, x, f, y);
    EXPECT_LE(ks.resident_warps_per_sm, prev_occupancy) << f;
    prev_occupancy = ks.resident_warps_per_sm;
  }
  EXPECT_LE(prev_occupancy, 16);  // collapsed at f=128
}

TEST(BaselineProps, RowSwizzleImprovesSkewedWavePacking) {
  // Sputnik's reordering: on a skewed graph, processing rows longest-first
  // lowers the makespan versus natural order for the same kernel.
  const Dataset d = make_dataset("G4");
  const Csr csr = coo_to_csr(d.coo);
  const int f = 32;
  const auto ev = random_vec(std::size_t(d.coo.nnz()), 5);
  const auto x = random_vec(std::size_t(d.coo.num_rows) * f, 6);
  std::vector<float> y(x.size());
  const auto& dev = gpusim::default_device();

  const RowSwizzle sorted = build_row_swizzle(csr);
  RowSwizzle natural;
  natural.order.resize(std::size_t(csr.num_rows));
  for (vid_t r = 0; r < csr.num_rows; ++r) natural.order[std::size_t(r)] = r;

  const auto with = sputnik_spmm(dev, csr, sorted, ev, x, f, y);
  const auto without = sputnik_spmm(dev, csr, natural, ev, x, f, y);
  EXPECT_LT(with.cycles, without.cycles);
}

TEST(BaselineProps, EdgeParallelBaselinesAreBalanced) {
  // DGL's SDDMM and Yang et al.'s SpMM split NZEs evenly: their makespan
  // should track aggregate work even on the most skewed graph, unlike the
  // vertex-parallel family.
  const Dataset d = make_dataset("G4");
  const Csr csr = coo_to_csr(d.coo);
  const int f = 32;
  const auto x = random_vec(std::size_t(d.coo.num_rows) * f, 7);
  std::vector<float> w(std::size_t(d.coo.nnz()));
  const auto& dev = gpusim::default_device();

  const auto balanced = dgl_sddmm(dev, d.coo, x, x, f, w);
  const auto imbalanced = featgraph_sddmm(dev, csr, x, x, f, w);
  const auto eff = [&](const gpusim::KernelStats& ks) {
    return double(ks.cycles) * dev.num_sms /
           double(ks.totals.issue_cycles + ks.totals.stall_cycles / 12);
  };
  EXPECT_LT(eff(balanced), eff(imbalanced));
}

TEST(BaselineProps, WholeSuiteSpotCheckAgainstReference) {
  // One pass of every SpMM baseline over three structurally different
  // datasets at f=8 — integration-level correctness beyond the small
  // per-kernel sweeps.
  const auto& dev = gpusim::default_device();
  for (const char* id : {"G5", "G10", "G14"}) {
    const Dataset d = make_dataset(id);
    const Csr csr = coo_to_csr(d.coo);
    const auto ng = build_neighbor_groups(csr);
    const auto sw = build_row_swizzle(csr);
    const int f = 8;
    const auto ev = random_vec(std::size_t(d.coo.nnz()), 8);
    const auto x = random_vec(std::size_t(d.coo.num_rows) * f, 9);
    std::vector<float> want(x.size());
    ref::spmm(d.coo, ev, x, f, want);
    auto check = [&](std::span<const float> got, const char* what) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-2f + 1e-3f * std::abs(want[i]))
            << id << " " << what << " at " << i;
      }
    };
    std::vector<float> y(x.size());
    gespmm_spmm(dev, csr, ev, x, f, y);
    check(y, "gespmm");
    cusparse_spmm(dev, csr, ev, x, f, y);
    check(y, "cusparse");
    huang_spmm(dev, csr, ng, ev, x, f, y);
    check(y, "huang");
    sputnik_spmm(dev, csr, sw, ev, x, f, y);
    check(y, "sputnik");
    nonzero_split_spmm(dev, d.coo, ev, x, f, y);
    check(y, "nonzero_split");
  }
}

TEST(BaselineProps, EveryDatasetGeneratesAndValidates) {
  // Full Table-1 coverage: all 19 stand-ins build, validate, and report
  // consistent metadata.
  for (int i = 0; i <= 18; ++i) {
    const std::string id = "G" + std::to_string(i);
    const Dataset d = make_dataset(id);
    validate(d.coo);
    EXPECT_EQ(d.id, id);
    EXPECT_GT(d.paper_vertices, 0);
    // Stand-ins are scaled down (the small citation graphs match within
    // generator rounding).
    EXPECT_GE(double(d.paper_edges) * 1.05, double(d.coo.nnz()));
    EXPECT_GT(d.num_classes, 0);
    // Determinism: regeneration is identical.
    const Dataset again = make_dataset(id);
    EXPECT_EQ(d.coo.row, again.coo.row) << id;
    EXPECT_EQ(d.coo.col, again.coo.col) << id;
    EXPECT_EQ(d.labels, again.labels) << id;
  }
}

}  // namespace
}  // namespace gnnone
