// Layer-level unit tests: GCN normalization math, GIN's injective-sum
// semantics, GAT attention on hand-checkable graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/layers.h"
#include "graph/convert.h"

namespace gnnone {
namespace {

OpContext plain_ctx() {
  OpContext ctx;
  ctx.dev = &gpusim::default_device();
  ctx.training = false;
  return ctx;
}

/// Path graph 0-1-2 (symmetrized).
Coo path3() { return coo_from_edges(3, 3, symmetrize({{0, 1}, {1, 2}})); }

TEST(GcnLayer, SymmetricNormalizationOnPathGraph) {
  // Degrees: 1, 2, 1. Identity weights expose the aggregation itself:
  // out[0] = x[1]/sqrt(1*2), out[1] = x[0]/sqrt(2) + x[2]/sqrt(2).
  const Coo coo = path3();
  SparseEngine engine(Backend::kGnnOne, coo, gpusim::default_device());
  auto ctx = plain_ctx();

  GcnConv conv(engine, 1, 1, /*seed=*/7);
  // Overwrite the Glorot weight/bias with identity/zero for a closed form.
  conv.params()[0]->value.at(0, 0) = 1.0f;
  conv.params()[1]->value.at(0, 0) = 0.0f;

  Tensor x(3, 1);
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 10.0f;
  x.at(2, 0) = 100.0f;
  const VarPtr out = conv.forward(ctx, engine, make_var(x));
  const float s2 = 1.0f / std::sqrt(2.0f);
  EXPECT_NEAR(out->value.at(0, 0), 10.0f * s2, 1e-4f);
  EXPECT_NEAR(out->value.at(1, 0), 1.0f * s2 + 100.0f * s2, 1e-4f);
  EXPECT_NEAR(out->value.at(2, 0), 10.0f * s2, 1e-4f);
}

TEST(GinLayer, SumAggregationPlusSelf) {
  // With identity MLP weights and eps = 0.5 the layer computes
  // relu((1.5 * x + sum_neighbors) * I + 0) * I — check pre-norm output.
  const Coo coo = path3();
  SparseEngine engine(Backend::kGnnOne, coo, gpusim::default_device());
  auto ctx = plain_ctx();

  GinConv conv(1, 1, /*seed=*/9, /*eps=*/0.5f, /*normalize=*/false);
  conv.params()[0]->value.at(0, 0) = 1.0f;  // w1
  conv.params()[1]->value.at(0, 0) = 0.0f;  // b1
  conv.params()[2]->value.at(0, 0) = 1.0f;  // w2
  conv.params()[3]->value.at(0, 0) = 0.0f;  // b2

  Tensor x(3, 1);
  x.at(0, 0) = 2.0f;
  x.at(1, 0) = 4.0f;
  x.at(2, 0) = 8.0f;
  const VarPtr out = conv.forward(ctx, engine, make_var(x));
  EXPECT_NEAR(out->value.at(0, 0), 1.5f * 2 + 4, 1e-4f);
  EXPECT_NEAR(out->value.at(1, 0), 1.5f * 4 + 2 + 8, 1e-4f);
  EXPECT_NEAR(out->value.at(2, 0), 1.5f * 8 + 4, 1e-4f);
}

TEST(GatLayer, UniformScoresGiveMeanAggregation) {
  // With equal attention logits, softmax weights are uniform over incoming
  // edges, so GAT reduces to mean aggregation of h = x * W.
  const Coo coo = coo_from_edges(3, 3, {{0, 1}, {0, 2}});  // vertex 0 <- 1, 2
  SparseEngine engine(Backend::kGnnOne, coo, gpusim::default_device());
  auto ctx = plain_ctx();

  GatConv conv(1, 1, /*seed=*/11);
  conv.params()[0]->value.at(0, 0) = 1.0f;  // W = I
  conv.params()[1]->value.at(0, 0) = 0.0f;  // attn_src = 0 -> equal scores
  conv.params()[2]->value.at(0, 0) = 0.0f;  // attn_dst = 0
  conv.params()[3]->value.at(0, 0) = 0.0f;  // bias

  Tensor x(3, 1);
  x.at(0, 0) = -5.0f;
  x.at(1, 0) = 2.0f;
  x.at(2, 0) = 6.0f;
  const VarPtr out = conv.forward(ctx, engine, make_var(x));
  EXPECT_NEAR(out->value.at(0, 0), (2.0f + 6.0f) / 2.0f, 1e-4f);
  // Vertices with no incoming edges aggregate nothing.
  EXPECT_NEAR(out->value.at(1, 0), 0.0f, 1e-4f);
}

TEST(Layers, ParamCountsMatchArchitecture) {
  const Coo coo = path3();
  SparseEngine engine(Backend::kGnnOne, coo, gpusim::default_device());
  EXPECT_EQ(GcnConv(engine, 8, 4, 1).params().size(), 2u);  // W, b
  EXPECT_EQ(GinConv(8, 4, 1).params().size(), 4u);          // 2-layer MLP
  EXPECT_EQ(GatConv(8, 4, 1).params().size(), 4u);  // W, a_src, a_dst, b
}

TEST(Layers, GlorotIsDeterministicAndBounded) {
  const VarPtr a = glorot(16, 8, 42, "w");
  const VarPtr b = glorot(16, 8, 42, "w");
  const float limit = std::sqrt(6.0f / 24.0f);
  for (std::size_t i = 0; i < std::size_t(a->value.numel()); ++i) {
    EXPECT_EQ(a->value[i], b->value[i]);
    EXPECT_LE(std::abs(a->value[i]), limit);
  }
  EXPECT_TRUE(a->requires_grad);
}

}  // namespace
}  // namespace gnnone
