// Tests for the autotuning subsystem (src/tune): graph signatures, the
// search space, the bit-check eligibility gate, cache serialization
// round-trips, and the Backend::kAuto dispatcher.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gnn/backends.h"
#include "gpusim/device.h"
#include "graph/convert.h"
#include "kernels/reference.h"
#include "tune/tuner.h"

namespace gnnone {
namespace tune {
namespace {

Coo skewed_graph(int scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return rmat_graph(p);
}

// Dense enough that the Poisson degree CV (~1/sqrt(mean degree)) lands in
// the kUniform bucket.
Coo uniform_graph(vid_t n = 600, eid_t m = 9000) {
  return erdos_renyi(n, m, 7);
}

/// Integer-valued operands: sums of small integers are exact in float
/// arithmetic and hence independent of accumulation order, which is what
/// makes a bit-for-bit comparison against the CPU reference meaningful for
/// every kernel family (the same scheme the tuner itself uses).
std::vector<float> int_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(std::int64_t(rng.uniform(9)) - 4);
  return v;
}

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// --- graph signatures -------------------------------------------------------

TEST(TuneSignature, CapturesStructure) {
  const Coo g = skewed_graph();
  const GraphSignature sig = signature_of(g);
  EXPECT_EQ(sig.rows, g.num_rows);
  EXPECT_EQ(sig.cols, g.num_cols);
  EXPECT_EQ(sig.nnz, g.nnz());
  EXPECT_GT(sig.mean_degree, 0.0);
  EXPECT_GE(double(sig.max_degree), sig.mean_degree);
  // RMAT graphs are heavy-tailed; ER graphs are not.
  EXPECT_GE(sig.degree_cv, signature_of(uniform_graph()).degree_cv);
  EXPECT_EQ(signature_of(uniform_graph()).skew, SkewBucket::kUniform);
}

TEST(TuneSignature, KeyIsDeterministicAndDiscriminates) {
  const Coo a = skewed_graph();
  EXPECT_EQ(signature_of(a).key(), signature_of(a).key());
  EXPECT_NE(signature_of(a).key(), signature_of(uniform_graph()).key());
  EXPECT_TRUE(signature_of(a) == signature_of(a));
}

TEST(TuneSignature, DistanceIsZeroOnSelfAndGrowsWithGap) {
  const GraphSignature a = signature_of(skewed_graph());
  const GraphSignature b = signature_of(uniform_graph());
  EXPECT_EQ(signature_distance(a, a), 0.0);
  EXPECT_GT(signature_distance(a, b), 0.0);
  // A mild perturbation must stay closer than a different graph class.
  GraphSignature c = a;
  c.nnz += c.nnz / 10;
  EXPECT_LT(signature_distance(a, c), signature_distance(a, b));
}

// --- the bit-check property over the whole emittable space ------------------

struct OpCase {
  TuneOp op;
  int f;
};

class TuneGrid : public testing::TestWithParam<OpCase> {};

// Every config the tuner can ever emit (all families x their full grids)
// must produce bit-identical output vs the CPU reference. This is the
// eligibility invariant the search relies on.
TEST_P(TuneGrid, EveryEmittableConfigIsBitIdenticalToReference) {
  const TuneOp op = GetParam().op;
  const int f = GetParam().f;
  for (const Coo& g : {skewed_graph(8), uniform_graph()}) {
    const Csr csr = coo_to_csr(g);
    const NeighborGroups ng = build_neighbor_groups(csr);
    const OpInputs in{&g, &csr, &ng};
    const auto nnz = std::size_t(g.nnz());
    const auto ev = int_vec(nnz, 11);
    std::vector<float> x, y, want;
    switch (op) {
      case TuneOp::kSpmm:
        x = int_vec(std::size_t(g.num_cols) * std::size_t(f), 12);
        want.resize(std::size_t(g.num_rows) * std::size_t(f));
        ref::spmm(g, ev, x, f, want);
        break;
      case TuneOp::kSddmm:
        x = int_vec(std::size_t(g.num_rows) * std::size_t(f), 13);
        y = int_vec(std::size_t(g.num_cols) * std::size_t(f), 14);
        want.resize(nnz);
        ref::sddmm(g, x, y, f, want);
        break;
      case TuneOp::kSpmv:
        x = int_vec(std::size_t(g.num_cols), 15);
        want.resize(std::size_t(g.num_rows));
        ref::spmv(g, ev, x, want);
        break;
    }
    int candidates = 0;
    for (KernelFamily fam : families(op)) {
      for (const Candidate& cand : family_grid(op, fam)) {
        EXPECT_NO_THROW(cand.cfg.Validate()) << cand.name(op);
        std::vector<float> out(want.size());
        run_candidate(gpusim::default_device(), cand, op, in, ev, x, y, f,
                      out);
        EXPECT_TRUE(bits_equal(out, want)) << cand.name(op);
        ++candidates;
      }
    }
    EXPECT_GT(candidates, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, TuneGrid,
                         testing::Values(OpCase{TuneOp::kSpmm, 6},
                                         OpCase{TuneOp::kSddmm, 6},
                                         OpCase{TuneOp::kSpmv, 1}));

// --- the search engine ------------------------------------------------------

TEST(Tuner, IsDeterministicAndNeverLosesToAnyFamilyDefault) {
  const Coo g = skewed_graph();
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  for (TuneOp op : {TuneOp::kSpmm, TuneOp::kSddmm, TuneOp::kSpmv}) {
    const TuneReport a = tune_op(dev, g, op, 6);
    const TuneReport b = tune_op(dev, g, op, 6);
    EXPECT_EQ(a.best.candidate.name(op), b.best.candidate.name(op));
    EXPECT_EQ(a.best.cycles, b.best.cycles);
    EXPECT_TRUE(a.best.bit_checked);
    EXPECT_GT(a.default_cycles, 0u);
    // The GNNOne default is always fully evaluated and eligible, so the
    // winner can at worst tie it — same for every other family default.
    EXPECT_LE(a.best.cycles, a.default_cycles);
  }
}

TEST(Tuner, ExhaustiveAndGreedyAgreeOnEligibility) {
  const Coo g = uniform_graph(300, 1500);
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuneOptions ex;
  ex.mode = TuneOptions::Mode::kExhaustive;
  TuneOptions gr;
  gr.mode = TuneOptions::Mode::kGreedy;
  const TuneReport a = tune_op(dev, g, TuneOp::kSpmm, 6, ex);
  const TuneReport b = tune_op(dev, g, TuneOp::kSpmm, 6, gr);
  EXPECT_TRUE(a.exhaustive);
  EXPECT_FALSE(b.exhaustive);
  // Exhaustive sees a superset of candidates: it can only do better.
  EXPECT_LE(a.best.cycles, b.best.cycles);
  EXPECT_GT(b.evaluated_probe, 0);
  EXPECT_LT(b.evaluated_full, a.evaluated_full);
}

TEST(Tuner, RejectsNonCsrArrangedGraphs) {
  Coo g;
  g.num_rows = g.num_cols = 4;
  g.row = {2, 0};  // out of order
  g.col = {1, 1};
  EXPECT_THROW(tune_op(gpusim::default_device(), g, TuneOp::kSpmm, 4),
               std::invalid_argument);
}

// --- the persistent cache ---------------------------------------------------

TEST(TuningCache, SaveLoadDispatchRoundTripsToSameDecisions) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuningCache cache;
  std::vector<TuneReport> reps;
  for (const Coo& g : {skewed_graph(8), uniform_graph()}) {
    for (TuneOp op : {TuneOp::kSpmm, TuneOp::kSddmm}) {
      reps.push_back(tune_into(cache, dev, g, op, 6));
    }
  }
  EXPECT_EQ(cache.size(), reps.size());

  const std::string path = testing::TempDir() + "/tune_cache_roundtrip.json";
  ASSERT_TRUE(cache.save(path));
  const auto loaded = TuningCache::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), cache.size());
  for (const TuneReport& rep : reps) {
    const TuneDecision* d = loaded->lookup(rep.key);
    ASSERT_NE(d, nullptr) << rep.key.str();
    EXPECT_EQ(d->candidate.name(rep.key.op),
              rep.best.candidate.name(rep.key.op));
    EXPECT_EQ(d->cycles, rep.best.cycles);
    EXPECT_TRUE(d->bit_checked);
  }
  // Byte determinism: dumping the loaded cache reproduces the original
  // document exactly.
  EXPECT_EQ(cache.to_json().dump(2), loaded->to_json().dump(2));
}

TEST(TuningCache, NearestSignatureFallback) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const Coo g = skewed_graph();
  TuningCache cache;
  const TuneReport rep = tune_into(cache, dev, g, TuneOp::kSpmm, 6);

  // A structurally similar graph (same class, slightly different size)
  // misses exactly but lands on the cached entry via the fallback.
  TuneKey near = rep.key;
  near.signature.nnz += near.signature.nnz / 20;
  near.signature.rows += 32;
  EXPECT_EQ(cache.lookup(near), nullptr);
  const TuneDecision* d = cache.lookup_nearest(near);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->candidate.name(TuneOp::kSpmm),
            rep.best.candidate.name(TuneOp::kSpmm));
  // A different op or an impossibly tight distance budget must not match.
  TuneKey other = near;
  other.op = TuneOp::kSddmm;
  EXPECT_EQ(cache.lookup_nearest(other), nullptr);
  EXPECT_EQ(cache.lookup_nearest(near, /*max_distance=*/0.0), nullptr);
}

TEST(TuningCache, RejectsWrongSchemaAndMalformedEntries) {
  TuningCache cache;
  util::Json doc = cache.to_json();
  doc.set("version", util::Json(kCacheSchemaVersion + 1));
  EXPECT_THROW(TuningCache::from_json(doc), util::JsonError);

  const std::string path = testing::TempDir() + "/tune_cache_bad.json";
  EXPECT_FALSE(TuningCache::load(path + ".does_not_exist").has_value());
}

// --- robust loading (load_or_empty never throws) ----------------------------

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

}  // namespace

TEST(TuningCache, LoadOrEmptyMissingFileIsSilentColdStart) {
  std::string warning = "stale";
  const TuningCache cache = TuningCache::load_or_empty(
      testing::TempDir() + "/no_such_cache.json", &warning);
  EXPECT_TRUE(cache.empty());
  EXPECT_TRUE(warning.empty());  // missing is normal, not a corruption
}

TEST(TuningCache, LoadOrEmptyRoundTripsAValidFile) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuningCache cache;
  tune_into(cache, dev, skewed_graph(8), TuneOp::kSpmm, 6);
  const std::string path = testing::TempDir() + "/tune_cache_ok.json";
  ASSERT_TRUE(cache.save(path));

  std::string warning;
  const TuningCache loaded = TuningCache::load_or_empty(path, &warning);
  EXPECT_TRUE(warning.empty()) << warning;
  EXPECT_EQ(loaded.size(), cache.size());
}

TEST(TuningCache, LoadOrEmptyDegradesByteLevelCorruptionToEmpty) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuningCache cache;
  tune_into(cache, dev, skewed_graph(8), TuneOp::kSpmm, 6);
  const std::string path = testing::TempDir() + "/tune_cache_corrupt.json";
  ASSERT_TRUE(cache.save(path));
  const std::string good = slurp(path);
  ASSERT_FALSE(good.empty());

  // Truncation: a crash mid-save leaves half a document.
  spit(path, good.substr(0, good.size() / 2));
  std::string warning;
  EXPECT_TRUE(TuningCache::load_or_empty(path, &warning).empty());
  EXPECT_NE(warning.find("ignored"), std::string::npos) << warning;

  // Byte flip inside the document body: structurally invalid JSON.
  std::string flipped = good;
  flipped[flipped.size() / 2] = '\x01';
  spit(path, flipped);
  warning.clear();
  EXPECT_TRUE(TuningCache::load_or_empty(path, &warning).empty());
  EXPECT_FALSE(warning.empty());

  // Garbage that is not JSON at all.
  spit(path, "\xff\xfe not json");
  EXPECT_TRUE(TuningCache::load_or_empty(path, &warning).empty());
  EXPECT_FALSE(warning.empty());
}

TEST(TuningCache, LoadOrEmptyDegradesVersionMismatchToEmptyWithWarning) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuningCache cache;
  tune_into(cache, dev, skewed_graph(8), TuneOp::kSpmm, 6);
  util::Json doc = cache.to_json();
  doc.set("version", util::Json(kCacheSchemaVersion + 1));
  const std::string path = testing::TempDir() + "/tune_cache_future.json";
  spit(path, doc.dump() + "\n");

  std::string warning;
  const TuningCache loaded = TuningCache::load_or_empty(path, &warning);
  EXPECT_TRUE(loaded.empty());
  EXPECT_NE(warning.find("unsupported version"), std::string::npos) << warning;

  // Null warning sink: must still not throw.
  EXPECT_TRUE(TuningCache::load_or_empty(path).empty());
}

TEST(AutoBackend, DispatchSurvivesACorruptCacheFile) {
  // End to end: a corrupt cache file degrades to heuristic dispatch instead
  // of throwing out of Backend::kAuto.
  const std::string path = testing::TempDir() + "/tune_cache_dispatch.json";
  spit(path, "{\"schema\": \"gnnone-tuning-cache\", \"versi");  // truncated
  std::string warning;
  const TuningCache cache = TuningCache::load_or_empty(path, &warning);
  EXPECT_FALSE(warning.empty());

  const Coo g = skewed_graph(8);
  SparseEngine engine(Backend::kAuto, g, gpusim::default_device());
  engine.set_tuning_cache(&cache);  // empty: every lookup misses
  const Candidate c = engine.auto_candidate(engine.coo(), TuneOp::kSpmm, 6);
  EXPECT_FALSE(c.name(TuneOp::kSpmm).empty());
}

// --- the Backend::kAuto dispatcher ------------------------------------------

TEST(AutoBackend, WarmCacheDispatchMatchesTunedDecision) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const Coo g = skewed_graph();
  TuningCache cache;
  const TuneReport spmm_rep = tune_into(cache, dev, g, TuneOp::kSpmm, 6);
  const TuneReport sddmm_rep = tune_into(cache, dev, g, TuneOp::kSddmm, 6);

  SparseEngine engine(Backend::kAuto, g, dev);
  engine.set_tuning_cache(&cache);
  EXPECT_EQ(engine.auto_candidate(engine.coo(), TuneOp::kSpmm, 6)
                .name(TuneOp::kSpmm),
            spmm_rep.best.candidate.name(TuneOp::kSpmm));
  EXPECT_EQ(engine.auto_candidate(engine.coo(), TuneOp::kSddmm, 6)
                .name(TuneOp::kSddmm),
            sddmm_rep.best.candidate.name(TuneOp::kSddmm));
}

TEST(AutoBackend, ComputesTheSameMathAsGnnOne) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const Coo g = skewed_graph(8);
  const int f = 6;
  TuningCache cache;
  tune_into(cache, dev, g, TuneOp::kSpmm, f);
  tune_into(cache, dev, g, TuneOp::kSddmm, f);

  CycleLedger ledger_a, ledger_b;
  OpContext ctx_a{&dev, &ledger_a, false};
  OpContext ctx_b{&dev, &ledger_b, false};
  SparseEngine fixed(Backend::kGnnOne, g, dev);
  SparseEngine tuned(Backend::kAuto, g, dev);
  tuned.set_tuning_cache(&cache);

  // Integer operands again: whatever kernels the dispatcher picks, the
  // forward values must be bit-identical to the fixed backend's.
  const auto xs = int_vec(std::size_t(g.num_cols) * std::size_t(f), 21);
  const VarPtr xa = make_var(Tensor::from(g.num_cols, f, xs), false);
  const VarPtr xb = make_var(Tensor::from(g.num_cols, f, xs), false);
  const VarPtr ya = fixed.spmm(ctx_a, nullptr, xa);
  const VarPtr yb = tuned.spmm(ctx_b, nullptr, xb);
  EXPECT_TRUE(bits_equal(ya->value.flat(), yb->value.flat()));
  EXPECT_GT(ledger_b.total(), 0u);
  // Format freedom costs memory: kAuto keeps every format resident.
  EXPECT_GT(tuned.graph_bytes(), fixed.graph_bytes());
}

TEST(AutoBackend, ColdMissHeuristicAndOnlineTune) {
  const gpusim::DeviceSpec& dev = gpusim::default_device();
  const Coo uni = uniform_graph();
  SparseEngine cold(Backend::kAuto, uni, dev);
  // No cache at all: the structural heuristic picks vertex-parallel for the
  // near-uniform graph's SpMM and the GNNOne default for SDDMM.
  EXPECT_EQ(cold.auto_candidate(cold.coo(), TuneOp::kSpmm, 6).family,
            KernelFamily::kVertexParallel);
  EXPECT_EQ(cold.auto_candidate(cold.coo(), TuneOp::kSddmm, 6).family,
            KernelFamily::kGnnOne);

  // Online tuning replaces the heuristic with a real tuned decision and
  // remembers it for the rest of the session.
  SparseEngine online(Backend::kAuto, uni, dev);
  online.set_online_tune(true);
  const TuneReport want = tune_op(dev, uni, TuneOp::kSpmm, 6);
  EXPECT_EQ(online.auto_candidate(online.coo(), TuneOp::kSpmm, 6)
                .name(TuneOp::kSpmm),
            want.best.candidate.name(TuneOp::kSpmm));
  EXPECT_EQ(online.auto_candidate(online.coo(), TuneOp::kSpmm, 6)
                .name(TuneOp::kSpmm),
            want.best.candidate.name(TuneOp::kSpmm));
}

}  // namespace
}  // namespace tune
}  // namespace gnnone
