// Tests for the feature cache and the request-batching inference driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "graph/convert.h"
#include "serve/server.h"

namespace gnnone {
namespace {

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

TEST(FeatureCache, AlphaZeroMissesEverything) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const FeatureCache cache(ds.coo, 16, 0.0, dev);
  EXPECT_EQ(cache.num_cached(), 0);
  const std::vector<vid_t> vs = {0, 1, 2, 100};
  CycleLedger cycles;
  MemoryLedger bytes;
  const GatherStats st = cache.gather(vs, &cycles, &bytes);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, vs.size());
  EXPECT_EQ(st.hit_bytes, 0u);
  EXPECT_EQ(st.miss_bytes, vs.size() * 16 * 4);
  EXPECT_EQ(bytes.by_tag("feature_cache_miss"), st.miss_bytes);
  EXPECT_EQ(cycles.by_tag("feature_gather"), st.cycles);
}

TEST(FeatureCache, AlphaOneHitsEverything) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const FeatureCache cache(ds.coo, 16, 1.0, dev);
  EXPECT_EQ(cache.num_cached(), ds.coo.num_rows);
  const std::vector<vid_t> vs = {0, 5, 9999};
  const GatherStats st = cache.gather(vs, nullptr, nullptr);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.hits, vs.size());
}

TEST(FeatureCache, HitsAreMonotoneInAlpha) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  // A fixed vertex sample; every vertex cached at alpha stays cached at any
  // larger alpha (degree order is a fixed total order), so hits are
  // monotone and gather cycles monotone non-increasing (PCIe is slower).
  std::vector<vid_t> vs;
  for (vid_t v = 0; v < ds.coo.num_rows; v += 37) vs.push_back(v);
  std::uint64_t prev_hits = 0;
  std::uint64_t prev_cycles = ~0ull;
  for (double alpha : {0.0, 0.05, 0.25, 0.5, 0.75, 1.0}) {
    const FeatureCache cache(ds.coo, 16, alpha, dev);
    const GatherStats st = cache.gather(vs, nullptr, nullptr);
    EXPECT_GE(st.hits, prev_hits) << "alpha=" << alpha;
    EXPECT_LE(st.cycles, prev_cycles) << "alpha=" << alpha;
    prev_hits = st.hits;
    prev_cycles = st.cycles;
  }
  EXPECT_EQ(prev_hits, vs.size());  // alpha = 1 hit everything
}

TEST(FeatureCache, PrefersHighDegreeVertices) {
  // Star graph: vertex 0 has degree 4, the rest degree 1.
  const Coo star = coo_from_edges(
      5, 5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto dev = test_device();
  const FeatureCache cache(star, 8, 0.2, dev);
  EXPECT_EQ(cache.num_cached(), 1);
  EXPECT_TRUE(cache.cached(0));
  EXPECT_FALSE(cache.cached(1));
}

ServeOptions small_opts() {
  ServeOptions o;
  o.model_kind = "gcn";
  o.batch_size = 4;
  o.fanouts = {6, 3};
  o.cache_alpha = 0.1;
  o.feature_dim_override = 16;
  o.backend = Backend::kGnnOne;
  o.seed = 3;
  return o;
}

std::vector<SeedRequest> small_trace(const Dataset& ds, int n = 14) {
  RequestTraceOptions ro;
  ro.num_requests = n;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.5;
  ro.seed = 21;
  return make_request_trace(ds.coo, ro);
}

TEST(InferenceServer, ReportIsConsistent) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const ServeOptions opts = small_opts();
  const InferenceServer server(ds, dev, opts);
  const auto reqs = small_trace(ds);
  const ServingReport rep = server.serve(reqs);

  EXPECT_EQ(rep.num_requests, int(reqs.size()));
  EXPECT_EQ(rep.num_batches,
            int((reqs.size() + 3) / std::size_t(opts.batch_size)));
  EXPECT_EQ(rep.batches.size(), std::size_t(rep.num_batches));

  // Every request got one prediction per seed, in class range.
  ASSERT_EQ(rep.predictions.size(), reqs.size());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    ASSERT_EQ(rep.predictions[r].size(), reqs[r].seeds.size());
    for (int c : rep.predictions[r]) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, ds.num_classes);
    }
  }

  // Stage cycles add up and match the ledger's view. Gather traffic is
  // deduplicated across the batch's per-request blocks.
  std::uint64_t batch_sum = 0;
  std::uint64_t hits = 0, misses = 0;
  for (const BatchStats& b : rep.batches) {
    EXPECT_EQ(b.cycles, b.sample_cycles + b.gather.cycles + b.forward_cycles);
    EXPECT_EQ(b.gather.hits + b.gather.misses,
              std::uint64_t(b.num_unique_vertices));
    EXPECT_LE(b.num_unique_vertices, b.num_vertices);
    EXPECT_GE(b.num_vertices, b.num_seeds);
    // Serial mode: a batch's latency is exactly its own work.
    EXPECT_EQ(b.latency_cycles, b.cycles);
    batch_sum += b.cycles;
    hits += b.gather.hits;
    misses += b.gather.misses;
  }
  EXPECT_FALSE(rep.pipelined);
  EXPECT_EQ(rep.total_cycles, batch_sum);
  EXPECT_EQ(rep.serial_cycles, rep.total_cycles);
  EXPECT_EQ(rep.total_cycles, rep.ledger.total());
  EXPECT_EQ(rep.cache_hits, hits);
  EXPECT_EQ(rep.cache_misses, misses);
  EXPECT_EQ(rep.ledger.by_tag("sample"), rep.sample_cycles);
  EXPECT_EQ(rep.ledger.by_tag("feature_gather"), rep.gather_cycles);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_hit"), rep.cache_hit_bytes);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_miss"), rep.cache_miss_bytes);
  EXPECT_GE(rep.max_batch_cycles,
            rep.total_cycles / std::uint64_t(rep.num_batches));
  EXPECT_GT(rep.forward_cycles, 0u);

  // Serial timeline: three spans per batch, everything exposed.
  ASSERT_EQ(rep.timeline.size(), 3 * std::size_t(rep.num_batches));
  for (const StageSpan& s : rep.timeline) {
    EXPECT_EQ(s.exposed, s.cycles());
    EXPECT_EQ(s.overlapped, 0u);
  }
  EXPECT_EQ(rep.sample_split.cycles, rep.sample_cycles);
  EXPECT_EQ(rep.gather_split.cycles, rep.gather_cycles);
  EXPECT_EQ(rep.forward_split.cycles, rep.forward_cycles);
  EXPECT_EQ(rep.sample_split.overlapped, 0u);
}

TEST(InferenceServer, ServingIsDeterministic) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const InferenceServer server(ds, dev, small_opts());
  const auto reqs = small_trace(ds);
  const ServingReport a = server.serve(reqs);
  const ServingReport b = server.serve(reqs);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(InferenceServer, BackendChangesCostNotPredictions) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = small_trace(ds, 6);
  ServeOptions a = small_opts();
  a.backend = Backend::kGnnOne;
  ServeOptions b = small_opts();
  b.backend = Backend::kAuto;
  const ServingReport ra = InferenceServer(ds, dev, a).serve(reqs);
  const ServingReport rb = InferenceServer(ds, dev, b).serve(reqs);
  // All backends compute identical math; only modeled cycles may differ.
  EXPECT_EQ(ra.predictions, rb.predictions);
  EXPECT_EQ(ra.cache_hits, rb.cache_hits);
}

// Regression for the batch-seed bug: the sampler used to be seeded with
// opts.seed + batch_index, so a request's prediction depended on which
// batch it landed in and changed with batch_size. Requests are now sampled
// independently (streams derived from the trace seed alone) and batched
// block-diagonally, so predictions are a pure function of the request.
TEST(InferenceServer, PredictionsAreBatchSizeInvariant) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = small_trace(ds);
  for (const char* kind : {"gcn", "gat"}) {
    ServeOptions base = small_opts();
    base.model_kind = kind;
    std::vector<std::vector<std::vector<int>>> preds;
    for (int bsz : {1, 3, 5, int(reqs.size())}) {
      ServeOptions o = base;
      o.batch_size = bsz;
      preds.push_back(InferenceServer(ds, dev, o).serve(reqs).predictions);
      EXPECT_EQ(preds.back(), preds.front())
          << kind << ": batch_size=" << bsz << " changed predictions";
    }
  }
}

TEST(InferenceServer, DuplicateRequestsGetIdenticalPredictions) {
  // Two requests with the same seed set must predict identically no matter
  // where in the trace (and therefore in which batch) they sit.
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  auto reqs = small_trace(ds);
  reqs.push_back(reqs.front());  // duplicate of request 0, last batch
  const ServingReport rep = InferenceServer(ds, dev, small_opts()).serve(reqs);
  EXPECT_EQ(rep.predictions.front(), rep.predictions.back());
}

TEST(InferenceServer, PipelinedMatchesSerialBitIdentically) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = small_trace(ds);  // 14 requests, batch 4 -> 4 batches
  ServeOptions serial = small_opts();
  ServeOptions piped = small_opts();
  piped.pipeline = true;
  const ServingReport rs = InferenceServer(ds, dev, serial).serve(reqs);
  const ServingReport rp = InferenceServer(ds, dev, piped).serve(reqs);

  // The pipeline reorders the schedule, never the computation.
  EXPECT_EQ(rs.predictions, rp.predictions);
  EXPECT_EQ(rs.ledger.total(), rp.ledger.total());
  EXPECT_EQ(rs.sample_cycles, rp.sample_cycles);
  EXPECT_EQ(rs.gather_cycles, rp.gather_cycles);
  EXPECT_EQ(rs.forward_cycles, rp.forward_cycles);
  EXPECT_EQ(rs.cache_hits, rp.cache_hits);
  EXPECT_EQ(rs.total_cycles, rs.serial_cycles);
  EXPECT_EQ(rp.serial_cycles, rs.serial_cycles);

  // Overlap helps on this multi-batch fixture and never hurts.
  EXPECT_TRUE(rp.pipelined);
  EXPECT_LT(rp.total_cycles, rs.total_cycles);
  // The saving is bounded by the work available to hide.
  EXPECT_LE(rs.total_cycles - rp.total_cycles,
            rp.sample_cycles + rp.gather_cycles);
}

TEST(InferenceServer, PipelinedTimelineInvariants) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = small_trace(ds);
  ServeOptions o = small_opts();
  o.pipeline = true;
  const ServingReport rep = InferenceServer(ds, dev, o).serve(reqs);

  // Per span and per stage: exposed + overlapped == cycles.
  ASSERT_EQ(rep.timeline.size(), 3 * std::size_t(rep.num_batches));
  for (const StageSpan& s : rep.timeline) {
    EXPECT_EQ(s.exposed + s.overlapped, s.cycles());
  }
  for (const StageSplit& split :
       {rep.sample_split, rep.gather_split, rep.forward_split}) {
    EXPECT_EQ(split.exposed + split.overlapped, split.cycles);
  }
  EXPECT_EQ(rep.sample_split.cycles, rep.sample_cycles);
  EXPECT_EQ(rep.gather_split.cycles, rep.gather_cycles);
  EXPECT_EQ(rep.forward_split.cycles, rep.forward_cycles);

  // Every busy cycle is attributed exactly once: exposed sums to the
  // makespan, which is what the report quotes as total_cycles.
  EXPECT_EQ(rep.sample_split.exposed + rep.gather_split.exposed +
                rep.forward_split.exposed,
            rep.total_cycles);
  // The forward stream runs its batches back to back at best.
  EXPECT_GE(rep.total_cycles, rep.forward_cycles);
  EXPECT_LE(rep.total_cycles, rep.serial_cycles);
  // The device never hides behind the host in this model.
  EXPECT_EQ(rep.forward_split.overlapped, 0u);

  // Per-batch latency is the batch's critical path: at least its own work,
  // and max_batch_cycles tracks the slowest one.
  std::uint64_t max_latency = 0;
  for (std::size_t b = 0; b < rep.batches.size(); ++b) {
    const BatchStats& bs = rep.batches[b];
    EXPECT_GE(bs.latency_cycles, bs.cycles);
    EXPECT_EQ(bs.latency_cycles,
              rep.timeline[3 * b + 2].end - rep.timeline[3 * b].start);
    max_latency = std::max(max_latency, bs.latency_cycles);
  }
  EXPECT_EQ(rep.max_batch_cycles, max_latency);
}

TEST(ServeTimeline, MakespanMatchesHandComputedSchedule) {
  // Three equal batches: sample 10, gather 5, forward 100.
  //
  // Pipelined, by hand:  s0 0-10, g0 10-15, f0 15-115
  //                      s1 10-20, g1 20-25, f1 115-215
  //                      s2 115-125 (slot frees when f0 retires),
  //                      g2 125-130, f2 215-315
  // Makespan 315 vs 345 serial; the only exposed host work is s0 and g0
  // (the pipeline fill) — every later sample/gather hides under a forward.
  const std::vector<BatchStageCycles> batches = {
      {10, 5, 100}, {10, 5, 100}, {10, 5, 100}};

  const StreamTimeline serial = serve_timeline(batches, /*pipelined=*/false);
  EXPECT_EQ(serial.makespan(), 345u);
  for (const StageSpan& s : serial.spans()) {
    EXPECT_EQ(s.exposed, s.cycles());
    EXPECT_EQ(s.overlapped, 0u);
  }

  const StreamTimeline tl = serve_timeline(batches, /*pipelined=*/true);
  ASSERT_EQ(tl.spans().size(), 9u);
  EXPECT_EQ(tl.makespan(), 315u);

  const auto expect_span = [&](std::size_t i, std::uint64_t start,
                               std::uint64_t end, std::uint64_t exposed) {
    EXPECT_EQ(tl.span(i).start, start) << "span " << i;
    EXPECT_EQ(tl.span(i).end, end) << "span " << i;
    EXPECT_EQ(tl.span(i).exposed, exposed) << "span " << i;
    EXPECT_EQ(tl.span(i).overlapped, tl.span(i).cycles() - exposed)
        << "span " << i;
  };
  // batch 0: the pipeline fill is exposed.
  expect_span(0, 0, 10, 10);     // sample 0
  expect_span(1, 10, 15, 5);     // gather 0 (beats sample 1 on priority)
  expect_span(2, 15, 115, 100);  // forward 0
  // batch 1: sample/gather fully hidden under gather 0 / forward 0.
  expect_span(3, 10, 20, 0);
  expect_span(4, 20, 25, 0);
  expect_span(5, 115, 215, 100);
  // batch 2: waits for batch 0's slot, hides under forward 1.
  expect_span(6, 115, 125, 0);
  expect_span(7, 125, 130, 0);
  expect_span(8, 215, 315, 100);

  // Sum of exposed across all spans is the makespan.
  std::uint64_t exposed = 0;
  for (const StageSpan& s : tl.spans()) exposed += s.exposed;
  EXPECT_EQ(exposed, tl.makespan());
}

TEST(InferenceServer, CacheAlphaCutsGatherCyclesOnSkewedTraffic) {
  const Dataset ds = make_dataset("G4");  // power-law stand-in
  const auto dev = test_device();
  const auto reqs = small_trace(ds);
  ServeOptions cold = small_opts();
  cold.cache_alpha = 0.0;
  ServeOptions warm = small_opts();
  warm.cache_alpha = 0.25;
  const ServingReport rc = InferenceServer(ds, dev, cold).serve(reqs);
  const ServingReport rw = InferenceServer(ds, dev, warm).serve(reqs);
  EXPECT_EQ(rc.cache_hits, 0u);
  EXPECT_GT(rw.cache_hits, 0u);
  EXPECT_LT(rw.gather_cycles, rc.gather_cycles);
  // Sampling and forward are cache-independent.
  EXPECT_EQ(rc.sample_cycles, rw.sample_cycles);
  EXPECT_EQ(rc.forward_cycles, rw.forward_cycles);
}

}  // namespace
}  // namespace gnnone
