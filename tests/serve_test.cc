// Tests for the feature cache and the request-batching inference driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "graph/convert.h"
#include "serve/server.h"

namespace gnnone {
namespace {

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

TEST(FeatureCache, AlphaZeroMissesEverything) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const FeatureCache cache(ds.coo, 16, 0.0, dev);
  EXPECT_EQ(cache.num_cached(), 0);
  const std::vector<vid_t> vs = {0, 1, 2, 100};
  CycleLedger cycles;
  MemoryLedger bytes;
  const GatherStats st = cache.gather(vs, &cycles, &bytes);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, vs.size());
  EXPECT_EQ(st.hit_bytes, 0u);
  EXPECT_EQ(st.miss_bytes, vs.size() * 16 * 4);
  EXPECT_EQ(bytes.by_tag("feature_cache_miss"), st.miss_bytes);
  EXPECT_EQ(cycles.by_tag("feature_gather"), st.cycles);
}

TEST(FeatureCache, AlphaOneHitsEverything) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const FeatureCache cache(ds.coo, 16, 1.0, dev);
  EXPECT_EQ(cache.num_cached(), ds.coo.num_rows);
  const std::vector<vid_t> vs = {0, 5, 9999};
  const GatherStats st = cache.gather(vs, nullptr, nullptr);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.hits, vs.size());
}

TEST(FeatureCache, HitsAreMonotoneInAlpha) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  // A fixed vertex sample; every vertex cached at alpha stays cached at any
  // larger alpha (degree order is a fixed total order), so hits are
  // monotone and gather cycles monotone non-increasing (PCIe is slower).
  std::vector<vid_t> vs;
  for (vid_t v = 0; v < ds.coo.num_rows; v += 37) vs.push_back(v);
  std::uint64_t prev_hits = 0;
  std::uint64_t prev_cycles = ~0ull;
  for (double alpha : {0.0, 0.05, 0.25, 0.5, 0.75, 1.0}) {
    const FeatureCache cache(ds.coo, 16, alpha, dev);
    const GatherStats st = cache.gather(vs, nullptr, nullptr);
    EXPECT_GE(st.hits, prev_hits) << "alpha=" << alpha;
    EXPECT_LE(st.cycles, prev_cycles) << "alpha=" << alpha;
    prev_hits = st.hits;
    prev_cycles = st.cycles;
  }
  EXPECT_EQ(prev_hits, vs.size());  // alpha = 1 hit everything
}

TEST(FeatureCache, PrefersHighDegreeVertices) {
  // Star graph: vertex 0 has degree 4, the rest degree 1.
  const Coo star = coo_from_edges(
      5, 5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto dev = test_device();
  const FeatureCache cache(star, 8, 0.2, dev);
  EXPECT_EQ(cache.num_cached(), 1);
  EXPECT_TRUE(cache.cached(0));
  EXPECT_FALSE(cache.cached(1));
}

ServeOptions small_opts() {
  ServeOptions o;
  o.model_kind = "gcn";
  o.batch_size = 4;
  o.fanouts = {6, 3};
  o.cache_alpha = 0.1;
  o.feature_dim_override = 16;
  o.backend = Backend::kGnnOne;
  o.seed = 3;
  return o;
}

std::vector<SeedRequest> small_trace(const Dataset& ds, int n = 14) {
  RequestTraceOptions ro;
  ro.num_requests = n;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.5;
  ro.seed = 21;
  return make_request_trace(ds.coo, ro);
}

TEST(InferenceServer, ReportIsConsistent) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const ServeOptions opts = small_opts();
  const InferenceServer server(ds, dev, opts);
  const auto reqs = small_trace(ds);
  const ServingReport rep = server.serve(reqs);

  EXPECT_EQ(rep.num_requests, int(reqs.size()));
  EXPECT_EQ(rep.num_batches,
            int((reqs.size() + 3) / std::size_t(opts.batch_size)));
  EXPECT_EQ(rep.batches.size(), std::size_t(rep.num_batches));

  // Every request got one prediction per seed, in class range.
  ASSERT_EQ(rep.predictions.size(), reqs.size());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    ASSERT_EQ(rep.predictions[r].size(), reqs[r].seeds.size());
    for (int c : rep.predictions[r]) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, ds.num_classes);
    }
  }

  // Stage cycles add up and match the ledger's view.
  std::uint64_t batch_sum = 0;
  std::uint64_t hits = 0, misses = 0;
  for (const BatchStats& b : rep.batches) {
    EXPECT_EQ(b.cycles, b.sample_cycles + b.gather.cycles + b.forward_cycles);
    EXPECT_EQ(b.gather.hits + b.gather.misses, std::uint64_t(b.num_vertices));
    batch_sum += b.cycles;
    hits += b.gather.hits;
    misses += b.gather.misses;
  }
  EXPECT_EQ(rep.total_cycles, batch_sum);
  EXPECT_EQ(rep.cache_hits, hits);
  EXPECT_EQ(rep.cache_misses, misses);
  EXPECT_EQ(rep.ledger.by_tag("sample"), rep.sample_cycles);
  EXPECT_EQ(rep.ledger.by_tag("feature_gather"), rep.gather_cycles);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_hit"), rep.cache_hit_bytes);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_miss"), rep.cache_miss_bytes);
  EXPECT_GE(rep.max_batch_cycles,
            rep.total_cycles / std::uint64_t(rep.num_batches));
  EXPECT_GT(rep.forward_cycles, 0u);
}

TEST(InferenceServer, ServingIsDeterministic) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const InferenceServer server(ds, dev, small_opts());
  const auto reqs = small_trace(ds);
  const ServingReport a = server.serve(reqs);
  const ServingReport b = server.serve(reqs);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(InferenceServer, BackendChangesCostNotPredictions) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = small_trace(ds, 6);
  ServeOptions a = small_opts();
  a.backend = Backend::kGnnOne;
  ServeOptions b = small_opts();
  b.backend = Backend::kAuto;
  const ServingReport ra = InferenceServer(ds, dev, a).serve(reqs);
  const ServingReport rb = InferenceServer(ds, dev, b).serve(reqs);
  // All backends compute identical math; only modeled cycles may differ.
  EXPECT_EQ(ra.predictions, rb.predictions);
  EXPECT_EQ(ra.cache_hits, rb.cache_hits);
}

TEST(InferenceServer, CacheAlphaCutsGatherCyclesOnSkewedTraffic) {
  const Dataset ds = make_dataset("G4");  // power-law stand-in
  const auto dev = test_device();
  const auto reqs = small_trace(ds);
  ServeOptions cold = small_opts();
  cold.cache_alpha = 0.0;
  ServeOptions warm = small_opts();
  warm.cache_alpha = 0.25;
  const ServingReport rc = InferenceServer(ds, dev, cold).serve(reqs);
  const ServingReport rw = InferenceServer(ds, dev, warm).serve(reqs);
  EXPECT_EQ(rc.cache_hits, 0u);
  EXPECT_GT(rw.cache_hits, 0u);
  EXPECT_LT(rw.gather_cycles, rc.gather_cycles);
  // Sampling and forward are cache-independent.
  EXPECT_EQ(rc.sample_cycles, rw.sample_cycles);
  EXPECT_EQ(rc.forward_cycles, rw.forward_cycles);
}

}  // namespace
}  // namespace gnnone
