// Tests for the k-hop neighbor sampler and induced-subgraph extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gen/rmat.h"
#include "graph/convert.h"
#include "graph/subgraph.h"
#include "sample/sampler.h"

namespace gnnone {
namespace {

Csr power_law_graph() {
  RmatParams o;
  o.scale = 9;  // 512 vertices
  o.edge_factor = 8;
  o.seed = 11;
  return coo_to_csr(rmat_graph(o));
}

TEST(Sampler, SameSeedGivesByteIdenticalSubgraphs) {
  const Csr g = power_law_graph();
  const std::vector<vid_t> seeds = {3, 77, 200, 3};  // dup collapses
  SampleOptions so;
  so.fanouts = {8, 4};
  so.seed = 42;
  const SampledSubgraph a = sample_khop(g, seeds, so);
  const SampledSubgraph b = sample_khop(g, seeds, so);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.hop_offsets, b.hop_offsets);
  EXPECT_EQ(a.coo.row, b.coo.row);
  EXPECT_EQ(a.coo.col, b.coo.col);
  EXPECT_EQ(a.sampled_edges, b.sampled_edges);
  EXPECT_EQ(a.bytes_touched, b.bytes_touched);

  SampleOptions other = so;
  other.seed = 43;
  const SampledSubgraph c = sample_khop(g, seeds, other);
  // A different trace seed must change the draw (overwhelmingly likely on a
  // power-law graph with fanout < degree somewhere).
  EXPECT_NE(a.coo.col, c.coo.col);
}

TEST(Sampler, SeedsComeFirstAndDupsCollapse) {
  const Csr g = power_law_graph();
  const std::vector<vid_t> seeds = {3, 77, 200, 3};
  const SampledSubgraph s = sample_khop(g, seeds, {});
  ASSERT_EQ(s.num_seeds(), 3);
  EXPECT_EQ(s.vertices[0], 3);
  EXPECT_EQ(s.vertices[1], 77);
  EXPECT_EQ(s.vertices[2], 200);
  // Local ids are a compact relabeling: every global id appears once.
  std::set<vid_t> uniq(s.vertices.begin(), s.vertices.end());
  EXPECT_EQ(vid_t(uniq.size()), s.num_vertices());
}

TEST(Sampler, HopOffsetsPartitionTheVertexList) {
  const Csr g = power_law_graph();
  SampleOptions so;
  so.fanouts = {4, 4, 2};
  const std::vector<vid_t> seeds = {0, 100};
  const SampledSubgraph s = sample_khop(g, seeds, so);
  ASSERT_EQ(s.hop_offsets.size(), so.fanouts.size() + 2);
  EXPECT_EQ(s.hop_offsets.front(), 0);
  EXPECT_EQ(s.hop_offsets.back(), s.num_vertices());
  EXPECT_TRUE(std::is_sorted(s.hop_offsets.begin(), s.hop_offsets.end()));
}

TEST(Sampler, FanoutBoundsTheDrawsPerVertex) {
  const Csr g = power_law_graph();
  SampleOptions so;
  so.fanouts = {5};
  so.add_self_loops = false;
  const std::vector<vid_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  const SampledSubgraph s = sample_khop(g, seeds, so);
  // Each seed row draws min(degree, fanout) distinct neighbors.
  const Csr sub = coo_to_csr(s.coo);
  for (vid_t lv = 0; lv < s.num_seeds(); ++lv) {
    const vid_t deg = g.row_length(s.vertices[std::size_t(lv)]);
    EXPECT_EQ(sub.row_length(lv), std::min<vid_t>(deg, 5));
    // Drawn neighbors are real neighbors.
    for (eid_t e = sub.row_begin(lv); e < sub.row_end(lv); ++e) {
      const vid_t u = s.vertices[std::size_t(sub.col[std::size_t(e)])];
      const vid_t v = s.vertices[std::size_t(lv)];
      const auto* b = g.col.data() + g.row_begin(v);
      const auto* en = g.col.data() + g.row_end(v);
      EXPECT_NE(std::find(b, en, u), en);
    }
  }
}

TEST(Sampler, SelfLoopsGuaranteeNoEmptyRows) {
  const Csr g = power_law_graph();
  const std::vector<vid_t> seeds = {9, 10};
  const SampledSubgraph s = sample_khop(g, seeds, {});
  const Csr sub = coo_to_csr(s.coo);
  for (vid_t v = 0; v < sub.num_rows; ++v) {
    EXPECT_GE(sub.row_length(v), 1);
  }
}

TEST(Sampler, ScratchReuseIsByteIdentical) {
  // One scratch threaded through many calls — the serving pattern — must
  // give the same blocks as fresh per-call allocation, including across
  // graphs of different sizes (the scratch grows, stamps invalidate).
  const Csr big = power_law_graph();
  RmatParams small_params;
  small_params.scale = 6;
  small_params.edge_factor = 4;
  small_params.seed = 3;
  const Csr small = coo_to_csr(rmat_graph(small_params));

  SamplerScratch scratch;
  SampleOptions so;
  so.fanouts = {6, 3};
  so.seed = 19;
  const std::vector<std::vector<vid_t>> seed_sets = {
      {3, 77}, {200}, {3}, {10, 11, 12}};
  for (const auto& seeds : seed_sets) {
    const SampledSubgraph fresh = sample_khop(big, seeds, so);
    const SampledSubgraph reused = sample_khop(big, seeds, so, &scratch);
    EXPECT_EQ(fresh.vertices, reused.vertices);
    EXPECT_EQ(fresh.hop_offsets, reused.hop_offsets);
    EXPECT_EQ(fresh.coo.row, reused.coo.row);
    EXPECT_EQ(fresh.coo.col, reused.coo.col);
    EXPECT_EQ(fresh.bytes_touched, reused.bytes_touched);

    // Interleave a call on the smaller graph to stress the epoch stamps.
    const std::vector<vid_t> small_seeds = {1, 2};
    const SampledSubgraph sf = sample_khop(small, small_seeds, so);
    const SampledSubgraph sr = sample_khop(small, small_seeds, so, &scratch);
    EXPECT_EQ(sf.vertices, sr.vertices);
    EXPECT_EQ(sf.coo.col, sr.coo.col);
  }
}

TEST(Sampler, RejectsBadInput) {
  const Csr g = power_law_graph();
  SampleOptions empty;
  empty.fanouts = {};
  const std::vector<vid_t> seeds = {0};
  EXPECT_THROW(sample_khop(g, seeds, empty), std::invalid_argument);
  const std::vector<vid_t> oob = {g.num_rows};
  EXPECT_THROW(sample_khop(g, oob, {}), std::invalid_argument);
}

TEST(Subgraph, MatchesBruteForceReference) {
  RmatParams o;
  o.scale = 7;
  o.edge_factor = 6;
  o.seed = 5;
  const Coo g = rmat_graph(o);
  const std::vector<vid_t> verts = {5, 3, 60, 100, 12, 3};

  const InducedSubgraph sub = extract_induced(g, verts);
  // Relabeling keeps first-appearance order and drops the duplicate.
  EXPECT_EQ(sub.vertices, (std::vector<vid_t>{5, 3, 60, 100, 12}));

  // Reference: every edge with both ends in the set, relabeled, sorted.
  std::set<std::pair<vid_t, vid_t>> want;
  auto local_of = [&](vid_t gid) {
    const auto it = std::find(sub.vertices.begin(), sub.vertices.end(), gid);
    return it == sub.vertices.end()
               ? vid_t(-1)
               : vid_t(it - sub.vertices.begin());
  };
  for (std::size_t e = 0; e < std::size_t(g.nnz()); ++e) {
    const vid_t lr = local_of(g.row[e]);
    const vid_t lc = local_of(g.col[e]);
    if (lr >= 0 && lc >= 0) want.insert({lr, lc});
  }
  std::set<std::pair<vid_t, vid_t>> got;
  for (std::size_t e = 0; e < std::size_t(sub.coo.nnz()); ++e) {
    got.insert({sub.coo.row[e], sub.coo.col[e]});
  }
  EXPECT_EQ(got, want);
  EXPECT_TRUE(sub.coo.is_csr_arranged());
}

TEST(Subgraph, InducedCsrAgreesWithCooPath) {
  RmatParams o;
  o.scale = 7;
  o.seed = 9;
  const Coo g = rmat_graph(o);
  const std::vector<vid_t> verts = {1, 2, 3, 50, 70};
  std::vector<vid_t> out_verts;
  const Csr csr = induced_csr(g, verts, &out_verts);
  const InducedSubgraph sub = extract_induced(g, verts);
  EXPECT_EQ(out_verts, sub.vertices);
  EXPECT_EQ(csr_to_coo(csr).col, sub.coo.col);
}

TEST(Subgraph, RejectsOutOfRangeVertex) {
  const Coo g = coo_from_edges(3, 3, {{0, 1}, {1, 2}});
  const std::vector<vid_t> bad = {0, 3};
  EXPECT_THROW(extract_induced(g, bad), std::invalid_argument);
}

TEST(Requests, TraceIsDeterministicAndInBounds) {
  const Dataset ds = make_dataset("G4");
  RequestTraceOptions o;
  o.num_requests = 64;
  o.min_seeds = 1;
  o.max_seeds = 3;
  o.hot_fraction = 0.6;
  o.seed = 17;
  const auto a = make_request_trace(ds.coo, o);
  const auto b = make_request_trace(ds.coo, o);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].seeds, b[r].seeds);
    EXPECT_GE(int(a[r].seeds.size()), 1);
    EXPECT_LE(int(a[r].seeds.size()), 3);
    std::set<vid_t> uniq(a[r].seeds.begin(), a[r].seeds.end());
    EXPECT_EQ(uniq.size(), a[r].seeds.size());
    for (vid_t s : a[r].seeds) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, ds.coo.num_rows);
    }
  }
}

}  // namespace
}  // namespace gnnone
