// Fault-injection coverage of the training harness: an injected OOM at each
// of train_model's allocation sites must surface as a structured
// fail_reason == "OOM" with every charged byte unwound (no leaks), and an
// injected NaN loss must surface as fail_reason == "diverged".
#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gnn/train.h"
#include "gpusim/memory.h"

namespace gnnone {
namespace {

const gpusim::DeviceSpec& dev() { return gpusim::default_device(); }

TrainOptions fast_opts(gpusim::DeviceMemory* mem = nullptr) {
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.epochs = 1;
  opts.feature_dim_override = 8;
  opts.eval_accuracy = false;
  opts.device_memory = mem;
  return opts;
}

/// Number of DeviceMemory::allocate() calls a clean run performs — probed,
/// not hard-coded, so the test keeps covering every site if the harness
/// grows or loses one.
std::uint64_t count_allocation_sites(const Dataset& d,
                                     const std::string& model) {
  gpusim::DeviceMemory mem(dev().device_memory_bytes);
  const auto r = train_model(Backend::kGnnOne, d, model, dev(),
                             fast_opts(&mem));
  EXPECT_TRUE(r.ran) << r.fail_reason;
  EXPECT_EQ(mem.in_use(), 0u) << "clean run leaked bytes";
  return mem.allocation_count();
}

TEST(FaultInjectionTrain, CleanRunChargesAndReleasesEverySite) {
  const Dataset d = make_dataset("G0");
  // The harness charges: paper-scale admission, topology, features,
  // params+grads, optimizer state.
  EXPECT_EQ(count_allocation_sites(d, "gcn"), 5u);
}

class OomAtEverySite : public testing::TestWithParam<const char*> {};

TEST_P(OomAtEverySite, FailsGracefullyWithoutLeaking) {
  const Dataset d = make_dataset("G0");
  const std::string model = GetParam();
  const std::uint64_t sites = count_allocation_sites(d, model);
  ASSERT_GE(sites, 5u);
  for (std::uint64_t n = 1; n <= sites; ++n) {
    gpusim::DeviceMemory mem(dev().device_memory_bytes);
    mem.fail_at_allocation(n);
    const auto r = train_model(Backend::kGnnOne, d, model, dev(),
                               fast_opts(&mem));
    EXPECT_FALSE(r.ran) << "site " << n;
    EXPECT_EQ(r.fail_reason, "OOM") << "site " << n;
    EXPECT_EQ(mem.in_use(), 0u) << "site " << n << " leaked bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Models, OomAtEverySite,
                         testing::Values("gcn", "gin", "gat"));

TEST(FaultInjectionTrain, WatermarkFaultAlsoUnwinds) {
  const Dataset d = make_dataset("G1");
  gpusim::DeviceMemory mem(dev().device_memory_bytes);
  mem.fail_above(1);  // every allocation of more than one byte fails
  const auto r = train_model(Backend::kGnnOne, d, "gcn", dev(),
                             fast_opts(&mem));
  EXPECT_FALSE(r.ran);
  EXPECT_EQ(r.fail_reason, "OOM");
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(FaultInjectionTrain, ExternalTrackerSeesRealUsageDuringRun) {
  // Peak usage must be nonzero (the run actually charged memory), and
  // everything released afterwards.
  const Dataset d = make_dataset("G0");
  gpusim::DeviceMemory mem(dev().device_memory_bytes);
  const auto r = train_model(Backend::kGnnOne, d, "gcn", dev(),
                             fast_opts(&mem));
  ASSERT_TRUE(r.ran);
  EXPECT_GT(mem.peak(), 0u);
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(FaultInjectionTrain, NanLossReportsDiverged) {
  const Dataset d = make_dataset("G0");
  gpusim::DeviceMemory mem(dev().device_memory_bytes);
  TrainOptions opts = fast_opts(&mem);
  opts.measured_epochs = 2;
  opts.eval_accuracy = true;
  opts.inject_nan_at_epoch = 1;
  const auto r = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  EXPECT_FALSE(r.ran);
  EXPECT_EQ(r.fail_reason, "diverged");
  // The poisoned epoch contributes nothing to the accuracy curve.
  EXPECT_EQ(r.accuracy_curve.size(), 1u);
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(FaultInjectionTrain, NanAtFirstEpochDivergesImmediately) {
  const Dataset d = make_dataset("G0");
  TrainOptions opts = fast_opts();
  opts.inject_nan_at_epoch = 0;
  const auto r = train_model(Backend::kGnnOne, d, "gcn", dev(), opts);
  EXPECT_FALSE(r.ran);
  EXPECT_EQ(r.fail_reason, "diverged");
  EXPECT_TRUE(r.accuracy_curve.empty());
}

TEST(FaultInjectionTrain, DivergenceAppliesToEveryBackend) {
  const Dataset d = make_dataset("G0");
  for (Backend b : {Backend::kGnnOne, Backend::kGnnOneFused, Backend::kDgl,
                    Backend::kDgnn}) {
    if (!SparseEngine::supports(b, d)) continue;
    TrainOptions opts = fast_opts();
    opts.inject_nan_at_epoch = 0;
    const auto r = train_model(b, d, "gat", dev(), opts);
    EXPECT_FALSE(r.ran);
    EXPECT_EQ(r.fail_reason, "diverged");
  }
}

}  // namespace
}  // namespace gnnone
