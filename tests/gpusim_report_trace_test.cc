// Cost-attribution and reporting regression tests:
//  * stores and atomics are attributed to their own issue counters, never to
//    load_issue_cycles (the Fig. 11 inflation bug);
//  * describe() derives milliseconds from DeviceSpec::sm_clock_ghz instead
//    of a hard-coded clock;
//  * csv_row() carries label + dataset columns with RFC 4180 escaping;
//  * fmt() no longer truncates long lines at 256 bytes;
//  * the Trace observer records per-launch events and exports valid
//    chrome://tracing JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/report.h"
#include "gpusim/trace.h"
#include "gpusim/warp.h"

namespace gpusim {
namespace {

KernelStats run_kernel(const std::function<void(WarpCtx&)>& fn,
                       const std::string& label = "") {
  LaunchConfig lc;
  lc.num_ctas = 4;
  lc.warps_per_cta = 2;
  lc.label = label;
  return launch(default_device(), lc, fn);
}

TEST(Attribution, StoresDoNotCountAsLoadIssue) {
  std::vector<float> out(4096, 0.0f);
  const auto ks = run_kernel([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = (w.global_warp_id() * kWarpSize + l) % 4096;
      v[l] = 1.0f;
    }
    w.st_global(out.data(), idx, v);
    w.sync();
  });
  // A store-only kernel must register zero load cost but nonzero store cost.
  EXPECT_EQ(ks.totals.load_issue_cycles, 0u);
  EXPECT_EQ(ks.totals.load_stall_cycles, 0u);
  EXPECT_GT(ks.totals.store_issue_cycles, 0u);
  EXPECT_EQ(ks.totals.atomic_issue_cycles, 0u);
  EXPECT_DOUBLE_EQ(ks.data_load_fraction(), 0.0);
  EXPECT_GT(ks.data_movement_fraction(), 0.0);
}

TEST(Attribution, AtomicsDoNotCountAsLoadIssue) {
  std::vector<float> out(64, 0.0f);
  const auto ks = run_kernel([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = l % 8;  // conflicts force serialization
      v[l] = 2.0f;
    }
    w.atomic_add(out.data(), idx, v);
    w.sync();
  });
  EXPECT_EQ(ks.totals.load_issue_cycles, 0u);
  EXPECT_GT(ks.totals.atomic_issue_cycles, 0u);
  EXPECT_EQ(ks.totals.store_issue_cycles, 0u);
  EXPECT_DOUBLE_EQ(ks.data_load_fraction(), 0.0);
}

TEST(Attribution, MovementFractionCoversAllThreeKinds) {
  std::vector<float> in(4096, 1.0f), out(4096, 0.0f), acc(64, 0.0f);
  const auto ks = run_kernel([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = (w.global_warp_id() * kWarpSize + l) % 4096;
    }
    const auto v = w.ld_global(in.data(), idx);
    w.st_global(out.data(), idx, v);
    LaneArray<std::int64_t> aidx{};
    for (int l = 0; l < kWarpSize; ++l) aidx[l] = l % 64;
    w.atomic_add(acc.data(), aidx, v);
    w.sync();
  });
  EXPECT_GT(ks.totals.load_issue_cycles, 0u);
  EXPECT_GT(ks.totals.store_issue_cycles, 0u);
  EXPECT_GT(ks.totals.atomic_issue_cycles, 0u);
  // Movement strictly exceeds the load-only fraction when stores/atomics
  // are present, and both stay within [0, 1].
  EXPECT_GT(ks.data_movement_fraction(), ks.data_load_fraction());
  EXPECT_GT(ks.data_load_fraction(), 0.0);
  EXPECT_LE(ks.data_movement_fraction(), 1.0);
}

TEST(Report, DescribeUsesSpecClock) {
  std::vector<float> in(4096, 1.0f);
  const auto ks = run_kernel([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
    (void)w.ld_global(in.data(), idx);
    w.sync();
  });
  DeviceSpec slow = default_device();
  slow.sm_clock_ghz = 0.5;
  // Halving the clock doubles the reported milliseconds for equal cycles.
  EXPECT_DOUBLE_EQ(cycles_to_ms(ks.cycles, slow),
                   2.0 * cycles_to_ms(ks.cycles, default_device()) *
                       (default_device().sm_clock_ghz / 1.0));
  EXPECT_DOUBLE_EQ(cycles_to_ms(1'410'000, default_device()), 1.0);
  const std::string fast = describe(ks, default_device());
  const std::string slow_d = describe(ks, slow);
  EXPECT_NE(fast.find("@ 1.41 GHz"), std::string::npos);
  EXPECT_NE(slow_d.find("@ 0.50 GHz"), std::string::npos);
  EXPECT_NE(fast, slow_d);
}

TEST(Report, CsvRowCarriesLabelAndDataset) {
  const auto ks = run_kernel(
      [&](WarpCtx& w) {
        w.alu(4);
        w.sync();
      },
      "spmm,stage=2 \"full\"");
  const std::string header = csv_header();
  EXPECT_EQ(header.substr(0, 14), "label,dataset,");
  const std::string row = csv_row(ks, "G4");
  // The label contains a comma and a quote, so it must be RFC 4180 quoted.
  EXPECT_NE(row.find("\"spmm,stage=2 \"\"full\"\"\""), std::string::npos);
  EXPECT_NE(row.find(",G4,"), std::string::npos);
  // Quoted commas aside, field counts line up between header and row.
  std::string unquoted;
  bool in_quotes = false;
  for (char c : row) {
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes) unquoted += c;
  }
  EXPECT_EQ(std::count(unquoted.begin(), unquoted.end(), ','),
            std::count(header.begin(), header.end(), ','));
}

TEST(Report, LongLabelsAreNotTruncated) {
  const std::string label(1000, 'x');
  const auto ks = run_kernel(
      [&](WarpCtx& w) {
        w.alu(1);
        w.sync();
      },
      label);
  // Pre-fix, fmt() clipped every line at 256 bytes; the full label must now
  // survive both describe() and csv_row().
  EXPECT_NE(describe(ks, default_device()).find(label), std::string::npos);
  EXPECT_NE(csv_row(ks).find(label), std::string::npos);
}

TEST(Trace, RecordsLaunchesInOrderWithCumulativeTimestamps) {
  std::vector<float> in(4096, 1.0f);
  Trace trace;
  const auto a = run_kernel(
      [&](WarpCtx& w) {
        LaneArray<std::int64_t> idx{};
        for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
        (void)w.ld_global(in.data(), idx);
        w.sync();
      },
      "first");
  const auto b = run_kernel(
      [&](WarpCtx& w) {
        w.alu(32);
        w.sync();
      },
      "second");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].stats.label, "first");
  EXPECT_EQ(trace.events()[1].stats.label, "second");
  EXPECT_EQ(trace.events()[0].start_cycle, 0u);
  EXPECT_EQ(trace.events()[1].start_cycle, a.cycles);
  EXPECT_EQ(trace.total_cycles(), a.cycles + b.cycles);
}

TEST(Trace, InactiveWhenNoObserverOrAfterScopeExit) {
  {
    Trace trace;
    EXPECT_EQ(Trace::active(), &trace);
  }
  EXPECT_EQ(Trace::active(), nullptr);
  // Launching without an active trace records nothing and does not crash.
  const auto ks = run_kernel([&](WarpCtx& w) {
    w.alu(1);
    w.sync();
  });
  EXPECT_GT(ks.cycles, 0u);
}

TEST(Trace, NestedObserversRestoreOuter) {
  Trace outer;
  {
    Trace inner;
    EXPECT_EQ(Trace::active(), &inner);
    run_kernel([&](WarpCtx& w) {
      w.alu(1);
      w.sync();
    });
    EXPECT_EQ(inner.events().size(), 1u);
  }
  EXPECT_EQ(Trace::active(), &outer);
  EXPECT_TRUE(outer.events().empty());
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  Trace trace;
  run_kernel(
      [&](WarpCtx& w) {
        w.alu(16);
        w.sync();
      },
      "kernel \"quoted\"\nnewline");
  const std::string json = chrome_trace_json(trace, default_device());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The label's quote and newline must be escaped.
  EXPECT_NE(json.find("kernel \\\"quoted\\\"\\nnewline"), std::string::npos);
  EXPECT_EQ(json.find("newline\n\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy, no raw newline
  // inside strings was the real risk).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace gpusim
