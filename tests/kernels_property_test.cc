// Property tests on the sparse kernels: algebraic identities, determinism,
// cost-model monotonicity, and configuration robustness.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "graph/convert.h"
#include "kernels/baselines.h"
#include "kernels/gnnone.h"
#include "kernels/reference.h"

namespace gnnone {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

Coo test_graph(int scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return rmat_graph(p);
}

void expect_close(std::span<const float> a, std::span<const float> b,
                  float tol = 1e-3f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol + 1e-4f * std::abs(b[i])) << i;
  }
}

// --- algebraic identities --------------------------------------------------

TEST(KernelAlgebra, SpmmIsLinearInFeatures) {
  const Coo coo = test_graph();
  const int f = 8;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 1);
  const auto x1 = random_vec(std::size_t(coo.num_cols) * f, 2);
  const auto x2 = random_vec(std::size_t(coo.num_cols) * f, 3);

  std::vector<float> combined(x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    combined[i] = 2.0f * x1[i] - 3.0f * x2[i];
  }
  std::vector<float> y1(std::size_t(coo.num_rows) * f), y2(y1.size()),
      yc(y1.size());
  gnnone_spmm(dev, coo, ev, x1, f, y1);
  gnnone_spmm(dev, coo, ev, x2, f, y2);
  gnnone_spmm(dev, coo, ev, combined, f, yc);
  for (std::size_t i = 0; i < yc.size(); ++i) {
    ASSERT_NEAR(yc[i], 2.0f * y1[i] - 3.0f * y2[i],
                2e-3f + 1e-3f * std::abs(yc[i]));
  }
}

TEST(KernelAlgebra, SddmmTransposeSymmetry) {
  // w(A, x, y) permuted by the transpose ordering == w(A^T, y, x).
  const Coo coo = test_graph();
  const int f = 16;
  const auto& dev = gpusim::default_device();
  const auto x = random_vec(std::size_t(coo.num_rows) * f, 4);
  const auto y = random_vec(std::size_t(coo.num_rows) * f, 5);

  std::vector<float> w(std::size_t(coo.nnz()));
  gnnone_sddmm(dev, coo, x, y, f, w);

  const auto [coot, perm] = coo_transpose(coo);
  std::vector<float> wt(std::size_t(coot.nnz()));
  gnnone_sddmm(dev, coot, y, x, f, wt);
  for (std::size_t i = 0; i < wt.size(); ++i) {
    ASSERT_NEAR(wt[i], w[std::size_t(perm[i])], 1e-3f);
  }
}

TEST(KernelAlgebra, SpmvIsSpmmWithF1) {
  const Coo coo = test_graph();
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 6);
  const auto x = random_vec(std::size_t(coo.num_cols), 7);
  std::vector<float> y1(std::size_t(coo.num_rows)), y2(y1.size());
  gnnone_spmv(dev, coo, ev, x, y1);
  gnnone_spmm(dev, coo, ev, x, 1, y2);
  expect_close(y1, y2);
}

TEST(KernelAlgebra, RowSumsPreservedByUnitFeatures) {
  // SpMM with x = ones gives per-row weighted degree.
  const Coo coo = test_graph();
  const auto& dev = gpusim::default_device();
  std::vector<float> ev(std::size_t(coo.nnz()), 1.0f);
  std::vector<float> ones(std::size_t(coo.num_cols), 1.0f);
  std::vector<float> y(std::size_t(coo.num_rows));
  gnnone_spmm(dev, coo, ev, ones, 1, y);
  const auto deg = row_lengths(coo);
  for (vid_t r = 0; r < coo.num_rows; ++r) {
    ASSERT_NEAR(y[std::size_t(r)], float(deg[std::size_t(r)]), 1e-3f);
  }
}

// --- determinism & cost-model monotonicity ---------------------------------

TEST(KernelCost, DeterministicCycles) {
  const Coo coo = test_graph();
  const int f = 32;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 8);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 9);
  std::vector<float> y(std::size_t(coo.num_rows) * f);
  const auto a = gnnone_spmm(dev, coo, ev, x, f, y);
  const auto b = gnnone_spmm(dev, coo, ev, x, f, y);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.totals.load_transactions, b.totals.load_transactions);
}

TEST(KernelCost, CyclesGrowWithFeatureLength) {
  // Above f=16 the feature traffic dominates, so quadrupling f must cost
  // more. (Below that, index/atomic overhead flattens the curve — tiny-f
  // SpMM does not get proportionally cheaper on real GPUs either.)
  const Coo coo = test_graph(11);
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 10);
  std::uint64_t prev = 0;
  for (int f : {16, 64, 256}) {
    const auto x = random_vec(std::size_t(coo.num_cols) * std::size_t(f), 11);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(f));
    const auto ks = gnnone_spmm(dev, coo, ev, x, f, y);
    EXPECT_GT(ks.cycles, prev);
    prev = ks.cycles;
  }
}

TEST(KernelCost, CyclesGrowWithEdgeCount) {
  const auto& dev = gpusim::default_device();
  const int f = 16;
  std::uint64_t prev = 0;
  for (int scale : {8, 9, 10}) {
    const Coo coo = test_graph(scale);
    const auto ev = random_vec(std::size_t(coo.nnz()), 12);
    const auto x = random_vec(std::size_t(coo.num_cols) * f, 13);
    std::vector<float> y(std::size_t(coo.num_rows) * f);
    const auto ks = gnnone_spmm(dev, coo, ev, x, f, y);
    EXPECT_GT(ks.cycles, prev);
    prev = ks.cycles;
  }
}

TEST(KernelCost, LoadOnlyNeverExceedsFull) {
  const Coo coo = test_graph();
  const auto& dev = gpusim::default_device();
  for (int f : {6, 16, 32}) {
    const auto ev = random_vec(std::size_t(coo.nnz()), 14);
    const auto x = random_vec(std::size_t(coo.num_cols) * std::size_t(f), 15);
    std::vector<float> y(std::size_t(coo.num_rows) * std::size_t(f));
    std::vector<float> w(std::size_t(coo.nnz()));
    GnnOneConfig lo;
    lo.mode = KernelMode::kLoadOnly;
    EXPECT_LE(gnnone_spmm(dev, coo, ev, x, f, y, lo).cycles,
              gnnone_spmm(dev, coo, ev, x, f, y).cycles)
        << f;
    EXPECT_LE(gnnone_sddmm(dev, coo, x, x, f, w, lo).cycles,
              gnnone_sddmm(dev, coo, x, x, f, w).cycles)
        << f;
  }
}

TEST(KernelCost, BytesLoadedCoverMandatoryTraffic) {
  // SpMM must at least move the NZE ids, edge values, and one feature
  // vector per NZE (no reuse assumed in the lower bound beyond staging).
  const Coo coo = test_graph();
  const int f = 32;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 16);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 17);
  std::vector<float> y(std::size_t(coo.num_rows) * f);
  const auto ks = gnnone_spmm(dev, coo, ev, x, f, y);
  const auto nnz = std::uint64_t(coo.nnz());
  const std::uint64_t mandatory = nnz * (4 + 4 + 4);  // row + col + value
  EXPECT_GE(ks.totals.bytes_loaded, mandatory);
}

TEST(KernelCost, BalancedKernelHasBalancedWarps) {
  // GNNOne's edge split: the ratio max/mean warp issue cycles stays small
  // even on a skewed graph — the data-load balance claim itself.
  PowerLawParams p;
  p.n = 4096;
  p.avg_degree = 16;
  p.exponent = 2.0;
  p.seed = 19;
  const Coo coo = power_law(p);
  const Csr csr = coo_to_csr(coo);
  const int f = 32;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 20);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 21);
  std::vector<float> y(std::size_t(coo.num_rows) * f);

  const auto ours = gnnone_spmm(dev, coo, ev, x, f, y);
  const auto ge = baselines::gespmm_spmm(dev, csr, ev, x, f, y);
  // Proxy for imbalance: modeled time per unit of issued work. A perfectly
  // balanced kernel's makespan tracks its total issue; a straggler-bound
  // kernel's makespan decouples from it.
  const double ours_eff =
      double(ours.cycles) * dev.num_sms / double(ours.totals.issue_cycles);
  const double ge_eff =
      double(ge.cycles) * dev.num_sms / double(ge.totals.issue_cycles);
  EXPECT_LT(ours_eff, ge_eff);
}

// --- configuration robustness ----------------------------------------------

TEST(KernelConfig, OutputInvariantAcrossAllConfigs) {
  const Coo coo = test_graph(8);
  const int f = 24;  // not a power of two: exercises float3 + odd groups
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 22);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 23);
  std::vector<float> want(std::size_t(coo.num_rows) * f);
  ref::spmm(coo, ev, x, f, want);

  for (int cache : {32, 96, 256}) {
    for (int vec : {1, 2, 3, 4}) {
      for (auto policy :
           {SchedulePolicy::kConsecutive, SchedulePolicy::kRoundRobin}) {
        for (int wpc : {1, 4, 8}) {
          GnnOneConfig cfg;
          cfg.cache_size = cache;
          cfg.vec_width = vec;
          cfg.policy = policy;
          cfg.warps_per_cta = wpc;
          std::vector<float> y(want.size());
          gnnone_spmm(dev, coo, ev, x, f, y, cfg);
          expect_close(y, want);
        }
      }
    }
  }
}

TEST(KernelConfig, InvalidKnobsAreRejectedNotClamped) {
  // Validate() contract: accepted == ran exactly as specified. A huge but
  // warp-aligned cache still runs; misaligned or out-of-range knobs throw
  // from every kernel entry point instead of being silently clamped.
  const Coo coo = test_graph(7);
  const int f = 8;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 24);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 25);
  std::vector<float> want(std::size_t(coo.num_rows) * f);
  ref::spmm(coo, ev, x, f, want);

  {
    GnnOneConfig cfg;
    cfg.cache_size = 1024;  // large but valid (multiple of 32)
    std::vector<float> y(want.size());
    gnnone_spmm(dev, coo, ev, x, f, y, cfg);
    expect_close(y, want);
  }
  std::vector<float> y(want.size());
  std::vector<float> w(std::size_t(coo.nnz()));
  for (int cache : {0, 1, 7, 33, -32}) {
    GnnOneConfig cfg;
    cfg.cache_size = cache;
    EXPECT_THROW(cfg.Validate(), std::invalid_argument) << cache;
    EXPECT_THROW(gnnone_spmm(dev, coo, ev, x, f, y, cfg),
                 std::invalid_argument)
        << cache;
    EXPECT_THROW(gnnone_sddmm(dev, coo, x, x, f, w, cfg),
                 std::invalid_argument)
        << cache;
  }
  for (int vec : {0, 5, -1}) {
    GnnOneConfig cfg;
    cfg.vec_width = vec;
    EXPECT_THROW(gnnone_spmm(dev, coo, ev, x, f, y, cfg),
                 std::invalid_argument)
        << vec;
  }
  {
    GnnOneConfig cfg;
    cfg.unroll = 0;
    EXPECT_THROW(gnnone_spmm(dev, coo, ev, x, f, y, cfg),
                 std::invalid_argument);
    cfg = GnnOneConfig{};
    cfg.warps_per_cta = 0;
    EXPECT_THROW(gnnone_spmm(dev, coo, ev, x, f, y, cfg),
                 std::invalid_argument);
  }
  std::vector<float> x1(std::size_t(coo.num_cols)), y1(std::size_t(coo.num_rows));
  EXPECT_THROW(gnnone_spmv(dev, coo, ev, x1, y1, 0), std::invalid_argument);
  EXPECT_THROW(gnnone_spmv(dev, coo, ev, x1, y1, 9), std::invalid_argument);
}

TEST(KernelConfig, SelfLoopsAndDuplicateRowsHandled) {
  // Diagonal-heavy matrix: many same-row runs and self loops.
  EdgeList edges;
  for (vid_t v = 0; v < 64; ++v) {
    edges.emplace_back(v, v);
    edges.emplace_back(v, (v + 1) % 64);
  }
  const Coo coo = coo_from_edges(64, 64, edges);
  const int f = 16;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(std::size_t(coo.nnz()), 26);
  const auto x = random_vec(64 * 16, 27);
  std::vector<float> want(64 * 16), got(64 * 16), w(std::size_t(coo.nnz())),
      wref(std::size_t(coo.nnz()));
  ref::spmm(coo, ev, x, f, want);
  gnnone_spmm(dev, coo, ev, x, f, got);
  expect_close(got, want);
  ref::sddmm(coo, x, x, f, wref);
  gnnone_sddmm(dev, coo, x, x, f, w);
  expect_close(w, wref);
}

TEST(KernelFormat, CsrVariantMatchesCooOutput) {
  const Coo coo = test_graph(9);
  const Csr csr = coo_to_csr(coo);
  const auto& dev = gpusim::default_device();
  for (int f : {6, 16, 32}) {
    const auto ev = random_vec(std::size_t(coo.nnz()), 30);
    const auto x = random_vec(std::size_t(coo.num_cols) * std::size_t(f), 31);
    std::vector<float> a(std::size_t(coo.num_rows) * std::size_t(f));
    std::vector<float> b(a.size());
    gnnone_spmm(dev, coo, ev, x, f, a);
    gnnone_spmm_csr(dev, csr, ev, x, f, b);
    expect_close(b, a);
  }
}

TEST(KernelFormat, CsrVariantSavesRowBytesButPaysSearch) {
  // The §5.4.5 trade: COO loads 4 extra bytes per NZE; CSR derives row ids
  // from metadata probes. Bytes drop, probe instructions appear.
  const Coo coo = test_graph(10);
  const Csr csr = coo_to_csr(coo);
  const auto& dev = gpusim::default_device();
  const int f = 32;
  const auto ev = random_vec(std::size_t(coo.nnz()), 32);
  const auto x = random_vec(std::size_t(coo.num_cols) * f, 33);
  std::vector<float> y(std::size_t(coo.num_rows) * f);
  const auto from_coo = gnnone_spmm(dev, coo, ev, x, f, y);
  const auto from_csr = gnnone_spmm_csr(dev, csr, ev, x, f, y);
  EXPECT_LT(from_csr.totals.bytes_loaded, from_coo.totals.bytes_loaded);
  // The saving is exactly the row array (4 bytes per NZE).
  EXPECT_EQ(from_csr.totals.bytes_loaded + std::uint64_t(coo.nnz()) * 4,
            from_coo.totals.bytes_loaded);
  // ...and the probe instructions appear on the CSR side.
  EXPECT_GT(from_csr.totals.global_load_instrs + 0u,
            from_coo.totals.global_load_instrs -
                std::uint64_t((coo.nnz() + 127) / 128) * 4);
}

TEST(KernelConfig, SingleDenseRowMatrix) {
  // One row owns every NZE: worst case for vertex-parallel, routine for
  // GNNOne's edge split.
  EdgeList edges;
  for (vid_t c = 0; c < 500; ++c) edges.emplace_back(0, c);
  const Coo coo = coo_from_edges(4, 500, edges);
  const Csr csr = coo_to_csr(coo);
  const int f = 16;
  const auto& dev = gpusim::default_device();
  const auto ev = random_vec(500, 28);
  const auto x = random_vec(500 * 16, 29);
  std::vector<float> want(4 * 16), got(4 * 16);
  ref::spmm(coo, ev, x, f, want);
  const auto ours = gnnone_spmm(dev, coo, ev, x, f, got);
  expect_close(got, want);
  const auto ge = baselines::gespmm_spmm(dev, csr, ev, x, f, got);
  expect_close(got, want);
  EXPECT_LT(ours.cycles, ge.cycles);  // total imbalance hurts warp-per-row
}

}  // namespace
}  // namespace gnnone
