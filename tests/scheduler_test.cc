// Multi-tenant SLO-aware serving: scheduler policies, queue/service
// accounting, tenant reports, and the mode-invariance of per-request
// observables (docs/SERVING.md §8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gpusim/launch.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/stats.h"

namespace gnnone {
namespace {

using serve::BatchCostEstimator;
using serve::SchedulerOptions;
using serve::SchedulerPolicy;
using serve::TenantScheduler;
using serve::TenantSpec;

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

/// Two tenants with a tight and a loose deadline, same model family.
std::vector<TenantSpec> two_tenants(std::uint64_t tight, std::uint64_t loose) {
  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.model_kind = "gcn";
  interactive.fanouts = {4, 3};
  interactive.slo_cycles = tight;
  TenantSpec batchy;
  batchy.name = "batchy";
  batchy.model_kind = "gat";
  batchy.fanouts = {6, 4};
  batchy.slo_cycles = loose;
  return {interactive, batchy};
}

/// Deterministic open-loop trace over the dataset for the two tenants.
std::vector<SeedRequest> two_tenant_trace(const Dataset& ds, int n0, int n1,
                                          double mean0, double mean1) {
  TenantWorkload w0;
  w0.requests.num_requests = n0;
  w0.requests.max_seeds = 2;
  w0.requests.seed = 11;
  w0.arrivals.mean_interarrival_cycles = mean0;
  w0.arrivals.seed = 5;
  TenantWorkload w1 = w0;
  w1.requests.num_requests = n1;
  w1.requests.seed = 12;
  w1.arrivals.mean_interarrival_cycles = mean1;
  return make_open_loop_trace(ds.coo, {w0, w1});
}

ServeOptions scheduled_opts(const std::vector<TenantSpec>& tenants,
                            SchedulerPolicy policy) {
  ServeOptions opts;
  opts.batch_size = 4;
  opts.cache_alpha = 0.25;
  opts.feature_dim_override = 16;
  opts.seed = 3;
  opts.tenants = tenants;
  opts.scheduler.policy = policy;
  return opts;
}

// --- TenantScheduler unit behavior -----------------------------------------

TEST(TenantScheduler, RejectsBadConstruction) {
  SchedulerOptions so;
  EXPECT_THROW(TenantScheduler({}, so, 4), std::invalid_argument);
  EXPECT_THROW(TenantScheduler(two_tenants(10, 20), so, 0),
               std::invalid_argument);
  so.estimator_ewma = 0.0;
  EXPECT_THROW(TenantScheduler(two_tenants(10, 20), so, 4),
               std::invalid_argument);
  so.estimator_ewma = 1.5;
  EXPECT_THROW(TenantScheduler(two_tenants(10, 20), so, 4),
               std::invalid_argument);
}

TEST(TenantScheduler, RejectsOutOfOrderAndOutOfRangeEnqueue) {
  TenantScheduler sched(two_tenants(10, 20), SchedulerOptions{}, 4);
  sched.enqueue(0, 0, 100);
  EXPECT_THROW(sched.enqueue(1, 0, 50), std::invalid_argument);
  EXPECT_THROW(sched.enqueue(2, 2, 200), std::invalid_argument);
  EXPECT_THROW(sched.enqueue(3, -1, 200), std::invalid_argument);
}

TEST(TenantScheduler, FifoWaitsToFillThenCutsOnTimeout) {
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kFifoAggregate;
  so.max_wait_cycles = 1000;
  TenantScheduler sched(two_tenants(10000, 10000), so, 3);
  // Three arrivals inside the wait window fill the batch at the third.
  sched.enqueue(0, 0, 100);
  sched.enqueue(1, 0, 200);
  sched.enqueue(2, 0, 300);
  // A fourth far outside the window is cut alone at its timeout.
  sched.enqueue(3, 0, 9000);

  auto p1 = sched.next_batch(0);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->tenant, 0);
  EXPECT_EQ(p1->cut_cycle, 300u);  // batch filled before the 1100 timeout
  EXPECT_EQ(p1->members, (std::vector<std::size_t>{0, 1, 2}));

  auto p2 = sched.next_batch(p1->cut_cycle);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->cut_cycle, 10000u);  // 9000 + max_wait, never filled
  EXPECT_EQ(p2->members, (std::vector<std::size_t>{3}));
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.next_batch(0).has_value());
}

TEST(TenantScheduler, FifoTakesLateArrivalsTheWaitExposed) {
  // The timeout wait itself admits requests that arrive during it.
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kFifoAggregate;
  so.max_wait_cycles = 1000;
  TenantScheduler sched(two_tenants(10000, 10000), so, 8);
  sched.enqueue(0, 0, 100);
  sched.enqueue(1, 0, 900);
  auto p = sched.next_batch(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cut_cycle, 1100u);  // 100 + max_wait; batch of 8 never fills
  EXPECT_EQ(p->members, (std::vector<std::size_t>{0, 1}));
}

TEST(TenantScheduler, EdfServesEarliestDeadlineAmongArrived) {
  // Tenant 0 tight (slo 50), tenant 1 loose (slo 100000). Tenant 1 arrives
  // first, but once both have arrived, tenant 0's deadline is earlier.
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kEdf;
  TenantScheduler sched(two_tenants(50, 100000), so, 4);
  sched.enqueue(0, 1, 100);  // deadline 100100
  sched.enqueue(1, 0, 200);  // deadline 250
  auto p1 = sched.next_batch(150);
  ASSERT_TRUE(p1.has_value());
  // At cycle 150 only tenant 1 has arrived — EDF is non-clairvoyant and
  // serves what exists rather than waiting for an unseen tighter request.
  EXPECT_EQ(p1->tenant, 1);
  EXPECT_EQ(p1->cut_cycle, 150u);
  auto p2 = sched.next_batch(400);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->tenant, 0);
  EXPECT_EQ(p2->cut_cycle, 400u);  // EDF never waits
}

TEST(TenantScheduler, EdfPrefersTightTenantWhenBothArrived) {
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kEdf;
  TenantScheduler sched(two_tenants(50, 100000), so, 4);
  sched.enqueue(0, 1, 100);
  sched.enqueue(1, 0, 200);
  auto p = sched.next_batch(300);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->tenant, 0);  // deadline 250 < 100100
}

TEST(TenantScheduler, SlackUnseededBehavesLikeEdf) {
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kSlack;
  TenantScheduler sched(two_tenants(50, 100000), so, 4);
  sched.enqueue(0, 0, 100);
  sched.enqueue(1, 0, 5000);
  auto p = sched.next_batch(100);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cut_cycle, 100u);  // no estimate -> no waiting
  EXPECT_EQ(p->members, (std::vector<std::size_t>{0}));
}

TEST(TenantScheduler, SlackWaitsWhileDeadlineAllows) {
  SchedulerOptions so;
  so.policy = SchedulerPolicy::kSlack;
  TenantScheduler sched(two_tenants(10000, 100000), so, 4);
  // Teach the estimator: a batch costs ~100 cycles regardless of size.
  sched.observe(0, 1, 100);
  sched.observe(0, 2, 100);
  sched.enqueue(0, 0, 100);   // deadline 10100
  sched.enqueue(1, 0, 500);   // arrives well before the head's deadline
  sched.enqueue(2, 0, 50000); // far beyond it
  auto p = sched.next_batch(100);
  ASSERT_TRUE(p.has_value());
  // Waited for request 1 (500 + est 100 <= 10100) but not request 2.
  EXPECT_EQ(p->cut_cycle, 500u);
  EXPECT_EQ(p->members, (std::vector<std::size_t>{0, 1}));
}

TEST(BatchCostEstimator, LearnsAffineCostAndClampsNonnegative) {
  BatchCostEstimator est(1, 0.5);
  EXPECT_EQ(est.estimate(0, 4), 0u);  // unseeded
  EXPECT_FALSE(est.seeded(0));
  est.observe(0, 2, 300);
  est.observe(0, 4, 500);
  EXPECT_TRUE(est.seeded(0));
  // Underlying model: 100/request + 100 fixed. The EWMA fit lands close.
  const std::uint64_t e6 = est.estimate(0, 6);
  EXPECT_GT(e6, 500u);
  EXPECT_LT(e6, 900u);
  // Estimates are monotone in batch size (slope clamped >= 0).
  EXPECT_LE(est.estimate(0, 1), est.estimate(0, 8));
  // Out-of-range tenant estimates 0 instead of crashing.
  EXPECT_EQ(est.estimate(5, 4), 0u);
}

// --- TenantReport aggregation ----------------------------------------------

TEST(TenantReport, AggregatesCountsPercentilesAndAttainment) {
  const std::vector<TenantSpec> tenants = two_tenants(150, 1000);
  std::vector<int> tenant_of;
  std::vector<serve::RequestOutcome> outcomes;
  // Tenant 0: latencies 100, 120, 200 (one SLO miss at 200), one rejection.
  for (std::uint64_t lat : {100u, 120u, 200u}) {
    serve::RequestOutcome o;
    o.status = serve::Status::kOk;
    o.queue_cycles = lat / 2;
    o.service_cycles = lat - lat / 2;
    outcomes.push_back(o);
    tenant_of.push_back(0);
  }
  {
    serve::RequestOutcome o;
    o.status = serve::Status::kRejected;
    outcomes.push_back(o);
    tenant_of.push_back(0);
  }
  // Tenant 1: one degraded hit, one hard failure.
  {
    serve::RequestOutcome o;
    o.status = serve::Status::kDegraded;
    o.queue_cycles = 300;
    o.service_cycles = 400;
    outcomes.push_back(o);
    tenant_of.push_back(1);
    o.status = serve::Status::kOom;
    o.queue_cycles = 10;
    o.service_cycles = 10;
    outcomes.push_back(o);
    tenant_of.push_back(1);
  }

  const auto reports = serve::make_tenant_reports(tenants, tenant_of, outcomes);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].requests, 4);
  EXPECT_EQ(reports[0].served, 3);
  EXPECT_EQ(reports[0].rejected, 1);
  EXPECT_EQ(reports[0].failed, 0);
  EXPECT_EQ(reports[0].p50_latency_cycles, 120u);  // nearest-rank over {100,120,200}
  EXPECT_EQ(reports[0].p99_latency_cycles, 200u);
  EXPECT_EQ(reports[0].max_latency_cycles, 200u);
  // 2 of 3 admitted within the 150-cycle SLO.
  EXPECT_NEAR(reports[0].attainment, 2.0 / 3.0, 1e-12);

  EXPECT_EQ(reports[1].requests, 2);
  EXPECT_EQ(reports[1].served, 1);
  EXPECT_EQ(reports[1].degraded, 1);
  EXPECT_EQ(reports[1].failed, 1);
  // The degraded request made its 1000-cycle SLO; the failure counts as a
  // miss: 1 of 2 admitted.
  EXPECT_NEAR(reports[1].attainment, 0.5, 1e-12);
}

TEST(TenantReport, EmptyTenantReportsPerfectAttainment) {
  const auto reports =
      serve::make_tenant_reports(two_tenants(10, 10), {}, {});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].requests, 0);
  EXPECT_EQ(reports[0].attainment, 1.0);
  EXPECT_EQ(reports[0].p99_latency_cycles, 0u);
}

// --- scheduled serving: invariants -----------------------------------------

TEST(ScheduledServing, OptionsValidationCoversTenantsAndScheduler) {
  const Dataset ds = make_dataset("G4");
  ServeOptions opts = scheduled_opts(two_tenants(10, 20),
                                     SchedulerPolicy::kFifoAggregate);
  opts.tenants[0].slo_cycles = 0;
  EXPECT_THROW(InferenceServer(ds, test_device(), opts),
               std::invalid_argument);
  opts = scheduled_opts(two_tenants(10, 20), SchedulerPolicy::kEdf);
  opts.tenants[1].model_kind = "mlp";
  EXPECT_THROW(InferenceServer(ds, test_device(), opts),
               std::invalid_argument);
  opts = scheduled_opts(two_tenants(10, 20), SchedulerPolicy::kEdf);
  opts.tenants[0].fanouts = {4, 0};
  EXPECT_THROW(InferenceServer(ds, test_device(), opts),
               std::invalid_argument);
  opts = scheduled_opts(two_tenants(10, 20), SchedulerPolicy::kSlack);
  opts.scheduler.estimator_ewma = 2.0;
  EXPECT_THROW(InferenceServer(ds, test_device(), opts),
               std::invalid_argument);
}

TEST(ScheduledServing, OutOfRangeTenantIsRejectedAtTheBoundary) {
  const Dataset ds = make_dataset("G4");
  const InferenceServer server(
      ds, test_device(),
      scheduled_opts(two_tenants(1u << 30, 1u << 30),
                     SchedulerPolicy::kFifoAggregate));
  std::vector<SeedRequest> reqs(2);
  reqs[0].seeds = {1, 2};
  reqs[0].tenant = 0;
  reqs[1].seeds = {3};
  reqs[1].tenant = 7;  // no such tenant
  const ServingReport rep = server.serve(reqs);
  EXPECT_EQ(rep.outcomes[0].status, serve::Status::kOk);
  EXPECT_EQ(rep.outcomes[1].status, serve::Status::kRejected);
  EXPECT_NE(rep.outcomes[1].error.find("tenant"), std::string::npos);
  EXPECT_EQ(rep.outcomes[1].queue_cycles, 0u);
  EXPECT_EQ(rep.outcomes[1].service_cycles, 0u);
}

/// The load-bearing accounting invariants of the scheduled serial path:
///  * every batch is single-tenant and released at its cut cycle;
///  * per-request arrival + queue + service tiles the decision clock, whose
///    final value is the timeline makespan;
///  * Sigma exposed + idle == makespan (releases open real idle);
///  * Sigma batch cycles == ledger total.
TEST(ScheduledServing, QueueServiceAttributionTilesTheMakespan) {
  const Dataset ds = make_dataset("G4");
  const auto trace = two_tenant_trace(ds, 10, 8, 40000.0, 90000.0);
  const InferenceServer server(
      ds, test_device(),
      scheduled_opts(two_tenants(1u << 28, 1u << 29),
                     SchedulerPolicy::kFifoAggregate));
  const ServingReport rep = server.serve(trace);

  EXPECT_EQ(rep.num_requests, int(trace.size()));
  ASSERT_GT(rep.num_batches, 1);

  std::uint64_t batch_cycles = 0;
  for (const BatchStats& b : rep.batches) {
    EXPECT_TRUE(b.tenant == 0 || b.tenant == 1);
    batch_cycles += b.cycles;
  }
  EXPECT_EQ(batch_cycles, rep.ledger.total());
  EXPECT_EQ(rep.serial_cycles, rep.ledger.total());

  // Exposed + idle tiles the makespan exactly.
  std::uint64_t exposed = 0;
  for (const StageSpan& s : rep.timeline) exposed += s.exposed;
  EXPECT_EQ(exposed + rep.idle_cycles, rep.total_cycles);

  // Request completion times: every request completes by the makespan and
  // the last one completes exactly at it.
  std::uint64_t last_end = 0;
  int served = 0;
  for (std::size_t r = 0; r < trace.size(); ++r) {
    const serve::RequestOutcome& o = rep.outcomes[r];
    if (!serve::is_served(o.status)) continue;
    ++served;
    const std::uint64_t end =
        trace[r].arrival_cycle + o.queue_cycles + o.service_cycles;
    EXPECT_LE(end, rep.total_cycles) << "request " << r;
    last_end = std::max(last_end, end);
  }
  EXPECT_EQ(served, int(trace.size()));
  EXPECT_EQ(last_end, rep.total_cycles);

  // Tenant reports cover every request and agree with the outcomes.
  ASSERT_EQ(rep.tenants.size(), 2u);
  EXPECT_EQ(rep.tenants[0].requests + rep.tenants[1].requests,
            rep.num_requests);
  for (const serve::TenantReport& tr : rep.tenants) {
    EXPECT_EQ(tr.served, tr.requests - tr.rejected - tr.failed);
    EXPECT_GE(tr.p99_latency_cycles, tr.p50_latency_cycles);
    EXPECT_GE(tr.max_latency_cycles, tr.p99_latency_cycles);
  }
}

/// Predictions under a tenant whose (model, fanouts) equal an untenanted
/// server's options are bit-identical to that server's — scheduling decides
/// *when*, never *what* (GCN/GAT; GIN is batch-coupled by design).
TEST(ScheduledServing, PredictionsBitIdenticalToUntenantedServing) {
  const Dataset ds = make_dataset("G4");
  const auto trace = two_tenant_trace(ds, 9, 7, 50000.0, 80000.0);

  const std::vector<TenantSpec> tenants = two_tenants(1u << 28, 1u << 29);
  const InferenceServer scheduled(
      ds, test_device(), scheduled_opts(tenants, SchedulerPolicy::kEdf));
  const ServingReport srep = scheduled.serve(trace);

  for (int t = 0; t < 2; ++t) {
    ServeOptions flat;
    flat.model_kind = tenants[std::size_t(t)].model_kind;
    flat.fanouts = tenants[std::size_t(t)].fanouts;
    flat.batch_size = 4;
    flat.cache_alpha = 0.25;
    flat.feature_dim_override = 16;
    flat.seed = 3;
    const InferenceServer plain(ds, test_device(), flat);
    // The tenant's requests, closed-loop, stripped of tenancy.
    std::vector<SeedRequest> own;
    std::vector<std::size_t> original;
    for (std::size_t r = 0; r < trace.size(); ++r) {
      if (trace[r].tenant != t) continue;
      own.push_back(SeedRequest{trace[r].seeds, 0, 0});
      original.push_back(r);
    }
    const ServingReport frep = plain.serve(own);
    for (std::size_t i = 0; i < own.size(); ++i) {
      EXPECT_EQ(srep.predictions[original[i]], frep.predictions[i])
          << "tenant " << t << " request " << original[i];
    }
  }
}

/// Serial, pipelined, and chaos-recovered scheduled runs agree on every
/// per-request observable and on the tenant reports: the batch sequence is
/// committed on the decision clock, pipelining only overlaps its execution,
/// and the chaos schedule keys on trace indices alone.
TEST(ScheduledServing, SerialPipelinedAndChaosOutcomesMatchPerTenant) {
  const Dataset ds = make_dataset("G4");
  const auto trace = two_tenant_trace(ds, 12, 9, 30000.0, 70000.0);
  const std::vector<TenantSpec> tenants = two_tenants(1u << 28, 1u << 29);

  ServeOptions serial = scheduled_opts(tenants, SchedulerPolicy::kSlack);
  ServeOptions piped = serial;
  piped.pipeline = true;

  const ServingReport a = InferenceServer(ds, test_device(), serial).serve(trace);
  const ServingReport b = InferenceServer(ds, test_device(), piped).serve(trace);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t r = 0; r < a.outcomes.size(); ++r) {
    EXPECT_EQ(a.outcomes[r].status, b.outcomes[r].status) << r;
    EXPECT_EQ(a.outcomes[r].queue_cycles, b.outcomes[r].queue_cycles) << r;
    EXPECT_EQ(a.outcomes[r].service_cycles, b.outcomes[r].service_cycles) << r;
    EXPECT_EQ(a.predictions[r], b.predictions[r]) << r;
  }
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_LE(b.total_cycles, a.total_cycles);  // overlap never hurts
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].p99_latency_cycles, b.tenants[t].p99_latency_cycles);
    EXPECT_EQ(a.tenants[t].attainment, b.tenants[t].attainment);
  }

  // Chaos: faults extend service deterministically; serial == pipelined
  // still, and both runs remain internally consistent.
  ServeOptions chaos_serial = serial;
  chaos_serial.chaos.fetch_rate = 0.3;
  chaos_serial.chaos.kernel_rate = 0.15;
  chaos_serial.chaos.seed = 9;
  ServeOptions chaos_piped = chaos_serial;
  chaos_piped.pipeline = true;
  const ServingReport ca =
      InferenceServer(ds, test_device(), chaos_serial).serve(trace);
  const ServingReport cb =
      InferenceServer(ds, test_device(), chaos_piped).serve(trace);
  EXPECT_GT(ca.fault_events, 0);
  for (std::size_t r = 0; r < ca.outcomes.size(); ++r) {
    EXPECT_EQ(ca.outcomes[r].status, cb.outcomes[r].status) << r;
    EXPECT_EQ(ca.outcomes[r].queue_cycles, cb.outcomes[r].queue_cycles) << r;
    EXPECT_EQ(ca.outcomes[r].service_cycles, cb.outcomes[r].service_cycles)
        << r;
    EXPECT_EQ(ca.outcomes[r].trace.size(), cb.outcomes[r].trace.size()) << r;
  }
  EXPECT_EQ(ca.ledger.total(), cb.ledger.total());
}

/// A saturating hot tenant must not starve the cold tenant under the
/// deadline-driven policies: the cold tenant's queue waits stay bounded by
/// the FIFO baseline's, and everything is still served.
TEST(ScheduledServing, DeadlinePoliciesDoNotStarveTheColdTenant) {
  const Dataset ds = make_dataset("G4");
  // Tenant 0 floods (tiny interarrival), tenant 1 trickles.
  const auto trace = two_tenant_trace(ds, 24, 6, 1000.0, 500000.0);
  // Tight SLO for the cold tenant so deadline policies prioritize it.
  std::vector<TenantSpec> tenants = two_tenants(1u << 29, 1u << 22);

  auto run = [&](SchedulerPolicy p) {
    return InferenceServer(ds, test_device(), scheduled_opts(tenants, p))
        .serve(trace);
  };
  const ServingReport fifo = run(SchedulerPolicy::kFifoAggregate);
  const ServingReport edf = run(SchedulerPolicy::kEdf);
  const ServingReport slack = run(SchedulerPolicy::kSlack);

  for (const ServingReport* rep : {&fifo, &edf, &slack}) {
    EXPECT_EQ(rep->served_requests(), int(trace.size()));
    ASSERT_EQ(rep->tenants.size(), 2u);
  }
  // Under chaos too: a degraded hot batch delays, but never starves, the
  // cold tenant (every request still served).
  ServeOptions chaos_opts = scheduled_opts(tenants, SchedulerPolicy::kEdf);
  chaos_opts.chaos.fetch_rate = 0.4;
  chaos_opts.chaos.seed = 13;
  const ServingReport chaos_rep =
      InferenceServer(ds, test_device(), chaos_opts).serve(trace);
  EXPECT_EQ(chaos_rep.tenants[1].served, chaos_rep.tenants[1].requests);

  // The deadline policies keep the cold (tight-SLO) tenant's tail at or
  // below the FIFO baseline's.
  EXPECT_LE(edf.tenants[1].p99_latency_cycles,
            fifo.tenants[1].p99_latency_cycles);
  EXPECT_LE(slack.tenants[1].p99_latency_cycles,
            fifo.tenants[1].p99_latency_cycles);
  EXPECT_GE(edf.tenants[1].attainment, fifo.tenants[1].attainment);
}

/// Scheduled serving is bit-identical across host thread counts, like every
/// other layer of the stack.
TEST(ScheduledServing, DeterministicAcrossHostThreads) {
  const Dataset ds = make_dataset("G4");
  const auto trace = two_tenant_trace(ds, 10, 6, 40000.0, 90000.0);
  auto run = [&](int threads) {
    gpusim::set_host_threads(threads);
    struct Restore {
      ~Restore() { gpusim::set_host_threads(0); }
    } restore;
    return InferenceServer(
               ds, test_device(),
               scheduled_opts(two_tenants(1u << 28, 1u << 29),
                              SchedulerPolicy::kSlack))
        .serve(trace);
  };
  const ServingReport one = run(1);
  const ServingReport four = run(4);
  EXPECT_EQ(one.total_cycles, four.total_cycles);
  EXPECT_EQ(one.ledger.total(), four.ledger.total());
  ASSERT_EQ(one.outcomes.size(), four.outcomes.size());
  for (std::size_t r = 0; r < one.outcomes.size(); ++r) {
    EXPECT_EQ(one.outcomes[r].status, four.outcomes[r].status) << r;
    EXPECT_EQ(one.outcomes[r].queue_cycles, four.outcomes[r].queue_cycles)
        << r;
    EXPECT_EQ(one.outcomes[r].service_cycles, four.outcomes[r].service_cycles)
        << r;
    EXPECT_EQ(one.predictions[r], four.predictions[r]) << r;
  }
  for (std::size_t t = 0; t < one.tenants.size(); ++t) {
    EXPECT_EQ(one.tenants[t].p99_latency_cycles,
              four.tenants[t].p99_latency_cycles);
  }
}

// --- admission control (SchedulerOptions::max_queue_depth / -------------
// --- shed_unmeetable) ----------------------------------------------------

/// Tail drop at the scheduler level: with depth 2 and six simultaneous
/// arrivals, the first two are admitted and the other four shed in arrival
/// order, before any batch is cut.
TEST(ScheduledServingAdmission, SchedulerTailDropsBeyondMaxDepth) {
  SchedulerOptions so;
  so.max_queue_depth = 2;
  TenantScheduler sched(two_tenants(1u << 20, 1u << 20), so, 2);
  for (std::size_t r = 0; r < 6; ++r) sched.enqueue(r, 0, 0);

  const auto plan = sched.next_batch(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->members, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(sched.next_batch(plan->cut_cycle).has_value());

  EXPECT_EQ(sched.peak_queue_depth(), 2u);
  ASSERT_EQ(sched.shed_events().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sched.shed_events()[i].index, i + 2);
    EXPECT_EQ(sched.shed_events()[i].tenant, 0);
    EXPECT_FALSE(sched.shed_events()[i].unmeetable);
  }
}

/// Unmeetable shedding: once the estimator prices a solo batch above the
/// tenant's SLO, arrivals are shed at admission without occupying a slot.
/// Without an observation the estimator is unseeded and nothing is shed.
TEST(ScheduledServingAdmission, SchedulerShedsUnmeetableOnceSeeded) {
  SchedulerOptions so;
  so.shed_unmeetable = true;
  TenantScheduler sched(two_tenants(10, 1u << 30), so, 2);
  sched.observe(0, 1, 1'000'000);  // solo service far above tenant 0's SLO
  sched.enqueue(0, 0, 0);
  sched.enqueue(1, 0, 0);
  sched.enqueue(2, 1, 0);  // the loose tenant is unaffected

  const auto plan = sched.next_batch(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->tenant, 1);
  EXPECT_EQ(plan->members, (std::vector<std::size_t>{2}));
  EXPECT_FALSE(sched.next_batch(plan->cut_cycle).has_value());

  ASSERT_EQ(sched.shed_events().size(), 2u);
  EXPECT_TRUE(sched.shed_events()[0].unmeetable);
  EXPECT_TRUE(sched.shed_events()[1].unmeetable);
  EXPECT_EQ(sched.peak_queue_depth(), 1u);  // only the loose tenant queued

  // Unseeded estimator: the same arrivals are all admitted.
  TenantScheduler fresh(two_tenants(10, 1u << 30), so, 2);
  fresh.enqueue(0, 0, 0);
  fresh.enqueue(1, 0, 0);
  ASSERT_TRUE(fresh.next_batch(0).has_value());
  EXPECT_TRUE(fresh.shed_events().empty());
}

/// One overloaded tenant end to end: a bounded queue keeps the backlog at
/// the cap, sheds the overflow as kRejected, and the per-tenant accounting
/// tiles — requests == served + failed + rejected.
TEST(ScheduledServingAdmission, BoundedQueueShedsAndAccountingTiles) {
  const Dataset ds = make_dataset("G4");
  TenantSpec t;
  t.name = "overloaded";
  t.model_kind = "gcn";
  t.fanouts = {6, 3};
  t.slo_cycles = 40'000'000;

  TenantWorkload w;
  w.requests.num_requests = 48;
  w.requests.max_seeds = 2;
  w.requests.seed = 31;
  w.arrivals.mean_interarrival_cycles = 100.0;  // far faster than service
  w.arrivals.seed = 5;
  const auto trace = make_open_loop_trace(ds.coo, {w});

  ServeOptions opts = scheduled_opts({t}, SchedulerPolicy::kFifoAggregate);
  const ServingReport open =
      InferenceServer(ds, test_device(), opts).serve(trace);

  constexpr std::size_t kDepth = 6;
  opts.scheduler.max_queue_depth = kDepth;
  const ServingReport bounded =
      InferenceServer(ds, test_device(), opts).serve(trace);

  EXPECT_GT(open.peak_queue_depth, kDepth);  // genuinely overloaded
  EXPECT_LE(bounded.peak_queue_depth, kDepth);
  ASSERT_EQ(bounded.tenants.size(), 1u);
  const serve::TenantReport& rep = bounded.tenants[0];
  EXPECT_GT(rep.rejected, 0);
  EXPECT_GT(rep.served, 0);
  EXPECT_EQ(rep.requests, rep.served + rep.failed + rep.rejected);

  for (std::size_t r = 0; r < trace.size(); ++r) {
    const serve::RequestOutcome& oc = bounded.outcomes[r];
    if (oc.status != serve::Status::kRejected) continue;
    EXPECT_NE(oc.error.find("max_queue_depth"), std::string::npos) << r;
    EXPECT_TRUE(bounded.predictions[r].empty()) << r;
    EXPECT_EQ(oc.queue_cycles, 0u) << r;
    EXPECT_EQ(oc.service_cycles, 0u) << r;
  }
}

/// Admission defaults are inert: depth 0 (unbounded) and a cap the backlog
/// never reaches produce bit-identical runs, and the peak-depth gauge is
/// tracked either way.
TEST(ScheduledServingAdmission, DefaultsAndSlackCapsAreBitIdentical) {
  const Dataset ds = make_dataset("G4");
  const auto trace = two_tenant_trace(ds, 10, 6, 40000.0, 90000.0);
  ServeOptions opts =
      scheduled_opts(two_tenants(1u << 28, 1u << 29), SchedulerPolicy::kSlack);
  const ServingReport def = InferenceServer(ds, test_device(), opts).serve(trace);

  opts.scheduler.max_queue_depth = 1u << 20;  // never reached
  const ServingReport capped =
      InferenceServer(ds, test_device(), opts).serve(trace);

  EXPECT_GT(def.peak_queue_depth, 0u);
  EXPECT_EQ(capped.peak_queue_depth, def.peak_queue_depth);
  EXPECT_EQ(capped.total_cycles, def.total_cycles);
  EXPECT_EQ(capped.ledger.total(), def.ledger.total());
  EXPECT_EQ(capped.predictions, def.predictions);
  ASSERT_EQ(capped.outcomes.size(), def.outcomes.size());
  for (std::size_t r = 0; r < def.outcomes.size(); ++r) {
    EXPECT_EQ(capped.outcomes[r].status, def.outcomes[r].status) << r;
    EXPECT_EQ(capped.outcomes[r].queue_cycles, def.outcomes[r].queue_cycles)
        << r;
  }
  for (const serve::RequestOutcome& oc : def.outcomes) {
    EXPECT_NE(oc.status, serve::Status::kRejected);
  }
}

}  // namespace
}  // namespace gnnone
