// Fault-tolerant serving: containment, the degradation ladder, and the
// deterministic chaos schedule (src/serve/chaos.*, server.cc recovery).
//
// The invariants mirrored by bench/bench_chaos.cc at sweep scale:
//  * a stage fault never crashes serve() and never leaks device bytes;
//  * only truly-poisoned requests fail; every request served without a
//    degraded mode is bit-identical to the fault-free run;
//  * every degraded/failed request carries its DegradationTrace, and
//    backoff shows up in the ledger and the timeline attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gnn/train.h"
#include "serve/server.h"

namespace gnnone {
namespace {

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

ServeOptions chaos_opts() {
  ServeOptions o;
  o.model_kind = "gcn";  // batch-invariant predictions (see server.h)
  o.batch_size = 4;
  o.fanouts = {6, 3};
  o.cache_alpha = 0.1;
  o.feature_dim_override = 16;
  o.backend = Backend::kAuto;
  o.seed = 3;
  return o;
}

std::vector<SeedRequest> chaos_trace(const Dataset& ds, int n = 14) {
  RequestTraceOptions ro;
  ro.num_requests = n;
  ro.max_seeds = 3;
  ro.hot_fraction = 0.5;
  ro.seed = 21;
  return make_request_trace(ds.coo, ro);
}

/// Cross-checks the accounting identities that must hold fault-free AND
/// under recovery: per-batch stage sums, ledger equalities, and (serial
/// mode) makespan == ledger total.
void expect_report_consistent(const ServingReport& rep) {
  std::uint64_t batch_sum = 0;
  for (const BatchStats& b : rep.batches) {
    EXPECT_EQ(b.cycles, b.sample_cycles + b.gather.cycles + b.forward_cycles +
                            b.backoff_cycles);
    EXPECT_EQ(b.gather.hits + b.gather.misses,
              std::uint64_t(b.num_unique_vertices));
    batch_sum += b.cycles;
  }
  EXPECT_EQ(batch_sum, rep.ledger.total());
  EXPECT_EQ(rep.serial_cycles, rep.ledger.total());
  if (!rep.pipelined) EXPECT_EQ(rep.total_cycles, rep.ledger.total());
  EXPECT_EQ(rep.ledger.by_tag("sample"), rep.sample_cycles);
  EXPECT_EQ(rep.ledger.by_tag("feature_gather"), rep.gather_cycles);
  EXPECT_EQ(rep.ledger.by_tag("backoff"), rep.backoff_cycles);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_hit"), rep.cache_hit_bytes);
  EXPECT_EQ(rep.bytes.by_tag("feature_cache_miss"), rep.cache_miss_bytes);
  // Every busy instant attributed exactly once.
  std::uint64_t exposed = 0;
  for (const StageSpan& s : rep.timeline) {
    EXPECT_EQ(s.exposed + s.overlapped, s.cycles());
    exposed += s.exposed;
  }
  EXPECT_EQ(exposed, rep.total_cycles);
  // Outcomes and predictions agree on who was served.
  ASSERT_EQ(rep.outcomes.size(), rep.predictions.size());
  for (std::size_t r = 0; r < rep.outcomes.size(); ++r) {
    if (serve::is_served(rep.outcomes[r].status)) {
      EXPECT_FALSE(rep.predictions[r].empty()) << "request " << r;
      EXPECT_TRUE(rep.outcomes[r].error.empty()) << "request " << r;
    } else {
      EXPECT_TRUE(rep.predictions[r].empty()) << "request " << r;
      EXPECT_FALSE(rep.outcomes[r].error.empty()) << "request " << r;
    }
  }
}

/// Requests served at full fidelity must match the fault-free predictions
/// bit for bit; returns how many were compared.
int expect_unaffected_bit_identical(const ServingReport& chaos,
                                    const ServingReport& clean) {
  int compared = 0;
  for (std::size_t r = 0; r < chaos.outcomes.size(); ++r) {
    const serve::RequestOutcome& o = chaos.outcomes[r];
    if (o.status == serve::Status::kOk && !o.truncated_fanouts) {
      EXPECT_EQ(chaos.predictions[r], clean.predictions[r]) << "request " << r;
      ++compared;
    }
  }
  return compared;
}

// --- the deterministic fault schedule ---------------------------------------

TEST(ChaosSchedule, UniformDrawsAreDeterministicAndInRange) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    for (std::uint64_t key = 0; key < 64; ++key) {
      const double u = serve::chaos_uniform(seed, 42, key);
      EXPECT_GE(u, 0.0);
      EXPECT_LT(u, 1.0);
      EXPECT_EQ(u, serve::chaos_uniform(seed, 42, key));
    }
  }
  // Different streams decorrelate the same key.
  EXPECT_NE(serve::chaos_uniform(1, 2, 5), serve::chaos_uniform(1, 3, 5));
}

TEST(ChaosSchedule, RateBoundsAndFateShapes) {
  serve::ChaosOptions chaos;
  chaos.seed = 11;
  chaos.oom_rate = 0.0;
  EXPECT_FALSE(serve::oom_fate(chaos, 0).poisoned);
  EXPECT_FALSE(chaos.enabled());

  chaos.oom_rate = 1.0;
  chaos.kernel_rate = 1.0;
  EXPECT_TRUE(chaos.enabled());
  std::set<int> rungs;
  int cures = 0, total = 0;
  for (std::size_t r = 0; r < 200; ++r) {
    const serve::OomFate f = serve::oom_fate(chaos, r);
    ASSERT_TRUE(f.poisoned);
    ASSERT_GE(f.cure_rung, 1);
    ASSERT_LE(f.cure_rung, 3);
    rungs.insert(f.cure_rung);
    const serve::KernelFate k = serve::kernel_fate(chaos, r);
    ASSERT_TRUE(k.poisoned);
    cures += k.safe_backend_cures ? 1 : 0;
    ++total;
    const serve::FetchFate ff = serve::fetch_fate(1.0, chaos.seed, r);
    ASSERT_TRUE(ff.poisoned);
    ASSERT_GE(ff.failing_attempts, 1);
  }
  EXPECT_EQ(rungs.size(), 3u);        // all severities occur
  EXPECT_GT(cures, total / 2);        // most kernel faults are curable
  EXPECT_LT(cures, total);            // but not all
}

// --- option and request validation ------------------------------------------

TEST(ServeValidation, RejectsOutOfRangeOptions) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reject = [&](void (*mutate)(ServeOptions&)) {
    ServeOptions o = chaos_opts();
    mutate(o);
    EXPECT_THROW(o.Validate(), std::invalid_argument);
    EXPECT_THROW(InferenceServer(ds, dev, o), std::invalid_argument);
  };
  reject([](ServeOptions& o) { o.model_kind = "transformer"; });
  reject([](ServeOptions& o) { o.batch_size = 0; });
  reject([](ServeOptions& o) { o.batch_size = -3; });
  reject([](ServeOptions& o) { o.fanouts.clear(); });
  reject([](ServeOptions& o) { o.fanouts = {10, 0}; });
  reject([](ServeOptions& o) { o.fanouts = {-1}; });
  reject([](ServeOptions& o) { o.cache_alpha = -0.1; });
  reject([](ServeOptions& o) { o.cache_alpha = 1.5; });
  reject([](ServeOptions& o) { o.feature_dim_override = -1; });
  reject([](ServeOptions& o) { o.chaos.oom_rate = 1.5; });
  reject([](ServeOptions& o) { o.chaos.fetch_rate = -0.2; });
  reject([](ServeOptions& o) { o.retry.max_retries = -1; });
  EXPECT_NO_THROW(chaos_opts().Validate());
}

TEST(ServeValidation, InvalidRequestsAreRejectedPerRequestNotFatal) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const InferenceServer server(ds, dev, chaos_opts());
  auto reqs = chaos_trace(ds, 6);
  const vid_t n = ds.coo.num_rows;
  reqs.push_back({{n}});            // out of range (== num_vertices)
  reqs.push_back({{vid_t(-1)}});    // negative id
  reqs.push_back({{3, 7, 3}});      // duplicate within one request
  reqs.push_back({{}});             // empty seed set

  const ServingReport rep = server.serve(reqs);
  EXPECT_EQ(rep.rejected_requests(), 4);
  EXPECT_EQ(rep.served_requests(), 6);
  EXPECT_EQ(rep.failed_requests(), 0);
  EXPECT_DOUBLE_EQ(rep.availability(), 1.0);  // rejected are not failures
  for (std::size_t r = 6; r < reqs.size(); ++r) {
    EXPECT_EQ(rep.outcomes[r].status, serve::Status::kRejected);
    EXPECT_FALSE(rep.outcomes[r].error.empty());
    EXPECT_TRUE(rep.predictions[r].empty());
    EXPECT_TRUE(rep.outcomes[r].trace.empty());
  }
  // The valid requests are untouched by their bad neighbors: batches are
  // formed over the admitted set only.
  const ServingReport clean = server.serve(std::span(reqs).first(6));
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(rep.predictions[r], clean.predictions[r]);
  }
  expect_report_consistent(rep);
}

// --- fault-free behavior is unchanged ---------------------------------------

TEST(ChaosServing, FaultFreeRunHasCleanOutcomes) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const InferenceServer server(ds, dev, chaos_opts());
  const ServingReport rep = server.serve(chaos_trace(ds));
  EXPECT_EQ(rep.served_requests(), rep.num_requests);
  EXPECT_EQ(rep.fault_events, 0);
  EXPECT_EQ(rep.backoff_cycles, 0u);
  EXPECT_EQ(rep.ledger.by_tag("backoff"), 0u);
  for (const serve::RequestOutcome& o : rep.outcomes) {
    EXPECT_EQ(o.status, serve::Status::kOk);
    EXPECT_TRUE(o.trace.empty());
    EXPECT_FALSE(o.truncated_fanouts);
  }
  expect_report_consistent(rep);
  // Between serves exactly the pinned cache is resident.
  EXPECT_EQ(server.device_memory().in_use(), server.cache().device_bytes());
}

// --- containment per fault site ---------------------------------------------

void run_site_containment(serve::ChaosSite site) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = chaos_trace(ds);
  const ServingReport clean =
      InferenceServer(ds, dev, chaos_opts()).serve(reqs);

  ServeOptions o = chaos_opts();
  o.chaos.seed = 5;
  o.chaos.oom_rate = 0.3;
  o.chaos.oom_site = site;
  const InferenceServer server(ds, dev, o);
  const ServingReport rep = server.serve(reqs);

  // Faults fired and were contained: nothing threw, bytes unwound.
  EXPECT_GT(rep.fault_events, 0) << serve::site_name(site);
  EXPECT_GT(rep.backoff_cycles, 0u);
  EXPECT_EQ(server.device_memory().in_use(), server.cache().device_bytes());

  int degraded = 0, failed = 0;
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const serve::RequestOutcome& oc = rep.outcomes[r];
    const serve::OomFate fate = serve::oom_fate(o.chaos, r);
    if (!fate.poisoned) {
      // A healthy request may ride recovery rungs with its batch but is
      // always served at full fidelity.
      EXPECT_EQ(oc.status, serve::Status::kOk) << "request " << r;
      EXPECT_FALSE(oc.truncated_fanouts);
    } else if (fate.cure_rung == 1) {
      EXPECT_EQ(oc.status, serve::Status::kOk) << "request " << r;
      // Cured by running alone: the trace records the isolation.
      EXPECT_FALSE(oc.trace.empty());
    } else if (fate.cure_rung == 2) {
      EXPECT_EQ(oc.status, serve::Status::kDegraded) << "request " << r;
      EXPECT_TRUE(oc.truncated_fanouts);
      ASSERT_FALSE(oc.trace.empty());
      EXPECT_EQ(oc.trace.back().action, serve::ServeAction::kTruncateFanouts);
      ++degraded;
    } else {
      EXPECT_EQ(oc.status, serve::Status::kOom) << "request " << r;
      ASSERT_FALSE(oc.trace.empty());
      // Walked the whole ladder before giving up.
      EXPECT_EQ(oc.trace.back().action, serve::ServeAction::kSafeMode);
      EXPECT_EQ(oc.trace.back().fault, serve::Status::kOom);
      EXPECT_EQ(oc.trace.back().site, site);
      ++failed;
    }
  }
  EXPECT_GT(expect_unaffected_bit_identical(rep, clean), 0);
  EXPECT_EQ(rep.served_requests() + failed, rep.num_requests);
  expect_report_consistent(rep);
}

TEST(ChaosServing, OomAtSampleIsContained) {
  run_site_containment(serve::ChaosSite::kSample);
}
TEST(ChaosServing, OomAtGatherIsContained) {
  run_site_containment(serve::ChaosSite::kGather);
}
TEST(ChaosServing, OomAtForwardIsContained) {
  run_site_containment(serve::ChaosSite::kForward);
}

TEST(ChaosServing, TransientFetchFaultsClearThroughRetries) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = chaos_trace(ds);
  const ServingReport clean =
      InferenceServer(ds, dev, chaos_opts()).serve(reqs);

  ServeOptions o = chaos_opts();
  o.chaos.seed = 9;
  o.chaos.fetch_rate = 0.4;
  const InferenceServer server(ds, dev, o);
  const ServingReport rep = server.serve(reqs);

  EXPECT_GT(rep.fault_events, 0);
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const serve::FetchFate fate =
        serve::fetch_fate(o.chaos.fetch_rate, o.chaos.seed, r);
    if (fate.poisoned && fate.failing_attempts > 1000) {
      // The incurable tail: fails every rung, surfaces as kTransientFetch.
      EXPECT_EQ(rep.outcomes[r].status, serve::Status::kTransientFetch)
          << "request " << r;
      EXPECT_EQ(rep.outcomes[r].trace.back().action,
                serve::ServeAction::kSafeMode);
    } else {
      // Transients clear once their scheduled failures run out.
      EXPECT_TRUE(serve::is_served(rep.outcomes[r].status)) << "request " << r;
    }
  }
  EXPECT_GT(expect_unaffected_bit_identical(rep, clean), 0);
  EXPECT_EQ(server.device_memory().in_use(), server.cache().device_bytes());
  expect_report_consistent(rep);
}

TEST(ChaosServing, KernelFaultsFallBackToSafeBackend) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = chaos_trace(ds);
  const ServingReport clean =
      InferenceServer(ds, dev, chaos_opts()).serve(reqs);

  ServeOptions o = chaos_opts();
  o.chaos.seed = 13;
  o.chaos.kernel_rate = 0.3;
  const InferenceServer server(ds, dev, o);
  const ServingReport rep = server.serve(reqs);

  int cured = 0;
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const serve::KernelFate fate = serve::kernel_fate(o.chaos, r);
    if (!fate.poisoned) {
      EXPECT_EQ(rep.outcomes[r].status, serve::Status::kOk) << "request " << r;
    } else if (fate.safe_backend_cures) {
      // The safe-backend rung cured it (degraded: it rode the whole ladder).
      EXPECT_EQ(rep.outcomes[r].status, serve::Status::kDegraded)
          << "request " << r;
      EXPECT_EQ(rep.outcomes[r].trace.back().action,
                serve::ServeAction::kSafeMode);
      ++cured;
    } else {
      EXPECT_EQ(rep.outcomes[r].status, serve::Status::kKernelFault)
          << "request " << r;
    }
  }
  EXPECT_GT(cured, 0);
  EXPECT_GT(expect_unaffected_bit_identical(rep, clean), 0);
  expect_report_consistent(rep);
}

// --- serial vs pipelined, determinism ---------------------------------------

TEST(ChaosServing, PipelinedMatchesSerialOutcomesUnderChaos) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = chaos_trace(ds);
  ServeOptions serial = chaos_opts();
  serial.chaos.seed = 5;
  serial.chaos.oom_rate = 0.25;
  serial.chaos.fetch_rate = 0.2;
  serial.chaos.kernel_rate = 0.15;
  ServeOptions piped = serial;
  piped.pipeline = true;

  const ServingReport rs = InferenceServer(ds, dev, serial).serve(reqs);
  const ServingReport rp = InferenceServer(ds, dev, piped).serve(reqs);

  // The chaos schedule keys on trace indices, never on pipeline order, so
  // recovery produces identical outcomes, charges, and predictions.
  EXPECT_EQ(rs.predictions, rp.predictions);
  EXPECT_EQ(rs.ledger.total(), rp.ledger.total());
  EXPECT_EQ(rs.backoff_cycles, rp.backoff_cycles);
  EXPECT_EQ(rs.fault_events, rp.fault_events);
  ASSERT_EQ(rs.outcomes.size(), rp.outcomes.size());
  for (std::size_t r = 0; r < rs.outcomes.size(); ++r) {
    EXPECT_EQ(rs.outcomes[r].status, rp.outcomes[r].status) << r;
    EXPECT_EQ(rs.outcomes[r].trace.size(), rp.outcomes[r].trace.size()) << r;
  }
  EXPECT_LE(rp.total_cycles, rs.total_cycles);  // overlap never hurts
  expect_report_consistent(rs);
  expect_report_consistent(rp);  // Sigma exposed == makespan under chaos
}

TEST(ChaosServing, ChaosRunsAreDeterministic) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto reqs = chaos_trace(ds);
  ServeOptions o = chaos_opts();
  o.chaos.seed = 17;
  o.chaos.oom_rate = 0.2;
  o.chaos.fetch_rate = 0.2;
  const InferenceServer server(ds, dev, o);
  const ServingReport a = server.serve(reqs);
  const ServingReport b = server.serve(reqs);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.backoff_cycles, b.backoff_cycles);
  EXPECT_EQ(a.fault_events, b.fault_events);
  for (std::size_t r = 0; r < a.outcomes.size(); ++r) {
    EXPECT_EQ(a.outcomes[r].status, b.outcomes[r].status);
  }
}

// --- real DeviceMemory faults through the serving path ----------------------

TEST(ChaosServing, ExternalOneShotOomIsAbsorbedAndServerStaysReusable) {
  // A test-armed fail_at_allocation on a shared tracker — the PR 1 fault
  // machinery, no chaos schedule at all — unwinds leak-free, the retry rung
  // absorbs it (one-shots self-consume), and every request is served.
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  gpusim::DeviceMemory mem(dev.device_memory_bytes);
  ServeOptions o = chaos_opts();
  o.device_memory = &mem;
  const InferenceServer server(ds, dev, o);
  const auto reqs = chaos_trace(ds);
  const ServingReport clean = server.serve(reqs);
  ASSERT_EQ(clean.served_requests(), clean.num_requests);

  for (std::uint64_t nth : {1ull, 2ull, 3ull, 5ull, 8ull}) {
    mem.fail_at_allocation(nth);
    const ServingReport rep = server.serve(reqs);
    EXPECT_EQ(rep.served_requests(), rep.num_requests) << "nth=" << nth;
    EXPECT_GE(rep.fault_events, 1) << "nth=" << nth;
    EXPECT_EQ(mem.in_use(), server.cache().device_bytes()) << "nth=" << nth;
    EXPECT_EQ(rep.predictions, clean.predictions) << "nth=" << nth;
    expect_report_consistent(rep);
  }
  mem.clear_faults();
  // Still healthy after repeated injected failures.
  EXPECT_EQ(server.serve(reqs).predictions, clean.predictions);
}

TEST(ChaosServing, SingletonBatchesWalkTheLadderDirectly) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  ServeOptions o = chaos_opts();
  o.batch_size = 1;  // no bisection available: straight to the rungs
  o.chaos.seed = 5;
  o.chaos.oom_rate = 0.3;
  o.chaos.oom_site = serve::ChaosSite::kForward;
  const InferenceServer server(ds, dev, o);
  const ServingReport rep = server.serve(chaos_trace(ds));
  for (std::size_t r = 0; r < rep.outcomes.size(); ++r) {
    const serve::OomFate fate = serve::oom_fate(o.chaos, r);
    if (fate.poisoned && fate.cure_rung == 3) {
      EXPECT_EQ(rep.outcomes[r].status, serve::Status::kOom);
    } else {
      EXPECT_TRUE(serve::is_served(rep.outcomes[r].status)) << r;
    }
  }
  EXPECT_EQ(server.device_memory().in_use(), server.cache().device_bytes());
  expect_report_consistent(rep);
}

// --- the shared error taxonomy ----------------------------------------------

TEST(StatusTaxonomy, NamesAndTrainResultMapping) {
  EXPECT_STREQ(serve::status_name(serve::Status::kOk), "ok");
  EXPECT_STREQ(serve::status_name(serve::Status::kOom), "oom");
  EXPECT_STREQ(serve::status_name(serve::Status::kDegraded), "degraded");
  EXPECT_TRUE(serve::is_served(serve::Status::kDegraded));
  EXPECT_FALSE(serve::is_served(serve::Status::kRejected));

  TrainResult tr;
  tr.fail_reason = "";
  EXPECT_EQ(tr.status(), serve::Status::kOk);
  tr.fail_reason = "OOM";
  EXPECT_EQ(tr.status(), serve::Status::kOom);
  tr.fail_reason = "diverged";
  EXPECT_EQ(tr.status(), serve::Status::kKernelFault);
  tr.fail_reason = "unsupported";
  EXPECT_EQ(tr.status(), serve::Status::kRejected);
}

}  // namespace
}  // namespace gnnone
