// Unit tests for sparse formats and conversions.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "gen/rmat.h"
#include "graph/convert.h"
#include "graph/merge_path.h"
#include "graph/memory_footprint.h"
#include "graph/neighbor_group.h"
#include "graph/row_swizzle.h"

namespace gnnone {
namespace {

Coo sample_coo() {
  // 4x4:
  //   row 0: cols 1, 3
  //   row 1: (empty)
  //   row 2: cols 0, 1, 2
  //   row 3: col 3
  return coo_from_edges(4, 4, {{0, 1}, {0, 3}, {2, 0}, {2, 1}, {2, 2}, {3, 3}});
}

TEST(Coo, BuildSortsAndDedups) {
  const Coo coo = coo_from_edges(3, 3, {{2, 1}, {0, 2}, {2, 1}, {0, 0}});
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_TRUE(coo.is_csr_arranged());
  EXPECT_EQ(coo.row, (std::vector<vid_t>{0, 0, 2}));
  EXPECT_EQ(coo.col, (std::vector<vid_t>{0, 2, 1}));
}

TEST(Coo, RejectsOutOfRange) {
  EXPECT_THROW(coo_from_edges(2, 2, {{0, 5}}), std::out_of_range);
  EXPECT_THROW(coo_from_edges(2, 2, {{-1, 0}}), std::out_of_range);
}

TEST(Convert, CsrRoundTrip) {
  const Coo coo = sample_coo();
  const Csr csr = coo_to_csr(coo);
  validate(csr);
  EXPECT_EQ(csr.row_length(0), 2);
  EXPECT_EQ(csr.row_length(1), 0);
  EXPECT_EQ(csr.row_length(2), 3);
  const Coo back = csr_to_coo(csr);
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
}

TEST(Convert, CsrRoundTripOnRmat) {
  RmatParams p;
  p.scale = 10;
  const Coo coo = rmat_graph(p);
  validate(coo);
  const Coo back = csr_to_coo(coo_to_csr(coo));
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
}

TEST(Convert, TransposeIsInvolution) {
  const Coo coo = sample_coo();
  const auto [t, perm] = coo_transpose(coo);
  validate(t);
  EXPECT_EQ(t.nnz(), coo.nnz());
  // Permutation maps transposed position -> original position.
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(t.row[i], coo.col[std::size_t(perm[i])]);
    EXPECT_EQ(t.col[i], coo.row[std::size_t(perm[i])]);
  }
  const auto [tt, perm2] = coo_transpose(t);
  EXPECT_EQ(tt.row, coo.row);
  EXPECT_EQ(tt.col, coo.col);
}

TEST(Convert, SymmetrizeDoublesEdges) {
  const EdgeList e = {{0, 1}, {2, 3}};
  const auto s = symmetrize(e);
  EXPECT_EQ(s.size(), 4u);
  const Coo coo = coo_from_edges(4, 4, s);
  // Every NZE (r, c) has its mirror (c, r).
  std::set<std::pair<vid_t, vid_t>> entries;
  for (std::size_t i = 0; i < coo.row.size(); ++i) {
    entries.emplace(coo.row[i], coo.col[i]);
  }
  for (const auto& [r, c] : entries) {
    EXPECT_TRUE(entries.count({c, r})) << r << "," << c;
  }
}

TEST(Convert, RowLengthsSumToNnz) {
  const Coo coo = sample_coo();
  const auto len = row_lengths(coo);
  EXPECT_EQ(std::accumulate(len.begin(), len.end(), eid_t{0}), coo.nnz());
}

TEST(NeighborGroups, CoverAllNzesExactlyOnce) {
  RmatParams p;
  p.scale = 9;
  const Csr csr = coo_to_csr(rmat_graph(p));
  for (int gs : {4, 32, 64}) {
    const NeighborGroups ng = build_neighbor_groups(csr, gs);
    std::vector<int> covered(std::size_t(csr.nnz()), 0);
    for (std::size_t g = 0; g < ng.num_groups(); ++g) {
      EXPECT_GE(ng.group_len[g], 1);
      EXPECT_LE(ng.group_len[g], gs);
      for (vid_t i = 0; i < ng.group_len[g]; ++i) {
        covered[std::size_t(ng.group_start[g] + i)] += 1;
      }
      // Group lies inside its row.
      EXPECT_GE(ng.group_start[g], csr.row_begin(ng.group_row[g]));
      EXPECT_LE(ng.group_start[g] + ng.group_len[g],
                csr.row_end(ng.group_row[g]));
    }
    for (int c : covered) EXPECT_EQ(c, 1);
  }
}

TEST(NeighborGroups, RejectsBadGroupSize) {
  const Csr csr = coo_to_csr(sample_coo());
  EXPECT_THROW(build_neighbor_groups(csr, 0), std::invalid_argument);
}

TEST(MergePath, PartitionCoversMergeMatrix) {
  RmatParams p;
  p.scale = 9;
  const Csr csr = coo_to_csr(rmat_graph(p));
  const int parts = 37;
  const auto coords = merge_path_partition(csr, parts);
  ASSERT_EQ(coords.size(), std::size_t(parts) + 1);
  EXPECT_EQ(coords.front().row, 0);
  EXPECT_EQ(coords.front().nze, 0);
  EXPECT_EQ(coords.back().row, csr.num_rows);
  EXPECT_EQ(coords.back().nze, csr.nnz());
  for (std::size_t i = 1; i < coords.size(); ++i) {
    EXPECT_GE(coords[i].row, coords[i - 1].row);
    EXPECT_GE(coords[i].nze, coords[i - 1].nze);
  }
  // Every coordinate lies on the merge path: nze within the row's range.
  for (const auto& c : coords) {
    if (c.row < csr.num_rows) {
      EXPECT_GE(c.nze, 0);
      EXPECT_LE(c.nze, csr.nnz());
      if (c.row > 0) EXPECT_GE(c.nze, csr.offsets[std::size_t(c.row) - 1]);
      EXPECT_LE(c.nze, csr.offsets[std::size_t(c.row)]);
    }
  }
}

TEST(RowSwizzle, SortsByDecreasingLength) {
  const Csr csr = coo_to_csr(sample_coo());
  const RowSwizzle rs = build_row_swizzle(csr);
  ASSERT_EQ(rs.order.size(), 4u);
  for (std::size_t i = 1; i < rs.order.size(); ++i) {
    EXPECT_GE(csr.row_length(rs.order[i - 1]), csr.row_length(rs.order[i]));
  }
  EXPECT_EQ(rs.order[0], 2);  // longest row
}

TEST(Footprint, DualFormatCostsMoreThanCooOnly) {
  const eid_t nnz = 1000000;
  const vid_t rows = 100000;
  EXPECT_GT(dgl_dual_format_bytes(nnz, rows), coo_only_bytes(nnz, rows) / 2);
  // DGL's CSR+COO is strictly larger than a single COO (per direction).
  EXPECT_GT(dgl_dual_format_bytes(nnz, rows), coo_only_bytes(nnz, rows));
}

TEST(Validate, CatchesCorruption) {
  Csr csr = coo_to_csr(sample_coo());
  csr.offsets[2] = 100;
  EXPECT_THROW(validate(csr), std::invalid_argument);
  Coo coo = sample_coo();
  coo.col[0] = 99;
  EXPECT_THROW(validate(coo), std::invalid_argument);
}

}  // namespace
}  // namespace gnnone
