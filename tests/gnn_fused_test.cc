// Tests for the fused-attention training backend (extension): functional
// equivalence with the unfused backends, gradient correctness through the
// fused node, and the expected cost savings.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/rng.h"
#include "gnn/backends.h"
#include "gnn/train.h"
#include "tensor/optim.h"

namespace gnnone {
namespace {

Coo small_graph() {
  PowerLawParams p;
  p.n = 96;
  p.avg_degree = 6;
  p.seed = 23;
  return power_law(p);
}

Tensor random_tensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  for (std::size_t i = 0; i < std::size_t(t.numel()); ++i) {
    t[i] = float(rng.normal());
  }
  return t;
}

OpContext plain_ctx() {
  OpContext ctx;
  ctx.dev = &gpusim::default_device();
  return ctx;
}

TEST(FusedBackend, ForwardMatchesUnfusedOps) {
  const Coo coo = small_graph();
  const int f = 8;
  auto ctx = plain_ctx();

  auto s_src = make_var(random_tensor(coo.num_rows, 1, 1), true);
  auto s_dst = make_var(random_tensor(coo.num_rows, 1, 2), true);
  auto h = make_var(random_tensor(coo.num_rows, f, 3), true);

  SparseEngine fused(Backend::kGnnOneFused, coo, gpusim::default_device());
  const VarPtr out_f = fused.fused_attention(ctx, s_src, s_dst, h, 0.2f);

  SparseEngine plain(Backend::kGnnOne, coo, gpusim::default_device());
  const VarPtr logits = plain.u_add_v(ctx, s_src, s_dst);
  const VarPtr act = vleaky_relu(ctx, logits, 0.2f);
  const VarPtr alpha = plain.edge_softmax(ctx, act);
  const VarPtr out_u = plain.spmm(ctx, alpha, h);

  ASSERT_EQ(out_f->value.numel(), out_u->value.numel());
  for (std::size_t i = 0; i < std::size_t(out_f->value.numel()); ++i) {
    ASSERT_NEAR(out_f->value[i], out_u->value[i],
                1e-4f + 1e-4f * std::abs(out_u->value[i]))
        << i;
  }
}

TEST(FusedBackend, GradientsMatchUnfusedPath) {
  const Coo coo = small_graph();
  const int f = 4;
  auto ctx = plain_ctx();

  // Same leaves for both paths; grads accumulate separately via fresh vars.
  const Tensor ts = random_tensor(coo.num_rows, 1, 4);
  const Tensor td = random_tensor(coo.num_rows, 1, 5);
  const Tensor th = random_tensor(coo.num_rows, f, 6);

  auto run = [&](bool use_fused, Tensor* gs, Tensor* gd, Tensor* gh) {
    auto s_src = make_var(ts, true);
    auto s_dst = make_var(td, true);
    auto h = make_var(th, true);
    SparseEngine engine(use_fused ? Backend::kGnnOneFused : Backend::kGnnOne,
                        coo, gpusim::default_device());
    VarPtr out;
    if (use_fused) {
      out = engine.fused_attention(ctx, s_src, s_dst, h, 0.2f);
    } else {
      const VarPtr logits = engine.u_add_v(ctx, s_src, s_dst);
      const VarPtr act = vleaky_relu(ctx, logits, 0.2f);
      const VarPtr alpha = engine.edge_softmax(ctx, act);
      out = engine.spmm(ctx, alpha, h);
    }
    backward(out);  // seed all-ones
    *gs = s_src->grad;
    *gd = s_dst->grad;
    *gh = h->grad;
  };

  Tensor gs_f, gd_f, gh_f, gs_u, gd_u, gh_u;
  run(true, &gs_f, &gd_f, &gh_f);
  run(false, &gs_u, &gd_u, &gh_u);
  for (std::size_t i = 0; i < std::size_t(gs_f.numel()); ++i) {
    ASSERT_NEAR(gs_f[i], gs_u[i], 1e-3f + 1e-3f * std::abs(gs_u[i])) << i;
    ASSERT_NEAR(gd_f[i], gd_u[i], 1e-3f + 1e-3f * std::abs(gd_u[i])) << i;
  }
  for (std::size_t i = 0; i < std::size_t(gh_f.numel()); ++i) {
    ASSERT_NEAR(gh_f[i], gh_u[i], 1e-3f + 1e-3f * std::abs(gh_u[i])) << i;
  }
}

TEST(FusedBackend, TrainingMatchesUnfusedAccuracyAndIsCheaper) {
  const Dataset d = make_dataset("G0");
  TrainOptions opts;
  opts.measured_epochs = 20;
  opts.epochs = 20;
  opts.feature_dim_override = 16;
  const auto base = train_model(Backend::kGnnOne, d, "gat",
                                gpusim::default_device(), opts);
  const auto fused = train_model(Backend::kGnnOneFused, d, "gat",
                                 gpusim::default_device(), opts);
  ASSERT_TRUE(base.ran);
  ASSERT_TRUE(fused.ran);
  EXPECT_NEAR(base.final_accuracy, fused.final_accuracy, 1e-9);
  EXPECT_LT(fused.cycles_per_epoch, base.cycles_per_epoch);
}

TEST(FusedBackend, GcnGinUnchangedByFusedBackend) {
  // Fusion only touches the attention block; GCN/GIN behave as kGnnOne.
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 5;
  opts.epochs = 5;
  opts.feature_dim_override = 16;
  for (const std::string kind : {"gcn", "gin"}) {
    const auto a = train_model(Backend::kGnnOne, d, kind,
                               gpusim::default_device(), opts);
    const auto b = train_model(Backend::kGnnOneFused, d, kind,
                               gpusim::default_device(), opts);
    EXPECT_EQ(a.cycles_per_epoch, b.cycles_per_epoch) << kind;
    EXPECT_NEAR(a.final_accuracy, b.final_accuracy, 1e-9) << kind;
  }
}

TEST(FusedBackend, SupportsSameGraphsAsGnnOne) {
  const Dataset kron = make_dataset("G10");
  EXPECT_TRUE(SparseEngine::supports(Backend::kGnnOneFused, kron));
  EXPECT_EQ(paper_scale_footprint(Backend::kGnnOneFused, kron, "gat"),
            paper_scale_footprint(Backend::kGnnOne, kron, "gat"));
}

}  // namespace
}  // namespace gnnone
