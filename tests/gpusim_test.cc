// Unit tests for the SIMT simulator: coalescing, ILP windows, barriers,
// occupancy, scheduling, and device memory.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/memory.h"
#include "gpusim/shared.h"
#include "gpusim/warp.h"

namespace gpusim {
namespace {

DeviceSpec spec() { return default_device(); }

LaneArray<std::int64_t> iota_idx(std::int64_t start, std::int64_t stride = 1) {
  LaneArray<std::int64_t> idx{};
  for (int l = 0; l < kWarpSize; ++l) idx[l] = start + l * stride;
  return idx;
}

/// Runs `fn` in a single-warp launch and returns that warp's stats.
WarpStats run_warp(const std::function<void(WarpCtx&)>& fn,
                   std::size_t shared_bytes = 4096) {
  LaunchConfig lc;
  lc.num_ctas = 1;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = shared_bytes;
  const KernelStats ks = launch(spec(), lc, fn);
  return ks.totals;
}

TEST(Coalescing, ConsecutiveFloatsAreOneTransaction) {
  std::vector<float> data(1024, 1.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    const auto v = w.ld_global(data.data(), iota_idx(0));
    EXPECT_FLOAT_EQ(v[0], 1.0f);
  });
  // 32 lanes x 4B = 128B, but the base pointer may straddle a segment edge.
  EXPECT_GE(s.load_transactions, 1u);
  EXPECT_LE(s.load_transactions, 2u);
  EXPECT_EQ(s.bytes_loaded, 32u * 4u);
}

TEST(Coalescing, StridedAccessCostsManyTransactions) {
  std::vector<float> data(32 * 64, 1.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    (void)w.ld_global(data.data(), iota_idx(0, 64));  // 256B stride
  });
  EXPECT_EQ(s.load_transactions, 32u);
}

TEST(Coalescing, SameAddressIsOneTransaction) {
  std::vector<float> data(4, 1.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    (void)w.ld_global(data.data(), iota_idx(0, 0));
  });
  EXPECT_EQ(s.load_transactions, 1u);
}

TEST(Coalescing, Vec4LoadCoversFourSegments) {
  std::vector<float> data(32 * 4 + 4, 1.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l * 4;
    (void)w.ld_global_vec<float, 4>(data.data(), idx);
  });
  // 32 lanes x 16B = 512B contiguous.
  EXPECT_GE(s.load_transactions, 4u);
  EXPECT_LE(s.load_transactions, 5u);
  EXPECT_EQ(s.global_load_instrs, 1u);
}

TEST(IlpWindow, BarrierExposesOneLatencyPerWindow) {
  std::vector<float> data(4096, 0.0f);
  // One load then barrier, repeated 4 times: 4 exposed latencies.
  const auto a = run_warp([&](WarpCtx& w) {
    for (int i = 0; i < 4; ++i) {
      (void)w.ld_global(data.data(), iota_idx(i * 32));
      w.sync();
    }
  });
  // Four loads back-to-back then one barrier: 1 exposed latency.
  const auto b = run_warp([&](WarpCtx& w) {
    for (int i = 0; i < 4; ++i) {
      (void)w.ld_global(data.data(), iota_idx(i * 32));
    }
    w.sync();
  });
  const auto lat = std::uint64_t(spec().global_load_latency);
  EXPECT_EQ(a.stall_cycles, 4 * lat);
  EXPECT_EQ(b.stall_cycles, lat);
  EXPECT_EQ(a.issue_cycles - 3 * std::uint64_t(spec().barrier_cycles),
            b.issue_cycles);
}

TEST(IlpWindow, ShufflesFlushTheWindow) {
  std::vector<float> data(4096, 0.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<float> v{};
    (void)w.ld_global(data.data(), iota_idx(0));
    (void)w.shfl_down(v, 1);
    (void)w.shfl_down(v, 2);  // second shuffle flushes an empty window
  });
  EXPECT_EQ(s.stall_cycles, std::uint64_t(spec().global_load_latency));
  EXPECT_EQ(s.shuffles, 2u);
}

TEST(IlpWindow, MshrCapSerializesHugeWindows) {
  std::vector<float> data(1 << 16, 0.0f);
  DeviceSpec d = spec();
  const int cap = d.max_outstanding_loads;
  const auto s = run_warp([&](WarpCtx& w) {
    for (int i = 0; i < 2 * cap; ++i) {
      (void)w.ld_global(data.data(), iota_idx(i * 32));
    }
    w.use();
  });
  EXPECT_EQ(s.stall_cycles, 2u * std::uint64_t(d.global_load_latency));
}

TEST(Atomics, ConflictSerialization) {
  std::vector<float> out(64, 0.0f);
  const auto distinct = run_warp([&](WarpCtx& w) {
    LaneArray<float> v{};
    v.fill(1.0f);
    w.atomic_add(out.data(), iota_idx(0), v);
  });
  std::vector<float> out2(64, 0.0f);
  const auto same = run_warp([&](WarpCtx& w) {
    LaneArray<float> v{};
    v.fill(1.0f);
    w.atomic_add(out2.data(), iota_idx(0, 0), v);
  });
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out2[0], 32.0f);
  EXPECT_EQ(distinct.atomic_serializations, 0u);
  EXPECT_EQ(same.atomic_serializations, 31u);
  EXPECT_GT(same.issue_cycles, distinct.issue_cycles);
}

TEST(SharedMemory, FunctionalRoundTrip) {
  const auto s = run_warp([&](WarpCtx& w) {
    auto arr = w.shared().alloc<float>(64);
    LaneArray<int> idx{};
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = l;
      v[l] = float(l);
    }
    w.sh_write(std::span<float>(arr), idx, v);
    w.sync();
    const auto r = w.sh_read(std::span<const float>(arr), idx);
    for (int l = 0; l < kWarpSize; ++l) EXPECT_FLOAT_EQ(r[l], float(l));
  });
  EXPECT_EQ(s.shared_ops, 2u);
  EXPECT_EQ(s.barriers, 1u);
}

TEST(SharedMemory, OverflowThrows) {
  SharedMem sm(128);
  (void)sm.alloc<float>(16);
  EXPECT_THROW((void)sm.alloc<float>(32), std::runtime_error);
  sm.reset();
  EXPECT_NO_THROW((void)sm.alloc<float>(32));
}

TEST(Occupancy, LimitedByRegisters) {
  LaunchConfig lc;
  lc.warps_per_cta = 8;  // 256 threads
  lc.regs_per_thread = 64;
  // 65536 regs / (64 * 256) = 4 CTAs.
  EXPECT_EQ(compute_occupancy(spec(), lc).ctas_per_sm, 4);
  lc.regs_per_thread = 128;
  EXPECT_EQ(compute_occupancy(spec(), lc).ctas_per_sm, 2);
}

TEST(Occupancy, LimitedBySharedMemory) {
  LaunchConfig lc;
  lc.warps_per_cta = 2;
  lc.regs_per_thread = 16;
  lc.shared_bytes_per_cta = 32 * 1024;
  // 164KB / 32KB = 5 CTAs.
  EXPECT_EQ(compute_occupancy(spec(), lc).ctas_per_sm, 5);
}

TEST(Occupancy, LimitedByWarpSlots) {
  LaunchConfig lc;
  lc.warps_per_cta = 8;
  lc.regs_per_thread = 16;
  EXPECT_EQ(compute_occupancy(spec(), lc).ctas_per_sm, 8);  // 64/8
  EXPECT_EQ(compute_occupancy(spec(), lc).warps_per_sm, 64);
}

TEST(Occupancy, RejectsConfigExceedingWarpSlots) {
  LaunchConfig lc;
  lc.warps_per_cta = 128;  // > 64 warp slots: cudaErrorInvalidConfiguration
  lc.regs_per_thread = 0;
  EXPECT_THROW(compute_occupancy(spec(), lc), std::invalid_argument);
}

TEST(Occupancy, RejectsConfigExceedingRegisterFile) {
  LaunchConfig lc;
  lc.warps_per_cta = 8;  // 256 threads
  lc.regs_per_thread = 512;  // 512 * 256 = 131072 > 65536 regs
  EXPECT_THROW(compute_occupancy(spec(), lc), std::invalid_argument);
}

TEST(Occupancy, RejectionSurfacesThroughLaunch) {
  // An impossible config must fail the launch (as on hardware), not get
  // silently clamped to one resident CTA.
  LaunchConfig lc;
  lc.num_ctas = 4;
  lc.warps_per_cta = 8;
  lc.regs_per_thread = 512;
  EXPECT_THROW(launch(spec(), lc, [](WarpCtx&) {}), std::invalid_argument);
}

TEST(Occupancy, BoundaryConfigStillFits) {
  // Exactly one CTA's worth of registers is legal and yields occupancy 1.
  LaunchConfig lc;
  lc.warps_per_cta = 8;  // 256 threads
  lc.regs_per_thread = 255;  // 255 * 256 = 65280 <= 65536
  EXPECT_EQ(compute_occupancy(spec(), lc).ctas_per_sm, 1);
}

TEST(Scheduling, ImbalancedWarpDominatesMakespan) {
  std::vector<float> data(1 << 20, 0.0f);
  // 256 CTAs of 1 warp; warp 0 does 1000 dependent loads, others do 1.
  LaunchConfig lc;
  lc.num_ctas = 256;
  lc.warps_per_cta = 1;
  lc.regs_per_thread = 32;
  const auto run = [&](bool balanced) {
    return launch(spec(), lc, [&](WarpCtx& w) {
      const int loads =
          balanced ? 8 : (w.global_warp_id() == 0 ? 1000 : 1);
      for (int i = 0; i < loads; ++i) {
        (void)w.ld_global(data.data(), iota_idx((i % 64) * 32));
        w.use();  // dependent chain: every latency exposed
      }
    });
  };
  const auto imbalanced = run(false);
  const auto balanced = run(true);
  // Same-ish total work (~1255 vs 2048 loads) but the straggler's serial
  // chain dominates: 1000 exposed latencies on one warp.
  EXPECT_GT(imbalanced.cycles,
            1000u * std::uint64_t(spec().global_load_latency));
  EXPECT_LT(balanced.cycles, imbalanced.cycles);
}

TEST(Scheduling, OccupancyHidesLatency) {
  std::vector<float> data(1 << 20, 0.0f);
  LaunchConfig lean, fat;
  lean.num_ctas = fat.num_ctas = 1024;
  lean.warps_per_cta = fat.warps_per_cta = 4;
  lean.regs_per_thread = 32;
  fat.regs_per_thread = 255;  // occupancy collapse (nonzero-split pathology)
  const auto body = [&](WarpCtx& w) {
    for (int i = 0; i < 16; ++i) {
      (void)w.ld_global(data.data(),
                        iota_idx((w.global_warp_id() * 16 + i) % 512 * 32));
      w.use();
    }
  };
  const auto hi = launch(spec(), lean, body);
  const auto lo = launch(spec(), fat, body);
  EXPECT_GT(hi.resident_warps_per_sm, lo.resident_warps_per_sm);
  EXPECT_LT(hi.cycles, lo.cycles);
}

TEST(Scheduling, DramBandwidthFloor) {
  std::vector<float> data(1 << 22, 0.0f);
  LaunchConfig lc;
  lc.num_ctas = 4096;
  lc.warps_per_cta = 4;
  lc.regs_per_thread = 16;
  const auto ks = launch(spec(), lc, [&](WarpCtx& w) {
    // Each warp streams 4KB contiguously.
    for (int i = 0; i < 32; ++i) {
      (void)w.ld_global(
          data.data(),
          iota_idx((w.global_warp_id() * 32 + i) % (1 << 17) * 32));
    }
    w.use();
  });
  const double bytes = double(ks.totals.bytes_loaded);
  EXPECT_GE(double(ks.cycles), bytes / spec().dram_bytes_per_cycle * 0.99);
}

TEST(DeviceMemory, OomThrowsAndTracksPeak) {
  DeviceMemory mem(1000);
  mem.allocate(600);
  EXPECT_THROW(mem.allocate(500), DeviceOutOfMemory);
  mem.allocate(300);
  EXPECT_EQ(mem.in_use(), 900u);
  mem.release(600);
  EXPECT_EQ(mem.in_use(), 300u);
  EXPECT_EQ(mem.peak(), 900u);
}

TEST(DeviceMemory, BufferRegistersAndReleases) {
  DeviceMemory mem(1 << 20);
  {
    Buffer<float> b(1024, &mem);
    EXPECT_EQ(mem.in_use(), 4096u);
    Buffer<float> c = std::move(b);
    EXPECT_EQ(mem.in_use(), 4096u);
  }
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(Launch, DeterministicCycles) {
  std::vector<float> data(1 << 12, 0.0f);
  LaunchConfig lc;
  lc.num_ctas = 64;
  lc.warps_per_cta = 4;
  const auto body = [&](WarpCtx& w) {
    (void)w.ld_global(data.data(), iota_idx(w.global_warp_id() % 64 * 32));
    w.use();
  };
  const auto a = launch(spec(), lc, body);
  const auto b = launch(spec(), lc, body);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.totals.bytes_loaded, b.totals.bytes_loaded);
}

}  // namespace
}  // namespace gpusim
