// Tests for the serving cache-policy layer (serve/cache_policy.h): the
// degree / pre-sampling-frequency / CLOCK policies, the per-batch CLOCK
// commit discipline, per-tenant cache partitioning, the tuner's bake-off +
// kAuto dispatch, and the FeatureCache bugfix regressions (device spec by
// value, empty gathers charge nothing, element-size-derived row bytes).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "graph/convert.h"
#include "serve/cache_policy.h"
#include "serve/server.h"
#include "tune/cache.h"

namespace gnnone {
namespace {

using serve::CachePolicy;
using serve::ClockCache;

gpusim::DeviceSpec test_device() { return gpusim::DeviceSpec{}; }

// --- Bugfix regressions --------------------------------------------------

TEST(CachePolicyBugfix, DeviceSpecIsCopiedNotReferenced) {
  const Dataset ds = make_dataset("G1");
  // The old cache stored `const DeviceSpec*` from the ctor reference; a
  // temporary spec then dangled. Gather after the temporary dies must use
  // the copied bandwidths.
  const FeatureCache cache(ds.coo, 16, 0.5, gpusim::DeviceSpec{});
  const std::vector<vid_t> vs = {0, 1, 2, 3};
  const GatherStats a = cache.gather(vs, nullptr, nullptr);
  const gpusim::DeviceSpec fresh{};
  const FeatureCache stable(ds.coo, 16, 0.5, fresh);
  const GatherStats b = stable.gather(vs, nullptr, nullptr);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.hit_bytes, b.hit_bytes);
  EXPECT_EQ(a.miss_bytes, b.miss_bytes);
}

TEST(CachePolicyBugfix, EmptyGatherChargesNothing) {
  const Dataset ds = make_dataset("G1");
  const auto dev = test_device();
  const FeatureCache cache(ds.coo, 16, 0.5, dev);
  CycleLedger cycles;
  MemoryLedger bytes;
  const GatherStats st = cache.gather({}, &cycles, &bytes);
  EXPECT_EQ(st.cycles, 0u);  // was a flat 2000-cycle launch charge
  EXPECT_EQ(st.hits + st.misses, 0u);
  EXPECT_EQ(cycles.total(), 0u);
  EXPECT_EQ(bytes.total(), 0u);
}

TEST(CachePolicyBugfix, EmptyGatherSkipsFaultProbes) {
  const Dataset ds = make_dataset("G1");
  const auto dev = test_device();
  FeatureCache cache(ds.coo, 16, 0.5, dev);
  cache.set_fetch_faults(1.0, 7);  // every probe poisoned
  const std::vector<GatherProbe> probes = {{3, 0}};
  EXPECT_NO_THROW(cache.gather({}, nullptr, nullptr, probes));
}

TEST(CachePolicyBugfix, RowBytesDeriveFromElementSize) {
  const Dataset ds = make_dataset("G1");
  const auto dev = test_device();
  const FeatureCache f32(ds.coo, 16, 0.5, dev);
  const FeatureCache f64(ds.coo, 16, 0.5, dev, sizeof(double));
  EXPECT_EQ(f32.row_bytes(), 16u * 4u);  // was hard-coded 4-byte elements
  EXPECT_EQ(f64.row_bytes(), 16u * 8u);
  EXPECT_EQ(f64.device_bytes(), 2 * f32.device_bytes());
  const std::vector<vid_t> vs = {0, 1, 2, 3, 4, 5};
  const GatherStats a = f32.gather(vs, nullptr, nullptr);
  const GatherStats b = f64.gather(vs, nullptr, nullptr);
  EXPECT_EQ(b.hit_bytes, 2 * a.hit_bytes);
  EXPECT_EQ(b.miss_bytes, 2 * a.miss_bytes);
}

// --- Policy orders -------------------------------------------------------

TEST(CachePolicy, NamesRoundTrip) {
  for (CachePolicy p : {CachePolicy::kDegree, CachePolicy::kPresampleFrequency,
                        CachePolicy::kClock, CachePolicy::kAuto}) {
    CachePolicy back;
    ASSERT_TRUE(serve::cache_policy_from_name(serve::cache_policy_name(p),
                                              &back));
    EXPECT_EQ(back, p);
  }
  CachePolicy out;
  EXPECT_FALSE(serve::cache_policy_from_name("lru", &out));
}

TEST(CachePolicy, ZeroWarmupFrequencyOrderIsDegreeOrder) {
  const Dataset ds = make_dataset("G4");
  const Csr csr = coo_to_csr(ds.coo);
  const auto probe = serve::default_presample_probe(ds.coo, 5);
  const auto freq =
      serve::presample_frequencies(csr, probe, {10, 5}, 5, /*epochs=*/0);
  for (std::uint64_t f : freq) EXPECT_EQ(f, 0u);
  std::vector<vid_t> degrees(std::size_t(ds.coo.num_rows), 0);
  for (const vid_t r : ds.coo.row) ++degrees[std::size_t(r)];
  EXPECT_EQ(serve::frequency_order(freq, degrees), serve::degree_order(ds.coo));
}

TEST(CachePolicy, FrequencyOrderPrefersSampledVertices) {
  // Path-ish graph where vertex 4 has low degree but is the in-neighbor of
  // every probe seed, so presampling counts it every request while degree
  // order ranks it last.
  const Coo g = coo_from_edges(6, 6,
                               {{0, 1}, {0, 2}, {0, 3}, {1, 0}, {2, 0},
                                {3, 0}, {1, 4}, {2, 4}, {3, 4}, {5, 4}});
  const Csr csr = coo_to_csr(g);
  std::vector<SeedRequest> probe(4);
  probe[0].seeds = {1};
  probe[1].seeds = {2};
  probe[2].seeds = {3};
  probe[3].seeds = {1, 2};
  const auto freq = serve::presample_frequencies(csr, probe, {2}, 9, 2);
  // Seeds 1..3 each pull in their sampled in-neighborhood; 4 never appears
  // as a seed or an in-neighbor of one (edges 1->4 etc. point *to* 4), so
  // its count comes only from being sampled where reachable.
  EXPECT_GT(freq[1] + freq[2] + freq[3], 0u);
  std::vector<vid_t> degrees(6, 0);
  for (const vid_t r : g.row) ++degrees[std::size_t(r)];
  const auto order = serve::frequency_order(freq, degrees);
  // The most frequently sampled vertex leads the order regardless of degree.
  std::uint64_t best = 0;
  vid_t best_v = 0;
  for (vid_t v = 0; v < 6; ++v) {
    if (freq[std::size_t(v)] > best) {
      best = freq[std::size_t(v)];
      best_v = v;
    }
  }
  EXPECT_EQ(order[0], best_v);
}

TEST(CachePolicy, PresampleFrequenciesRejectNegativeEpochs) {
  const Dataset ds = make_dataset("G1");
  const Csr csr = coo_to_csr(ds.coo);
  const auto probe = serve::default_presample_probe(ds.coo, 5);
  EXPECT_THROW(serve::presample_frequencies(csr, probe, {5}, 5, -1),
               std::invalid_argument);
}

// --- CLOCK mechanics -----------------------------------------------------

TEST(ClockCache, SecondChanceEvictionByHand) {
  // Capacity 2 seeded with {10, 11}. Exercise the textbook second-chance
  // sequence by hand.
  const std::vector<vid_t> seed_order = {10, 11};
  ClockCache c(seed_order, 2, 20);
  EXPECT_TRUE(c.contains(10));
  EXPECT_TRUE(c.contains(11));

  EXPECT_TRUE(c.access(10));   // hit: ref(10) set
  EXPECT_FALSE(c.access(5));   // miss: hand at slot0 sees ref(10), clears it,
                               // evicts 11 (slot1, unreferenced)
  EXPECT_TRUE(c.contains(5));
  EXPECT_FALSE(c.contains(11));
  EXPECT_TRUE(c.contains(10));

  EXPECT_FALSE(c.access(11));  // miss: hand wrapped past slot1; 10 now
                               // unreferenced -> evicted
  EXPECT_FALSE(c.contains(10));
  EXPECT_TRUE(c.contains(11));
  EXPECT_TRUE(c.contains(5));

  EXPECT_TRUE(c.access(5));    // both resident rows hit
  EXPECT_TRUE(c.access(11));
}

TEST(ClockCache, CapacityZeroAlwaysMisses) {
  ClockCache c({}, 0, 4);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(0));
  EXPECT_EQ(c.capacity(), 0);
}

TEST(ClockCache, BoundaryAlphasMatchStaticPolicies) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  RequestTraceOptions ro;
  ro.num_requests = 24;
  const auto trace = make_request_trace(ds.coo, ro);
  for (double alpha : {0.0, 1.0}) {
    ServingReport reps[2];
    for (int p = 0; p < 2; ++p) {
      ServeOptions o;
      o.batch_size = 4;
      o.fanouts = {4, 3};
      o.feature_dim_override = 16;
      o.cache_alpha = alpha;
      o.cache_policy = p == 0 ? CachePolicy::kDegree : CachePolicy::kClock;
      const InferenceServer server(ds, dev, o);
      reps[p] = server.serve(trace);
    }
    EXPECT_EQ(reps[0].cache_hits, reps[1].cache_hits) << "alpha=" << alpha;
    EXPECT_EQ(reps[0].cache_misses, reps[1].cache_misses) << "alpha=" << alpha;
    EXPECT_EQ(reps[0].gather_cycles, reps[1].gather_cycles)
        << "alpha=" << alpha;
    EXPECT_EQ(reps[1].cache_evictions, 0u) << "alpha=" << alpha;
  }
}

TEST(ClockCache, EvictionsEqualMissesWhenCapacityPositive) {
  // Seeded full, every miss evicts + installs.
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  RequestTraceOptions ro;
  ro.num_requests = 24;
  const auto trace = make_request_trace(ds.coo, ro);
  ServeOptions o;
  o.batch_size = 4;
  o.fanouts = {4, 3};
  o.feature_dim_override = 16;
  o.cache_alpha = 0.1;
  o.cache_policy = CachePolicy::kClock;
  const InferenceServer server(ds, dev, o);
  const ServingReport rep = server.serve(trace);
  EXPECT_EQ(rep.cache_evictions, rep.cache_misses);
  EXPECT_EQ(rep.cache_insert_bytes, rep.cache_miss_bytes);
  EXPECT_GT(rep.cache_evictions, 0u);
}

// --- Server-level policy behavior ---------------------------------------

ServeOptions policy_opts(CachePolicy p) {
  ServeOptions o;
  o.model_kind = "gcn";
  o.batch_size = 4;
  o.fanouts = {4, 3};
  o.cache_alpha = 0.1;
  o.cache_policy = p;
  o.feature_dim_override = 16;
  o.seed = 3;
  return o;
}

std::vector<SeedRequest> small_trace(const Coo& graph) {
  RequestTraceOptions ro;
  ro.num_requests = 24;
  return make_request_trace(graph, ro);
}

TEST(PolicyServer, ZeroWarmupFrequencyServerMatchesDegreeBitIdentically) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto trace = small_trace(ds.coo);
  ServeOptions deg = policy_opts(CachePolicy::kDegree);
  ServeOptions freq = policy_opts(CachePolicy::kPresampleFrequency);
  freq.presample_epochs = 0;
  const ServingReport a = InferenceServer(ds, dev, deg).serve(trace);
  const ServingReport b = InferenceServer(ds, dev, freq).serve(trace);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.gather_cycles, b.gather_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.bytes.total(), b.bytes.total());
}

TEST(PolicyServer, PredictionsAreCachePolicyInvariant) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto trace = small_trace(ds.coo);
  const ServingReport base =
      InferenceServer(ds, dev, policy_opts(CachePolicy::kDegree)).serve(trace);
  for (CachePolicy p :
       {CachePolicy::kPresampleFrequency, CachePolicy::kClock}) {
    const ServingReport rep =
        InferenceServer(ds, dev, policy_opts(p)).serve(trace);
    EXPECT_EQ(rep.predictions, base.predictions)
        << serve::cache_policy_name(p);
    ASSERT_EQ(rep.outcomes.size(), base.outcomes.size());
    for (std::size_t r = 0; r < rep.outcomes.size(); ++r) {
      EXPECT_EQ(rep.outcomes[r].status, base.outcomes[r].status)
          << serve::cache_policy_name(p) << " request " << r;
    }
  }
}

TEST(PolicyServer, ClockSerialPipelinedAndRepeatedServesAgree) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto trace = small_trace(ds.coo);
  ServeOptions o = policy_opts(CachePolicy::kClock);
  const InferenceServer server(ds, dev, o);
  const ServingReport serial1 = server.serve(trace);
  const ServingReport serial2 = server.serve(trace);  // fresh txn per serve
  o.pipeline = true;
  const InferenceServer piped(ds, dev, o);
  const ServingReport pipe = piped.serve(trace);

  EXPECT_EQ(serial1.cache_hits, serial2.cache_hits);
  EXPECT_EQ(serial1.gather_cycles, serial2.gather_cycles);
  EXPECT_EQ(serial1.cache_evictions, serial2.cache_evictions);

  EXPECT_EQ(serial1.predictions, pipe.predictions);
  EXPECT_EQ(serial1.cache_hits, pipe.cache_hits);
  EXPECT_EQ(serial1.cache_misses, pipe.cache_misses);
  EXPECT_EQ(serial1.cache_evictions, pipe.cache_evictions);
  EXPECT_EQ(serial1.gather_cycles, pipe.gather_cycles);
  EXPECT_EQ(serial1.ledger.total(), pipe.ledger.total());
}

TEST(PolicyServer, ClockChaosRecoveryIsDriverInvariant) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  RequestTraceOptions ro;
  ro.num_requests = 24;
  const auto trace = make_request_trace(ds.coo, ro);
  ServeOptions o = policy_opts(CachePolicy::kClock);
  o.chaos.fetch_rate = 0.2;
  o.chaos.kernel_rate = 0.1;
  o.chaos.oom_rate = 0.1;
  o.chaos.seed = 11;
  const InferenceServer serial(ds, dev, o);
  const ServingReport a = serial.serve(trace);
  o.pipeline = true;
  const InferenceServer piped(ds, dev, o);
  const ServingReport b = piped.serve(trace);

  EXPECT_GT(a.fault_events, 0);
  EXPECT_EQ(a.predictions, b.predictions);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t r = 0; r < a.outcomes.size(); ++r) {
    EXPECT_EQ(a.outcomes[r].status, b.outcomes[r].status) << "request " << r;
  }
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
  EXPECT_EQ(a.gather_cycles, b.gather_cycles);
  // Nothing leaks across a chaotic serve: only the cache stays allocated.
  EXPECT_EQ(serial.device_memory().in_use(), serial.cache().device_bytes());
  EXPECT_EQ(piped.device_memory().in_use(), piped.cache().device_bytes());
}

TEST(PolicyServer, BypassCacheMissesUnderEveryPolicy) {
  const Dataset ds = make_dataset("G1");
  const auto dev = test_device();
  const std::vector<vid_t> vs = {0, 1, 2, 3, 4};
  for (CachePolicy p : {CachePolicy::kDegree, CachePolicy::kPresampleFrequency,
                        CachePolicy::kClock}) {
    CacheConfig cfg;
    cfg.policy = p;
    const FeatureCache cache(ds.coo, 8, 1.0, dev, cfg);
    const GatherStats st =
        cache.gather(vs, nullptr, nullptr, {}, /*bypass_cache=*/true);
    EXPECT_EQ(st.hits, 0u) << serve::cache_policy_name(p);
    EXPECT_EQ(st.misses, vs.size()) << serve::cache_policy_name(p);
    EXPECT_EQ(st.evictions, 0u) << serve::cache_policy_name(p);
    EXPECT_EQ(st.insert_bytes, 0u) << serve::cache_policy_name(p);
  }
}

// --- Partitioning --------------------------------------------------------

TEST(Partitioning, LargestRemainderSplit) {
  const std::vector<double> shares = {0.5, 0.25, 0.25};
  const auto caps = serve::partition_capacities(10, shares);
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(caps[0], 5);
  EXPECT_EQ(caps[1], 3);  // remainder row goes to the lowest tied index
  EXPECT_EQ(caps[2], 2);

  const std::vector<double> zero = {0.0, 0.0};
  const auto eq = serve::partition_capacities(7, zero);
  EXPECT_EQ(eq[0] + eq[1], 7);
  EXPECT_EQ(eq[0], 4);  // equal split, remainder to tenant 0

  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(serve::partition_capacities(4, neg), std::invalid_argument);
  EXPECT_THROW(serve::partition_capacities(4, std::span<const double>{}),
               std::invalid_argument);
}

ServeOptions tenant_opts(bool partition) {
  ServeOptions o;
  o.batch_size = 4;
  o.fanouts = {4, 3};
  o.cache_alpha = 0.1;
  o.cache_policy = CachePolicy::kClock;
  o.feature_dim_override = 16;
  o.seed = 3;
  serve::TenantSpec a, b;
  a.name = "a";
  a.slo_cycles = 1'000'000'000;
  a.cache_share = 0.5;
  b.name = "b";
  b.slo_cycles = 1'000'000'000;
  b.cache_share = 0.5;
  o.tenants = {a, b};
  o.partition_cache = partition;
  return o;
}

std::vector<SeedRequest> tenant_trace(const Coo& graph) {
  RequestTraceOptions ro;
  ro.num_requests = 24;
  ro.seed = 21;
  auto trace = make_request_trace(graph, ro);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].tenant = int(i % 2);
    trace[i].arrival_cycle = std::uint64_t(i) * 1000;
  }
  return trace;
}

TEST(Partitioning, CapacityConservedAndAccountingExact) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto trace = tenant_trace(ds.coo);

  const InferenceServer shared(ds, dev, tenant_opts(false));
  const InferenceServer parted(ds, dev, tenant_opts(true));
  ASSERT_FALSE(shared.partitioned());
  ASSERT_TRUE(parted.partitioned());

  // Same total row budget, so the same device byte budget.
  const vid_t total = FeatureCache::capacity_for(ds.coo.num_rows, 0.1);
  EXPECT_EQ(shared.cache().num_cached(), total);
  EXPECT_EQ(parted.cache().num_cached(), 0);  // the shared cache is empty
  vid_t rows = 0;
  for (int t = 0; t < 2; ++t) rows += parted.tenant_cache(t).num_cached();
  EXPECT_EQ(rows, total);
  EXPECT_EQ(parted.cache_device_bytes(), shared.cache_device_bytes());

  const ServingReport rs = shared.serve(trace);
  const ServingReport rp = parted.serve(trace);
  // Partitioning moves bytes, never math.
  EXPECT_EQ(rs.predictions, rp.predictions);
  ASSERT_EQ(rs.outcomes.size(), rp.outcomes.size());
  for (std::size_t r = 0; r < rs.outcomes.size(); ++r) {
    EXPECT_EQ(rs.outcomes[r].status, rp.outcomes[r].status) << "request " << r;
  }
  // Hit + miss still covers exactly the deduplicated vertices per batch.
  for (const BatchStats& bs : rp.batches) {
    EXPECT_EQ(bs.gather.hits + bs.gather.misses,
              std::uint64_t(bs.num_unique_vertices));
  }
  // The partitions' device rows stay allocated, nothing else.
  EXPECT_EQ(parted.device_memory().in_use(), parted.cache_device_bytes());
}

TEST(Partitioning, StaticPoliciesPartitionToo) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  const auto trace = tenant_trace(ds.coo);
  for (CachePolicy p :
       {CachePolicy::kDegree, CachePolicy::kPresampleFrequency}) {
    ServeOptions o = tenant_opts(true);
    o.cache_policy = p;
    const InferenceServer server(ds, dev, o);
    const ServingReport rep = server.serve(trace);
    EXPECT_TRUE(server.partitioned());
    EXPECT_GT(rep.cache_hits, 0u) << serve::cache_policy_name(p);
    EXPECT_EQ(rep.cache_evictions, 0u) << serve::cache_policy_name(p);
  }
}

// --- Tuner + kAuto dispatch ---------------------------------------------

TEST(PolicyTuner, RecordsWinnerAndAutoDispatchesIt) {
  const Dataset ds = make_dataset("G4");
  const auto dev = test_device();
  RequestTraceOptions ro;
  ro.num_requests = 32;
  ro.seed = 77;
  const auto trace = make_request_trace(ds.coo, ro);

  serve::PolicyTuneConfig cfg;
  cfg.cache_alpha = 0.1;
  cfg.fanouts = {4, 3};
  cfg.batch_size = 4;
  cfg.feat_len = 16;
  cfg.seed = 3;
  cfg.presample_probe = trace;

  tune::TuningCache tc;
  const serve::CachePolicyBakeoff bake =
      serve::tune_cache_policy(ds.coo, dev, cfg, trace, &tc);
  ASSERT_EQ(bake.outcomes.size(), 3u);
  EXPECT_EQ(tc.serve_entries().size(), 1u);
  // The winner really is the cheapest outcome.
  for (const serve::PolicyOutcome& oc : bake.outcomes) {
    if (oc.policy == bake.winner) continue;
    EXPECT_GE(oc.gather_cycles,
              bake.outcomes[std::size_t(bake.winner)].gather_cycles);
  }

  ServeOptions o = policy_opts(CachePolicy::kAuto);
  o.tuning_cache = &tc;
  o.presample_probe = trace;
  const InferenceServer server(ds, dev, o);
  EXPECT_EQ(server.cache_policy(), bake.winner);

  // Without a tuning cache, kAuto falls back to degree.
  const InferenceServer bare(ds, dev, policy_opts(CachePolicy::kAuto));
  EXPECT_EQ(bare.cache_policy(), CachePolicy::kDegree);
}

TEST(PolicyTuner, ServeEntriesSurviveJsonRoundTripByteIdentically) {
  const Dataset ds = make_dataset("G1");
  const auto dev = test_device();
  RequestTraceOptions ro;
  ro.num_requests = 8;
  const auto trace = make_request_trace(ds.coo, ro);
  serve::PolicyTuneConfig cfg;
  cfg.fanouts = {3};
  cfg.batch_size = 4;
  cfg.feat_len = 8;
  tune::TuningCache tc;
  serve::tune_cache_policy(ds.coo, dev, cfg, trace, &tc);
  ASSERT_EQ(tc.serve_entries().size(), 1u);

  const std::string dump = tc.to_json().dump(2);
  const tune::TuningCache back = tune::TuningCache::from_json(tc.to_json());
  ASSERT_EQ(back.serve_entries().size(), 1u);
  EXPECT_EQ(back.to_json().dump(2), dump);
  const tune::TuningCache::ServeEntry& e = back.serve_entries()[0];
  const tune::ServeDecision* hit = back.lookup_serve(e.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cache_policy, tc.serve_entries()[0].decision.cache_policy);
}

// --- Validation ----------------------------------------------------------

TEST(PolicyValidation, RejectsBadOptions) {
  ServeOptions o;
  o.presample_epochs = -1;
  EXPECT_THROW(o.Validate(), std::invalid_argument);

  ServeOptions p;
  p.partition_cache = true;  // no tenants
  EXPECT_THROW(p.Validate(), std::invalid_argument);

  ServeOptions q = tenant_opts(true);
  q.tenants[1].cache_share = -0.25;
  EXPECT_THROW(q.Validate(), std::invalid_argument);

  EXPECT_NO_THROW(tenant_opts(true).Validate());
}

}  // namespace
}  // namespace gnnone
