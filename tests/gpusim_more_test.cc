// Additional simulator coverage: vector memory ops, atomics variants,
// L2-path loads, occupancy sweeps, launch edge cases, accounting invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/memory.h"
#include "gpusim/report.h"
#include "gpusim/warp.h"

namespace gpusim {
namespace {

WarpStats run_warp(const std::function<void(WarpCtx&)>& fn,
                   std::size_t shared_bytes = 4096) {
  LaunchConfig lc;
  lc.num_ctas = 1;
  lc.warps_per_cta = 1;
  lc.shared_bytes_per_cta = shared_bytes;
  return launch(default_device(), lc, fn).totals;
}

TEST(VecOps, Vec2LoadFunctionalAndCost) {
  std::vector<float> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = float(i);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l * 2;
    const auto v = w.ld_global_vec<float, 2>(data.data(), idx);
    for (int l = 0; l < kWarpSize; ++l) {
      EXPECT_FLOAT_EQ(v[l][0], float(l * 2));
      EXPECT_FLOAT_EQ(v[l][1], float(l * 2 + 1));
    }
  });
  EXPECT_EQ(s.global_load_instrs, 1u);
  EXPECT_EQ(s.bytes_loaded, 32u * 8u);
  EXPECT_GE(s.load_transactions, 2u);  // 256 contiguous bytes
  EXPECT_LE(s.load_transactions, 3u);
}

TEST(VecOps, Vec3LoadMatchesFloat3Semantics) {
  std::vector<float> data(128);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = float(i) * 0.5f;
  run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = (l % 8) * 3;
    const auto v = w.ld_global_vec<float, 3>(data.data(), idx,
                                             lanes_below(8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_FLOAT_EQ(v[l][2], float(l * 3 + 2) * 0.5f);
    }
  });
}

TEST(VecOps, VecStoreWritesAllComponents) {
  std::vector<float> out(256, -1.0f);
  run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    std::array<std::array<float, 4>, kWarpSize> v{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = l * 4;
      for (int j = 0; j < 4; ++j) v[l][j] = float(l * 10 + j);
    }
    w.st_global_vec<float, 4>(out.data(), idx, v);
  });
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[5], 11.0f);
  EXPECT_FLOAT_EQ(out[127], 313.0f);
}

TEST(Atomics, AtomicMaxKeepsMaximum) {
  std::vector<float> out(4, -100.0f);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = l % 4;
      v[l] = float(l);
    }
    w.atomic_max(out.data(), idx, v);
  });
  EXPECT_FLOAT_EQ(out[0], 28.0f);
  EXPECT_FLOAT_EQ(out[3], 31.0f);
  EXPECT_EQ(s.atomic_instrs, 1u);
  EXPECT_EQ(s.atomic_serializations, 7u);  // 8 lanes per address
}

TEST(L2Loads, CheaperExposedLatencyThanDram) {
  std::vector<std::int64_t> meta(1024, 7);
  const auto dram = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    (void)w.ld_global(meta.data(), idx, Mask{1});
    w.use();
  });
  const auto l2 = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    (void)w.ld_global_l2(meta.data(), idx, Mask{1});
    w.use();
  });
  EXPECT_EQ(dram.stall_cycles,
            std::uint64_t(default_device().global_load_latency));
  EXPECT_EQ(l2.stall_cycles,
            std::uint64_t(default_device().l2_load_latency));
}

TEST(L2Loads, OverlapWithDramTakesMax) {
  std::vector<float> data(1024, 0.0f);
  std::vector<std::int64_t> meta(1024, 1);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    (void)w.ld_global(data.data(), idx);
    (void)w.ld_global_l2(meta.data(), idx, Mask{1});
    w.use();
  });
  EXPECT_EQ(s.stall_cycles,
            std::uint64_t(default_device().global_load_latency));
}

TEST(L2Loads, DoNotConsumeDramBandwidth) {
  std::vector<std::int64_t> meta(1024, 0);
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    (void)w.ld_global_l2(meta.data(), idx, Mask{1});
  });
  EXPECT_EQ(s.bytes_loaded, 0u);
  EXPECT_GT(s.load_transactions, 0u);
}

struct OccCase {
  int warps_per_cta;
  int regs;
  std::size_t smem;
  int expect_ctas;
};

class OccupancySweep : public testing::TestWithParam<OccCase> {};

TEST_P(OccupancySweep, MatchesClosedForm) {
  const auto& p = GetParam();
  LaunchConfig lc;
  lc.warps_per_cta = p.warps_per_cta;
  lc.regs_per_thread = p.regs;
  lc.shared_bytes_per_cta = p.smem;
  EXPECT_EQ(compute_occupancy(default_device(), lc).ctas_per_sm,
            p.expect_ctas);
}

INSTANTIATE_TEST_SUITE_P(
    Table, OccupancySweep,
    testing::Values(OccCase{4, 32, 0, 16},       // warp-slot bound (64/4)
                    OccCase{4, 32, 16384, 10},   // smem bound (164K/16K)
                    OccCase{4, 128, 0, 4},       // register bound
                    OccCase{1, 32, 0, 32},       // CTA-slot bound
                    OccCase{8, 255, 0, 1},       // heavy kernel: 1 CTA
                    OccCase{16, 16, 0, 4},       // big CTAs: 64/16
                    OccCase{2, 64, 8192, 16}));  // regs: 65536/(64*64)=16

TEST(LaunchEdge, ZeroCtasIsJustOverhead) {
  LaunchConfig lc;
  lc.num_ctas = 0;
  const auto ks = launch(default_device(), lc, [](WarpCtx&) {});
  EXPECT_EQ(ks.cycles, lc.launch_overhead_cycles);
  EXPECT_EQ(ks.totals.issue_cycles, 0u);
}

TEST(LaunchEdge, NegativeGridThrows) {
  LaunchConfig lc;
  lc.num_ctas = -1;
  EXPECT_THROW(launch(default_device(), lc, [](WarpCtx&) {}),
               std::invalid_argument);
}

TEST(LaunchEdge, OversizedSharedRequestThrows) {
  LaunchConfig lc;
  lc.num_ctas = 1;
  lc.shared_bytes_per_cta = default_device().shared_mem_per_cta + 1;
  EXPECT_THROW(launch(default_device(), lc, [](WarpCtx&) {}),
               std::invalid_argument);
}

TEST(LaunchEdge, ManyMoreCtasThanSmsAggregates) {
  std::vector<float> data(64, 0.0f);
  LaunchConfig lc;
  lc.num_ctas = 5000;
  lc.warps_per_cta = 1;
  const auto ks = launch(default_device(), lc, [&](WarpCtx& w) {
    (void)w.ld_global(data.data(), LaneArray<std::int64_t>{});
    w.use();
  });
  EXPECT_EQ(ks.num_warps, 5000u);
  EXPECT_EQ(ks.totals.global_load_instrs, 5000u);
  // Makespan must exceed a single wave but be far below serial execution.
  EXPECT_GT(ks.cycles, lc.launch_overhead_cycles);
  EXPECT_LT(ks.cycles, 5000u * 400u);
}

TEST(Accounting, LoadCyclesNeverExceedTotals) {
  std::vector<float> data(1 << 14, 0.0f);
  LaunchConfig lc;
  lc.num_ctas = 32;
  lc.warps_per_cta = 4;
  const auto ks = launch(default_device(), lc, [&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) {
      idx[l] = (w.global_warp_id() * 32 + l) % (1 << 14);
    }
    (void)w.ld_global(data.data(), idx);
    w.alu(10);
    w.sync();
  });
  EXPECT_LE(ks.totals.load_issue_cycles, ks.totals.issue_cycles);
  EXPECT_LE(ks.totals.load_stall_cycles, ks.totals.stall_cycles);
  EXPECT_GT(ks.data_load_fraction(), 0.0);
  EXPECT_LT(ks.data_load_fraction(), 1.0);
}

TEST(Accounting, MaskUtilities) {
  EXPECT_EQ(lanes_below(0), 0u);
  EXPECT_EQ(lanes_below(1), 1u);
  EXPECT_EQ(lanes_below(5), 0x1fu);
  EXPECT_EQ(lanes_below(32), kFullMask);
  EXPECT_EQ(lanes_below(40), kFullMask);
}

TEST(Accounting, SharedHighWaterTracksPeak) {
  SharedMem sm(1024);
  (void)sm.alloc<float>(100);
  sm.reset();
  (void)sm.alloc<float>(50);
  EXPECT_GE(sm.high_water(), 400u);
  EXPECT_LE(sm.high_water(), 1024u);
}

TEST(Report, DescribeContainsKeyFields) {
  std::vector<float> data(4096, 0.0f);
  LaunchConfig lc;
  lc.num_ctas = 8;
  lc.warps_per_cta = 4;
  const auto ks = launch(default_device(), lc, [&](WarpCtx& w) {
    LaneArray<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
    (void)w.ld_global(data.data(), idx);
    w.sync();
  });
  const std::string d = describe(ks, default_device());
  EXPECT_NE(d.find("modeled time"), std::string::npos);
  EXPECT_NE(d.find("global loads"), std::string::npos);
  EXPECT_NE(d.find("data-load share"), std::string::npos);
  const std::string row = csv_row(ks);
  // Header and row have the same field count.
  const auto commas = [](const std::string& x) {
    return std::count(x.begin(), x.end(), ',');
  };
  EXPECT_EQ(commas(row), commas(csv_header()));
}

TEST(Shuffles, BroadcastReadsSourceLane) {
  const auto s = run_warp([&](WarpCtx& w) {
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) v[l] = float(l * l);
    EXPECT_FLOAT_EQ(w.shfl_broadcast(v, 5), 25.0f);
  });
  EXPECT_EQ(s.shuffles, 1u);
}

TEST(Shuffles, SegmentedShflDownRespectsWidth) {
  run_warp([&](WarpCtx& w) {
    LaneArray<float> v{};
    for (int l = 0; l < kWarpSize; ++l) v[l] = float(l);
    const auto r = w.shfl_down(v, 2, 8);
    EXPECT_FLOAT_EQ(r[0], 2.0f);
    EXPECT_FLOAT_EQ(r[5], 7.0f);
    EXPECT_FLOAT_EQ(r[6], 6.0f);   // source outside segment: keeps own
    EXPECT_FLOAT_EQ(r[8], 10.0f);  // next segment
  });
}

}  // namespace
}  // namespace gpusim
