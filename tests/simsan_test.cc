// simsan checking-layer tests: every kernel in the repo runs clean under an
// active Sanitizer, and purpose-built buggy kernels trip each detector
// (global OOB, shared OOB, cross-warp shared race, barrier divergence,
// release underflow) with the violating lanes masked out of the functional
// access.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "gen/rmat.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/memory.h"
#include "gpusim/report.h"
#include "gpusim/sanitizer.h"
#include "gpusim/shared.h"
#include "gpusim/warp.h"
#include "graph/convert.h"
#include "graph/neighbor_group.h"
#include "graph/row_swizzle.h"
#include "kernels/baselines.h"
#include "kernels/gnnone.h"
#include "kernels/gnnone_fused.h"

namespace gnnone {
namespace {

using gpusim::kFullMask;
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::LaunchConfig;
using gpusim::Sanitizer;
using gpusim::SanitizerError;
using gpusim::ViolationKind;
using gpusim::WarpCtx;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

LaneArray<std::int64_t> iota_idx(std::int64_t start, std::int64_t stride = 1) {
  LaneArray<std::int64_t> idx{};
  for (int l = 0; l < kWarpSize; ++l) idx[l] = start + l * stride;
  return idx;
}

// -------------------------------------------------------------------------
// Every shipped kernel must run violation-free under an active sanitizer
// with all of its operands tracked.
// -------------------------------------------------------------------------

class AllKernelsClean : public testing::Test {
 protected:
  void SetUp() override {
    RmatParams p;
    p.scale = 8;
    p.edge_factor = 8;
    coo = rmat_graph(p);
    csr = coo_to_csr(coo);
    ng = build_neighbor_groups(csr);
    swizzle = build_row_swizzle(csr);
    nnz = std::size_t(coo.nnz());
    nv = std::size_t(coo.num_rows);
    edge_val = random_vec(nnz, 1);
    x = random_vec(nv * f, 2);
    y_in = random_vec(nv * f, 3);
    y.assign(nv * f, 0.0f);
    w.assign(nnz, 0.0f);
    xv = random_vec(nv, 4);
    yv.assign(nv, 0.0f);
    dev = gpusim::default_device();
  }

  /// Registers every operand with `san` so all accesses are bounds-checked.
  void track_all(Sanitizer& san) {
    san.track(coo.row.data(), coo.row.size() * sizeof(vid_t), "coo.row");
    san.track(coo.col.data(), coo.col.size() * sizeof(vid_t), "coo.col");
    san.track(csr.offsets.data(), csr.offsets.size() * sizeof(eid_t),
              "csr.offsets");
    san.track(csr.col.data(), csr.col.size() * sizeof(vid_t), "csr.col");
    san.track(edge_val.data(), edge_val.size() * sizeof(float), "edge_val");
    san.track(x.data(), x.size() * sizeof(float), "x");
    san.track(y_in.data(), y_in.size() * sizeof(float), "y_in");
    san.track(y.data(), y.size() * sizeof(float), "y");
    san.track(w.data(), w.size() * sizeof(float), "w");
    san.track(xv.data(), xv.size() * sizeof(float), "xv");
    san.track(yv.data(), yv.size() * sizeof(float), "yv");
  }

  Coo coo;
  Csr csr;
  NeighborGroups ng;
  RowSwizzle swizzle;
  std::size_t nnz = 0, nv = 0;
  int f = 32;
  std::vector<float> edge_val, x, y_in, y, w, xv, yv;
  gpusim::DeviceSpec dev;
};

#define EXPECT_CLEAN(san) \
  EXPECT_TRUE((san).report().clean()) << gpusim::describe((san).report())

TEST_F(AllKernelsClean, GnnOneKernels) {
  Sanitizer san;
  track_all(san);
  gnnone_spmm(dev, coo, edge_val, x, f, y);
  gnnone_sddmm(dev, coo, x, y_in, f, w);
  gnnone_spmm_csr(dev, csr, edge_val, x, f, y);
  gnnone_spmv(dev, coo, edge_val, xv, yv);
  EXPECT_CLEAN(san);
}

TEST_F(AllKernelsClean, FusedAttention) {
  std::vector<float> s_src = random_vec(nv, 5);
  std::vector<float> s_dst = random_vec(nv, 6);
  std::vector<float> alpha(nnz, 0.0f);
  Sanitizer san;
  track_all(san);
  san.track(s_src.data(), s_src.size() * sizeof(float), "s_src");
  san.track(s_dst.data(), s_dst.size() * sizeof(float), "s_dst");
  san.track(alpha.data(), alpha.size() * sizeof(float), "alpha");
  gnnone_fused_attention(dev, coo, s_src, s_dst, x, f, 0.2f, alpha, y);
  EXPECT_CLEAN(san);
}

TEST_F(AllKernelsClean, SpmmBaselines) {
  Sanitizer san;
  track_all(san);
  baselines::gespmm_spmm(dev, csr, edge_val, x, f, y);
  baselines::cusparse_spmm(dev, csr, edge_val, x, f, y);
  baselines::gnnadvisor_spmm(dev, csr, ng, edge_val, x, f, y);
  baselines::huang_spmm(dev, csr, ng, edge_val, x, f, y);
  baselines::featgraph_spmm(dev, csr, edge_val, x, f, y);
  baselines::sputnik_spmm(dev, csr, swizzle, edge_val, x, f, y);
  baselines::nonzero_split_spmm(dev, coo, edge_val, x, f, y);
  EXPECT_CLEAN(san);
}

TEST_F(AllKernelsClean, SddmmBaselinesAndSpmv) {
  Sanitizer san;
  track_all(san);
  baselines::dgl_sddmm(dev, coo, x, y_in, f, w);
  baselines::dgsparse_sddmm(dev, csr, x, y_in, f, w);
  baselines::featgraph_sddmm(dev, csr, x, y_in, f, w);
  baselines::sputnik_sddmm(dev, csr, x, y_in, f, w);
  baselines::cusparse_sddmm(dev, csr, x, y_in, f, w);
  baselines::merge_spmv(dev, csr, edge_val, xv, yv);
  EXPECT_CLEAN(san);
}

// -------------------------------------------------------------------------
// Negative fixtures: each detector fires on a purpose-built buggy kernel.
// -------------------------------------------------------------------------

gpusim::KernelStats run_kernel(const gpusim::KernelFn& fn, int warps_per_cta,
                               std::size_t shared_bytes,
                               const std::string& label = "test_kernel") {
  LaunchConfig lc;
  lc.num_ctas = 1;
  lc.warps_per_cta = warps_per_cta;
  lc.shared_bytes_per_cta = shared_bytes;
  lc.label = label;
  return gpusim::launch(gpusim::default_device(), lc, fn);
}

TEST(SimsanGlobalOob, OutOfRangeLanesAreReportedAndMasked) {
  std::vector<float> data(64, 0.0f);
  Sanitizer san;
  // Only the first 16 floats are "the buffer"; the rest is a guard zone
  // that must stay untouched because violating lanes get masked out.
  san.track(data.data(), 16 * sizeof(float), "small");
  LaneArray<float> ones{};
  for (int l = 0; l < kWarpSize; ++l) ones[l] = 1.0f;
  const auto ks = run_kernel(
      [&](WarpCtx& w) { w.st_global(data.data(), iota_idx(0), ones); }, 1, 0);
  EXPECT_EQ(san.report().count(ViolationKind::kGlobalOob), 16u);
  EXPECT_EQ(ks.sanitizer.global_oob, 16u);
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(data[std::size_t(i)], 1.0f);
  for (int i = 16; i < 64; ++i) EXPECT_FLOAT_EQ(data[std::size_t(i)], 0.0f);
  const auto& v = san.report().violations();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].kernel, "test_kernel");
  EXPECT_EQ(v[0].kind, ViolationKind::kGlobalOob);
}

TEST(SimsanGlobalOob, NegativeIndexIsCaught) {
  std::vector<float> data(32, 1.0f);
  Sanitizer san;
  san.track(data.data(), data.size() * sizeof(float), "data");
  run_kernel([&](WarpCtx& w) { (void)w.ld_global(data.data(), iota_idx(-4)); },
             1, 0);
  EXPECT_EQ(san.report().count(ViolationKind::kGlobalOob), 4u);
}

TEST(SimsanGlobalOob, VectorLoadTailIsCaught) {
  std::vector<float> data(32, 1.0f);
  Sanitizer san;
  san.track(data.data(), data.size() * sizeof(float), "data");
  // float4 loads at element strides of 4: lane 7 reads [28, 32) fine, but a
  // base offset of 4 pushes lane 7 to [32, 36) — one element past the end.
  run_kernel(
      [&](WarpCtx& w) {
        LaneArray<std::int64_t> idx{};
        for (int l = 0; l < kWarpSize; ++l) idx[l] = 4 + l * 4;
        (void)w.ld_global_vec<float, 4>(data.data(), idx, 0x000000ffu);
      },
      1, 0);
  EXPECT_EQ(san.report().count(ViolationKind::kGlobalOob), 1u);
}

TEST(SimsanGlobalOob, UntrackedMemoryIsNotChecked) {
  std::vector<float> data(64, 0.0f);
  Sanitizer san;  // nothing tracked
  run_kernel([&](WarpCtx& w) { (void)w.ld_global(data.data(), iota_idx(0)); },
             1, 0);
  EXPECT_TRUE(san.report().clean());
}

TEST(SimsanSharedOob, OutOfRangeIndexReportedAndMasked) {
  Sanitizer san;
  run_kernel(
      [&](WarpCtx& w) {
        auto stage = w.shared().alloc<float>(16);
        LaneArray<int> idx{};
        for (int l = 0; l < kWarpSize; ++l) idx[l] = l;  // 16..31 OOB
        LaneArray<float> vals{};
        w.sh_write(stage, idx, vals);
      },
      1, 4096);
  EXPECT_EQ(san.report().count(ViolationKind::kSharedOob), 16u);
}

TEST(SimsanSharedOob, ScalarReadOutOfRangeReturnsDefault) {
  Sanitizer san;
  run_kernel(
      [&](WarpCtx& w) {
        auto stage = w.shared().alloc<float>(8);
        for (int i = 0; i < 8; ++i) stage[std::size_t(i)] = 7.0f;
        std::span<const float> cstage = stage;
        EXPECT_FLOAT_EQ(w.sh_read_scalar(cstage, 3), 7.0f);
        EXPECT_FLOAT_EQ(w.sh_read_scalar(cstage, 8), 0.0f);  // OOB -> T{}
      },
      1, 4096);
  EXPECT_EQ(san.report().count(ViolationKind::kSharedOob), 1u);
}

/// Two warps touch the same shared words. With no CTA barrier between the
/// accesses this is a race (warps are unordered on hardware); with a
/// cta_sync() between warp 0's write phase and warp 1's access phase it is
/// well-defined. The span is captured from warp 0 in host lambda state to
/// emulate a CTA-level __shared__ array.
struct CrossWarpFixture {
  std::span<float> stage;

  gpusim::KernelFn body(bool with_barrier) {
    return [this, with_barrier](WarpCtx& w) {
      if (w.warp_in_cta() == 0) {
        stage = w.shared().alloc<float>(kWarpSize);
      }
      LaneArray<int> idx{};
      for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
      if (w.warp_in_cta() == 0) {
        LaneArray<float> vals{};
        for (int l = 0; l < kWarpSize; ++l) vals[l] = float(l);
        w.sh_write(stage, idx, vals);
        if (with_barrier) w.cta_sync();
      } else {
        if (with_barrier) w.cta_sync();
        (void)w.sh_read(std::span<const float>(stage), idx);
      }
    };
  }
};

TEST(SimsanSharedRace, CrossWarpAccessWithoutBarrierIsARace) {
  CrossWarpFixture fx;
  Sanitizer san;
  const auto ks = run_kernel(fx.body(/*with_barrier=*/false), 2, 4096);
  EXPECT_EQ(san.report().count(ViolationKind::kSharedRace), 32u);
  EXPECT_EQ(ks.sanitizer.shared_races, 32u);
}

TEST(SimsanSharedRace, CtaBarrierOrdersTheAccesses) {
  CrossWarpFixture fx;
  Sanitizer san;
  run_kernel(fx.body(/*with_barrier=*/true), 2, 4096);
  EXPECT_CLEAN(san);
}

TEST(SimsanSharedRace, WarpPrivateSlicesAreNotARace) {
  Sanitizer san;
  run_kernel(
      [&](WarpCtx& w) {
        auto mine = w.shared().alloc<float>(kWarpSize);
        LaneArray<int> idx{};
        for (int l = 0; l < kWarpSize; ++l) idx[l] = l;
        LaneArray<float> vals{};
        w.sh_write(mine, idx, vals);
        (void)w.sh_read(std::span<const float>(mine), idx);
      },
      4, 4096);
  EXPECT_CLEAN(san);
}

TEST(SimsanBarrier, PartialActiveMaskIsDivergence) {
  Sanitizer san;
  const auto ks = run_kernel([&](WarpCtx& w) { w.sync(0x0000ffffu); }, 1, 0);
  EXPECT_EQ(san.report().count(ViolationKind::kBarrierDivergence), 1u);
  EXPECT_EQ(ks.sanitizer.barrier_divergence, 1u);
}

TEST(SimsanBarrier, UnequalCtaBarrierCountsAtExit) {
  Sanitizer san;
  run_kernel([&](WarpCtx& w) { if (w.warp_in_cta() == 0) w.cta_sync(); }, 2,
             0);
  EXPECT_EQ(san.report().count(ViolationKind::kBarrierDivergence), 1u);
}

TEST(SimsanBarrier, BalancedCtaBarriersAreClean) {
  Sanitizer san;
  run_kernel([&](WarpCtx& w) { w.cta_sync(); w.cta_sync(); }, 4, 0);
  EXPECT_CLEAN(san);
}

TEST(SimsanFatal, FirstViolationThrows) {
  gpusim::SanitizerOptions opts;
  opts.fatal = true;
  Sanitizer san(opts);
  EXPECT_THROW(run_kernel([&](WarpCtx& w) { w.sync(0x1u); }, 1, 0),
               SanitizerError);
}

TEST(SimsanReport, RecordCapDoesNotStopCounting) {
  gpusim::SanitizerOptions opts;
  opts.max_recorded = 4;
  Sanitizer san(opts);
  run_kernel(
      [&](WarpCtx& w) {
        auto stage = w.shared().alloc<float>(1);
        LaneArray<int> idx{};
        for (int l = 0; l < kWarpSize; ++l) idx[l] = 100 + l;
        LaneArray<float> vals{};
        w.sh_write(stage, idx, vals);
      },
      1, 4096);
  EXPECT_EQ(san.report().count(ViolationKind::kSharedOob), 32u);
  EXPECT_EQ(san.report().violations().size(), 4u);
  EXPECT_NE(gpusim::describe(san.report()).find("shared-out-of-bounds"),
            std::string::npos);
}

// -------------------------------------------------------------------------
// DeviceMemory: release-underflow detection and fault injection.
// -------------------------------------------------------------------------

TEST(SimsanRelease, UnderflowThrowsUnderSanitizer) {
  gpusim::DeviceMemory mem(1024);
  mem.allocate(100);
  Sanitizer san;
  EXPECT_THROW(mem.release(200), SanitizerError);
  EXPECT_EQ(san.report().count(ViolationKind::kDoubleRelease), 1u);
  EXPECT_EQ(mem.release_underflows(), 1u);
}

TEST(SimsanRelease, UnderflowIsCountedAndClampedWithoutSanitizer) {
  gpusim::DeviceMemory mem(1024);
  mem.allocate(100);
  EXPECT_NO_THROW(mem.release(200));
  EXPECT_EQ(mem.release_underflows(), 1u);
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(FaultInjection, FailAtNthAllocation) {
  gpusim::DeviceMemory mem(1 << 20);
  mem.allocate(16);  // pre-arm history must not count
  mem.fail_at_allocation(2);
  EXPECT_NO_THROW(mem.allocate(16));
  EXPECT_THROW(mem.allocate(16), gpusim::DeviceOutOfMemory);
  EXPECT_NO_THROW(mem.allocate(16));  // one-shot
  EXPECT_EQ(mem.allocation_count(), 4u);
}

TEST(FaultInjection, FailAboveWatermark) {
  gpusim::DeviceMemory mem(1 << 20);
  mem.fail_above(100);
  EXPECT_NO_THROW(mem.allocate(80));
  EXPECT_THROW(mem.allocate(40), gpusim::DeviceOutOfMemory);
  EXPECT_EQ(mem.in_use(), 80u);  // failed allocation charged nothing
  mem.clear_faults();
  EXPECT_NO_THROW(mem.allocate(40));
}

TEST(FaultInjection, DeviceAllocationUnwindsOnFault) {
  gpusim::DeviceMemory mem(1 << 20);
  mem.fail_at_allocation(3);
  try {
    gpusim::DeviceAllocation a(mem, 64);
    gpusim::DeviceAllocation b(mem, 64);
    gpusim::DeviceAllocation c(mem, 64);  // throws
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const gpusim::DeviceOutOfMemory&) {
  }
  EXPECT_EQ(mem.in_use(), 0u);
}

TEST(SimsanScope, NestedSanitizersRestoreTheOuterOne) {
  EXPECT_EQ(Sanitizer::active(), nullptr);
  Sanitizer outer;
  EXPECT_EQ(Sanitizer::active(), &outer);
  {
    Sanitizer inner;
    EXPECT_EQ(Sanitizer::active(), &inner);
  }
  EXPECT_EQ(Sanitizer::active(), &outer);
}

TEST(SimsanScope, BufferRegistersWithActiveSanitizer) {
  Sanitizer san;
  gpusim::Buffer<float> buf(8);
  run_kernel(
      [&](WarpCtx& w) { (void)w.ld_global(buf.data(), iota_idx(0)); }, 1, 0);
  EXPECT_EQ(san.report().count(ViolationKind::kGlobalOob), 24u);
}

}  // namespace
}  // namespace gnnone
