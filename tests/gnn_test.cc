// Tests for the GNN stack: sparse autograd ops (gradient checks through the
// simulated kernels), backend equivalence (the Fig. 5 property), layer
// math, training integration, and the paper-scale OOM/support matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/rng.h"
#include "gnn/backends.h"
#include "gnn/models.h"
#include "gnn/train.h"
#include "tensor/optim.h"

namespace gnnone {
namespace {

OpContext ctx_of(CycleLedger* ledger) {
  OpContext ctx;
  ctx.dev = &gpusim::default_device();
  ctx.ledger = ledger;
  ctx.training = true;
  return ctx;
}

Coo small_graph() {
  PowerLawParams p;
  p.n = 64;
  p.avg_degree = 5;
  p.seed = 13;
  return power_law(p);
}

Tensor random_tensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  for (std::size_t i = 0; i < std::size_t(t.numel()); ++i) {
    t[i] = float(rng.normal());
  }
  return t;
}

float scalar_sum(const Tensor& t) {
  float s = 0.0f;
  for (std::size_t i = 0; i < std::size_t(t.numel()); ++i) s += t[i];
  return s;
}

class SparseOpsGrad : public testing::TestWithParam<Backend> {};

TEST_P(SparseOpsGrad, SpmmGradcheck) {
  const Coo coo = small_graph();
  SparseEngine engine(GetParam(), coo, gpusim::default_device());
  auto ctx = ctx_of(nullptr);
  const int f = 4;
  auto x = make_var(random_tensor(coo.num_rows, f, 1), true, "x");
  auto w = make_var(random_tensor(coo.nnz(), 1, 2), true, "w");

  auto run = [&]() {
    return scalar_sum(engine.spmm(ctx, w, x)->value);
  };
  const VarPtr out = engine.spmm(ctx, w, x);
  // Seed output grad with ones and backprop.
  for (std::size_t i = 0; i < std::size_t(out->grad.numel()); ++i) {
    out->grad[i] = 1.0f;
  }
  out->backward_fn();

  const float eps = 1e-2f;
  Rng pick(3);
  for (int trial = 0; trial < 10; ++trial) {
    // Check a sample of x entries and w entries.
    const auto xi = std::size_t(pick.uniform(std::uint64_t(x->value.numel())));
    float orig = x->value[xi];
    x->value[xi] = orig + eps;
    const float up = run();
    x->value[xi] = orig - eps;
    const float dn = run();
    x->value[xi] = orig;
    EXPECT_NEAR(x->grad[xi], (up - dn) / (2 * eps), 5e-2f);

    const auto wi = std::size_t(pick.uniform(std::uint64_t(w->value.numel())));
    orig = w->value[wi];
    w->value[wi] = orig + eps;
    const float up2 = run();
    w->value[wi] = orig - eps;
    const float dn2 = run();
    w->value[wi] = orig;
    EXPECT_NEAR(w->grad[wi], (up2 - dn2) / (2 * eps), 5e-2f);
  }
}

TEST_P(SparseOpsGrad, SddmmGradcheck) {
  const Coo coo = small_graph();
  SparseEngine engine(GetParam(), coo, gpusim::default_device());
  auto ctx = ctx_of(nullptr);
  const int f = 4;
  auto x = make_var(random_tensor(coo.num_rows, f, 4), true, "x");
  auto y = make_var(random_tensor(coo.num_rows, f, 5), true, "y");

  auto run = [&]() { return scalar_sum(engine.sddmm(ctx, x, y)->value); };
  const VarPtr out = engine.sddmm(ctx, x, y);
  for (std::size_t i = 0; i < std::size_t(out->grad.numel()); ++i) {
    out->grad[i] = 1.0f;
  }
  out->backward_fn();

  const float eps = 1e-2f;
  Rng pick(6);
  for (int trial = 0; trial < 10; ++trial) {
    for (auto* v : {x.get(), y.get()}) {
      const auto i = std::size_t(pick.uniform(std::uint64_t(v->value.numel())));
      const float orig = v->value[i];
      v->value[i] = orig + eps;
      const float up = run();
      v->value[i] = orig - eps;
      const float dn = run();
      v->value[i] = orig;
      EXPECT_NEAR(v->grad[i], (up - dn) / (2 * eps), 5e-2f);
    }
  }
}

TEST_P(SparseOpsGrad, EdgeSoftmaxSumsToOnePerRow) {
  const Coo coo = small_graph();
  SparseEngine engine(GetParam(), coo, gpusim::default_device());
  auto ctx = ctx_of(nullptr);
  auto s = make_var(random_tensor(coo.nnz(), 1, 7), true, "s");
  const VarPtr alpha = engine.edge_softmax(ctx, s);
  std::vector<double> row_sum(std::size_t(coo.num_rows), 0.0);
  for (std::size_t e = 0; e < std::size_t(coo.nnz()); ++e) {
    row_sum[std::size_t(coo.row[e])] += double(alpha->value[e]);
  }
  for (vid_t r = 0; r < coo.num_rows; ++r) {
    bool has_edges = false;
    for (std::size_t e = 0; e < std::size_t(coo.nnz()); ++e) {
      if (coo.row[e] == r) has_edges = true;
    }
    if (has_edges) EXPECT_NEAR(row_sum[std::size_t(r)], 1.0, 1e-4);
  }
}

TEST_P(SparseOpsGrad, UAddVMatchesDirectComputation) {
  const Coo coo = small_graph();
  SparseEngine engine(GetParam(), coo, gpusim::default_device());
  auto ctx = ctx_of(nullptr);
  auto src = make_var(random_tensor(coo.num_rows, 1, 8), true, "src");
  auto dst = make_var(random_tensor(coo.num_rows, 1, 9), true, "dst");
  const VarPtr e = engine.u_add_v(ctx, src, dst);
  for (std::size_t i = 0; i < std::size_t(coo.nnz()); ++i) {
    const float want = src->value[std::size_t(coo.col[i])] +
                       dst->value[std::size_t(coo.row[i])];
    EXPECT_NEAR(e->value[i], want, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SparseOpsGrad,
                         testing::Values(Backend::kGnnOne, Backend::kDgl,
                                         Backend::kDgnn),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

/// Regression for the ctor-captures-temporary pattern: SparseEngine copies
/// the device spec by value (gnn/backends.h), so an engine built from a
/// spec that dies before the first kernel runs must compute exactly what an
/// engine built from a live spec does.
TEST(SparseEngineLifetime, SurvivesTemporaryDeviceSpec) {
  const Coo coo = small_graph();
  auto ctx = ctx_of(nullptr);
  const int f = 4;
  auto x = make_var(random_tensor(coo.num_rows, f, 1), false, "x");
  auto w = make_var(random_tensor(coo.nnz(), 1, 2), false, "w");

  SparseEngine live(Backend::kGnnOne, coo, gpusim::default_device());
  const VarPtr ref = live.spmm(ctx, w, x);

  std::unique_ptr<SparseEngine> engine;
  {
    const gpusim::DeviceSpec spec{};  // destroyed before any kernel runs
    engine = std::make_unique<SparseEngine>(Backend::kGnnOne, coo, spec);
  }
  const VarPtr out = engine->spmm(ctx, w, x);
  ASSERT_EQ(out->value.numel(), ref->value.numel());
  for (std::size_t i = 0; i < std::size_t(out->value.numel()); ++i) {
    EXPECT_EQ(out->value[i], ref->value[i]) << i;
  }
}

TEST(BackendEquivalence, IdenticalForwardAcrossBackends) {
  // The Fig. 5 property: all backends compute the same math.
  const Dataset d = make_dataset("G0");
  const int in_dim = 32;
  const auto x_data = make_features(d.coo.num_rows, in_dim, d.labels, 3);
  for (const std::string kind : {"gcn", "gin", "gat"}) {
    Tensor out_gnnone, out_dgl;
    for (Backend b : {Backend::kGnnOne, Backend::kDgl}) {
      SparseEngine engine(b, d.coo, gpusim::default_device());
      const ModelConfig cfg =
          kind == "gcn" ? paper_gcn_config(in_dim, d.num_classes)
          : kind == "gin" ? paper_gin_config(in_dim, d.num_classes)
                          : paper_gat_config(in_dim, d.num_classes);
      auto model = kind == "gcn" ? make_gcn(engine, cfg)
                   : kind == "gin" ? make_gin(cfg)
                                   : make_gat(cfg);
      auto ctx = ctx_of(nullptr);
      ctx.training = false;
      const VarPtr x = make_var(
          Tensor::from(d.coo.num_rows, in_dim, x_data), false);
      const VarPtr out = model->forward(ctx, engine, x, 1);
      (b == Backend::kGnnOne ? out_gnnone : out_dgl) = out->value;
    }
    ASSERT_EQ(out_gnnone.numel(), out_dgl.numel()) << kind;
    for (std::size_t i = 0; i < std::size_t(out_gnnone.numel()); ++i) {
      ASSERT_NEAR(out_gnnone[i], out_dgl[i], 1e-3f) << kind << " at " << i;
    }
  }
}

TEST(Training, GcnLearnsPlantedPartition) {
  const Dataset d = make_dataset("G0");
  TrainOptions opts;
  opts.measured_epochs = 60;
  opts.epochs = 60;
  opts.feature_dim_override = 32;
  opts.lr = 0.02f;
  const auto res = train_model(Backend::kGnnOne, d, "gcn",
                               gpusim::default_device(), opts);
  ASSERT_TRUE(res.ran);
  EXPECT_GT(res.final_accuracy, 0.75) << "GCN failed to learn communities";
  EXPECT_GT(res.cycles_per_epoch, 0u);
}

TEST(Training, BackendsReachSameAccuracy) {
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 30;
  opts.epochs = 30;
  opts.feature_dim_override = 16;
  const auto a = train_model(Backend::kGnnOne, d, "gat",
                             gpusim::default_device(), opts);
  const auto b = train_model(Backend::kDgl, d, "gat",
                             gpusim::default_device(), opts);
  ASSERT_TRUE(a.ran);
  ASSERT_TRUE(b.ran);
  EXPECT_NEAR(a.final_accuracy, b.final_accuracy, 0.02);
  // And GNNOne spends fewer cycles per epoch (the Fig. 6 headline).
  EXPECT_LT(a.cycles_per_epoch, b.cycles_per_epoch);
}

TEST(Training, SupportMatrixMatchesPaper) {
  const Dataset kron = make_dataset("G10");
  EXPECT_FALSE(SparseEngine::supports(Backend::kDgnn, kron));
  EXPECT_TRUE(SparseEngine::supports(Backend::kGnnOne, kron));
  EXPECT_TRUE(SparseEngine::supports(Backend::kDgl, kron));
}

TEST(Training, PaperScaleOomMatrix) {
  const auto& dev = gpusim::default_device();
  // Fig. 7: GNNOne trains GCN on uk-2002 (G17); DGL goes OOM. Both OOM on
  // kmer_P1a (G16) and uk-2005 (G18).
  const Dataset g17 = make_dataset("G17");
  EXPECT_LE(paper_scale_footprint(Backend::kGnnOne, g17, "gcn"),
            dev.device_memory_bytes);
  EXPECT_GT(paper_scale_footprint(Backend::kDgl, g17, "gcn"),
            dev.device_memory_bytes);
  for (const char* id : {"G16", "G18"}) {
    const Dataset d = make_dataset(id);
    EXPECT_GT(paper_scale_footprint(Backend::kGnnOne, d, "gcn"),
              dev.device_memory_bytes)
        << id;
    EXPECT_GT(paper_scale_footprint(Backend::kDgl, d, "gcn"),
              dev.device_memory_bytes)
        << id;
  }
  // The rest of the training suite fits on both.
  for (const char* id : {"G9", "G11", "G12", "G13", "G14", "G15"}) {
    const Dataset d = make_dataset(id);
    EXPECT_LE(paper_scale_footprint(Backend::kDgl, d, "gcn"),
              dev.device_memory_bytes)
        << id;
  }
}

TEST(Training, OomReportedWithoutRunning) {
  const Dataset g18 = make_dataset("G18");
  const auto res = train_model(Backend::kGnnOne, g18, "gcn",
                               gpusim::default_device());
  EXPECT_FALSE(res.ran);
  EXPECT_EQ(res.fail_reason, "OOM");
}

TEST(Training, DgnnFusionRebatesLaunches) {
  const Dataset d = make_dataset("G1");
  TrainOptions opts;
  opts.measured_epochs = 1;
  opts.epochs = 1;
  opts.feature_dim_override = 16;
  opts.eval_accuracy = false;
  const auto dgnn = train_model(Backend::kDgnn, d, "gat",
                                gpusim::default_device(), opts);
  ASSERT_TRUE(dgnn.ran);
  EXPECT_GT(dgnn.sddmm_cycles, 0u);
  EXPECT_GT(dgnn.spmm_cycles, 0u);
}

}  // namespace
}  // namespace gnnone
