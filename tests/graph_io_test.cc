// Tests for MatrixMarket / edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/rmat.h"
#include "graph/convert.h"
#include "graph/io.h"

namespace gnnone {
namespace {

TEST(Mtx, ParsesGeneralPatternMatrix) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "4 4 3\n"
      "1 2\n"
      "3 1\n"
      "4 4\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_mtx(in, opts);
  EXPECT_EQ(coo.num_rows, 4);
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.row, (std::vector<vid_t>{0, 2, 3}));
  EXPECT_EQ(coo.col, (std::vector<vid_t>{1, 0, 3}));
}

TEST(Mtx, SymmetricQualifierMirrorsEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 0.5\n"
      "3 3 1.0\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_mtx(in, opts);
  EXPECT_EQ(coo.nnz(), 3);  // (1,0), (0,1), (2,2)
}

TEST(Mtx, SymmetrizeOptionDoublesEdges) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1 2\n");
  const Coo coo = read_mtx(in);  // default symmetrize = paper preprocessing
  EXPECT_EQ(coo.nnz(), 2);
}

TEST(Mtx, DropSelfLoops) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 1\n"
      "1 2\n");
  MtxOptions opts;
  opts.symmetrize = false;
  opts.drop_self_loops = true;
  EXPECT_EQ(read_mtx(in, opts).nnz(), 1);
}

TEST(Mtx, RejectsMalformedInput) {
  {
    std::istringstream in("not a matrix\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "5 1\n");  // out of bounds
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n"
        "2 2\n");  // dense format unsupported
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "4 4 3\n"
        "1 2\n");  // truncated
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
}

TEST(Mtx, RoundTripPreservesTopology) {
  RmatParams p;
  p.scale = 8;
  const Coo coo = rmat_graph(p);
  std::stringstream buf;
  write_mtx(buf, coo);
  MtxOptions opts;
  opts.symmetrize = false;  // already symmetric
  const Coo back = read_mtx(buf, opts);
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
}

TEST(EdgeList, ParsesSnapStyle) {
  std::istringstream in(
      "# Directed graph\n"
      "# src dst\n"
      "0 3\n"
      "3 1\n"
      "2 2\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_edge_list(in, opts);
  EXPECT_EQ(coo.num_rows, 4);
  EXPECT_EQ(coo.nnz(), 3);
  validate(coo);
}

TEST(EdgeList, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# nothing\n");
  const Coo coo = read_edge_list(in);
  EXPECT_EQ(coo.num_rows, 0);
  EXPECT_EQ(coo.nnz(), 0);
}

TEST(EdgeList, RejectsNegativeIds) {
  std::istringstream in("0 -3\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_mtx_file("/nonexistent/x.mtx"), std::runtime_error);
  EXPECT_THROW(read_edge_list_file("/nonexistent/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace gnnone
