// Tests for MatrixMarket / edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/rmat.h"
#include "graph/convert.h"
#include "graph/io.h"

namespace gnnone {
namespace {

TEST(Mtx, ParsesGeneralPatternMatrix) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "4 4 3\n"
      "1 2\n"
      "3 1\n"
      "4 4\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_mtx(in, opts);
  EXPECT_EQ(coo.num_rows, 4);
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.row, (std::vector<vid_t>{0, 2, 3}));
  EXPECT_EQ(coo.col, (std::vector<vid_t>{1, 0, 3}));
}

TEST(Mtx, SymmetricQualifierMirrorsEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 0.5\n"
      "3 3 1.0\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_mtx(in, opts);
  EXPECT_EQ(coo.nnz(), 3);  // (1,0), (0,1), (2,2)
}

TEST(Mtx, SymmetrizeOptionDoublesEdges) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1 2\n");
  const Coo coo = read_mtx(in);  // default symmetrize = paper preprocessing
  EXPECT_EQ(coo.nnz(), 2);
}

TEST(Mtx, DropSelfLoops) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 1\n"
      "1 2\n");
  MtxOptions opts;
  opts.symmetrize = false;
  opts.drop_self_loops = true;
  EXPECT_EQ(read_mtx(in, opts).nnz(), 1);
}

TEST(Mtx, RejectsMalformedInput) {
  {
    std::istringstream in("not a matrix\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "5 1\n");  // out of bounds
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n"
        "2 2\n");  // dense format unsupported
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "4 4 3\n"
        "1 2\n");  // truncated
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
}

/// Runs `fn`, which must throw std::runtime_error, and returns the message.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return "";
}

TEST(Mtx, ErrorsCarryLineNumbers) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment\n"
        "3 3 2\n"
        "1 2\n"
        "9 9\n");  // out of bounds at line 5
    read_mtx(in);
  });
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of bounds"), std::string::npos) << msg;
}

TEST(Mtx, EmptyInputReportsLineZero) {
  const std::string msg = thrown_message([] {
    std::istringstream in("");
    read_mtx(in);
  });
  EXPECT_NE(msg.find("empty input"), std::string::npos) << msg;
}

TEST(Mtx, EofBeforeSizeLineIsReported) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% only comments follow\n"
        "% and then the file ends\n");
    read_mtx(in);
  });
  EXPECT_NE(msg.find("before the size line"), std::string::npos) << msg;
}

TEST(Mtx, TruncatedEntriesReportEof) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "4 4 3\n"
        "1 2\n"
        "2 3\n");  // promised 3 entries, delivered 2
    read_mtx(in);
  });
  EXPECT_NE(msg.find("unexpected end of file"), std::string::npos) << msg;
}

TEST(Mtx, CorruptEntryReportsItsLine) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "4 4 2\n"
        "1 2\n"
        "one two\n");
    read_mtx(in);
  });
  EXPECT_NE(msg.find("bad entry"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
}

TEST(Mtx, RejectsDimensionsOverflowing32BitIds) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "8589934592 8589934592 1\n"  // 2^33 vertices
        "1 1\n");
    read_mtx(in);
  });
  EXPECT_NE(msg.find("overflow"), std::string::npos) << msg;
}

TEST(Mtx, RejectsNegativeNnz) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4 4 -1\n");
  EXPECT_THROW(read_mtx(in), std::runtime_error);
}

TEST(Mtx, RoundTripPreservesTopology) {
  RmatParams p;
  p.scale = 8;
  const Coo coo = rmat_graph(p);
  std::stringstream buf;
  write_mtx(buf, coo);
  MtxOptions opts;
  opts.symmetrize = false;  // already symmetric
  const Coo back = read_mtx(buf, opts);
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
}

TEST(EdgeList, ParsesSnapStyle) {
  std::istringstream in(
      "# Directed graph\n"
      "# src dst\n"
      "0 3\n"
      "3 1\n"
      "2 2\n");
  MtxOptions opts;
  opts.symmetrize = false;
  const Coo coo = read_edge_list(in, opts);
  EXPECT_EQ(coo.num_rows, 4);
  EXPECT_EQ(coo.nnz(), 3);
  validate(coo);
}

TEST(EdgeList, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# nothing\n");
  const Coo coo = read_edge_list(in);
  EXPECT_EQ(coo.num_rows, 0);
  EXPECT_EQ(coo.nnz(), 0);
}

TEST(EdgeList, RejectsNegativeIds) {
  std::istringstream in("0 -3\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeList, NegativeIdErrorCarriesLineNumber) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "# header\n"
        "0 1\n"
        "2 -7\n");
    read_edge_list(in);
  });
  EXPECT_NE(msg.find("negative vertex id"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(EdgeList, RejectsIdsOverflowing32Bit) {
  const std::string msg = thrown_message([] {
    std::istringstream in("0 4294967296\n");  // 2^32
    read_edge_list(in);
  });
  EXPECT_NE(msg.find("overflow"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(EdgeList, RejectsMaxIntIdBecauseCountWouldOverflow) {
  std::istringstream in("0 2147483647\n");  // max_id + 1 would wrap
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeList, CorruptLineReportsItsNumber) {
  const std::string msg = thrown_message([] {
    std::istringstream in(
        "1 2\n"
        "garbage\n");
    read_edge_list(in);
  });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_mtx_file("/nonexistent/x.mtx"), std::runtime_error);
  EXPECT_THROW(read_edge_list_file("/nonexistent/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace gnnone
