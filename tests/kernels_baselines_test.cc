// Correctness of every baseline kernel against the CPU reference, plus the
// qualitative cost-model properties the paper's comparisons rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/grid.h"
#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"
#include "gpusim/device.h"
#include "graph/convert.h"
#include "kernels/baselines.h"
#include "kernels/gnnone.h"
#include "kernels/reference.h"

namespace gnnone {
namespace {

using namespace baselines;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

struct Fixture {
  Coo coo;
  Csr csr;
  NeighborGroups ng;
  RowSwizzle swizzle;
  std::vector<float> ev, x, yfeat;

  explicit Fixture(const Coo& g, int f) : coo(g) {
    csr = coo_to_csr(coo);
    ng = build_neighbor_groups(csr);
    swizzle = build_row_swizzle(csr);
    ev = random_vec(std::size_t(coo.nnz()), 1);
    x = random_vec(std::size_t(coo.num_cols) * std::size_t(f), 2);
    yfeat = random_vec(std::size_t(coo.num_rows) * std::size_t(f), 3);
  }
};

Coo family_graph(const std::string& fam) {
  if (fam == "rmat") {
    RmatParams p;
    p.scale = 8;
    p.edge_factor = 8;
    return rmat_graph(p);
  }
  if (fam == "grid") return grid_graph(18);
  PowerLawParams p;
  p.n = 300;
  p.avg_degree = 9;
  p.seed = 3;
  return power_law(p);
}

void expect_close(std::span<const float> got, std::span<const float> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-3f + 1e-4f * std::abs(want[i]))
        << "at " << i;
  }
}

struct Case {
  std::string family;
  int f;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.family + "_f" + std::to_string(info.param.f);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const std::string& fam : {"rmat", "grid", "powerlaw"}) {
    for (int f : {1, 6, 16, 32, 64, 96}) cases.push_back({fam, f});
  }
  return cases;
}

class BaselineSpmm : public testing::TestWithParam<Case> {};

TEST_P(BaselineSpmm, AllMatchReference) {
  const auto& [fam, f] = GetParam();
  Fixture fx(family_graph(fam), f);
  std::vector<float> want(std::size_t(fx.coo.num_rows) * std::size_t(f));
  ref::spmm(fx.coo, fx.ev, fx.x, f, want);
  const auto& dev = gpusim::default_device();

  std::vector<float> got(want.size());
  gespmm_spmm(dev, fx.csr, fx.ev, fx.x, f, got);
  expect_close(got, want);
  cusparse_spmm(dev, fx.csr, fx.ev, fx.x, f, got);
  expect_close(got, want);
  featgraph_spmm(dev, fx.csr, fx.ev, fx.x, f, got);
  expect_close(got, want);
  sputnik_spmm(dev, fx.csr, fx.swizzle, fx.ev, fx.x, f, got);
  expect_close(got, want);
  gnnadvisor_spmm(dev, fx.csr, fx.ng, fx.ev, fx.x, f, got);
  expect_close(got, want);
  huang_spmm(dev, fx.csr, fx.ng, fx.ev, fx.x, f, got);
  expect_close(got, want);
  nonzero_split_spmm(dev, fx.coo, fx.ev, fx.x, f, got);
  expect_close(got, want);
}

class BaselineSddmm : public testing::TestWithParam<Case> {};

TEST_P(BaselineSddmm, AllMatchReference) {
  const auto& [fam, f] = GetParam();
  Fixture fx(family_graph(fam), f);
  std::vector<float> want(std::size_t(fx.coo.nnz()));
  ref::sddmm(fx.coo, fx.x, fx.yfeat, f, want);
  const auto& dev = gpusim::default_device();

  std::vector<float> got(want.size());
  dgl_sddmm(dev, fx.coo, fx.x, fx.yfeat, f, got);
  expect_close(got, want);
  dgsparse_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, got);
  expect_close(got, want);
  featgraph_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, got);
  expect_close(got, want);
  sputnik_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, got);
  expect_close(got, want);
  cusparse_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, got);
  expect_close(got, want);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineSpmm, testing::ValuesIn(make_cases()),
                         case_name);
INSTANTIATE_TEST_SUITE_P(Sweep, BaselineSddmm, testing::ValuesIn(make_cases()),
                         case_name);

TEST(MergeSpmv, MatchesReference) {
  for (const std::string& fam : {"rmat", "grid", "powerlaw"}) {
    Fixture fx(family_graph(fam), 1);
    std::vector<float> want(std::size_t(fx.coo.num_rows));
    ref::spmv(fx.coo, fx.ev, fx.x, want);
    for (int ipt : {1, 4, 7}) {
      std::vector<float> got(want.size());
      merge_spmv(gpusim::default_device(), fx.csr, fx.ev, fx.x, got, ipt);
      expect_close(got, want);
    }
  }
}

TEST(SupportLimits, MatchPaperThresholds) {
  // Sputnik and cuSPARSE SDDMM error out around 2M vertices (paper §5.1).
  EXPECT_TRUE(sputnik_sddmm_supports(400727));     // Amazon ran
  EXPECT_TRUE(sputnik_sddmm_supports(1069127));    // hollywood09 ran
  EXPECT_FALSE(sputnik_sddmm_supports(2394385));   // wiki-Talk did not
  EXPECT_FALSE(sputnik_sddmm_supports(2449029));   // ogb-product did not
  EXPECT_TRUE(cusparse_sddmm_supports(1971279));
  EXPECT_FALSE(cusparse_sddmm_supports(2601977));
}

// ---------------------------------------------------------------------------
// Cost-model shape properties (the paper's qualitative claims)
// ---------------------------------------------------------------------------

Coo skewed_graph() {
  PowerLawParams p;
  p.n = 8192;
  p.avg_degree = 16;
  p.exponent = 2.0;
  p.seed = 17;
  return power_law(p);
}

TEST(CostShape, GnnOneSpmmBeatsVertexParallelOnSkewedGraphs) {
  const int f = 32;
  Fixture fx(skewed_graph(), f);
  std::vector<float> out(std::size_t(fx.coo.num_rows) * std::size_t(f));
  const auto& dev = gpusim::default_device();
  const auto ours = gnnone_spmm(dev, fx.coo, fx.ev, fx.x, f, out);
  const auto ge = gespmm_spmm(dev, fx.csr, fx.ev, fx.x, f, out);
  const auto fg = featgraph_spmm(dev, fx.csr, fx.ev, fx.x, f, out);
  EXPECT_LT(ours.cycles, ge.cycles);
  EXPECT_LT(ours.cycles, fg.cycles);
}

TEST(CostShape, GnnOneSddmmBeatsAllBaselinesAtF32) {
  const int f = 32;
  Fixture fx(skewed_graph(), f);
  std::vector<float> out(std::size_t(fx.coo.nnz()));
  const auto& dev = gpusim::default_device();
  const auto ours = gnnone_sddmm(dev, fx.coo, fx.x, fx.yfeat, f, out);
  EXPECT_LT(ours.cycles, dgl_sddmm(dev, fx.coo, fx.x, fx.yfeat, f, out).cycles);
  EXPECT_LT(ours.cycles,
            dgsparse_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, out).cycles);
  EXPECT_LT(ours.cycles,
            featgraph_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, out).cycles);
  EXPECT_LT(ours.cycles,
            cusparse_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, out).cycles);
}

TEST(CostShape, NonzeroSplitCollapsesOccupancyAtLargeF) {
  const int f = 64;
  Fixture fx(skewed_graph(), f);
  std::vector<float> out(std::size_t(fx.coo.num_rows) * std::size_t(f));
  const auto& dev = gpusim::default_device();
  const auto nzs = nonzero_split_spmm(dev, fx.coo, fx.ev, fx.x, f, out);
  const auto ours = gnnone_spmm(dev, fx.coo, fx.ev, fx.x, f, out);
  EXPECT_LT(nzs.resident_warps_per_sm, ours.resident_warps_per_sm);
  EXPECT_LT(ours.cycles, nzs.cycles);
}

TEST(CostShape, CusparseSddmmIsFarSlower) {
  const int f = 32;
  Fixture fx(skewed_graph(), f);
  std::vector<float> out(std::size_t(fx.coo.nnz()));
  const auto& dev = gpusim::default_device();
  const auto ours = gnnone_sddmm(dev, fx.coo, fx.x, fx.yfeat, f, out);
  const auto cu = cusparse_sddmm(dev, fx.csr, fx.x, fx.yfeat, f, out);
  EXPECT_GT(double(cu.cycles) / double(ours.cycles), 8.0);
}

}  // namespace
}  // namespace gnnone
