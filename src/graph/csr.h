// Compressed Sparse Row format (and CSC via transposition).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace gnnone {

struct Csr {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<eid_t> offsets;  // size num_rows + 1
  std::vector<vid_t> col;      // column id of every NZE

  eid_t nnz() const { return eid_t(col.size()); }

  eid_t row_begin(vid_t r) const { return offsets[std::size_t(r)]; }
  eid_t row_end(vid_t r) const { return offsets[std::size_t(r) + 1]; }
  vid_t row_length(vid_t r) const { return vid_t(row_end(r) - row_begin(r)); }

  /// Device-memory footprint of the topology (offsets + col arrays).
  std::size_t device_bytes() const {
    return offsets.size() * sizeof(eid_t) + col.size() * sizeof(vid_t);
  }
};

}  // namespace gnnone
