#include "graph/merge_path.h"

#include <algorithm>

namespace gnnone {

MergeCoord merge_path_search(const Csr& csr, std::int64_t diagonal) {
  // Coordinates (r, e) on diagonal satisfy r + e == diagonal; the merge path
  // crosses where offsets[r] (end-exclusive row boundary) first exceeds e.
  std::int64_t lo = std::max<std::int64_t>(0, diagonal - csr.nnz());
  std::int64_t hi = std::min<std::int64_t>(diagonal, csr.num_rows);
  while (lo < hi) {
    const std::int64_t mid = (lo + hi) / 2;
    // Consume row boundary `mid` before NZE `diagonal - mid - ...`?
    if (csr.offsets[std::size_t(mid)] <= diagonal - mid - 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {vid_t(lo), eid_t(diagonal - lo)};
}

std::vector<MergeCoord> merge_path_partition(const Csr& csr, int num_parts) {
  const std::int64_t total = std::int64_t(csr.num_rows) + csr.nnz();
  std::vector<MergeCoord> coords;
  coords.reserve(std::size_t(num_parts) + 1);
  for (int p = 0; p <= num_parts; ++p) {
    const std::int64_t diag = total * p / num_parts;
    coords.push_back(merge_path_search(csr, diag));
  }
  return coords;
}

}  // namespace gnnone
