#include "graph/convert.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gnnone {

Coo coo_from_edges(vid_t num_rows, vid_t num_cols, EdgeList edges) {
  for (const auto& [s, d] : edges) {
    if (s < 0 || s >= num_rows || d < 0 || d >= num_cols) {
      throw std::out_of_range("edge endpoint out of range: (" +
                              std::to_string(s) + ", " + std::to_string(d) +
                              ")");
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  Coo coo;
  coo.num_rows = num_rows;
  coo.num_cols = num_cols;
  coo.row.reserve(edges.size());
  coo.col.reserve(edges.size());
  for (const auto& [s, d] : edges) {
    coo.row.push_back(s);
    coo.col.push_back(d);
  }
  return coo;
}

EdgeList symmetrize(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size() * 2);
  for (const auto& [s, d] : edges) {
    out.emplace_back(s, d);
    out.emplace_back(d, s);
  }
  return out;
}

bool Coo::is_csr_arranged() const {
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] < row[i - 1]) return false;
    if (row[i] == row[i - 1] && col[i] < col[i - 1]) return false;
  }
  return true;
}

Csr coo_to_csr(const Coo& coo) {
  Csr csr;
  csr.num_rows = coo.num_rows;
  csr.num_cols = coo.num_cols;
  csr.offsets.assign(std::size_t(coo.num_rows) + 1, 0);
  for (vid_t r : coo.row) csr.offsets[std::size_t(r) + 1] += 1;
  for (std::size_t i = 1; i < csr.offsets.size(); ++i) {
    csr.offsets[i] += csr.offsets[i - 1];
  }
  if (coo.is_csr_arranged()) {
    csr.col = coo.col;
  } else {
    csr.col.resize(coo.col.size());
    std::vector<eid_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
    for (std::size_t i = 0; i < coo.row.size(); ++i) {
      csr.col[std::size_t(cursor[std::size_t(coo.row[i])]++)] = coo.col[i];
    }
    for (vid_t r = 0; r < csr.num_rows; ++r) {
      std::sort(csr.col.begin() + csr.row_begin(r),
                csr.col.begin() + csr.row_end(r));
    }
  }
  return csr;
}

Coo csr_to_coo(const Csr& csr) {
  Coo coo;
  coo.num_rows = csr.num_rows;
  coo.num_cols = csr.num_cols;
  coo.col = csr.col;
  coo.row.resize(csr.col.size());
  for (vid_t r = 0; r < csr.num_rows; ++r) {
    for (eid_t e = csr.row_begin(r); e < csr.row_end(r); ++e) {
      coo.row[std::size_t(e)] = r;
    }
  }
  return coo;
}

std::pair<Coo, std::vector<eid_t>> coo_transpose(const Coo& coo) {
  const std::size_t m = coo.row.size();
  std::vector<eid_t> perm(m);
  for (std::size_t i = 0; i < m; ++i) perm[i] = eid_t(i);
  std::sort(perm.begin(), perm.end(), [&](eid_t a, eid_t b) {
    const auto ka = std::make_pair(coo.col[std::size_t(a)], coo.row[std::size_t(a)]);
    const auto kb = std::make_pair(coo.col[std::size_t(b)], coo.row[std::size_t(b)]);
    return ka < kb;
  });
  Coo t;
  t.num_rows = coo.num_cols;
  t.num_cols = coo.num_rows;
  t.row.resize(m);
  t.col.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    t.row[i] = coo.col[std::size_t(perm[i])];
    t.col[i] = coo.row[std::size_t(perm[i])];
  }
  return {std::move(t), std::move(perm)};
}

std::vector<vid_t> row_lengths(const Coo& coo) {
  std::vector<vid_t> len(std::size_t(coo.num_rows), 0);
  for (vid_t r : coo.row) len[std::size_t(r)] += 1;
  return len;
}

void validate(const Csr& csr) {
  if (csr.offsets.size() != std::size_t(csr.num_rows) + 1) {
    throw std::invalid_argument("CSR offsets size mismatch");
  }
  if (csr.offsets.front() != 0 ||
      csr.offsets.back() != eid_t(csr.col.size())) {
    throw std::invalid_argument("CSR offsets endpoints invalid");
  }
  for (std::size_t i = 1; i < csr.offsets.size(); ++i) {
    if (csr.offsets[i] < csr.offsets[i - 1]) {
      throw std::invalid_argument("CSR offsets not monotone");
    }
  }
  for (vid_t c : csr.col) {
    if (c < 0 || c >= csr.num_cols) {
      throw std::invalid_argument("CSR column id out of range");
    }
  }
}

void validate(const Coo& coo) {
  if (coo.row.size() != coo.col.size()) {
    throw std::invalid_argument("COO row/col size mismatch");
  }
  for (std::size_t i = 0; i < coo.row.size(); ++i) {
    if (coo.row[i] < 0 || coo.row[i] >= coo.num_rows ||
        coo.col[i] < 0 || coo.col[i] >= coo.num_cols) {
      throw std::invalid_argument("COO entry out of range");
    }
  }
  if (!coo.is_csr_arranged()) {
    throw std::invalid_argument("COO not arranged the CSR way");
  }
}

}  // namespace gnnone
