#include "graph/row_swizzle.h"

#include <algorithm>
#include <numeric>

namespace gnnone {

RowSwizzle build_row_swizzle(const Csr& csr) {
  RowSwizzle rs;
  rs.order.resize(std::size_t(csr.num_rows));
  std::iota(rs.order.begin(), rs.order.end(), vid_t{0});
  std::stable_sort(rs.order.begin(), rs.order.end(), [&](vid_t a, vid_t b) {
    return csr.row_length(a) > csr.row_length(b);
  });
  return rs;
}

}  // namespace gnnone
