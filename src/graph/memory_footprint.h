// Per-format device-memory accounting used by the training backends to
// reproduce the paper's OOM asymmetry (Fig. 7: DGL stores CSR *and* COO and
// runs out of memory on UK-2002 while GNNOne's single COO fits).
#pragma once

#include <cstddef>

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

/// Bytes for graph storage when only the COO format is kept (GNNOne): the
/// forward matrix and its transpose (backward pass) share scale.
inline std::size_t coo_only_bytes(eid_t nnz, vid_t num_rows) {
  (void)num_rows;
  // row + col ids for A and for A^T.
  return std::size_t(nnz) * 2 * sizeof(vid_t) * 2;
}

/// Bytes for graph storage in a DGL-like system holding CSR (for SpMM) and
/// COO (for SDDMM) simultaneously, plus the CSC/transpose for backward.
inline std::size_t dgl_dual_format_bytes(eid_t nnz, vid_t num_rows) {
  const std::size_t csr = std::size_t(num_rows + 1) * sizeof(eid_t) +
                          std::size_t(nnz) * sizeof(vid_t);
  const std::size_t coo = std::size_t(nnz) * 2 * sizeof(vid_t);
  return (csr + coo) * 2;  // forward + transposed copies
}

}  // namespace gnnone
