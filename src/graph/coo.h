// COO sparse format, arranged the CSR way (sorted by row id, then column id)
// as cuSPARSE defines it and as the paper's GNNOne kernels require
// (consecutive NZEs of the same row enable row-feature reuse and thread-local
// reduction, §4.2.2/§4.3).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace gnnone {

struct Coo {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<vid_t> row;  // row id of every NZE, non-decreasing
  std::vector<vid_t> col;  // column id of every NZE

  eid_t nnz() const { return eid_t(row.size()); }

  /// Device-memory footprint of the topology (row + col arrays).
  std::size_t device_bytes() const {
    return (row.size() + col.size()) * sizeof(vid_t);
  }

  /// True when NZEs are sorted by (row, col) — the CSR arrangement.
  bool is_csr_arranged() const;
};

}  // namespace gnnone
