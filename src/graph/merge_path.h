// Merge-path work partitioning (Merrill & Garland SpMV).
//
// Models the merge of the CSR row-offsets list with the NZE index list as a
// 2D grid; splitting the merge path into equal-length diagonals assigns every
// worker an equal share of (rows + NZEs). The per-worker starting coordinate
// is found by binary search on the diagonal — the "online search on metadata"
// overhead the paper contrasts with COO's direct row ids (§5.4.5).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

struct MergeCoord {
  vid_t row = 0;   // position in the row-offsets list
  eid_t nze = 0;   // position in the NZE list
};

/// Finds the merge-path coordinate where `diagonal` crosses the path, via
/// binary search over row offsets (cost: O(log rows) metadata probes).
MergeCoord merge_path_search(const Csr& csr, std::int64_t diagonal);

/// Partitions the merge matrix into `num_parts` equal diagonals and returns
/// the num_parts+1 starting coordinates.
std::vector<MergeCoord> merge_path_partition(const Csr& csr, int num_parts);

}  // namespace gnnone
