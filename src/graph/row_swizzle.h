// Row-swizzle reordering (Sputnik style).
//
// A preprocessing step emits a permutation of row ids sorted by decreasing
// row length, so that warps scheduled in permutation order process similar
// amounts of work at similar times (exploiting the hardware warp scheduler's
// roughly-in-order CTA issue). The permutation is extra metadata on top of
// CSR — a custom format in the paper's taxonomy.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

struct RowSwizzle {
  std::vector<vid_t> order;  // row ids, longest row first

  std::size_t device_bytes() const { return order.size() * sizeof(vid_t); }
};

RowSwizzle build_row_swizzle(const Csr& csr);

}  // namespace gnnone
