// Basic graph/sparse-matrix typedefs shared across the library.
#pragma once

#include <cstdint>

namespace gnnone {

/// Vertex (row/column) identifier. The simulated datasets are scaled-down
/// stand-ins for the paper's suite, so 32-bit ids always suffice — which also
/// matches what the paper's CUDA kernels use (4-byte row/col ids, §5.4.5).
using vid_t = std::int32_t;

/// Edge (non-zero element) index; 64-bit because edge counts reach billions
/// in the paper's Table 1.
using eid_t = std::int64_t;

}  // namespace gnnone
