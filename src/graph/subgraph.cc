#include "graph/subgraph.h"

#include <stdexcept>

#include "graph/convert.h"

namespace gnnone {

InducedSubgraph extract_induced(const Coo& graph,
                                std::span<const vid_t> vertices) {
  InducedSubgraph sub;
  std::vector<vid_t> local(std::size_t(graph.num_rows), vid_t(-1));
  sub.vertices.reserve(vertices.size());
  for (vid_t g : vertices) {
    if (g < 0 || g >= graph.num_rows) {
      throw std::invalid_argument("extract_induced: vertex id out of range");
    }
    if (local[std::size_t(g)] < 0) {
      local[std::size_t(g)] = vid_t(sub.vertices.size());
      sub.vertices.push_back(g);
    }
  }

  // The full graph is row-sorted, but local ids permute rows arbitrarily, so
  // collect and rebuild through the standard (sorting, deduplicating)
  // builder rather than assuming order survives relabeling.
  EdgeList edges;
  for (std::size_t e = 0; e < std::size_t(graph.nnz()); ++e) {
    const vid_t lr = local[std::size_t(graph.row[e])];
    const vid_t lc = local[std::size_t(graph.col[e])];
    if (lr >= 0 && lc >= 0) edges.emplace_back(lr, lc);
  }
  const auto n = vid_t(sub.vertices.size());
  sub.coo = coo_from_edges(n, n, std::move(edges));
  return sub;
}

Csr induced_csr(const Coo& graph, std::span<const vid_t> vertices,
                std::vector<vid_t>* vertices_out) {
  InducedSubgraph sub = extract_induced(graph, vertices);
  if (vertices_out != nullptr) *vertices_out = std::move(sub.vertices);
  return coo_to_csr(sub.coo);
}

}  // namespace gnnone
