// Neighbor-group custom format (GNNAdvisor / Huang et al. style).
//
// A preprocessing step splits every CSR row into groups of at most
// `group_size` (32 in the papers) consecutive NZEs and emits per-group
// metadata (row id, start offset, length). Warps are then assigned one group
// each, which balances workload *approximately*: the last group of each row
// is fragmented (len < 32), so imbalance and idle lanes remain — the
// pathology the paper exploits in §5.2/§6.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

struct NeighborGroups {
  int group_size = 32;
  std::vector<vid_t> group_row;    // row id of each group
  std::vector<eid_t> group_start;  // first NZE offset (into csr.col)
  std::vector<vid_t> group_len;    // 1..group_size

  std::size_t num_groups() const { return group_row.size(); }

  /// Metadata footprint on top of the CSR it annotates.
  std::size_t device_bytes() const {
    return group_row.size() * sizeof(vid_t) +
           group_start.size() * sizeof(eid_t) +
           group_len.size() * sizeof(vid_t);
  }
};

/// Builds neighbor groups for a CSR (the papers' preprocessing step).
NeighborGroups build_neighbor_groups(const Csr& csr, int group_size = 32);

}  // namespace gnnone
