// Induced-subgraph extraction with compact relabeling.
//
// Given a vertex set of the full graph, keeps every NZE whose endpoints are
// both in the set and relabels them with compact local ids. Local ids follow
// the order vertices first appear in the input list (duplicates keep their
// first slot), so callers control which rows come first — the serving path
// puts its seed vertices at local ids 0..num_seeds.
#pragma once

#include <span>
#include <vector>

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

struct InducedSubgraph {
  /// local id -> global id, in first-appearance order of the input list.
  std::vector<vid_t> vertices;
  /// Induced block in local ids, CSR-arranged. Square:
  /// num_rows == num_cols == vertices.size().
  Coo coo;
};

/// Extracts the subgraph induced by `vertices` (global ids; duplicates are
/// collapsed). O(|V_g| + nnz_g). Throws std::invalid_argument on an
/// out-of-range vertex id.
InducedSubgraph extract_induced(const Coo& graph,
                                std::span<const vid_t> vertices);

/// Same extraction but returning the block as CSR (the format the serving
/// path's per-batch kernels consume when a CSR family wins dispatch).
Csr induced_csr(const Coo& graph, std::span<const vid_t> vertices,
                std::vector<vid_t>* vertices_out = nullptr);

}  // namespace gnnone
