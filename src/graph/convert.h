// Builders and conversions between sparse formats.
#pragma once

#include <utility>
#include <vector>

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

/// An unordered (src, dst) edge list, possibly with duplicates/self-loops.
using EdgeList = std::vector<std::pair<vid_t, vid_t>>;

/// Builds a CSR-arranged COO from an edge list: sorts by (row, col) and
/// removes duplicate entries. Self-loops are kept (GNN models often add
/// them explicitly).
Coo coo_from_edges(vid_t num_rows, vid_t num_cols, EdgeList edges);

/// Symmetrizes an edge list (adds the reverse of every edge), mirroring the
/// paper's treatment of datasets as undirected graphs with doubled edges.
EdgeList symmetrize(const EdgeList& edges);

Csr coo_to_csr(const Coo& coo);
Coo csr_to_coo(const Csr& csr);

/// Transposes a COO (also returns the permutation mapping transposed NZE
/// position -> original NZE position, needed to carry edge features along).
std::pair<Coo, std::vector<eid_t>> coo_transpose(const Coo& coo);

/// Row lengths (vertex degrees) of a COO.
std::vector<vid_t> row_lengths(const Coo& coo);

/// Validates CSR invariants (monotone offsets, in-range columns); throws on
/// violation. Used by tests and debug assertions.
void validate(const Csr& csr);
void validate(const Coo& coo);

}  // namespace gnnone
