#include "graph/neighbor_group.h"

#include <stdexcept>

namespace gnnone {

NeighborGroups build_neighbor_groups(const Csr& csr, int group_size) {
  if (group_size <= 0) throw std::invalid_argument("group_size must be > 0");
  NeighborGroups ng;
  ng.group_size = group_size;
  for (vid_t r = 0; r < csr.num_rows; ++r) {
    for (eid_t e = csr.row_begin(r); e < csr.row_end(r); e += group_size) {
      const eid_t end = std::min(e + group_size, csr.row_end(r));
      ng.group_row.push_back(r);
      ng.group_start.push_back(e);
      ng.group_len.push_back(vid_t(end - e));
    }
  }
  return ng;
}

}  // namespace gnnone
