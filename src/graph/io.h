// Sparse-matrix / graph I/O: MatrixMarket (.mtx) and plain edge lists.
//
// The paper's datasets come from SNAP and the UF Sparse Matrix Collection,
// both of which distribute MatrixMarket / edge-list files; these routines
// let users run the library on the real graphs when they have them.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/convert.h"
#include "graph/coo.h"

namespace gnnone {

struct MtxOptions {
  bool symmetrize = true;   // treat as undirected: double the edges, like
                            // the paper's preprocessing (Table 1)
  bool drop_self_loops = false;
};

/// Reads a MatrixMarket coordinate-format matrix into a CSR-arranged COO.
/// Supports `pattern`/`real`/`integer` fields and the `symmetric` qualifier
/// (values are not retained; edge features are separate tensors, Fig. 1).
/// Throws std::runtime_error on malformed input.
Coo read_mtx(std::istream& in, const MtxOptions& opts = {});
Coo read_mtx_file(const std::string& path, const MtxOptions& opts = {});

/// Writes the topology in MatrixMarket pattern format.
void write_mtx(std::ostream& out, const Coo& coo);
void write_mtx_file(const std::string& path, const Coo& coo);

/// Reads a whitespace-separated "src dst" edge list ('#'/'%' comments),
/// SNAP style. Vertices are the 0..max_id range.
Coo read_edge_list(std::istream& in, const MtxOptions& opts = {});
Coo read_edge_list_file(const std::string& path, const MtxOptions& opts = {});

}  // namespace gnnone
