#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace gnnone {

namespace {

EdgeList finalize(EdgeList edges, const MtxOptions& opts) {
  if (opts.drop_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const auto& e) { return e.first == e.second; }),
                edges.end());
  }
  if (opts.symmetrize) return symmetrize(edges);
  return edges;
}

std::runtime_error parse_error(const std::string& what, std::size_t line) {
  return std::runtime_error("mtx parse error at line " + std::to_string(line) +
                            ": " + what);
}

}  // namespace

Coo read_mtx(std::istream& in, const MtxOptions& opts) {
  std::string line;
  std::size_t lineno = 0;
  bool symmetric = false;
  // Header.
  if (!std::getline(in, line)) throw parse_error("empty input", 0);
  ++lineno;
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    throw parse_error("missing %%MatrixMarket banner", lineno);
  }
  {
    std::istringstream hs(line);
    std::string banner, object, format, field, qualifier;
    hs >> banner >> object >> format >> field >> qualifier;
    if (object != "matrix" || format != "coordinate") {
      throw parse_error("only 'matrix coordinate' is supported", lineno);
    }
    if (field != "pattern" && field != "real" && field != "integer") {
      throw parse_error("unsupported field '" + field + "'", lineno);
    }
    symmetric = qualifier == "symmetric";
  }
  // Comments, then the size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line) {
    throw parse_error("unexpected end of file before the size line", lineno);
  }
  std::int64_t rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> rows >> cols >> nnz) || rows <= 0 || cols <= 0 || nnz < 0) {
      throw parse_error("bad size line", lineno);
    }
    if (rows > std::numeric_limits<vid_t>::max() ||
        cols > std::numeric_limits<vid_t>::max()) {
      throw parse_error("matrix dimensions overflow 32-bit vertex ids",
                        lineno);
    }
  }
  EdgeList edges;
  edges.reserve(std::size_t(nnz));
  for (std::int64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) {
      throw parse_error("unexpected end of file", lineno);
    }
    ++lineno;
    std::istringstream ss(line);
    std::int64_t r = 0, c = 0;
    if (!(ss >> r >> c)) throw parse_error("bad entry", lineno);
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw parse_error("entry out of bounds", lineno);
    }
    edges.emplace_back(vid_t(r - 1), vid_t(c - 1));  // mtx is 1-based
    if (symmetric && r != c) edges.emplace_back(vid_t(c - 1), vid_t(r - 1));
  }
  const vid_t n = vid_t(std::max(rows, cols));
  return coo_from_edges(n, n, finalize(std::move(edges), opts));
}

Coo read_mtx_file(const std::string& path, const MtxOptions& opts) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_mtx(f, opts);
}

void write_mtx(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << coo.num_rows << ' ' << coo.num_cols << ' ' << coo.nnz() << '\n';
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    out << coo.row[e] + 1 << ' ' << coo.col[e] + 1 << '\n';
  }
}

void write_mtx_file(const std::string& path, const Coo& coo) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  write_mtx(f, coo);
}

Coo read_edge_list(std::istream& in, const MtxOptions& opts) {
  EdgeList edges;
  std::string line;
  vid_t max_id = 0;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::int64_t s = 0, d = 0;
    if (!(ss >> s >> d)) {
      throw std::runtime_error("edge-list parse error at line " +
                               std::to_string(lineno));
    }
    if (s < 0 || d < 0) {
      throw std::runtime_error("negative vertex id at line " +
                               std::to_string(lineno));
    }
    // max() itself is rejected too: vertex count max_id + 1 must still fit.
    if (s >= std::numeric_limits<vid_t>::max() ||
        d >= std::numeric_limits<vid_t>::max()) {
      throw std::runtime_error("vertex id overflows 32-bit ids at line " +
                               std::to_string(lineno));
    }
    edges.emplace_back(vid_t(s), vid_t(d));
    max_id = std::max({max_id, vid_t(s), vid_t(d)});
  }
  const vid_t n = edges.empty() ? 0 : max_id + 1;
  return coo_from_edges(n, n, finalize(std::move(edges), opts));
}

Coo read_edge_list_file(const std::string& path, const MtxOptions& opts) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_edge_list(f, opts);
}

}  // namespace gnnone
