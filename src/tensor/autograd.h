// Reverse-mode autograd over Tensor.
//
// Variables form a DAG; backward() runs a reverse topological sweep. Dense
// ops (ops.h) and the GNN layers' custom sparse nodes (gnn/layers.h) both
// build on this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gnnone {

struct Variable;
using VarPtr = std::shared_ptr<Variable>;

struct Variable {
  Tensor value;
  Tensor grad;  // same shape as value, lazily zero-initialized
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Propagates this->grad into parents' grads.
  std::function<void()> backward_fn;
  std::string name;  // for debugging / parameter registration

  explicit Variable(Tensor v, bool req = false)
      : value(std::move(v)), requires_grad(req) {
    grad = Tensor(value.rows(), value.cols());
  }
};

/// Creates a leaf variable.
VarPtr make_var(Tensor v, bool requires_grad = false,
                const std::string& name = "");

/// Creates an interior node whose gradient flows to `parents`.
VarPtr make_op(Tensor v, std::vector<VarPtr> parents,
               std::function<void()> backward_fn);

/// Seeds `root->grad` with ones (or keeps a preset seed when `seeded`) and
/// back-propagates through the DAG.
void backward(const VarPtr& root, bool seeded = false);

}  // namespace gnnone
