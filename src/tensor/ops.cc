#include "tensor/ops.h"

#include <cassert>
#include <cmath>

#include "gen/rng.h"
#include "tensor/dense_cost.h"

namespace gnnone {

VarPtr vmatmul(const OpContext& ctx, const VarPtr& a, const VarPtr& b) {
  assert(a->value.cols() == b->value.rows());
  ctx.charge("dense", matmul_cycles(*ctx.dev, a->value.rows(),
                                    a->value.cols(), b->value.cols()));
  Tensor out = matmul(a->value, b->value);
  auto node = make_op(std::move(out), {a, b}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  Variable* bv = b.get();
  node->backward_fn = [ctx, n, av, bv]() {
    if (av->requires_grad) {
      ctx.charge("dense", matmul_cycles(*ctx.dev, n->grad.rows(),
                                        n->grad.cols(), bv->value.rows()));
      const Tensor da = matmul_bt(n->grad, bv->value);
      for (std::size_t i = 0; i < std::size_t(da.numel()); ++i) {
        av->grad[i] += da[i];
      }
    }
    if (bv->requires_grad) {
      ctx.charge("dense", matmul_cycles(*ctx.dev, av->value.cols(),
                                        av->value.rows(), n->grad.cols()));
      const Tensor db = matmul_at(av->value, n->grad);
      for (std::size_t i = 0; i < std::size_t(db.numel()); ++i) {
        bv->grad[i] += db[i];
      }
    }
  };
  return node;
}

VarPtr vbias(const OpContext& ctx, const VarPtr& a, const VarPtr& bias) {
  assert(bias->value.rows() == 1 && bias->value.cols() == a->value.cols());
  ctx.charge("dense", elementwise_cycles(*ctx.dev, a->value.numel()));
  Tensor out = a->value;
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    for (std::int64_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) += bias->value.at(0, c);
    }
  }
  auto node = make_op(std::move(out), {a, bias}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  Variable* bv = bias.get();
  node->backward_fn = [ctx, n, av, bv]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, n->grad.numel()));
    if (av->requires_grad) {
      for (std::size_t i = 0; i < std::size_t(n->grad.numel()); ++i) {
        av->grad[i] += n->grad[i];
      }
    }
    if (bv->requires_grad) {
      for (std::int64_t r = 0; r < n->grad.rows(); ++r) {
        for (std::int64_t c = 0; c < n->grad.cols(); ++c) {
          bv->grad.at(0, c) += n->grad.at(r, c);
        }
      }
    }
  };
  return node;
}

VarPtr vadd(const OpContext& ctx, const VarPtr& a, const VarPtr& b) {
  assert(a->value.same_shape(b->value));
  ctx.charge("dense", elementwise_cycles(*ctx.dev, a->value.numel()));
  Tensor out = a->value;
  for (std::size_t i = 0; i < std::size_t(out.numel()); ++i) {
    out[i] += b->value[i];
  }
  auto node = make_op(std::move(out), {a, b}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  Variable* bv = b.get();
  node->backward_fn = [ctx, n, av, bv]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, n->grad.numel()));
    for (std::size_t i = 0; i < std::size_t(n->grad.numel()); ++i) {
      if (av->requires_grad) av->grad[i] += n->grad[i];
      if (bv->requires_grad) bv->grad[i] += n->grad[i];
    }
  };
  return node;
}

VarPtr vscale(const OpContext& ctx, const VarPtr& a, float s) {
  ctx.charge("dense", elementwise_cycles(*ctx.dev, a->value.numel()));
  Tensor out = a->value;
  for (std::size_t i = 0; i < std::size_t(out.numel()); ++i) out[i] *= s;
  auto node = make_op(std::move(out), {a}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  node->backward_fn = [ctx, n, av, s]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, n->grad.numel()));
    if (!av->requires_grad) return;
    for (std::size_t i = 0; i < std::size_t(n->grad.numel()); ++i) {
      av->grad[i] += s * n->grad[i];
    }
  };
  return node;
}

namespace {

VarPtr unary_activation(const OpContext& ctx, const VarPtr& a, float neg_slope) {
  ctx.charge("dense", elementwise_cycles(*ctx.dev, a->value.numel()));
  Tensor out = a->value;
  for (std::size_t i = 0; i < std::size_t(out.numel()); ++i) {
    if (out[i] < 0.0f) out[i] *= neg_slope;
  }
  auto node = make_op(std::move(out), {a}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  node->backward_fn = [ctx, n, av, neg_slope]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, n->grad.numel()));
    if (!av->requires_grad) return;
    for (std::size_t i = 0; i < std::size_t(n->grad.numel()); ++i) {
      av->grad[i] += n->grad[i] * (av->value[i] >= 0.0f ? 1.0f : neg_slope);
    }
  };
  return node;
}

}  // namespace

VarPtr vrelu(const OpContext& ctx, const VarPtr& a) {
  return unary_activation(ctx, a, 0.0f);
}

VarPtr vleaky_relu(const OpContext& ctx, const VarPtr& a, float slope) {
  return unary_activation(ctx, a, slope);
}

VarPtr vdropout(const OpContext& ctx, const VarPtr& a, float p,
                std::uint64_t seed) {
  if (!ctx.training || p <= 0.0f) return a;
  ctx.charge("dense", elementwise_cycles(*ctx.dev, a->value.numel()));
  auto mask = std::make_shared<std::vector<float>>(std::size_t(a->value.numel()));
  Rng rng(seed);
  const float scale = 1.0f / (1.0f - p);
  Tensor out = a->value;
  for (std::size_t i = 0; i < mask->size(); ++i) {
    (*mask)[i] = rng.uniform_real() < p ? 0.0f : scale;
    out[i] *= (*mask)[i];
  }
  auto node = make_op(std::move(out), {a}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  node->backward_fn = [ctx, n, av, mask]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, n->grad.numel()));
    if (!av->requires_grad) return;
    for (std::size_t i = 0; i < mask->size(); ++i) {
      av->grad[i] += n->grad[i] * (*mask)[i];
    }
  };
  return node;
}

VarPtr vlog_softmax(const OpContext& ctx, const VarPtr& a) {
  ctx.charge("dense", elementwise_cycles(*ctx.dev, 3 * a->value.numel()));
  Tensor out = a->value;
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    float mx = out.at(r, 0);
    for (std::int64_t c = 1; c < out.cols(); ++c) {
      mx = std::max(mx, out.at(r, c));
    }
    float sum = 0.0f;
    for (std::int64_t c = 0; c < out.cols(); ++c) {
      sum += std::exp(out.at(r, c) - mx);
    }
    const float lse = mx + std::log(sum);
    for (std::int64_t c = 0; c < out.cols(); ++c) out.at(r, c) -= lse;
  }
  auto node = make_op(std::move(out), {a}, nullptr);
  Variable* n = node.get();
  Variable* av = a.get();
  node->backward_fn = [ctx, n, av]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, 3 * n->grad.numel()));
    if (!av->requires_grad) return;
    for (std::int64_t r = 0; r < n->grad.rows(); ++r) {
      float gsum = 0.0f;
      for (std::int64_t c = 0; c < n->grad.cols(); ++c) {
        gsum += n->grad.at(r, c);
      }
      for (std::int64_t c = 0; c < n->grad.cols(); ++c) {
        av->grad.at(r, c) +=
            n->grad.at(r, c) - std::exp(n->value.at(r, c)) * gsum;
      }
    }
  };
  return node;
}

VarPtr vcolnorm(const OpContext& ctx, const VarPtr& a, float eps) {
  ctx.charge("dense", elementwise_cycles(*ctx.dev, 4 * a->value.numel()));
  const std::int64_t n = a->value.rows(), m = a->value.cols();
  auto mu = std::make_shared<std::vector<float>>(std::size_t(m), 0.0f);
  auto inv_sigma = std::make_shared<std::vector<float>>(std::size_t(m), 0.0f);
  for (std::int64_t j = 0; j < m; ++j) {
    double s = 0;
    for (std::int64_t i = 0; i < n; ++i) s += a->value.at(i, j);
    (*mu)[std::size_t(j)] = float(s / double(n));
    double v = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double d = a->value.at(i, j) - (*mu)[std::size_t(j)];
      v += d * d;
    }
    (*inv_sigma)[std::size_t(j)] = 1.0f / std::sqrt(float(v / double(n)) + eps);
  }
  Tensor out(n, m);
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < n; ++i) {
      out.at(i, j) =
          (a->value.at(i, j) - (*mu)[std::size_t(j)]) * (*inv_sigma)[std::size_t(j)];
    }
  }
  auto node = make_op(std::move(out), {a}, nullptr);
  Variable* nn = node.get();
  Variable* av = a.get();
  node->backward_fn = [ctx, nn, av, inv_sigma]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, 4 * nn->grad.numel()));
    if (!av->requires_grad) return;
    const std::int64_t n = nn->grad.rows(), m = nn->grad.cols();
    for (std::int64_t j = 0; j < m; ++j) {
      double g_mean = 0, gy_mean = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        g_mean += nn->grad.at(i, j);
        gy_mean += double(nn->grad.at(i, j)) * double(nn->value.at(i, j));
      }
      g_mean /= double(n);
      gy_mean /= double(n);
      for (std::int64_t i = 0; i < n; ++i) {
        av->grad.at(i, j) +=
            (*inv_sigma)[std::size_t(j)] *
            float(double(nn->grad.at(i, j)) - g_mean -
                  double(nn->value.at(i, j)) * gy_mean);
      }
    }
  };
  return node;
}

VarPtr vnll_loss(const OpContext& ctx, const VarPtr& logp,
                 const std::vector<int>& labels) {
  assert(labels.size() == std::size_t(logp->value.rows()));
  ctx.charge("dense", elementwise_cycles(*ctx.dev, logp->value.rows()));
  std::int64_t n_labeled = 0;
  double loss = 0.0;
  for (std::int64_t r = 0; r < logp->value.rows(); ++r) {
    const int y = labels[std::size_t(r)];
    if (y < 0) continue;
    loss -= double(logp->value.at(r, y));
    ++n_labeled;
  }
  if (n_labeled == 0) n_labeled = 1;
  Tensor out(1, 1);
  out.at(0, 0) = float(loss / double(n_labeled));
  auto node = make_op(std::move(out), {logp}, nullptr);
  Variable* n = node.get();
  Variable* lv = logp.get();
  const float inv = 1.0f / float(n_labeled);
  node->backward_fn = [ctx, n, lv, labels, inv]() {
    ctx.charge("dense", elementwise_cycles(*ctx.dev, lv->grad.numel()));
    if (!lv->requires_grad) return;
    const float g = n->grad.at(0, 0);
    for (std::int64_t r = 0; r < lv->grad.rows(); ++r) {
      const int y = labels[std::size_t(r)];
      if (y < 0) continue;
      lv->grad.at(r, y) -= g * inv;
    }
  };
  return node;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  assert(labels.size() == std::size_t(logits.rows()));
  std::int64_t correct = 0, total = 0;
  for (std::int64_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[std::size_t(r)];
    if (y < 0) continue;
    std::int64_t arg = 0;
    for (std::int64_t c = 1; c < logits.cols(); ++c) {
      if (logits.at(r, c) > logits.at(r, arg)) arg = c;
    }
    ++total;
    if (arg == y) ++correct;
  }
  return total == 0 ? 0.0 : double(correct) / double(total);
}

}  // namespace gnnone
