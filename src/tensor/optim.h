// Optimizers over autograd parameters.
#pragma once

#include <vector>

#include "tensor/autograd.h"

namespace gnnone {

class Adam {
 public:
  explicit Adam(std::vector<VarPtr> params, float lr = 0.01f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);

  /// Applies one update from the accumulated gradients.
  void step();

  /// Clears all parameter gradients.
  void zero_grad();

  const std::vector<VarPtr>& params() const { return params_; }

 private:
  std::vector<VarPtr> params_;
  std::vector<Tensor> m_, v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int t_ = 0;
};

class Sgd {
 public:
  explicit Sgd(std::vector<VarPtr> params, float lr = 0.1f)
      : params_(std::move(params)), lr_(lr) {}
  void step();
  void zero_grad();

 private:
  std::vector<VarPtr> params_;
  float lr_;
};

}  // namespace gnnone
