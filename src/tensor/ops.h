// Autograd dense ops. Every op charges its forward cost to the context's
// ledger immediately and its backward cost when the gradient flows.
#pragma once

#include <cstdint>

#include "gpusim/device.h"
#include "tensor/autograd.h"
#include "tensor/ledger.h"

namespace gnnone {

/// Execution context for ops: the simulated device for cost accounting, a
/// ledger to charge, and the training flag (dropout).
struct OpContext {
  const gpusim::DeviceSpec* dev = nullptr;
  CycleLedger* ledger = nullptr;
  bool training = true;

  void charge(const char* tag, std::uint64_t cycles) const {
    if (ledger != nullptr) ledger->add(tag, cycles);
  }
};

/// c = a * b (n x k by k x m).
VarPtr vmatmul(const OpContext& ctx, const VarPtr& a, const VarPtr& b);

/// Adds a 1 x m bias row-wise.
VarPtr vbias(const OpContext& ctx, const VarPtr& a, const VarPtr& bias);

/// Elementwise sum of same-shape tensors.
VarPtr vadd(const OpContext& ctx, const VarPtr& a, const VarPtr& b);

/// a scaled by a compile-time-constant scalar (e.g. GIN's 1 + eps).
VarPtr vscale(const OpContext& ctx, const VarPtr& a, float s);

VarPtr vrelu(const OpContext& ctx, const VarPtr& a);
VarPtr vleaky_relu(const OpContext& ctx, const VarPtr& a, float slope = 0.2f);

/// Inverted dropout; identity when !ctx.training. Deterministic per seed.
VarPtr vdropout(const OpContext& ctx, const VarPtr& a, float p,
                std::uint64_t seed);

/// Row-wise log-softmax.
VarPtr vlog_softmax(const OpContext& ctx, const VarPtr& a);

/// Per-column standardization (zero mean, unit variance) — the
/// BatchNorm-without-affine step GIN training needs to keep its unnormalized
/// sum aggregation stable across layers.
VarPtr vcolnorm(const OpContext& ctx, const VarPtr& a, float eps = 1e-5f);

/// Mean negative log-likelihood over rows with label >= 0 (masked rows are
/// skipped, mirroring semi-supervised GNN training splits).
VarPtr vnll_loss(const OpContext& ctx, const VarPtr& logp,
                 const std::vector<int>& labels);

/// argmax accuracy over rows with label >= 0.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace gnnone
