// CycleLedger: accumulates the modeled GPU time of a training run.
//
// Sparse kernels contribute their simulated cycles (gpusim); dense ops
// contribute a roofline estimate (dense_cost.h). Both backends in the
// training comparison share the dense model — matching the paper's setup
// where GNNOne and DGL both delegate dense ops to PyTorch (§5.3.2) — so
// end-to-end speedups are driven by the sparse kernels and launch counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnnone {

class CycleLedger {
 public:
  void add(const std::string& tag, std::uint64_t cycles) {
    total_ += cycles;
    for (auto& [t, c] : by_tag_) {
      if (t == tag) {
        c += cycles;
        return;
      }
    }
    by_tag_.emplace_back(tag, cycles);
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t by_tag(const std::string& tag) const {
    for (const auto& [t, c] : by_tag_) {
      if (t == tag) return c;
    }
    return 0;
  }

  const std::vector<std::pair<std::string, std::uint64_t>>& entries() const {
    return by_tag_;
  }

  void reset() {
    total_ = 0;
    by_tag_.clear();
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> by_tag_;
};

}  // namespace gnnone
