// CycleLedger / MemoryLedger: tagged accumulators for the modeled cost of a
// run.
//
// CycleLedger holds modeled GPU time: sparse kernels contribute their
// simulated cycles (gpusim); dense ops contribute a roofline estimate
// (dense_cost.h). Both backends in the training comparison share the dense
// model — matching the paper's setup where GNNOne and DGL both delegate
// dense ops to PyTorch (§5.3.2) — so end-to-end speedups are driven by the
// sparse kernels and launch counts.
//
// MemoryLedger holds bytes moved, tagged the same way (the serving path uses
// it to attribute feature-cache hit vs miss traffic).
//
// Both keep entries in first-insertion order — reports and tests iterate
// entries() and rely on that order — while lookups go through an index map
// so that add()/by_tag() stay O(1) amortized per call. The previous linear
// scan made every kernel launch O(tags) and a training run
// O(launches x tags).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gnnone {

namespace detail {

template <typename Derived>
class TaggedLedger {
 public:
  void add(const std::string& tag, std::uint64_t amount) {
    total_ += amount;
    const auto [it, inserted] = index_.try_emplace(tag, entries_.size());
    if (inserted) {
      entries_.emplace_back(tag, amount);
    } else {
      entries_[it->second].second += amount;
    }
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t by_tag(const std::string& tag) const {
    const auto it = index_.find(tag);
    return it != index_.end() ? entries_[it->second].second : 0;
  }

  /// All tags in first-insertion order.
  const std::vector<std::pair<std::string, std::uint64_t>>& entries() const {
    return entries_;
  }

  void reset() {
    total_ = 0;
    entries_.clear();
    index_.clear();
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
  std::unordered_map<std::string, std::size_t> index_;  // tag -> entries_ slot
};

}  // namespace detail

/// Modeled cycles by tag ("spmm", "sddmm", "dense", ...).
class CycleLedger : public detail::TaggedLedger<CycleLedger> {};

/// Bytes moved by tag ("feature_cache_hit", "feature_cache_miss", ...).
class MemoryLedger : public detail::TaggedLedger<MemoryLedger> {};

}  // namespace gnnone
