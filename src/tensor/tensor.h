// Minimal dense 2D tensor used by the GNN training stack. Row-major float;
// a (n x 1) tensor doubles as a vector and an (|E| x k) tensor holds
// edge-level features (paper Fig. 1 terminology).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace gnnone {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::int64_t rows, std::int64_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(std::size_t(rows) * std::size_t(cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }

  static Tensor from(std::int64_t rows, std::int64_t cols,
                     std::vector<float> data) {
    assert(data.size() == std::size_t(rows) * std::size_t(cols));
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = std::move(data);
    return t;
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t numel() const { return rows_ * cols_; }
  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  float& at(std::int64_t r, std::int64_t c) {
    return data_[std::size_t(r * cols_ + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[std::size_t(r * cols_ + c)];
  }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  std::size_t bytes() const { return data_.size() * sizeof(float); }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

// --- raw (non-autograd) kernels used by ops and tests ---------------------

/// c = a * b  (a: n x k, b: k x m).
Tensor matmul(const Tensor& a, const Tensor& b);
/// c = a * b^T (a: n x k, b: m x k).
Tensor matmul_bt(const Tensor& a, const Tensor& b);
/// c = a^T * b (a: k x n, b: k x m).
Tensor matmul_at(const Tensor& a, const Tensor& b);

}  // namespace gnnone
