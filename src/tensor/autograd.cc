#include "tensor/autograd.h"

#include <algorithm>
#include <unordered_set>

namespace gnnone {

VarPtr make_var(Tensor v, bool requires_grad, const std::string& name) {
  auto var = std::make_shared<Variable>(std::move(v), requires_grad);
  var->name = name;
  return var;
}

VarPtr make_op(Tensor v, std::vector<VarPtr> parents,
               std::function<void()> backward_fn) {
  bool req = false;
  for (const auto& p : parents) req = req || p->requires_grad;
  auto var = std::make_shared<Variable>(std::move(v), req);
  var->parents = std::move(parents);
  var->backward_fn = std::move(backward_fn);
  return var;
}

namespace {

void topo_sort(const VarPtr& root, std::vector<VarPtr>& order,
               std::unordered_set<Variable*>& seen) {
  if (!seen.insert(root.get()).second) return;
  for (const auto& p : root->parents) topo_sort(p, order, seen);
  order.push_back(root);
}

}  // namespace

void backward(const VarPtr& root, bool seeded) {
  if (!seeded) {
    for (std::size_t i = 0; i < std::size_t(root->grad.numel()); ++i) {
      root->grad[i] = 1.0f;
    }
  }
  std::vector<VarPtr> order;
  std::unordered_set<Variable*> seen;
  topo_sort(root, order, seen);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn && (*it)->requires_grad) (*it)->backward_fn();
  }
}

}  // namespace gnnone
