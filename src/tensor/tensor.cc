#include "tensor/tensor.h"

namespace gnnone {

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols());
  const std::int64_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) continue;
      for (std::int64_t j = 0; j < m; ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows());
  const std::int64_t n = a.rows(), k = a.cols(), m = b.rows();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += a.at(i, p) * b.at(j, p);
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols());
  const std::int64_t n = a.cols(), k = a.rows(), m = b.cols();
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float av = a.at(p, i);
      if (av == 0.0f) continue;
      for (std::int64_t j = 0; j < m; ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

}  // namespace gnnone
