#include "tensor/optim.h"

#include <cmath>

namespace gnnone {

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, float(t_));
  const float bc2 = 1.0f - std::pow(beta2_, float(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = *params_[i];
    for (std::size_t j = 0; j < std::size_t(p.value.numel()); ++j) {
      float g = p.grad[j] + weight_decay_ * p.value[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mh = m_[i][j] / bc1;
      const float vh = v_[i][j] / bc2;
      p.value[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (const auto& p : params_) p->grad.zero();
}

void Sgd::step() {
  for (const auto& p : params_) {
    for (std::size_t j = 0; j < std::size_t(p->value.numel()); ++j) {
      p->value[j] -= lr_ * p->grad[j];
    }
  }
}

void Sgd::zero_grad() {
  for (const auto& p : params_) p->grad.zero();
}

}  // namespace gnnone
