// Roofline cost model for dense ops (linear layers, activations, softmax…).
//
// Both training backends use PyTorch for these in the paper, so a shared
// first-order model is sufficient: time = launch overhead + max(compute
// bound, memory bound).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "gpusim/device.h"

namespace gnnone {

/// FMA throughput of the whole device, FLOPs per cycle (A100 FP32:
/// 64 FMA/SM/cycle * 2 * 108 SMs ~= 13800; rounded).
inline constexpr double kDeviceFlopsPerCycle = 13824.0;

/// Modeled cycles for a dense op touching `bytes` of memory and doing
/// `flops` floating point operations.
inline std::uint64_t dense_op_cycles(const gpusim::DeviceSpec& dev,
                                     double flops, double bytes,
                                     std::uint64_t launch_overhead = 2000) {
  const double compute = flops / kDeviceFlopsPerCycle;
  const double memory = bytes / dev.dram_bytes_per_cycle;
  // Round the bound up: truncation undercounted every op by up to a cycle
  // and priced any op smaller than one cycle at exactly launch_overhead.
  return launch_overhead + std::uint64_t(std::ceil(std::max(compute, memory)));
}

/// Convenience for an n x k by k x m matmul.
inline std::uint64_t matmul_cycles(const gpusim::DeviceSpec& dev,
                                   std::int64_t n, std::int64_t k,
                                   std::int64_t m) {
  const double flops = 2.0 * double(n) * double(k) * double(m);
  const double bytes = 4.0 * (double(n) * k + double(k) * m + double(n) * m);
  return dense_op_cycles(dev, flops, bytes);
}

/// Elementwise op over `numel` floats (relu, dropout, add, ...).
inline std::uint64_t elementwise_cycles(const gpusim::DeviceSpec& dev,
                                        std::int64_t numel) {
  return dense_op_cycles(dev, double(numel), 8.0 * double(numel));
}

}  // namespace gnnone
