#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.h"

namespace gnnone::serve {

namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
}  // namespace

void SchedulerOptions::Validate() const {
  if (!(estimator_ewma > 0.0) || estimator_ewma > 1.0) {
    throw std::invalid_argument(
        "SchedulerOptions: estimator_ewma must be in (0, 1]");
  }
}

// --- BatchCostEstimator -----------------------------------------------------

BatchCostEstimator::BatchCostEstimator(int num_tenants, double ewma)
    : per_tenant_(std::size_t(std::max(num_tenants, 0))), ewma_(ewma) {}

void BatchCostEstimator::observe(int tenant, int batch_requests,
                                 std::uint64_t service_cycles) {
  if (tenant < 0 || std::size_t(tenant) >= per_tenant_.size()) return;
  if (batch_requests < 1) return;
  Fit& f = per_tenant_[std::size_t(tenant)];
  const double n = double(batch_requests);
  const double c = double(service_cycles);
  if (f.n == 0) {
    f.s_n = n;
    f.s_c = c;
    f.s_nn = n * n;
    f.s_nc = n * c;
  } else {
    const double a = ewma_;
    f.s_n = (1.0 - a) * f.s_n + a * n;
    f.s_c = (1.0 - a) * f.s_c + a * c;
    f.s_nn = (1.0 - a) * f.s_nn + a * n * n;
    f.s_nc = (1.0 - a) * f.s_nc + a * n * c;
  }
  f.n += 1;
}

std::uint64_t BatchCostEstimator::estimate(int tenant,
                                           int batch_requests) const {
  if (tenant < 0 || std::size_t(tenant) >= per_tenant_.size()) return 0;
  const Fit& f = per_tenant_[std::size_t(tenant)];
  if (f.n == 0) return 0;
  // Closed-form least squares on the EWMA-weighted stats. With effectively
  // one batch size observed the variance collapses; fall back to the pure
  // proportional model cycles ~= (s_c / s_n) * size.
  const double var = f.s_nn - f.s_n * f.s_n;
  double per_request, fixed;
  if (var > 1e-9 * std::max(1.0, f.s_nn)) {
    per_request = (f.s_nc - f.s_n * f.s_c) / var;
    fixed = f.s_c - per_request * f.s_n;
  } else {
    per_request = f.s_n > 0.0 ? f.s_c / f.s_n : 0.0;
    fixed = 0.0;
  }
  // Costs are nonnegative and nondecreasing in batch size by construction of
  // the serving cost model; clamp the fit to that shape so a noisy pair of
  // observations cannot produce a negative "estimate" that fools the slack
  // policy into unbounded waiting.
  per_request = std::max(per_request, 0.0);
  fixed = std::max(fixed, 0.0);
  const double est = fixed + per_request * double(batch_requests);
  if (est <= 0.0) return 0;
  if (est >= 9.0e18) return std::uint64_t(9.0e18);
  return std::uint64_t(std::llround(est));
}

// --- TenantScheduler --------------------------------------------------------

TenantScheduler::TenantScheduler(const std::vector<TenantSpec>& tenants,
                                 const SchedulerOptions& opts, int batch_size)
    : tenants_(tenants),
      opts_(opts),
      batch_size_(batch_size),
      queues_(tenants.size()),
      heads_(tenants.size(), 0),
      admit_pos_(tenants.size(), 0),
      depth_(tenants.size(), 0),
      estimator_(int(tenants.size()), opts.estimator_ewma) {
  opts_.Validate();
  if (tenants_.empty()) {
    throw std::invalid_argument("TenantScheduler: tenant list is empty");
  }
  if (batch_size_ < 1) {
    throw std::invalid_argument("TenantScheduler: batch_size must be >= 1");
  }
}

void TenantScheduler::enqueue(std::size_t index, int tenant,
                              std::uint64_t arrival) {
  if (tenant < 0 || std::size_t(tenant) >= queues_.size()) {
    throw std::invalid_argument("TenantScheduler: tenant out of range");
  }
  auto& q = queues_[std::size_t(tenant)];
  if (!q.empty() && arrival < q.back().arrival) {
    throw std::invalid_argument(
        "TenantScheduler: enqueue out of arrival order");
  }
  q.push_back(Pending{index, arrival});
  ++remaining_;
}

void TenantScheduler::skip_shed(int tenant) {
  const auto& q = queues_[std::size_t(tenant)];
  std::size_t& h = heads_[std::size_t(tenant)];
  while (h < q.size() && q[h].shed) ++h;
}

std::size_t TenantScheduler::nth_pending(int tenant, int k) const {
  const auto& q = queues_[std::size_t(tenant)];
  std::size_t i = heads_[std::size_t(tenant)];
  for (; i < q.size(); ++i) {
    if (q[i].shed) continue;
    if (k == 0) return i;
    --k;
  }
  return q.size();
}

void TenantScheduler::admit_until(std::uint64_t cycle) {
  for (std::size_t t = 0; t < queues_.size(); ++t) {
    auto& q = queues_[t];
    std::size_t& a = admit_pos_[t];
    for (; a < q.size() && q[a].arrival <= cycle; ++a) {
      // Unmeetable first: a request the estimator already prices above its
      // SLO *solo* is refused even when the queue has room — admitting it
      // cannot end well and delays everyone behind it. Before the tenant's
      // first observation there is no evidence to refuse on, so everything
      // admits (exactly like the slack policy's unseeded behavior).
      if (opts_.shed_unmeetable && estimator_.seeded(int(t)) &&
          estimator_.estimate(int(t), 1) > tenants_[t].slo_cycles) {
        q[a].shed = true;
        shed_events_.push_back(ShedEvent{q[a].index, int(t), true});
        --remaining_;
        continue;
      }
      if (opts_.max_queue_depth > 0 && depth_[t] >= opts_.max_queue_depth) {
        q[a].shed = true;  // tail drop: the queue is at its depth bound
        shed_events_.push_back(ShedEvent{q[a].index, int(t), false});
        --remaining_;
        continue;
      }
      ++depth_[t];
      peak_depth_ = std::max(peak_depth_, depth_[t]);
    }
    skip_shed(int(t));
  }
}

std::uint64_t TenantScheduler::head_deadline(int tenant) const {
  const auto& q = queues_[std::size_t(tenant)];
  const std::size_t h = nth_pending(tenant, 0);
  if (h >= q.size()) return kNever;
  return q[h].arrival + tenants_[std::size_t(tenant)].slo_cycles;
}

int TenantScheduler::arrived_count(int tenant, std::uint64_t cycle) const {
  const auto& q = queues_[std::size_t(tenant)];
  int count = 0;
  for (std::size_t i = heads_[std::size_t(tenant)];
       i < q.size() && count < batch_size_; ++i) {
    if (q[i].shed) continue;
    if (q[i].arrival > cycle) break;  // queues are arrival-ordered
    ++count;
  }
  return count;
}

TenantScheduler::BatchPlan TenantScheduler::cut(int tenant,
                                                std::uint64_t cut_cycle,
                                                int take) {
  BatchPlan plan;
  plan.tenant = tenant;
  plan.cut_cycle = cut_cycle;
  auto& q = queues_[std::size_t(tenant)];
  std::size_t& h = heads_[std::size_t(tenant)];
  plan.members.reserve(std::size_t(take));
  while (int(plan.members.size()) < take && h < q.size()) {
    if (!q[h].shed) plan.members.push_back(q[h].index);
    ++h;
  }
  remaining_ -= plan.members.size();
  depth_[std::size_t(tenant)] -= plan.members.size();
  skip_shed(tenant);
  return plan;
}

std::optional<TenantScheduler::BatchPlan> TenantScheduler::next_batch(
    std::uint64_t now) {
  if (remaining_ == 0) return std::nullopt;

  // The server only sees requests that have arrived: advance the clock to
  // the earliest pending head when everything is still in flight, then run
  // admission for everything arrived by the clock. Admission can shed the
  // very head we advanced to (queue full, deadline unmeetable), emptying
  // the arrived set again — loop until an admitted head has arrived or the
  // trace is exhausted. Each pass processes at least one entry, so the loop
  // terminates.
  std::uint64_t clock = now;
  for (;;) {
    if (remaining_ == 0) return std::nullopt;
    std::uint64_t earliest_arrival = kNever;
    for (std::size_t t = 0; t < queues_.size(); ++t) {
      const std::size_t h = nth_pending(int(t), 0);
      if (h < queues_[t].size()) {
        earliest_arrival = std::min(earliest_arrival, queues_[t][h].arrival);
      }
    }
    clock = std::max(now, earliest_arrival);
    admit_until(clock);
    bool any_arrived = false;
    for (std::size_t t = 0; t < queues_.size() && !any_arrived; ++t) {
      const std::size_t h = nth_pending(int(t), 0);
      any_arrived = h < queues_[t].size() && queues_[t][h].arrival <= clock;
    }
    if (any_arrived) break;
  }

  switch (opts_.policy) {
    case SchedulerPolicy::kFifoAggregate: {
      // Serve the globally oldest head; wait until the batch fills or that
      // head has aged max_wait_cycles (the dynamic-batching timeout).
      int pick = -1;
      std::uint64_t pick_arrival = kNever;
      for (std::size_t t = 0; t < queues_.size(); ++t) {
        if (heads_[t] >= queues_[t].size()) continue;
        const std::uint64_t a = queues_[t][heads_[t]].arrival;
        if (a < pick_arrival) {
          pick_arrival = a;
          pick = int(t);
        }
      }
      const auto& q = queues_[std::size_t(pick)];
      const std::size_t fill_idx = nth_pending(pick, batch_size_ - 1);
      const std::uint64_t fill_cut =
          fill_idx < q.size() ? q[fill_idx].arrival : kNever;
      std::uint64_t timeout_cut = pick_arrival;
      if (timeout_cut <= kNever - opts_.max_wait_cycles) {
        timeout_cut += opts_.max_wait_cycles;
      } else {
        timeout_cut = kNever;
      }
      std::uint64_t when = std::min(fill_cut, timeout_cut);
      if (when == kNever) when = pick_arrival;  // short tail: take what exists
      when = std::max(when, clock);
      // Arrivals between the decision clock and the cut face admission too
      // — a full queue sheds them even while the batch is still filling.
      admit_until(when);
      return cut(pick, when, arrived_count(pick, when));
    }

    case SchedulerPolicy::kEdf: {
      // Among queues whose head has arrived, serve the earliest absolute
      // deadline immediately. Deadlines of waiting requests are fixed while
      // later arrivals get strictly later deadlines, so no queue starves.
      int pick = -1;
      std::uint64_t pick_deadline = kNever;
      for (std::size_t t = 0; t < queues_.size(); ++t) {
        if (heads_[t] >= queues_[t].size()) continue;
        if (queues_[t][heads_[t]].arrival > clock) continue;
        const std::uint64_t d = head_deadline(int(t));
        if (d < pick_deadline) {
          pick_deadline = d;
          pick = int(t);
        }
      }
      return cut(pick, clock, arrived_count(pick, clock));
    }

    case SchedulerPolicy::kSlack: {
      // Pick the arrived head with the least slack
      // (deadline - clock - estimated service of the batch it would get).
      int pick = -1;
      double pick_slack = std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < queues_.size(); ++t) {
        if (heads_[t] >= queues_[t].size()) continue;
        if (queues_[t][heads_[t]].arrival > clock) continue;
        const int ready = arrived_count(int(t), clock);
        const double slack = double(head_deadline(int(t))) - double(clock) -
                             double(estimator_.estimate(int(t), ready));
        if (slack < pick_slack) {  // ties break toward the lower tenant id
          pick_slack = slack;
          pick = int(t);
        }
      }
      // Amortize while it is safe: keep waiting for the picked tenant's next
      // arrival as long as the head would still meet its deadline with the
      // bigger batch's estimated cost. An unseeded estimator never waits
      // (estimate 0 but also no evidence batching pays — behave like EDF).
      std::uint64_t when = clock;
      if (estimator_.seeded(pick)) {
        const auto& q = queues_[std::size_t(pick)];
        const std::uint64_t deadline = head_deadline(pick);
        int size = arrived_count(pick, when);
        while (size < batch_size_) {
          const std::size_t next_idx = nth_pending(pick, size);
          if (next_idx >= q.size()) break;
          const std::uint64_t next_arrival = q[next_idx].arrival;
          const std::uint64_t est =
              estimator_.estimate(pick, size + 1);
          if (next_arrival > deadline || est > deadline - next_arrival) break;
          when = next_arrival;
          // The awaited arrival itself faces admission — if it is shed the
          // count stays put and the next pass awaits the entry behind it.
          admit_until(when);
          size = arrived_count(pick, when);
        }
      }
      return cut(pick, when, arrived_count(pick, when));
    }
  }
  return std::nullopt;  // unreachable
}

// --- TenantReport -----------------------------------------------------------

std::vector<TenantReport> make_tenant_reports(
    const std::vector<TenantSpec>& tenants, const std::vector<int>& tenant_of,
    const std::vector<RequestOutcome>& outcomes) {
  std::vector<TenantReport> reports(tenants.size());
  std::vector<std::vector<std::uint64_t>> latencies(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    reports[t].tenant = int(t);
    reports[t].name = tenants[t].name;
    reports[t].slo_cycles = tenants[t].slo_cycles;
  }
  std::vector<int> in_slo(tenants.size(), 0);
  for (std::size_t r = 0; r < outcomes.size() && r < tenant_of.size(); ++r) {
    const int t = tenant_of[r];
    if (t < 0 || std::size_t(t) >= tenants.size()) continue;
    TenantReport& rep = reports[std::size_t(t)];
    const RequestOutcome& o = outcomes[r];
    ++rep.requests;
    switch (o.status) {
      case Status::kRejected:
        ++rep.rejected;
        continue;
      case Status::kDegraded:
        ++rep.degraded;
        ++rep.served;
        break;
      case Status::kOk:
        ++rep.served;
        break;
      default:
        ++rep.failed;
        break;
    }
    rep.queue_cycles_total += o.queue_cycles;
    rep.service_cycles_total += o.service_cycles;
    if (is_served(o.status)) {
      const std::uint64_t lat = o.queue_cycles + o.service_cycles;
      latencies[std::size_t(t)].push_back(lat);
      if (lat <= rep.slo_cycles) ++in_slo[std::size_t(t)];
    }
  }
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    TenantReport& rep = reports[t];
    const auto& lats = latencies[t];
    if (!lats.empty()) {
      rep.p50_latency_cycles = util::percentile(lats, 50.0);
      rep.p90_latency_cycles = util::percentile(lats, 90.0);
      rep.p99_latency_cycles = util::percentile(lats, 99.0);
      rep.max_latency_cycles = *std::max_element(lats.begin(), lats.end());
    }
    const int admitted = rep.requests - rep.rejected;
    rep.attainment = admitted > 0 ? double(in_slo[t]) / double(admitted) : 1.0;
  }
  return reports;
}

}  // namespace gnnone::serve
