// Degree-ordered static feature cache for GNN serving (the FGNN design).
//
// Sampling-based inference spends most of its bytes gathering input features
// for the sampled vertices; on a real deployment those live in host memory
// and cross PCIe. FGNN's observation is that a *static* cache works almost
// as well as an oracle one on power-law graphs: pin the features of the
// top-alpha fraction of vertices by degree on the device, because high-degree
// vertices are sampled disproportionately often. A cached vertex's row is
// read at DRAM bandwidth; a miss crosses PCIe. Both are charged to the
// cycle ledger under "feature_gather" and to the memory ledger under
// "feature_cache_hit" / "feature_cache_miss", which is what the serving
// bench's alpha sweep measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/coo.h"
#include "graph/types.h"
#include "tensor/ledger.h"

namespace gnnone {

/// Byte and cycle accounting of one gather call.
struct GatherStats {
  std::uint64_t hits = 0;    // vertices served from the device cache
  std::uint64_t misses = 0;  // vertices fetched across PCIe
  std::size_t hit_bytes = 0;
  std::size_t miss_bytes = 0;
  std::uint64_t cycles = 0;  // modeled cycles of the gather launch
};

/// Thrown by FeatureCache::gather when an armed transient PCIe-fetch fault
/// fires (serve/chaos.h): the host->device copy of this gather failed and
/// must be retried. Fires *before* any cycles or bytes are charged, so a
/// faulted gather attempt leaves the ledgers untouched.
class TransientFetchError : public std::runtime_error {
 public:
  TransientFetchError(std::uint64_t key, int attempt)
      : std::runtime_error("transient PCIe fetch fault: request " +
                           std::to_string(key) + ", attempt " +
                           std::to_string(attempt)),
        key_(key),
        attempt_(attempt) {}
  std::uint64_t key() const { return key_; }
  int attempt() const { return attempt_; }

 private:
  std::uint64_t key_;
  int attempt_;
};

/// One fault probe of a gather call: `key` identifies the unit of work the
/// gather serves (the serving driver passes the request's trace index) and
/// `attempt` counts how many gathers that unit has already attempted. The
/// fault schedule is a pure function of (seed, key, attempt), so outcomes
/// are independent of batch composition and of serial vs pipelined order.
struct GatherProbe {
  std::uint64_t key = 0;
  int attempt = 0;
};

class FeatureCache {
 public:
  /// Caches the features of the top-`alpha` fraction of `graph`'s vertices
  /// ordered by degree (descending, ties by ascending id — the same order
  /// the request generator's hot set uses). alpha is clamped to [0, 1];
  /// alpha = 0 caches nothing, alpha = 1 caches every vertex.
  FeatureCache(const Coo& graph, int feat_len, double alpha,
               const gpusim::DeviceSpec& dev);

  bool cached(vid_t v) const { return cached_[std::size_t(v)] != 0; }
  vid_t num_cached() const { return num_cached_; }
  vid_t num_vertices() const { return vid_t(cached_.size()); }
  double alpha() const { return alpha_; }
  int feat_len() const { return feat_len_; }

  /// Device bytes the pinned cache occupies.
  std::size_t device_bytes() const {
    return std::size_t(num_cached_) * row_bytes();
  }

  /// Arms the seeded transient PCIe-fetch fault schedule: a gather whose
  /// probe's (key, attempt) is poisoned under (rate, seed) throws
  /// TransientFetchError (serve/chaos.h's fetch_fate). rate <= 0 disarms.
  void set_fetch_faults(double rate, std::uint64_t seed) {
    fetch_rate_ = rate;
    fetch_seed_ = seed;
  }

  /// Models gathering the feature rows of `vertices` (global ids) into a
  /// contiguous device buffer: hits stream from DRAM, misses cross PCIe.
  /// Charges `cycles` (tag "feature_gather") and `bytes` (tags
  /// "feature_cache_hit" / "feature_cache_miss"); either ledger may be null.
  ///
  /// `probes` identify the units of work this gather serves; if any probe is
  /// scheduled to fault (set_fetch_faults), the gather throws
  /// TransientFetchError before charging anything. `bypass_cache` models a
  /// post-eviction gather (the ladder's safe mode): every row crosses PCIe.
  GatherStats gather(std::span<const vid_t> vertices, CycleLedger* cycles,
                     MemoryLedger* bytes,
                     std::span<const GatherProbe> probes = {},
                     bool bypass_cache = false) const;

 private:
  std::size_t row_bytes() const { return std::size_t(feat_len_) * 4; }

  const gpusim::DeviceSpec* dev_;
  int feat_len_;
  double alpha_;
  vid_t num_cached_ = 0;
  std::vector<char> cached_;  // per-vertex flag
  double fetch_rate_ = 0.0;   // transient-fetch fault schedule (chaos)
  std::uint64_t fetch_seed_ = 0;
};

}  // namespace gnnone
