// Policy-driven feature cache for GNN serving (the FGNN design,
// docs/SERVING.md §9).
//
// Sampling-based inference spends most of its bytes gathering input features
// for the sampled vertices; on a real deployment those live in host memory
// and cross PCIe. FGNN's observation is that a *static* cache works almost
// as well as an oracle one on power-law graphs: pin the features of the
// top-alpha fraction of vertices on the device. Which rows get pinned — and
// whether the resident set may adapt online — is the cache policy
// (serve/cache_policy.h): degree order (the original behavior, bit-identical
// under the default config), pre-sampling frequency order, or a CLOCK
// second-chance cache seeded from the degree set. A cached vertex's row is
// read at DRAM bandwidth; a miss crosses PCIe; a CLOCK install additionally
// writes the fetched row into its slot at DRAM bandwidth. All of it is
// charged to the cycle ledger under "feature_gather" and to the memory
// ledger under "feature_cache_hit" / "feature_cache_miss" /
// "feature_cache_insert", which is what the serving bench's alpha and
// policy sweeps measure.
//
// CLOCK determinism (the serial ≡ pipelined ≡ chaos contract): dynamic
// state evolves per *batch*, not per gather call. A ClockTxn holds the
// committed state after each batch; a batch's first full-fidelity,
// full-membership gather simulates from the state after the previous batch
// and commits the result, while every other gather on the batch's behalf
// (retries, bisected halves, truncated or safe-mode reruns) replays against
// that same basis and discards its state. Commits therefore happen in batch
// order with lookahead-1 recovery in every driver, so the hit/miss stream —
// and every cycle charged from it — is identical in serial, pipelined, and
// chaos-recovery execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/coo.h"
#include "graph/types.h"
#include "serve/cache_policy.h"
#include "tensor/ledger.h"

namespace gnnone {

/// Byte and cycle accounting of one gather call.
struct GatherStats {
  std::uint64_t hits = 0;    // vertices served from the device cache
  std::uint64_t misses = 0;  // vertices fetched across PCIe
  /// CLOCK only: rows evicted to make room (== rows installed, since the
  /// cache starts full); 0 under the static policies.
  std::uint64_t evictions = 0;
  std::size_t hit_bytes = 0;
  std::size_t miss_bytes = 0;
  /// CLOCK only: bytes of fetched rows written into their cache slots.
  std::size_t insert_bytes = 0;
  /// Sharded serving only (docs/SERVING.md §10; always 0 from
  /// FeatureCache::gather itself): vertices owned by a peer device, served
  /// from the peer's pinned rows over NVLink (remote hit) or refetched from
  /// the host over PCIe (remote miss).
  std::uint64_t remote_hits = 0;
  std::uint64_t remote_misses = 0;
  std::size_t remote_hit_bytes = 0;
  std::size_t remote_miss_bytes = 0;
  std::uint64_t cycles = 0;  // modeled cycles of the gather launch
};

/// Thrown by FeatureCache::gather when an armed transient PCIe-fetch fault
/// fires (serve/chaos.h): the host->device copy of this gather failed and
/// must be retried. Fires *before* any cycles or bytes are charged, so a
/// faulted gather attempt leaves the ledgers untouched.
class TransientFetchError : public std::runtime_error {
 public:
  TransientFetchError(std::uint64_t key, int attempt)
      : std::runtime_error("transient PCIe fetch fault: request " +
                           std::to_string(key) + ", attempt " +
                           std::to_string(attempt)),
        key_(key),
        attempt_(attempt) {}
  std::uint64_t key() const { return key_; }
  int attempt() const { return attempt_; }

 private:
  std::uint64_t key_;
  int attempt_;
};

/// One fault probe of a gather call: `key` identifies the unit of work the
/// gather serves (the serving driver passes the request's trace index) and
/// `attempt` counts how many gathers that unit has already attempted. The
/// fault schedule is a pure function of (seed, key, attempt), so outcomes
/// are independent of batch composition and of serial vs pipelined order.
struct GatherProbe {
  std::uint64_t key = 0;
  int attempt = 0;
};

/// Structural knobs of a FeatureCache beyond (graph, feat_len, alpha).
struct CacheConfig {
  serve::CachePolicy policy = serve::CachePolicy::kDegree;
  /// Bytes per feature element — derived from the feature tensor's element
  /// type by the server (the tensor stack is float today; an fp16/fp64
  /// feature table changes every PCIe/DRAM charge through this knob).
  std::size_t elem_bytes = sizeof(float);
  /// >= 0 overrides the alpha-derived row capacity — the per-tenant
  /// partitioning path, where each tenant owns a fixed share of the rows.
  vid_t capacity_override = -1;
};

class FeatureCache {
 public:
  /// Caches the features of the top-`alpha` fraction of `graph`'s vertices
  /// ordered by degree (descending, ties by ascending id — the same order
  /// the request generator's hot set uses). alpha is clamped to [0, 1];
  /// alpha = 0 caches nothing, alpha = 1 caches every vertex. The device
  /// spec is copied — callers routinely pass temporaries.
  FeatureCache(const Coo& graph, int feat_len, double alpha,
               const gpusim::DeviceSpec& dev,
               std::size_t elem_bytes = sizeof(float));

  /// Policy-driven cache. `pin_order` is the full vertex ordering the
  /// policy pins from (serve::degree_order / serve::frequency_order); its
  /// first capacity entries form the resident set — the static set for the
  /// static policies, the initial CLOCK fill for kClock. An empty span
  /// computes the degree order internally. cfg.policy must be a concrete
  /// policy (kAuto is resolved by the server before construction; throws
  /// std::invalid_argument here).
  FeatureCache(const Coo& graph, int feat_len, double alpha,
               const gpusim::DeviceSpec& dev, const CacheConfig& cfg,
               std::span<const vid_t> pin_order = {});

  /// The alpha-derived row capacity every cache and partition split uses:
  /// llround(alpha * n) clamped to [0, n].
  static vid_t capacity_for(vid_t num_vertices, double alpha);

  /// Static membership: the pinned set for the static policies, the
  /// *initial* fill for kClock (whose resident set then adapts per serve).
  bool cached(vid_t v) const { return cached_[std::size_t(v)] != 0; }
  vid_t num_cached() const { return num_cached_; }
  vid_t num_vertices() const { return vid_t(cached_.size()); }
  double alpha() const { return alpha_; }
  int feat_len() const { return feat_len_; }
  serve::CachePolicy policy() const { return policy_; }
  std::size_t elem_bytes() const { return elem_bytes_; }

  /// Device bytes the cache's slots occupy (CLOCK slots are allocated
  /// whether or not their resident row changed).
  std::size_t device_bytes() const {
    return std::size_t(num_cached_) * row_bytes();
  }

  /// Bytes of one feature row, sized from the feature element type.
  std::size_t row_bytes() const {
    return std::size_t(feat_len_) * elem_bytes_;
  }

  /// Arms the seeded transient PCIe-fetch fault schedule: a gather whose
  /// probe's (key, attempt) is poisoned under (rate, seed) throws
  /// TransientFetchError (serve/chaos.h's fetch_fate). rate <= 0 disarms.
  void set_fetch_faults(double rate, std::uint64_t seed) {
    fetch_rate_ = rate;
    fetch_seed_ = seed;
  }

  /// Per-serve CLOCK state under the per-batch commit discipline (header
  /// comment). The serving driver owns one per cache per serve() call;
  /// unit tests may drive one directly. Movable, not copyable.
  class ClockTxn {
   public:
    explicit ClockTxn(const FeatureCache& cache) : initial_(cache.clock_init_) {}
    ClockTxn(ClockTxn&&) = default;
    ClockTxn& operator=(ClockTxn&&) = default;

    /// Whether batch `batch` already committed its state.
    bool committed(std::int64_t batch) const;

   private:
    friend class FeatureCache;
    /// State after the last committed batch with id < `batch` (the initial
    /// state when none). Snapshots keep a depth-3 history — enough for the
    /// pipelined driver's lookahead-1 recovery replays.
    const serve::ClockCache& basis(std::int64_t batch) const;
    void commit(std::int64_t batch, serve::ClockCache&& state);

    serve::ClockCache initial_;
    struct Snap {
      std::int64_t id = -1;
      serve::ClockCache state;
    };
    std::vector<Snap> snaps_;  // ascending id, at most 3 kept
  };

  /// CLOCK coordinates of one gather (ignored by the static policies). A
  /// null txn simulates from the initial state and discards — the
  /// stateless unit-test mode. With a txn, the gather replays from
  /// basis(batch); it commits the resulting state only when `commit` is
  /// set and the batch has not committed yet (the batch's first
  /// full-fidelity, full-membership attempt).
  struct ClockGatherCtx {
    ClockTxn* txn = nullptr;
    std::int64_t batch = 0;
    bool commit = false;
  };

  /// Models gathering the feature rows of `vertices` (global ids) into a
  /// contiguous device buffer: hits stream from DRAM, misses cross PCIe,
  /// CLOCK installs write back at DRAM bandwidth. Charges `cycles` (tag
  /// "feature_gather") and `bytes` (tags "feature_cache_hit" /
  /// "feature_cache_miss" / "feature_cache_insert"); either ledger may be
  /// null. An *empty* vertex span is a no-op: no launch, zero cycles, zero
  /// bytes, no fault probe.
  ///
  /// `probes` identify the units of work this gather serves; if any probe is
  /// scheduled to fault (set_fetch_faults), the gather throws
  /// TransientFetchError before charging anything. `bypass_cache` models a
  /// post-eviction gather (the ladder's safe mode): every row crosses PCIe
  /// under every policy, and CLOCK state neither moves nor commits.
  GatherStats gather(std::span<const vid_t> vertices, CycleLedger* cycles,
                     MemoryLedger* bytes,
                     std::span<const GatherProbe> probes = {},
                     bool bypass_cache = false,
                     const ClockGatherCtx& clock = ClockGatherCtx{
                         nullptr, 0, false}) const;

 private:
  gpusim::DeviceSpec dev_;  // by value: binding a caller temporary is legal
  int feat_len_;
  std::size_t elem_bytes_;
  double alpha_;
  serve::CachePolicy policy_ = serve::CachePolicy::kDegree;
  vid_t num_cached_ = 0;
  std::vector<char> cached_;  // per-vertex flag (static / initial set)
  serve::ClockCache clock_init_;  // kClock: the seeded initial state
  double fetch_rate_ = 0.0;   // transient-fetch fault schedule (chaos)
  std::uint64_t fetch_seed_ = 0;
};

}  // namespace gnnone
