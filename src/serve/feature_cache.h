// Degree-ordered static feature cache for GNN serving (the FGNN design).
//
// Sampling-based inference spends most of its bytes gathering input features
// for the sampled vertices; on a real deployment those live in host memory
// and cross PCIe. FGNN's observation is that a *static* cache works almost
// as well as an oracle one on power-law graphs: pin the features of the
// top-alpha fraction of vertices by degree on the device, because high-degree
// vertices are sampled disproportionately often. A cached vertex's row is
// read at DRAM bandwidth; a miss crosses PCIe. Both are charged to the
// cycle ledger under "feature_gather" and to the memory ledger under
// "feature_cache_hit" / "feature_cache_miss", which is what the serving
// bench's alpha sweep measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "graph/coo.h"
#include "graph/types.h"
#include "tensor/ledger.h"

namespace gnnone {

/// Byte and cycle accounting of one gather call.
struct GatherStats {
  std::uint64_t hits = 0;    // vertices served from the device cache
  std::uint64_t misses = 0;  // vertices fetched across PCIe
  std::size_t hit_bytes = 0;
  std::size_t miss_bytes = 0;
  std::uint64_t cycles = 0;  // modeled cycles of the gather launch
};

class FeatureCache {
 public:
  /// Caches the features of the top-`alpha` fraction of `graph`'s vertices
  /// ordered by degree (descending, ties by ascending id — the same order
  /// the request generator's hot set uses). alpha is clamped to [0, 1];
  /// alpha = 0 caches nothing, alpha = 1 caches every vertex.
  FeatureCache(const Coo& graph, int feat_len, double alpha,
               const gpusim::DeviceSpec& dev);

  bool cached(vid_t v) const { return cached_[std::size_t(v)] != 0; }
  vid_t num_cached() const { return num_cached_; }
  vid_t num_vertices() const { return vid_t(cached_.size()); }
  double alpha() const { return alpha_; }
  int feat_len() const { return feat_len_; }

  /// Device bytes the pinned cache occupies.
  std::size_t device_bytes() const {
    return std::size_t(num_cached_) * row_bytes();
  }

  /// Models gathering the feature rows of `vertices` (global ids) into a
  /// contiguous device buffer: hits stream from DRAM, misses cross PCIe.
  /// Charges `cycles` (tag "feature_gather") and `bytes` (tags
  /// "feature_cache_hit" / "feature_cache_miss"); either ledger may be null.
  GatherStats gather(std::span<const vid_t> vertices, CycleLedger* cycles,
                     MemoryLedger* bytes) const;

 private:
  std::size_t row_bytes() const { return std::size_t(feat_len_) * 4; }

  const gpusim::DeviceSpec* dev_;
  int feat_len_;
  double alpha_;
  vid_t num_cached_ = 0;
  std::vector<char> cached_;  // per-vertex flag
};

}  // namespace gnnone
