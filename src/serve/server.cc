#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "gpusim/sanitizer.h"
#include "graph/convert.h"
#include "serve/server_state.h"

namespace gnnone {

namespace {

/// Exponential backoff before recovery attempt `attempt` (1-based), shift
/// capped so a long ladder cannot overflow.
std::uint64_t backoff_for(const serve::RetryPolicy& p, int attempt) {
  const int shift = std::min(std::max(attempt - 1, 0), 10);
  return p.backoff_cycles << shift;
}

std::vector<int> truncated_fanouts(const std::vector<int>& fanouts) {
  std::vector<int> out = fanouts;
  for (int& f : out) f = std::max(1, f / 2);
  return out;
}

const ServeOptions& validated(const ServeOptions& opts) {
  opts.Validate();
  return opts;
}

}  // namespace

namespace serve_detail {

/// Boundary validation of one request. Empty = admissible. The sampler
/// would throw std::invalid_argument on an out-of-range seed — the server
/// turns that into a per-request rejection instead of aborting the run —
/// and duplicate seeds violate the trace contract (gen/requests.h: unique
/// within one request).
std::string validate_request(const SeedRequest& r, vid_t num_vertices) {
  if (r.seeds.empty()) return "empty seed set";
  for (std::size_t i = 0; i < r.seeds.size(); ++i) {
    const vid_t s = r.seeds[i];
    if (s < 0 || s >= num_vertices) {
      return "seed " + std::to_string(s) + " out of range [0, " +
             std::to_string(num_vertices) + ")";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (r.seeds[j] == s) {
        return "duplicate seed " + std::to_string(s) + " within request";
      }
    }
  }
  return {};
}

}  // namespace serve_detail

void ServeOptions::Validate() const {
  if (model_kind != "gcn" && model_kind != "gin" && model_kind != "gat") {
    throw std::invalid_argument("ServeOptions: unknown model_kind '" +
                                model_kind + "' (want gcn, gin or gat)");
  }
  if (batch_size < 1) {
    throw std::invalid_argument("ServeOptions: batch_size must be >= 1, got " +
                                std::to_string(batch_size));
  }
  if (fanouts.empty()) {
    throw std::invalid_argument("ServeOptions: fanouts must not be empty");
  }
  for (int f : fanouts) {
    if (f <= 0) {
      throw std::invalid_argument(
          "ServeOptions: fanouts must be positive for serving, got " +
          std::to_string(f));
    }
  }
  if (!(cache_alpha >= 0.0 && cache_alpha <= 1.0)) {
    throw std::invalid_argument(
        "ServeOptions: cache_alpha must be in [0, 1], got " +
        std::to_string(cache_alpha));
  }
  if (feature_dim_override < 0) {
    throw std::invalid_argument(
        "ServeOptions: feature_dim_override must be >= 0, got " +
        std::to_string(feature_dim_override));
  }
  for (double rate : {chaos.oom_rate, chaos.fetch_rate, chaos.kernel_rate}) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
      throw std::invalid_argument(
          "ServeOptions: chaos rates must be in [0, 1], got " +
          std::to_string(rate));
    }
  }
  if (retry.max_retries < 0) {
    throw std::invalid_argument(
        "ServeOptions: retry.max_retries must be >= 0, got " +
        std::to_string(retry.max_retries));
  }
  if (presample_epochs < 0) {
    throw std::invalid_argument(
        "ServeOptions: presample_epochs must be >= 0, got " +
        std::to_string(presample_epochs));
  }
  if (partition_cache && tenants.empty()) {
    throw std::invalid_argument(
        "ServeOptions: partition_cache requires a tenant table (the legacy "
        "single-tenant path has nothing to partition by)");
  }
  for (const serve::TenantSpec& t : tenants) {
    if (t.model_kind != "gcn" && t.model_kind != "gin" &&
        t.model_kind != "gat") {
      throw std::invalid_argument("ServeOptions: tenant '" + t.name +
                                  "' has unknown model_kind '" +
                                  t.model_kind + "' (want gcn, gin or gat)");
    }
    if (t.fanouts.empty()) {
      throw std::invalid_argument("ServeOptions: tenant '" + t.name +
                                  "' has empty fanouts");
    }
    for (int f : t.fanouts) {
      if (f <= 0) {
        throw std::invalid_argument(
            "ServeOptions: tenant '" + t.name +
            "' fanouts must be positive, got " + std::to_string(f));
      }
    }
    if (t.slo_cycles < 1) {
      throw std::invalid_argument("ServeOptions: tenant '" + t.name +
                                  "' slo_cycles must be >= 1");
    }
    if (!(t.cache_share >= 0.0)) {  // rejects negatives and NaN
      throw std::invalid_argument("ServeOptions: tenant '" + t.name +
                                  "' cache_share must be >= 0");
    }
  }
  scheduler.Validate();
  shard.Validate();
  if (shard.enabled()) {
    if (!tenants.empty()) {
      throw std::invalid_argument(
          "ServeOptions: shard and tenants are mutually exclusive (the "
          "sharded tier routes by vertex ownership, the scheduled tier by "
          "tenant queues)");
    }
    if (device_memory != nullptr) {
      throw std::invalid_argument(
          "ServeOptions: shard and an external device_memory are mutually "
          "exclusive (each shard owns its own tracker; use "
          "InferenceServer::shard_memory)");
    }
    if (pipeline) {
      throw std::invalid_argument(
          "ServeOptions: shard and pipeline are mutually exclusive (the "
          "sharded tier's overlap is across devices; within a device batches "
          "run serially)");
    }
  }
}

serve::CachePolicy InferenceServer::resolve_policy(const Dataset& ds,
                                                   const gpusim::DeviceSpec& dev,
                                                   const ServeOptions& opts,
                                                   int in_dim) {
  if (opts.cache_policy != serve::CachePolicy::kAuto) return opts.cache_policy;
  if (opts.tuning_cache == nullptr) return serve::CachePolicy::kDegree;
  tune::ServeKey key;
  key.signature = tune::signature_of(ds.coo);
  key.workload = serve::cache_workload_key(opts.cache_alpha, opts.fanouts,
                                           opts.batch_size, in_dim);
  key.device = tune::device_key(dev);
  const tune::ServeDecision* d = opts.tuning_cache->lookup_serve(key);
  if (d == nullptr) d = opts.tuning_cache->lookup_serve_nearest(key);
  serve::CachePolicy p = serve::CachePolicy::kDegree;
  if (d != nullptr && serve::cache_policy_from_name(d->cache_policy, &p) &&
      p != serve::CachePolicy::kAuto) {
    return p;
  }
  return serve::CachePolicy::kDegree;
}

FeatureCache InferenceServer::make_cache(const Dataset& ds,
                                         const gpusim::DeviceSpec& dev,
                                         const ServeOptions& opts, int in_dim,
                                         const Csr& csr,
                                         serve::CachePolicy policy) {
  CacheConfig cc;
  cc.policy = policy;
  // Partitioned serving moves every row into the per-tenant caches (sharded
  // serving into the per-device caches); the shared cache stays
  // allocated-but-empty so the device byte budget is owned entirely by the
  // partitions.
  if (opts.partition_cache || opts.shard.enabled()) cc.capacity_override = 0;
  if (policy == serve::CachePolicy::kPresampleFrequency &&
      !opts.partition_cache && !opts.shard.enabled()) {
    const std::vector<SeedRequest> own_probe =
        opts.presample_probe.empty()
            ? serve::default_presample_probe(ds.coo, opts.seed)
            : std::vector<SeedRequest>{};
    const std::span<const SeedRequest> probe =
        opts.presample_probe.empty()
            ? std::span<const SeedRequest>(own_probe)
            : std::span<const SeedRequest>(opts.presample_probe);
    const auto freq = serve::presample_frequencies(
        csr, probe, opts.fanouts, opts.seed, opts.presample_epochs);
    const auto order = serve::frequency_order(freq, row_lengths(ds.coo));
    return FeatureCache(ds.coo, in_dim, opts.cache_alpha, dev, cc, order);
  }
  return FeatureCache(ds.coo, in_dim, opts.cache_alpha, dev, cc);
}

InferenceServer::InferenceServer(const Dataset& ds,
                                 const gpusim::DeviceSpec& dev,
                                 const ServeOptions& opts)
    : ds_(&ds),
      dev_(dev),
      opts_(validated(opts)),
      in_dim_(opts.feature_dim_override > 0 ? opts.feature_dim_override
                                            : ds.input_feat_len),
      csr_(coo_to_csr(ds.coo)),
      policy_(resolve_policy(ds, dev, opts_, in_dim_)),
      cache_(make_cache(ds, dev, opts_, in_dim_, csr_, policy_)),
      features_(make_features(ds.coo.num_rows, in_dim_,
                              ds.labeled ? ds.labels : std::vector<int>{},
                              opts.seed)),
      owned_mem_(opts.device_memory != nullptr
                     ? nullptr
                     : std::make_unique<gpusim::DeviceMemory>(
                           dev.device_memory_bytes)),
      mem_(opts.device_memory != nullptr ? opts.device_memory
                                         : owned_mem_.get()),
      cache_alloc_(*mem_, cache_.device_bytes()) {
  cache_.set_fetch_faults(opts_.chaos.fetch_rate, opts_.chaos.seed);

  if (opts_.shard.enabled()) {
    // Sharded tier (serve/shard.h): the vertex set splits over the
    // sampler-capable devices by contiguous ranges of the *global* pin
    // order, and device d's cache partition pins exactly the globally
    // pinned rows it owns — per-vertex membership is identical to the
    // unsharded cache (the shared cache_ above was built empty, like the
    // tenant-partitioned path), which is what makes the sharded hit/miss
    // stream exact rather than approximate: a globally pinned row is a
    // local hit on its owner and a remote (NVLink) hit everywhere else.
    std::vector<int> owners;
    for (int d = 0; d < opts_.shard.num_devices; ++d) {
      if (opts_.shard.samples(d)) owners.push_back(d);
    }
    std::vector<vid_t> order;
    if (policy_ == serve::CachePolicy::kPresampleFrequency) {
      const std::vector<SeedRequest> own_probe =
          opts_.presample_probe.empty()
              ? serve::default_presample_probe(ds.coo, opts_.seed)
              : std::vector<SeedRequest>{};
      const std::span<const SeedRequest> probe =
          opts_.presample_probe.empty()
              ? std::span<const SeedRequest>(own_probe)
              : std::span<const SeedRequest>(opts_.presample_probe);
      const auto freq = serve::presample_frequencies(
          csr_, probe, opts_.fanouts, opts_.seed, opts_.presample_epochs);
      order = serve::frequency_order(freq, row_lengths(ds.coo));
    } else {
      order = serve::degree_order(ds.coo);
    }
    shard_map_ = serve::ShardMap(order, owners);

    const vid_t cap =
        FeatureCache::capacity_for(ds.coo.num_rows, opts_.cache_alpha);
    const std::size_t nd = std::size_t(opts_.shard.num_devices);
    shard_caches_.reserve(nd);
    shard_mems_.reserve(nd);
    shard_cache_allocs_.reserve(nd);
    for (int d = 0; d < opts_.shard.num_devices; ++d) {
      // Device d's pin order: its owned vertices first (global-order
      // sequence preserved, so the first `pinned` of them are exactly the
      // owned ∩ globally-pinned rows), everyone else's after — the full
      // ranking FeatureCache requires, with capacity_override cutting it at
      // the owned pinned count. Σ over devices of the overrides == the
      // global capacity exactly. Forward-only devices pin nothing.
      std::vector<vid_t> dev_order;
      vid_t pinned = 0;
      if (opts_.shard.samples(d)) {
        dev_order.reserve(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
          if (shard_map_.owner(order[i]) != d) continue;
          dev_order.push_back(order[i]);
          if (vid_t(i) < cap) ++pinned;
        }
        for (vid_t v : order) {
          if (shard_map_.owner(v) != d) dev_order.push_back(v);
        }
      }
      CacheConfig cc;
      cc.policy = policy_;
      cc.capacity_override = pinned;
      shard_caches_.emplace_back(
          ds.coo, in_dim_, opts_.cache_alpha, dev_, cc,
          dev_order.empty() ? std::span<const vid_t>()
                            : std::span<const vid_t>(dev_order));
      // The per-device caches stay fault-disarmed: the sharded gather
      // probes the fetch-fate schedule itself (serve/shard.cc), before the
      // local/remote split, so a fault's (request, attempt) coordinate is
      // independent of the shard layout.
      shard_mems_.push_back(
          std::make_unique<gpusim::DeviceMemory>(dev.device_memory_bytes));
      shard_cache_allocs_.emplace_back(*shard_mems_.back(),
                                       shard_caches_.back().device_bytes());
    }
    return;
  }

  if (!opts_.partition_cache) return;

  // Per-tenant partitions: the alpha capacity splits by TenantSpec shares
  // (largest remainder, sums exactly), each partition pins from its own
  // order — a tenant-filtered probe for the frequency policy, falling back
  // to the full probe when a tenant issued no probe requests.
  const vid_t cap =
      FeatureCache::capacity_for(ds.coo.num_rows, opts_.cache_alpha);
  std::vector<double> shares;
  shares.reserve(opts_.tenants.size());
  for (const serve::TenantSpec& t : opts_.tenants) {
    shares.push_back(t.cache_share);
  }
  const std::vector<vid_t> caps = serve::partition_capacities(cap, shares);

  std::vector<SeedRequest> default_probe;
  std::span<const SeedRequest> probe;
  std::vector<vid_t> deg;
  if (policy_ == serve::CachePolicy::kPresampleFrequency) {
    if (opts_.presample_probe.empty()) {
      default_probe = serve::default_presample_probe(ds.coo, opts_.seed);
    }
    probe = opts_.presample_probe.empty()
                ? std::span<const SeedRequest>(default_probe)
                : std::span<const SeedRequest>(opts_.presample_probe);
    deg = row_lengths(ds.coo);
  }
  tenant_caches_.reserve(opts_.tenants.size());
  tenant_cache_allocs_.reserve(opts_.tenants.size());
  for (std::size_t t = 0; t < opts_.tenants.size(); ++t) {
    CacheConfig cc;
    cc.policy = policy_;
    cc.capacity_override = caps[t];
    std::vector<vid_t> order;
    if (policy_ == serve::CachePolicy::kPresampleFrequency) {
      std::vector<SeedRequest> sub;
      for (const SeedRequest& r : probe) {
        if (r.tenant == int(t)) sub.push_back(r);
      }
      const std::span<const SeedRequest> tenant_probe =
          sub.empty() ? probe : std::span<const SeedRequest>(sub);
      const auto freq = serve::presample_frequencies(
          csr_, tenant_probe, opts_.tenants[t].fanouts, opts_.seed,
          opts_.presample_epochs);
      order = serve::frequency_order(freq, deg);
    }
    tenant_caches_.emplace_back(
        ds.coo, in_dim_, opts_.cache_alpha, dev_, cc,
        order.empty() ? std::span<const vid_t>()
                      : std::span<const vid_t>(order));
    tenant_caches_.back().set_fetch_faults(opts_.chaos.fetch_rate,
                                           opts_.chaos.seed);
    tenant_cache_allocs_.emplace_back(*mem_,
                                      tenant_caches_.back().device_bytes());
  }
}

bool InferenceServer::arms_oom(const std::vector<std::size_t>& indices,
                               GroupMode mode, serve::ChaosSite site) const {
  if (opts_.chaos.oom_rate <= 0.0 || opts_.chaos.oom_site != site) {
    return false;
  }
  for (std::size_t idx : indices) {
    const serve::OomFate f = serve::oom_fate(opts_.chaos, idx);
    if (!f.poisoned) continue;
    const bool cured = (f.cure_rung == 1 && indices.size() == 1) ||
                       (f.cure_rung <= 2 && mode.truncated);
    if (!cured) return true;
  }
  return false;
}

InferenceServer::PreparedGroup InferenceServer::prepare_group(
    ServeState& st, const std::vector<std::size_t>& indices, GroupMode mode,
    std::size_t b, serve::ChaosSite* stage) const {
  ServingReport& rep = *st.rep;
  BatchStats& bs = rep.batches[b];
  PreparedGroup pg;
  pg.indices = indices;
  pg.batch = b;
  pg.mode = mode;

  // Stage 1: sample every request's k-hop block independently. The stream
  // seed is the trace seed alone — per-(seed, hop, vertex) streams inside
  // the sampler — never the batch index, so a request's block is a pure
  // function of its own seed set and predictions cannot depend on which
  // group the request lands in.
  *stage = serve::ChaosSite::kSample;
  SampleOptions so;
  const std::vector<int>& base_fanouts =
      st.tenant != nullptr ? st.tenant->fanouts : opts_.fanouts;
  so.fanouts =
      mode.truncated ? truncated_fanouts(base_fanouts) : base_fanouts;
  so.seed = opts_.seed;

  vid_t group_seeds = 0;
  std::size_t bytes_touched = 0;
  for (std::size_t idx : indices) {
    const SampledSubgraph sub =
        sample_khop(csr_, st.requests[idx].seeds, so, &st.scratch);
    const vid_t base = vid_t(pg.block_vertices.size());

    // Request seed j -> its block row. Boundary validation rejected
    // within-request duplicates, so sample_khop's first-appearance local
    // ids are exactly 0..num_seeds-1 in request-seed order.
    std::vector<vid_t> rows;
    rows.reserve(st.requests[idx].seeds.size());
    for (std::size_t j = 0; j < st.requests[idx].seeds.size(); ++j) {
      rows.push_back(base + vid_t(j));
    }
    pg.seed_rows.push_back(std::move(rows));
    group_seeds += sub.num_seeds();

    // Block-diagonal append: each per-request block is CSR-arranged over its
    // own local ids, and bases increase monotonically, so the concatenation
    // stays CSR-arranged and every component keeps its exact within-row NZE
    // order — the property that makes the batched forward bit-identical to
    // per-request forwards.
    pg.block_vertices.insert(pg.block_vertices.end(), sub.vertices.begin(),
                             sub.vertices.end());
    pg.coo.row.reserve(pg.coo.row.size() + sub.coo.row.size());
    pg.coo.col.reserve(pg.coo.col.size() + sub.coo.col.size());
    for (vid_t v : sub.coo.row) pg.coo.row.push_back(base + v);
    for (vid_t v : sub.coo.col) pg.coo.col.push_back(base + v);
    bytes_touched += sub.bytes_touched;
  }
  pg.coo.num_rows = pg.coo.num_cols = vid_t(pg.block_vertices.size());

  // The sampled topology lands on device: row + col indices plus the local
  // -> global map, 4 bytes each. Registering it may throw DeviceOutOfMemory
  // (real pressure or an injected fault armed just below); a faulted
  // attempt fires here, *before* the stage charges the ledger, so retries
  // never double-charge.
  if (arms_oom(indices, mode, serve::ChaosSite::kSample)) {
    st.mem->fail_at_allocation(1);
  }
  pg.topo = gpusim::DeviceAllocation(
      *st.mem,
      (2 * std::size_t(pg.coo.nnz()) + pg.block_vertices.size()) * 4);

  // The sampler reports the adjacency bytes it scanned; charge them at DRAM
  // bandwidth as one launch per group.
  const std::uint64_t sample_cycles =
      2000 + std::uint64_t(std::ceil(double(bytes_touched) /
                                     dev_.dram_bytes_per_cycle));
  rep.ledger.add("sample", sample_cycles);
  bs.sample_cycles += sample_cycles;
  // Sharded serving: a kSymmetric device co-locates the sampling scan with
  // forward kernels and pays the contention dilation on both (shard.h);
  // dedicated devices and the single-device paths charge nothing here.
  const std::uint64_t sample_dil =
      colocation_extra(st.shard_device, sample_cycles);
  if (sample_dil > 0) {
    rep.ledger.add("colocation", sample_dil);
    bs.sample_cycles += sample_dil;
    bs.colocation_sample_cycles += sample_dil;
  }
  bs.num_seeds += group_seeds;
  bs.num_vertices += pg.coo.num_rows;
  bs.num_edges += pg.coo.nnz();

  // Stage 2: gather input features through the cache. Requests in a group
  // often sample the same hub vertices; the physical fetch happens once per
  // distinct vertex (an O(1)-lookup map built once per group), replicating
  // rows on device afterwards is free in this first-order model.
  *stage = serve::ChaosSite::kGather;
  std::unordered_map<vid_t, vid_t> gather_slot;
  gather_slot.reserve(pg.block_vertices.size());
  std::vector<vid_t> unique_vertices;
  unique_vertices.reserve(pg.block_vertices.size());
  for (vid_t g : pg.block_vertices) {
    if (gather_slot.try_emplace(g, vid_t(unique_vertices.size())).second) {
      unique_vertices.push_back(g);
    }
  }

  if (arms_oom(indices, mode, serve::ChaosSite::kGather)) {
    st.mem->fail_at_allocation(1);
  }
  pg.staging = gpusim::DeviceAllocation(
      *st.mem, unique_vertices.size() * std::size_t(in_dim_) * 4);

  // Every member pays one gather attempt, success or not; the probes carry
  // the pre-attempt counts so the cache's fault schedule sees a stable
  // (request, attempt) coordinate regardless of grouping.
  std::vector<GatherProbe> probes;
  probes.reserve(indices.size());
  for (std::size_t idx : indices) {
    probes.push_back({std::uint64_t(idx), st.gather_attempts[idx]++});
  }
  // Gather through the active cache: the owner device's partition when
  // serving is sharded, the tenant's partition when partitioned, the shared
  // cache otherwise. Under kClock the gather carries its batch's
  // transaction coordinates; only the batch's first full-fidelity,
  // full-membership attempt commits the advanced state (recovery replays —
  // retries after a commit, bisected halves, truncated or safe reruns —
  // observe the same basis and discard), which is what keeps the hit stream
  // identical across serial, pipelined, and chaos drivers.
  GatherStats gst;
  if (sharded()) {
    gst = sharded_gather(st, unique_vertices, probes, mode, b);
  } else {
    const FeatureCache& fc =
        (!tenant_caches_.empty() && st.tenant_idx >= 0)
            ? tenant_caches_[std::size_t(st.tenant_idx)]
            : cache_;
    FeatureCache::ClockGatherCtx clock;
    if (policy_ == serve::CachePolicy::kClock && !st.clock_txns.empty()) {
      const std::size_t slot = (!tenant_caches_.empty() && st.tenant_idx >= 0)
                                   ? std::size_t(st.tenant_idx)
                                   : 0;
      clock.txn = &st.clock_txns[slot];
      clock.batch = std::int64_t(b);
      clock.commit = !mode.truncated && !mode.safe &&
                     indices.size() == std::size_t(bs.num_requests);
    }
    gst = fc.gather(unique_vertices, &rep.ledger, &rep.bytes, probes,
                    mode.safe, clock);
  }
  bs.gather.hits += gst.hits;
  bs.gather.misses += gst.misses;
  bs.gather.evictions += gst.evictions;
  bs.gather.hit_bytes += gst.hit_bytes;
  bs.gather.miss_bytes += gst.miss_bytes;
  bs.gather.insert_bytes += gst.insert_bytes;
  bs.gather.remote_hits += gst.remote_hits;
  bs.gather.remote_misses += gst.remote_misses;
  bs.gather.remote_hit_bytes += gst.remote_hit_bytes;
  bs.gather.remote_miss_bytes += gst.remote_miss_bytes;
  bs.gather.cycles += gst.cycles;
  bs.num_unique_vertices += vid_t(unique_vertices.size());
  return pg;
}

void InferenceServer::forward_group(ServeState& st,
                                    const PreparedGroup& pg) const {
  ServingReport& rep = *st.rep;
  BatchStats& bs = rep.batches[pg.batch];
  const vid_t n = pg.coo.num_rows;

  // Activations: the staged input block plus the output logits, on the
  // forward device's tracker when sharding handed the batch off. May throw
  // DeviceOutOfMemory (armed below for an injected forward-site fault).
  gpusim::DeviceMemory& fwd_mem = st.fwd_mem != nullptr ? *st.fwd_mem : *st.mem;
  if (arms_oom(pg.indices, pg.mode, serve::ChaosSite::kForward)) {
    fwd_mem.fail_at_allocation(1);
  }
  const gpusim::DeviceAllocation activations(
      fwd_mem,
      std::size_t(n) * std::size_t(in_dim_ + ds_->num_classes) * 4);

  // Injected kernel fault: fires at forward entry, before any kernel
  // charges, the way simsan's fatal mode aborts a launch. A curable fault
  // disappears under the safe default backend.
  if (opts_.chaos.kernel_rate > 0.0) {
    for (std::size_t idx : pg.indices) {
      const serve::KernelFate f = serve::kernel_fate(opts_.chaos, idx);
      if (f.poisoned && !(pg.mode.safe && f.safe_backend_cures)) {
        throw gpusim::SanitizerError("injected kernel fault: request " +
                                     std::to_string(idx));
      }
    }
  }

  const std::uint64_t fwd_before = rep.ledger.total();
  std::vector<float> x_data(std::size_t(n) * std::size_t(in_dim_));
  for (vid_t lv = 0; lv < n; ++lv) {
    const auto src = std::size_t(pg.block_vertices[std::size_t(lv)]) *
                     std::size_t(in_dim_);
    std::copy_n(features_.begin() + long(src), in_dim_,
                x_data.begin() + long(std::size_t(lv) * std::size_t(in_dim_)));
  }
  const VarPtr x = make_var(Tensor::from(n, in_dim_, std::move(x_data)));

  // Safe mode drops kAuto dispatch (and its tuning cache) for the
  // conservative default backend — the ladder's last rung.
  SparseEngine engine(pg.mode.safe ? Backend::kGnnOne : opts_.backend,
                      pg.coo, dev_);
  engine.set_tuning_cache(pg.mode.safe ? nullptr : opts_.tuning_cache);
  engine.set_online_tune(pg.mode.safe ? false : opts_.online_tune);
  const std::string& kind =
      st.tenant != nullptr ? st.tenant->model_kind : opts_.model_kind;
  const auto model = make_model(kind, engine, *st.cfg);
  const VarPtr logp = model->forward(st.ctx, engine, x, opts_.seed);

  for (std::size_t m = 0; m < pg.indices.size(); ++m) {
    const std::size_t r = pg.indices[m];
    auto& out = rep.predictions[r];
    out.clear();  // a retried request must not accumulate stale rows
    out.reserve(st.requests[r].seeds.size());
    for (const vid_t lv : pg.seed_rows[m]) {
      int best = 0;
      for (std::int64_t c = 1; c < logp->value.cols(); ++c) {
        if (logp->value.at(lv, c) > logp->value.at(lv, best)) best = int(c);
      }
      out.push_back(best);
    }
  }
  // forward_group charges the ledger contiguously, so the delta is this
  // group's forward cost even when prepare calls interleave (pipelined).
  const std::uint64_t fwd_cycles = rep.ledger.total() - fwd_before;
  bs.forward_cycles += fwd_cycles;
  // Sharded serving: the forward side of the colocation dilation (the
  // sample side is charged in prepare_group).
  const std::uint64_t fwd_dil =
      colocation_extra(st.shard_fwd_device, fwd_cycles);
  if (fwd_dil > 0) {
    rep.ledger.add("colocation", fwd_dil);
    bs.forward_cycles += fwd_dil;
    bs.colocation_forward_cycles += fwd_dil;
  }
}

bool InferenceServer::forward_or_fault(ServeState& st, const PreparedGroup& pg,
                                       StageFault* fault) const {
  try {
    forward_group(st, pg);
    for (std::size_t idx : pg.indices) {
      serve::RequestOutcome& o = st.rep->outcomes[idx];
      o.truncated_fanouts = pg.mode.truncated;
      o.status = (pg.mode.truncated || pg.mode.safe)
                     ? serve::Status::kDegraded
                     : serve::Status::kOk;
      o.error.clear();
    }
    return true;
  } catch (const gpusim::DeviceOutOfMemory& e) {
    *fault = {serve::Status::kOom, serve::ChaosSite::kForward, e.what()};
  } catch (const gpusim::SanitizerError& e) {
    *fault = {serve::Status::kKernelFault, serve::ChaosSite::kForward,
              e.what()};
  }
  st.rep->batches[pg.batch].fault_events += 1;
  st.rep->fault_events += 1;
  return false;
}

bool InferenceServer::try_group(ServeState& st,
                                const std::vector<std::size_t>& indices,
                                GroupMode mode, std::size_t b,
                                StageFault* fault) const {
  serve::ChaosSite stage = serve::ChaosSite::kSample;
  try {
    const PreparedGroup pg = prepare_group(st, indices, mode, b, &stage);
    return forward_or_fault(st, pg, fault);
  } catch (const gpusim::DeviceOutOfMemory& e) {
    *fault = {serve::Status::kOom, stage, e.what()};
  } catch (const TransientFetchError& e) {
    *fault = {serve::Status::kTransientFetch, serve::ChaosSite::kGather,
              e.what()};
  }
  st.rep->batches[b].fault_events += 1;
  st.rep->fault_events += 1;
  return false;
}

namespace {

void record_step(ServingReport& rep, const std::vector<std::size_t>& members,
                 const serve::DegradationStep& step) {
  for (std::size_t idx : members) rep.outcomes[idx].trace.push_back(step);
}

void charge_backoff(ServingReport& rep, std::size_t b, std::uint64_t wait) {
  rep.ledger.add("backoff", wait);
  rep.batches[b].backoff_cycles += wait;
  rep.backoff_cycles += wait;
}

/// Builds the per-stream timeline from the measured stage costs and folds
/// the schedule into the report: makespan, per-stage exposed/overlapped
/// splits, per-batch latencies, cache totals. Backoff waits ride each
/// batch's sample (host) span and open-loop batches carry their release
/// cycle, so Sigma exposed + idle == makespan holds under both recovery and
/// arrival gaps (idle == 0 whenever every release is 0).
void fold_timeline(ServingReport& rep, bool pipelined) {
  const std::size_t nb = rep.batches.size();
  std::vector<BatchStageCycles> stage_cycles(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    BatchStats& bs = rep.batches[b];
    bs.cycles = bs.sample_cycles + bs.gather.cycles + bs.forward_cycles +
                bs.backoff_cycles;
    stage_cycles[b] = {bs.sample_cycles + bs.backoff_cycles, bs.gather.cycles,
                       bs.forward_cycles, bs.release_cycle};
  }
  const StreamTimeline tl = serve_timeline(stage_cycles, pipelined);
  rep.timeline = tl.spans();
  rep.total_cycles = tl.makespan();
  rep.serial_cycles = rep.ledger.total();
  rep.idle_cycles = tl.idle_cycles();

  for (std::size_t b = 0; b < nb; ++b) {
    BatchStats& bs = rep.batches[b];
    const StageSpan& s = rep.timeline[3 * b + std::size_t(kSampleStream)];
    const StageSpan& f = rep.timeline[3 * b + std::size_t(kForwardStream)];
    bs.latency_cycles = f.end - s.start;
    rep.sample_cycles += bs.sample_cycles;
    rep.gather_cycles += bs.gather.cycles;
    rep.forward_cycles += bs.forward_cycles;
    rep.max_batch_cycles = std::max(rep.max_batch_cycles, bs.latency_cycles);
    rep.cache_hits += bs.gather.hits;
    rep.cache_misses += bs.gather.misses;
    rep.cache_evictions += bs.gather.evictions;
    rep.cache_hit_bytes += bs.gather.hit_bytes;
    rep.cache_miss_bytes += bs.gather.miss_bytes;
    rep.cache_insert_bytes += bs.gather.insert_bytes;
  }
  for (const StageSpan& span : rep.timeline) {
    StageSplit& split = span.stream == kSampleStream   ? rep.sample_split
                        : span.stream == kGatherStream ? rep.gather_split
                                                       : rep.forward_split;
    split.cycles += span.cycles();
    split.exposed += span.exposed;
    split.overlapped += span.overlapped;
  }
}

}  // namespace

void InferenceServer::recover_batch(ServeState& st, std::size_t b,
                                    const std::vector<std::size_t>& members,
                                    StageFault fault) const {
  ServingReport& rep = *st.rep;
  // Rung 0: whole-batch retries with exponential backoff — cures transient
  // fetches whose scheduled failures run out.
  for (int attempt = 1; attempt <= opts_.retry.max_retries; ++attempt) {
    const std::uint64_t wait = backoff_for(opts_.retry, attempt);
    charge_backoff(rep, b, wait);
    record_step(rep, members,
                {serve::ServeAction::kRetry, fault.status, fault.site,
                 attempt, wait});
    if (try_group(st, members, GroupMode{}, b, &fault)) return;
  }
  if (members.size() == 1) {
    singleton_ladder(st, b, members[0], fault, opts_.retry.max_retries);
    return;
  }
  bisect(st, b, members, fault);
}

void InferenceServer::bisect(ServeState& st, std::size_t b,
                             const std::vector<std::size_t>& group,
                             StageFault fault) const {
  // Shrink the batch: split in half and re-run each side immediately (no
  // backoff — the fault is isolated spatially, not waited out). A half with
  // no poisoned member completes here; a faulted half keeps halving until
  // the poison is alone.
  const std::size_t mid = group.size() / 2;
  const std::vector<std::size_t> halves[2] = {
      {group.begin(), group.begin() + long(mid)},
      {group.begin() + long(mid), group.end()}};
  for (const std::vector<std::size_t>& half : halves) {
    record_step(*st.rep, half,
                {serve::ServeAction::kIsolate, fault.status, fault.site, 0,
                 0});
    StageFault hf = fault;
    if (try_group(st, half, GroupMode{}, b, &hf)) continue;
    if (half.size() == 1) {
      singleton_ladder(st, b, half[0], hf, opts_.retry.max_retries);
    } else {
      bisect(st, b, half, hf);
    }
  }
}

void InferenceServer::singleton_ladder(ServeState& st, std::size_t b,
                                       std::size_t idx, StageFault fault,
                                       int attempt_base) const {
  ServingReport& rep = *st.rep;
  const std::vector<std::size_t> solo = {idx};

  // Rung: truncate fanouts — halved neighborhoods, smaller blocks.
  int attempt = attempt_base + 1;
  std::uint64_t wait = backoff_for(opts_.retry, attempt);
  charge_backoff(rep, b, wait);
  record_step(rep, solo,
              {serve::ServeAction::kTruncateFanouts, fault.status, fault.site,
               attempt, wait});
  if (try_group(st, solo, GroupMode{.truncated = true}, b, &fault)) return;

  // Rung: safe mode — cache bypass + the safe default backend (still
  // truncated; the ladder is cumulative).
  attempt += 1;
  wait = backoff_for(opts_.retry, attempt);
  charge_backoff(rep, b, wait);
  record_step(rep, solo,
              {serve::ServeAction::kSafeMode, fault.status, fault.site,
               attempt, wait});
  if (try_group(st, solo, GroupMode{.truncated = true, .safe = true}, b,
                &fault)) {
    return;
  }

  // Off the ladder: the request is truly poisoned.
  serve::RequestOutcome& o = rep.outcomes[idx];
  o.status = fault.status;
  o.error = fault.message;
  rep.predictions[idx].clear();
}

ServingReport InferenceServer::serve(
    std::span<const SeedRequest> requests) const {
  if (sharded()) return serve_sharded(requests);
  if (!opts_.tenants.empty()) return serve_scheduled(requests);
  ServingReport rep;
  rep.num_requests = int(requests.size());
  rep.pipelined = opts_.pipeline;
  rep.predictions.resize(requests.size());
  rep.outcomes.resize(requests.size());

  // Boundary validation: invalid requests are rejected per-request, never
  // handed to the sampler.
  std::vector<std::size_t> valid;
  valid.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    std::string err = serve_detail::validate_request(requests[r], csr_.num_rows);
    if (err.empty()) {
      valid.push_back(r);
    } else {
      rep.outcomes[r].status = serve::Status::kRejected;
      rep.outcomes[r].error = std::move(err);
    }
  }

  const std::size_t bsz = std::size_t(opts_.batch_size);
  const std::size_t nb = (valid.size() + bsz - 1) / bsz;
  rep.num_batches = int(nb);
  rep.batches.resize(nb);
  std::vector<std::vector<std::size_t>> batches(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    batches[b].assign(valid.begin() + long(b * bsz),
                      valid.begin() + long(std::min((b + 1) * bsz,
                                                    valid.size())));
    rep.batches[b].num_requests = int(batches[b].size());
  }

  const ModelConfig cfg =
      model_config_for(opts_.model_kind, in_dim_, ds_->num_classes);

  ServeState st;
  st.requests = requests;
  st.rep = &rep;
  st.cfg = &cfg;
  st.ctx.dev = &dev_;
  st.ctx.ledger = &rep.ledger;
  st.ctx.training = false;  // dropout is identity at serving time
  st.gather_attempts.assign(requests.size(), 0);
  if (policy_ == serve::CachePolicy::kClock) st.clock_txns.emplace_back(cache_);
  st.mem = mem_;

  if (!opts_.pipeline) {
    for (std::size_t b = 0; b < nb; ++b) {
      StageFault fault;
      if (!try_group(st, batches[b], GroupMode{}, b, &fault)) {
        recover_batch(st, b, batches[b], fault);
      }
    }
  } else if (nb > 0) {
    // Three-slot software pipeline: while batch b forwards, batch b + 1 is
    // sampled and gathered. A fault in either phase drops the batch out of
    // the pipeline into the recovery ladder (which re-runs it whole, same
    // attempt sequence as serial mode — the chaos schedule keys on trace
    // indices, so outcomes and charges match serial bit for bit); the
    // pipeline continues with its neighbors.
    auto prepare_phase =
        [&](std::size_t b) -> std::optional<PreparedGroup> {
      serve::ChaosSite stage = serve::ChaosSite::kSample;
      try {
        return prepare_group(st, batches[b], GroupMode{}, b, &stage);
      } catch (const gpusim::DeviceOutOfMemory& e) {
        rep.batches[b].fault_events += 1;
        rep.fault_events += 1;
        recover_batch(st, b, batches[b],
                      {serve::Status::kOom, stage, e.what()});
      } catch (const TransientFetchError& e) {
        rep.batches[b].fault_events += 1;
        rep.fault_events += 1;
        recover_batch(st, b, batches[b],
                      {serve::Status::kTransientFetch,
                       serve::ChaosSite::kGather, e.what()});
      }
      return std::nullopt;
    };

    std::optional<PreparedGroup> next = prepare_phase(0);
    for (std::size_t b = 0; b < nb; ++b) {
      std::optional<PreparedGroup> cur = std::move(next);
      next.reset();
      if (b + 1 < nb) next = prepare_phase(b + 1);
      if (cur.has_value()) {
        StageFault fault;
        if (!forward_or_fault(st, *cur, &fault)) {
          cur.reset();  // release the faulted attempt's staging first
          recover_batch(st, b, batches[b], fault);
        }
      }
    }
  }

  fold_timeline(rep, opts_.pipeline);

  // Queue/service attribution against the schedule actually reported: the
  // closed-loop convention is that every request "arrived" at its
  // arrival_cycle (usually 0) and queued until its batch's sample span
  // started. Rejected requests keep 0/0.
  for (std::size_t b = 0; b < nb; ++b) {
    const StageSpan& s = rep.timeline[3 * b + std::size_t(kSampleStream)];
    const StageSpan& f = rep.timeline[3 * b + std::size_t(kForwardStream)];
    for (std::size_t idx : batches[b]) {
      serve::RequestOutcome& o = rep.outcomes[idx];
      const std::uint64_t arrival = requests[idx].arrival_cycle;
      o.queue_cycles = s.start > arrival ? s.start - arrival : 0;
      o.service_cycles = f.end - s.start;
    }
  }
  return rep;
}

ServingReport InferenceServer::serve_scheduled(
    std::span<const SeedRequest> requests) const {
  ServingReport rep;
  rep.num_requests = int(requests.size());
  rep.pipelined = opts_.pipeline;
  rep.predictions.resize(requests.size());
  rep.outcomes.resize(requests.size());

  const int num_tenants = int(opts_.tenants.size());
  std::vector<int> tenant_of(requests.size(), -1);

  // Boundary validation, extended with the tenant-range check. A request
  // naming a tenant outside the table is rejected and attributed to no
  // tenant's report.
  std::vector<std::size_t> valid;
  valid.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const bool tenant_ok =
        requests[r].tenant >= 0 && requests[r].tenant < num_tenants;
    if (tenant_ok) tenant_of[r] = requests[r].tenant;
    std::string err = !tenant_ok
                          ? "tenant " + std::to_string(requests[r].tenant) +
                                " out of range [0, " +
                                std::to_string(num_tenants) + ")"
                          : serve_detail::validate_request(requests[r], csr_.num_rows);
    if (err.empty()) {
      valid.push_back(r);
    } else {
      rep.outcomes[r].status = serve::Status::kRejected;
      rep.outcomes[r].error = std::move(err);
    }
  }

  // Feed the scheduler in deterministic arrival order — (arrival, trace
  // index), so an unsorted trace behaves identically to its sorted self and
  // the per-tenant queues stay FIFO in arrival order.
  std::vector<std::size_t> order = valid;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_cycle <
                            requests[b].arrival_cycle;
                   });
  serve::TenantScheduler sched(opts_.tenants, opts_.scheduler,
                               opts_.batch_size);
  for (std::size_t r : order) {
    sched.enqueue(r, requests[r].tenant, requests[r].arrival_cycle);
  }

  // Per-tenant model configs: tenants share the feature table (and its
  // input width) but each runs its own architecture.
  std::vector<ModelConfig> cfgs;
  cfgs.reserve(std::size_t(num_tenants));
  for (const serve::TenantSpec& t : opts_.tenants) {
    cfgs.push_back(model_config_for(t.model_kind, in_dim_, ds_->num_classes));
  }

  ServeState st;
  st.requests = requests;
  st.rep = &rep;
  st.ctx.dev = &dev_;
  st.ctx.ledger = &rep.ledger;
  st.ctx.training = false;
  st.gather_attempts.assign(requests.size(), 0);
  if (policy_ == serve::CachePolicy::kClock) {
    if (!tenant_caches_.empty()) {
      for (const FeatureCache& c : tenant_caches_) {
        st.clock_txns.emplace_back(c);
      }
    } else {
      st.clock_txns.emplace_back(cache_);
    }
  }
  st.mem = mem_;

  // Discrete-event decision loop on the serial completion clock: the
  // scheduler cuts the next batch from what has arrived by `now`, the batch
  // runs (with its tenant's config; a fault walks the same ladder as the
  // legacy path, inside the batch's tenant), and the clock advances past
  // its measured service — recovery time included, which is exactly how a
  // degraded batch pressures the queues behind it. Pipelined mode replays
  // the identical committed batch sequence on the overlapped timeline, so
  // every per-request observable (predictions, status, trace, queue and
  // service cycles) is mode-invariant by construction.
  std::uint64_t now = 0;
  while (std::optional<serve::TenantScheduler::BatchPlan> plan =
             sched.next_batch(now)) {
    const std::size_t b = rep.batches.size();
    rep.batches.emplace_back();
    {
      BatchStats& bs = rep.batches[b];
      bs.num_requests = int(plan->members.size());
      bs.tenant = plan->tenant;
      bs.release_cycle = plan->cut_cycle;
    }
    st.tenant = &opts_.tenants[std::size_t(plan->tenant)];
    st.tenant_idx = plan->tenant;
    st.cfg = &cfgs[std::size_t(plan->tenant)];
    StageFault fault;
    if (!try_group(st, plan->members, GroupMode{}, b, &fault)) {
      recover_batch(st, b, plan->members, fault);
    }
    const BatchStats& bs = rep.batches[b];
    const std::uint64_t service = bs.sample_cycles + bs.gather.cycles +
                                  bs.forward_cycles + bs.backoff_cycles;
    const std::uint64_t start = std::max(now, plan->cut_cycle);
    for (std::size_t idx : plan->members) {
      serve::RequestOutcome& o = rep.outcomes[idx];
      const std::uint64_t arrival = requests[idx].arrival_cycle;
      o.queue_cycles = start > arrival ? start - arrival : 0;
      o.service_cycles = service;
    }
    sched.observe(plan->tenant, int(plan->members.size()), service);
    now = start + service;
  }
  rep.num_batches = int(rep.batches.size());
  rep.peak_queue_depth = sched.peak_queue_depth();

  // Requests shed at admission (SchedulerOptions::max_queue_depth /
  // shed_unmeetable) were never batched: they report kRejected like any
  // other boundary refusal, with zero queue/service attribution, and tile
  // with served + degraded + failed in the tenant reports.
  for (const serve::TenantScheduler::ShedEvent& e : sched.shed_events()) {
    rep.outcomes[e.index].status = serve::Status::kRejected;
    rep.outcomes[e.index].error =
        e.unmeetable ? "shed at admission: estimated service exceeds the "
                       "tenant SLO even served alone"
                     : "shed at admission: tenant queue at max_queue_depth";
  }

  fold_timeline(rep, opts_.pipeline);
  rep.tenants =
      serve::make_tenant_reports(opts_.tenants, tenant_of, rep.outcomes);
  return rep;
}

}  // namespace gnnone
