#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/convert.h"
#include "sample/sampler.h"

namespace gnnone {

InferenceServer::InferenceServer(const Dataset& ds,
                                 const gpusim::DeviceSpec& dev,
                                 const ServeOptions& opts)
    : ds_(&ds),
      dev_(&dev),
      opts_(opts),
      in_dim_(opts.feature_dim_override > 0 ? opts.feature_dim_override
                                            : ds.input_feat_len),
      csr_(coo_to_csr(ds.coo)),
      cache_(ds.coo, in_dim_, opts.cache_alpha, dev),
      features_(make_features(ds.coo.num_rows, in_dim_,
                              ds.labeled ? ds.labels : std::vector<int>{},
                              opts.seed)) {
  if (opts.batch_size < 1) {
    throw std::invalid_argument("InferenceServer: batch_size must be >= 1");
  }
}

ServingReport InferenceServer::serve(
    std::span<const SeedRequest> requests) const {
  ServingReport rep;
  rep.num_requests = int(requests.size());
  rep.predictions.resize(requests.size());

  const ModelConfig cfg =
      model_config_for(opts_.model_kind, in_dim_, ds_->num_classes);

  OpContext ctx;
  ctx.dev = dev_;
  ctx.ledger = &rep.ledger;
  ctx.training = false;  // dropout is identity at serving time

  for (std::size_t first = 0; first < requests.size();
       first += std::size_t(opts_.batch_size)) {
    const std::size_t last =
        std::min(first + std::size_t(opts_.batch_size), requests.size());
    const std::uint64_t batch_index = rep.num_batches++;
    BatchStats bs;
    bs.num_requests = int(last - first);
    const std::uint64_t batch_before = rep.ledger.total();

    // Union of the batch's seeds, first appearance keeping the lower slot —
    // the sampler interns in this order, so seed_local finds every request's
    // rows in the block.
    std::vector<vid_t> seeds;
    for (std::size_t r = first; r < last; ++r) {
      for (vid_t s : requests[r].seeds) {
        if (std::find(seeds.begin(), seeds.end(), s) == seeds.end()) {
          seeds.push_back(s);
        }
      }
    }
    bs.num_seeds = vid_t(seeds.size());

    // Stage 1: sample the k-hop block. The sampler reports the adjacency
    // bytes it scanned; charge them at DRAM bandwidth as one launch.
    SampleOptions so;
    so.fanouts = opts_.fanouts;
    so.seed = opts_.seed + batch_index;
    const SampledSubgraph sub = sample_khop(csr_, seeds, so);
    bs.num_vertices = sub.num_vertices();
    bs.num_edges = sub.coo.nnz();
    bs.sample_cycles =
        2000 + std::uint64_t(std::ceil(double(sub.bytes_touched) /
                                       dev_->dram_bytes_per_cycle));
    rep.ledger.add("sample", bs.sample_cycles);

    // Stage 2: gather input features through the cache.
    bs.gather = cache_.gather(sub.vertices, &rep.ledger, &rep.bytes);

    // Stage 3: one forward pass over the sampled block.
    const std::uint64_t fwd_before = rep.ledger.total();
    std::vector<float> x_data(std::size_t(bs.num_vertices) *
                              std::size_t(in_dim_));
    for (vid_t lv = 0; lv < bs.num_vertices; ++lv) {
      const auto src = std::size_t(sub.vertices[std::size_t(lv)]) *
                       std::size_t(in_dim_);
      std::copy_n(features_.begin() + long(src), in_dim_,
                  x_data.begin() + long(std::size_t(lv) * std::size_t(in_dim_)));
    }
    const VarPtr x =
        make_var(Tensor::from(bs.num_vertices, in_dim_, std::move(x_data)));

    SparseEngine engine(opts_.backend, sub.coo, *dev_);
    engine.set_tuning_cache(opts_.tuning_cache);
    engine.set_online_tune(opts_.online_tune);
    const auto model = make_model(opts_.model_kind, engine, cfg);
    const VarPtr logp = model->forward(ctx, engine, x, opts_.seed);
    bs.forward_cycles = rep.ledger.total() - fwd_before;

    // Predictions: seeds hold local ids 0..num_seeds in union order.
    for (std::size_t r = first; r < last; ++r) {
      auto& out = rep.predictions[r];
      out.reserve(requests[r].seeds.size());
      for (vid_t s : requests[r].seeds) {
        const auto lv = vid_t(
            std::find(seeds.begin(), seeds.end(), s) - seeds.begin());
        int best = 0;
        for (std::int64_t c = 1; c < logp->value.cols(); ++c) {
          if (logp->value.at(lv, c) > logp->value.at(lv, best)) best = int(c);
        }
        out.push_back(best);
      }
    }

    bs.cycles = rep.ledger.total() - batch_before;
    rep.sample_cycles += bs.sample_cycles;
    rep.gather_cycles += bs.gather.cycles;
    rep.forward_cycles += bs.forward_cycles;
    rep.max_batch_cycles = std::max(rep.max_batch_cycles, bs.cycles);
    rep.cache_hits += bs.gather.hits;
    rep.cache_misses += bs.gather.misses;
    rep.cache_hit_bytes += bs.gather.hit_bytes;
    rep.cache_miss_bytes += bs.gather.miss_bytes;
    rep.batches.push_back(bs);
  }
  rep.total_cycles = rep.ledger.total();
  return rep;
}

}  // namespace gnnone
