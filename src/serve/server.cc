#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/convert.h"

namespace gnnone {

InferenceServer::InferenceServer(const Dataset& ds,
                                 const gpusim::DeviceSpec& dev,
                                 const ServeOptions& opts)
    : ds_(&ds),
      dev_(&dev),
      opts_(opts),
      in_dim_(opts.feature_dim_override > 0 ? opts.feature_dim_override
                                            : ds.input_feat_len),
      csr_(coo_to_csr(ds.coo)),
      cache_(ds.coo, in_dim_, opts.cache_alpha, dev),
      features_(make_features(ds.coo.num_rows, in_dim_,
                              ds.labeled ? ds.labels : std::vector<int>{},
                              opts.seed)) {
  if (opts.batch_size < 1) {
    throw std::invalid_argument("InferenceServer: batch_size must be >= 1");
  }
}

struct InferenceServer::PreparedBatch {
  std::size_t first = 0, last = 0;  // request range [first, last)
  /// Per block row: the global vertex whose features the row carries.
  std::vector<vid_t> block_vertices;
  /// Per request (relative to `first`): row of its block's first seed; the
  /// request's seeds occupy rows seed_row[r] + j in request-seed order
  /// (sample_khop interns seeds first, duplicates collapsing onto their
  /// first occurrence — see seed_rows).
  std::vector<std::vector<vid_t>> seed_rows;
  Coo coo;  // block-diagonal composition of the per-request blocks
  BatchStats bs;
};

InferenceServer::PreparedBatch InferenceServer::prepare_batch(
    std::span<const SeedRequest> requests, std::size_t first,
    std::size_t last, SamplerScratch& scratch, ServingReport& rep) const {
  PreparedBatch pb;
  pb.first = first;
  pb.last = last;
  pb.bs.num_requests = int(last - first);

  // Stage 1: sample every request's k-hop block independently. The stream
  // seed is the trace seed alone — per-(seed, hop, vertex) streams inside
  // the sampler — never the batch index, so a request's block is a pure
  // function of its own seed set and predictions cannot depend on which
  // batch the request lands in.
  SampleOptions so;
  so.fanouts = opts_.fanouts;
  so.seed = opts_.seed;

  std::size_t bytes_touched = 0;
  for (std::size_t r = first; r < last; ++r) {
    const SampledSubgraph sub = sample_khop(csr_, requests[r].seeds, so,
                                            &scratch);
    const vid_t base = vid_t(pb.block_vertices.size());

    // Request seed j -> its block row. sample_khop assigns seeds local ids
    // 0..num_seeds in first-appearance order, so a duplicated seed within a
    // request maps back onto its first occurrence's row.
    std::vector<vid_t> rows;
    rows.reserve(requests[r].seeds.size());
    vid_t next = 0;
    for (std::size_t j = 0; j < requests[r].seeds.size(); ++j) {
      vid_t local = vid_t(-1);
      for (std::size_t k = 0; k < j; ++k) {
        if (requests[r].seeds[k] == requests[r].seeds[j]) {
          local = rows[k] - base;
          break;
        }
      }
      rows.push_back(base + (local >= 0 ? local : next++));
    }
    pb.seed_rows.push_back(std::move(rows));
    pb.bs.num_seeds += sub.num_seeds();

    // Block-diagonal append: each per-request block is CSR-arranged over its
    // own local ids, and bases increase monotonically, so the concatenation
    // stays CSR-arranged and every component keeps its exact within-row NZE
    // order — the property that makes the batched forward bit-identical to
    // per-request forwards.
    pb.block_vertices.insert(pb.block_vertices.end(), sub.vertices.begin(),
                             sub.vertices.end());
    pb.coo.row.reserve(pb.coo.row.size() + sub.coo.row.size());
    pb.coo.col.reserve(pb.coo.col.size() + sub.coo.col.size());
    for (vid_t v : sub.coo.row) pb.coo.row.push_back(base + v);
    for (vid_t v : sub.coo.col) pb.coo.col.push_back(base + v);
    bytes_touched += sub.bytes_touched;
  }
  pb.coo.num_rows = pb.coo.num_cols = vid_t(pb.block_vertices.size());
  pb.bs.num_vertices = pb.coo.num_rows;
  pb.bs.num_edges = pb.coo.nnz();

  // The sampler reports the adjacency bytes it scanned; charge them at DRAM
  // bandwidth as one launch per batch.
  pb.bs.sample_cycles =
      2000 + std::uint64_t(std::ceil(double(bytes_touched) /
                                     dev_->dram_bytes_per_cycle));
  rep.ledger.add("sample", pb.bs.sample_cycles);

  // Stage 2: gather input features through the cache. Requests in a batch
  // often sample the same hub vertices; the physical fetch happens once per
  // distinct vertex (an O(1)-lookup map built once per batch), replicating
  // rows on device afterwards is free in this first-order model.
  std::unordered_map<vid_t, vid_t> gather_slot;
  gather_slot.reserve(pb.block_vertices.size());
  std::vector<vid_t> unique_vertices;
  unique_vertices.reserve(pb.block_vertices.size());
  for (vid_t g : pb.block_vertices) {
    if (gather_slot.try_emplace(g, vid_t(unique_vertices.size())).second) {
      unique_vertices.push_back(g);
    }
  }
  pb.bs.num_unique_vertices = vid_t(unique_vertices.size());
  pb.bs.gather = cache_.gather(unique_vertices, &rep.ledger, &rep.bytes);
  return pb;
}

void InferenceServer::forward_batch(const PreparedBatch& pb,
                                    std::span<const SeedRequest> requests,
                                    const ModelConfig& cfg,
                                    const OpContext& ctx,
                                    ServingReport& rep) const {
  const std::uint64_t fwd_before = rep.ledger.total();
  const vid_t n = pb.bs.num_vertices;
  std::vector<float> x_data(std::size_t(n) * std::size_t(in_dim_));
  for (vid_t lv = 0; lv < n; ++lv) {
    const auto src = std::size_t(pb.block_vertices[std::size_t(lv)]) *
                     std::size_t(in_dim_);
    std::copy_n(features_.begin() + long(src), in_dim_,
                x_data.begin() + long(std::size_t(lv) * std::size_t(in_dim_)));
  }
  const VarPtr x = make_var(Tensor::from(n, in_dim_, std::move(x_data)));

  SparseEngine engine(opts_.backend, pb.coo, *dev_);
  engine.set_tuning_cache(opts_.tuning_cache);
  engine.set_online_tune(opts_.online_tune);
  const auto model = make_model(opts_.model_kind, engine, cfg);
  const VarPtr logp = model->forward(ctx, engine, x, opts_.seed);

  for (std::size_t r = pb.first; r < pb.last; ++r) {
    auto& out = rep.predictions[r];
    out.reserve(requests[r].seeds.size());
    for (const vid_t lv : pb.seed_rows[r - pb.first]) {
      int best = 0;
      for (std::int64_t c = 1; c < logp->value.cols(); ++c) {
        if (logp->value.at(lv, c) > logp->value.at(lv, best)) best = int(c);
      }
      out.push_back(best);
    }
  }
  // forward_batch charges the ledger contiguously, so the delta is this
  // batch's forward cost even when prepare_batch calls interleave.
  rep.batches[std::size_t(pb.first / std::size_t(opts_.batch_size))]
      .forward_cycles = rep.ledger.total() - fwd_before;
}

ServingReport InferenceServer::serve(
    std::span<const SeedRequest> requests) const {
  ServingReport rep;
  rep.num_requests = int(requests.size());
  rep.pipelined = opts_.pipeline;
  rep.predictions.resize(requests.size());

  const std::size_t bsz = std::size_t(opts_.batch_size);
  const std::size_t nb = (requests.size() + bsz - 1) / bsz;
  rep.num_batches = int(nb);
  rep.batches.resize(nb);

  const ModelConfig cfg =
      model_config_for(opts_.model_kind, in_dim_, ds_->num_classes);

  OpContext ctx;
  ctx.dev = dev_;
  ctx.ledger = &rep.ledger;
  ctx.training = false;  // dropout is identity at serving time

  SamplerScratch scratch;  // intern table reused across every batch
  auto finish_prepare = [&](PreparedBatch pb) {
    rep.batches[pb.first / bsz] = pb.bs;
    return pb;
  };
  auto range_of = [&](std::size_t b) {
    return std::pair<std::size_t, std::size_t>{
        b * bsz, std::min((b + 1) * bsz, requests.size())};
  };

  if (!opts_.pipeline) {
    for (std::size_t b = 0; b < nb; ++b) {
      const auto [first, last] = range_of(b);
      const PreparedBatch pb =
          finish_prepare(prepare_batch(requests, first, last, scratch, rep));
      forward_batch(pb, requests, cfg, ctx, rep);
    }
  } else if (nb > 0) {
    // Three-slot software pipeline: while batch b forwards, batch b + 1 is
    // sampled and gathered. The computation is identical to serial mode —
    // only the schedule (and therefore the cycle composition) changes.
    const auto [f0, l0] = range_of(0);
    PreparedBatch next =
        finish_prepare(prepare_batch(requests, f0, l0, scratch, rep));
    for (std::size_t b = 0; b < nb; ++b) {
      const PreparedBatch cur = std::move(next);
      if (b + 1 < nb) {
        const auto [first, last] = range_of(b + 1);
        next =
            finish_prepare(prepare_batch(requests, first, last, scratch, rep));
      }
      forward_batch(cur, requests, cfg, ctx, rep);
    }
  }

  // Build the per-stream timeline from the measured stage costs and fold
  // the schedule into the report.
  std::vector<BatchStageCycles> stage_cycles(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    BatchStats& bs = rep.batches[b];
    bs.cycles = bs.sample_cycles + bs.gather.cycles + bs.forward_cycles;
    stage_cycles[b] = {bs.sample_cycles, bs.gather.cycles, bs.forward_cycles};
  }
  const StreamTimeline tl = serve_timeline(stage_cycles, opts_.pipeline);
  rep.timeline = tl.spans();
  rep.total_cycles = tl.makespan();
  rep.serial_cycles = rep.ledger.total();

  for (std::size_t b = 0; b < nb; ++b) {
    BatchStats& bs = rep.batches[b];
    const StageSpan& s = rep.timeline[3 * b + std::size_t(kSampleStream)];
    const StageSpan& f = rep.timeline[3 * b + std::size_t(kForwardStream)];
    bs.latency_cycles = f.end - s.start;
    rep.sample_cycles += bs.sample_cycles;
    rep.gather_cycles += bs.gather.cycles;
    rep.forward_cycles += bs.forward_cycles;
    rep.max_batch_cycles = std::max(rep.max_batch_cycles, bs.latency_cycles);
    rep.cache_hits += bs.gather.hits;
    rep.cache_misses += bs.gather.misses;
    rep.cache_hit_bytes += bs.gather.hit_bytes;
    rep.cache_miss_bytes += bs.gather.miss_bytes;
  }
  for (const StageSpan& span : rep.timeline) {
    StageSplit& split = span.stream == kSampleStream   ? rep.sample_split
                        : span.stream == kGatherStream ? rep.gather_split
                                                       : rep.forward_split;
    split.cycles += span.cycles();
    split.exposed += span.exposed;
    split.overlapped += span.overlapped;
  }
  return rep;
}

}  // namespace gnnone
