// Shared error taxonomy for the serving and training paths.
//
// A production inference tier cannot treat "the run threw" as its only
// failure mode: a request either completes cleanly, completes in a degraded
// mode, or fails for a *reason* that the caller (and the chaos harness) can
// act on. Every per-request outcome in ServingReport carries one of these
// statuses, and TrainResult maps its legacy fail_reason strings onto the
// same taxonomy so the two harnesses report failures in one vocabulary.
//
// Header-only on purpose: gnn/train.h includes this from a library that the
// serve library itself links against, so the taxonomy must not drag any
// serve-side code with it.
#pragma once

#include <string>

namespace gnnone::serve {

/// Outcome of one unit of served (or trained) work.
enum class Status {
  kOk,             // served cleanly, no degradation
  kOom,            // device allocation failed beyond what the ladder cures
  kTransientFetch, // host->device feature fetch kept faulting past retries
  kKernelFault,    // simsan-style kernel fault not cured by the safe backend
  kRejected,       // invalid input, refused at the server boundary
  kDegraded,       // served, but through a degraded mode (see the trace)
};

constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:             return "ok";
    case Status::kOom:            return "oom";
    case Status::kTransientFetch: return "transient_fetch";
    case Status::kKernelFault:    return "kernel_fault";
    case Status::kRejected:       return "rejected";
    case Status::kDegraded:       return "degraded";
  }
  return "unknown";
}

/// A request with this status produced predictions (cleanly or degraded).
constexpr bool is_served(Status s) {
  return s == Status::kOk || s == Status::kDegraded;
}

/// Mapping from TrainResult::fail_reason's legacy strings. "diverged" is a
/// poisoned computation — the closest taxon is a kernel fault; "unsupported"
/// is an admission refusal, i.e. a rejection.
inline Status status_from_fail_reason(const std::string& reason) {
  if (reason.empty()) return Status::kOk;
  if (reason == "OOM") return Status::kOom;
  if (reason == "diverged") return Status::kKernelFault;
  if (reason == "unsupported") return Status::kRejected;
  return Status::kKernelFault;
}

}  // namespace gnnone::serve
