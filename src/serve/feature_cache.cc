#include "serve/feature_cache.h"

#include <algorithm>
#include <cmath>

#include "graph/convert.h"
#include "serve/chaos.h"

namespace gnnone {

FeatureCache::FeatureCache(const Coo& graph, int feat_len, double alpha,
                           const gpusim::DeviceSpec& dev)
    : dev_(&dev),
      feat_len_(feat_len),
      alpha_(std::clamp(alpha, 0.0, 1.0)),
      cached_(std::size_t(graph.num_rows), 0) {
  const vid_t n = graph.num_rows;
  num_cached_ = vid_t(std::clamp<long long>(
      std::llround(alpha_ * double(n)), 0ll, (long long)(n)));
  if (num_cached_ == 0) return;

  const auto deg = row_lengths(graph);
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[std::size_t(v)] = v;
  // Full sort (not nth_element) so the cached set is deterministic and
  // matches the request generator's hot-set ordering exactly.
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    if (deg[std::size_t(a)] != deg[std::size_t(b)]) {
      return deg[std::size_t(a)] > deg[std::size_t(b)];
    }
    return a < b;
  });
  for (vid_t i = 0; i < num_cached_; ++i) {
    cached_[std::size_t(order[std::size_t(i)])] = 1;
  }
}

GatherStats FeatureCache::gather(std::span<const vid_t> vertices,
                                 CycleLedger* cycles, MemoryLedger* bytes,
                                 std::span<const GatherProbe> probes,
                                 bool bypass_cache) const {
  // Fault check first: an armed transient fetch fails the whole copy before
  // any cycles or bytes are charged, so a retried gather double-charges
  // nothing. The fate is a pure function of (seed, key); `attempt` only
  // indexes into the per-key failing-attempt count, so which batch the key
  // rides in cannot change its outcome.
  if (fetch_rate_ > 0.0) {
    for (const GatherProbe& p : probes) {
      const serve::FetchFate f = serve::fetch_fate(fetch_rate_, fetch_seed_, p.key);
      if (f.poisoned && p.attempt < f.failing_attempts) {
        throw TransientFetchError(p.key, p.attempt + 1);
      }
    }
  }
  GatherStats st;
  for (vid_t v : vertices) {
    if (!bypass_cache && cached(v)) {
      ++st.hits;
      st.hit_bytes += row_bytes();
    } else {
      ++st.misses;
      st.miss_bytes += row_bytes();
    }
  }
  // One gather launch; hit rows stream at DRAM bandwidth, miss rows at PCIe
  // bandwidth. The two transfers overlap with neither each other nor the
  // launch in this first-order model, matching dense_cost's structure.
  st.cycles = 2000 +
              std::uint64_t(
                  std::ceil(double(st.hit_bytes) / dev_->dram_bytes_per_cycle)) +
              std::uint64_t(std::ceil(double(st.miss_bytes) /
                                      dev_->pcie_bytes_per_cycle));
  if (cycles != nullptr) cycles->add("feature_gather", st.cycles);
  if (bytes != nullptr) {
    bytes->add("feature_cache_hit", st.hit_bytes);
    bytes->add("feature_cache_miss", st.miss_bytes);
  }
  return st;
}

}  // namespace gnnone
