#include "serve/feature_cache.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/convert.h"
#include "serve/chaos.h"

namespace gnnone {

FeatureCache::FeatureCache(const Coo& graph, int feat_len, double alpha,
                           const gpusim::DeviceSpec& dev,
                           std::size_t elem_bytes)
    : FeatureCache(graph, feat_len, alpha, dev,
                   CacheConfig{serve::CachePolicy::kDegree, elem_bytes, -1}) {}

FeatureCache::FeatureCache(const Coo& graph, int feat_len, double alpha,
                           const gpusim::DeviceSpec& dev,
                           const CacheConfig& cfg,
                           std::span<const vid_t> pin_order)
    : dev_(dev),
      feat_len_(feat_len),
      elem_bytes_(cfg.elem_bytes),
      alpha_(std::clamp(alpha, 0.0, 1.0)),
      policy_(cfg.policy),
      cached_(std::size_t(graph.num_rows), 0) {
  if (policy_ == serve::CachePolicy::kAuto) {
    throw std::invalid_argument(
        "FeatureCache: kAuto must be resolved to a concrete policy before "
        "cache construction");
  }
  if (elem_bytes_ == 0) {
    throw std::invalid_argument("FeatureCache: elem_bytes must be positive");
  }
  const vid_t n = graph.num_rows;
  num_cached_ = cfg.capacity_override >= 0 ? std::min(cfg.capacity_override, n)
                                           : capacity_for(n, alpha_);

  std::vector<vid_t> owned_order;
  std::span<const vid_t> order = pin_order;
  if (order.empty() &&
      (num_cached_ > 0 || policy_ == serve::CachePolicy::kClock)) {
    owned_order = serve::degree_order(graph);
    order = owned_order;
  }
  if (!order.empty() && vid_t(order.size()) < n) {
    throw std::invalid_argument(
        "FeatureCache: pin_order must rank every vertex");
  }
  for (vid_t i = 0; i < num_cached_; ++i) {
    cached_[std::size_t(order[std::size_t(i)])] = 1;
  }
  if (policy_ == serve::CachePolicy::kClock) {
    clock_init_ = serve::ClockCache(order, num_cached_, n);
  }
}

vid_t FeatureCache::capacity_for(vid_t num_vertices, double alpha) {
  const double a = std::clamp(alpha, 0.0, 1.0);
  return vid_t(std::clamp<long long>(std::llround(a * double(num_vertices)),
                                     0ll, (long long)(num_vertices)));
}

bool FeatureCache::ClockTxn::committed(std::int64_t batch) const {
  // Commits arrive in strictly ascending batch order (the commit
  // discipline), so membership reduces to an upper-bound check — correct
  // even after old snapshots age out of the ring.
  return !snaps_.empty() && batch <= snaps_.back().id;
}

const serve::ClockCache& FeatureCache::ClockTxn::basis(
    std::int64_t batch) const {
  const serve::ClockCache* best = &initial_;
  std::int64_t best_id = -1;
  for (const Snap& s : snaps_) {
    if (s.id < batch && s.id > best_id) {
      best = &s.state;
      best_id = s.id;
    }
  }
  return *best;
}

void FeatureCache::ClockTxn::commit(std::int64_t batch,
                                    serve::ClockCache&& state) {
  snaps_.push_back(Snap{batch, std::move(state)});
  if (snaps_.size() > 3) snaps_.erase(snaps_.begin());
}

GatherStats FeatureCache::gather(std::span<const vid_t> vertices,
                                 CycleLedger* cycles, MemoryLedger* bytes,
                                 std::span<const GatherProbe> probes,
                                 bool bypass_cache,
                                 const ClockGatherCtx& clock) const {
  // Nothing to gather: no launch happens, so nothing is charged and no
  // fault can fire — a zero-row copy is never issued.
  if (vertices.empty()) return {};
  // Fault check next: an armed transient fetch fails the whole copy before
  // any cycles or bytes are charged, so a retried gather double-charges
  // nothing. The fate is a pure function of (seed, key); `attempt` only
  // indexes into the per-key failing-attempt count, so which batch the key
  // rides in cannot change its outcome.
  if (fetch_rate_ > 0.0) {
    for (const GatherProbe& p : probes) {
      const serve::FetchFate f =
          serve::fetch_fate(fetch_rate_, fetch_seed_, p.key);
      if (f.poisoned && p.attempt < f.failing_attempts) {
        throw TransientFetchError(p.key, p.attempt + 1);
      }
    }
  }
  GatherStats st;
  if (policy_ == serve::CachePolicy::kClock && !bypass_cache) {
    // Replay from the committed state after the previous batch (the initial
    // state without a txn) on a private copy; publish it only on the
    // batch's designated committing attempt. Every recovery replay of the
    // same batch therefore observes the identical basis, which is what
    // keeps serial, pipelined, and chaos hit streams equal.
    serve::ClockCache state =
        clock.txn != nullptr ? clock.txn->basis(clock.batch) : clock_init_;
    const bool can_install = state.capacity() > 0;
    for (vid_t v : vertices) {
      if (state.access(v)) {
        ++st.hits;
        st.hit_bytes += row_bytes();
      } else {
        ++st.misses;
        st.miss_bytes += row_bytes();
        if (can_install) {
          // The cache starts full, so every install displaces a row.
          ++st.evictions;
          st.insert_bytes += row_bytes();
        }
      }
    }
    if (clock.txn != nullptr && clock.commit &&
        !clock.txn->committed(clock.batch)) {
      clock.txn->commit(clock.batch, std::move(state));
    }
  } else {
    for (vid_t v : vertices) {
      if (!bypass_cache && cached(v)) {
        ++st.hits;
        st.hit_bytes += row_bytes();
      } else {
        ++st.misses;
        st.miss_bytes += row_bytes();
      }
    }
  }
  // One gather launch; hit rows stream at DRAM bandwidth, miss rows at PCIe
  // bandwidth, and CLOCK installs write fetched rows back into their slots
  // at DRAM bandwidth. The transfers overlap with neither each other nor
  // the launch in this first-order model, matching dense_cost's structure.
  st.cycles =
      2000 +
      std::uint64_t(
          std::ceil(double(st.hit_bytes) / dev_.dram_bytes_per_cycle)) +
      std::uint64_t(
          std::ceil(double(st.miss_bytes) / dev_.pcie_bytes_per_cycle)) +
      std::uint64_t(
          std::ceil(double(st.insert_bytes) / dev_.dram_bytes_per_cycle));
  if (cycles != nullptr) cycles->add("feature_gather", st.cycles);
  if (bytes != nullptr) {
    bytes->add("feature_cache_hit", st.hit_bytes);
    bytes->add("feature_cache_miss", st.miss_bytes);
    // Only CLOCK ever inserts; omitting the zero keeps the static policies'
    // ledgers byte-identical to the pre-policy server.
    if (st.insert_bytes > 0) {
      bytes->add("feature_cache_insert", st.insert_bytes);
    }
  }
  return st;
}

}  // namespace gnnone
