// Per-serve mutable state shared by the serving drivers.
//
// InferenceServer's drivers live in two translation units — the single-device
// and scheduled drivers in serve/server.cc, the sharded multi-device driver
// in serve/shard.cc — and all of them thread the same scratch through
// prepare_group / forward_group / the recovery ladder. The two nested structs
// are defined here so both files see one definition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gen/requests.h"
#include "gpusim/memory.h"
#include "graph/coo.h"
#include "sample/sampler.h"
#include "serve/feature_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace gnnone {

namespace serve_detail {
/// Boundary validation of one request (server.cc). Empty = admissible.
std::string validate_request(const SeedRequest& r, vid_t num_vertices);
}  // namespace serve_detail

/// Per-serve mutable state threaded through every attempt.
struct InferenceServer::ServeState {
  std::span<const SeedRequest> requests;
  ServingReport* rep = nullptr;
  const ModelConfig* cfg = nullptr;
  /// Active tenant while a scheduled batch (and its whole recovery ladder —
  /// a batch never mixes tenants) runs; null on the legacy single-tenant
  /// path, which reads model_kind/fanouts from the options instead.
  const serve::TenantSpec* tenant = nullptr;
  /// Active tenant index (the partition selector); -1 on the legacy path.
  int tenant_idx = -1;
  OpContext ctx;
  SamplerScratch scratch;
  /// Gather attempts per trace index — the `attempt` coordinate of the
  /// transient-fetch fault schedule. Counted per gather entry per request,
  /// success or not, so a transient clears after its scheduled number of
  /// failures no matter how the request is (re)grouped.
  std::vector<int> gather_attempts;
  /// Per-cache CLOCK transactions (kClock only; one per partition on the
  /// partitioned path, one per device on the sharded path, one for the
  /// shared cache otherwise). A fresh serve starts from the cache's seeded
  /// initial state — serves are independent.
  std::vector<FeatureCache::ClockTxn> clock_txns;
  gpusim::DeviceMemory* mem = nullptr;
  /// Sharded serving only (serve/shard.cc): the devices the active batch's
  /// sample+gather and forward stages run on (-1 on the single-device
  /// paths), and the forward device's memory tracker when it differs from
  /// `mem` (null otherwise — forward_group then allocates against `mem`).
  int shard_device = -1;
  int shard_fwd_device = -1;
  gpusim::DeviceMemory* fwd_mem = nullptr;
};

struct InferenceServer::PreparedGroup {
  std::vector<std::size_t> indices;  // trace indices of the member requests
  std::size_t batch = 0;             // owning minibatch (stats slot)
  GroupMode mode;
  /// Per block row: the global vertex whose features the row carries.
  std::vector<vid_t> block_vertices;
  /// Per member: block row of each of its seeds, request-seed order.
  std::vector<std::vector<vid_t>> seed_rows;
  Coo coo;  // block-diagonal composition of the per-request blocks
  /// Device registrations of the sampled topology and the gathered feature
  /// rows; released (RAII) when the group retires or its attempt unwinds.
  gpusim::DeviceAllocation topo;
  gpusim::DeviceAllocation staging;
};

}  // namespace gnnone
