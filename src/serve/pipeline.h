// Per-stream cycle timeline for pipelined serving.
//
// The serving driver's three stages — CPU-side sampling, the feature-gather
// copy, and the device forward pass — map onto three streams, the way a real
// GNN inference server overlaps host sampling and H2D transfers with the
// previous batch's kernels (gSuite's inference characterization; GPGPU-Sim's
// stream-level concurrency model). Each stage of each batch occupies one
// StageSpan [start, end) on its stream; the schedule is built from the
// per-batch stage cycles the serial cost model already produces, so
// pipelining changes *when* modeled work runs, never how much.
//
// Attribution: after the schedule is built, every span's cycles are split
// into `exposed` (this span is the attributed occupant of the wall-clock
// interval) and `overlapped` (hidden behind a concurrent span on a
// higher-priority stream — forward > gather > sample). Every busy instant of
// the timeline is attributed to exactly one span, and the pipeline
// recurrences leave no idle gaps before the makespan, so
//
//   sum over spans of exposed == makespan,
//   exposed + overlapped     == span cycles   (per span),
//
// which is what lets a report quote total_cycles = makespan while still
// accounting for every stage cycle. (Open-loop schedules with per-batch
// release cycles are the one extension: waiting for traffic opens idle gaps
// no span occupies, tracked exactly by idle_cycles(), and the tiling becomes
// Sigma exposed + idle == makespan — still exact, with idle == 0 for every
// closed-loop schedule.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gnnone {

/// Streams of the serving pipeline, in attribution-priority order: a cycle
/// where several streams are busy is exposed on the highest-numbered one.
inline constexpr int kSampleStream = 0;
inline constexpr int kGatherStream = 1;
inline constexpr int kForwardStream = 2;
inline constexpr int kNumServeStreams = 3;

/// One stage occupancy of one stream.
struct StageSpan {
  int batch = 0;
  int stream = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // start + stage cycles
  /// Filled by StreamTimeline::attribute().
  std::uint64_t exposed = 0;
  std::uint64_t overlapped = 0;

  std::uint64_t cycles() const { return end - start; }
};

/// An append-only schedule of stage spans over a fixed set of streams. A
/// stream runs its spans in placement order and never overlaps with itself;
/// spans on different streams may overlap freely.
class StreamTimeline {
 public:
  explicit StreamTimeline(int num_streams)
      : stream_free_(std::size_t(num_streams), 0) {}

  /// Places `cycles` on `stream`, starting no earlier than `ready` and no
  /// earlier than the stream's previous span's end. Zero-cycle stages get a
  /// zero-length span so indexing stays uniform. Returns the span index.
  std::size_t place(int stream, int batch, std::uint64_t ready,
                    std::uint64_t cycles);

  /// When the stream's last placed span ends (0 if none).
  std::uint64_t stream_free(int stream) const {
    return stream_free_[std::size_t(stream)];
  }

  const StageSpan& span(std::size_t i) const { return spans_[i]; }
  const std::vector<StageSpan>& spans() const { return spans_; }

  /// Latest span end across all streams (0 for an empty timeline).
  std::uint64_t makespan() const;

  /// Cycles before the makespan during which *no* stream is busy — the
  /// server idling for the next arrival in an open-loop schedule. Valid
  /// after attribute(): makespan == Sigma exposed + idle_cycles exactly.
  std::uint64_t idle_cycles() const { return idle_cycles_; }

  /// Splits every span's cycles into exposed vs overlapped (header comment).
  /// Idempotent; call after the schedule is complete.
  void attribute();

 private:
  std::vector<std::uint64_t> stream_free_;
  std::vector<StageSpan> spans_;
  std::uint64_t idle_cycles_ = 0;
};

/// Per-batch stage costs, as the serial cost model measures them.
struct BatchStageCycles {
  std::uint64_t sample = 0;
  std::uint64_t gather = 0;
  std::uint64_t forward = 0;
  /// Earliest cycle the batch may start (open-loop serving: the scheduler's
  /// cut cycle, which is >= every member's arrival). 0 — the closed-loop
  /// default — reproduces the pre-tenant schedule exactly. A positive
  /// release can open genuine idle gaps in the timeline (the server waiting
  /// for traffic); attribute() leaves those unattributed, so with releases
  /// the tiling invariant becomes Sigma exposed + idle == makespan
  /// (StreamTimeline::idle_cycles), with idle == 0 whenever every release
  /// is 0.
  std::uint64_t release = 0;
};

/// Builds the serving schedule over kNumServeStreams streams; span index
/// 3 * batch + stream, batch-major.
///
/// Serial mode chains every stage behind the previous one (the pre-pipeline
/// driver): makespan == sum of all stage cycles.
///
/// Pipelined mode stages batches through a three-slot software pipeline —
/// one slot sampling, one gathering (or gathered, waiting), one forwarding —
/// so sample/gather of batch b+1 overlap with forward of batch b:
///
///   sample[b]  starts when the sample stream is free and batch b-2 has
///              retired (its slot is the one batch b reuses);
///   gather[b]  starts when sample[b] is done and the gather stream is free;
///   forward[b] starts when gather[b] is done and the forward stream is free.
///
/// The schedule is work-conserving, so its makespan never exceeds the serial
/// sum, and the saving is bounded by the sample+gather cycles available to
/// hide (attribute() proves both per run; the bench expectations pin them).
///
/// A batch's sample span additionally starts no earlier than its `release`
/// cycle (0 for closed-loop batches): an open-loop server cannot work on
/// requests that have not arrived, in either mode. Pipelined overlap still
/// never reorders batches, so the pipelined makespan stays <= the serial one
/// point for point.
StreamTimeline serve_timeline(std::span<const BatchStageCycles> batches,
                              bool pipelined);

}  // namespace gnnone
