// Deterministic chaos plan and degradation-ladder vocabulary for serving.
//
// Fault tolerance is only testable when faults are reproducible. A
// ChaosOptions describes a *schedule* of injected faults derived purely from
// (seed, fault site, request index): whether a request is poisoned, at which
// stage its poison fires, and how far up the degradation ladder the server
// must climb before the request is cured (or proves incurable). Because the
// draws key on the request's position in the trace — never on batch
// composition, attempt counts, or wall clock — a request's fate is identical
// across batch sizes, serial vs pipelined mode, and repeated runs, which is
// what lets the chaos harness pin bit-identity of every unaffected request
// against the fault-free run.
//
// Three fault kinds map onto the three serving stages:
//  * OOM        — the stage's DeviceMemory allocation throws (injected via
//                 the real fail_at_allocation machinery, so RAII unwinding
//                 is exercised end to end);
//  * transient  — the feature gather's host->PCIe fetch throws
//    fetch         TransientFetchError (serve/feature_cache.h); clears after
//                 a per-request number of failed attempts, or never;
//  * kernel     — the forward pass throws a simsan-style SanitizerError;
//    fault        a curable one is fixed by falling back to the safe
//                 default kernel, an incurable one poisons the request.
//
// The degradation ladder (docs/ROBUSTNESS.md) is the fixed escalation the
// server walks for a faulted batch:
//   retry (backoff) -> shrink batch (bisection) -> truncate fanouts ->
//   evict feature cache + safe default backend.
// Every rung a request rides through is recorded in its DegradationTrace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/status.h"

namespace gnnone::serve {

/// Serving stages a fault can fire in.
enum class ChaosSite { kSample, kGather, kForward };

constexpr const char* site_name(ChaosSite s) {
  switch (s) {
    case ChaosSite::kSample:  return "sample";
    case ChaosSite::kGather:  return "gather";
    case ChaosSite::kForward: return "forward";
  }
  return "unknown";
}

/// Retry/backoff policy of the degradation ladder. Backoff cycles are
/// modeled host-side waiting: charged to the CycleLedger (tag "backoff"),
/// to the faulted batch's stats, and onto the batch's host stream in the
/// serving timeline, so Sigma exposed == makespan keeps holding under
/// recovery.
struct RetryPolicy {
  /// Whole-batch retries before the ladder escalates to bisection.
  int max_retries = 2;
  /// Base backoff; doubles on every recovery attempt (capped shift).
  std::uint64_t backoff_cycles = 50000;
};

/// Deterministic fault-injection schedule (all rates in [0, 1]; a rate of 0
/// disables that fault kind).
struct ChaosOptions {
  /// Fraction of requests whose presence in a group OOMs `oom_site`'s
  /// allocation until the ladder reaches the request's cure rung.
  double oom_rate = 0.0;
  ChaosSite oom_site = ChaosSite::kForward;
  /// Fraction of requests whose feature fetch transiently faults.
  double fetch_rate = 0.0;
  /// Fraction of requests that fault the forward kernel.
  double kernel_rate = 0.0;
  std::uint64_t seed = 1;

  bool enabled() const {
    return oom_rate > 0.0 || fetch_rate > 0.0 || kernel_rate > 0.0;
  }
};

/// Pure uniform draw in [0, 1) keyed on (seed, stream, key): splitmix-style
/// mixing, identical on every platform. `stream` namespaces the fault kinds
/// so the same request gets independent draws per site.
double chaos_uniform(std::uint64_t seed, std::uint64_t stream,
                     std::uint64_t key);

/// How far up the ladder an OOM-poisoned request's fault persists.
struct OomFate {
  bool poisoned = false;
  /// 1 = cured once the request runs alone (shrink/bisect), 2 = cured once
  /// fanouts are truncated, 3 = incurable (reports Status::kOom).
  int cure_rung = 0;
};
OomFate oom_fate(const ChaosOptions& chaos, std::size_t request);

/// Transient-fetch fate: the request's gather fails its first
/// `failing_attempts` attempts (INT_MAX = never succeeds).
struct FetchFate {
  bool poisoned = false;
  int failing_attempts = 0;
};
FetchFate fetch_fate(double rate, std::uint64_t seed, std::uint64_t request);

/// Kernel-fault fate: a curable fault disappears under the safe default
/// backend (the ladder's last rung); an incurable one reports
/// Status::kKernelFault.
struct KernelFate {
  bool poisoned = false;
  bool safe_backend_cures = false;
};
KernelFate kernel_fate(const ChaosOptions& chaos, std::size_t request);

/// Rungs of the degradation ladder, in escalation order.
enum class ServeAction {
  kRetry,           // re-run the group after backoff
  kIsolate,         // bisect: re-run in a smaller group
  kTruncateFanouts, // halve every fanout (>= 1): smaller blocks, less memory
  kSafeMode,        // evict the feature cache + safe default backend
};

constexpr const char* action_name(ServeAction a) {
  switch (a) {
    case ServeAction::kRetry:           return "retry";
    case ServeAction::kIsolate:         return "isolate";
    case ServeAction::kTruncateFanouts: return "truncate_fanouts";
    case ServeAction::kSafeMode:        return "safe_mode";
  }
  return "unknown";
}

/// One rung of the ladder, as one request experienced it.
struct DegradationStep {
  ServeAction action = ServeAction::kRetry;
  /// The fault that forced this step.
  Status fault = Status::kOk;
  /// Stage the fault fired in.
  ChaosSite site = ChaosSite::kSample;
  /// Recovery-attempt ordinal within the request's batch (1-based).
  int attempt = 0;
  /// Backoff cycles charged before this step's re-run (0 for bisection
  /// steps, which run immediately).
  std::uint64_t backoff_cycles = 0;
};

/// Per-request outcome: the final status, the full degradation trace, and —
/// when the request failed — a human-readable error.
struct RequestOutcome {
  Status status = Status::kOk;
  /// Non-empty exactly when !is_served(status): the last fault's message
  /// (or the boundary-validation message for kRejected).
  std::string error;
  /// The request was served from truncated fanouts: predictions are valid
  /// but may differ from the fault-free run's (smaller neighborhoods).
  bool truncated_fanouts = false;
  std::vector<DegradationStep> trace;
  /// Latency attribution (cycles). queue_cycles: arrival -> the request's
  /// batch starts its first stage; service_cycles: batch start -> the
  /// request's forward completes on the timeline. End-to-end latency is
  /// their sum. Closed-loop serving has queue_cycles measured from cycle 0
  /// (every request "arrives" before the run); rejected requests carry 0/0.
  std::uint64_t queue_cycles = 0;
  std::uint64_t service_cycles = 0;
};

}  // namespace gnnone::serve
