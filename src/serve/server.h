// Request-batching GNN inference driver.
//
// The serving regime the FGNN/SamGraph line of work targets: requests name
// seed vertices, the server groups them into minibatches, samples each
// request's k-hop neighborhood, gathers input features through the static
// degree-ordered cache, and runs one forward pass per minibatch over the
// batched blocks through the existing GCN/GAT/GIN layers. Every stage
// charges modeled cycles to one CycleLedger ("sample", "feature_gather",
// then the usual kernel tags), so a serving run decomposes the same way a
// training run does and the bench layer can sweep the cache fraction alpha.
//
// Batch-composition invariance: every request is sampled independently with
// streams derived from (trace seed, hop, vertex) — never from the batch
// index — and the minibatch runs the forward over the *block-diagonal*
// composition of the per-request blocks (DGL's graph batching). GCN/GAT
// compute is row- and component-local, so a request's predictions are a
// pure function of (dataset, options, its own seed set): they do not change
// with batch_size, with the other requests in the batch, or between serial
// and pipelined mode. (GIN is the exception: its BatchNorm-style vcolnorm
// standardizes across every row of the minibatch block, so GIN predictions
// are inherently batch-coupled — same as real batch-norm inference without
// frozen running statistics.)
//
// Determinism: model weights are glorot-rebuilt from fixed seeds per batch
// (the checkpoint stand-in — equal configs give equal weights), and the
// forward runs with training = false, so equal (dataset, requests, options)
// produce byte-identical reports.
//
// Pipelined mode (opts.pipeline) stages batches through a three-slot
// software pipeline — sample and gather of batch b+1 overlap with the
// forward of batch b — and reports cycles against the per-stream timeline
// model in serve/pipeline.h: total_cycles is the timeline makespan, each
// stage's cycles split into exposed vs overlapped, and a batch's latency is
// its critical path through the schedule. Predictions and the cycle ledger
// are bit-identical to serial mode; only the cycle composition changes.
// Fault tolerance (docs/ROBUSTNESS.md): every request carries a
// serve::Status outcome in the report instead of a fault aborting the run.
// When a stage throws — a DeviceMemory OOM, a transient PCIe-fetch fault
// from the feature cache, or a simsan kernel fault — the server contains it
// to the faulted minibatch and walks the degradation ladder: whole-batch
// retries with exponential backoff (charged to the ledger/timeline as
// "backoff"), bisection down to single requests, truncated fanouts, and
// finally safe mode (feature-cache bypass + the safe default backend).
// Only requests whose injected fault is incurable report an error; every
// other request is served, and any request served without a degraded mode
// keeps predictions bit-identical to the fault-free run.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gnn/train.h"
#include "gpusim/memory.h"
#include "sample/sampler.h"
#include "serve/chaos.h"
#include "serve/feature_cache.h"
#include "serve/pipeline.h"
#include "serve/scheduler.h"
#include "serve/shard.h"
#include "serve/status.h"

namespace gnnone {

struct ServeOptions {
  std::string model_kind = "gcn";  // "gcn", "gin" or "gat"
  int batch_size = 8;              // requests per minibatch
  std::vector<int> fanouts = {10, 5};
  /// Fraction of vertices (by degree) whose features are pinned on device.
  double cache_alpha = 0.1;
  /// Which vertices the cache budget goes to (serve/cache_policy.h):
  /// kDegree (the original static order, bit-identical), kPresampleFrequency
  /// (warmup-sampled access frequency), kClock (dynamic second-chance), or
  /// kAuto (dispatch the bake-off winner recorded in `tuning_cache` for this
  /// (graph signature, workload, device); degree when nothing matches).
  serve::CachePolicy cache_policy = serve::CachePolicy::kDegree;
  /// kPresampleFrequency: warmup epochs of the sampler over the probe
  /// trace. 0 collapses to the degree order exactly (all counts tie at 0).
  int presample_epochs = 3;
  /// kPresampleFrequency: the probe trace the warmup epochs sample. Empty =
  /// a default uniform probe derived from `seed`
  /// (serve::default_presample_probe).
  std::vector<SeedRequest> presample_probe;
  /// Scheduled serving only: give each tenant its own cache partition sized
  /// by TenantSpec::cache_share (largest-remainder split of the alpha
  /// capacity; all-zero shares split equally) instead of one shared cache.
  /// Partition capacities sum exactly to the shared capacity, so the device
  /// byte budget is unchanged.
  bool partition_cache = false;
  /// Overrides the dataset's input feature length (0 = use Table 1's F).
  int feature_dim_override = 0;
  Backend backend = Backend::kAuto;
  std::uint64_t seed = 1;
  /// Backend::kAuto: pretuned cache the dispatcher consults (caller keeps
  /// ownership; may be null) and whether to tune cache misses on the spot.
  const tune::TuningCache* tuning_cache = nullptr;
  bool online_tune = false;
  /// Software-pipelined serving: overlap sample+gather of batch b+1 with
  /// forward of batch b (serve/pipeline.h). Off = the serial driver.
  /// Predictions are bit-identical either way.
  bool pipeline = false;
  /// External device-memory tracker: the pinned cache and every per-batch
  /// staging allocation are charged against it, so injected faults
  /// (fail_at_allocation / fail_above) drive the serving OOM paths
  /// deterministically and tests can assert nothing leaks across a serve.
  /// Null = a private tracker sized to the device.
  gpusim::DeviceMemory* device_memory = nullptr;
  /// Degradation-ladder retry/backoff policy.
  serve::RetryPolicy retry;
  /// Deterministic fault-injection schedule (rates 0 = no injection).
  serve::ChaosOptions chaos;
  /// Multi-tenant SLO-aware serving (docs/SERVING.md §8). Non-empty turns
  /// the server into an open-loop scheduled tier: each request's
  /// SeedRequest::tenant indexes this table, batches are formed per tenant
  /// by `scheduler.policy` from the requests' arrival cycles, each batch
  /// runs its tenant's model_kind/fanouts (batch_size stays the global max),
  /// and the report gains per-tenant TenantReports. Empty (the default)
  /// keeps the legacy single-tenant closed-loop driver bit for bit.
  std::vector<serve::TenantSpec> tenants;
  /// Batch-formation policy for the multi-tenant path (ignored otherwise).
  serve::SchedulerOptions scheduler;
  /// Sharded multi-device serving (docs/SERVING.md §10): shard.num_devices
  /// > 0 partitions graph + feature table across N simulated devices
  /// (serve/shard.h) and routes each request to the device owning its first
  /// seed. Mutually exclusive with `tenants` and an external
  /// `device_memory` for now (each shard owns its own tracker); predictions
  /// stay bit-identical to the unsharded driver at every shard count and
  /// role assignment (GIN excepted — its vcolnorm is batch-coupled, and
  /// sharding regroups batches).
  serve::ShardOptions shard;

  /// Throws std::invalid_argument on out-of-range options (unknown
  /// model_kind, batch_size < 1, empty or non-positive fanouts, cache_alpha
  /// outside [0, 1], negative feature_dim_override, chaos rates outside
  /// [0, 1], negative retry budget, a tenant with an unknown model_kind /
  /// empty or non-positive fanouts / slo_cycles < 1 / negative cache_share,
  /// negative presample_epochs, partition_cache without tenants, scheduler
  /// options out of range). The standalone sampler treats a fanout <= 0 as
  /// "take every
  /// neighbor"; serving rejects it — an unbounded neighborhood has no place
  /// in a latency-bounded tier.
  void Validate() const;
};

/// One stage's cycles split by the timeline attribution: `exposed` cycles
/// extend the makespan, `overlapped` cycles hide behind a concurrent stage
/// on a higher-priority stream. exposed + overlapped == cycles; in serial
/// mode everything is exposed.
struct StageSplit {
  std::uint64_t cycles = 0;
  std::uint64_t exposed = 0;
  std::uint64_t overlapped = 0;
};

/// Per-minibatch accounting. Under recovery a batch's counters accumulate
/// over every attempt charged on its behalf (retries, bisected sub-groups,
/// degraded re-runs): stage cycles via ledger deltas, gather traffic per
/// successful gather, shapes per successfully sampled group — so
/// hits + misses == num_unique_vertices and the ledger equalities stay
/// exact whether or not the batch faulted.
struct BatchStats {
  int num_requests = 0;
  vid_t num_seeds = 0;     // seed rows in the block (summed over requests)
  vid_t num_vertices = 0;  // block rows (per-request blocks, concatenated)
  /// Distinct global vertices the batch gathers (feature traffic is
  /// deduplicated across the batch's blocks; see serve's gather stage).
  vid_t num_unique_vertices = 0;
  eid_t num_edges = 0;     // block nnz (with self-loops)
  GatherStats gather;
  std::uint64_t sample_cycles = 0;
  std::uint64_t forward_cycles = 0;
  /// Modeled recovery waits (exponential backoff between ladder attempts),
  /// charged to the ledger under "backoff" and placed on the batch's host
  /// stream in the timeline. 0 on a fault-free batch.
  std::uint64_t backoff_cycles = 0;
  /// Sharded serving: NVLink cycles moving the sampled topology + staged
  /// features from the sampler device to the forward device (rides the
  /// batch's gather span; 0 when both stages share a device).
  std::uint64_t handoff_cycles = 0;
  std::size_t handoff_bytes = 0;
  /// Sharded serving: the devices this batch ran on (-1 unsharded).
  int sampler_device = -1;
  int forward_device = -1;
  /// Sharded serving: extra cycles the colocation dilation added to this
  /// batch's sample and forward stages (already included in sample_cycles /
  /// forward_cycles; 0 off the sharded path and on dedicated devices).
  std::uint64_t colocation_sample_cycles = 0;
  std::uint64_t colocation_forward_cycles = 0;
  /// Faults that fired while serving this batch (initial run + recovery).
  int fault_events = 0;
  std::uint64_t cycles = 0;  // all stages + backoff (the batch's work)
  /// Critical path through the timeline: forward end minus sample start.
  /// Serial mode: equals `cycles`. Pipelined: can exceed `cycles` when the
  /// batch waits on a stream held by its neighbors.
  std::uint64_t latency_cycles = 0;
  /// Tenant the batch belongs to (scheduled serving; 0 on the legacy path —
  /// a batch never mixes tenants).
  int tenant = 0;
  /// Earliest cycle the batch could start (the scheduler's cut cycle; 0 on
  /// the legacy closed-loop path).
  std::uint64_t release_cycle = 0;
};

struct ServingReport {
  int num_requests = 0;
  int num_batches = 0;
  bool pipelined = false;
  std::uint64_t sample_cycles = 0;
  std::uint64_t gather_cycles = 0;
  std::uint64_t forward_cycles = 0;
  /// Timeline makespan. Serial mode: equals serial_cycles (the stage sum).
  /// Pipelined: at most serial_cycles, smaller whenever overlap hides work.
  std::uint64_t total_cycles = 0;
  /// Sum of every stage's cycles (== ledger.total()): what a serial run
  /// would quote as total_cycles.
  std::uint64_t serial_cycles = 0;
  /// Exposed/overlapped split per stage; exposed sums to total_cycles.
  StageSplit sample_split, gather_split, forward_split;
  /// Slowest minibatch by latency — the tail a batching server quotes.
  std::uint64_t max_batch_cycles = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// CLOCK policy: rows displaced by installs across all batches (0 under
  /// the static policies).
  std::uint64_t cache_evictions = 0;
  std::size_t cache_hit_bytes = 0;
  std::size_t cache_miss_bytes = 0;
  /// CLOCK policy: bytes written installing fetched rows into their slots.
  std::size_t cache_insert_bytes = 0;
  /// Fraction of gathered vertices served from the device cache.
  double cache_hit_rate() const {
    const double total = double(cache_hits + cache_misses);
    return total > 0.0 ? double(cache_hits) / total : 0.0;
  }

  /// Total modeled backoff waits and fault events across all batches.
  std::uint64_t backoff_cycles = 0;
  int fault_events = 0;

  /// Timeline cycles during which every stream idles (an open-loop server
  /// waiting for arrivals). The exposed-tiling invariant with releases is
  /// Sigma exposed + idle_cycles == total_cycles; 0 on every closed-loop
  /// schedule.
  std::uint64_t idle_cycles = 0;
  /// Per-tenant latency/SLO aggregates (multi-tenant scheduled serving;
  /// empty on the legacy path). Latencies are quoted on the scheduler's
  /// decision clock — the serial execution order batches were committed in —
  /// so they are identical in serial and pipelined mode, like every other
  /// per-request observable.
  std::vector<serve::TenantReport> tenants;
  /// Scheduled serving: the largest arrived-but-unserved backlog any tenant
  /// queue reached — what SchedulerOptions::max_queue_depth bounds.
  std::size_t peak_queue_depth = 0;

  /// Sharded serving (docs/SERVING.md §10; empty on the single-device
  /// path): per-device stage/traffic/memory accounting. total_cycles is the
  /// slowest device's makespan; Σ exposed + idle == makespan holds exactly
  /// per device.
  std::vector<serve::DeviceShardReport> devices;
  /// Sharded serving: cross-device gather traffic totals — peer-pinned rows
  /// over NVLink (remote hits), peer-owned unpinned rows over host PCIe
  /// (remote misses). The byte-conservation invariant is hit + miss +
  /// remote_hit + remote_miss bytes == Σ unique gathered vertices × row
  /// bytes. For the static policies hit + remote_hit == the unsharded run's
  /// hits whenever batch composition matches (e.g. batch_size 1 — routing
  /// regroups larger batches, which shifts per-batch vertex dedup).
  std::uint64_t remote_hits = 0;
  std::uint64_t remote_misses = 0;
  std::size_t remote_hit_bytes = 0;
  std::size_t remote_miss_bytes = 0;
  /// Sharded serving: sampler->forward NVLink handoff traffic.
  std::size_t handoff_bytes = 0;

  std::vector<BatchStats> batches;
  /// The full schedule, batch-major: span 3 * b + stream (serve/pipeline.h
  /// stream ids). Serial runs get the chained schedule. A batch's sample
  /// span carries its backoff cycles too (host-side waiting), which keeps
  /// Sigma exposed == makespan exact under recovery.
  std::vector<StageSpan> timeline;
  CycleLedger ledger;  // cycles by stage/kernel tag (+ "backoff")
  MemoryLedger bytes;  // gather traffic by hit/miss tag
  /// predictions[r][s] = argmax class of request r's seed s. Empty for a
  /// request whose outcome is not served (rejected or failed).
  std::vector<std::vector<int>> predictions;
  /// Per-request status + degradation trace, trace order (serve/chaos.h).
  std::vector<serve::RequestOutcome> outcomes;

  /// Requests that produced predictions (status kOk or kDegraded).
  int served_requests() const {
    int n = 0;
    for (const auto& o : outcomes) n += serve::is_served(o.status) ? 1 : 0;
    return n;
  }
  /// Requests refused at the server boundary (invalid input).
  int rejected_requests() const {
    int n = 0;
    for (const auto& o : outcomes) {
      n += o.status == serve::Status::kRejected ? 1 : 0;
    }
    return n;
  }
  /// Admitted requests the ladder could not cure.
  int failed_requests() const {
    return num_requests - rejected_requests() - served_requests();
  }
  int degraded_requests() const {
    int n = 0;
    for (const auto& o : outcomes) {
      n += o.status == serve::Status::kDegraded ? 1 : 0;
    }
    return n;
  }
  /// Served fraction of the admitted (non-rejected) requests — the
  /// availability the chaos harness holds to a floor.
  double availability() const {
    const int eligible = num_requests - rejected_requests();
    return eligible > 0 ? double(served_requests()) / double(eligible) : 1.0;
  }
};

class InferenceServer {
 public:
  /// The dataset must outlive the server; the device spec is copied (it is
  /// a small flat struct, and callers routinely pass temporaries). Throws
  /// std::invalid_argument when opts.Validate() rejects the options.
  InferenceServer(const Dataset& ds, const gpusim::DeviceSpec& dev,
                  const ServeOptions& opts);

  const FeatureCache& cache() const { return cache_; }
  /// The concrete policy serving runs under — ServeOptions::cache_policy
  /// with kAuto resolved against the tuning cache at construction.
  serve::CachePolicy cache_policy() const { return policy_; }
  /// Whether scheduled serving gathers through per-tenant partitions.
  bool partitioned() const { return !tenant_caches_.empty(); }
  /// Tenant t's cache partition (partitioned() must hold).
  const FeatureCache& tenant_cache(int t) const {
    return tenant_caches_[std::size_t(t)];
  }
  /// Device bytes across the shared cache and every partition — what sits
  /// in use between serves.
  std::size_t cache_device_bytes() const {
    std::size_t total = cache_.device_bytes();
    for (const FeatureCache& c : tenant_caches_) total += c.device_bytes();
    return total;
  }
  /// The tracker serving allocations are charged to (the external one when
  /// ServeOptions::device_memory was set, else the private one). Between
  /// serves exactly the pinned cache bytes are in use — the chaos harness's
  /// leak check.
  gpusim::DeviceMemory& device_memory() const { return *mem_; }

  /// Whether ServeOptions::shard split this server across devices.
  bool sharded() const { return !shard_mems_.empty(); }
  int shard_devices() const { return int(shard_mems_.size()); }
  /// The edge-cut vertex partition (sharded() must hold).
  const serve::ShardMap& shard_map() const { return shard_map_; }
  /// Device d's cache partition: the globally pinned rows it owns (empty on
  /// a forward-only device).
  const FeatureCache& shard_cache(int d) const {
    return shard_caches_[std::size_t(d)];
  }
  /// Device d's memory tracker. Between serves exactly the device's pinned
  /// cache bytes are in use — the per-device leak check.
  gpusim::DeviceMemory& shard_memory(int d) const {
    return *shard_mems_[std::size_t(d)];
  }

  /// Runs every request, batching opts.batch_size at a time (the final
  /// batch may be smaller). Invalid requests (empty seed set, out-of-range
  /// or duplicated seed ids, a tenant index outside the tenant table) are
  /// rejected per-request at the boundary; a stage fault is contained to
  /// its minibatch and recovered through the degradation ladder (header
  /// comment). Never throws for a fault on the serving path; deterministic
  /// for equal inputs, and per-request predictions are invariant to
  /// batching.
  ///
  /// With ServeOptions::tenants set, batches are instead formed by the
  /// tenant scheduler from the requests' arrival cycles (open-loop), each
  /// batch runs its tenant's config, and every outcome carries exact
  /// queue/service attribution on the scheduler's decision clock.
  ServingReport serve(std::span<const SeedRequest> requests) const;

 private:
  /// Fidelity a group runs at: rungs of the ladder are cumulative, so safe
  /// mode keeps the truncated fanouts it escalated through.
  struct GroupMode {
    bool truncated = false;  // fanouts halved (floor 1)
    bool safe = false;       // feature-cache bypass + safe default backend
  };
  /// A caught stage fault, classified for the ladder.
  struct StageFault {
    serve::Status status = serve::Status::kOk;
    serve::ChaosSite site = serve::ChaosSite::kSample;
    std::string message;
  };
  struct ServeState;     // per-serve scratch (serve/server_state.h)
  struct PreparedGroup;  // sampled + gathered, awaiting its forward pass

  PreparedGroup prepare_group(ServeState& st,
                              const std::vector<std::size_t>& indices,
                              GroupMode mode, std::size_t b,
                              serve::ChaosSite* stage) const;
  void forward_group(ServeState& st, const PreparedGroup& pg) const;
  /// One full attempt at serving `indices` as one group; commits outcomes
  /// and predictions on success. On a contained fault, fills *fault,
  /// counts the event against batch b, and returns false.
  bool try_group(ServeState& st, const std::vector<std::size_t>& indices,
                 GroupMode mode, std::size_t b, StageFault* fault) const;
  bool forward_or_fault(ServeState& st, const PreparedGroup& pg,
                        StageFault* fault) const;
  /// Walks the ladder for a faulted batch: whole-batch retries w/ backoff,
  /// bisection to singletons, then the per-request degraded rungs.
  void recover_batch(ServeState& st, std::size_t b,
                     const std::vector<std::size_t>& members,
                     StageFault fault) const;
  void bisect(ServeState& st, std::size_t b,
              const std::vector<std::size_t>& group, StageFault fault) const;
  void singleton_ladder(ServeState& st, std::size_t b, std::size_t idx,
                        StageFault fault, int attempt_base) const;
  bool arms_oom(const std::vector<std::size_t>& indices, GroupMode mode,
                serve::ChaosSite site) const;
  /// The multi-tenant open-loop driver behind serve() (tenants non-empty):
  /// scheduler-formed batches on a discrete-event decision clock.
  ServingReport serve_scheduled(std::span<const SeedRequest> requests) const;
  /// The sharded multi-device driver behind serve() (shard.num_devices > 0;
  /// serve/shard.cc): requests routed to owner devices, per-device batches,
  /// factored or symmetric roles, one three-stream timeline per device.
  ServingReport serve_sharded(std::span<const SeedRequest> requests) const;
  /// The sharded gather (serve/shard.cc): splits the batch's unique
  /// vertices by owner against the per-device cache partitions, charging
  /// local hits at DRAM, local/remote misses at PCIe and peer-pinned rows
  /// at NVLink. Fault probes fire first, exactly like FeatureCache::gather.
  GatherStats sharded_gather(ServeState& st,
                             std::span<const vid_t> unique_vertices,
                             std::span<const GatherProbe> probes,
                             GroupMode mode, std::size_t b) const;
  /// Colocation-dilation surcharge for stage cycles on device `device`
  /// (serve/shard.cc): 0 unless sharded and the device is kSymmetric.
  std::uint64_t colocation_extra(int device, std::uint64_t cycles) const;

  /// kAuto resolution at construction: consult the tuning cache's serve
  /// table (exact signature, then nearest) for this workload; degree when
  /// nothing matches or no cache was supplied.
  static serve::CachePolicy resolve_policy(const Dataset& ds,
                                           const gpusim::DeviceSpec& dev,
                                           const ServeOptions& opts,
                                           int in_dim);
  /// The shared cache (empty when partitioning: the partitions own the
  /// rows). Runs the presample warmup when the policy asks for it.
  static FeatureCache make_cache(const Dataset& ds,
                                 const gpusim::DeviceSpec& dev,
                                 const ServeOptions& opts, int in_dim,
                                 const Csr& csr, serve::CachePolicy policy);

  const Dataset* ds_;
  gpusim::DeviceSpec dev_;  // by value: binding a caller temporary is legal
  ServeOptions opts_;
  int in_dim_;
  Csr csr_;                     // sampling topology
  serve::CachePolicy policy_;   // concrete (kAuto resolved)
  FeatureCache cache_;
  /// Per-tenant partitions (ServeOptions::partition_cache): index = tenant.
  std::vector<FeatureCache> tenant_caches_;
  std::vector<float> features_;  // full n x in_dim host-side feature table
  std::unique_ptr<gpusim::DeviceMemory> owned_mem_;  // when none was passed
  gpusim::DeviceMemory* mem_;
  gpusim::DeviceAllocation cache_alloc_;  // the pinned cache's device bytes
  /// Device registrations of the per-tenant partitions (aligned with
  /// tenant_caches_).
  std::vector<gpusim::DeviceAllocation> tenant_cache_allocs_;

  // --- sharded serving (ServeOptions::shard; serve/shard.cc) --------------
  /// Vertex -> owner device over contiguous degree-order ranges.
  serve::ShardMap shard_map_;
  /// Per-device cache partitions, index = device id. Device d pins exactly
  /// the globally pinned rows it owns (so per-vertex hit/miss membership is
  /// identical to the unsharded cache); forward-only devices pin nothing.
  std::vector<FeatureCache> shard_caches_;
  /// Per-device memory trackers + the partitions' resident registrations.
  std::vector<std::unique_ptr<gpusim::DeviceMemory>> shard_mems_;
  std::vector<gpusim::DeviceAllocation> shard_cache_allocs_;
};

}  // namespace gnnone
