// Request-batching GNN inference driver.
//
// The serving regime the FGNN/SamGraph line of work targets: requests name
// seed vertices, the server groups them into minibatches, samples each
// batch's k-hop neighborhood, gathers input features through the static
// degree-ordered cache, and runs one forward pass over the sampled block
// through the existing GCN/GAT/GIN layers. Every stage charges modeled
// cycles to one CycleLedger ("sample", "feature_gather", then the usual
// kernel tags), so a serving run decomposes the same way a training run
// does and the bench layer can sweep the cache fraction alpha.
//
// Determinism: batch b samples with seed opts.seed + b, model weights are
// glorot-rebuilt from fixed seeds per batch (the checkpoint stand-in — equal
// configs give equal weights), and the forward runs with training = false,
// so equal (dataset, requests, options) produce byte-identical reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gnn/train.h"
#include "serve/feature_cache.h"

namespace gnnone {

struct ServeOptions {
  std::string model_kind = "gcn";  // "gcn", "gin" or "gat"
  int batch_size = 8;              // requests per minibatch
  std::vector<int> fanouts = {10, 5};
  /// Fraction of vertices (by degree) whose features are pinned on device.
  double cache_alpha = 0.1;
  /// Overrides the dataset's input feature length (0 = use Table 1's F).
  int feature_dim_override = 0;
  Backend backend = Backend::kAuto;
  std::uint64_t seed = 1;
  /// Backend::kAuto: pretuned cache the dispatcher consults (caller keeps
  /// ownership; may be null) and whether to tune cache misses on the spot.
  const tune::TuningCache* tuning_cache = nullptr;
  bool online_tune = false;
};

/// Per-minibatch accounting.
struct BatchStats {
  int num_requests = 0;
  vid_t num_seeds = 0;     // distinct seed vertices in the batch
  vid_t num_vertices = 0;  // sampled block size
  eid_t num_edges = 0;     // sampled block nnz (with self-loops)
  GatherStats gather;
  std::uint64_t sample_cycles = 0;
  std::uint64_t forward_cycles = 0;
  std::uint64_t cycles = 0;  // all stages
};

struct ServingReport {
  int num_requests = 0;
  int num_batches = 0;
  std::uint64_t sample_cycles = 0;
  std::uint64_t gather_cycles = 0;
  std::uint64_t forward_cycles = 0;
  std::uint64_t total_cycles = 0;
  /// Slowest minibatch — the latency tail a batching server quotes.
  std::uint64_t max_batch_cycles = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_hit_bytes = 0;
  std::size_t cache_miss_bytes = 0;
  /// Fraction of gathered vertices served from the device cache.
  double cache_hit_rate() const {
    const double total = double(cache_hits + cache_misses);
    return total > 0.0 ? double(cache_hits) / total : 0.0;
  }

  std::vector<BatchStats> batches;
  CycleLedger ledger;  // cycles by stage/kernel tag
  MemoryLedger bytes;  // gather traffic by hit/miss tag
  /// predictions[r][s] = argmax class of request r's seed s.
  std::vector<std::vector<int>> predictions;
};

class InferenceServer {
 public:
  /// The dataset and device must outlive the server.
  InferenceServer(const Dataset& ds, const gpusim::DeviceSpec& dev,
                  const ServeOptions& opts);

  const FeatureCache& cache() const { return cache_; }

  /// Runs every request, batching opts.batch_size at a time (the final
  /// batch may be smaller). Deterministic for equal inputs.
  ServingReport serve(std::span<const SeedRequest> requests) const;

 private:
  const Dataset* ds_;
  const gpusim::DeviceSpec* dev_;
  ServeOptions opts_;
  int in_dim_;
  Csr csr_;                     // sampling topology
  FeatureCache cache_;
  std::vector<float> features_;  // full n x in_dim host-side feature table
};

}  // namespace gnnone
