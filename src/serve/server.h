// Request-batching GNN inference driver.
//
// The serving regime the FGNN/SamGraph line of work targets: requests name
// seed vertices, the server groups them into minibatches, samples each
// request's k-hop neighborhood, gathers input features through the static
// degree-ordered cache, and runs one forward pass per minibatch over the
// batched blocks through the existing GCN/GAT/GIN layers. Every stage
// charges modeled cycles to one CycleLedger ("sample", "feature_gather",
// then the usual kernel tags), so a serving run decomposes the same way a
// training run does and the bench layer can sweep the cache fraction alpha.
//
// Batch-composition invariance: every request is sampled independently with
// streams derived from (trace seed, hop, vertex) — never from the batch
// index — and the minibatch runs the forward over the *block-diagonal*
// composition of the per-request blocks (DGL's graph batching). GCN/GAT
// compute is row- and component-local, so a request's predictions are a
// pure function of (dataset, options, its own seed set): they do not change
// with batch_size, with the other requests in the batch, or between serial
// and pipelined mode. (GIN is the exception: its BatchNorm-style vcolnorm
// standardizes across every row of the minibatch block, so GIN predictions
// are inherently batch-coupled — same as real batch-norm inference without
// frozen running statistics.)
//
// Determinism: model weights are glorot-rebuilt from fixed seeds per batch
// (the checkpoint stand-in — equal configs give equal weights), and the
// forward runs with training = false, so equal (dataset, requests, options)
// produce byte-identical reports.
//
// Pipelined mode (opts.pipeline) stages batches through a three-slot
// software pipeline — sample and gather of batch b+1 overlap with the
// forward of batch b — and reports cycles against the per-stream timeline
// model in serve/pipeline.h: total_cycles is the timeline makespan, each
// stage's cycles split into exposed vs overlapped, and a batch's latency is
// its critical path through the schedule. Predictions and the cycle ledger
// are bit-identical to serial mode; only the cycle composition changes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/requests.h"
#include "gnn/train.h"
#include "sample/sampler.h"
#include "serve/feature_cache.h"
#include "serve/pipeline.h"

namespace gnnone {

struct ServeOptions {
  std::string model_kind = "gcn";  // "gcn", "gin" or "gat"
  int batch_size = 8;              // requests per minibatch
  std::vector<int> fanouts = {10, 5};
  /// Fraction of vertices (by degree) whose features are pinned on device.
  double cache_alpha = 0.1;
  /// Overrides the dataset's input feature length (0 = use Table 1's F).
  int feature_dim_override = 0;
  Backend backend = Backend::kAuto;
  std::uint64_t seed = 1;
  /// Backend::kAuto: pretuned cache the dispatcher consults (caller keeps
  /// ownership; may be null) and whether to tune cache misses on the spot.
  const tune::TuningCache* tuning_cache = nullptr;
  bool online_tune = false;
  /// Software-pipelined serving: overlap sample+gather of batch b+1 with
  /// forward of batch b (serve/pipeline.h). Off = the serial driver.
  /// Predictions are bit-identical either way.
  bool pipeline = false;
};

/// One stage's cycles split by the timeline attribution: `exposed` cycles
/// extend the makespan, `overlapped` cycles hide behind a concurrent stage
/// on a higher-priority stream. exposed + overlapped == cycles; in serial
/// mode everything is exposed.
struct StageSplit {
  std::uint64_t cycles = 0;
  std::uint64_t exposed = 0;
  std::uint64_t overlapped = 0;
};

/// Per-minibatch accounting.
struct BatchStats {
  int num_requests = 0;
  vid_t num_seeds = 0;     // seed rows in the block (summed over requests)
  vid_t num_vertices = 0;  // block rows (per-request blocks, concatenated)
  /// Distinct global vertices the batch gathers (feature traffic is
  /// deduplicated across the batch's blocks; see serve's gather stage).
  vid_t num_unique_vertices = 0;
  eid_t num_edges = 0;     // block nnz (with self-loops)
  GatherStats gather;
  std::uint64_t sample_cycles = 0;
  std::uint64_t forward_cycles = 0;
  std::uint64_t cycles = 0;  // all stages (the batch's modeled work)
  /// Critical path through the timeline: forward end minus sample start.
  /// Serial mode: equals `cycles`. Pipelined: can exceed `cycles` when the
  /// batch waits on a stream held by its neighbors.
  std::uint64_t latency_cycles = 0;
};

struct ServingReport {
  int num_requests = 0;
  int num_batches = 0;
  bool pipelined = false;
  std::uint64_t sample_cycles = 0;
  std::uint64_t gather_cycles = 0;
  std::uint64_t forward_cycles = 0;
  /// Timeline makespan. Serial mode: equals serial_cycles (the stage sum).
  /// Pipelined: at most serial_cycles, smaller whenever overlap hides work.
  std::uint64_t total_cycles = 0;
  /// Sum of every stage's cycles (== ledger.total()): what a serial run
  /// would quote as total_cycles.
  std::uint64_t serial_cycles = 0;
  /// Exposed/overlapped split per stage; exposed sums to total_cycles.
  StageSplit sample_split, gather_split, forward_split;
  /// Slowest minibatch by latency — the tail a batching server quotes.
  std::uint64_t max_batch_cycles = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_hit_bytes = 0;
  std::size_t cache_miss_bytes = 0;
  /// Fraction of gathered vertices served from the device cache.
  double cache_hit_rate() const {
    const double total = double(cache_hits + cache_misses);
    return total > 0.0 ? double(cache_hits) / total : 0.0;
  }

  std::vector<BatchStats> batches;
  /// The full schedule, batch-major: span 3 * b + stream (serve/pipeline.h
  /// stream ids). Serial runs get the chained schedule.
  std::vector<StageSpan> timeline;
  CycleLedger ledger;  // cycles by stage/kernel tag
  MemoryLedger bytes;  // gather traffic by hit/miss tag
  /// predictions[r][s] = argmax class of request r's seed s.
  std::vector<std::vector<int>> predictions;
};

class InferenceServer {
 public:
  /// The dataset and device must outlive the server.
  InferenceServer(const Dataset& ds, const gpusim::DeviceSpec& dev,
                  const ServeOptions& opts);

  const FeatureCache& cache() const { return cache_; }

  /// Runs every request, batching opts.batch_size at a time (the final
  /// batch may be smaller). Deterministic for equal inputs; per-request
  /// predictions are invariant to batching (header comment).
  ServingReport serve(std::span<const SeedRequest> requests) const;

 private:
  struct PreparedBatch;  // sampled + gathered, awaiting its forward pass

  PreparedBatch prepare_batch(std::span<const SeedRequest> requests,
                              std::size_t first, std::size_t last,
                              SamplerScratch& scratch,
                              ServingReport& rep) const;
  void forward_batch(const PreparedBatch& pb,
                     std::span<const SeedRequest> requests,
                     const ModelConfig& cfg, const OpContext& ctx,
                     ServingReport& rep) const;

  const Dataset* ds_;
  const gpusim::DeviceSpec* dev_;
  ServeOptions opts_;
  int in_dim_;
  Csr csr_;                     // sampling topology
  FeatureCache cache_;
  std::vector<float> features_;  // full n x in_dim host-side feature table
};

}  // namespace gnnone
