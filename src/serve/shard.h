// Sharded multi-device serving: graph/feature partitioning, device roles,
// and the cross-device interconnect accounting (docs/SERVING.md §10).
//
// One simulated device stops scaling once the feature table and the request
// stream outgrow it; the FGNN/SamGraph distributed design splits the serving
// tier across N devices two ways at once:
//
//  * Data sharding: the vertex set is edge-cut into contiguous ranges of the
//    degree order (ShardMap). Each owner device holds its range's slice of
//    the feature table — and the pinned-cache rows that fall inside it — so
//    a gather resolves per vertex into local-hit (DRAM), local-miss (host
//    PCIe), remote-hit (a peer device's pinned row over NVLink,
//    DeviceSpec::nvlink_bytes_per_cycle) or remote-miss (host PCIe).
//  * Role factoring: gSuite's inference study shows the sampling scan and
//    the forward kernels contend destructively when co-located on one
//    device; FGNN's answer is to *dedicate* devices. ShardRole::kSampler
//    devices own graph shards and run sample+gather only, kForward devices
//    run forward passes only (fed over NVLink handoffs), and kSymmetric
//    devices do both — paying a colocation dilation on the two contending
//    stages (ShardOptions::colocation_dilation), which is exactly the
//    contention dedication removes.
//
// Every device gets its own DeviceMemory tracker, its own FeatureCache
// partition, and its own three-stream timeline; Σ exposed + idle ==
// makespan holds exactly per device, and the run's total is the slowest
// device's makespan. Predictions stay bit-identical to unsharded serving at
// every shard count and role assignment (per-request sampling keys on the
// trace seed alone; GCN/GAT forwards are component-local — server.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gnnone::serve {

/// What a device does in the sharded tier. Sampler-capable devices
/// (kSampler, kSymmetric) own graph/feature shards; forward-capable devices
/// (kForward, kSymmetric) run forward passes.
enum class ShardRole {
  kSymmetric,  // samples its shard and forwards its own batches
  kSampler,    // dedicated: sample + gather only, hands batches off
  kForward,    // dedicated: forward only, owns no shard
};

const char* shard_role_name(ShardRole r);

struct ShardOptions {
  /// Simulated devices the serving tier spans. 0 (the default) disables
  /// sharding — the single-device driver, bit for bit.
  int num_devices = 0;
  /// roles[d] is device d's role; empty means every device is kSymmetric.
  std::vector<ShardRole> roles;
  /// Stage-cycle multiplier on the sample and forward stages of kSymmetric
  /// devices: co-located sampling (a bandwidth-bound scan) and forward
  /// (compute kernels) slow each other down when they share one device —
  /// the gSuite/FGNN contention observation role dedication removes.
  /// Dedicated (kSampler / kForward) devices never pay it. 1.0 models no
  /// contention; must be >= 1.
  double colocation_dilation = 1.2;

  bool enabled() const { return num_devices > 0; }
  ShardRole role(int device) const {
    return roles.empty() ? ShardRole::kSymmetric
                         : roles[std::size_t(device)];
  }
  bool samples(int device) const { return role(device) != ShardRole::kForward; }
  bool forwards(int device) const { return role(device) != ShardRole::kSampler; }

  /// Throws std::invalid_argument on a negative device count, a role list
  /// whose size disagrees with num_devices, a role assignment with no
  /// sampler-capable or no forward-capable device, or a colocation_dilation
  /// below 1 (or non-finite).
  void Validate() const;
};

/// Edge-cut vertex partition by contiguous ranges of the degree order: the
/// ranking is split into num_owners near-equal slices (earlier owners get
/// the remainder), so every owner holds the same vertex count ±1 and the
/// hot (high-degree) head of the order concentrates on the first owner —
/// the same skew a real range partitioner over a degree-sorted relabeling
/// produces. owner(v) is an O(1) lookup.
class ShardMap {
 public:
  ShardMap() = default;
  /// `order` must rank every vertex exactly once (serve::degree_order);
  /// `owner_devices` lists the sampler-capable device ids, ascending.
  /// Throws std::invalid_argument when either is empty.
  ShardMap(std::span<const vid_t> order, std::span<const int> owner_devices);

  /// Device id owning vertex v's feature row and adjacency.
  int owner(vid_t v) const { return owner_of_[std::size_t(v)]; }
  int num_shards() const { return int(owners_.size()); }
  vid_t num_vertices() const { return vid_t(owner_of_.size()); }
  const std::vector<int>& owner_devices() const { return owners_; }
  /// Vertices owned by `device` (0 for a device that owns no shard).
  vid_t owned_count(int device) const;

 private:
  std::vector<int> owner_of_;  // vertex -> owning device id
  std::vector<int> owners_;    // shard index -> device id
  std::vector<vid_t> counts_;  // shard index -> owned vertices
};

/// Per-device accounting of one sharded serve. The timeline invariant is
/// per device: exposed_cycles + idle_cycles == makespan exactly, and the
/// run's ServingReport::total_cycles is the max makespan across devices.
struct DeviceShardReport {
  int device = 0;
  ShardRole role = ShardRole::kSymmetric;
  int sampled_batches = 0;  // batches whose sample+gather ran here
  int forward_batches = 0;  // batches whose forward ran here
  std::uint64_t sample_cycles = 0;   // incl. colocation dilation + backoff
  std::uint64_t gather_cycles = 0;   // incl. the outbound handoff push
  std::uint64_t forward_cycles = 0;  // incl. colocation dilation
  /// Extra cycles the colocation dilation added on this device (0 on
  /// dedicated devices and at dilation 1.0).
  std::uint64_t colocation_cycles = 0;
  std::uint64_t makespan = 0;
  std::uint64_t exposed_cycles = 0;
  std::uint64_t idle_cycles = 0;  // makespan - exposed, exactly
  /// Gather traffic of batches sampled here, split by path: local pinned
  /// rows (DRAM), local unpinned rows (host PCIe), peer-pinned rows
  /// (NVLink) and peer-unpinned rows (host PCIe).
  std::size_t hit_bytes = 0;
  std::size_t miss_bytes = 0;
  std::size_t remote_hit_bytes = 0;
  std::size_t remote_miss_bytes = 0;
  /// Sampler->forward handoff traffic pushed from this device (NVLink).
  std::size_t handoff_bytes = 0;
  /// This device's DeviceMemory high-water mark and its resident pinned
  /// cache bytes (what in_use() must equal between serves — the per-device
  /// leak invariant).
  std::size_t peak_bytes = 0;
  std::size_t cache_bytes = 0;
};

}  // namespace gnnone::serve
