// Multi-tenant SLO-aware batch scheduling for the serving path
// (docs/SERVING.md §8).
//
// A tenant is one (model kind, fanout config, SLO deadline) class of traffic
// — the gSuite cross-model x cross-config workload matrix. Each tenant owns
// a FIFO queue of arrived-but-unserved requests; a SchedulerPolicy decides,
// at every decision point of the simulated clock, which queue forms the next
// minibatch and whether to cut it short or wait for more arrivals:
//
//  * kFifo   — the throughput baseline every batching server starts as: the
//              queue of the globally earliest pending arrival is chosen, and
//              the batch waits until it is full or the oldest member has
//              waited max_wait_cycles. Great amortization, terrible tails:
//              a loose-SLO tenant's full batch happily starves a tight-SLO
//              tenant's deadline.
//  * kEdf    — earliest deadline first: the queue whose head request has the
//              earliest absolute deadline (arrival + slo_cycles) is served
//              *immediately* with whatever has arrived (never waits). The
//              classic optimal single-machine policy for max lateness.
//  * kSlack  — deadline-driven like kEdf, but batch-aware: a
//              BatchCostEstimator learns each tenant's batch-size -> service
//              -cycles curve from observed per-stage cycles, and the policy
//              keeps waiting for the next arrival only while the head
//              request's slack (deadline - now - estimated service) stays
//              nonnegative. Recovers kFifo's amortization when deadlines are
//              loose and kEdf's urgency when they are tight.
//
// All three are deterministic: decisions are pure functions of the arrival
// trace and observed (deterministic) service cycles, so a schedule replays
// bit-identically — including under chaos recovery, whose extra cycles
// simply advance the decision clock.
//
// The scheduler never mixes tenants in one minibatch (a batch runs exactly
// one model and one fanout config), and per-request sampling keys on the
// trace seed alone (server.h), so a request's predictions are bit-identical
// to the same request served by a single-tenant server with its tenant's
// config — the property the SLO bench pins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/chaos.h"

namespace gnnone::serve {

/// One traffic class: which model serves it, how deep it samples, and the
/// latency target its requests are held to.
struct TenantSpec {
  std::string name;                // report label ("interactive", "batchy")
  std::string model_kind = "gcn";  // "gcn", "gin" or "gat"
  std::vector<int> fanouts = {10, 5};
  /// Deadline: a request must complete within slo_cycles of its arrival.
  std::uint64_t slo_cycles = 1;
  /// Relative share of the feature-cache capacity under
  /// ServeOptions::partition_cache (serve::partition_capacities): rows are
  /// apportioned proportionally; all-zero shares split equally. Must be
  /// nonnegative. Ignored without partitioning.
  double cache_share = 0.0;
};

enum class SchedulerPolicy { kFifoAggregate, kEdf, kSlack };

constexpr const char* policy_name(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kFifoAggregate: return "fifo";
    case SchedulerPolicy::kEdf:           return "edf";
    case SchedulerPolicy::kSlack:         return "slack";
  }
  return "unknown";
}

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kFifoAggregate;
  /// kFifoAggregate: the batch is cut once its oldest member has waited this
  /// long, full or not (the classic dynamic-batching timeout). 0 = cut
  /// immediately with whatever is pending (degenerates to per-tenant FIFO
  /// with no amortization).
  std::uint64_t max_wait_cycles = 2'000'000;
  /// kSlack: EWMA weight of the newest per-request service observation in
  /// the batch-cost estimator, in (0, 1].
  double estimator_ewma = 0.3;
  /// Admission control: the deepest arrived-but-unserved backlog any single
  /// tenant queue may hold. A request arriving at a full queue is shed at
  /// admission (tail drop) — it reports Status::kRejected, is never batched,
  /// and its neighbors' schedule is untouched. 0 (the default) = unbounded,
  /// which reproduces the pre-admission scheduler bit for bit.
  std::size_t max_queue_depth = 0;
  /// Admission control: shed a request at arrival when the cost estimator —
  /// once seeded for its tenant — already prices a *solo* batch above the
  /// tenant's SLO. Such a request cannot meet its deadline even served
  /// alone and immediately; serving it anyway only deepens every queue
  /// behind it. Off by default (no shedding).
  bool shed_unmeetable = false;

  /// Throws std::invalid_argument on estimator_ewma outside (0, 1].
  void Validate() const;
};

/// Learns each tenant's batch-size <-> service-latency tradeoff from
/// observed per-stage cycles. The model is affine: a per-batch fixed cost
/// (launch overheads, the constant part of the sample stage) plus a
/// per-request marginal cost, both EWMA-tracked per tenant. Before the
/// first observation the estimate is 0 — the slack policy then never waits,
/// i.e. it behaves like kEdf until it has seen each tenant once.
class BatchCostEstimator {
 public:
  BatchCostEstimator(int num_tenants, double ewma);

  /// Feeds one served batch's measured service cycles (sample + gather +
  /// forward, recovery included — recovery time is real time the tenant's
  /// next batch waited behind).
  void observe(int tenant, int batch_requests, std::uint64_t service_cycles);

  /// Estimated service cycles of a `batch_requests`-sized batch for the
  /// tenant; 0 before the tenant's first observation.
  std::uint64_t estimate(int tenant, int batch_requests) const;

  bool seeded(int tenant) const { return per_tenant_[std::size_t(tenant)].n > 0; }

 private:
  // EWMA sufficient statistics of the (batch size, service cycles) stream,
  // from which the affine fit is solved in closed form on every estimate.
  struct Fit {
    double s_n = 0.0;    // EWMA of batch size
    double s_c = 0.0;    // EWMA of service cycles
    double s_nn = 0.0;   // EWMA of size^2
    double s_nc = 0.0;   // EWMA of size * cycles
    int n = 0;           // observations folded in
  };
  std::vector<Fit> per_tenant_;
  double ewma_;
};

/// Per-tenant FIFO queues plus the policy that turns them into minibatches.
/// Drive it with the simulated clock: enqueue the whole (arrival-sorted)
/// trace up front, then repeatedly ask next_batch(now) and feed the measured
/// service cycles back via observe().
class TenantScheduler {
 public:
  /// `batch_size` is the server's maximum minibatch size. Throws
  /// std::invalid_argument when opts.Validate() rejects the options,
  /// `tenants` is empty, or batch_size < 1.
  TenantScheduler(const std::vector<TenantSpec>& tenants,
                  const SchedulerOptions& opts, int batch_size);

  /// Registers a request (trace index `index`) of `tenant`, arriving at
  /// `arrival`. Must be called in trace order (the per-tenant queues are
  /// FIFO in arrival order).
  void enqueue(std::size_t index, int tenant, std::uint64_t arrival);

  /// The next minibatch the policy cuts, at or after cycle `now`:
  struct BatchPlan {
    int tenant = 0;
    /// When the batch was cut — every member arrived by then, and the batch
    /// may not start earlier (its release cycle on the timeline). Always
    /// >= the `now` passed in.
    std::uint64_t cut_cycle = 0;
    std::vector<std::size_t> members;  // trace indices, arrival order
  };
  /// std::nullopt once every enqueued request has been handed out. The
  /// clock advances to the next arrival by itself when nothing is pending.
  std::optional<BatchPlan> next_batch(std::uint64_t now);

  /// Feeds the slack policy's estimator (no-op for the other policies).
  void observe(int tenant, int batch_requests, std::uint64_t service_cycles) {
    estimator_.observe(tenant, batch_requests, service_cycles);
  }

  const BatchCostEstimator& estimator() const { return estimator_; }
  bool empty() const { return remaining_ == 0; }

  /// One request shed at admission (SchedulerOptions::max_queue_depth /
  /// shed_unmeetable), in admission order.
  struct ShedEvent {
    std::size_t index = 0;  // trace index
    int tenant = 0;
    /// true: priced above its SLO even solo; false: queue-full tail drop.
    bool unmeetable = false;
  };
  const std::vector<ShedEvent>& shed_events() const { return shed_events_; }

  /// Deepest arrived-but-unserved backlog any tenant queue reached across
  /// the run (admitted requests only — shed requests never occupy a slot).
  /// Tracked whether or not admission control is on.
  std::size_t peak_queue_depth() const { return peak_depth_; }

 private:
  struct Pending {
    std::size_t index;
    std::uint64_t arrival;
    /// Shed at admission: skipped by every cut and count, never handed out.
    bool shed = false;
  };
  /// Processes admission for every entry arrived by `cycle`, in arrival
  /// order: sheds (unmeetable / tail drop) or admits, maintaining the live
  /// depth and its peak. Idempotent per entry.
  void admit_until(std::uint64_t cycle);
  /// Advances tenant `t`'s head past shed entries.
  void skip_shed(int tenant);
  /// Queue position of the (k+1)-th unshed pending entry of `tenant`
  /// (k = 0 is the head), or the queue size when fewer exist.
  std::size_t nth_pending(int tenant, int k) const;
  /// Queue head position per tenant (queues are consumed front to back).
  std::uint64_t head_deadline(int tenant) const;
  /// Pending requests of `tenant` that have arrived by `cycle`, capped at
  /// batch_size.
  int arrived_count(int tenant, std::uint64_t cycle) const;
  BatchPlan cut(int tenant, std::uint64_t cut_cycle, int take);

  std::vector<TenantSpec> tenants_;
  SchedulerOptions opts_;
  int batch_size_;
  std::vector<std::vector<Pending>> queues_;  // per tenant, arrival order
  std::vector<std::size_t> heads_;            // consumed prefix per queue
  /// Admission cursor per queue: entries before it have been admitted or
  /// shed; entries at/after it have not "arrived" yet on the decision clock.
  std::vector<std::size_t> admit_pos_;
  /// Live (admitted, uncut) backlog per queue, and the run-wide peak.
  std::vector<std::size_t> depth_;
  std::size_t peak_depth_ = 0;
  std::vector<ShedEvent> shed_events_;
  std::size_t remaining_ = 0;
  BatchCostEstimator estimator_;
};

/// Per-tenant latency/SLO aggregate over one serving run. Latency is
/// arrival-to-completion: queue_cycles (arrival -> the batch's first stage
/// starts) + service_cycles (the batch's critical path through the
/// timeline). Percentiles are exact nearest-rank (util/stats.h) over the
/// tenant's *served* requests.
struct TenantReport {
  int tenant = 0;
  std::string name;
  std::uint64_t slo_cycles = 0;
  int requests = 0;   // trace requests of this tenant
  int served = 0;     // status kOk or kDegraded
  int degraded = 0;
  int failed = 0;     // admitted but incurable
  int rejected = 0;   // refused at the boundary
  std::uint64_t queue_cycles_total = 0;
  std::uint64_t service_cycles_total = 0;
  std::uint64_t p50_latency_cycles = 0;
  std::uint64_t p90_latency_cycles = 0;
  std::uint64_t p99_latency_cycles = 0;
  std::uint64_t max_latency_cycles = 0;
  /// Served-within-deadline share of the tenant's admitted (non-rejected)
  /// requests: a failed request always misses its SLO.
  double attainment = 0.0;
};

/// Aggregates per-request outcomes into per-tenant reports. `tenant_of[r]`
/// and `outcomes[r]` are trace-indexed; tenants with no traffic report
/// zeroed counters (attainment 1.0 — no admitted request missed).
std::vector<TenantReport> make_tenant_reports(
    const std::vector<TenantSpec>& tenants, const std::vector<int>& tenant_of,
    const std::vector<RequestOutcome>& outcomes);

}  // namespace gnnone::serve
