#include "serve/chaos.h"

namespace gnnone::serve {

namespace {

// Fault-kind stream ids: keep the per-request draws of different fault
// kinds (and the poison/severity draws within one kind) independent.
constexpr std::uint64_t kOomPoisonStream = 0x6f6f6d2d70ull;     // "oom-p"
constexpr std::uint64_t kOomSeverityStream = 0x6f6f6d2d73ull;   // "oom-s"
constexpr std::uint64_t kFetchPoisonStream = 0x6665742d70ull;   // "fet-p"
constexpr std::uint64_t kFetchSeverityStream = 0x6665742d73ull; // "fet-s"
constexpr std::uint64_t kKernelPoisonStream = 0x6b65722d70ull;  // "ker-p"
constexpr std::uint64_t kKernelSeverityStream = 0x6b65722d73ull;// "ker-s"

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

double chaos_uniform(std::uint64_t seed, std::uint64_t stream,
                     std::uint64_t key) {
  std::uint64_t z = mix64(seed + 0x9e3779b97f4a7c15ull);
  z = mix64(z ^ (stream + 0x9e3779b97f4a7c15ull));
  z = mix64(z ^ (key + 0x9e3779b97f4a7c15ull));
  return double(z >> 11) * 0x1.0p-53;
}

OomFate oom_fate(const ChaosOptions& chaos, std::size_t request) {
  OomFate f;
  if (chaos.oom_rate <= 0.0) return f;
  f.poisoned =
      chaos_uniform(chaos.seed, kOomPoisonStream, request) < chaos.oom_rate;
  if (!f.poisoned) return f;
  // Severity mix: most memory pressure is relieved by running the request
  // alone (smaller block), most of the rest by truncating its fanouts; a
  // small tail is genuinely too large at any setting.
  const double u = chaos_uniform(chaos.seed, kOomSeverityStream, request);
  f.cure_rung = u < 0.55 ? 1 : u < 0.90 ? 2 : 3;
  return f;
}

FetchFate fetch_fate(double rate, std::uint64_t seed, std::uint64_t request) {
  FetchFate f;
  if (rate <= 0.0) return f;
  f.poisoned = chaos_uniform(seed, kFetchPoisonStream, request) < rate;
  if (!f.poisoned) return f;
  // Most transients clear after one or two retries; a 5% tail never does
  // (a genuinely broken link) and must surface as Status::kTransientFetch.
  const double u = chaos_uniform(seed, kFetchSeverityStream, request);
  f.failing_attempts = u < 0.60 ? 1 : u < 0.85 ? 2 : u < 0.95 ? 3
                                                             : 0x7fffffff;
  return f;
}

KernelFate kernel_fate(const ChaosOptions& chaos, std::size_t request) {
  KernelFate f;
  if (chaos.kernel_rate <= 0.0) return f;
  f.poisoned = chaos_uniform(chaos.seed, kKernelPoisonStream, request) <
               chaos.kernel_rate;
  if (!f.poisoned) return f;
  // Most kernel faults are tied to the dispatched kernel family/config and
  // disappear on the conservative default; 20% are data-poisoned for good.
  f.safe_backend_cures =
      chaos_uniform(chaos.seed, kKernelSeverityStream, request) < 0.80;
  return f;
}

}  // namespace gnnone::serve
