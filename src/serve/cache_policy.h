// Feature-cache placement policies for GNN serving (docs/SERVING.md §9).
//
// The serving tier's byte budget is dominated by feature gathers, so *which*
// rows sit in device memory decides how much traffic crosses PCIe. Three
// deterministic policies compete behind one abstraction:
//
//  * kDegree — FGNN's static baseline (the pre-policy server, preserved bit
//    for bit): pin the top-alpha fraction of vertices by degree, ties by
//    ascending id.
//  * kPresampleFrequency — FGNN's headline result: run the deterministic
//    k-hop sampler for a few warmup epochs over a probe trace, count how
//    often each vertex is actually gathered, and pin the top-alpha by
//    observed frequency (degree-then-id tiebreak). Frequency measures the
//    sampler's real access distribution — in-neighbor reach under fanout
//    caps — which degree order only approximates; with zero epochs every
//    count ties at 0 and the order collapses to the degree order exactly.
//  * kClock — a recency policy: a CLOCK (second-chance) cache seeded from
//    the degree-ordered pinned set that adapts online. Hits set a slot's
//    reference bit; a miss evicts the first unreferenced slot at the hand
//    and installs the missed row. Misses still cross PCIe, and each
//    installed row is additionally written to the cache slot at DRAM
//    bandwidth, so adaptation has a modeled cost — the trade the drifting-
//    hot-set bench measures.
//
// The autotuner's signature machinery arbitrates: tune_cache_policy()
// replays a trace's sample+gather stream through every policy, records the
// winner in the TuningCache keyed by (graph signature, workload, device),
// and ServeOptions::cache_policy = kAuto dispatches that record (exact
// signature first, nearest fallback, degree when nothing matches).
//
// Everything here is deterministic: orders are full sorts with total
// tiebreaks, probe epochs derive their sampler seeds from (seed, epoch),
// and CLOCK state evolves per batch under an explicit commit discipline
// (feature_cache.h) so serial, pipelined, and chaos drivers observe
// identical hit/miss streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gen/requests.h"
#include "gpusim/device.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "sample/sampler.h"
#include "tune/cache.h"

namespace gnnone::serve {

enum class CachePolicy {
  kDegree,              // static top-alpha by degree (the original cache)
  kPresampleFrequency,  // static top-alpha by warmup-sampled frequency
  kClock,               // dynamic second-chance cache seeded from degree
  kAuto,                // dispatch the tuned winner per workload signature
};

const char* cache_policy_name(CachePolicy p);
/// Inverse of cache_policy_name; false when the name is unknown.
bool cache_policy_from_name(const std::string& name, CachePolicy* out);

/// The degree pin order: degree descending, ties by ascending id — exactly
/// the order the pre-policy FeatureCache sorted (and the request
/// generator's hot set uses), so kDegree stays bit-identical.
std::vector<vid_t> degree_order(const Coo& graph);

/// Per-vertex access counts from `epochs` warmup passes of the k-hop
/// sampler over `probe`: every vertex of every sampled block counts one
/// access per request (blocks are deduplicated within a request, the same
/// granularity the serving gather fetches at). Epoch e derives its sampler
/// seed from (seed, e), so epochs observe independent draws of the same
/// workload. `scratch` is the serving sampler's reusable intern table;
/// null allocates a private one. epochs == 0 (or an empty probe) returns
/// all-zero counts. Throws std::invalid_argument on negative epochs or a
/// probe seed outside the graph.
std::vector<std::uint64_t> presample_frequencies(
    const Csr& csr, std::span<const SeedRequest> probe,
    const std::vector<int>& fanouts, std::uint64_t seed, int epochs,
    SamplerScratch* scratch = nullptr);

/// The pre-sampling pin order: frequency descending, then degree
/// descending, then ascending id. All-zero frequencies (zero warmup
/// epochs) therefore reproduce degree_order() bit for bit.
std::vector<vid_t> frequency_order(std::span<const std::uint64_t> freq,
                                   std::span<const vid_t> degrees);

/// Default probe trace for kPresampleFrequency when the caller supplies
/// none: `num_requests` uniform 1–3-seed requests over the graph, derived
/// from (but distinct from) `seed` so the probe never aliases a serving
/// trace generated from the same seed.
std::vector<SeedRequest> default_presample_probe(const Coo& graph,
                                                 std::uint64_t seed,
                                                 int num_requests = 64);

/// Largest-remainder split of `capacity` cache rows across tenant shares:
/// all-zero shares mean an equal split; otherwise rows are apportioned
/// proportionally to the (nonnegative) shares. Deterministic — remainder
/// rows go to the largest fractional parts, ties to the lowest tenant
/// index — and the parts always sum exactly to `capacity`. Throws
/// std::invalid_argument on an empty share list or a negative share.
std::vector<vid_t> partition_capacities(vid_t capacity,
                                        std::span<const double> shares);

/// Canonical workload discriminator of a serving config — the `workload`
/// coordinate of tune::ServeKey, e.g. "alpha=0.100;fan=10-5;bs=24;f=32".
std::string cache_workload_key(double alpha, const std::vector<int>& fanouts,
                               int batch_size, int feat_dim);

/// Deterministic CLOCK (second-chance) cache state over feature rows.
/// Copyable value semantics: the serving layer snapshots per-batch states
/// to keep recovery replays (feature_cache.h's ClockTxn) order-invariant.
class ClockCache {
 public:
  ClockCache() = default;
  /// `capacity` slots pre-filled with the first `capacity` vertices of
  /// `seed_order` (the static policy's pinned prefix), reference bits
  /// clear. A full seed keeps alpha = 1 all-hit and alpha = 0 all-miss
  /// identical to the static policies.
  ClockCache(std::span<const vid_t> seed_order, vid_t capacity,
             vid_t num_vertices);

  vid_t capacity() const { return vid_t(slots_.size()); }
  bool contains(vid_t v) const { return slot_of_[std::size_t(v)] >= 0; }

  /// One reference of `v`. A hit sets the slot's second-chance bit and
  /// returns true. A miss (with capacity > 0) sweeps the hand — clearing
  /// set bits as it passes — evicts the first unreferenced slot, installs
  /// `v` there with its bit clear, advances the hand past it, and returns
  /// false. Capacity 0 is a pure miss.
  bool access(vid_t v);

 private:
  std::vector<vid_t> slots_;   // slot -> resident vertex
  std::vector<char> ref_;      // second-chance bit per slot
  std::vector<vid_t> slot_of_;  // vertex -> slot, -1 when absent
  std::size_t hand_ = 0;
};

/// One policy's replayed cost over a trace (tune_cache_policy).
struct PolicyOutcome {
  CachePolicy policy = CachePolicy::kDegree;
  std::uint64_t gather_cycles = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate() const {
    const double total = double(hits + misses);
    return total > 0.0 ? double(hits) / total : 0.0;
  }
};

/// The bake-off verdict: every concrete policy's replayed gather cost and
/// the winner (fewest gather cycles; ties break in enum order, so degree —
/// the conservative default — wins exact ties).
struct CachePolicyBakeoff {
  std::vector<PolicyOutcome> outcomes;  // kDegree, kPresampleFrequency, kClock
  CachePolicy winner = CachePolicy::kDegree;
};

/// Workload knobs of one bake-off run — mirrors the ServeOptions fields
/// that shape gather traffic, without depending on server.h.
struct PolicyTuneConfig {
  double cache_alpha = 0.1;
  std::vector<int> fanouts = {10, 5};
  int batch_size = 8;
  int feat_len = 32;
  std::uint64_t seed = 1;
  int presample_epochs = 3;
  /// Probe trace for the frequency policy; empty = default_presample_probe.
  std::vector<SeedRequest> presample_probe;
  std::size_t elem_bytes = sizeof(float);
};

/// Replays `trace`'s sample + gather stream (no forward passes — gather
/// traffic is all that differs between policies) through each concrete
/// policy and, when `out` is non-null, records the winner under
/// (signature_of(graph), cache_workload_key(cfg), device_key(dev)) so a
/// later kAuto server dispatches it. Deterministic; throws
/// std::invalid_argument on invalid cfg or a trace seed outside the graph.
CachePolicyBakeoff tune_cache_policy(const Coo& graph,
                                     const gpusim::DeviceSpec& dev,
                                     const PolicyTuneConfig& cfg,
                                     std::span<const SeedRequest> trace,
                                     tune::TuningCache* out);

}  // namespace gnnone::serve
