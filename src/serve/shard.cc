// Sharded multi-device serving (serve/shard.h; docs/SERVING.md §10).
//
// Two translation units make up the serving driver: server.cc owns the
// single-device and scheduled paths plus the shared attempt machinery
// (prepare_group / forward_group / the recovery ladder), and this file owns
// everything sharding adds on top — the vertex partition, the sharded
// gather's local/remote split, and the multi-device driver with its
// per-device three-stream timelines.
//
// Scheduling model. Each batch contributes two device work items: PREP
// (sample + gather + outbound handoff, on the batch's owner device) and FWD
// (the forward pass, on its assigned forward device). A device executes its
// items serially — one simulated GPU does not time-slice stages — and picks,
// whenever it is free, the ready item with the smallest batch id; devices
// run concurrently against a shared clock. Items are committed globally in
// nondecreasing start order, which makes the per-stream span sequences
// time-ordered and the whole schedule deterministic. At one symmetric
// device this degenerates to exactly the unsharded serial chain
// (sample -> gather -> forward -> next batch), which is what the shards=1
// equality test pins.

#include "serve/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "serve/chaos.h"
#include "serve/server.h"
#include "serve/server_state.h"

namespace gnnone {

namespace serve {

const char* shard_role_name(ShardRole r) {
  switch (r) {
    case ShardRole::kSymmetric: return "symmetric";
    case ShardRole::kSampler:   return "sampler";
    case ShardRole::kForward:   return "forward";
  }
  return "unknown";
}

void ShardOptions::Validate() const {
  if (num_devices < 0) {
    throw std::invalid_argument(
        "ShardOptions: num_devices must be >= 0, got " +
        std::to_string(num_devices));
  }
  if (!enabled()) return;
  if (!roles.empty() && int(roles.size()) != num_devices) {
    throw std::invalid_argument(
        "ShardOptions: roles must be empty or list exactly num_devices "
        "entries (" +
        std::to_string(roles.size()) + " roles for " +
        std::to_string(num_devices) + " devices)");
  }
  bool any_sampler = false, any_forward = false;
  for (int d = 0; d < num_devices; ++d) {
    any_sampler = any_sampler || samples(d);
    any_forward = any_forward || forwards(d);
  }
  if (!any_sampler) {
    throw std::invalid_argument(
        "ShardOptions: at least one device must be sampler-capable "
        "(kSampler or kSymmetric) — someone has to own the graph");
  }
  if (!any_forward) {
    throw std::invalid_argument(
        "ShardOptions: at least one device must be forward-capable "
        "(kForward or kSymmetric) — someone has to run the model");
  }
  if (!std::isfinite(colocation_dilation) || colocation_dilation < 1.0) {
    throw std::invalid_argument(
        "ShardOptions: colocation_dilation must be finite and >= 1, got " +
        std::to_string(colocation_dilation));
  }
}

ShardMap::ShardMap(std::span<const vid_t> order,
                   std::span<const int> owner_devices) {
  if (order.empty()) {
    throw std::invalid_argument("ShardMap: vertex order must not be empty");
  }
  if (owner_devices.empty()) {
    throw std::invalid_argument("ShardMap: owner device list must not be "
                                "empty");
  }
  owners_.assign(owner_devices.begin(), owner_devices.end());
  const std::size_t n = order.size();
  const std::size_t k = owners_.size();
  owner_of_.assign(n, -1);
  counts_.assign(k, 0);
  // Near-equal contiguous slices of the ranking; the first n % k owners
  // take one extra vertex, so sizes differ by at most one and the split is
  // a pure function of (n, k).
  const std::size_t base = n / k, rem = n % k;
  std::size_t pos = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t take = base + (s < rem ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i, ++pos) {
      const std::size_t v = std::size_t(order[pos]);
      if (v >= n || owner_of_[v] != -1) {
        throw std::invalid_argument(
            "ShardMap: order must rank every vertex exactly once");
      }
      owner_of_[v] = owners_[s];
    }
    counts_[s] = vid_t(take);
  }
}

vid_t ShardMap::owned_count(int device) const {
  for (std::size_t s = 0; s < owners_.size(); ++s) {
    if (owners_[s] == device) return counts_[s];
  }
  return 0;
}

}  // namespace serve

std::uint64_t InferenceServer::colocation_extra(int device,
                                                std::uint64_t cycles) const {
  if (device < 0 || !sharded()) return 0;
  if (opts_.shard.role(device) != serve::ShardRole::kSymmetric) return 0;
  return std::uint64_t(
      std::llround((opts_.shard.colocation_dilation - 1.0) * double(cycles)));
}

GatherStats InferenceServer::sharded_gather(
    ServeState& st, std::span<const vid_t> unique_vertices,
    std::span<const GatherProbe> probes, GroupMode mode,
    std::size_t b) const {
  // Mirror FeatureCache::gather's boundary behaviour exactly: an empty
  // vertex span is a no-op (no launch, no fault probe), and the fault check
  // fires before any cycle or byte is charged. The check lives *here*, not
  // in the per-device caches, so a request's (key, attempt) coordinate is
  // probed exactly once per gather attempt no matter how its vertices split
  // between local and remote owners — chaos outcomes are shard-layout
  // invariant.
  if (unique_vertices.empty()) return {};
  if (opts_.chaos.fetch_rate > 0.0) {
    for (const GatherProbe& p : probes) {
      const serve::FetchFate f = serve::fetch_fate(
          opts_.chaos.fetch_rate, opts_.chaos.seed, p.key);
      if (f.poisoned && p.attempt < f.failing_attempts) {
        throw TransientFetchError(p.key, p.attempt + 1);
      }
    }
  }

  ServingReport& rep = *st.rep;
  const int dev = st.shard_device;
  const FeatureCache& fc = shard_caches_[std::size_t(dev)];
  const std::size_t row = fc.row_bytes();

  GatherStats gst;
  std::vector<vid_t> local;
  local.reserve(unique_vertices.size());
  for (vid_t v : unique_vertices) {
    const int owner = shard_map_.owner(v);
    if (owner == dev) {
      local.push_back(v);
      continue;
    }
    // Remote rows: the owner's pinned copy streams over NVLink; anything
    // the owner does not pin is refetched from the host over PCIe. Under
    // kClock the remote lookup consults the owner's *seeded* membership
    // (FeatureCache::cached) — a peer's in-flight CLOCK hand is not
    // observable across the link, so only the static resident set is.
    // Safe mode (cache bypass) refuses peers too: every row crosses PCIe.
    if (!mode.safe && shard_caches_[std::size_t(owner)].cached(v)) {
      ++gst.remote_hits;
      gst.remote_hit_bytes += row;
    } else {
      ++gst.remote_misses;
      gst.remote_miss_bytes += row;
    }
  }

  // Local rows go through the owner's cache partition with the full policy
  // machinery — per-device CLOCK transactions included. Probes were checked
  // above, so none are passed down (a fate must never be probed twice per
  // attempt).
  FeatureCache::ClockGatherCtx clock;
  if (policy_ == serve::CachePolicy::kClock && !st.clock_txns.empty()) {
    clock.txn = &st.clock_txns[std::size_t(dev)];
    clock.batch = std::int64_t(b);
    clock.commit =
        !mode.truncated && !mode.safe &&
        probes.size() == std::size_t(rep.batches[b].num_requests);
  }
  GatherStats local_st;
  if (!local.empty()) {
    local_st = fc.gather(local, &rep.ledger, &rep.bytes,
                         std::span<const GatherProbe>(), mode.safe, clock);
  }
  gst.hits = local_st.hits;
  gst.misses = local_st.misses;
  gst.evictions = local_st.evictions;
  gst.hit_bytes = local_st.hit_bytes;
  gst.miss_bytes = local_st.miss_bytes;
  gst.insert_bytes = local_st.insert_bytes;

  // Remote traffic and the launch make-up: the local gather charged its own
  // launch + DRAM/PCIe spans, or nothing at all when every row was remote —
  // in which case the one launch this batch's gather still issues is
  // charged here, so every non-empty gather costs exactly one launch
  // regardless of the local/remote split.
  const std::uint64_t remote_cycles =
      std::uint64_t(std::ceil(double(gst.remote_hit_bytes) /
                              dev_.nvlink_bytes_per_cycle)) +
      std::uint64_t(std::ceil(double(gst.remote_miss_bytes) /
                              dev_.pcie_bytes_per_cycle));
  const std::uint64_t extra = remote_cycles + (local.empty() ? 2000 : 0);
  if (extra > 0) rep.ledger.add("feature_gather", extra);
  if (gst.remote_hit_bytes > 0) {
    rep.bytes.add("feature_remote_hit", gst.remote_hit_bytes);
  }
  if (gst.remote_miss_bytes > 0) {
    rep.bytes.add("feature_remote_miss", gst.remote_miss_bytes);
  }
  gst.cycles = local_st.cycles + extra;
  return gst;
}

ServingReport InferenceServer::serve_sharded(
    std::span<const SeedRequest> requests) const {
  ServingReport rep;
  rep.num_requests = int(requests.size());
  rep.pipelined = false;
  rep.predictions.resize(requests.size());
  rep.outcomes.resize(requests.size());

  // Boundary validation, identical to the single-device driver.
  std::vector<std::size_t> valid;
  valid.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    std::string err =
        serve_detail::validate_request(requests[r], csr_.num_rows);
    if (err.empty()) {
      valid.push_back(r);
    } else {
      rep.outcomes[r].status = serve::Status::kRejected;
      rep.outcomes[r].error = std::move(err);
    }
  }

  // Route each admitted request to the device owning its first seed (the
  // request's anchor vertex; validation guarantees seeds are non-empty).
  // Trace order is preserved within a device, so a device's batch sequence
  // is exactly what the unsharded driver would form from the subsequence it
  // owns — and at one shard the whole trace lands on device 0 in order.
  const int nd = opts_.shard.num_devices;
  const std::size_t ndd = std::size_t(nd);
  std::vector<std::vector<std::size_t>> routed(ndd);
  for (std::size_t r : valid) {
    const int owner = shard_map_.owner(requests[r].seeds[0]);
    routed[std::size_t(owner)].push_back(r);
  }

  // Batch per device, batches laid out device-major. Forward assignment: a
  // forward-capable owner keeps its own batches (no handoff); a dedicated
  // sampler hands off round-robin across the forward-capable devices.
  std::vector<int> fwd_devices;
  for (int d = 0; d < nd; ++d) {
    if (opts_.shard.forwards(d)) fwd_devices.push_back(d);
  }
  struct ShardBatch {
    int sampler = 0;
    int forward = 0;
    std::vector<std::size_t> members;
  };
  std::vector<ShardBatch> plan;
  const std::size_t bsz = std::size_t(opts_.batch_size);
  std::size_t rr = 0;  // round-robin cursor over fwd_devices
  for (int d = 0; d < nd; ++d) {
    const std::vector<std::size_t>& q = routed[std::size_t(d)];
    for (std::size_t at = 0; at < q.size(); at += bsz) {
      ShardBatch sb;
      sb.sampler = d;
      sb.forward = opts_.shard.forwards(d)
                       ? d
                       : fwd_devices[rr++ % fwd_devices.size()];
      sb.members.assign(q.begin() + long(at),
                        q.begin() + long(std::min(at + bsz, q.size())));
      plan.push_back(std::move(sb));
    }
  }
  const std::size_t nb = plan.size();
  rep.num_batches = int(nb);
  rep.batches.resize(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    rep.batches[b].num_requests = int(plan[b].members.size());
    rep.batches[b].sampler_device = plan[b].sampler;
    rep.batches[b].forward_device = plan[b].forward;
  }

  const ModelConfig cfg =
      model_config_for(opts_.model_kind, in_dim_, ds_->num_classes);

  ServeState st;
  st.requests = requests;
  st.rep = &rep;
  st.cfg = &cfg;
  st.ctx.dev = &dev_;
  st.ctx.ledger = &rep.ledger;
  st.ctx.training = false;
  st.gather_attempts.assign(requests.size(), 0);
  if (policy_ == serve::CachePolicy::kClock) {
    for (const FeatureCache& c : shard_caches_) {
      st.clock_txns.emplace_back(c);  // index == device id
    }
  }

  // Execute every batch (device-major order). Execution order does not
  // affect outcomes — the chaos schedule keys on trace indices, sampling on
  // per-request seeds, and CLOCK transactions are per device with each
  // device's batches running in its own ascending order either way. Cycle
  // *placement* onto the per-device timelines happens afterwards, from the
  // measured stage costs.
  for (std::size_t b = 0; b < nb; ++b) {
    const ShardBatch& sb = plan[b];
    st.shard_device = sb.sampler;
    st.shard_fwd_device = sb.forward;
    st.mem = shard_mems_[std::size_t(sb.sampler)].get();
    st.fwd_mem = sb.forward != sb.sampler
                     ? shard_mems_[std::size_t(sb.forward)].get()
                     : nullptr;
    StageFault fault;
    if (!try_group(st, sb.members, GroupMode{}, b, &fault)) {
      recover_batch(st, b, sb.members, fault);
    }
    // Sampler -> forward handoff: the sampled topology (row + col + the
    // local->global map, 4 B each) and the staged feature rows cross
    // NVLink when the forward runs elsewhere. Charged once per batch from
    // the accumulated shape counters, so recovery attempts that re-sampled
    // the batch push their re-staged bytes too.
    BatchStats& bs = rep.batches[b];
    if (sb.forward != sb.sampler) {
      const std::size_t bytes =
          (2 * std::size_t(bs.num_edges) + std::size_t(bs.num_vertices)) * 4 +
          std::size_t(bs.num_unique_vertices) * std::size_t(in_dim_) * 4;
      const std::uint64_t cyc = std::uint64_t(
          std::ceil(double(bytes) / dev_.nvlink_bytes_per_cycle));
      rep.ledger.add("handoff", cyc);
      bs.handoff_cycles += cyc;
      bs.handoff_bytes += bytes;
    }
  }

  // ---- schedule: per-device serial execution, concurrent devices --------
  // Commit items in globally nondecreasing start order; each device, when
  // free, runs the ready item with the smallest batch id (file comment).
  std::vector<StreamTimeline> tls;
  tls.reserve(std::size_t(nd));
  for (int d = 0; d < nd; ++d) tls.emplace_back(kNumServeStreams);
  std::vector<std::uint64_t> free_at(ndd, 0);
  std::vector<std::uint64_t> prep_end(nb, 0), sample_start(nb, 0),
      fwd_end(nb, 0);
  std::vector<char> prep_done(nb, 0), fwd_done(nb, 0);
  // Per device: its prep batches (run in batch order) and fwd batches.
  std::vector<std::vector<std::size_t>> preps(ndd), fwds(ndd);
  std::vector<std::size_t> next_prep(ndd, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    preps[std::size_t(plan[b].sampler)].push_back(b);
    fwds[std::size_t(plan[b].forward)].push_back(b);
  }

  std::size_t remaining = 2 * nb;
  while (remaining > 0) {
    constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t best_start = kInf;
    std::size_t best_batch = 0;
    int best_dev = -1;
    bool best_is_fwd = false;
    for (int d = 0; d < nd; ++d) {
      const std::size_t dd = std::size_t(d);
      // Candidate 1: the device's next prep (always ready; closed loop).
      if (next_prep[dd] < preps[dd].size()) {
        const std::size_t b = preps[dd][next_prep[dd]];
        const std::uint64_t start = free_at[dd];
        if (start < best_start ||
            (start == best_start && b < best_batch)) {
          best_start = start;
          best_batch = b;
          best_dev = d;
          best_is_fwd = false;
        }
      }
      // Candidate 2: any prepared-but-unforwarded batch assigned here.
      for (std::size_t b : fwds[dd]) {
        if (fwd_done[b] || !prep_done[b]) continue;
        const std::uint64_t start = std::max(free_at[dd], prep_end[b]);
        if (start < best_start ||
            (start == best_start &&
             (b < best_batch || (b == best_batch && !best_is_fwd)))) {
          best_start = start;
          best_batch = b;
          best_dev = d;
          best_is_fwd = true;
        }
      }
    }
    const std::size_t b = best_batch;
    const std::size_t dd = std::size_t(best_dev);
    const BatchStats& bs = rep.batches[b];
    if (!best_is_fwd) {
      // PREP: the sample span (backoff waits ride it, as on the unsharded
      // timeline) chained into the gather span (outbound handoff rides it).
      const std::size_t is =
          tls[dd].place(kSampleStream, int(b), free_at[dd],
                        bs.sample_cycles + bs.backoff_cycles);
      const std::size_t ig =
          tls[dd].place(kGatherStream, int(b), tls[dd].span(is).end,
                        bs.gather.cycles + bs.handoff_cycles);
      sample_start[b] = tls[dd].span(is).start;
      prep_end[b] = tls[dd].span(ig).end;
      free_at[dd] = prep_end[b];
      prep_done[b] = 1;
      ++next_prep[dd];
    } else {
      const std::size_t fi = tls[dd].place(
          kForwardStream, int(b), std::max(free_at[dd], prep_end[b]),
          bs.forward_cycles);
      fwd_end[b] = tls[dd].span(fi).end;
      free_at[dd] = fwd_end[b];
      fwd_done[b] = 1;
    }
    --remaining;
  }
  for (StreamTimeline& tl : tls) tl.attribute();

  // ---- fold the schedule into the report --------------------------------
  for (std::size_t b = 0; b < nb; ++b) {
    BatchStats& bs = rep.batches[b];
    bs.cycles = bs.sample_cycles + bs.gather.cycles + bs.forward_cycles +
                bs.backoff_cycles + bs.handoff_cycles;
    bs.latency_cycles = fwd_end[b] - sample_start[b];
    rep.sample_cycles += bs.sample_cycles;
    rep.gather_cycles += bs.gather.cycles;
    rep.forward_cycles += bs.forward_cycles;
    rep.max_batch_cycles = std::max(rep.max_batch_cycles, bs.latency_cycles);
    rep.cache_hits += bs.gather.hits;
    rep.cache_misses += bs.gather.misses;
    rep.cache_evictions += bs.gather.evictions;
    rep.cache_hit_bytes += bs.gather.hit_bytes;
    rep.cache_miss_bytes += bs.gather.miss_bytes;
    rep.cache_insert_bytes += bs.gather.insert_bytes;
    rep.remote_hits += bs.gather.remote_hits;
    rep.remote_misses += bs.gather.remote_misses;
    rep.remote_hit_bytes += bs.gather.remote_hit_bytes;
    rep.remote_miss_bytes += bs.gather.remote_miss_bytes;
    rep.handoff_bytes += bs.handoff_bytes;
    for (std::size_t idx : plan[b].members) {
      serve::RequestOutcome& o = rep.outcomes[idx];
      const std::uint64_t arrival = requests[idx].arrival_cycle;
      o.queue_cycles =
          sample_start[b] > arrival ? sample_start[b] - arrival : 0;
      o.service_cycles = fwd_end[b] - sample_start[b];
    }
  }
  rep.serial_cycles = rep.ledger.total();

  rep.devices.resize(std::size_t(nd));
  for (int d = 0; d < nd; ++d) {
    const std::size_t dd = std::size_t(d);
    serve::DeviceShardReport& dr = rep.devices[dd];
    dr.device = d;
    dr.role = opts_.shard.role(d);
    for (std::size_t b : preps[dd]) {
      const BatchStats& bs = rep.batches[b];
      ++dr.sampled_batches;
      dr.sample_cycles += bs.sample_cycles + bs.backoff_cycles;
      dr.gather_cycles += bs.gather.cycles + bs.handoff_cycles;
      dr.colocation_cycles += bs.colocation_sample_cycles;
      dr.hit_bytes += bs.gather.hit_bytes;
      dr.miss_bytes += bs.gather.miss_bytes;
      dr.remote_hit_bytes += bs.gather.remote_hit_bytes;
      dr.remote_miss_bytes += bs.gather.remote_miss_bytes;
      dr.handoff_bytes += bs.handoff_bytes;
    }
    for (std::size_t b : fwds[dd]) {
      const BatchStats& bs = rep.batches[b];
      ++dr.forward_batches;
      dr.forward_cycles += bs.forward_cycles;
      dr.colocation_cycles += bs.colocation_forward_cycles;
    }
    dr.makespan = tls[dd].makespan();
    for (const StageSpan& span : tls[dd].spans()) {
      dr.exposed_cycles += span.exposed;
    }
    dr.idle_cycles = tls[dd].idle_cycles();
    dr.peak_bytes = shard_mems_[dd]->peak();
    dr.cache_bytes = shard_caches_[dd].device_bytes();
    rep.total_cycles = std::max(rep.total_cycles, dr.makespan);
    rep.idle_cycles += dr.idle_cycles;
  }

  // The report-level timeline concatenates the per-device schedules in
  // device order; spans carry their batch and stream ids. At one shard this
  // is exactly the unsharded batch-major layout (span 3b + stream).
  for (const StreamTimeline& tl : tls) {
    for (const StageSpan& span : tl.spans()) {
      rep.timeline.push_back(span);
      StageSplit& split = span.stream == kSampleStream   ? rep.sample_split
                          : span.stream == kGatherStream ? rep.gather_split
                                                         : rep.forward_split;
      split.cycles += span.cycles();
      split.exposed += span.exposed;
      split.overlapped += span.overlapped;
    }
  }
  return rep;
}

}  // namespace gnnone
