#include "serve/pipeline.h"

#include <algorithm>

namespace gnnone {

std::size_t StreamTimeline::place(int stream, int batch, std::uint64_t ready,
                                  std::uint64_t cycles) {
  const std::uint64_t start =
      std::max(ready, stream_free_[std::size_t(stream)]);
  StageSpan s;
  s.batch = batch;
  s.stream = stream;
  s.start = start;
  s.end = start + cycles;
  stream_free_[std::size_t(stream)] = s.end;
  spans_.push_back(s);
  return spans_.size() - 1;
}

std::uint64_t StreamTimeline::makespan() const {
  std::uint64_t m = 0;
  for (const StageSpan& s : spans_) m = std::max(m, s.end);
  return m;
}

void StreamTimeline::attribute() {
  // Sweep the elementary intervals between span boundaries. Every span
  // covers a whole number of elementary intervals, so within one interval
  // the active set is constant; the active span on the highest-numbered
  // stream is the exposed occupant, everything else active is overlapped.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(2 * spans_.size() + 1);
  bounds.push_back(0);  // idle before the first span counts toward idle too
  for (StageSpan& s : spans_) {
    s.exposed = 0;
    s.overlapped = 0;
    if (s.start < s.end) {
      bounds.push_back(s.start);
      bounds.push_back(s.end);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  idle_cycles_ = 0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::uint64_t lo = bounds[i], hi = bounds[i + 1];
    StageSpan* winner = nullptr;
    for (StageSpan& s : spans_) {
      if (s.start <= lo && s.end >= hi && s.start < s.end) {
        if (winner == nullptr || s.stream > winner->stream) winner = &s;
      }
    }
    if (winner == nullptr) {
      // Idle gap: attributed to nobody, accounted exactly — open-loop
      // schedules wait for arrivals, and the tiling invariant is
      // Sigma exposed + idle == makespan.
      idle_cycles_ += hi - lo;
      continue;
    }
    for (StageSpan& s : spans_) {
      if (s.start <= lo && s.end >= hi && s.start < s.end) {
        (&s == winner ? s.exposed : s.overlapped) += hi - lo;
      }
    }
  }
}

StreamTimeline serve_timeline(std::span<const BatchStageCycles> batches,
                              bool pipelined) {
  StreamTimeline tl(kNumServeStreams);
  std::vector<std::uint64_t> retired(batches.size(), 0);  // forward end
  std::uint64_t cursor = 0;                               // serial chain
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const BatchStageCycles& c = batches[b];
    const std::uint64_t slot_free =
        pipelined ? (b >= 2 ? retired[b - 2] : 0) : cursor;
    const std::size_t is = tl.place(kSampleStream, int(b),
                                    std::max(slot_free, c.release), c.sample);
    const std::size_t ig =
        tl.place(kGatherStream, int(b), tl.span(is).end, c.gather);
    const std::size_t fi =
        tl.place(kForwardStream, int(b), tl.span(ig).end, c.forward);
    retired[b] = tl.span(fi).end;
    cursor = tl.span(fi).end;
  }
  tl.attribute();
  return tl;
}

}  // namespace gnnone
