#include "serve/cache_policy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "graph/convert.h"
#include "serve/feature_cache.h"
#include "tune/signature.h"

namespace gnnone::serve {

const char* cache_policy_name(CachePolicy p) {
  switch (p) {
    case CachePolicy::kDegree:
      return "degree";
    case CachePolicy::kPresampleFrequency:
      return "presample_freq";
    case CachePolicy::kClock:
      return "clock";
    case CachePolicy::kAuto:
      return "auto";
  }
  return "degree";
}

bool cache_policy_from_name(const std::string& name, CachePolicy* out) {
  if (name == "degree") {
    *out = CachePolicy::kDegree;
  } else if (name == "presample_freq") {
    *out = CachePolicy::kPresampleFrequency;
  } else if (name == "clock") {
    *out = CachePolicy::kClock;
  } else if (name == "auto") {
    *out = CachePolicy::kAuto;
  } else {
    return false;
  }
  return true;
}

std::vector<vid_t> degree_order(const Coo& graph) {
  const vid_t n = graph.num_rows;
  const auto deg = row_lengths(graph);
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[std::size_t(v)] = v;
  // Full sort (not nth_element) so the pinned set is deterministic and
  // matches the request generator's hot-set ordering exactly.
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    if (deg[std::size_t(a)] != deg[std::size_t(b)]) {
      return deg[std::size_t(a)] > deg[std::size_t(b)];
    }
    return a < b;
  });
  return order;
}

std::vector<std::uint64_t> presample_frequencies(
    const Csr& csr, std::span<const SeedRequest> probe,
    const std::vector<int>& fanouts, std::uint64_t seed, int epochs,
    SamplerScratch* scratch) {
  if (epochs < 0) {
    throw std::invalid_argument(
        "presample_frequencies: epochs must be nonnegative");
  }
  std::vector<std::uint64_t> freq(std::size_t(csr.num_rows), 0);
  if (epochs == 0 || probe.empty()) return freq;
  SamplerScratch own;
  if (scratch == nullptr) scratch = &own;
  SampleOptions so;
  so.fanouts = fanouts;
  for (int e = 0; e < epochs; ++e) {
    // Epoch 0 samples with the serving seed itself — a probe equal to the
    // serving trace then observes the exact access stream — and later
    // epochs add independent draws of the same workload.
    so.seed = seed + 0x9e3779b97f4a7c15ULL * std::uint64_t(e);
    for (const SeedRequest& req : probe) {
      const SampledSubgraph sg = sample_khop(csr, req.seeds, so, scratch);
      // Blocks are deduplicated within a request, so each sampled vertex
      // counts one access per request — the granularity the serving gather
      // fetches at.
      for (vid_t v : sg.vertices) ++freq[std::size_t(v)];
    }
  }
  return freq;
}

std::vector<vid_t> frequency_order(std::span<const std::uint64_t> freq,
                                   std::span<const vid_t> degrees) {
  if (freq.size() != degrees.size()) {
    throw std::invalid_argument(
        "frequency_order: freq and degrees must rank the same vertex set");
  }
  std::vector<vid_t> order(freq.size());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = vid_t(v);
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    if (freq[std::size_t(a)] != freq[std::size_t(b)]) {
      return freq[std::size_t(a)] > freq[std::size_t(b)];
    }
    if (degrees[std::size_t(a)] != degrees[std::size_t(b)]) {
      return degrees[std::size_t(a)] > degrees[std::size_t(b)];
    }
    return a < b;
  });
  return order;
}

std::vector<SeedRequest> default_presample_probe(const Coo& graph,
                                                 std::uint64_t seed,
                                                 int num_requests) {
  RequestTraceOptions opts;
  opts.num_requests = num_requests;
  opts.min_seeds = 1;
  opts.max_seeds = 3;
  opts.hot_fraction = 0.0;
  // Derived from (but distinct from) the serving seed so the probe never
  // aliases a serving trace generated from the same seed.
  opts.seed = seed ^ 0xc2b2ae3d27d4eb4fULL;
  return make_request_trace(graph, opts);
}

std::vector<vid_t> partition_capacities(vid_t capacity,
                                        std::span<const double> shares) {
  if (shares.empty()) {
    throw std::invalid_argument(
        "partition_capacities: need at least one tenant share");
  }
  double total = 0.0;
  for (double s : shares) {
    if (!(s >= 0.0)) {  // rejects negatives and NaN
      throw std::invalid_argument(
          "partition_capacities: shares must be nonnegative");
    }
    total += s;
  }
  const std::size_t k = shares.size();
  std::vector<double> quota(k);
  for (std::size_t i = 0; i < k; ++i) {
    // All-zero shares mean an equal split.
    const double w = total > 0.0 ? shares[i] / total : 1.0 / double(k);
    quota[i] = double(capacity) * w;
  }
  std::vector<vid_t> parts(k);
  vid_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    parts[i] = vid_t(std::floor(quota[i]));
    assigned += parts[i];
  }
  // Largest remainder: leftover rows go to the largest fractional parts,
  // ties to the lowest tenant index, so the parts sum exactly to capacity.
  std::vector<std::size_t> idx(k);
  std::iota(idx.begin(), idx.end(), std::size_t(0));
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return quota[a] - std::floor(quota[a]) > quota[b] - std::floor(quota[b]);
  });
  for (std::size_t i = 0; assigned < capacity; ++i) {
    ++parts[idx[i % k]];
    ++assigned;
  }
  return parts;
}

std::string cache_workload_key(double alpha, const std::vector<int>& fanouts,
                               int batch_size, int feat_dim) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "alpha=%.3f", alpha);
  std::string key = buf;
  key += ";fan=";
  for (std::size_t i = 0; i < fanouts.size(); ++i) {
    if (i > 0) key += '-';
    key += std::to_string(fanouts[i]);
  }
  std::snprintf(buf, sizeof buf, ";bs=%d;f=%d", batch_size, feat_dim);
  key += buf;
  return key;
}

ClockCache::ClockCache(std::span<const vid_t> seed_order, vid_t capacity,
                       vid_t num_vertices)
    : slot_of_(std::size_t(num_vertices), vid_t(-1)) {
  if (capacity < 0 || capacity > num_vertices ||
      std::size_t(capacity) > seed_order.size()) {
    throw std::invalid_argument("ClockCache: capacity out of range");
  }
  slots_.assign(seed_order.begin(), seed_order.begin() + capacity);
  ref_.assign(std::size_t(capacity), 0);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    slot_of_[std::size_t(slots_[s])] = vid_t(s);
  }
}

bool ClockCache::access(vid_t v) {
  const vid_t s = slot_of_[std::size_t(v)];
  if (s >= 0) {
    ref_[std::size_t(s)] = 1;  // second chance
    return true;
  }
  if (slots_.empty()) return false;  // capacity 0: nothing can be installed
  // Sweep the hand, clearing reference bits, until an unreferenced victim
  // appears (guaranteed within two laps), then install v in its place.
  while (ref_[hand_] != 0) {
    ref_[hand_] = 0;
    hand_ = (hand_ + 1) % slots_.size();
  }
  slot_of_[std::size_t(slots_[hand_])] = -1;
  slots_[hand_] = v;
  slot_of_[std::size_t(v)] = vid_t(hand_);
  ref_[hand_] = 0;
  hand_ = (hand_ + 1) % slots_.size();
  return false;
}

CachePolicyBakeoff tune_cache_policy(const Coo& graph,
                                     const gpusim::DeviceSpec& dev,
                                     const PolicyTuneConfig& cfg,
                                     std::span<const SeedRequest> trace,
                                     tune::TuningCache* out) {
  if (cfg.batch_size <= 0 || cfg.feat_len <= 0 || cfg.fanouts.empty() ||
      cfg.presample_epochs < 0 || cfg.elem_bytes == 0) {
    throw std::invalid_argument("tune_cache_policy: invalid config");
  }
  const double alpha = std::clamp(cfg.cache_alpha, 0.0, 1.0);
  const Csr csr = coo_to_csr(graph);
  SamplerScratch scratch;

  const std::vector<SeedRequest> default_probe =
      cfg.presample_probe.empty()
          ? default_presample_probe(graph, cfg.seed)
          : std::vector<SeedRequest>{};
  const std::span<const SeedRequest> probe =
      cfg.presample_probe.empty() ? std::span<const SeedRequest>(default_probe)
                                  : std::span<const SeedRequest>(
                                        cfg.presample_probe);
  const auto deg = row_lengths(graph);
  const auto freq = presample_frequencies(csr, probe, cfg.fanouts, cfg.seed,
                                          cfg.presample_epochs, &scratch);
  const auto freq_ord = frequency_order(freq, deg);

  const CachePolicy policies[] = {CachePolicy::kDegree,
                                  CachePolicy::kPresampleFrequency,
                                  CachePolicy::kClock};
  std::vector<FeatureCache> caches;
  caches.reserve(3);
  for (CachePolicy p : policies) {
    CacheConfig cc;
    cc.policy = p;
    cc.elem_bytes = cfg.elem_bytes;
    caches.emplace_back(graph, cfg.feat_len, alpha, dev, cc,
                        p == CachePolicy::kPresampleFrequency
                            ? std::span<const vid_t>(freq_ord)
                            : std::span<const vid_t>());
  }
  std::vector<FeatureCache::ClockTxn> txns;
  for (const FeatureCache& c : caches) txns.emplace_back(c);

  CachePolicyBakeoff result;
  result.outcomes.resize(3);
  for (int p = 0; p < 3; ++p) result.outcomes[p].policy = policies[p];

  // Replay the serving driver's sample + dedup + gather stream per batch;
  // forward passes are policy-invariant, so gather traffic is the whole
  // difference.
  SampleOptions so;
  so.fanouts = cfg.fanouts;
  so.seed = cfg.seed;
  std::int64_t batch = 0;
  for (std::size_t begin = 0; begin < trace.size();
       begin += std::size_t(cfg.batch_size), ++batch) {
    const std::size_t end =
        std::min(trace.size(), begin + std::size_t(cfg.batch_size));
    std::vector<vid_t> unique;
    std::unordered_map<vid_t, vid_t> slot;
    for (std::size_t r = begin; r < end; ++r) {
      const SampledSubgraph sg =
          sample_khop(csr, trace[r].seeds, so, &scratch);
      for (vid_t v : sg.vertices) {
        if (slot.emplace(v, vid_t(unique.size())).second) unique.push_back(v);
      }
    }
    for (int p = 0; p < 3; ++p) {
      FeatureCache::ClockGatherCtx ctx;
      ctx.txn = &txns[std::size_t(p)];
      ctx.batch = batch;
      ctx.commit = true;
      const GatherStats st =
          caches[std::size_t(p)].gather(unique, nullptr, nullptr, {}, false,
                                        ctx);
      result.outcomes[std::size_t(p)].gather_cycles += st.cycles;
      result.outcomes[std::size_t(p)].hits += st.hits;
      result.outcomes[std::size_t(p)].misses += st.misses;
    }
  }

  // Fewest replayed gather cycles wins; exact ties break in enum order so
  // degree — the conservative default — prevails.
  result.winner = CachePolicy::kDegree;
  std::uint64_t best = result.outcomes[0].gather_cycles;
  for (int p = 1; p < 3; ++p) {
    if (result.outcomes[std::size_t(p)].gather_cycles < best) {
      best = result.outcomes[std::size_t(p)].gather_cycles;
      result.winner = policies[p];
    }
  }

  if (out != nullptr) {
    tune::ServeKey key;
    key.signature = tune::signature_of(graph);
    key.workload =
        cache_workload_key(alpha, cfg.fanouts, cfg.batch_size, cfg.feat_len);
    key.device = tune::device_key(dev);
    tune::ServeDecision dec;
    dec.cache_policy = cache_policy_name(result.winner);
    for (const PolicyOutcome& o : result.outcomes) {
      if (o.policy == result.winner) {
        dec.gather_cycles = o.gather_cycles;
        dec.hit_rate = o.hit_rate();
      }
    }
    out->put_serve(key, dec);
  }
  return result;
}

}  // namespace gnnone::serve
