// Seed-request workload generator for the serving path.
//
// An inference request names the vertices a caller wants predictions for
// (the gSuite / FGNN serving regime: "classify this user", "score these
// items"). Traces are deterministic per seed; seeds are drawn uniformly
// over the graph or, with hot_fraction > 0, skewed toward a top-degree hot
// set — real serving traffic concentrates on popular entities, which is
// exactly what a degree-ordered feature cache exploits.
//
// Open-loop traffic (the multi-tenant SLO study, docs/SERVING.md §8): a
// request additionally carries the tenant that issued it and the cycle it
// *arrived* at the server, drawn from a deterministic arrival process —
// Poisson (memoryless steady traffic) or bursty/diurnal (a periodic high-rate
// phase over a low-rate floor, the shape real user traffic has). Arrival
// draws come from per-tenant derived Rng streams, so one tenant's trace is
// reproducible from the seed alone and does not shift when another tenant's
// workload changes. A closed-loop trace is the degenerate case: every
// arrival_cycle is 0 and every tenant is 0.
//
// Traces are replayable artifacts: save_trace()/load_trace_or_empty() give a
// versioned, byte-deterministic JSON round-trip (util/json.h), failing soft
// on corrupt or version-mismatched files the way TuningCache::load_or_empty
// does — a traffic study must not crash because an artifact went stale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/coo.h"
#include "graph/types.h"
#include "util/json.h"

namespace gnnone {

struct RequestTraceOptions {
  int num_requests = 256;
  int min_seeds = 1;  // seeds per request, uniform in [min_seeds, max_seeds]
  int max_seeds = 4;
  /// Probability a seed is drawn from the hot set instead of uniformly.
  double hot_fraction = 0.0;
  /// Top-degree share of vertices forming the hot set (ties break by id).
  double hot_set_fraction = 0.1;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on out-of-range options: num_requests < 0,
  /// inconsistent seed bounds, hot_fraction outside [0, 1], or
  /// hot_set_fraction outside (0, 1] (a hot set must contain something for
  /// hot draws to land in).
  void Validate() const;
};

struct SeedRequest {
  std::vector<vid_t> seeds;  // may repeat across requests, unique within one
  /// Tenant that issued the request: an index into the serving tier's tenant
  /// table (ServeOptions::tenants). 0 in single-tenant/closed-loop traces.
  int tenant = 0;
  /// Cycle the request arrived at the server (open-loop traces). 0 means
  /// "available immediately" — the closed-loop convention every pre-tenant
  /// trace uses.
  std::uint64_t arrival_cycle = 0;
};

/// Generates a deterministic request trace over `graph`'s vertices. Throws
/// std::invalid_argument on an empty graph or invalid options
/// (RequestTraceOptions::Validate). All requests arrive at cycle 0,
/// tenant 0 — the closed-loop workload.
std::vector<SeedRequest> make_request_trace(const Coo& graph,
                                            const RequestTraceOptions& opts);

// --- open-loop arrival processes ------------------------------------------

enum class ArrivalProcess {
  kPoisson,  // i.i.d. exponential interarrivals (memoryless steady load)
  kBursty,   // diurnal: periodic burst phase at burst_multiplier x the floor
};

const char* arrival_process_name(ArrivalProcess p);

struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Mean cycles between consecutive arrivals (the offered load knob:
  /// smaller = hotter). For kBursty this is the *overall* mean — the phase
  /// rates are derived so the long-run average rate matches 1/mean.
  double mean_interarrival_cycles = 1.0e6;
  /// kBursty: rate multiplier inside the burst phase relative to the
  /// overall mean rate (> 1; the floor phase rate is derived to preserve
  /// the mean). 1.0 degenerates to Poisson. burst_fraction *
  /// burst_multiplier must stay < 1 or the derived floor rate would be
  /// negative (Validate rejects it); the defaults leave 20% of the mass
  /// for the floor.
  double burst_multiplier = 4.0;
  /// kBursty: fraction of each period spent in the burst phase, in (0, 1).
  double burst_fraction = 0.2;
  /// kBursty: period of the diurnal cycle in cycles.
  std::uint64_t period_cycles = 8'000'000;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on non-positive mean_interarrival_cycles,
  /// burst_multiplier < 1, burst_fraction outside (0, 1), or a zero period.
  void Validate() const;
};

/// Draws `n` deterministic arrival cycles (non-decreasing, starting after
/// cycle 0) from the process. `stream` namespaces the Rng derivation —
/// make_open_loop_trace passes the tenant id, so each tenant owns an
/// independent, individually reproducible arrival stream. Throws
/// std::invalid_argument on invalid options or n < 0.
std::vector<std::uint64_t> make_arrivals(int n, const ArrivalOptions& opts,
                                         std::uint64_t stream = 0);

/// One tenant's traffic description for an open-loop trace.
struct TenantWorkload {
  RequestTraceOptions requests;  // how many, which seed vertices
  ArrivalOptions arrivals;       // when they show up
};

/// Generates a merged open-loop trace: per tenant t, `tenants[t]` requests
/// with that tenant's seed distribution and arrival process (arrival stream
/// = tenant index), merged and sorted by (arrival_cycle, tenant, issue
/// order) so the trace is a deterministic arrival-ordered log. Throws
/// std::invalid_argument on an empty graph, an empty tenant list, or
/// invalid per-tenant options.
std::vector<SeedRequest> make_open_loop_trace(
    const Coo& graph, const std::vector<TenantWorkload>& tenants);

// --- trace persistence ----------------------------------------------------

inline constexpr const char* kTraceSchemaName = "gnnone-request-trace";
inline constexpr int kTraceSchemaVersion = 1;

/// Versioned, byte-deterministic document: save -> load -> save round-trips
/// to identical bytes (the artifact-diff property the bench results and
/// tuning cache already have).
util::Json trace_to_json(const std::vector<SeedRequest>& trace);

/// Parses a trace_to_json document. Throws util::JsonError /
/// std::invalid_argument on schema or version mismatch and malformed
/// requests (negative tenant, empty or negative seeds).
std::vector<SeedRequest> trace_from_json(const util::Json& doc);

/// Writes the trace document to `path`; false when the file cannot be
/// written.
bool save_trace(const std::string& path, const std::vector<SeedRequest>& trace);

/// Loads a trace saved by save_trace. A missing file is a silent cold start
/// (empty trace, no warning); corrupt, truncated, or version-mismatched
/// files degrade to an *empty* trace with `*warning` explaining why (when
/// non-null) instead of throwing — same contract as
/// TuningCache::load_or_empty: a replay artifact is advisory, not load-
/// bearing.
std::vector<SeedRequest> load_trace_or_empty(const std::string& path,
                                             std::string* warning = nullptr);

}  // namespace gnnone
