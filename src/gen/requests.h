// Seed-request workload generator for the serving path.
//
// An inference request names the vertices a caller wants predictions for
// (the gSuite / FGNN serving regime: "classify this user", "score these
// items"). Traces are deterministic per seed; seeds are drawn uniformly
// over the graph or, with hot_fraction > 0, skewed toward a top-degree hot
// set — real serving traffic concentrates on popular entities, which is
// exactly what a degree-ordered feature cache exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.h"
#include "graph/types.h"

namespace gnnone {

struct RequestTraceOptions {
  int num_requests = 256;
  int min_seeds = 1;  // seeds per request, uniform in [min_seeds, max_seeds]
  int max_seeds = 4;
  /// Probability a seed is drawn from the hot set instead of uniformly.
  double hot_fraction = 0.0;
  /// Top-degree share of vertices forming the hot set (ties break by id).
  double hot_set_fraction = 0.1;
  std::uint64_t seed = 1;
};

struct SeedRequest {
  std::vector<vid_t> seeds;  // may repeat across requests, unique within one
};

/// Generates a deterministic request trace over `graph`'s vertices. Throws
/// std::invalid_argument on an empty graph or inconsistent seed bounds.
std::vector<SeedRequest> make_request_trace(const Coo& graph,
                                            const RequestTraceOptions& opts);

}  // namespace gnnone
