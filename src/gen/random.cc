#include "gen/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "gen/rng.h"

namespace gnnone {

Coo erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  if (n <= 1) throw std::invalid_argument("erdos_renyi needs n > 1");
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(std::size_t(m));
  for (eid_t i = 0; i < m; ++i) {
    const auto s = vid_t(rng.uniform(std::uint64_t(n)));
    auto d = vid_t(rng.uniform(std::uint64_t(n)));
    if (d == s) d = vid_t((d + 1) % n);
    edges.emplace_back(s, d);
  }
  return coo_from_edges(n, n, symmetrize(edges));
}

Coo power_law(const PowerLawParams& p) {
  if (p.n <= 1) throw std::invalid_argument("power_law needs n > 1");
  Rng rng(p.seed);
  // Default hub cap ~3% of n: real social/web graphs top out at 1-4% of |V|
  // (orkut ~1%, hollywood ~1%, wiki-Talk ~4%).
  const vid_t cap =
      p.max_degree > 0 ? p.max_degree : std::max(vid_t(32), p.n / 32);

  // Endpoint weights follow a Pareto(alpha, 1) tail, alpha = exponent - 1
  // (degree distribution of the resulting multigraph has the requested
  // exponent). The average degree is set by the edge count, not the weights.
  if (p.exponent <= 1.0) throw std::invalid_argument("exponent must be > 1");
  const double alpha = p.exponent - 1.0;
  std::vector<double> weight(std::size_t(p.n));
  for (auto& w : weight) {
    const double u = std::max(rng.uniform_real(), 1e-12);
    w = std::min(double(cap), std::pow(u, -1.0 / alpha));
  }

  // Wire endpoints proportionally to weight via an alias-free CDF table.
  std::vector<double> cdf(weight.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    acc += weight[i];
    cdf[i] = acc;
  }
  const auto m = std::uint64_t(p.avg_degree * double(p.n) / 2.0);
  EdgeList edges;
  edges.reserve(m);
  auto sample = [&]() {
    const double r = rng.uniform_real() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return vid_t(it - cdf.begin());
  };
  for (std::uint64_t i = 0; i < m; ++i) {
    const vid_t s = sample();
    vid_t d = sample();
    if (d == s) d = vid_t((d + 1) % p.n);
    edges.emplace_back(s, d);
  }
  return coo_from_edges(p.n, p.n, symmetrize(edges));
}

PlantedPartition planted_partition(vid_t n, int k, double avg_degree,
                                   double intra_fraction,
                                   std::uint64_t seed) {
  if (k <= 0 || n < k) throw std::invalid_argument("bad planted partition");
  Rng rng(seed);
  PlantedPartition pp;
  pp.labels.resize(std::size_t(n));
  for (vid_t v = 0; v < n; ++v) pp.labels[std::size_t(v)] = int(v % k);

  const auto m = std::uint64_t(avg_degree * double(n) / 2.0);
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto s = vid_t(rng.uniform(std::uint64_t(n)));
    vid_t d;
    if (rng.uniform_real() < intra_fraction) {
      // Same community c = s % k: members are {c, c+k, c+2k, ...}.
      const vid_t c = vid_t(s % k);
      const auto members = std::uint64_t((n - 1 - c) / k + 1);
      d = vid_t(c + vid_t(k) * vid_t(rng.uniform(members)));
      if (d == s) d = (d + k < n) ? vid_t(d + k) : c;
    } else {
      d = vid_t(rng.uniform(std::uint64_t(n)));
      if (d == s) d = vid_t((d + 1) % n);
    }
    edges.emplace_back(s, d);
  }
  pp.graph = coo_from_edges(n, n, symmetrize(edges));
  return pp;
}

}  // namespace gnnone
