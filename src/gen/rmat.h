// RMAT / Kronecker graph generator (Graph500 style), the stand-in for the
// paper's Kron-21 dataset and other heavily skewed graphs.
#pragma once

#include <cstdint>

#include "graph/convert.h"
#include "graph/types.h"

namespace gnnone {

struct RmatParams {
  int scale = 14;                 // num vertices = 2^scale
  double edge_factor = 16.0;      // directed edges before symmetrization
  double a = 0.57, b = 0.19, c = 0.19;  // Graph500 defaults (d = 1-a-b-c)
  std::uint64_t seed = 1;
};

/// Generates an RMAT edge list (directed, may contain duplicates).
EdgeList rmat_edges(const RmatParams& p);

/// Convenience: symmetrized, deduplicated, CSR-arranged COO.
Coo rmat_graph(const RmatParams& p);

}  // namespace gnnone
