// The experiment dataset suite: scaled synthetic stand-ins for the paper's
// Table 1 (G0..G18).
//
// The paper evaluates on real graphs (SNAP, UF collection, OGB, Reddit,
// Graph500 Kron-21). Those downloads are unavailable here, so each entry is
// replaced by a generator configuration chosen to preserve the structural
// property the experiments depend on: the degree distribution shape (skewed
// power-law for social/web graphs, near-uniform for road/k-mer graphs,
// Kronecker for Kron-21, extremely dense for Reddit) and the relative size
// ordering. Edge counts are scaled to at most ~2.5e5 so the functional SIMT
// simulator stays tractable on one core; `paper_vertices`/`paper_edges`
// retain the original magnitudes for limit checks (e.g. Sputnik's |V|^2 grid
// failure above ~2M vertices, Fig. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/coo.h"
#include "graph/types.h"

namespace gnnone {

/// Generator family of a dataset (used by support checks that mirror
/// failures the paper reports for specific graph classes, e.g. dgNN's error
/// on Kron-21).
enum class GraphFamily { kPlanted, kPowerLaw, kGrid, kKronecker, kUniform };

struct Dataset {
  std::string id;    // "G0".."G18"
  std::string name;  // paper dataset this stands in for
  GraphFamily family = GraphFamily::kUniform;
  Coo coo;
  int input_feat_len = 150;  // Table 1's F column
  int num_classes = 6;       // Table 1's C column
  bool labeled = false;
  std::vector<int> labels;   // per-vertex class, present when labeled
  vid_t paper_vertices = 0;
  eid_t paper_edges = 0;
};

/// Generates one dataset by id ("G0".."G18"). Deterministic.
Dataset make_dataset(const std::string& id);

/// Ids of the kernel-benchmark suite (Figs. 3/4/8-12): the medium/large
/// graphs G3..G15, mirroring the paper's kernel plots.
std::vector<std::string> kernel_suite_ids();

/// Ids of the small labeled graphs used for accuracy runs (Fig. 5).
std::vector<std::string> accuracy_suite_ids();

/// Ids of the training-time suite (Figs. 6/7).
std::vector<std::string> training_suite_ids();

/// Synthesizes vertex features of length f correlated with `labels` (noisy
/// class centroids) so that GNN training has signal to learn; when labels is
/// empty, features are pure noise (performance-only datasets).
std::vector<float> make_features(vid_t n, int f, const std::vector<int>& labels,
                                 std::uint64_t seed);

}  // namespace gnnone
