// Random graph families: Erdős–Rényi (near-uniform degrees) and a power-law
// configuration model (heavy-tailed degrees, stand-in for social/web graphs).
#pragma once

#include <cstdint>

#include "graph/convert.h"
#include "graph/types.h"

namespace gnnone {

/// G(n, m): m directed edges drawn uniformly, then symmetrized/deduped.
Coo erdos_renyi(vid_t n, eid_t m, std::uint64_t seed);

struct PowerLawParams {
  vid_t n = 1 << 14;
  double avg_degree = 16.0;
  double exponent = 2.1;   // Pareto tail; lower = more skew
  vid_t max_degree = 0;    // 0 = n/4 cap
  std::uint64_t seed = 1;
};

/// Configuration-model power-law graph: degrees ~ Pareto(exponent), edges
/// wired by sampling endpoints proportionally to degree, symmetrized.
Coo power_law(const PowerLawParams& p);

/// Planted-partition labeled graph for accuracy experiments: k communities,
/// intra-community edge probability >> inter. Labels are community ids.
struct PlantedPartition {
  Coo graph;
  std::vector<int> labels;  // size n, values in [0, k)
};
PlantedPartition planted_partition(vid_t n, int k, double avg_degree,
                                   double intra_fraction, std::uint64_t seed);

}  // namespace gnnone
