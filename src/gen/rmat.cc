#include "gen/rmat.h"

#include "gen/rng.h"

namespace gnnone {

EdgeList rmat_edges(const RmatParams& p) {
  Rng rng(p.seed);
  const vid_t n = vid_t(1) << p.scale;
  const auto m = std::uint64_t(p.edge_factor * double(n));
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    vid_t src = 0, dst = 0;
    for (int bit = 0; bit < p.scale; ++bit) {
      const double r = rng.uniform_real();
      int quadrant;
      if (r < p.a) {
        quadrant = 0;
      } else if (r < p.a + p.b) {
        quadrant = 1;
      } else if (r < p.a + p.b + p.c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      src = vid_t(src << 1 | (quadrant >> 1));
      dst = vid_t(dst << 1 | (quadrant & 1));
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

Coo rmat_graph(const RmatParams& p) {
  const vid_t n = vid_t(1) << p.scale;
  return coo_from_edges(n, n, symmetrize(rmat_edges(p)));
}

}  // namespace gnnone
