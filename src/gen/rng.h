// Deterministic RNG for workload generation.
//
// std::mt19937 is deterministic, but the standard *distributions* are
// implementation-defined, so we implement the few draws we need on top of
// splitmix64. Same seed => same graph/features on every platform, which the
// experiment harness and the determinism property tests rely on.
#pragma once

#include <cmath>
#include <cstdint>

namespace gnnone {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n), exactly unbiased for every n (Lemire's
  /// multiply-shift rejection). The obvious `next_u64() % n` skews low
  /// values for non-power-of-two n — invisible on coin flips, but it biases
  /// degree draws and reservoir replacement indices across billions of
  /// samples, so the generators and the neighbor sampler depend on this
  /// being exact. Returns 0 for n == 0.
  std::uint64_t uniform(std::uint64_t n) {
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;  // (2^64 - n) mod n
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform real in [0, 1).
  double uniform_real() {
    return double(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller.
  double normal() {
    double u1 = uniform_real();
    double u2 = uniform_real();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gnnone
