#include "gen/requests.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/rng.h"
#include "graph/convert.h"

namespace gnnone {

std::vector<SeedRequest> make_request_trace(const Coo& graph,
                                            const RequestTraceOptions& opts) {
  const vid_t n = graph.num_rows;
  if (n <= 0) {
    throw std::invalid_argument("make_request_trace: empty graph");
  }
  if (opts.min_seeds < 1 || opts.max_seeds < opts.min_seeds) {
    throw std::invalid_argument("make_request_trace: bad seed bounds");
  }

  // Hot set: the top hot_set_fraction of vertices by degree (ties by id, so
  // the set is deterministic) — the same ordering the feature cache pins.
  std::vector<vid_t> hot;
  if (opts.hot_fraction > 0.0) {
    const auto deg = row_lengths(graph);
    std::vector<vid_t> order(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) order[std::size_t(v)] = v;
    std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
      if (deg[std::size_t(a)] != deg[std::size_t(b)]) {
        return deg[std::size_t(a)] > deg[std::size_t(b)];
      }
      return a < b;
    });
    const auto k = std::size_t(
        std::clamp(std::llround(opts.hot_set_fraction * double(n)),
                   1ll, (long long)(n)));
    hot.assign(order.begin(), order.begin() + long(k));
  }

  Rng rng(opts.seed);
  std::vector<SeedRequest> trace(std::size_t(opts.num_requests));
  for (auto& req : trace) {
    const int want =
        opts.min_seeds +
        int(rng.uniform(std::uint64_t(opts.max_seeds - opts.min_seeds + 1)));
    req.seeds.reserve(std::size_t(want));
    while (int(req.seeds.size()) < want) {
      vid_t v;
      if (!hot.empty() && rng.uniform_real() < opts.hot_fraction) {
        v = hot[std::size_t(rng.uniform(hot.size()))];
      } else {
        v = vid_t(rng.uniform(std::uint64_t(n)));
      }
      if (std::find(req.seeds.begin(), req.seeds.end(), v) ==
          req.seeds.end()) {
        req.seeds.push_back(v);
      }
    }
  }
  return trace;
}

}  // namespace gnnone
