#include "gen/requests.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gen/rng.h"
#include "graph/convert.h"

namespace gnnone {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derived stream seed: independent Rng sequences per (seed, stream) pair,
/// so tenant t's arrival draws never depend on how many draws tenant t-1
/// consumed.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  return mix64(seed + 0x9e3779b97f4a7c15ull * (stream + 1));
}

/// Exponential interarrival with the given mean, in whole cycles (>= 1 so
/// arrivals strictly advance and a trace cannot collapse onto one cycle).
std::uint64_t exponential_cycles(Rng& rng, double mean) {
  double u = rng.uniform_real();
  if (u > 1.0 - 1e-12) u = 1.0 - 1e-12;  // avoid log(0)
  const double draw = -mean * std::log1p(-u);
  const double capped = std::min(draw, 9.0e15);  // stay inside uint64
  return std::max<std::uint64_t>(1, std::uint64_t(std::llround(capped)));
}

}  // namespace

void RequestTraceOptions::Validate() const {
  if (num_requests < 0) {
    throw std::invalid_argument(
        "RequestTraceOptions: num_requests must be >= 0, got " +
        std::to_string(num_requests));
  }
  if (min_seeds < 1 || max_seeds < min_seeds) {
    throw std::invalid_argument(
        "RequestTraceOptions: bad seed bounds [" + std::to_string(min_seeds) +
        ", " + std::to_string(max_seeds) + "]");
  }
  if (!(hot_fraction >= 0.0 && hot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "RequestTraceOptions: hot_fraction must be in [0, 1], got " +
        std::to_string(hot_fraction));
  }
  if (!(hot_set_fraction > 0.0 && hot_set_fraction <= 1.0)) {
    throw std::invalid_argument(
        "RequestTraceOptions: hot_set_fraction must be in (0, 1], got " +
        std::to_string(hot_set_fraction));
  }
}

std::vector<SeedRequest> make_request_trace(const Coo& graph,
                                            const RequestTraceOptions& opts) {
  opts.Validate();
  const vid_t n = graph.num_rows;
  if (n <= 0) {
    throw std::invalid_argument("make_request_trace: empty graph");
  }

  // Hot set: the top hot_set_fraction of vertices by degree (ties by id, so
  // the set is deterministic) — the same ordering the feature cache pins.
  std::vector<vid_t> hot;
  if (opts.hot_fraction > 0.0) {
    const auto deg = row_lengths(graph);
    std::vector<vid_t> order(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) order[std::size_t(v)] = v;
    std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
      if (deg[std::size_t(a)] != deg[std::size_t(b)]) {
        return deg[std::size_t(a)] > deg[std::size_t(b)];
      }
      return a < b;
    });
    const auto k = std::size_t(
        std::clamp(std::llround(opts.hot_set_fraction * double(n)),
                   1ll, (long long)(n)));
    hot.assign(order.begin(), order.begin() + long(k));
  }

  Rng rng(opts.seed);
  std::vector<SeedRequest> trace(std::size_t(opts.num_requests));
  for (auto& req : trace) {
    const int want =
        opts.min_seeds +
        int(rng.uniform(std::uint64_t(opts.max_seeds - opts.min_seeds + 1)));
    req.seeds.reserve(std::size_t(want));
    while (int(req.seeds.size()) < want) {
      vid_t v;
      if (!hot.empty() && rng.uniform_real() < opts.hot_fraction) {
        v = hot[std::size_t(rng.uniform(hot.size()))];
      } else {
        v = vid_t(rng.uniform(std::uint64_t(n)));
      }
      if (std::find(req.seeds.begin(), req.seeds.end(), v) ==
          req.seeds.end()) {
        req.seeds.push_back(v);
      }
    }
  }
  return trace;
}

// --- open-loop arrival processes ------------------------------------------

const char* arrival_process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty:  return "bursty";
  }
  return "unknown";
}

void ArrivalOptions::Validate() const {
  if (!(mean_interarrival_cycles > 0.0)) {
    throw std::invalid_argument(
        "ArrivalOptions: mean_interarrival_cycles must be > 0, got " +
        std::to_string(mean_interarrival_cycles));
  }
  if (process == ArrivalProcess::kBursty) {
    if (!(burst_multiplier >= 1.0)) {
      throw std::invalid_argument(
          "ArrivalOptions: burst_multiplier must be >= 1, got " +
          std::to_string(burst_multiplier));
    }
    if (!(burst_fraction > 0.0 && burst_fraction < 1.0)) {
      throw std::invalid_argument(
          "ArrivalOptions: burst_fraction must be in (0, 1), got " +
          std::to_string(burst_fraction));
    }
    if (period_cycles == 0) {
      throw std::invalid_argument(
          "ArrivalOptions: period_cycles must be > 0");
    }
    // The floor phase's rate multiplier (1 - f*m) / (1 - f) must stay
    // positive for the overall mean to be preserved by a non-negative rate.
    if (burst_fraction * burst_multiplier >= 1.0) {
      throw std::invalid_argument(
          "ArrivalOptions: burst_fraction * burst_multiplier must be < 1 "
          "(the floor phase would need a negative rate)");
    }
  }
}

std::vector<std::uint64_t> make_arrivals(int n, const ArrivalOptions& opts,
                                         std::uint64_t stream) {
  opts.Validate();
  if (n < 0) {
    throw std::invalid_argument("make_arrivals: n must be >= 0, got " +
                                std::to_string(n));
  }
  Rng rng(derive_seed(opts.seed, stream));
  std::vector<std::uint64_t> out;
  out.reserve(std::size_t(n));

  if (opts.process == ArrivalProcess::kPoisson) {
    std::uint64_t t = 0;
    for (int i = 0; i < n; ++i) {
      t += exponential_cycles(rng, opts.mean_interarrival_cycles);
      out.push_back(t);
    }
    return out;
  }

  // Bursty/diurnal: each period spends burst_fraction of its cycles at
  // burst_multiplier x the overall mean rate and the rest at the derived
  // floor rate, so the long-run average rate stays 1/mean. Interarrivals
  // are exponential at the rate of the phase the clock is currently in —
  // a piecewise-constant-rate Poisson process evaluated at the draw point,
  // which keeps the generator one-pass and deterministic.
  const double mean_rate = 1.0 / opts.mean_interarrival_cycles;
  const double burst_rate = opts.burst_multiplier * mean_rate;
  const double floor_rate = (1.0 - opts.burst_fraction *
                                       opts.burst_multiplier) /
                            (1.0 - opts.burst_fraction) * mean_rate;
  const auto burst_cycles =
      std::uint64_t(opts.burst_fraction * double(opts.period_cycles));
  std::uint64_t t = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t phase = t % opts.period_cycles;
    const bool in_burst = phase < burst_cycles;
    const double rate = in_burst ? burst_rate : floor_rate;
    // A zero floor rate cannot happen (Validate), but guard the division.
    const double mean = 1.0 / std::max(rate, 1e-18);
    t += exponential_cycles(rng, mean);
    out.push_back(t);
  }
  return out;
}

std::vector<SeedRequest> make_open_loop_trace(
    const Coo& graph, const std::vector<TenantWorkload>& tenants) {
  if (tenants.empty()) {
    throw std::invalid_argument("make_open_loop_trace: no tenants");
  }
  struct Issued {
    std::uint64_t arrival;
    int tenant;
    int order;  // issue order within the tenant (stable tie-break)
    std::size_t slot;
  };
  std::vector<SeedRequest> all;
  std::vector<Issued> issued;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantWorkload& w = tenants[t];
    std::vector<SeedRequest> reqs = make_request_trace(graph, w.requests);
    const std::vector<std::uint64_t> arrivals =
        make_arrivals(int(reqs.size()), w.arrivals, std::uint64_t(t));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      reqs[i].tenant = int(t);
      reqs[i].arrival_cycle = arrivals[i];
      issued.push_back({arrivals[i], int(t), int(i), all.size()});
      all.push_back(std::move(reqs[i]));
    }
  }
  std::sort(issued.begin(), issued.end(), [](const Issued& a, const Issued& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.order < b.order;
  });
  std::vector<SeedRequest> merged;
  merged.reserve(all.size());
  for (const Issued& e : issued) merged.push_back(std::move(all[e.slot]));
  return merged;
}

// --- trace persistence ----------------------------------------------------

util::Json trace_to_json(const std::vector<SeedRequest>& trace) {
  util::Json doc = util::Json::object();
  doc.set("schema", kTraceSchemaName);
  doc.set("version", kTraceSchemaVersion);
  util::Json reqs = util::Json::array();
  for (const SeedRequest& r : trace) {
    util::Json rj = util::Json::object();
    rj.set("tenant", r.tenant);
    rj.set("arrival", r.arrival_cycle);
    util::Json seeds = util::Json::array();
    for (vid_t s : r.seeds) seeds.push_back(std::int64_t(s));
    rj.set("seeds", std::move(seeds));
    reqs.push_back(std::move(rj));
  }
  doc.set("requests", std::move(reqs));
  return doc;
}

std::vector<SeedRequest> trace_from_json(const util::Json& doc) {
  if (doc["schema"].as_string() != kTraceSchemaName) {
    throw std::invalid_argument("request trace: unrecognized schema '" +
                                doc["schema"].as_string() + "'");
  }
  if (doc["version"].as_int() != kTraceSchemaVersion) {
    throw std::invalid_argument(
        "request trace: unsupported version " +
        std::to_string(doc["version"].as_int()) + " (want " +
        std::to_string(kTraceSchemaVersion) + ")");
  }
  if (!doc["requests"].is_array()) {
    throw std::invalid_argument("request trace: missing 'requests' array");
  }
  std::vector<SeedRequest> trace;
  trace.reserve(doc["requests"].items().size());
  for (const util::Json& rj : doc["requests"].items()) {
    SeedRequest r;
    const std::int64_t tenant = rj["tenant"].as_int(-1);
    if (tenant < 0) {
      throw std::invalid_argument("request trace: negative/missing tenant");
    }
    r.tenant = int(tenant);
    r.arrival_cycle = rj["arrival"].as_uint();
    if (!rj["seeds"].is_array() || rj["seeds"].items().empty()) {
      throw std::invalid_argument("request trace: request without seeds");
    }
    for (const util::Json& sj : rj["seeds"].items()) {
      const std::int64_t s = sj.as_int(-1);
      if (s < 0) {
        throw std::invalid_argument("request trace: negative seed id");
      }
      r.seeds.push_back(vid_t(s));
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

bool save_trace(const std::string& path,
                const std::vector<SeedRequest>& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << trace_to_json(trace).dump() << '\n';
  out.flush();
  return bool(out);
}

std::vector<SeedRequest> load_trace_or_empty(const std::string& path,
                                             std::string* warning) {
  if (warning != nullptr) warning->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no artifact yet: an empty study, not an error
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    return trace_from_json(util::Json::parse(ss.str()));
  } catch (const std::exception& e) {
    // Corrupt, truncated, or version-mismatched: the trace is a replay
    // artifact, so degrade to empty rather than aborting the study — same
    // posture as TuningCache::load_or_empty.
    if (warning != nullptr) {
      *warning = "request trace '" + path +
                 "' ignored (corrupt or incompatible): " + e.what();
    }
    return {};
  }
}

}  // namespace gnnone
