// 2D lattice generator: near-uniform degree-4 graphs, the stand-in for
// road networks (roadNet-CA) and k-mer graphs where workload imbalance is
// minimal and vertex-parallel baselines are at their best.
#pragma once

#include "graph/convert.h"
#include "graph/types.h"

namespace gnnone {

/// side x side 4-neighborhood lattice, symmetrized.
Coo grid_graph(vid_t side);

}  // namespace gnnone
