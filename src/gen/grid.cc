#include "gen/grid.h"

namespace gnnone {

Coo grid_graph(vid_t side) {
  EdgeList edges;
  edges.reserve(std::size_t(side) * std::size_t(side) * 2);
  auto id = [side](vid_t x, vid_t y) { return x * side + y; };
  for (vid_t x = 0; x < side; ++x) {
    for (vid_t y = 0; y < side; ++y) {
      if (x + 1 < side) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < side) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  const vid_t n = side * side;
  return coo_from_edges(n, n, symmetrize(edges));
}

}  // namespace gnnone
