#include "gen/datasets.h"

#include <stdexcept>

#include "gen/grid.h"
#include "gen/random.h"
#include "gen/rmat.h"
#include "gen/rng.h"

namespace gnnone {

namespace {

/// Generator recipe for one Table-1 stand-in.
struct Spec {
  const char* id;
  const char* name;
  enum Kind { kPlanted, kPowerLaw, kGrid, kRmat, kErdos } kind;
  vid_t n;             // scaled vertex count (grid: side length)
  double avg_degree;   // target average degree (pre-dedup)
  double skew;         // power-law exponent (lower = heavier tail)
  int feat_len;
  int classes;
  bool labeled;
  vid_t paper_v;
  eid_t paper_e;
};

// Scaled suite. Degrees follow the paper's Table 1 (E/V); vertex counts are
// shrunk so |E| stays ~<= 2.5e5. The small citation graphs keep their real
// sizes.
constexpr Spec kSpecs[] = {
    {"G0", "Cora", Spec::kPlanted, 2708, 4.0, 0, 1433, 7, true, 2708, 10858},
    {"G1", "Citeseer", Spec::kPlanted, 3327, 2.7, 0, 3703, 6, true, 3327,
     9104},
    {"G2", "PubMed", Spec::kPlanted, 19717, 4.5, 0, 500, 3, true, 19717,
     88648},
    {"G3", "Amazon", Spec::kPowerLaw, 15000, 16.0, 2.3, 150, 6, false, 400727,
     6400880},
    {"G4", "wiki-Talk", Spec::kPowerLaw, 37000, 4.2, 1.9, 150, 6, false,
     2394385, 10042820},
    {"G5", "roadNet-CA", Spec::kGrid, 176, 4.0, 0, 150, 6, false, 1971279,
     11066420},
    {"G6", "Web-BerkStan", Spec::kPowerLaw, 10700, 22.0, 1.9, 150, 6, false,
     685230, 15201173},
    {"G7", "as-Skitter", Spec::kPowerLaw, 20000, 13.0, 2.0, 150, 6, false,
     1696415, 22190596},
    {"G8", "cit-Patent", Spec::kPowerLaw, 25000, 8.8, 2.5, 150, 6, false,
     3774768, 33037894},
    {"G9", "sx-stackoverflow", Spec::kPowerLaw, 6500, 36.8, 2.0, 150, 6,
     false, 2601977, 95806532},
    {"G10", "Kron-21", Spec::kRmat, 13, 16.0, 0, 150, 6, false, 2097152,
     67108864},
    {"G11", "hollywood09", Spec::kPowerLaw, 2400, 105.0, 2.2, 150, 6, false,
     1069127, 112613308},
    {"G12", "Ogb-product", Spec::kPlanted, 5000, 50.0, 0, 100, 47, true,
     2449029, 123718280},
    {"G13", "LiveJournal", Spec::kPowerLaw, 8800, 28.5, 2.1, 150, 6, false,
     4847571, 137987546},
    {"G14", "Reddit", Spec::kPlanted, 1500, 170.0, 0, 602, 41, true, 232965,
     229231784},
    {"G15", "orkut", Spec::kPowerLaw, 3300, 76.0, 2.2, 150, 6, false, 3072627,
     234370166},
    {"G16", "kmer_P1a", Spec::kErdos, 120000, 2.1, 0, 150, 6, false,
     139353211, 297829982},
    {"G17", "uk-2002", Spec::kPowerLaw, 7800, 32.0, 1.9, 150, 6, false,
     18520486, 596227524},
    {"G18", "uk-2005", Spec::kPowerLaw, 5300, 47.0, 1.9, 150, 6, false,
     39459925, 1872728564},
};

const Spec& find_spec(const std::string& id) {
  for (const Spec& s : kSpecs) {
    if (id == s.id) return s;
  }
  throw std::invalid_argument("unknown dataset id: " + id);
}

}  // namespace

Dataset make_dataset(const std::string& id) {
  const Spec& s = find_spec(id);
  Dataset d;
  d.id = s.id;
  d.name = s.name;
  d.input_feat_len = s.feat_len;
  d.num_classes = s.classes;
  d.labeled = s.labeled;
  d.paper_vertices = s.paper_v;
  d.paper_edges = s.paper_e;
  const std::uint64_t seed = 0x5eedull + std::uint64_t(&s - kSpecs);
  switch (s.kind) {
    case Spec::kPlanted:
      d.family = GraphFamily::kPlanted;
      break;
    case Spec::kPowerLaw:
      d.family = GraphFamily::kPowerLaw;
      break;
    case Spec::kGrid:
      d.family = GraphFamily::kGrid;
      break;
    case Spec::kRmat:
      d.family = GraphFamily::kKronecker;
      break;
    case Spec::kErdos:
      d.family = GraphFamily::kUniform;
      break;
  }
  switch (s.kind) {
    case Spec::kPlanted: {
      auto pp = planted_partition(s.n, s.classes, s.avg_degree, 0.8, seed);
      d.coo = std::move(pp.graph);
      d.labels = std::move(pp.labels);
      break;
    }
    case Spec::kPowerLaw: {
      PowerLawParams p;
      p.n = s.n;
      p.avg_degree = s.avg_degree;
      p.exponent = s.skew;
      p.seed = seed;
      d.coo = power_law(p);
      break;
    }
    case Spec::kGrid:
      d.coo = grid_graph(s.n);
      break;
    case Spec::kRmat: {
      RmatParams p;
      p.scale = int(s.n);
      p.edge_factor = s.avg_degree;
      p.seed = seed;
      d.coo = rmat_graph(p);
      break;
    }
    case Spec::kErdos:
      d.coo = erdos_renyi(s.n, eid_t(s.avg_degree * double(s.n) / 2.0), seed);
      break;
  }
  return d;
}

std::vector<std::string> kernel_suite_ids() {
  return {"G3", "G4", "G5", "G6", "G7", "G8",
          "G9", "G10", "G11", "G12", "G13", "G14", "G15"};
}

std::vector<std::string> accuracy_suite_ids() { return {"G0", "G1", "G2"}; }

std::vector<std::string> training_suite_ids() {
  return {"G9", "G10", "G11", "G12", "G13", "G14", "G15", "G16", "G17", "G18"};
}

std::vector<float> make_features(vid_t n, int f,
                                 const std::vector<int>& labels,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(std::size_t(n) * std::size_t(f));
  if (labels.empty()) {
    for (auto& v : x) v = float(rng.normal()) * 0.5f;
    return x;
  }
  // Class centroids: each class activates a distinct block of coordinates.
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  for (vid_t v = 0; v < n; ++v) {
    const int c = labels[std::size_t(v)];
    for (int j = 0; j < f; ++j) {
      const bool on = (j * k / std::max(f, 1)) == c;
      x[std::size_t(v) * std::size_t(f) + std::size_t(j)] =
          (on ? 1.0f : 0.0f) + float(rng.normal()) * 0.3f;
    }
  }
  return x;
}

}  // namespace gnnone
