// Minimal deterministic JSON, shared by the bench observability pipeline
// (BENCH_RESULTS.json, bench/baseline.json) and the autotuning cache
// (tune/cache.h).
//
// Design constraints (why not a third-party library):
//  * no external dependencies may be added to the image;
//  * serialization must be byte-deterministic across runs so that result
//    and cache artifacts can be diffed and golden-tested (object keys keep
//    insertion order, doubles print with the shortest round-trippable
//    representation);
//  * the parser only needs to read what the writer (and a human editing
//    bench/baseline.json) produces: objects, arrays, strings, numbers,
//    booleans, null.
#pragma once

#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gnnone::util {

class Json;
using JsonMembers = std::vector<std::pair<std::string, Json>>;

/// Thrown by Json::parse on malformed input (with byte offset).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value. Objects preserve insertion order (deterministic output).
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kInt), int_(std::int64_t(v)) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kDouble) return std::int64_t(double_);
    return fallback;
  }
  std::uint64_t as_uint(std::uint64_t fallback = 0) const {
    const std::int64_t v = as_int(std::int64_t(fallback));
    return v < 0 ? fallback : std::uint64_t(v);
  }
  double as_double(double fallback = 0.0) const {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kInt) return double(int_);
    return fallback;
  }
  const std::string& as_string() const { return string_; }

  // --- array interface ---------------------------------------------------
  void push_back(Json v) {
    require(Kind::kArray);
    array_.push_back(std::move(v));
  }
  const std::vector<Json>& items() const { return array_; }
  std::size_t size() const {
    return kind_ == Kind::kArray ? array_.size() : members_.size();
  }

  // --- object interface --------------------------------------------------
  /// Sets (or overwrites) a member, preserving first-insertion order.
  Json& set(const std::string& key, Json v) {
    require(Kind::kObject);
    for (auto& [k, existing] : members_) {
      if (k == key) {
        existing = std::move(v);
        return existing;
      }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
  }
  /// Member lookup; returns a shared null value when absent.
  const Json& operator[](const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return v;
    }
    static const Json null_value;
    return null_value;
  }
  bool contains(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return true;
    }
    return false;
  }
  const JsonMembers& members() const { return members_; }

  // --- serialization -----------------------------------------------------

  /// Deterministic pretty-printed serialization (2-space indent).
  std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent);
    return out;
  }

  static Json parse(const std::string& text) {
    std::size_t pos = 0;
    Json v = parse_value(text, pos);
    skip_ws(text, pos);
    if (pos != text.size()) {
      throw JsonError("trailing characters at offset " + std::to_string(pos));
    }
    return v;
  }

 private:
  void require(Kind k) {
    if (kind_ == Kind::kNull) kind_ = k;  // default-constructed: adopt
    if (kind_ != k) throw JsonError("json kind mismatch");
  }

  static void write_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  /// Shortest decimal representation that parses back to the same double —
  /// deterministic and human-readable (no trailing %.17g noise).
  static void write_double(std::string& out, double v) {
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    std::string s = buf;
    // Ensure the value re-parses as a double, not an integer.
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    out += s;
  }

  void write(std::string& out, int indent) const {
    const std::string pad(std::size_t(indent) * 2, ' ');
    const std::string pad_in(std::size_t(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kInt: {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%" PRId64, int_);
        out += buf;
        break;
      }
      case Kind::kDouble: write_double(out, double_); break;
      case Kind::kString: write_string(out, string_); break;
      case Kind::kArray: {
        if (array_.empty()) {
          out += "[]";
          break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
          out += pad_in;
          array_[i].write(out, indent + 1);
          if (i + 1 < array_.size()) out += ',';
          out += '\n';
        }
        out += pad + "]";
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          out += "{}";
          break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += pad_in;
          write_string(out, members_[i].first);
          out += ": ";
          members_[i].second.write(out, indent + 1);
          if (i + 1 < members_.size()) out += ',';
          out += '\n';
        }
        out += pad + "}";
        break;
      }
    }
  }

  // --- parser ------------------------------------------------------------

  static void skip_ws(const std::string& t, std::size_t& pos) {
    while (pos < t.size() && std::isspace(static_cast<unsigned char>(t[pos]))) {
      ++pos;
    }
  }

  [[noreturn]] static void fail(const char* what, std::size_t pos) {
    throw JsonError(std::string(what) + " at offset " + std::to_string(pos));
  }

  static bool consume(const std::string& t, std::size_t& pos, char c) {
    skip_ws(t, pos);
    if (pos < t.size() && t[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  static std::string parse_string(const std::string& t, std::size_t& pos) {
    if (!consume(t, pos, '"')) fail("expected string", pos);
    std::string out;
    while (pos < t.size() && t[pos] != '"') {
      char c = t[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= t.size()) fail("bad escape", pos);
      const char esc = t[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > t.size()) fail("bad \\u escape", pos);
          const unsigned long code =
              std::strtoul(t.substr(pos, 4).c_str(), nullptr, 16);
          pos += 4;
          // Writer only emits \u00xx; decode the Latin-1 range, keep the
          // escape verbatim for anything wider (not produced by us).
          if (code < 0x80) {
            out += char(code);
          } else {
            char buf[16];
            std::snprintf(buf, sizeof buf, "\\u%04lx", code & 0xfffful);
            out += buf;
          }
          break;
        }
        default: fail("unknown escape", pos);
      }
    }
    if (pos >= t.size()) fail("unterminated string", pos);
    ++pos;  // closing quote
    return out;
  }

  static Json parse_value(const std::string& t, std::size_t& pos) {
    skip_ws(t, pos);
    if (pos >= t.size()) fail("unexpected end of input", pos);
    const char c = t[pos];
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws(t, pos);
      if (consume(t, pos, '}')) return obj;
      while (true) {
        std::string key = parse_string(t, pos);
        if (!consume(t, pos, ':')) fail("expected ':'", pos);
        obj.set(key, parse_value(t, pos));
        if (consume(t, pos, ',')) continue;
        if (consume(t, pos, '}')) return obj;
        fail("expected ',' or '}'", pos);
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws(t, pos);
      if (consume(t, pos, ']')) return arr;
      while (true) {
        arr.push_back(parse_value(t, pos));
        if (consume(t, pos, ',')) continue;
        if (consume(t, pos, ']')) return arr;
        fail("expected ',' or ']'", pos);
      }
    }
    if (c == '"') return Json(parse_string(t, pos));
    if (t.compare(pos, 4, "true") == 0) {
      pos += 4;
      return Json(true);
    }
    if (t.compare(pos, 5, "false") == 0) {
      pos += 5;
      return Json(false);
    }
    if (t.compare(pos, 4, "null") == 0) {
      pos += 4;
      return Json();
    }
    // Number: integer when it has no fraction/exponent and fits int64.
    const std::size_t start = pos;
    if (c == '-' || c == '+') ++pos;
    bool is_double = false;
    while (pos < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[pos])) ||
            t[pos] == '.' || t[pos] == 'e' || t[pos] == 'E' || t[pos] == '-' ||
            t[pos] == '+')) {
      if (t[pos] == '.' || t[pos] == 'e' || t[pos] == 'E') is_double = true;
      ++pos;
    }
    if (pos == start) fail("unexpected character", pos);
    const std::string tok = t.substr(start, pos - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(std::int64_t(v));
      }
    }
    return Json(std::strtod(tok.c_str(), nullptr));
  }

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  JsonMembers members_;
};

}  // namespace gnnone::util
