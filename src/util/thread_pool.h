// A small persistent host thread pool for the simulator's parallel
// functional pass (gpusim/launch.cc) and any future host-parallel phase.
//
// Design constraints, in order:
//  * Determinism is the caller's job — the pool only provides "run this
//    callback on k workers"; callers do their own (ordered) work handout
//    and result merging. The pool never reorders or batches anything.
//  * Launch frequency is high (a training epoch is thousands of kernel
//    launches), so workers are created once and parked on a condition
//    variable between launches instead of being spawned per launch.
//  * The callback must not throw: callers that need error propagation
//    capture exceptions into their own per-task state (launch.cc stores an
//    std::exception_ptr per CTA chunk). A throw escaping the callback
//    terminates, as it would from a detached std::thread.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gnnone::util {

class ThreadPool {
 public:
  /// Creates `workers` parked worker threads (0 is valid: run() then
  /// executes everything on the calling thread).
  explicit ThreadPool(int workers) {
    if (workers < 0) workers = 0;
    threads_.reserve(std::size_t(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return int(threads_.size()); }

  /// Runs job(id) for id in [0, parallelism): id 0 on the calling thread,
  /// ids 1..parallelism-1 on pool workers. Blocks until every invocation
  /// returns. `parallelism` beyond num_workers()+1 is clamped. One run() at
  /// a time; concurrent callers serialize on an internal mutex.
  void run(int parallelism, const std::function<void(int)>& job) {
    int helpers = parallelism - 1;
    if (helpers > num_workers()) helpers = num_workers();
    if (helpers <= 0) {
      job(0);
      return;
    }
    std::unique_lock<std::mutex> run_lk(run_mu_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = &job;
      active_helpers_ = helpers;
      remaining_ = helpers;
      ++generation_;
    }
    wake_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

  /// Process-wide pool shared by every launch site. Lazily constructed on
  /// first use. Sized to hardware_concurrency() - 1 workers but never fewer
  /// than 15, so an explicit GNNONE_HOST_THREADS request up to 16 runs with
  /// real concurrency even on small machines (determinism tests sweep fixed
  /// thread counts regardless of the host's core count; parked workers cost
  /// nothing).
  static ThreadPool& global() {
    static ThreadPool pool(
        std::max(int(std::thread::hardware_concurrency()) - 1, 15));
    return pool;
  }

 private:
  void worker_loop(int index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        wake_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        if (index >= active_helpers_) continue;  // not needed this round
        job = job_;
      }
      (*job)(index + 1);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--remaining_ == 0) done_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  // serializes run() callers
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int active_helpers_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace gnnone::util
