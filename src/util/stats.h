// Exact order statistics shared by the serving tenant reports
// (serve/scheduler.h) and the bench layer (bench/harness.h).
//
// Latency tails are the serving metric that matters (the GNN-architecture
// survey's point), and an SLO gate must be *exact*: interpolated percentiles
// differ across libraries and float rounding, so both the per-tenant p99 in
// TenantReport and the bench expectations use the nearest-rank definition —
// the smallest sample such that at least ceil(p/100 * n) samples are <= it.
// Pure integer selection over a sorted copy: byte-deterministic, and the
// p100 of a set is its max, the p0 its min.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gnnone::util {

/// Exact nearest-rank percentile of `samples` (p in [0, 100]): sorts a copy
/// and returns the element at rank ceil(p/100 * n), clamped to [1, n], so
/// p = 0 gives the minimum and p = 100 the maximum. Throws
/// std::invalid_argument on an empty sample set or p outside [0, 100] — a
/// percentile of nothing is a bug at the call site, not a zero.
template <typename T>
T percentile(std::vector<T> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in [0, 100], got " +
                                std::to_string(p));
  }
  std::sort(samples.begin(), samples.end());
  // Nearest rank: ceil(p/100 * n) in exact integer arithmetic. p is snapped
  // to a 1/100-percent grid first (p50/p90/p99/p99.9 all live on it), which
  // sidesteps the float-division rounding that makes naive ceil(0.99 * n)
  // land on the wrong rank for some n.
  const std::uint64_t n = std::uint64_t(samples.size());
  const std::uint64_t p_scaled = std::uint64_t(p * 100.0 + 0.5);  // p * 100
  std::uint64_t rank = (p_scaled * n + 10000 - 1) / 10000;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples[std::size_t(rank - 1)];
}

}  // namespace gnnone::util
