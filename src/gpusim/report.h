// Human-readable reporting of kernel statistics (profiler-style output) and
// machine-readable exporters (CSV rows, chrome://tracing JSON).
#pragma once

#include <string>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"
#include "gpusim/stats.h"
#include "gpusim/trace.h"

namespace gpusim {

/// Converts modeled cycles to milliseconds at the spec's SM clock. Only
/// meaningful for relative comparisons (DESIGN.md §6).
inline double cycles_to_ms(std::uint64_t cycles, const DeviceSpec& spec) {
  return double(cycles) / (spec.sm_clock_ghz * 1e6);
}

/// Multi-line summary of one kernel launch: modeled time, occupancy, memory
/// traffic, and the issue/stall composition. Intended for tools and
/// examples; format is stable enough to grep but not a machine interface.
std::string describe(const KernelStats& ks, const DeviceSpec& spec);

/// One-line CSV record joinable across runs: label (from
/// LaunchConfig::label) and caller-supplied dataset id lead the row, then
/// cycles,warps,warps_per_sm,load_tx,bytes_loaded,load_fraction.
std::string csv_row(const KernelStats& ks, const std::string& dataset = "");
std::string csv_header();

/// Multi-line summary of a simsan report: per-kind violation counts followed
/// by every recorded violation's full description. "simsan: clean" when no
/// violations were observed.
std::string describe(const SanitizerReport& report);

/// Exports a recorded Trace as chrome://tracing "Trace Event Format" JSON
/// (load chrome://tracing or https://ui.perfetto.dev and drop the file in).
/// Each launch becomes one complete ("X") event with its counters attached
/// as args; timestamps derive from modeled cycles at the spec's SM clock.
std::string chrome_trace_json(const Trace& trace, const DeviceSpec& spec);

}  // namespace gpusim
