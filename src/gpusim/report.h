// Human-readable reporting of kernel statistics (profiler-style output).
#pragma once

#include <string>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"
#include "gpusim/stats.h"

namespace gpusim {

/// Multi-line summary of one kernel launch: modeled time, occupancy, memory
/// traffic, and the issue/stall composition. Intended for tools and
/// examples; format is stable enough to grep but not a machine interface.
std::string describe(const KernelStats& ks, const DeviceSpec& spec);

/// One-line CSV-ish record: cycles,warps,occupancy,tx,bytes,load_fraction.
std::string csv_row(const KernelStats& ks);
std::string csv_header();

/// Multi-line summary of a simsan report: per-kind violation counts followed
/// by every recorded violation's full description. "simsan: clean" when no
/// violations were observed.
std::string describe(const SanitizerReport& report);

}  // namespace gpusim
