// Device specification and latency table for the SIMT simulator.
//
// The simulator stands in for the NVIDIA A100 used in the paper. Constants
// are first-order approximations taken from public microbenchmark studies;
// the model is calibrated for *relative* behaviour (who wins, by what
// factor), never for absolute milliseconds. All values are in units of SM
// clock cycles unless stated otherwise.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gpusim {

inline constexpr int kWarpSize = 32;
inline constexpr int kTransactionBytes = 128;  // global-memory segment size

/// Hardware parameters of the simulated device. Defaults model an A100-40GB.
struct DeviceSpec {
  // --- structural limits -------------------------------------------------
  int num_sms = 108;
  int max_warps_per_sm = 64;
  int max_ctas_per_sm = 32;
  std::size_t regs_per_sm = 65536;          // 32-bit registers
  std::size_t shared_mem_per_sm = 164 * 1024;
  std::size_t shared_mem_per_cta = 96 * 1024;
  std::size_t device_memory_bytes = 40ull * 1024 * 1024 * 1024;

  // --- latency / throughput model ----------------------------------------
  double sm_clock_ghz = 1.41;      // SM clock; converts cycles to wall time
  int global_load_latency = 400;   // DRAM round trip, cycles
  int l2_load_latency = 120;       // L2-resident load (hot metadata), cycles
  int tx_issue_cycles = 4;         // LSU occupancy per 128B transaction
  int shared_access_cycles = 2;    // issue cost of one shared-memory op
  int shuffle_cycles = 2;          // issue cost of one warp shuffle
  int barrier_cycles = 4;          // fixed cost of a warp-level barrier
  int atomic_issue_cycles = 8;     // global atomic, per serialized address
  int alu_cycles_per_instr = 1;    // one 32-lane ALU/FMA instruction

  // Aggregate DRAM bandwidth floor: bytes the device can move per cycle.
  // A100: ~1.5 TB/s at ~1.4 GHz  =>  ~1100 B/cycle; rounded down.
  double dram_bytes_per_cycle = 1024.0;

  // Host interconnect bandwidth: bytes crossing PCIe per SM cycle. A100
  // PCIe Gen4 x16: ~31.5 GB/s effective at 1.41 GHz => ~22 B/cycle. This is
  // the ~46x device-vs-host gap that makes the serving path's feature-cache
  // misses expensive (docs/SERVING.md).
  double pcie_bytes_per_cycle = 22.0;

  // Peer (device-to-device) interconnect bandwidth: bytes crossing an
  // NVLink-class link per SM cycle. A100 NVLink3: ~300 GB/s per direction
  // at 1.41 GHz => ~212 B/cycle; rounded down. Sits between DRAM (~1024)
  // and PCIe (~22) — a remote shard's cached feature row is ~9x cheaper
  // than refetching it from the host, which is what makes sharded serving's
  // peer fetches worthwhile (docs/SERVING.md §10).
  double nvlink_bytes_per_cycle = 200.0;

  // Maximum number of load instructions whose latency can overlap within a
  // single warp before the LSU queue itself serializes (MSHR-style cap).
  int max_outstanding_loads = 32;

  // How many co-resident warps' worth of exposed memory latency the SM can
  // overlap (memory-level-parallelism cap). Aggregate stall cycles in a wave
  // are divided by min(resident warps, this). Smaller values make exposed
  // latency (ILP, memory barriers) matter more even at full occupancy.
  int latency_hiding_warps = 12;
};

/// Returns the default simulated device (A100-40GB class).
inline const DeviceSpec& default_device() {
  static const DeviceSpec spec{};
  return spec;
}

}  // namespace gpusim
