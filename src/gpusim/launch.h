// Kernel launch and SM scheduling: turns per-warp cost traces into a
// modeled kernel execution time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "gpusim/warp.h"

namespace gpusim {

/// Launch-time resource declaration. Register usage per thread cannot be
/// measured in a functional simulator, so kernels declare it, mirroring what
/// `nvcc --ptxas-options=-v` reports for the corresponding CUDA design. This
/// is the lever behind the paper's occupancy analysis (§3.2): nonzero-split
/// SpMM materializing F dot products per thread declares ~F extra registers
/// and collapses its occupancy.
struct LaunchConfig {
  std::int64_t num_ctas = 0;
  int warps_per_cta = 4;
  std::size_t shared_bytes_per_cta = 0;
  int regs_per_thread = 32;
  std::uint64_t launch_overhead_cycles = 2000;  // ~1.5 us at 1.4 GHz
  /// Kernel name for diagnostics (simsan violation reports). Optional; an
  /// empty label reports as "<unnamed>".
  std::string label;
};

/// Achieved occupancy for a launch configuration on a device.
struct Occupancy {
  int ctas_per_sm = 0;
  int warps_per_sm = 0;
};

Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

using KernelFn = std::function<void(WarpCtx&)>;

/// Executes `body` once per warp (functionally, in deterministic order) and
/// returns the modeled kernel time:
///
///   - CTAs are assigned to SMs round-robin.
///   - Each SM runs its CTA queue in batches of `ctas_per_sm` resident CTAs
///     (a "wave"). Wave time = max(sum of issue cycles over resident warps,
///     max over resident warps of issue+stall). The first term is the SM's
///     issue-bandwidth bound; the second is the critical warp whose memory
///     latency cannot be hidden by co-resident warps — this is where both
///     workload imbalance and occupancy collapse surface as time.
///   - Total = launch overhead + max over SMs, floored by aggregate DRAM
///     bandwidth.
KernelStats launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                   const KernelFn& body);

}  // namespace gpusim
