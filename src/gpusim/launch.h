// Kernel launch and SM scheduling: turns per-warp cost traces into a
// modeled kernel execution time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "gpusim/warp.h"

namespace gpusim {

/// Launch-time resource declaration. Register usage per thread cannot be
/// measured in a functional simulator, so kernels declare it, mirroring what
/// `nvcc --ptxas-options=-v` reports for the corresponding CUDA design. This
/// is the lever behind the paper's occupancy analysis (§3.2): nonzero-split
/// SpMM materializing F dot products per thread declares ~F extra registers
/// and collapses its occupancy.
struct LaunchConfig {
  std::int64_t num_ctas = 0;
  int warps_per_cta = 4;
  std::size_t shared_bytes_per_cta = 0;
  int regs_per_thread = 32;
  std::uint64_t launch_overhead_cycles = 2000;  // ~1.5 us at 1.4 GHz
  /// Kernel name for diagnostics (simsan violation reports). Optional; an
  /// empty label reports as "<unnamed>".
  std::string label;
  /// Host threads for this launch's functional pass (0 = the process-wide
  /// default, see host_threads() below). Results are bit-identical at every
  /// value; 1 is the fully serial path.
  int host_threads = 0;
};

/// Achieved occupancy for a launch configuration on a device.
struct Occupancy {
  int ctas_per_sm = 0;
  int warps_per_sm = 0;
};

/// Achieved occupancy for the configuration, or std::invalid_argument when
/// the configuration cannot fit even one CTA on an SM (warps_per_cta beyond
/// the SM's warp slots, or register demand exceeding the register file):
/// such a launch fails at cudaLaunchKernel time on hardware, so modeling it
/// as if one CTA were resident would silently fabricate impossible numbers.
Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

using KernelFn = std::function<void(WarpCtx&)>;

/// The process-wide default host-thread count for the functional pass:
/// set_host_threads() override if set, else GNNONE_HOST_THREADS (read once),
/// else std::thread::hardware_concurrency().
int host_threads();
/// Overrides the default worker count for subsequent launches (tests/bench
/// sweeps). 0 restores the env/hardware default.
void set_host_threads(int n);

/// Executes `body` once per warp and returns the modeled kernel time.
///
/// Functional pass: independent CTAs execute on a host thread pool
/// (host_threads()/LaunchConfig::host_threads workers; 1 = serial) with
/// results bit-identical to serial execution at every thread count:
///
///   - each worker runs its CTAs against a private SharedMem arena;
///   - cross-CTA float atomics append to per-CTA commit logs replayed in
///     CTA order (see AtomicCommit), never racing on host memory;
///   - per-warp stats and sanitizer diagnostics merge in launch order.
///
/// Timing model (computed from the per-warp cost traces, unaffected by the
/// host-side parallelism):
///
///   - CTAs are assigned to SMs round-robin.
///   - Each SM runs its CTA queue in batches of `ctas_per_sm` resident CTAs
///     (a "wave"). Wave time = max(sum of issue cycles over resident warps,
///     max over resident warps of issue+stall). The first term is the SM's
///     issue-bandwidth bound; the second is the critical warp whose memory
///     latency cannot be hidden by co-resident warps — this is where both
///     workload imbalance and occupancy collapse surface as time.
///   - Total = launch overhead + max over SMs, floored by aggregate DRAM
///     bandwidth (fractional bytes-per-cycle terms rounded up, matching the
///     dense cost model's ceil convention).
KernelStats launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                   const KernelFn& body);

}  // namespace gpusim
