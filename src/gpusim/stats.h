// Cost-model counters produced by simulated kernel execution.
#pragma once

#include <cstdint>
#include <string>

namespace gpusim {

/// Per-warp counters. `issue_cycles` models instruction/LSU occupancy of the
/// SM pipeline; `stall_cycles` models exposed memory latency (the part that
/// multithreading across resident warps can hide). The split drives the wave
/// scheduling model in launch.cc.
struct WarpStats {
  // Cost accumulation.
  std::uint64_t issue_cycles = 0;
  std::uint64_t stall_cycles = 0;

  // Raw event counters (for assertions, breakdowns, and Fig. 11).
  std::uint64_t global_load_instrs = 0;
  std::uint64_t global_store_instrs = 0;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
  std::uint64_t bytes_loaded = 0;
  std::uint64_t bytes_stored = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t shuffles = 0;
  std::uint64_t barriers = 0;
  std::uint64_t atomic_instrs = 0;
  std::uint64_t atomic_serializations = 0;
  std::uint64_t alu_instrs = 0;

  // Portion of issue/stall attributable to moving data, used for the paper's
  // data-load-vs-compute breakdown (Fig. 11). Loads, stores and atomics are
  // attributed separately so the *load* fraction the paper's §3.2 argument
  // rests on is not inflated by write-back traffic.
  std::uint64_t load_issue_cycles = 0;    // global/L2 load issue only
  std::uint64_t load_stall_cycles = 0;    // exposed load latency
  std::uint64_t store_issue_cycles = 0;   // global store issue
  std::uint64_t atomic_issue_cycles = 0;  // global atomic issue (incl. serialization)

  void add(const WarpStats& o) {
    issue_cycles += o.issue_cycles;
    stall_cycles += o.stall_cycles;
    global_load_instrs += o.global_load_instrs;
    global_store_instrs += o.global_store_instrs;
    load_transactions += o.load_transactions;
    store_transactions += o.store_transactions;
    bytes_loaded += o.bytes_loaded;
    bytes_stored += o.bytes_stored;
    shared_ops += o.shared_ops;
    shuffles += o.shuffles;
    barriers += o.barriers;
    atomic_instrs += o.atomic_instrs;
    atomic_serializations += o.atomic_serializations;
    alu_instrs += o.alu_instrs;
    load_issue_cycles += o.load_issue_cycles;
    load_stall_cycles += o.load_stall_cycles;
    store_issue_cycles += o.store_issue_cycles;
    atomic_issue_cycles += o.atomic_issue_cycles;
  }
};

/// Violation counters filled in by the simsan checking layer (sanitizer.h)
/// when a launch runs under an active Sanitizer; all zero otherwise.
struct SanitizerCounters {
  std::uint64_t global_oob = 0;         // out-of-bounds global accesses
  std::uint64_t shared_oob = 0;         // out-of-bounds shared accesses
  std::uint64_t shared_races = 0;       // cross-warp shared-memory conflicts
  std::uint64_t barrier_divergence = 0; // partial-mask / unbalanced barriers
  std::uint64_t shared_uninit_reads = 0;  // reads of never-written shared words

  std::uint64_t total() const {
    return global_oob + shared_oob + shared_races + barrier_divergence +
           shared_uninit_reads;
  }

  void add(const SanitizerCounters& o) {
    global_oob += o.global_oob;
    shared_oob += o.shared_oob;
    shared_races += o.shared_races;
    barrier_divergence += o.barrier_divergence;
    shared_uninit_reads += o.shared_uninit_reads;
  }
};

/// Result of one simulated kernel launch.
struct KernelStats {
  std::string label;               // LaunchConfig::label of this launch
  std::uint64_t cycles = 0;        // modeled execution time (makespan)
  WarpStats totals;                // sum over all warps
  int resident_ctas_per_sm = 0;    // achieved occupancy (CTAs)
  int resident_warps_per_sm = 0;   // achieved occupancy (warps)
  std::uint64_t num_warps = 0;
  std::uint64_t num_ctas = 0;
  bool dram_bandwidth_bound = false;
  SanitizerCounters sanitizer;     // simsan violations observed in this launch

  /// Fraction of modeled time spent *loading* data (load issue + exposed
  /// load latency); >0.5 means load-dominated. Store and atomic write-back
  /// issue is deliberately excluded — it is tracked separately below.
  double data_load_fraction() const {
    const auto work = totals.issue_cycles + totals.stall_cycles;
    if (work == 0) return 0.0;
    return double(totals.load_issue_cycles + totals.load_stall_cycles) /
           double(work);
  }

  /// Fraction of modeled time spent moving data in either direction (loads,
  /// stores and atomic write-back).
  double data_movement_fraction() const {
    const auto work = totals.issue_cycles + totals.stall_cycles;
    if (work == 0) return 0.0;
    return double(totals.load_issue_cycles + totals.load_stall_cycles +
                  totals.store_issue_cycles + totals.atomic_issue_cycles) /
           double(work);
  }
};

}  // namespace gpusim
