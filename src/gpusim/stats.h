// Cost-model counters produced by simulated kernel execution.
#pragma once

#include <cstdint>

namespace gpusim {

/// Per-warp counters. `issue_cycles` models instruction/LSU occupancy of the
/// SM pipeline; `stall_cycles` models exposed memory latency (the part that
/// multithreading across resident warps can hide). The split drives the wave
/// scheduling model in launch.cc.
struct WarpStats {
  // Cost accumulation.
  std::uint64_t issue_cycles = 0;
  std::uint64_t stall_cycles = 0;

  // Raw event counters (for assertions, breakdowns, and Fig. 11).
  std::uint64_t global_load_instrs = 0;
  std::uint64_t global_store_instrs = 0;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
  std::uint64_t bytes_loaded = 0;
  std::uint64_t bytes_stored = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t shuffles = 0;
  std::uint64_t barriers = 0;
  std::uint64_t atomic_instrs = 0;
  std::uint64_t atomic_serializations = 0;
  std::uint64_t alu_instrs = 0;

  // Portion of issue/stall attributable to moving data (loads/stores and the
  // latency they expose), used for the paper's data-load-vs-compute breakdown.
  std::uint64_t load_issue_cycles = 0;
  std::uint64_t load_stall_cycles = 0;

  void add(const WarpStats& o) {
    issue_cycles += o.issue_cycles;
    stall_cycles += o.stall_cycles;
    global_load_instrs += o.global_load_instrs;
    global_store_instrs += o.global_store_instrs;
    load_transactions += o.load_transactions;
    store_transactions += o.store_transactions;
    bytes_loaded += o.bytes_loaded;
    bytes_stored += o.bytes_stored;
    shared_ops += o.shared_ops;
    shuffles += o.shuffles;
    barriers += o.barriers;
    atomic_instrs += o.atomic_instrs;
    atomic_serializations += o.atomic_serializations;
    alu_instrs += o.alu_instrs;
    load_issue_cycles += o.load_issue_cycles;
    load_stall_cycles += o.load_stall_cycles;
  }
};

/// Violation counters filled in by the simsan checking layer (sanitizer.h)
/// when a launch runs under an active Sanitizer; all zero otherwise.
struct SanitizerCounters {
  std::uint64_t global_oob = 0;         // out-of-bounds global accesses
  std::uint64_t shared_oob = 0;         // out-of-bounds shared accesses
  std::uint64_t shared_races = 0;       // cross-warp shared-memory conflicts
  std::uint64_t barrier_divergence = 0; // partial-mask / unbalanced barriers

  std::uint64_t total() const {
    return global_oob + shared_oob + shared_races + barrier_divergence;
  }

  void add(const SanitizerCounters& o) {
    global_oob += o.global_oob;
    shared_oob += o.shared_oob;
    shared_races += o.shared_races;
    barrier_divergence += o.barrier_divergence;
  }
};

/// Result of one simulated kernel launch.
struct KernelStats {
  std::uint64_t cycles = 0;        // modeled execution time (makespan)
  WarpStats totals;                // sum over all warps
  int resident_ctas_per_sm = 0;    // achieved occupancy (CTAs)
  int resident_warps_per_sm = 0;   // achieved occupancy (warps)
  std::uint64_t num_warps = 0;
  std::uint64_t num_ctas = 0;
  bool dram_bandwidth_bound = false;
  SanitizerCounters sanitizer;     // simsan violations observed in this launch

  /// Fraction of modeled time spent moving data; >0.5 means load-dominated.
  double data_load_fraction() const {
    const auto work = totals.issue_cycles + totals.stall_cycles;
    if (work == 0) return 0.0;
    return double(totals.load_issue_cycles + totals.load_stall_cycles) /
           double(work);
  }
};

}  // namespace gpusim
