// simsan: an opt-in kernel sanitizer for the SIMT simulator.
//
// The simulator executes every lane-level access in-process, which makes it
// the natural place to *validate* kernels, not just run them. When a
// Sanitizer is active (RAII scope, see below), every launch is checked for:
//
//  * Shared-memory races — per-word last-writer/last-reader epoch tracking
//    over the CTA's shared arena. Warps of a CTA execute sequentially in the
//    simulator, so two accesses by different warps conflict exactly when no
//    CTA barrier separates them: each warp's "phase" is its count of
//    cta_sync() calls, and same-phase accesses to the same word (with at
//    least one write) are unordered on real hardware.
//  * Uninitialized shared reads — a read of a shared word no warp of the
//    CTA has written. On hardware this returns garbage (or, with the serial
//    one-arena simulator, the previous CTA's stale bytes — which under
//    parallel CTA execution becomes nondeterminism, since "previous" then
//    depends on worker scheduling). The launcher also poison-fills the
//    arena at each CTA boundary while a sanitizer is active so stale data
//    cannot masquerade as reproducible results.
//  * Out-of-bounds global accesses — a registry of tracked regions
//    (Buffer<T> registers automatically; raw spans via track()); every
//    ld/st/atomic whose base lies in a tracked region must stay inside it.
//    Violating lanes are reported *and masked out* of the functional access
//    so a buggy kernel cannot corrupt host memory while under test.
//  * Out-of-bounds shared accesses — span-relative index checks on every
//    sh_read/sh_write.
//  * Barrier divergence — a barrier issued under a partial active mask, or
//    unequal cta_sync() counts across the warps of a CTA at kernel exit
//    (a deadlock on real hardware).
//
// Concurrency: CTAs of one launch may execute in parallel on host threads
// (gpusim::set_host_threads / GNNONE_HOST_THREADS). The Sanitizer object
// itself is the *accumulator* — region registry, options, report — and is
// only touched from the thread driving the launch. All per-CTA mutable
// checking state (shared-arena shadow words, barrier phases, pending
// violations) lives in a CtaSanitizer owned by the executing worker; the
// launcher absorbs each CTA's results back into the Sanitizer in CTA order,
// so reports and counters are bit-identical at every thread count.
//
// The checks are opt-in: with no active Sanitizer the hot loop performs a
// single predictable null-pointer test per warp-wide operation (1/32 of a
// branch per lane-access) and the modeled cycle counts are bit-identical to
// the unchecked build. Diagnostics accumulate in a SanitizerReport and the
// per-launch deltas surface as KernelStats::sanitizer counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/stats.h"

namespace gpusim {

enum class ViolationKind {
  kGlobalOob,
  kSharedOob,
  kSharedRace,
  kBarrierDivergence,
  kDoubleRelease,
  kSharedUninitRead,
};

const char* violation_name(ViolationKind k);

/// One recorded violation with full SIMT coordinates.
struct SanitizerViolation {
  ViolationKind kind;
  std::string kernel;       // LaunchConfig::label of the offending launch
  std::int64_t cta = -1;
  int warp = -1;
  int lane = -1;
  std::string detail;       // human-readable specifics (address, sizes, ...)

  std::string describe() const;
};

/// Thrown on violation when SanitizerOptions::fatal is set, and on
/// DeviceMemory release underflow under an active sanitizer.
class SanitizerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SanitizerOptions {
  /// Cap on individually recorded violations (counters keep counting past
  /// it, so a flood of repeats cannot exhaust memory).
  std::size_t max_recorded = 64;
  /// Throw SanitizerError on the first violation instead of accumulating.
  /// Under parallel CTA execution the launcher rethrows the violation of
  /// the lowest faulting CTA, matching what serial execution hits first.
  bool fatal = false;
};

/// Accumulated diagnostics across every launch observed by one Sanitizer.
class SanitizerReport {
 public:
  bool clean() const { return total() == 0; }
  std::uint64_t total() const;
  std::uint64_t count(ViolationKind k) const {
    return counts_[std::size_t(k)];
  }
  const std::vector<SanitizerViolation>& violations() const {
    return violations_;
  }

 private:
  friend class Sanitizer;
  static constexpr std::size_t kKinds = 6;
  std::uint64_t counts_[kKinds] = {};
  std::vector<SanitizerViolation> violations_;
};

class CtaSanitizer;

/// The checking layer's accumulator + region registry. Construction pushes
/// this sanitizer as the active one (resolved once per launch; per-CTA
/// checking state lives in CtaSanitizer instances owned by the launch
/// workers), destruction pops it — scope a Sanitizer around the launches
/// you want checked:
///
///   gpusim::Sanitizer san;
///   san.track(x.data(), x.size() * sizeof(float), "x");
///   run_kernel(...);
///   ASSERT_TRUE(san.report().clean()) << gpusim::describe(san.report());
class Sanitizer {
 public:
  explicit Sanitizer(SanitizerOptions opts = {});
  ~Sanitizer();
  Sanitizer(const Sanitizer&) = delete;
  Sanitizer& operator=(const Sanitizer&) = delete;

  /// The innermost live Sanitizer, or nullptr when checking is off.
  static Sanitizer* active();

  /// Registers a global-memory region for out-of-bounds checking. Buffer<T>
  /// calls this automatically; tests register raw vectors/spans directly.
  /// Must not be called while a launch is executing (regions are read
  /// lock-free by concurrently checking CTAs).
  void track(const void* base, std::size_t bytes, std::string name);
  /// Removes a region previously registered with track(); no-op when absent.
  void untrack(const void* base);

  const SanitizerReport& report() const { return report_; }

  // -------------------------------------------------------------------
  // Simulator hooks (called by launch.cc / DeviceMemory; not a user API).
  // -------------------------------------------------------------------

  void begin_launch(const std::string& kernel);
  void end_launch(SanitizerCounters& out);

  /// Merges finished CTAs' pending violations and counters into the report.
  /// The launcher calls this in CTA order from the driving thread, which is
  /// what keeps the report identical at every thread count.
  void absorb(std::vector<SanitizerViolation>&& violations,
              const SanitizerCounters& counters);

  /// DeviceMemory::release() accounting underflow (double release).
  /// Records the violation, then throws SanitizerError.
  void on_release_underflow(std::size_t requested, std::size_t in_use);

 private:
  friend class CtaSanitizer;

  struct Region {
    const std::byte* begin;
    std::size_t bytes;
    std::string name;
  };

  void record(ViolationKind kind, int warp, int lane, std::string detail);
  const Region* find_region(const std::byte* base) const;

  SanitizerOptions opts_;
  SanitizerReport report_;
  SanitizerCounters launch_counters_;
  std::vector<Region> regions_;

  std::string kernel_;

  Sanitizer* prev_;
};

/// Per-CTA checking engine: owns every piece of mutable state one CTA's
/// checks touch (arena shadow words, barrier phases, pending violations),
/// so independent CTAs can be checked from different host threads with no
/// shared writes. A worker reuses one instance across the CTAs it executes:
/// begin_cta() rebinds it to the next CTA, and the launcher absorbs the
/// pending results into the parent Sanitizer in CTA order.
class CtaSanitizer {
 public:
  /// Rebinds to one CTA: resets shadow/phase state and remembers the
  /// worker's arena so span addresses map to byte offsets.
  void begin_cta(Sanitizer& parent, std::int64_t cta, int warps_per_cta,
                 const std::byte* shmem_base, std::size_t shmem_capacity);
  /// End-of-CTA checks (unbalanced CTA barriers).
  void end_cta();

  /// Bounds-checks one warp-wide global access of `vec_width` elements of
  /// `elem_bytes` per lane. Returns `mask` with violating lanes cleared.
  std::uint32_t check_global(const void* base, std::size_t elem_bytes,
                             int vec_width, const std::int64_t* index,
                             std::uint32_t mask, bool is_write, int warp);

  /// Bounds-checks + race-tracks one warp-wide shared access against the
  /// span [elem0, elem0 + num_elems). Returns `mask` minus violating lanes.
  std::uint32_t check_shared(const void* elem0, std::size_t num_elems,
                             std::size_t elem_bytes, const int* index,
                             std::uint32_t mask, bool is_write, int warp);

  /// Scalar variant (sh_read_scalar). Returns false when out of bounds.
  bool check_shared_scalar(const void* elem0, std::size_t num_elems,
                           std::size_t elem_bytes, int index, int warp);

  void on_warp_barrier(std::uint32_t active_mask, int warp);
  void on_cta_barrier(std::uint32_t active_mask, int warp);

  /// Moves the accumulated violations/counters out (the launcher stashes
  /// them per CTA chunk and later feeds Sanitizer::absorb in CTA order).
  /// begin_cta() does not clear them, so one worker's instance accumulates
  /// a whole contiguous chunk in CTA order between drains.
  void drain_into(std::vector<SanitizerViolation>& violations,
                  SanitizerCounters& counters);

  const std::vector<SanitizerViolation>& pending() const { return pending_; }
  const SanitizerCounters& counters() const { return counters_; }

 private:
  friend class Sanitizer;

  /// Per-4-byte-word shadow state of the shared arena.
  struct ShadowWord {
    std::int32_t writer_warp = -1;
    std::int32_t writer_phase = -1;
    std::int32_t reader_warp = -1;
    std::int32_t reader_phase = -1;
    bool written = false;  // any write this CTA (uninit-read tracking)
  };

  void record(ViolationKind kind, int warp, int lane, std::string detail);
  void race_track_word(std::size_t word, bool is_write, int warp, int lane);

  Sanitizer* parent_ = nullptr;
  const std::byte* sh_base_ = nullptr;
  std::size_t sh_capacity_ = 0;
  std::vector<ShadowWord> shadow_;
  std::vector<std::int32_t> barrier_phase_;  // per warp of the current CTA
  std::int64_t cta_ = -1;

  std::vector<SanitizerViolation> pending_;
  SanitizerCounters counters_;
};

}  // namespace gpusim
