#include "gpusim/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace gpusim {

namespace {

std::string fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(std::size_t(n) + 1);
    std::vsnprintf(out.data(), out.size(), format, args);
    out.resize(std::size_t(n));
  }
  va_end(args);
  return out;
}

/// CSV field escaping: labels are caller-controlled free text, so quote any
/// field containing a comma, quote or newline (RFC 4180).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Minimal JSON string escaping for trace labels.
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string describe(const KernelStats& ks, const DeviceSpec& spec) {
  std::string out;
  if (!ks.label.empty()) out += fmt("kernel           : %s\n", ks.label.c_str());
  out += fmt("modeled time     : %.3f ms (%" PRIu64 " cycles @ %.2f GHz)%s\n",
             cycles_to_ms(ks.cycles, spec), ks.cycles, spec.sm_clock_ghz,
             ks.dram_bandwidth_bound ? "  [DRAM-BW bound]" : "");
  out += fmt("grid             : %" PRIu64 " CTAs x %d warps resident/SM "
             "(%d CTAs/SM) on %d SMs\n",
             ks.num_ctas, ks.resident_warps_per_sm, ks.resident_ctas_per_sm,
             spec.num_sms);
  out += fmt("global loads     : %" PRIu64 " instr, %" PRIu64
             " transactions, %.2f MB\n",
             ks.totals.global_load_instrs, ks.totals.load_transactions,
             double(ks.totals.bytes_loaded) / 1e6);
  out += fmt("global stores    : %" PRIu64 " instr, %.2f MB\n",
             ks.totals.global_store_instrs,
             double(ks.totals.bytes_stored) / 1e6);
  out += fmt("shared / shfl    : %" PRIu64 " ops / %" PRIu64
             " shuffles, %" PRIu64 " barriers\n",
             ks.totals.shared_ops, ks.totals.shuffles, ks.totals.barriers);
  out += fmt("atomics          : %" PRIu64 " instr (%" PRIu64
             " serialized conflicts)\n",
             ks.totals.atomic_instrs, ks.totals.atomic_serializations);
  out += fmt("issue vs stall   : %" PRIu64 " vs %" PRIu64
             " cycles (data-load share %.0f%%, stores+atomics %.0f%%)\n",
             ks.totals.issue_cycles, ks.totals.stall_cycles,
             100.0 * ks.data_load_fraction(),
             100.0 * (ks.data_movement_fraction() - ks.data_load_fraction()));
  if (ks.sanitizer.total() > 0) {
    out += fmt("simsan           : %" PRIu64 " violations (%" PRIu64
               " global OOB, %" PRIu64 " shared OOB, %" PRIu64
               " races, %" PRIu64 " barrier, %" PRIu64 " uninit)\n",
               ks.sanitizer.total(), ks.sanitizer.global_oob,
               ks.sanitizer.shared_oob, ks.sanitizer.shared_races,
               ks.sanitizer.barrier_divergence,
               ks.sanitizer.shared_uninit_reads);
  }
  return out;
}

std::string describe(const SanitizerReport& report) {
  if (report.clean()) return "simsan: clean\n";
  std::string out = fmt("simsan: %" PRIu64 " violations\n", report.total());
  constexpr ViolationKind kKinds[] = {
      ViolationKind::kGlobalOob, ViolationKind::kSharedOob,
      ViolationKind::kSharedRace, ViolationKind::kBarrierDivergence,
      ViolationKind::kDoubleRelease};
  for (ViolationKind k : kKinds) {
    if (report.count(k) > 0) {
      out += fmt("  %-22s : %" PRIu64 "\n", violation_name(k), report.count(k));
    }
  }
  for (const SanitizerViolation& v : report.violations()) {
    out += "  " + v.describe() + "\n";
  }
  return out;
}

std::string csv_header() {
  return "label,dataset,cycles,warps,warps_per_sm,load_tx,bytes_loaded,"
         "load_fraction";
}

std::string csv_row(const KernelStats& ks, const std::string& dataset) {
  return csv_field(ks.label) + "," + csv_field(dataset) + "," +
         fmt("%" PRIu64 ",%" PRIu64 ",%d,%" PRIu64 ",%" PRIu64 ",%.3f",
             ks.cycles, ks.num_warps, ks.resident_warps_per_sm,
             ks.totals.load_transactions, ks.totals.bytes_loaded,
             ks.data_load_fraction());
}

std::string chrome_trace_json(const Trace& trace, const DeviceSpec& spec) {
  // Trace Event Format timestamps are microseconds; keep sub-cycle precision
  // by emitting fractional us.
  const double us_per_cycle = 1.0 / (spec.sm_clock_ghz * 1e3);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& ev : trace.events()) {
    const KernelStats& ks = ev.stats;
    if (!first) out += ",\n";
    first = false;
    const std::string name =
        ks.label.empty() ? std::string("<unnamed>") : ks.label;
    out += fmt(
        "{\"name\":\"%s\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,\"args\":{"
        "\"cycles\":%" PRIu64 ",\"ctas\":%" PRIu64 ",\"warps\":%" PRIu64
        ",\"ctas_per_sm\":%d,\"warps_per_sm\":%d,"
        "\"dram_bw_bound\":%s,"
        "\"load_instrs\":%" PRIu64 ",\"load_tx\":%" PRIu64
        ",\"bytes_loaded\":%" PRIu64 ",\"bytes_stored\":%" PRIu64
        ",\"shared_ops\":%" PRIu64 ",\"shuffles\":%" PRIu64
        ",\"barriers\":%" PRIu64 ",\"atomics\":%" PRIu64
        ",\"issue_cycles\":%" PRIu64 ",\"stall_cycles\":%" PRIu64
        ",\"load_fraction\":%.3f}}",
        json_escape(name).c_str(), double(ev.start_cycle) * us_per_cycle,
        double(ks.cycles) * us_per_cycle, ks.cycles, ks.num_ctas, ks.num_warps,
        ks.resident_ctas_per_sm, ks.resident_warps_per_sm,
        ks.dram_bandwidth_bound ? "true" : "false",
        ks.totals.global_load_instrs, ks.totals.load_transactions,
        ks.totals.bytes_loaded, ks.totals.bytes_stored, ks.totals.shared_ops,
        ks.totals.shuffles, ks.totals.barriers, ks.totals.atomic_instrs,
        ks.totals.issue_cycles, ks.totals.stall_cycles,
        ks.data_load_fraction());
  }
  out += "\n]}\n";
  return out;
}

}  // namespace gpusim
