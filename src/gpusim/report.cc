#include "gpusim/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace gpusim {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string describe(const KernelStats& ks, const DeviceSpec& spec) {
  std::string out;
  const double ms = double(ks.cycles) / 1.41e6;  // A100-class clock
  out += fmt("modeled time     : %.3f ms (%" PRIu64 " cycles)%s\n", ms,
             ks.cycles, ks.dram_bandwidth_bound ? "  [DRAM-BW bound]" : "");
  out += fmt("grid             : %" PRIu64 " CTAs x %d warps resident/SM "
             "(%d CTAs/SM) on %d SMs\n",
             ks.num_ctas, ks.resident_warps_per_sm, ks.resident_ctas_per_sm,
             spec.num_sms);
  out += fmt("global loads     : %" PRIu64 " instr, %" PRIu64
             " transactions, %.2f MB\n",
             ks.totals.global_load_instrs, ks.totals.load_transactions,
             double(ks.totals.bytes_loaded) / 1e6);
  out += fmt("global stores    : %" PRIu64 " instr, %.2f MB\n",
             ks.totals.global_store_instrs,
             double(ks.totals.bytes_stored) / 1e6);
  out += fmt("shared / shfl    : %" PRIu64 " ops / %" PRIu64
             " shuffles, %" PRIu64 " barriers\n",
             ks.totals.shared_ops, ks.totals.shuffles, ks.totals.barriers);
  out += fmt("atomics          : %" PRIu64 " instr (%" PRIu64
             " serialized conflicts)\n",
             ks.totals.atomic_instrs, ks.totals.atomic_serializations);
  out += fmt("issue vs stall   : %" PRIu64 " vs %" PRIu64
             " cycles (data-load share %.0f%%)\n",
             ks.totals.issue_cycles, ks.totals.stall_cycles,
             100.0 * ks.data_load_fraction());
  if (ks.sanitizer.total() > 0) {
    out += fmt("simsan           : %" PRIu64 " violations (%" PRIu64
               " global OOB, %" PRIu64 " shared OOB, %" PRIu64
               " races, %" PRIu64 " barrier)\n",
               ks.sanitizer.total(), ks.sanitizer.global_oob,
               ks.sanitizer.shared_oob, ks.sanitizer.shared_races,
               ks.sanitizer.barrier_divergence);
  }
  return out;
}

std::string describe(const SanitizerReport& report) {
  if (report.clean()) return "simsan: clean\n";
  std::string out = fmt("simsan: %" PRIu64 " violations\n", report.total());
  constexpr ViolationKind kKinds[] = {
      ViolationKind::kGlobalOob, ViolationKind::kSharedOob,
      ViolationKind::kSharedRace, ViolationKind::kBarrierDivergence,
      ViolationKind::kDoubleRelease};
  for (ViolationKind k : kKinds) {
    if (report.count(k) > 0) {
      out += fmt("  %-22s : %" PRIu64 "\n", violation_name(k), report.count(k));
    }
  }
  for (const SanitizerViolation& v : report.violations()) {
    out += "  " + v.describe() + "\n";
  }
  return out;
}

std::string csv_header() {
  return "cycles,warps,warps_per_sm,load_tx,bytes_loaded,load_fraction";
}

std::string csv_row(const KernelStats& ks) {
  return fmt("%" PRIu64 ",%" PRIu64 ",%d,%" PRIu64 ",%" PRIu64 ",%.3f",
             ks.cycles, ks.num_warps, ks.resident_warps_per_sm,
             ks.totals.load_transactions, ks.totals.bytes_loaded,
             ks.data_load_fraction());
}

}  // namespace gpusim
