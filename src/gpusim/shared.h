// Per-CTA shared-memory arena for simulated kernels.
//
// Functional storage for the GPU's programmable shared memory. The launcher
// resets the arena at each CTA boundary; warps of a CTA allocate disjoint
// slices from it (warps execute sequentially in the simulator, but slices are
// warp-private by kernel construction, mirroring the paper's per-warp
// CACHE_SIZE staging buffers). Over-allocating beyond the launch
// configuration's declared shared bytes is a kernel bug and throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace gpusim {

class SharedMem {
 public:
  explicit SharedMem(std::size_t capacity_bytes)
      : storage_(capacity_bytes), top_(0) {}

  /// Allocates `count` elements of T, 16-byte aligned. Lifetime ends at the
  /// next reset(); spans must not be retained across CTAs.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    constexpr std::size_t kAlign = 16;
    std::size_t offset = (top_ + kAlign - 1) / kAlign * kAlign;
    std::size_t bytes = count * sizeof(T);
    if (offset + bytes > storage_.size()) {
      throw std::runtime_error(
          "shared memory overflow: kernel allocated more than the launch "
          "config declared");
    }
    top_ = offset + bytes;
    high_water_ = top_ > high_water_ ? top_ : high_water_;
    return {reinterpret_cast<T*>(storage_.data() + offset), count};
  }

  /// Frees all allocations (CTA boundary).
  void reset() { top_ = 0; }

  std::size_t capacity() const { return storage_.size(); }
  std::size_t high_water() const { return high_water_; }

  /// Arena base, used by the sanitizer to map span addresses to byte
  /// offsets for its per-word race-shadow state.
  const std::byte* data() const { return storage_.data(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t top_;
  std::size_t high_water_ = 0;
};

}  // namespace gpusim
