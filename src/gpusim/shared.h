// Per-CTA shared-memory arena for simulated kernels.
//
// Functional storage for the GPU's programmable shared memory. Each launch
// worker owns one arena (CTAs of a launch may execute in parallel on host
// threads; warps *within* a CTA still execute sequentially) and resets it at
// every CTA boundary; warps of a CTA allocate disjoint slices from it,
// mirroring the paper's per-warp CACHE_SIZE staging buffers. Over-allocating
// beyond the launch configuration's declared shared bytes is a kernel bug
// and throws.
//
// reset() recycles the arena without clearing it — exactly like hardware,
// where a CTA inherits whatever bytes the SM's previous CTA left behind. A
// kernel that reads shared memory before writing it therefore gets stale
// garbage, and under parallel CTA execution *which* garbage depends on
// worker scheduling. The simsan uninit-read check (sanitizer.h) reports
// such reads, and the launcher poison-fills the arena at each CTA boundary
// while a sanitizer is active (see poison()) so stale data cannot leak
// reproducible-looking results into outputs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace gpusim {

class SharedMem {
 public:
  explicit SharedMem(std::size_t capacity_bytes)
      : storage_(capacity_bytes), top_(0) {}

  /// Allocates `count` elements of T, 16-byte aligned. Lifetime ends at the
  /// next reset(); spans must not be retained across CTAs.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    constexpr std::size_t kAlign = 16;
    std::size_t offset = (top_ + kAlign - 1) / kAlign * kAlign;
    std::size_t bytes = count * sizeof(T);
    if (offset + bytes > storage_.size()) {
      throw std::runtime_error(
          "shared memory overflow: kernel allocated more than the launch "
          "config declared");
    }
    top_ = offset + bytes;
    high_water_ = top_ > high_water_ ? top_ : high_water_;
    return {reinterpret_cast<T*>(storage_.data() + offset), count};
  }

  /// Frees all allocations (CTA boundary). Does not clear the bytes.
  void reset() { top_ = 0; }

  /// Fills the arena with a recognizable garbage pattern. The launcher
  /// calls this at each CTA boundary while a sanitizer is active, so a
  /// kernel's read-before-first-write yields deterministic poison instead
  /// of the previous CTA's data (simsan reports the read itself too).
  void poison() {
    std::fill(storage_.begin(), storage_.end(), std::byte{0xAB});
  }

  std::size_t capacity() const { return storage_.size(); }
  std::size_t high_water() const { return high_water_; }

  /// Arena base, used by the sanitizer to map span addresses to byte
  /// offsets for its per-word race-shadow state.
  const std::byte* data() const { return storage_.data(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t top_;
  std::size_t high_water_ = 0;
};

}  // namespace gpusim
