// Per-launch trace collection for the SIMT simulator.
//
// A Trace is an opt-in RAII observer (same active-stack idiom as the
// Sanitizer): while one is live, every gpusim::launch() appends a TraceEvent
// carrying the launch label, grid/occupancy, modeled cycles and the full
// counter block. Events are placed on a serialized modeled timeline (the
// simulated device executes one kernel at a time), so a whole training
// epoch's kernel sequence can be inspected, summed, or exported to the
// chrome://tracing JSON format via gpusim::chrome_trace_json() (report.h).
//
//   gpusim::Trace trace;
//   train_model(...);                        // any code that launches kernels
//   write_file("epoch.trace.json",
//              gpusim::chrome_trace_json(trace, device));
//
// Collection is opt-in by construction: with no active Trace, launch()
// performs a single null-pointer test and modeled cycle counts are
// bit-identical to an untraced run.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/stats.h"

namespace gpusim {

/// One recorded kernel launch on the modeled timeline.
struct TraceEvent {
  std::uint64_t start_cycle = 0;  // timeline position (cumulative cycles)
  KernelStats stats;              // label, grid, occupancy, cycles, counters
};

/// RAII collector of TraceEvents. Construction pushes this trace as the
/// innermost active one; destruction pops it. Nested traces each record
/// independently (the innermost is the recording target).
class Trace {
 public:
  Trace();
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The innermost live Trace, or nullptr when collection is off.
  static Trace* active();

  /// Simulator hook: appends one launch at the current timeline cursor and
  /// advances the cursor by its modeled cycles. Called by launch.cc.
  void record(const KernelStats& ks);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Timeline cursor: total modeled cycles across all recorded launches.
  std::uint64_t total_cycles() const { return cursor_; }

  /// Drops all recorded events and resets the timeline cursor (e.g. to skip
  /// warm-up launches without re-scoping the Trace).
  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t cursor_ = 0;
  Trace* prev_;
};

}  // namespace gpusim
