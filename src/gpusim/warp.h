// WarpCtx: the lane-level execution context simulated kernels run against.
//
// A kernel body is invoked once per warp and performs *functional* work
// (actual loads, stores, arithmetic on host memory) through collective,
// warp-wide operations. Each operation simultaneously feeds the cost model:
//
//  * Global accesses are coalesced into 128-byte transactions from the
//    per-lane byte addresses, exactly as the hardware's LSU would.
//  * Load latency is modeled with an ILP window: load instructions issued
//    back-to-back overlap, and the window is flushed (one exposed
//    `global_load_latency`) at the first serialization point — a warp
//    barrier, a shuffle, an explicit use(), or the end of the kernel. This
//    is the mechanism behind the paper's central claim that reduction's
//    memory barriers throttle data-load ILP (§3.2, §4.2.1).
//  * Shuffles, shared-memory ops, barriers, atomics and ALU instructions
//    cost fixed issue cycles from the DeviceSpec latency table.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"
#include "gpusim/shared.h"
#include "gpusim/stats.h"

namespace gpusim {

template <typename T>
using LaneArray = std::array<T, kWarpSize>;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

/// Builds a mask with the low `n` lanes active.
inline Mask lanes_below(int n) {
  return n >= kWarpSize ? kFullMask : ((Mask{1} << n) - 1);
}

namespace detail {
/// Counts distinct 128-byte segments among the active lanes' byte addresses.
int count_transactions(const LaneArray<std::uint64_t>& addr, Mask mask);
}  // namespace detail

/// One deferred global atomic update. CTAs of a launch may execute in
/// parallel on host threads; cross-CTA float atomics would then race and
/// their accumulation order would vary run to run. Instead each CTA appends
/// its atomics (in program order) to a commit log, and the launcher replays
/// the logs in CTA order — the exact order serial execution applies them,
/// so results are bit-identical at every thread count.
struct AtomicCommit {
  enum Op : std::uint8_t { kAdd = 0, kMax = 1 };
  float* addr;
  float value;
  Op op;

  void apply() const {
    if (op == kAdd) {
      *addr += value;
    } else if (value > *addr) {
      *addr = value;
    }
  }
};

using CommitLog = std::vector<AtomicCommit>;

/// Global-memory addresses are modeled relative to each array's base
/// (device allocations are transaction-aligned, as cudaMalloc guarantees),
/// so coalescing costs depend only on the access pattern — never on host
/// allocator placement.
class WarpCtx {
 public:
  /// `spec` and `shmem` are captured by pointer and must outlive the ctx —
  /// a WarpCtx is a per-warp view scoped inside one kernel launch, created
  /// in the launch's hot loop (copying the spec per warp would be pure
  /// overhead). Do NOT pass temporaries; the launch layer owns both for the
  /// whole execution.
  WarpCtx(const DeviceSpec& spec, std::int64_t cta_id, int warp_in_cta,
          int warps_per_cta, SharedMem& shmem, CtaSanitizer* san = nullptr,
          CommitLog* commit_log = nullptr)
      : spec_(&spec),
        shmem_(&shmem),
        san_(san),
        log_(commit_log),
        cta_id_(cta_id),
        warp_in_cta_(warp_in_cta),
        warps_per_cta_(warps_per_cta) {}

  std::int64_t cta_id() const { return cta_id_; }
  int warp_in_cta() const { return warp_in_cta_; }
  int warps_per_cta() const { return warps_per_cta_; }
  std::int64_t global_warp_id() const {
    return cta_id_ * warps_per_cta_ + warp_in_cta_;
  }
  const DeviceSpec& device() const { return *spec_; }
  SharedMem& shared() { return *shmem_; }
  WarpStats& stats() { return stats_; }

  // ---------------------------------------------------------------------
  // Global memory
  // ---------------------------------------------------------------------

  /// Warp-wide gather: active lane l reads base[index[l]].
  template <typename T>
  LaneArray<T> ld_global(const T* base, const LaneArray<std::int64_t>& index,
                         Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(T), 1, index.data(), mask,
                                /*is_write=*/false, warp_in_cta_);
    }
    LaneArray<T> out{};
    LaneArray<std::uint64_t> addr{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      out[l] = base[index[l]];
      addr[l] = std::uint64_t(index[l]) * sizeof(T);
    }
    record_load(detail::count_transactions(addr, mask), bytes_of<T>(mask), 1);
    return out;
  }

  /// Like ld_global, but for data that is L2-resident by construction (small
  /// hot metadata such as row offsets probed by merge-path binary search).
  /// Costs the same issue cycles; exposed latency on flush is the L2 latency.
  template <typename T>
  LaneArray<T> ld_global_l2(const T* base, const LaneArray<std::int64_t>& index,
                            Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(T), 1, index.data(), mask,
                                /*is_write=*/false, warp_in_cta_);
    }
    LaneArray<T> out{};
    LaneArray<std::uint64_t> addr{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      out[l] = base[index[l]];
      addr[l] = std::uint64_t(index[l]) * sizeof(T);
    }
    const int tx = detail::count_transactions(addr, mask);
    const std::uint64_t c =
        std::uint64_t(spec_->tx_issue_cycles) * std::uint64_t(tx);
    stats_.issue_cycles += c;
    stats_.load_issue_cycles += c;
    stats_.global_load_instrs += 1;
    stats_.load_transactions += std::uint64_t(tx);
    // L2 hits do not consume DRAM bandwidth.
    pending_l2_ += 1;
    return out;
  }

  /// Warp-wide vector gather (the paper's float4/float2 path): active lane l
  /// reads W consecutive elements starting at base[index[l]] with a single
  /// vector load instruction.
  template <typename T, int W>
  std::array<std::array<T, W>, kWarpSize> ld_global_vec(
      const T* base, const LaneArray<std::int64_t>& index,
      Mask mask = kFullMask) {
    static_assert(W >= 1 && W <= 4);
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(T), W, index.data(), mask,
                                /*is_write=*/false, warp_in_cta_);
    }
    std::array<std::array<T, W>, kWarpSize> out{};
    LaneArray<std::uint64_t> addr{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      for (int j = 0; j < W; ++j) out[l][j] = base[index[l] + j];
      addr[l] = std::uint64_t(index[l]) * sizeof(T);
    }
    // A W-wide vector access can straddle segments; approximate by counting
    // segments of the start addresses plus the extra coverage of wide lanes.
    int tx = detail::count_transactions(addr, mask);
    const int lanes = popcount(mask);
    const int covered_bytes = lanes * int(sizeof(T)) * W;
    const int min_tx = (covered_bytes + kTransactionBytes - 1) / kTransactionBytes;
    if (tx < min_tx) tx = min_tx;
    record_load(tx, std::uint64_t(covered_bytes), 1);
    return out;
  }

  /// Warp-wide scatter: active lane l writes value[l] to base[index[l]].
  template <typename T>
  void st_global(T* base, const LaneArray<std::int64_t>& index,
                 const LaneArray<T>& value, Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(T), 1, index.data(), mask,
                                /*is_write=*/true, warp_in_cta_);
    }
    LaneArray<std::uint64_t> addr{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      base[index[l]] = value[l];
      addr[l] = std::uint64_t(index[l]) * sizeof(T);
    }
    record_store(detail::count_transactions(addr, mask), bytes_of<T>(mask));
  }

  /// Warp-wide vector scatter: lane l writes W consecutive elements.
  template <typename T, int W>
  void st_global_vec(T* base, const LaneArray<std::int64_t>& index,
                     const std::array<std::array<T, W>, kWarpSize>& value,
                     Mask mask = kFullMask) {
    static_assert(W >= 1 && W <= 4);
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(T), W, index.data(), mask,
                                /*is_write=*/true, warp_in_cta_);
    }
    LaneArray<std::uint64_t> addr{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      for (int j = 0; j < W; ++j) base[index[l] + j] = value[l][j];
      addr[l] = std::uint64_t(index[l]) * sizeof(T);
    }
    int tx = detail::count_transactions(addr, mask);
    const int lanes = popcount(mask);
    const int covered = lanes * int(sizeof(T)) * W;
    const int min_tx = (covered + kTransactionBytes - 1) / kTransactionBytes;
    if (tx < min_tx) tx = min_tx;
    record_store(tx, std::uint64_t(covered));
  }

  /// Warp-wide global atomic add. Lanes hitting the same address serialize.
  /// The functional update is deferred to the launch's per-CTA commit log
  /// when one is attached (launch.cc replays logs in CTA order, which is
  /// what keeps float accumulation bit-identical to serial execution when
  /// CTAs run in parallel); the cost model depends only on the in-register
  /// values and intra-warp address collisions, so it is charged here either
  /// way. A consequence either way (matching real GPU semantics): a kernel
  /// must not read an address it atomically updates within the same launch.
  void atomic_add(float* base, const LaneArray<std::int64_t>& index,
                  const LaneArray<float>& value, Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(float), 1, index.data(), mask,
                                /*is_write=*/true, warp_in_cta_);
    }
    int max_mult = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      if (log_ != nullptr) {
        log_->push_back({base + index[l], value[l], AtomicCommit::kAdd});
      } else {
        base[index[l]] += value[l];
      }
      int mult = 1;
      for (int m = 0; m < l; ++m) {
        if ((mask >> m & 1u) && index[m] == index[l]) ++mult;
      }
      if (mult > max_mult) max_mult = mult;
    }
    if (max_mult == 0) return;
    const std::uint64_t c =
        std::uint64_t(spec_->atomic_issue_cycles) * std::uint64_t(max_mult);
    stats_.issue_cycles += c;
    stats_.atomic_issue_cycles += c;
    stats_.atomic_instrs += 1;
    stats_.atomic_serializations += std::uint64_t(max_mult - 1);
    stats_.bytes_stored += bytes_of<float>(mask);
    stats_.store_transactions += 1;
  }

  /// Warp-wide global atomic max (same cost model as atomic_add).
  void atomic_max(float* base, const LaneArray<std::int64_t>& index,
                  const LaneArray<float>& value, Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_global(base, sizeof(float), 1, index.data(), mask,
                                /*is_write=*/true, warp_in_cta_);
    }
    int max_mult = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!(mask >> l & 1u)) continue;
      if (log_ != nullptr) {
        log_->push_back({base + index[l], value[l], AtomicCommit::kMax});
      } else {
        float& slot = base[index[l]];
        if (value[l] > slot) slot = value[l];
      }
      int mult = 1;
      for (int m = 0; m < l; ++m) {
        if ((mask >> m & 1u) && index[m] == index[l]) ++mult;
      }
      if (mult > max_mult) max_mult = mult;
    }
    if (max_mult == 0) return;
    const std::uint64_t c =
        std::uint64_t(spec_->atomic_issue_cycles) * std::uint64_t(max_mult);
    stats_.issue_cycles += c;
    stats_.atomic_issue_cycles += c;
    stats_.atomic_instrs += 1;
    stats_.atomic_serializations += std::uint64_t(max_mult - 1);
    stats_.bytes_stored += bytes_of<float>(mask);
    stats_.store_transactions += 1;
  }

  // ---------------------------------------------------------------------
  // Shared memory (functional storage comes from SharedMem::alloc)
  // ---------------------------------------------------------------------

  template <typename T>
  LaneArray<T> sh_read(std::span<const T> arr, const LaneArray<int>& idx,
                       Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_shared(arr.data(), arr.size(), sizeof(T), idx.data(),
                                mask, /*is_write=*/false, warp_in_cta_);
    }
    LaneArray<T> out{};
    for (int l = 0; l < kWarpSize; ++l) {
      if (mask >> l & 1u) out[l] = arr[std::size_t(idx[l])];
    }
    stats_.issue_cycles += spec_->shared_access_cycles;
    stats_.shared_ops += 1;
    return out;
  }

  template <typename T>
  void sh_write(std::span<T> arr, const LaneArray<int>& idx,
                const LaneArray<T>& value, Mask mask = kFullMask) {
    if (san_ != nullptr) {
      mask = san_->check_shared(arr.data(), arr.size(), sizeof(T), idx.data(),
                                mask, /*is_write=*/true, warp_in_cta_);
    }
    for (int l = 0; l < kWarpSize; ++l) {
      if (mask >> l & 1u) arr[std::size_t(idx[l])] = value[l];
    }
    stats_.issue_cycles += spec_->shared_access_cycles;
    stats_.shared_ops += 1;
  }

  /// Scalar shared read visible to all lanes (e.g. reading a cached NZE).
  template <typename T>
  T sh_read_scalar(std::span<const T> arr, int idx) {
    stats_.issue_cycles += spec_->shared_access_cycles;
    stats_.shared_ops += 1;
    if (san_ != nullptr &&
        !san_->check_shared_scalar(arr.data(), arr.size(), sizeof(T), idx,
                                   warp_in_cta_)) {
      return T{};
    }
    return arr[std::size_t(idx)];
  }

  // ---------------------------------------------------------------------
  // Warp collectives
  // ---------------------------------------------------------------------

  /// __shfl_down_sync: lane l receives v[l + delta] within `width` segments.
  /// Serializes the warp (flushes the load window) like the real instruction.
  template <typename T>
  LaneArray<T> shfl_down(const LaneArray<T>& v, int delta,
                         int width = kWarpSize) {
    flush_window();
    LaneArray<T> out = v;
    for (int l = 0; l < kWarpSize; ++l) {
      const int seg = l / width * width;
      const int src = l + delta;
      if (src < seg + width) out[l] = v[src];
    }
    stats_.issue_cycles += spec_->shuffle_cycles;
    stats_.shuffles += 1;
    return out;
  }

  /// __shfl_sync broadcast from a single source lane.
  template <typename T>
  T shfl_broadcast(const LaneArray<T>& v, int src_lane) {
    flush_window();
    stats_.issue_cycles += spec_->shuffle_cycles;
    stats_.shuffles += 1;
    return v[src_lane];
  }

  /// Warp-level barrier (__syncwarp): the memory barrier the paper's §3.2
  /// analyzes. Flushes the outstanding-load window and costs fixed cycles.
  void sync(Mask active = kFullMask) {
    if (san_ != nullptr) san_->on_warp_barrier(active, warp_in_cta_);
    flush_window();
    stats_.issue_cycles += spec_->barrier_cycles;
    stats_.barriers += 1;
  }

  /// CTA-level barrier (__syncthreads); costlier than a warp barrier.
  void cta_sync(Mask active = kFullMask) {
    if (san_ != nullptr) san_->on_cta_barrier(active, warp_in_cta_);
    flush_window();
    stats_.issue_cycles += std::uint64_t(spec_->barrier_cycles) * 4;
    stats_.barriers += 1;
  }

  // ---------------------------------------------------------------------
  // Compute & serialization
  // ---------------------------------------------------------------------

  /// Records n warp-wide ALU/FMA instructions.
  void alu(int n_instrs = 1) {
    stats_.issue_cycles +=
        std::uint64_t(spec_->alu_cycles_per_instr) * std::uint64_t(n_instrs);
    stats_.alu_instrs += std::uint64_t(n_instrs);
  }

  /// Marks a data dependence on all pending loads (first-use serialization):
  /// exposes the latency of the current load window without barrier cost.
  void use() { flush_window(); }

  /// Called by the launcher when the warp body returns.
  void finish() { flush_window(); }

 private:
  static int popcount(Mask m) { return __builtin_popcount(m); }

  template <typename T>
  static std::uint64_t bytes_of(Mask mask) {
    return std::uint64_t(__builtin_popcount(mask)) * sizeof(T);
  }

  void record_load(int transactions, std::uint64_t bytes, int instrs) {
    const std::uint64_t c =
        std::uint64_t(spec_->tx_issue_cycles) * std::uint64_t(transactions);
    stats_.issue_cycles += c;
    stats_.load_issue_cycles += c;
    stats_.global_load_instrs += std::uint64_t(instrs);
    stats_.load_transactions += std::uint64_t(transactions);
    stats_.bytes_loaded += bytes;
    pending_loads_ += instrs;
  }

  void record_store(int transactions, std::uint64_t bytes) {
    const std::uint64_t c =
        std::uint64_t(spec_->tx_issue_cycles) * std::uint64_t(transactions);
    stats_.issue_cycles += c;
    stats_.store_issue_cycles += c;
    stats_.global_store_instrs += 1;
    stats_.store_transactions += std::uint64_t(transactions);
    stats_.bytes_stored += bytes;
  }

  /// Exposes the latency of outstanding loads. Loads within one window
  /// overlap; windows larger than the MSHR cap serialize into multiple
  /// exposed latencies.
  void flush_window() {
    if (pending_loads_ == 0 && pending_l2_ == 0) return;
    const int cap = spec_->max_outstanding_loads;
    std::uint64_t dram = 0, l2 = 0;
    if (pending_loads_ > 0) {
      const int rounds = (pending_loads_ + cap - 1) / cap;
      dram = std::uint64_t(spec_->global_load_latency) * std::uint64_t(rounds);
    }
    if (pending_l2_ > 0) {
      const int rounds = (pending_l2_ + cap - 1) / cap;
      l2 = std::uint64_t(spec_->l2_load_latency) * std::uint64_t(rounds);
    }
    const std::uint64_t c = std::max(dram, l2);  // in-flight loads overlap
    stats_.stall_cycles += c;
    stats_.load_stall_cycles += c;
    pending_loads_ = 0;
    pending_l2_ = 0;
  }

  const DeviceSpec* spec_;
  SharedMem* shmem_;
  CtaSanitizer* san_ = nullptr;
  CommitLog* log_ = nullptr;
  std::int64_t cta_id_;
  int warp_in_cta_;
  int warps_per_cta_;
  int pending_loads_ = 0;
  int pending_l2_ = 0;
  WarpStats stats_;
};

}  // namespace gpusim
