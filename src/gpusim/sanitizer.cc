#include "gpusim/sanitizer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace gpusim {

namespace {

Sanitizer* g_active = nullptr;

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* violation_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kGlobalOob: return "global-out-of-bounds";
    case ViolationKind::kSharedOob: return "shared-out-of-bounds";
    case ViolationKind::kSharedRace: return "shared-memory-race";
    case ViolationKind::kBarrierDivergence: return "barrier-divergence";
    case ViolationKind::kDoubleRelease: return "double-release";
    case ViolationKind::kSharedUninitRead: return "shared-uninit-read";
  }
  return "?";
}

std::string SanitizerViolation::describe() const {
  return fmt("[%s] kernel '%s' cta %" PRId64 " warp %d lane %d: %s",
             violation_name(kind), kernel.empty() ? "<unnamed>" : kernel.c_str(),
             cta, warp, lane, detail.c_str());
}

std::uint64_t SanitizerReport::total() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < kKinds; ++i) t += counts_[i];
  return t;
}

Sanitizer::Sanitizer(SanitizerOptions opts) : opts_(opts), prev_(g_active) {
  g_active = this;
}

Sanitizer::~Sanitizer() { g_active = prev_; }

Sanitizer* Sanitizer::active() { return g_active; }

void Sanitizer::track(const void* base, std::size_t bytes, std::string name) {
  if (base == nullptr || bytes == 0) return;
  regions_.push_back(
      {static_cast<const std::byte*>(base), bytes, std::move(name)});
}

void Sanitizer::untrack(const void* base) {
  regions_.erase(std::remove_if(regions_.begin(), regions_.end(),
                                [base](const Region& r) {
                                  return r.begin == base;
                                }),
                 regions_.end());
}

void Sanitizer::record(ViolationKind kind, int warp, int lane,
                       std::string detail) {
  report_.counts_[std::size_t(kind)] += 1;
  switch (kind) {
    case ViolationKind::kGlobalOob: launch_counters_.global_oob += 1; break;
    case ViolationKind::kSharedOob: launch_counters_.shared_oob += 1; break;
    case ViolationKind::kSharedRace: launch_counters_.shared_races += 1; break;
    case ViolationKind::kBarrierDivergence:
      launch_counters_.barrier_divergence += 1;
      break;
    case ViolationKind::kSharedUninitRead:
      launch_counters_.shared_uninit_reads += 1;
      break;
    case ViolationKind::kDoubleRelease: break;  // not a launch event
  }
  if (report_.violations_.size() < opts_.max_recorded) {
    report_.violations_.push_back({kind, kernel_, -1, warp, lane, detail});
  }
  if (opts_.fatal) {
    throw SanitizerError(
        SanitizerViolation{kind, kernel_, -1, warp, lane, detail}.describe());
  }
}

const Sanitizer::Region* Sanitizer::find_region(const std::byte* base) const {
  for (const Region& r : regions_) {
    if (base >= r.begin && base < r.begin + r.bytes) return &r;
  }
  return nullptr;
}

void Sanitizer::begin_launch(const std::string& kernel) {
  kernel_ = kernel;
  launch_counters_ = {};
}

void Sanitizer::end_launch(SanitizerCounters& out) {
  out.add(launch_counters_);
}

void Sanitizer::absorb(std::vector<SanitizerViolation>&& violations,
                       const SanitizerCounters& counters) {
  report_.counts_[std::size_t(ViolationKind::kGlobalOob)] +=
      counters.global_oob;
  report_.counts_[std::size_t(ViolationKind::kSharedOob)] +=
      counters.shared_oob;
  report_.counts_[std::size_t(ViolationKind::kSharedRace)] +=
      counters.shared_races;
  report_.counts_[std::size_t(ViolationKind::kBarrierDivergence)] +=
      counters.barrier_divergence;
  report_.counts_[std::size_t(ViolationKind::kSharedUninitRead)] +=
      counters.shared_uninit_reads;
  launch_counters_.add(counters);
  for (auto& v : violations) {
    if (report_.violations_.size() >= opts_.max_recorded) break;
    report_.violations_.push_back(std::move(v));
  }
}

void CtaSanitizer::drain_into(std::vector<SanitizerViolation>& violations,
                              SanitizerCounters& counters) {
  if (violations.empty()) {
    violations = std::move(pending_);
  } else {
    for (auto& v : pending_) violations.push_back(std::move(v));
  }
  pending_.clear();
  counters.add(counters_);
  counters_ = {};
}

// ---------------------------------------------------------------------
// CtaSanitizer
// ---------------------------------------------------------------------

void CtaSanitizer::begin_cta(Sanitizer& parent, std::int64_t cta,
                             int warps_per_cta, const std::byte* shmem_base,
                             std::size_t shmem_capacity) {
  parent_ = &parent;
  cta_ = cta;
  sh_base_ = shmem_base;
  sh_capacity_ = shmem_capacity;
  shadow_.assign((shmem_capacity + 3) / 4, ShadowWord{});
  barrier_phase_.assign(std::size_t(warps_per_cta), 0);
}

void CtaSanitizer::record(ViolationKind kind, int warp, int lane,
                          std::string detail) {
  counters_.add([&] {
    SanitizerCounters c;
    switch (kind) {
      case ViolationKind::kGlobalOob: c.global_oob = 1; break;
      case ViolationKind::kSharedOob: c.shared_oob = 1; break;
      case ViolationKind::kSharedRace: c.shared_races = 1; break;
      case ViolationKind::kBarrierDivergence: c.barrier_divergence = 1; break;
      case ViolationKind::kSharedUninitRead: c.shared_uninit_reads = 1; break;
      case ViolationKind::kDoubleRelease: break;  // not a CTA event
    }
    return c;
  }());
  if (pending_.size() < parent_->opts_.max_recorded) {
    pending_.push_back({kind, parent_->kernel_, cta_, warp, lane, detail});
  }
  if (parent_->opts_.fatal) {
    // The launcher absorbs this CTA's pending violations (in CTA order)
    // before rethrowing, so the report still carries the violation.
    throw SanitizerError(
        SanitizerViolation{kind, parent_->kernel_, cta_, warp, lane, detail}
            .describe());
  }
}

void CtaSanitizer::end_cta() {
  for (std::size_t w = 1; w < barrier_phase_.size(); ++w) {
    if (barrier_phase_[w] != barrier_phase_[0]) {
      record(ViolationKind::kBarrierDivergence, int(w), -1,
             fmt("warps of the CTA exit with unequal CTA-barrier counts "
                 "(warp 0: %d, warp %zu: %d) — a deadlock on hardware",
                 barrier_phase_[0], w, barrier_phase_[w]));
      break;  // one report per CTA is enough
    }
  }
}

std::uint32_t CtaSanitizer::check_global(const void* base,
                                         std::size_t elem_bytes, int vec_width,
                                         const std::int64_t* index,
                                         std::uint32_t mask, bool is_write,
                                         int warp) {
  const auto* b = static_cast<const std::byte*>(base);
  const Sanitizer::Region* r = parent_->find_region(b);
  if (r == nullptr) return mask;  // untracked memory: unchecked
  const std::int64_t base_off = b - r->begin;
  const std::int64_t size = std::int64_t(r->bytes);
  const std::int64_t width = std::int64_t(elem_bytes) * vec_width;
  std::uint32_t ok = mask;
  for (int l = 0; l < 32; ++l) {
    if (!(mask >> l & 1u)) continue;
    const std::int64_t off = base_off + index[l] * std::int64_t(elem_bytes);
    if (off < 0 || off + width > size) {
      ok &= ~(std::uint32_t(1) << l);
      record(ViolationKind::kGlobalOob, warp, l,
             fmt("%s of %" PRId64 " B at byte offset %" PRId64
                 " of region '%s' (%zu B): index %" PRId64 " out of range",
                 is_write ? "write" : "read", width, off, r->name.c_str(),
                 r->bytes, index[l]));
    }
  }
  return ok;
}

void CtaSanitizer::race_track_word(std::size_t word, bool is_write, int warp,
                                   int lane) {
  if (word >= shadow_.size()) return;
  ShadowWord& s = shadow_[word];
  const std::int32_t phase =
      std::size_t(warp) < barrier_phase_.size() ? barrier_phase_[warp] : 0;
  if (is_write) {
    if (s.writer_warp >= 0 && s.writer_warp != warp &&
        s.writer_phase == phase) {
      record(ViolationKind::kSharedRace, warp, lane,
             fmt("write-write race on shared word %zu (byte %zu) with warp %d"
                 " — no CTA barrier since its write",
                 word, word * 4, s.writer_warp));
    } else if (s.reader_warp >= 0 && s.reader_warp != warp &&
               s.reader_phase == phase) {
      record(ViolationKind::kSharedRace, warp, lane,
             fmt("read-write race on shared word %zu (byte %zu) with warp %d"
                 " — no CTA barrier since its read",
                 word, word * 4, s.reader_warp));
    }
    s.writer_warp = warp;
    s.writer_phase = phase;
    s.written = true;
  } else {
    if (s.writer_warp >= 0 && s.writer_warp != warp &&
        s.writer_phase == phase) {
      record(ViolationKind::kSharedRace, warp, lane,
             fmt("write-read race on shared word %zu (byte %zu) with warp %d"
                 " — no CTA barrier since its write",
                 word, word * 4, s.writer_warp));
    }
    if (!s.written) {
      record(ViolationKind::kSharedUninitRead, warp, lane,
             fmt("read of shared word %zu (byte %zu) that no warp of the CTA"
                 " has written — garbage on hardware, stale previous-CTA"
                 " bytes (nondeterministic under parallel CTA execution)"
                 " in the simulator",
                 word, word * 4));
      s.written = true;  // one report per word per CTA is enough
    }
    s.reader_warp = warp;
    s.reader_phase = phase;
  }
}

std::uint32_t CtaSanitizer::check_shared(const void* elem0,
                                         std::size_t num_elems,
                                         std::size_t elem_bytes,
                                         const int* index, std::uint32_t mask,
                                         bool is_write, int warp) {
  const auto* b = static_cast<const std::byte*>(elem0);
  const bool in_arena = sh_base_ != nullptr && b >= sh_base_ &&
                        b < sh_base_ + sh_capacity_;
  std::uint32_t ok = mask;
  for (int l = 0; l < 32; ++l) {
    if (!(mask >> l & 1u)) continue;
    if (index[l] < 0 || std::size_t(index[l]) >= num_elems) {
      ok &= ~(std::uint32_t(1) << l);
      record(ViolationKind::kSharedOob, warp, l,
             fmt("shared %s at index %d of a %zu-element span",
                 is_write ? "write" : "read", index[l], num_elems));
      continue;
    }
    if (in_arena) {
      const std::size_t off =
          std::size_t(b - sh_base_) + std::size_t(index[l]) * elem_bytes;
      for (std::size_t w = off / 4; w <= (off + elem_bytes - 1) / 4; ++w) {
        race_track_word(w, is_write, warp, l);
      }
    }
  }
  return ok;
}

bool CtaSanitizer::check_shared_scalar(const void* elem0,
                                       std::size_t num_elems,
                                       std::size_t elem_bytes, int index,
                                       int warp) {
  const int idx[1] = {index};
  return check_shared(elem0, num_elems, elem_bytes, idx, 1u, /*is_write=*/false,
                      warp) != 0;
}

void CtaSanitizer::on_warp_barrier(std::uint32_t active_mask, int warp) {
  if (active_mask != 0xffffffffu) {
    record(ViolationKind::kBarrierDivergence, warp, -1,
           fmt("warp barrier issued under partial active mask 0x%08x",
               active_mask));
  }
}

void CtaSanitizer::on_cta_barrier(std::uint32_t active_mask, int warp) {
  if (active_mask != 0xffffffffu) {
    record(ViolationKind::kBarrierDivergence, warp, -1,
           fmt("CTA barrier issued under partial active mask 0x%08x",
               active_mask));
  }
  if (std::size_t(warp) < barrier_phase_.size()) {
    barrier_phase_[std::size_t(warp)] += 1;
  }
}

void Sanitizer::on_release_underflow(std::size_t requested,
                                     std::size_t in_use) {
  const std::string detail =
      fmt("DeviceMemory::release(%zu B) exceeds the %zu B in use — "
          "double release or mismatched accounting",
          requested, in_use);
  record(ViolationKind::kDoubleRelease, -1, -1, detail);
  throw SanitizerError(detail);
}

}  // namespace gpusim
