#include "gpusim/trace.h"

namespace gpusim {

namespace {
Trace* g_active = nullptr;
}  // namespace

Trace::Trace() : prev_(g_active) { g_active = this; }

Trace::~Trace() { g_active = prev_; }

Trace* Trace::active() { return g_active; }

void Trace::record(const KernelStats& ks) {
  TraceEvent ev;
  ev.start_cycle = cursor_;
  ev.stats = ks;
  events_.push_back(std::move(ev));
  cursor_ += ks.cycles;
}

void Trace::clear() {
  events_.clear();
  cursor_ = 0;
}

}  // namespace gpusim
